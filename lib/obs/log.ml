(* Structured JSONL logger.

   The level gate is an Atomic int (0 = off) so the fast path — logging
   disabled — is one atomic load and no allocation.  The channel is only
   touched under the emission mutex, which also keeps lines from
   parallel domains whole. *)

type level = Debug | Info | Warn | Error

let rank = function Debug -> 1 | Info -> 2 | Warn -> 3 | Error -> 4
let name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

(* 0 = disabled; otherwise the minimum rank that gets emitted. *)
let gate = Atomic.make 0

let set_level = function
  | None -> Atomic.set gate 0
  | Some l -> Atomic.set gate (rank l)

let level () =
  match Atomic.get gate with
  | 1 -> Some Debug
  | 2 -> Some Info
  | 3 -> Some Warn
  | 4 -> Some Error
  | _ -> None

let enabled l =
  let g = Atomic.get gate in
  g > 0 && rank l >= g

let lock = Mutex.create ()
let channel = ref stderr
let set_channel oc = Mutex.protect lock (fun () -> channel := oc)

let emit ?trace ?(fields = []) l ~src msg =
  let b = Buffer.create 160 in
  Buffer.add_string b
    (Printf.sprintf "{\"ts\":%.6f,\"level\":\"%s\",\"src\":\"%s\""
       (Unix.gettimeofday ()) (name l) (Jsonu.escape src));
  (match trace with
  | Some t when t <> "" ->
    Buffer.add_string b (Printf.sprintf ",\"trace\":\"%s\"" (Jsonu.escape t))
  | _ -> ());
  Buffer.add_string b (Printf.sprintf ",\"msg\":\"%s\"" (Jsonu.escape msg));
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (Printf.sprintf ",\"%s\":\"%s\"" (Jsonu.escape k) (Jsonu.escape v)))
    fields;
  Buffer.add_string b "}\n";
  Mutex.protect lock (fun () ->
      output_string !channel (Buffer.contents b);
      flush !channel)

let logf ?trace ?fields l ~src fmt =
  Printf.ksprintf
    (fun msg -> if enabled l then emit ?trace ?fields l ~src msg)
    fmt

let debugf ?trace ?fields ~src fmt = logf ?trace ?fields Debug ~src fmt
let infof ?trace ?fields ~src fmt = logf ?trace ?fields Info ~src fmt
let warnf ?trace ?fields ~src fmt = logf ?trace ?fields Warn ~src fmt
let errorf ?trace ?fields ~src fmt = logf ?trace ?fields Error ~src fmt
