(* Critical-path analysis.  See the .mli for the attribution model.

   Determinism: spans arrive in finish order, which depends on domain
   scheduling, so everything here is re-sorted — points into natural id
   order, critical-path ties onto the smallest span id — before any
   output is produced.  The same workload at any --jobs renders the same
   report (modulo the measured times themselves). *)

module Tc = Trace_ctx

type step = { s_name : string; s_cat : string; s_ms : float }

type point_report = {
  point : string;
  label : string;
  p_trace_id : string;
  wall_ms : float;
  queue_ms : float;
  cache_ms : float;
  solve_ms : float;
  journal_ms : float;
  other_ms : float;
  verdict : string;
  critical_path : step list;
  span_count : int;
}

type t = {
  r_root : string;
  r_trace_id : string;
  r_wall_ms : float;
  r_points : point_report list;
  r_verdict : string;
  r_queue_ms : float;
  r_cache_ms : float;
  r_solve_ms : float;
  r_journal_ms : float;
  r_other_ms : float;
  r_span_count : int;
  r_dropped : int;
}

let ms ns = Int64.to_float ns /. 1e6

(* Digit-aware ordering, so "grid/10" sorts after "grid/9". *)
let natural_compare a b =
  let la = String.length a and lb = String.length b in
  let is_digit c = c >= '0' && c <= '9' in
  let rec go i j =
    if i >= la then if j >= lb then 0 else -1
    else if j >= lb then 1
    else if is_digit a.[i] && is_digit b.[j] then begin
      let ia = ref i and ib = ref j in
      while !ia < la && is_digit a.[!ia] do incr ia done;
      while !ib < lb && is_digit b.[!ib] do incr ib done;
      let sa = ref i and sb = ref j in
      while !sa < !ia - 1 && a.[!sa] = '0' do incr sa done;
      while !sb < !ib - 1 && b.[!sb] = '0' do incr sb done;
      let na = !ia - !sa and nb = !ib - !sb in
      if na <> nb then compare na nb
      else
        let c = compare (String.sub a !sa na) (String.sub b !sb nb) in
        if c <> 0 then c else go !ia !ib
    end
    else
      let c = Char.compare a.[i] b.[j] in
      if c <> 0 then c else go (i + 1) (j + 1)
  in
  go 0 0

let verdict_of ~queue ~cache ~solve ~journal =
  (* Ties break in the listed order; all-zero means no category span was
     ever recorded under the point. *)
  let cands =
    [
      ("solve", solve);
      ("cache-wait", cache);
      ("queue", queue);
      ("journal", journal);
    ]
  in
  let name, best =
    List.fold_left
      (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
      (List.hd cands) (List.tl cands)
  in
  if best <= 0. then "untracked" else name

let add_child tbl parent s =
  Hashtbl.replace tbl parent
    (s :: (match Hashtbl.find_opt tbl parent with Some l -> l | None -> []))

let analyze_point ~trace_id point ss =
  let ids = Hashtbl.create 32 in
  List.iter (fun (s : Tc.span) -> Hashtbl.replace ids s.id s) ss;
  let children = Hashtbl.create 32 in
  List.iter
    (fun (s : Tc.span) ->
      if Hashtbl.mem ids s.parent then add_child children s.parent s)
    ss;
  let tops =
    List.filter (fun (s : Tc.span) -> not (Hashtbl.mem ids s.parent)) ss
  in
  let top =
    match tops with
    | [] -> None
    | t :: ts ->
      Some
        (List.fold_left
           (fun (b : Tc.span) (s : Tc.span) ->
             if s.dur_ns > b.dur_ns then s else b)
           t ts)
  in
  let wall_ns =
    List.fold_left (fun a (s : Tc.span) -> Int64.add a s.dur_ns) 0L tops
  in
  let excl (s : Tc.span) =
    let kids =
      match Hashtbl.find_opt children s.id with Some l -> l | None -> []
    in
    let kid_ns =
      List.fold_left (fun a (k : Tc.span) -> Int64.add a k.dur_ns) 0L kids
    in
    max 0. (ms (Int64.sub s.dur_ns kid_ns))
  in
  let queue = ref 0. and cache = ref 0. and solve = ref 0. in
  let journal = ref 0. in
  List.iter
    (fun (s : Tc.span) ->
      let e = excl s in
      match s.cat with
      | "queue" -> queue := !queue +. e
      | "cache-wait" -> cache := !cache +. e
      | "solve" -> solve := !solve +. e
      | "journal" -> journal := !journal +. e
      | _ -> ())
    ss;
  let wall_ms = ms wall_ns in
  let attributed = !queue +. !cache +. !solve +. !journal in
  let other_ms = Float.max 0. (wall_ms -. attributed) in
  let rec path (s : Tc.span) acc =
    let acc = { s_name = s.name; s_cat = s.cat; s_ms = ms s.dur_ns } :: acc in
    match Hashtbl.find_opt children s.id with
    | None | Some [] -> List.rev acc
    | Some (c :: cs) ->
      path
        (List.fold_left
           (fun (b : Tc.span) (k : Tc.span) ->
             if k.dur_ns > b.dur_ns || (k.dur_ns = b.dur_ns && k.id < b.id)
             then k
             else b)
           c cs)
        acc
  in
  {
    point;
    label = (match top with Some s -> s.name | None -> point);
    p_trace_id = (if trace_id = "" then "" else trace_id ^ "/" ^ point);
    wall_ms;
    queue_ms = !queue;
    cache_ms = !cache;
    solve_ms = !solve;
    journal_ms = !journal;
    other_ms;
    verdict = verdict_of ~queue:!queue ~cache:!cache ~solve:!solve
                ~journal:!journal;
    critical_path = (match top with Some s -> path s [] | None -> []);
    span_count = List.length ss;
  }

(* Deliberately does NOT seal: the live /trace.json probe analyzes a
   running trace, and sealing would freeze the root span's duration at
   the first scrape.  An unsealed trace reports wall time as "so far";
   end-of-run callers seal first (Trace_ctx.seal is idempotent). *)
let analyze r =
  let spans = Tc.spans r in
  let by_point = Hashtbl.create 128 in
  let root_dur = ref (Int64.sub (Tc.now_ns ()) (Tc.started_ns r)) in
  List.iter
    (fun (s : Tc.span) ->
      if s.id = 1 then root_dur := s.dur_ns;
      if s.point <> "" then add_child by_point s.point s)
    spans;
  let points =
    Hashtbl.fold (fun p ss acc -> (p, ss) :: acc) by_point []
    |> List.sort (fun (a, _) (b, _) -> natural_compare a b)
    |> List.map (fun (p, ss) ->
           analyze_point ~trace_id:(Tc.trace_id r) p ss)
  in
  let sum f = List.fold_left (fun a p -> a +. f p) 0. points in
  let queue = sum (fun p -> p.queue_ms)
  and cache = sum (fun p -> p.cache_ms)
  and solve = sum (fun p -> p.solve_ms)
  and journal = sum (fun p -> p.journal_ms) in
  {
    r_root = Tc.root_name r;
    r_trace_id = Tc.trace_id r;
    r_wall_ms = ms !root_dur;
    r_points = points;
    r_verdict = verdict_of ~queue ~cache ~solve ~journal;
    r_queue_ms = queue;
    r_cache_ms = cache;
    r_solve_ms = solve;
    r_journal_ms = journal;
    r_other_ms = sum (fun p -> p.other_ms);
    r_span_count = Tc.count r;
    r_dropped = Tc.dropped r;
  }

let slowest k t =
  List.stable_sort
    (fun a b ->
      let c = compare b.wall_ms a.wall_ms in
      if c <> 0 then c else natural_compare a.point b.point)
    t.r_points
  |> List.filteri (fun i _ -> i < k)

(* ---- rendering ---- *)

let pp_table b t =
  let w_point =
    List.fold_left (fun w p -> max w (String.length p.point)) 5 t.r_points
  in
  let w_label =
    List.fold_left (fun w p -> max w (String.length p.label)) 5 t.r_points
  in
  Buffer.add_string b
    (Printf.sprintf "%-*s  %-*s  %9s %9s %9s %9s %9s %9s  %s\n" w_point
       "point" w_label "label" "wall ms" "queue" "cache" "solve" "journal"
       "other" "verdict");
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "%-*s  %-*s  %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f  %s\n"
           w_point p.point w_label p.label p.wall_ms p.queue_ms p.cache_ms
           p.solve_ms p.journal_ms p.other_ms p.verdict))
    t.r_points;
  let wall = List.fold_left (fun a p -> a +. p.wall_ms) 0. t.r_points in
  Buffer.add_string b
    (Printf.sprintf "%-*s  %-*s  %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f  %s\n"
       w_point "TOTAL" w_label "" wall t.r_queue_ms t.r_cache_ms t.r_solve_ms
       t.r_journal_ms t.r_other_ms t.r_verdict);
  Buffer.add_string b
    (Printf.sprintf
       "trace %s: %d points, %d spans, run wall %.3f ms, verdict %s\n"
       t.r_trace_id
       (List.length t.r_points)
       t.r_span_count t.r_wall_ms t.r_verdict);
  if t.r_dropped > 0 then
    Buffer.add_string b
      (Printf.sprintf "warning: %d spans dropped (buffer full)\n" t.r_dropped)

let pp_digest b ~k t =
  let sel = slowest k t in
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf "#%d %s (%s): %.3f ms, verdict %s\n" (i + 1) p.point
           p.label p.wall_ms p.verdict);
      (match p.critical_path with
      | [] -> ()
      | path ->
        Buffer.add_string b "    critical path: ";
        List.iteri
          (fun j s ->
            if j > 0 then Buffer.add_string b " > ";
            Buffer.add_string b
              (Printf.sprintf "%s (%.3f ms)" s.s_name s.s_ms))
          path;
        Buffer.add_char b '\n');
      Buffer.add_string b (Printf.sprintf "    trace: %s\n" p.p_trace_id))
    sel

let to_json b t =
  let str k v = Printf.sprintf "\"%s\":\"%s\"" k (Jsonu.escape v) in
  let num k v = Printf.sprintf "\"%s\":%s" k (Jsonu.number v) in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":\"lattol-trace/1\",%s,%s,%s,%s,%s"
       (str "root" t.r_root)
       (str "trace_id" t.r_trace_id)
       (num "wall_ms" t.r_wall_ms)
       (Printf.sprintf "\"span_count\":%d,\"dropped\":%d" t.r_span_count
          t.r_dropped)
       (str "verdict" t.r_verdict));
  Buffer.add_string b
    (Printf.sprintf ",\"totals\":{%s,%s,%s,%s,%s}"
       (num "queue_ms" t.r_queue_ms)
       (num "cache_wait_ms" t.r_cache_ms)
       (num "solve_ms" t.r_solve_ms)
       (num "journal_ms" t.r_journal_ms)
       (num "other_ms" t.r_other_ms));
  Buffer.add_string b ",\"points\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,\"span_count\":%d"
           (str "point" p.point) (str "label" p.label)
           (str "trace_id" p.p_trace_id)
           (num "wall_ms" p.wall_ms)
           (num "queue_ms" p.queue_ms)
           (num "cache_wait_ms" p.cache_ms)
           (num "solve_ms" p.solve_ms)
           (num "journal_ms" p.journal_ms)
           (num "other_ms" p.other_ms)
           (str "verdict" p.verdict) p.span_count);
      Buffer.add_string b ",\"critical_path\":[";
      List.iteri
        (fun j s ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{%s,%s,%s}" (str "name" s.s_name)
               (str "cat" s.s_cat) (num "ms" s.s_ms)))
        p.critical_path;
      Buffer.add_string b "]}")
    t.r_points;
  Buffer.add_string b "]}"

let to_events r =
  Tc.seal r;
  let spans = Tc.spans r in
  let t0 = Tc.started_ns r in
  let points =
    List.sort_uniq natural_compare
      (List.filter_map
         (fun (s : Tc.span) -> if s.point = "" then None else Some s.point)
         spans)
  in
  let track_of = Hashtbl.create 64 in
  List.iteri (fun i p -> Hashtbl.replace track_of p (i + 1)) points;
  let ev = Events.create () in
  Events.name_process ev 0 (Tc.root_name r);
  Events.name_track ev 0 "run";
  List.iteri (fun i p -> Events.name_track ev (i + 1) p) points;
  List.iter
    (fun (s : Tc.span) ->
      let track =
        if s.point = "" then 0
        else match Hashtbl.find_opt track_of s.point with
          | Some t -> t
          | None -> 0
      in
      Events.emit ev ~pid:0 ~cat:s.cat ~track ~name:s.name
        ~t0:(Int64.to_float (Int64.sub s.t0_ns t0) /. 1e3)
        (Int64.to_float s.dur_ns /. 1e3))
    spans;
  ev
