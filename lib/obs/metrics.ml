open Lattol_stats

type labels = (string * string) list

type counter = int ref

type gauge = float ref

type twa = {
  mutable first : float;
  mutable last_t : float;
  mutable last_v : float;
  mutable integral : float;
  mutable started : bool;
}

type exemplar = { e_trace : string; e_value : float }

(* Exemplar cells: one per bin plus [bins] (underflow) and [bins + 1]
   (overflow).  Last write wins — the point of an exemplar is "a recent
   trace id that landed in this bucket", not an exhaustive record. *)
type histogram = { h : Histogram.t; ex : exemplar option array }

type value =
  | Counter of counter
  | Gauge of gauge
  | Twa of twa
  | Hist of histogram

type entry = { name : string; labels : labels; help : string; value : value }

type t = {
  mutable entries : entry list; (* reverse registration order *)
  index : (string * labels, unit) Hashtbl.t;
}

let create () = { entries = []; index = Hashtbl.create 64 }

let register t ~name ~labels ~help value =
  if name = "" then invalid_arg "Metrics: empty metric name";
  let key = (name, labels) in
  if Hashtbl.mem t.index key then
    Format.kasprintf invalid_arg "Metrics: duplicate series %s" name;
  Hashtbl.add t.index key ();
  t.entries <- { name; labels; help; value } :: t.entries

let counter t ?(labels = []) ?(help = "") name =
  let c = ref 0 in
  register t ~name ~labels ~help (Counter c);
  c

let incr ?(by = 1) c = c := !c + by

let counter_value c = !c

let gauge t ?(labels = []) ?(help = "") name =
  let g = ref nan in
  register t ~name ~labels ~help (Gauge g);
  g

let set_gauge g v = g := v

let gauge_value g = !g

let time_weighted t ?(labels = []) ?(help = "") name =
  let w =
    { first = 0.; last_t = 0.; last_v = 0.; integral = 0.; started = false }
  in
  register t ~name ~labels ~help (Twa w);
  w

let observe_twa w ~now v =
  if not w.started then begin
    w.started <- true;
    w.first <- now
  end
  else begin
    if now < w.last_t then
      invalid_arg "Metrics.observe_twa: time went backwards";
    w.integral <- w.integral +. (w.last_v *. (now -. w.last_t))
  end;
  w.last_t <- now;
  w.last_v <- v

let twa_value w =
  let span = w.last_t -. w.first in
  if span <= 0. then nan else w.integral /. span

let histogram t ?(labels = []) ?(help = "") ?(lo = 0.) ~hi ~bins name =
  let h =
    { h = Histogram.create ~lo ~hi ~bins (); ex = Array.make (bins + 2) None }
  in
  register t ~name ~labels ~help (Hist h);
  h

(* Mirrors Histogram.add's binning so the exemplar lands in the same
   bucket as the observation. *)
let bucket_index h v =
  let lo = Histogram.lo h and hi = Histogram.hi h in
  let bins = Histogram.bins h in
  if v < lo then bins
  else if v >= hi then bins + 1
  else
    let w = (hi -. lo) /. float_of_int bins in
    min (bins - 1) (int_of_float ((v -. lo) /. w))

let record ?exemplar hist v =
  Histogram.add hist.h v;
  match exemplar with
  | Some trace when trace <> "" ->
    hist.ex.(bucket_index hist.h v) <- Some { e_trace = trace; e_value = v }
  | _ -> ()

let histogram_data hist = hist.h

let size t = List.length t.entries

let entries t = List.rev t.entries

(* ------------------------------------------------------------------ *)
(* Snapshots and merging *)

type snap_value =
  | Counter_v of int
  | Gauge_v of float
  | Twa_v of float
  | Hist_v of Histogram.t * exemplar option array

type series = {
  s_name : string;
  s_labels : labels;
  s_help : string;
  s_value : snap_value;
}

type snapshot = series list

let snap_value = function
  | Counter c -> Counter_v !c
  | Gauge g -> Gauge_v !g
  | Twa w -> Twa_v (twa_value w)
  | Hist hist -> Hist_v (Histogram.copy hist.h, Array.copy hist.ex)

(* Reading [t.entries] is a single pointer load and the cells behind it
   are immutable, so a snapshot taken while another domain registers new
   series just sees a consistent prefix.  The instruments themselves are
   read without synchronization: fine for monitoring, not for accounting
   across racing writers. *)
let snapshot t =
  List.map
    (fun e ->
      { s_name = e.name; s_labels = e.labels; s_help = e.help;
        s_value = snap_value e.value })
    (entries t)

let copy_value = function
  | Counter c -> Counter (ref !c)
  | Gauge g -> Gauge (ref !g)
  | Twa w -> Twa { w with started = w.started }
  | Hist hist -> Hist { h = Histogram.copy hist.h; ex = Array.copy hist.ex }

(* Span-weighted combination: integrals and observed spans both add, so
   the merged average is (Ia + Ib) / (Sa + Sb), independent of order. *)
let merge_twa a b =
  match (a.started, b.started) with
  | _, false -> { a with started = a.started }
  | false, true -> { b with started = true }
  | true, true ->
    let span_a = a.last_t -. a.first and span_b = b.last_t -. b.first in
    {
      first = 0.;
      last_t = span_a +. span_b;
      last_v = b.last_v;
      integral = a.integral +. b.integral;
      started = true;
    }

let merged_value name va vb =
  match (va, vb) with
  | Counter a, Counter b -> Counter (ref (!a + !b))
  | Gauge a, Gauge b -> Gauge (ref (if Float.is_nan !b then !a else !b))
  | Twa a, Twa b -> Twa (merge_twa a b)
  | Hist a, Hist b ->
    (* Exemplars: last write wins, so the right operand's cell shadows
       the left's where both are present. *)
    let ex =
      Array.init
        (max (Array.length a.ex) (Array.length b.ex))
        (fun i ->
          let cell arr = if i < Array.length arr then arr.(i) else None in
          match cell b.ex with Some e -> Some e | None -> cell a.ex)
    in
    Hist { h = Histogram.merge a.h b.h; ex }
  | _ -> Format.kasprintf invalid_arg "Metrics.merge: kind mismatch on %s" name

let merge a b =
  let t = create () in
  let b_entries = entries b in
  let in_a e' =
    List.exists
      (fun e -> e.name = e'.name && e.labels = e'.labels)
      (entries a)
  in
  List.iter
    (fun e ->
      let help = ref e.help in
      let value =
        match
          List.find_opt
            (fun e' -> e'.name = e.name && e'.labels = e.labels)
            b_entries
        with
        | None -> copy_value e.value
        | Some e' ->
          if !help = "" then help := e'.help;
          merged_value e.name e.value e'.value
      in
      register t ~name:e.name ~labels:e.labels ~help:!help value)
    (entries a);
  List.iter
    (fun e' ->
      if not (in_a e') then
        register t ~name:e'.name ~labels:e'.labels ~help:e'.help
          (copy_value e'.value))
    b_entries;
  t

(* ------------------------------------------------------------------ *)
(* Sinks *)

let snap_kind_string = function
  | Counter_v _ -> "counter"
  | Gauge_v _ -> "gauge"
  | Twa_v _ -> "twa"
  | Hist_v _ -> "histogram"

let json_labels labels =
  String.concat ","
    (List.map
       (fun (k, v) ->
         Printf.sprintf "\"%s\":\"%s\"" (Jsonu.escape k) (Jsonu.escape v))
       labels)

let hist_quantile h q =
  if Histogram.count h = 0 then nan else Histogram.quantile h q

let buf_json_snapshot b snap =
  Buffer.add_string b "{\"metrics\":[\n";
  let first = ref true in
  List.iter
    (fun s ->
      if not !first then Buffer.add_string b ",\n";
      first := false;
      Printf.bprintf b "{\"name\":\"%s\",\"type\":\"%s\",\"labels\":{%s}"
        (Jsonu.escape s.s_name) (snap_kind_string s.s_value)
        (json_labels s.s_labels);
      if s.s_help <> "" then
        Printf.bprintf b ",\"help\":\"%s\"" (Jsonu.escape s.s_help);
      (match s.s_value with
      | Counter_v c -> Printf.bprintf b ",\"value\":%d" c
      | Gauge_v g -> Printf.bprintf b ",\"value\":%s" (Jsonu.number g)
      | Twa_v w -> Printf.bprintf b ",\"value\":%s" (Jsonu.number w)
      | Hist_v (h, ex) ->
        Printf.bprintf b
          ",\"count\":%d,\"underflow\":%d,\"overflow\":%d,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"counts\":["
          (Histogram.count h) (Histogram.underflow h) (Histogram.overflow h)
          (Jsonu.number (hist_quantile h 0.5))
          (Jsonu.number (hist_quantile h 0.9))
          (Jsonu.number (hist_quantile h 0.99));
        for i = 0 to Histogram.bins h - 1 do
          if i > 0 then Buffer.add_string b ",";
          Printf.bprintf b "%d" (Histogram.bin_count h i)
        done;
        Buffer.add_string b "]";
        if Array.exists Option.is_some ex then begin
          let bins = Histogram.bins h in
          let bucket_name i =
            if i = bins then "underflow"
            else if i = bins + 1 then "overflow"
            else string_of_int i
          in
          Buffer.add_string b ",\"exemplars\":{";
          let first_ex = ref true in
          Array.iteri
            (fun i cell ->
              match cell with
              | None -> ()
              | Some e ->
                if not !first_ex then Buffer.add_char b ',';
                first_ex := false;
                Printf.bprintf b "\"%s\":{\"trace_id\":\"%s\",\"value\":%s}"
                  (bucket_name i) (Jsonu.escape e.e_trace)
                  (Jsonu.number e.e_value))
            ex;
          Buffer.add_char b '}'
        end);
      Buffer.add_string b "}")
    snap;
  Buffer.add_string b "\n]}\n"

let json_of_snapshot snap =
  let b = Buffer.create 4096 in
  buf_json_snapshot b snap;
  Buffer.contents b

let write_json_snapshot snap oc = output_string oc (json_of_snapshot snap)

let write_json t oc = write_json_snapshot (snapshot t) oc

let csv_labels labels =
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let csv_number v = if Float.is_nan v then "nan" else Printf.sprintf "%.12g" v

let write_csv_snapshot snap oc =
  output_string oc "name,labels,type,field,value\n";
  List.iter
    (fun s ->
      let row field value =
        Printf.fprintf oc "%s,%s,%s,%s,%s\n" s.s_name (csv_labels s.s_labels)
          (snap_kind_string s.s_value) field value
      in
      match s.s_value with
      | Counter_v c -> row "value" (string_of_int c)
      | Gauge_v g -> row "value" (csv_number g)
      | Twa_v w -> row "value" (csv_number w)
      | Hist_v (h, _) ->
        row "count" (string_of_int (Histogram.count h));
        row "underflow" (string_of_int (Histogram.underflow h));
        row "overflow" (string_of_int (Histogram.overflow h));
        row "p50" (csv_number (hist_quantile h 0.5));
        row "p90" (csv_number (hist_quantile h 0.9));
        row "p99" (csv_number (hist_quantile h 0.99)))
    snap

let write_csv t oc = write_csv_snapshot (snapshot t) oc

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i e ->
      if i > 0 then Format.fprintf ppf "@,";
      let labels =
        if e.labels = [] then "" else "{" ^ csv_labels e.labels ^ "}"
      in
      match e.value with
      | Counter c -> Format.fprintf ppf "%s%s = %d" e.name labels !c
      | Gauge g -> Format.fprintf ppf "%s%s = %g" e.name labels !g
      | Twa w -> Format.fprintf ppf "%s%s = %g (twa)" e.name labels (twa_value w)
      | Hist hist ->
        Format.fprintf ppf "%s%s = %a" e.name labels Histogram.pp hist.h)
    (entries t);
  Format.fprintf ppf "@]"
