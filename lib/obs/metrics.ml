open Lattol_stats

type labels = (string * string) list

type counter = int ref

type gauge = float ref

type twa = {
  mutable first : float;
  mutable last_t : float;
  mutable last_v : float;
  mutable integral : float;
  mutable started : bool;
}

type histogram = Histogram.t

type value =
  | Counter of counter
  | Gauge of gauge
  | Twa of twa
  | Hist of histogram

type entry = { name : string; labels : labels; help : string; value : value }

type t = {
  mutable entries : entry list; (* reverse registration order *)
  index : (string * labels, unit) Hashtbl.t;
}

let create () = { entries = []; index = Hashtbl.create 64 }

let register t ~name ~labels ~help value =
  if name = "" then invalid_arg "Metrics: empty metric name";
  let key = (name, labels) in
  if Hashtbl.mem t.index key then
    Format.kasprintf invalid_arg "Metrics: duplicate series %s" name;
  Hashtbl.add t.index key ();
  t.entries <- { name; labels; help; value } :: t.entries

let counter t ?(labels = []) ?(help = "") name =
  let c = ref 0 in
  register t ~name ~labels ~help (Counter c);
  c

let incr ?(by = 1) c = c := !c + by

let counter_value c = !c

let gauge t ?(labels = []) ?(help = "") name =
  let g = ref nan in
  register t ~name ~labels ~help (Gauge g);
  g

let set_gauge g v = g := v

let gauge_value g = !g

let time_weighted t ?(labels = []) ?(help = "") name =
  let w =
    { first = 0.; last_t = 0.; last_v = 0.; integral = 0.; started = false }
  in
  register t ~name ~labels ~help (Twa w);
  w

let observe_twa w ~now v =
  if not w.started then begin
    w.started <- true;
    w.first <- now
  end
  else begin
    if now < w.last_t then
      invalid_arg "Metrics.observe_twa: time went backwards";
    w.integral <- w.integral +. (w.last_v *. (now -. w.last_t))
  end;
  w.last_t <- now;
  w.last_v <- v

let twa_value w =
  let span = w.last_t -. w.first in
  if span <= 0. then nan else w.integral /. span

let histogram t ?(labels = []) ?(help = "") ?(lo = 0.) ~hi ~bins name =
  let h = Histogram.create ~lo ~hi ~bins () in
  register t ~name ~labels ~help (Hist h);
  h

let record h v = Histogram.add h v

let histogram_data h = h

let size t = List.length t.entries

let entries t = List.rev t.entries

(* ------------------------------------------------------------------ *)
(* Sinks *)

let kind_string = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Twa _ -> "twa"
  | Hist _ -> "histogram"

let json_labels labels =
  String.concat ","
    (List.map
       (fun (k, v) ->
         Printf.sprintf "\"%s\":\"%s\"" (Jsonu.escape k) (Jsonu.escape v))
       labels)

let hist_quantile h q =
  if Histogram.count h = 0 then nan else Histogram.quantile h q

let write_json t oc =
  output_string oc "{\"metrics\":[\n";
  let first = ref true in
  List.iter
    (fun e ->
      if not !first then output_string oc ",\n";
      first := false;
      Printf.fprintf oc "{\"name\":\"%s\",\"type\":\"%s\",\"labels\":{%s}"
        (Jsonu.escape e.name) (kind_string e.value) (json_labels e.labels);
      if e.help <> "" then
        Printf.fprintf oc ",\"help\":\"%s\"" (Jsonu.escape e.help);
      (match e.value with
      | Counter c -> Printf.fprintf oc ",\"value\":%d" !c
      | Gauge g -> Printf.fprintf oc ",\"value\":%s" (Jsonu.number !g)
      | Twa w -> Printf.fprintf oc ",\"value\":%s" (Jsonu.number (twa_value w))
      | Hist h ->
        Printf.fprintf oc
          ",\"count\":%d,\"underflow\":%d,\"overflow\":%d,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"counts\":["
          (Histogram.count h) (Histogram.underflow h) (Histogram.overflow h)
          (Jsonu.number (hist_quantile h 0.5))
          (Jsonu.number (hist_quantile h 0.9))
          (Jsonu.number (hist_quantile h 0.99));
        for i = 0 to Histogram.bins h - 1 do
          if i > 0 then output_string oc ",";
          Printf.fprintf oc "%d" (Histogram.bin_count h i)
        done;
        output_string oc "]");
      output_string oc "}")
    (entries t);
  output_string oc "\n]}\n"

let csv_labels labels =
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let csv_number v = if Float.is_nan v then "nan" else Printf.sprintf "%.12g" v

let write_csv t oc =
  output_string oc "name,labels,type,field,value\n";
  List.iter
    (fun e ->
      let row field value =
        Printf.fprintf oc "%s,%s,%s,%s,%s\n" e.name (csv_labels e.labels)
          (kind_string e.value) field value
      in
      match e.value with
      | Counter c -> row "value" (string_of_int !c)
      | Gauge g -> row "value" (csv_number !g)
      | Twa w -> row "value" (csv_number (twa_value w))
      | Hist h ->
        row "count" (string_of_int (Histogram.count h));
        row "underflow" (string_of_int (Histogram.underflow h));
        row "overflow" (string_of_int (Histogram.overflow h));
        row "p50" (csv_number (hist_quantile h 0.5));
        row "p90" (csv_number (hist_quantile h 0.9));
        row "p99" (csv_number (hist_quantile h 0.99)))
    (entries t)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i e ->
      if i > 0 then Format.fprintf ppf "@,";
      let labels =
        if e.labels = [] then "" else "{" ^ csv_labels e.labels ^ "}"
      in
      match e.value with
      | Counter c -> Format.fprintf ppf "%s%s = %d" e.name labels !c
      | Gauge g -> Format.fprintf ppf "%s%s = %g" e.name labels !g
      | Twa w -> Format.fprintf ppf "%s%s = %g (twa)" e.name labels (twa_value w)
      | Hist h -> Format.fprintf ppf "%s%s = %a" e.name labels Histogram.pp h)
    (entries t);
  Format.fprintf ppf "@]"
