(** Structured event tracing: per-thread spans from the simulators.

    A span is one contiguous activity of a logical thread — a compute
    burst, a wait in a switch queue, a memory service — identified by a
    process id (the node), a track id (the thread within the node), a name
    and a category, with a start time and duration in simulation time
    units.

    Spans are buffered in memory (bounded; excess is counted, not stored)
    and exported either as JSONL (one span per line, for ad-hoc analysis)
    or in the Chrome trace-event format, so a run opens directly in
    Perfetto / [chrome://tracing] with one lane per thread. *)

type span = {
  pid : int;     (** process id — the node in the MMS machine *)
  track : int;   (** track/thread id within [pid] *)
  name : string;
  cat : string;
  t0 : float;    (** start, simulation time units *)
  dur : float;
}

type t

val create : ?capacity:int -> unit -> t
(** Buffer up to [capacity] spans (default 1_000_000); later spans are
    dropped and counted in {!dropped}. *)

val emit :
  t -> ?pid:int -> ?cat:string -> track:int -> name:string -> t0:float ->
  float -> unit
(** [emit t ~track ~name ~t0 dur] records one span of length [dur]
    starting at [t0].  [pid] defaults to 0, [cat] to [""]. *)

val name_process : t -> int -> string -> unit
(** Attach a display name to a process id (Chrome metadata). *)

val name_track : t -> ?pid:int -> int -> string -> unit
(** Attach a display name to a track (Chrome metadata). *)

val count : t -> int
(** Spans currently buffered. *)

val dropped : t -> int
(** Spans discarded after the buffer filled. *)

val iter : t -> (span -> unit) -> unit
(** In emission order. *)

val write_chrome : t -> out_channel -> unit
(** Chrome trace-event JSON: [{"traceEvents":[...]}] with one complete
    ("ph":"X") event per span and metadata events for the process/track
    names.  One event per line, so the file is both a valid JSON document
    and line-greppable. *)

val write_jsonl : t -> out_channel -> unit
(** One JSON object per line: [{"pid":..,"tid":..,"name":..,"cat":..,
    "ts":..,"dur":..}]. *)
