(** Live consumer for the OCaml runtime's tracing ring buffers.

    Producer half: user events the executor writes into the per-domain
    [Runtime_events] rings — task/worker spans and queue depth — so pool
    activity and GC activity share one clock.  These are no-ops until a
    profiling session (or [OCAML_RUNTIME_EVENTS_START]) starts the ring
    collection, so instrumented code stays deterministic and clock-free.

    Consumer half: a sampler domain polling a self-monitoring cursor,
    folding GC phases, allocation counters and the user events into an
    {!Attribution.report}, a bounded span buffer for the Chrome
    timeline, and atomic live counters scraped via [/runtime.json]. *)

(** {1 Producer: called from the executor} *)

val task_begin : unit -> unit
val task_end : unit -> unit
val worker_begin : unit -> unit
val worker_end : unit -> unit

val queue_depth : int -> unit
(** Record the instantaneous work-queue depth. *)

(** {1 Profiling sessions} *)

type session

val start : ?dir:string -> ?max_trace_spans:int -> unit -> session
(** Start ring collection (if not already started), open a cursor on
    this process and spawn the sampler domain.  [dir] relocates the
    [<pid>.events] ring file (default: the working directory);
    [max_trace_spans] bounds the timeline buffer (default 200_000,
    excess spans are counted, not stored). *)

type trace_span = {
  ring : int;
  name : string;
  cat : string;  (** ["gc"], ["runtime"], ["task"] or ["worker"] *)
  t0_ns : int64;
  t1_ns : int64;
}

type profile = {
  report : Attribution.report;
  trace_spans : trace_span list;  (** oldest first *)
  dropped_spans : int;
  pauses : (int * int64) list;  (** (ring, outermost pause ns) *)
  minor_allocated_words : int;
  minor_promoted_words : int;
  lost_events : int;
  base_ns : int64;  (** timestamp origin used by {!to_events} *)
}

val stop : session -> profile
(** Stop the sampler, drain the rings and fold the stream. *)

val profiled :
  ?dir:string -> ?max_trace_spans:int -> (unit -> 'a) -> 'a * profile
(** [profiled f] runs [f] under a session; the session is stopped even
    when [f] raises (the exception is re-raised). *)

(** {1 Live scrape (safe while the session runs)} *)

val live_json : session -> string
(** One small JSON object from the live atomics — the [/runtime.json]
    payload. *)

val live_counters : session -> (string * float) list
(** The same live values as (metric name, value) pairs for gauge
    registration. *)

(** {1 Exports} *)

val to_events : profile -> Events.t
(** The merged timeline: one track per domain, GC/runtime spans
    interleaved with task/worker spans, timestamps rebased to
    [base_ns] in microseconds. *)

val register_metrics : profile -> Metrics.t -> unit
(** Fold the profile into a registry as [runtime_*] families:
    per-domain wall/fraction gauges and task/pause counters, a GC pause
    histogram, allocation totals, the tolerance gauge and the verdict. *)
