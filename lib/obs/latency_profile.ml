open Lattol_stats

type component =
  | Compute
  | Ready_queue
  | Switch_queue
  | Network_transit
  | Memory_queue
  | Memory_service
  | Sync_unit
  | Network_trip
  | Other

(* Fixed presentation order; [Network_trip] and [Other] last. *)
let all_components =
  [
    Compute; Ready_queue; Switch_queue; Network_transit; Memory_queue;
    Memory_service; Sync_unit; Network_trip; Other;
  ]

let component_index = function
  | Compute -> 0
  | Ready_queue -> 1
  | Switch_queue -> 2
  | Network_transit -> 3
  | Memory_queue -> 4
  | Memory_service -> 5
  | Sync_unit -> 6
  | Network_trip -> 7
  | Other -> 8

let component_name = function
  | Compute -> "compute"
  | Ready_queue -> "ready-queue"
  | Switch_queue -> "switch-queue"
  | Network_transit -> "network-transit"
  | Memory_queue -> "memory-queue"
  | Memory_service -> "memory-service"
  | Sync_unit -> "sync-unit"
  | Network_trip -> "network-trip"
  | Other -> "other"

let component_of_span_name = function
  | "compute" -> Compute
  | "ready-queue" -> Ready_queue
  | "switch-queue" -> Switch_queue
  | "network-transit" -> Network_transit
  | "memory-queue" -> Memory_queue
  | "memory-service" -> Memory_service
  | "su-queue" | "su-service" -> Sync_unit
  | "network-trip" -> Network_trip
  | _ -> Other

type t = Moments.t array (* indexed by component_index *)

let create () = Array.init 9 (fun _ -> Moments.create ())

let add t component dur = Moments.add t.(component_index component) dur

let of_events events =
  let t = create () in
  Events.iter events (fun s ->
      add t (component_of_span_name s.Events.name) s.Events.dur);
  t

type row = {
  component : component;
  total : float;
  count : int;
  mean : float;
  share : float;
  per_cycle : float;
}

type summary = {
  processors : int;
  span_time : float;
  cycles : int;
  u_p : float;
  lambda : float;
  s_obs : float;
  l_obs : float;
  rows : row list;
}

let summarize t ~processors ~span_time =
  if processors < 1 then invalid_arg "Latency_profile.summarize: processors >= 1";
  if span_time <= 0. then
    invalid_arg "Latency_profile.summarize: span_time > 0";
  let total c = Moments.sum t.(component_index c) in
  let count c = Moments.count t.(component_index c) in
  (* The share denominator is accounted thread time: every component once,
     trips excluded (a trip re-counts its switch spans). *)
  let accounted =
    List.fold_left
      (fun acc c -> if c = Network_trip then acc else acc +. total c)
      0. all_components
  in
  let cycles = count Compute in
  let rows =
    List.filter_map
      (fun c ->
        if c = Network_trip || count c = 0 then None
        else
          Some
            {
              component = c;
              total = total c;
              count = count c;
              mean = Moments.mean t.(component_index c);
              share = (if accounted > 0. then total c /. accounted else 0.);
              per_cycle =
                (if cycles > 0 then total c /. float_of_int cycles else 0.);
            })
      all_components
  in
  let mem_accesses = count Memory_service in
  {
    processors;
    span_time;
    cycles;
    u_p = total Compute /. (span_time *. float_of_int processors);
    lambda =
      float_of_int cycles /. span_time /. float_of_int processors;
    s_obs =
      (if count Network_trip = 0 then nan
       else Moments.mean t.(component_index Network_trip));
    l_obs =
      (if mem_accesses = 0 then 0.
       else
         (total Memory_queue +. total Memory_service)
         /. float_of_int mem_accesses);
    rows;
  }

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>latency profile: P=%d, window %g, %d activations"
    s.processors s.span_time s.cycles;
  Format.fprintf ppf "@,  %-16s %12s %9s %9s %8s %10s" "component" "total"
    "count" "mean" "share" "per-cycle";
  List.iter
    (fun r ->
      Format.fprintf ppf "@,  %-16s %12.1f %9d %9.3f %7.1f%% %10.3f"
        (component_name r.component)
        r.total r.count r.mean (100. *. r.share) r.per_cycle)
    s.rows;
  Format.fprintf ppf
    "@,  U_p = %.4f, lambda = %.4f, S_obs = %.3f, L_obs = %.3f" s.u_p s.lambda
    s.s_obs s.l_obs;
  Format.fprintf ppf "@]"

let pp_vs_model ppf (s, (m : Lattol_core.Measures.t)) =
  Format.fprintf ppf "@[<v>measured vs analytical model:";
  Format.fprintf ppf "@,  %-8s %10s %10s" "" "empirical" "model";
  let line name a b =
    Format.fprintf ppf "@,  %-8s %10.4f %10.4f" name a b
  in
  line "U_p" s.u_p m.Lattol_core.Measures.u_p;
  line "lambda" s.lambda m.Lattol_core.Measures.lambda;
  line "S_obs" s.s_obs m.Lattol_core.Measures.s_obs;
  line "L_obs" s.l_obs m.Lattol_core.Measures.l_obs;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Empirical tolerance *)

type tolerance_check = {
  u_p : float * float;
  u_p_ideal : float * float;
  tol : float;
  tol_half : float;
  analytical : float;
  within_ci : bool;
}

let check_tolerance ~u_p ~u_p_ideal ~analytical =
  let mean_r, half_r = u_p and mean_i, half_i = u_p_ideal in
  let tol = if Float.equal mean_i 0. then nan else mean_r /. mean_i in
  let tol_half =
    if Float.equal mean_r 0. || Float.equal mean_i 0. then nan
    else
      Float.abs tol
      *. sqrt (((half_r /. mean_r) ** 2.) +. ((half_i /. mean_i) ** 2.))
  in
  {
    u_p;
    u_p_ideal;
    tol;
    tol_half;
    analytical;
    within_ci =
      Float.is_finite tol && Float.is_finite tol_half
      && Float.abs (tol -. analytical) <= tol_half;
  }

let pp_tolerance_check ppf c =
  let mean_r, half_r = c.u_p and mean_i, half_i = c.u_p_ideal in
  Format.fprintf ppf
    "@[<v>empirical network tolerance: %.4f +- %.4f@,\
    \  U_p real  = %.4f +- %.4f@,\
    \  U_p ideal = %.4f +- %.4f@,\
     analytical tolerance = %.4f -> within CI: %s@]"
    c.tol c.tol_half mean_r half_r mean_i half_i c.analytical
    (if c.within_ci then "yes" else "no")
