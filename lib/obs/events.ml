type span = {
  pid : int;
  track : int;
  name : string;
  cat : string;
  t0 : float;
  dur : float;
}

let dummy = { pid = 0; track = 0; name = ""; cat = ""; t0 = 0.; dur = 0. }

type t = {
  capacity : int;
  mutable spans : span array; (* doubling buffer, [0, len) live *)
  mutable len : int;
  mutable dropped : int;
  process_names : (int, string) Hashtbl.t;
  track_names : (int * int, string) Hashtbl.t;
}

let create ?(capacity = 1_000_000) () =
  if capacity < 1 then invalid_arg "Events.create: capacity >= 1";
  {
    capacity;
    spans = Array.make (Int.min capacity 1024) dummy;
    len = 0;
    dropped = 0;
    process_names = Hashtbl.create 16;
    track_names = Hashtbl.create 64;
  }

let emit t ?(pid = 0) ?(cat = "") ~track ~name ~t0 dur =
  if t.len >= t.capacity then t.dropped <- t.dropped + 1
  else begin
    if t.len = Array.length t.spans then begin
      let bigger =
        Array.make (Int.min t.capacity (2 * Array.length t.spans)) dummy
      in
      Array.blit t.spans 0 bigger 0 t.len;
      t.spans <- bigger
    end;
    t.spans.(t.len) <- { pid; track; name; cat; t0; dur };
    t.len <- t.len + 1
  end

let name_process t pid name = Hashtbl.replace t.process_names pid name

let name_track t ?(pid = 0) track name =
  Hashtbl.replace t.track_names (pid, track) name

let count t = t.len

let dropped t = t.dropped

let iter t f =
  for i = 0 to t.len - 1 do
    f t.spans.(i)
  done

(* ------------------------------------------------------------------ *)
(* Sinks.  Simulation time units are exported as trace microseconds so
   viewers show sensible magnitudes. *)

let sorted_bindings tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let write_chrome t oc =
  output_string oc "{\"traceEvents\":[\n";
  let first = ref true in
  let event line =
    if not !first then output_string oc ",\n";
    first := false;
    output_string oc line
  in
  List.iter
    (fun (pid, name) ->
      event
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
           pid (Jsonu.escape name)))
    (sorted_bindings t.process_names);
  List.iter
    (fun ((pid, track), name) ->
      event
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           pid track (Jsonu.escape name)))
    (sorted_bindings t.track_names);
  iter t (fun s ->
      event
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d}"
           (Jsonu.escape s.name) (Jsonu.escape s.cat) (Jsonu.number s.t0)
           (Jsonu.number s.dur) s.pid s.track));
  output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n"

let write_jsonl t oc =
  iter t (fun s ->
      Printf.fprintf oc
        "{\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\"cat\":\"%s\",\"ts\":%s,\"dur\":%s}\n"
        s.pid s.track (Jsonu.escape s.name) (Jsonu.escape s.cat)
        (Jsonu.number s.t0) (Jsonu.number s.dur))
