(* Causal tracing contexts.  See the .mli for the model.

   Concurrency: span ids come from an Atomic counter; the span buffer is
   a mutex-protected list (prepend on record, reversed on read).  The
   recorder mutex is a leaf lock — recording never takes any other lock —
   so instrumented code may record while holding its own locks (the cache
   does, around its park wait) without ordering hazards.

   The clock is wall time clamped through a process-global Atomic to be
   monotonically non-decreasing, so a backwards step of the system clock
   can never produce a negative duration or un-nest a child span. *)

type span = {
  id : int;
  parent : int;
  point : string;
  name : string;
  cat : string;
  t0_ns : int64;
  dur_ns : int64;
  meta : (string * string) list;
}

type recorder = {
  root : string;
  trace_id : string;
  t0_ns : int64;
  next_id : int Atomic.t;
  lock : Mutex.t;
  mutable buf : span list; (* newest first *)
  mutable count : int;
  mutable dropped : int;
  mutable sealed : bool;
  capacity : int;
}

type ctx =
  | Off
  | On of { rc : recorder; parent : int; pt : string; opened : int64 }

type handle =
  | H_off
  | H_on of {
      h_rc : recorder;
      h_id : int;
      h_parent : int;
      h_pt : string;
      h_name : string;
      h_cat : string;
      h_t0 : int64;
      mutable closed : bool;
    }

(* ---- clock ---- *)

let last_ns = Atomic.make 0L

let rec clamp t =
  let prev = Atomic.get last_ns in
  if Int64.compare t prev <= 0 then prev
  else if Atomic.compare_and_set last_ns prev t then t
  else clamp t

let now_ns () = clamp (Int64.of_float (Unix.gettimeofday () *. 1e9))

(* ---- recorder ---- *)

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    s

let create ?(capacity = 1_000_000) ~root () =
  let t0 = now_ns () in
  {
    root;
    trace_id = Printf.sprintf "%s-%Lx" (sanitize root) t0;
    t0_ns = t0;
    next_id = Atomic.make 2 (* 1 is the root span *);
    lock = Mutex.create ();
    buf = [];
    count = 0;
    dropped = 0;
    sealed = false;
    capacity;
  }

let root_name r = r.root
let trace_id r = r.trace_id
let started_ns r = r.t0_ns

(* One cons cell + closure per *recorded span*, amortized over the whole
   traced interval (a solve, a queue wait); nothing at all when tracing
   is off, which is what the hot path sees. *)
let[@lattol.allow "hot-alloc"] push r s =
  Mutex.protect r.lock (fun () ->
      if r.count >= r.capacity then r.dropped <- r.dropped + 1
      else begin
        r.buf <- s :: r.buf;
        r.count <- r.count + 1
      end)

let spans r = Mutex.protect r.lock (fun () -> List.rev r.buf)
let count r = Mutex.protect r.lock (fun () -> r.count)
let dropped r = Mutex.protect r.lock (fun () -> r.dropped)

let seal r =
  let t = now_ns () in
  let fresh =
    Mutex.protect r.lock (fun () ->
        if r.sealed then false
        else begin
          r.sealed <- true;
          true
        end)
  in
  if fresh then
    push r
      {
        id = 1;
        parent = 0;
        point = "";
        name = r.root;
        cat = "run";
        t0_ns = r.t0_ns;
        dur_ns = Int64.sub t r.t0_ns;
        meta = [];
      }

(* ---- contexts ---- *)

let disabled = Off
let root_ctx r = On { rc = r; parent = 1; pt = ""; opened = r.t0_ns }
let enabled = function Off -> false | On _ -> true
let point = function Off -> "" | On c -> c.pt
let opened_ns = function Off -> 0L | On c -> c.opened

let point_trace_id = function
  | Off -> ""
  | On c -> if c.pt = "" then c.rc.trace_id else c.rc.trace_id ^ "/" ^ c.pt

(* ---- spans ---- *)

let no_handle = H_off

let start ?point ?(cat = "") ~name ctx =
  match ctx with
  | Off -> H_off
  | On c ->
    let pt = match point with Some p -> p | None -> c.pt in
    H_on
      {
        h_rc = c.rc;
        h_id = Atomic.fetch_and_add c.rc.next_id 1;
        h_parent = c.parent;
        h_pt = pt;
        h_name = name;
        h_cat = cat;
        h_t0 = now_ns ();
        closed = false;
      }

let ctx_of = function
  | H_off -> Off
  | H_on h -> On { rc = h.h_rc; parent = h.h_id; pt = h.h_pt; opened = h.h_t0 }

let finish ?(meta = []) h =
  match h with
  | H_off -> ()
  | H_on h ->
    (* Benign race: two domains finishing the same handle could both
       record; by construction a handle is finished by its submitting
       task and (idempotently) by the owner's cleanup after the join, so
       the accesses are ordered by the pool's own synchronization. *)
    if not h.closed then begin
      h.closed <- true;
      push h.h_rc
        {
          id = h.h_id;
          parent = h.h_parent;
          point = h.h_pt;
          name = h.h_name;
          cat = h.h_cat;
          t0_ns = h.h_t0;
          dur_ns = Int64.sub (now_ns ()) h.h_t0;
          meta;
        }
    end

let with_span ?cat ~name ctx f =
  match ctx with
  | Off -> f Off
  | On _ ->
    let h = start ?cat ~name ctx in
    Fun.protect ~finally:(fun () -> finish h) (fun () -> f (ctx_of h))

(* The span record is the datum being collected — one per traced
   interval, Off costs a tag check only. *)
let[@lattol.allow "hot-alloc"] record_interval ?(cat = "") ?(meta = [])
    ~name ~t0_ns ctx =
  match ctx with
  | Off -> ()
  | On c ->
    push c.rc
      {
        id = Atomic.fetch_and_add c.rc.next_id 1;
        parent = c.parent;
        point = c.pt;
        name;
        cat;
        t0_ns;
        dur_ns = Int64.sub (now_ns ()) t0_ns;
        meta;
      }

let record_since ?cat ?meta ~name ctx =
  match ctx with
  | Off -> ()
  | On c -> record_interval ?cat ?meta ~name ~t0_ns:c.opened ctx
