(** Leveled structured logging: one JSON object per line, carrying trace
    ids, so the [-v] diagnostics stream is machine-joinable against the
    causal trace instead of being freeform [Printf] noise.

    Lines look like
    [{"ts":1754640000.123456,"level":"info","src":"lattol.supervisor",
      "trace":"sweep-184f3c/3:n_t=4","msg":"rung accepted","solver":"amva"}]
    and go to [stderr] (never [stdout] — experiment output stays
    byte-identical).  Logging is off by default; {!set_level} gates it.
    Emission is mutex-serialized, so lines from parallel domains never
    interleave. *)

type level = Debug | Info | Warn | Error

val set_level : level option -> unit
(** [Some l] enables records at [l] and above; [None] (the default)
    disables all output. *)

val level : unit -> level option

val enabled : level -> bool
(** Would a record at this level be emitted?  Use to skip expensive
    argument construction. *)

val set_channel : out_channel -> unit
(** Redirect output (default [stderr]).  Tests point this at a buffer
    file. *)

val logf :
  ?trace:string -> ?fields:(string * string) list -> level ->
  src:string -> ('a, unit, string, unit) format4 -> 'a
(** [logf ~trace Info ~src "fmt" ...] emits one JSONL record.  [trace]
    is a trace or point-trace id ({!Trace_ctx.point_trace_id});
    [fields] adds extra string-valued keys. *)

val debugf :
  ?trace:string -> ?fields:(string * string) list -> src:string ->
  ('a, unit, string, unit) format4 -> 'a

val infof :
  ?trace:string -> ?fields:(string * string) list -> src:string ->
  ('a, unit, string, unit) format4 -> 'a

val warnf :
  ?trace:string -> ?fields:(string * string) list -> src:string ->
  ('a, unit, string, unit) format4 -> 'a

val errorf :
  ?trace:string -> ?fields:(string * string) list -> src:string ->
  ('a, unit, string, unit) format4 -> 'a
