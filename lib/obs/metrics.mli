(** Metrics registry: named, optionally labeled instruments shared by the
    analytical and simulation stacks.

    Four instrument kinds cover everything the solvers and simulators
    measure: monotone {e counters} (events processed, accesses issued),
    point-in-time {e gauges} (utilizations, measures of a finished run),
    {e time-weighted averages} of piecewise-constant signals (queue
    lengths), and {!Lattol_stats.Histogram}-backed {e distributions}
    (latency spreads).

    A metric is identified by its name plus a label set, so one registry
    holds whole families of series ([station_util{station="mem3"}], one
    sweep point per label value).  Registration order is preserved by the
    sinks, which makes the JSON/CSV output deterministic and diffable. *)

type t

val create : unit -> t

type labels = (string * string) list
(** Label pairs; order is preserved as given. *)

(** {1 Instruments}

    Registering the same (name, labels) pair twice raises
    [Invalid_argument]: each series has exactly one owner. *)

type counter

val counter : t -> ?labels:labels -> ?help:string -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

type gauge

val gauge : t -> ?labels:labels -> ?help:string -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

type twa
(** Time-weighted average of a piecewise-constant signal. *)

val time_weighted : t -> ?labels:labels -> ?help:string -> string -> twa

val observe_twa : twa -> now:float -> float -> unit
(** [observe_twa w ~now v]: the signal takes value [v] from [now] onwards.
    Observations must be in non-decreasing [now] order. *)

val twa_value : twa -> float
(** Integral divided by observed span; [nan] before the second
    observation. *)

type histogram

type exemplar = { e_trace : string; e_value : float }
(** OpenMetrics-style exemplar: the last trace id (and its observed
    value) that landed in a bucket, linking an aggregate distribution
    back to one concrete traced request. *)

val histogram :
  t -> ?labels:labels -> ?help:string -> ?lo:float -> hi:float -> bins:int ->
  string -> histogram

val record : ?exemplar:string -> histogram -> float -> unit
(** Record an observation; with [?exemplar] (a non-empty trace id, e.g.
    {!Trace_ctx.point_trace_id}) the bucket the value lands in also
    remembers that id, last write wins. *)

val histogram_data : histogram -> Lattol_stats.Histogram.t

(** {1 Snapshots}

    A snapshot is a pure point-in-time copy of every registered series —
    plain data, safe to render from another domain while the live
    instruments keep moving.  The series order is registration order,
    exactly what the sinks emit. *)

type snap_value =
  | Counter_v of int
  | Gauge_v of float
  | Twa_v of float  (** the resolved time-weighted average *)
  | Hist_v of Lattol_stats.Histogram.t * exemplar option array
      (** a private copy of the bins, plus the exemplar cells (one per
          bin, then underflow at index [bins], overflow at [bins + 1]) *)

type series = {
  s_name : string;
  s_labels : labels;
  s_help : string;
  s_value : snap_value;
}

type snapshot = series list

val snapshot : t -> snapshot
(** Safe to call concurrently with instrument updates (monitoring-grade
    consistency: each series is copied atomically enough for scrapes, not
    for audits); registrations racing with the snapshot may or may not be
    included. *)

val merge : t -> t -> t
(** [merge a b]: a fresh registry holding the union of both series sets —
    [a]'s series in registration order, then [b]'s unmatched ones.  Series
    present on both sides combine by kind: counters sum, gauges keep the
    last write ([b] unless its value is [nan]), time-weighted averages
    combine span-weighted, histograms add bin-wise (geometries must match).
    Counter and histogram merging is commutative and associative; gauges
    are last-write-wins by construction, so only associative.  Raises
    [Invalid_argument] when a shared name carries different kinds. *)

(** {1 Sinks} *)

val size : t -> int
(** Number of registered series. *)

val write_json : t -> out_channel -> unit
(** One JSON object, one series per line inside a ["metrics"] array —
    line-greppable yet a single valid document.  Histograms carry their
    bin counts and the 0.5/0.9/0.99 quantiles. *)

val json_of_snapshot : snapshot -> string
(** The exact bytes {!write_json} would emit for this snapshot — shared by
    the [--metrics-out] sink and the live [/metrics.json] endpoint so a
    final scrape equals the flushed file. *)

val write_json_snapshot : snapshot -> out_channel -> unit

val write_csv : t -> out_channel -> unit
(** Long-form CSV: [name,labels,type,field,value]; scalar instruments emit
    one row, histograms one row per exported field. *)

val write_csv_snapshot : snapshot -> out_channel -> unit

val pp : Format.formatter -> t -> unit
(** Human-readable dump, one series per line. *)
