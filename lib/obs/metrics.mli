(** Metrics registry: named, optionally labeled instruments shared by the
    analytical and simulation stacks.

    Four instrument kinds cover everything the solvers and simulators
    measure: monotone {e counters} (events processed, accesses issued),
    point-in-time {e gauges} (utilizations, measures of a finished run),
    {e time-weighted averages} of piecewise-constant signals (queue
    lengths), and {!Lattol_stats.Histogram}-backed {e distributions}
    (latency spreads).

    A metric is identified by its name plus a label set, so one registry
    holds whole families of series ([station_util{station="mem3"}], one
    sweep point per label value).  Registration order is preserved by the
    sinks, which makes the JSON/CSV output deterministic and diffable. *)

type t

val create : unit -> t

type labels = (string * string) list
(** Label pairs; order is preserved as given. *)

(** {1 Instruments}

    Registering the same (name, labels) pair twice raises
    [Invalid_argument]: each series has exactly one owner. *)

type counter

val counter : t -> ?labels:labels -> ?help:string -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

type gauge

val gauge : t -> ?labels:labels -> ?help:string -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

type twa
(** Time-weighted average of a piecewise-constant signal. *)

val time_weighted : t -> ?labels:labels -> ?help:string -> string -> twa

val observe_twa : twa -> now:float -> float -> unit
(** [observe_twa w ~now v]: the signal takes value [v] from [now] onwards.
    Observations must be in non-decreasing [now] order. *)

val twa_value : twa -> float
(** Integral divided by observed span; [nan] before the second
    observation. *)

type histogram

val histogram :
  t -> ?labels:labels -> ?help:string -> ?lo:float -> hi:float -> bins:int ->
  string -> histogram

val record : histogram -> float -> unit
val histogram_data : histogram -> Lattol_stats.Histogram.t

(** {1 Sinks} *)

val size : t -> int
(** Number of registered series. *)

val write_json : t -> out_channel -> unit
(** One JSON object, one series per line inside a ["metrics"] array —
    line-greppable yet a single valid document.  Histograms carry their
    bin counts and the 0.5/0.9/0.99 quantiles. *)

val write_csv : t -> out_channel -> unit
(** Long-form CSV: [name,labels,type,field,value]; scalar instruments emit
    one row, histograms one row per exported field. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump, one series per line. *)
