(* Live consumer for the OCaml runtime's own tracing ring buffers.

   [Runtime_events] gives every domain a ring into which the runtime
   writes GC phase begin/end marks, allocation counters and lifecycle
   events.  This module (a) defines the user events the executor emits
   into those same rings — task and worker-loop spans, queue depth, and
   the profiling-window marker — so pool activity and GC activity share
   one clock with no calibration, and (b) runs a sampler domain that
   polls a self-monitoring cursor, feeding everything into the pure
   [Attribution] fold, a bounded trace-span buffer for the Chrome
   timeline, and atomic live counters the exporter can scrape mid-run.

   The producer half ([task_begin] & co.) is free when profiling is off:
   [Runtime_events.User.write] is a no-op until the ring collection is
   started, so the pool can call these unconditionally without breaking
   determinism or paying for clock reads. *)

module RE = Runtime_events

(* ------------------------------------------------------------------ *)
(* User events: the producer side, called from lib/exec/pool. *)

type RE.User.tag +=
  | Pool_task
  | Pool_worker
  | Pool_queue_depth
  | Prof_window

let task_ev = RE.User.register "lattol.pool.task" Pool_task RE.Type.span
let worker_ev = RE.User.register "lattol.pool.worker" Pool_worker RE.Type.span

let queue_depth_ev =
  RE.User.register "lattol.pool.queue_depth" Pool_queue_depth RE.Type.int

let window_ev = RE.User.register "lattol.prof" Prof_window RE.Type.span

let task_begin () = RE.User.write task_ev RE.Type.Begin
let task_end () = RE.User.write task_ev RE.Type.End
let worker_begin () = RE.User.write worker_ev RE.Type.Begin
let worker_end () = RE.User.write worker_ev RE.Type.End
let queue_depth n = RE.User.write queue_depth_ev n

(* ------------------------------------------------------------------ *)
(* Consumer state. *)

type live = {
  gc_pauses : int Atomic.t;
  gc_pause_ns : int Atomic.t;
  minor_allocated : int Atomic.t; (* words *)
  minor_promoted : int Atomic.t; (* words *)
  lost_events : int Atomic.t;
  live_queue_depth : int Atomic.t;
  events_read : int Atomic.t;
}

type trace_span = {
  ring : int;
  name : string;
  cat : string; (* "gc" | "runtime" | "task" | "worker" *)
  t0_ns : int64;
  t1_ns : int64;
}

type consumer = {
  attr : Attribution.state;
  mutable spans : trace_span list; (* newest first *)
  mutable n_spans : int;
  max_spans : int;
  mutable dropped_spans : int;
  (* per-ring stacks of open runtime phases, for trace spans and for
     outermost-pause detection *)
  phase_open : (int, (RE.runtime_phase * int64) list) Hashtbl.t;
  gc_depth : (int, int ref) Hashtbl.t;
  gc_since : (int, int64) Hashtbl.t;
  task_since : (int, int64) Hashtbl.t;
  worker_since : (int, int64) Hashtbl.t;
  mutable pauses : (int * int64) list; (* ring, outermost pause ns *)
  mutable n_pauses : int;
  mutable t_min : int64;
  mutable t_max : int64;
  mutable window_t0 : int64 option;
  mutable window_t1 : int64 option;
}

let make_consumer max_spans =
  {
    attr = Attribution.create ();
    spans = [];
    n_spans = 0;
    max_spans;
    dropped_spans = 0;
    phase_open = Hashtbl.create 8;
    gc_depth = Hashtbl.create 8;
    gc_since = Hashtbl.create 8;
    task_since = Hashtbl.create 8;
    worker_since = Hashtbl.create 8;
    pauses = [];
    n_pauses = 0;
    t_min = Int64.max_int;
    t_max = Int64.min_int;
    window_t0 = None;
    window_t1 = None;
  }

let push_span c span =
  if c.n_spans < c.max_spans then begin
    c.spans <- span :: c.spans;
    c.n_spans <- c.n_spans + 1
  end
  else c.dropped_spans <- c.dropped_spans + 1

let saw c ts =
  if Int64.compare ts c.t_min < 0 then c.t_min <- ts;
  if Int64.compare ts c.t_max > 0 then c.t_max <- ts

(* Phases that represent the domain doing GC/STW work.  Condition waits
   and heap-reservation resizes are runtime bookkeeping, not collection:
   counting a blocking wait as GC would misattribute idle time. *)
let counts_as_gc = function
  | RE.EV_DOMAIN_CONDITION_WAIT | RE.EV_DOMAIN_RESIZE_HEAP_RESERVATION ->
    false
  | _ -> true

let ring_depth c ring =
  match Hashtbl.find_opt c.gc_depth ring with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace c.gc_depth ring r;
    r

let max_pause_records = 100_000

let make_callbacks live c =
  let ts_ns ts = RE.Timestamp.to_int64 ts in
  let runtime_begin ring ts phase =
    let t = ts_ns ts in
    saw c t;
    Hashtbl.replace c.phase_open ring
      ((phase, t)
      :: Option.value (Hashtbl.find_opt c.phase_open ring) ~default:[]);
    if counts_as_gc phase then begin
      let d = ring_depth c ring in
      if !d = 0 then begin
        Hashtbl.replace c.gc_since ring t;
        Attribution.feed c.attr { ring; at_ns = t; kind = Gc_begin }
      end;
      incr d
    end
  in
  let runtime_end ring ts phase =
    let t = ts_ns ts in
    saw c t;
    (match Hashtbl.find_opt c.phase_open ring with
    | Some ((p, t0) :: rest) when p = phase ->
      Hashtbl.replace c.phase_open ring rest;
      push_span c
        {
          ring;
          name = RE.runtime_phase_name phase;
          cat = (if counts_as_gc phase then "gc" else "runtime");
          t0_ns = t0;
          t1_ns = t;
        }
    | _ -> ());
    if counts_as_gc phase then begin
      let d = ring_depth c ring in
      if !d > 0 then begin
        decr d;
        if !d = 0 then begin
          Attribution.feed c.attr { ring; at_ns = t; kind = Gc_end };
          (match Hashtbl.find_opt c.gc_since ring with
          | Some t0 when Int64.compare t t0 >= 0 ->
            let dur = Int64.sub t t0 in
            Atomic.incr live.gc_pauses;
            ignore
              (Atomic.fetch_and_add live.gc_pause_ns (Int64.to_int dur));
            if c.n_pauses < max_pause_records then begin
              c.pauses <- (ring, dur) :: c.pauses;
              c.n_pauses <- c.n_pauses + 1
            end
          | _ -> ())
        end
      end
    end
  in
  let runtime_counter _ring ts counter v =
    saw c (ts_ns ts);
    match counter with
    | RE.EV_C_MINOR_ALLOCATED ->
      ignore (Atomic.fetch_and_add live.minor_allocated v)
    | RE.EV_C_MINOR_PROMOTED ->
      ignore (Atomic.fetch_and_add live.minor_promoted v)
    | _ -> ()
  in
  let lifecycle _ring ts _ev _arg = saw c (ts_ns ts) in
  let lost_events _ring n =
    ignore (Atomic.fetch_and_add live.lost_events n)
  in
  let on_span ring ts (ev : RE.Type.span RE.User.t) (v : RE.Type.span) =
    let t = ts_ns ts in
    saw c t;
    match RE.User.tag ev, v with
    | Pool_task, RE.Type.Begin ->
      Hashtbl.replace c.task_since ring t;
      Attribution.feed c.attr { ring; at_ns = t; kind = Task_begin }
    | Pool_task, RE.Type.End ->
      Attribution.feed c.attr { ring; at_ns = t; kind = Task_end };
      (match Hashtbl.find_opt c.task_since ring with
      | Some t0 ->
        Hashtbl.remove c.task_since ring;
        push_span c { ring; name = "task"; cat = "task"; t0_ns = t0; t1_ns = t }
      | None -> ())
    | Pool_worker, RE.Type.Begin ->
      Hashtbl.replace c.worker_since ring t;
      Attribution.feed c.attr { ring; at_ns = t; kind = Worker_begin }
    | Pool_worker, RE.Type.End ->
      Attribution.feed c.attr { ring; at_ns = t; kind = Worker_end };
      (match Hashtbl.find_opt c.worker_since ring with
      | Some t0 ->
        Hashtbl.remove c.worker_since ring;
        push_span c
          { ring; name = "worker"; cat = "worker"; t0_ns = t0; t1_ns = t }
      | None -> ())
    | Prof_window, RE.Type.Begin ->
      if c.window_t0 = None then c.window_t0 <- Some t
    | Prof_window, RE.Type.End -> c.window_t1 <- Some t
    | _ -> ()
  in
  let on_int ring ts (ev : int RE.User.t) (v : int) =
    saw c (ts_ns ts);
    ignore ring;
    match RE.User.tag ev with
    | Pool_queue_depth -> Atomic.set live.live_queue_depth v
    | _ -> ()
  in
  RE.Callbacks.create ~runtime_begin ~runtime_end ~runtime_counter ~lifecycle
    ~lost_events ()
  |> RE.Callbacks.add_user_event RE.Type.span on_span
  |> RE.Callbacks.add_user_event RE.Type.int on_int

(* ------------------------------------------------------------------ *)
(* Session: sampler domain + cursor lifecycle. *)

type session = {
  live : live;
  mu : Mutex.t;
  con : consumer;
  cursor : RE.cursor;
  callbacks : RE.Callbacks.t;
  stop_flag : bool Atomic.t;
  sampler : unit Domain.t;
}

type profile = {
  report : Attribution.report;
  trace_spans : trace_span list; (* oldest first *)
  dropped_spans : int;
  pauses : (int * int64) list; (* ring, outermost pause ns *)
  minor_allocated_words : int;
  minor_promoted_words : int;
  lost_events : int;
  base_ns : int64; (* timestamp origin for trace export *)
}

let poll_interval_s = 0.001

let start ?dir ?(max_trace_spans = 200_000) () =
  (match dir with
  | Some d -> Unix.putenv "OCAML_RUNTIME_EVENTS_DIR" d
  | None -> ());
  RE.start ();
  let live =
    {
      gc_pauses = Atomic.make 0;
      gc_pause_ns = Atomic.make 0;
      minor_allocated = Atomic.make 0;
      minor_promoted = Atomic.make 0;
      lost_events = Atomic.make 0;
      live_queue_depth = Atomic.make 0;
      events_read = Atomic.make 0;
    }
  in
  let con = make_consumer max_trace_spans in
  let cursor = RE.create_cursor None in
  let callbacks = make_callbacks live con in
  let mu = Mutex.create () in
  let stop_flag = Atomic.make false in
  let poll () =
    Mutex.protect mu (fun () ->
        let n = RE.read_poll cursor callbacks None in
        ignore (Atomic.fetch_and_add live.events_read n))
  in
  let sampler =
    Domain.spawn (fun () ->
        while not (Atomic.get stop_flag) do
          poll ();
          Unix.sleepf poll_interval_s
        done)
  in
  let t = { live; mu; con; cursor; callbacks; stop_flag; sampler } in
  RE.User.write window_ev RE.Type.Begin;
  t

let stop t =
  RE.User.write window_ev RE.Type.End;
  Atomic.set t.stop_flag true;
  Domain.join t.sampler;
  (* Final drain on this domain: the window-end mark above is already in
     our ring, so one more poll observes a complete stream. *)
  Mutex.protect t.mu (fun () ->
      let n = RE.read_poll t.cursor t.callbacks None in
      ignore (Atomic.fetch_and_add t.live.events_read n));
  RE.free_cursor t.cursor;
  let c = t.con in
  let t0 =
    match c.window_t0 with
    | Some v -> v
    | None -> if Int64.compare c.t_min Int64.max_int < 0 then c.t_min else 0L
  in
  let t1 =
    match c.window_t1 with
    | Some v -> v
    | None -> if Int64.compare c.t_max Int64.min_int > 0 then c.t_max else t0
  in
  let report = Attribution.finish c.attr ~t0 ~t1 in
  {
    report;
    trace_spans = List.rev c.spans;
    dropped_spans = c.dropped_spans;
    pauses = List.rev c.pauses;
    minor_allocated_words = Atomic.get t.live.minor_allocated;
    minor_promoted_words = Atomic.get t.live.minor_promoted;
    lost_events = Atomic.get t.live.lost_events;
    base_ns = t0;
  }

let profiled ?dir ?max_trace_spans f =
  let s = start ?dir ?max_trace_spans () in
  match f () with
  | v ->
    let p = stop s in
    (v, p)
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    ignore (stop s);
    Printexc.raise_with_backtrace e bt

(* ------------------------------------------------------------------ *)
(* Live scrape: a tiny JSON object rendered from the atomics, cheap
   enough to serve on every poll of /runtime.json. *)

let live_json t =
  let l = t.live in
  Printf.sprintf
    "{\"profiling\":true,\"gc_pauses\":%d,\"gc_pause_ns\":%d,\
     \"minor_allocated_words\":%d,\"minor_promoted_words\":%d,\
     \"lost_events\":%d,\"queue_depth\":%d,\"events_read\":%d}"
    (Atomic.get l.gc_pauses) (Atomic.get l.gc_pause_ns)
    (Atomic.get l.minor_allocated) (Atomic.get l.minor_promoted)
    (Atomic.get l.lost_events)
    (Atomic.get l.live_queue_depth)
    (Atomic.get l.events_read)

let live_counters t =
  let l = t.live in
  [
    ("runtime_gc_pauses_total", float_of_int (Atomic.get l.gc_pauses));
    ("runtime_gc_pause_ns_total", float_of_int (Atomic.get l.gc_pause_ns));
    ( "runtime_minor_allocated_words_total",
      float_of_int (Atomic.get l.minor_allocated) );
    ( "runtime_minor_promoted_words_total",
      float_of_int (Atomic.get l.minor_promoted) );
    ("runtime_lost_events_total", float_of_int (Atomic.get l.lost_events));
    ("runtime_queue_depth", float_of_int (Atomic.get l.live_queue_depth));
  ]

(* ------------------------------------------------------------------ *)
(* Exports: merged Chrome timeline and a metrics registry. *)

let runtime_pid = 99

let to_events p =
  let ev = Events.create () in
  Events.name_process ev runtime_pid "ocaml-runtime";
  let tracks = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem tracks s.ring) then begin
        Hashtbl.replace tracks s.ring ();
        Events.name_track ev ~pid:runtime_pid s.ring
          (Printf.sprintf "domain %d" s.ring)
      end;
      let us_of ns = Int64.to_float (Int64.sub ns p.base_ns) /. 1e3 in
      let t0 = us_of s.t0_ns in
      let dur = us_of s.t1_ns -. t0 in
      Events.emit ev ~pid:runtime_pid ~cat:s.cat ~track:s.ring ~name:s.name
        ~t0 dur)
    p.trace_spans;
  ev

let register_metrics p m =
  let dom s = [ ("domain", string_of_int s.Attribution.ring) ] in
  List.iter
    (fun (s : Attribution.split) ->
      let g name help v =
        Metrics.set_gauge (Metrics.gauge m ~labels:(dom s) ~help name) v
      in
      g "runtime_domain_wall_ns" "profiled wall time of this domain"
        (Int64.to_float s.wall_ns);
      g "runtime_domain_compute_fraction" "fraction of wall in pool tasks"
        (Attribution.compute_fraction s);
      g "runtime_domain_gc_fraction" "fraction of wall in GC pauses"
        (Attribution.gc_fraction s);
      g "runtime_domain_idle_fraction" "fraction of wall starved for work"
        (Attribution.idle_fraction s);
      g "runtime_domain_spawn_fraction" "fraction of wall outside the worker"
        (Attribution.spawn_fraction s);
      let cnt name help v =
        Metrics.incr ~by:v (Metrics.counter m ~labels:(dom s) ~help name)
      in
      cnt "runtime_domain_tasks_total" "pool tasks executed" s.tasks;
      cnt "runtime_domain_gc_pauses_total" "outermost GC pauses" s.gc_pauses)
    p.report.Attribution.domains;
  let pause_hist =
    Metrics.histogram m ~help:"outermost GC pause durations (ms)" ~lo:0.
      ~hi:50. ~bins:25 "runtime_gc_pause_ms"
  in
  List.iter
    (fun (_ring, ns) -> Metrics.record pause_hist (Int64.to_float ns /. 1e6))
    p.pauses;
  Metrics.incr
    ~by:p.minor_allocated_words
    (Metrics.counter m ~help:"words allocated in minor heaps"
       "runtime_minor_allocated_words_total");
  Metrics.incr ~by:p.minor_promoted_words
    (Metrics.counter m ~help:"words promoted to the major heap"
       "runtime_minor_promoted_words_total");
  Metrics.incr ~by:p.lost_events
    (Metrics.counter m ~help:"ring-buffer events overwritten before reading"
       "runtime_lost_events_total");
  Metrics.set_gauge
    (Metrics.gauge m ~help:"achieved compute fraction of total domain time"
       "runtime_tolerance")
    p.report.Attribution.tolerance;
  Metrics.set_gauge
    (Metrics.gauge m
       ~labels:
         [ ("verdict", Attribution.verdict_string p.report.Attribution.verdict) ]
       ~help:"dominant scaling limiter" "runtime_verdict")
    1.
