(** Causal tracing: per-request trace/span contexts threaded through the
    execution layers.

    A {!recorder} owns one trace — identified by a root id derived from
    the experiment command — and collects {!span}s into a bounded,
    mutex-protected buffer.  A {!ctx} is a lightweight capability that
    names "where we are" in the trace: which recorder, which parent span,
    which sweep point.  Layers that accept a [ctx] record child spans
    under it; the {!disabled} context makes every operation a no-op, so
    instrumented code pays (close to) nothing when tracing is off and —
    critically — never reads the clock, preserving the pool's
    byte-identical [--jobs N] guarantee.

    Timestamps are wall-clock nanoseconds clamped to be monotonically
    non-decreasing process-wide, so durations never go negative even if
    the system clock steps backwards.  Span ids are allocated from an
    atomic counter (domain-safe); id [1] is the root span, [0] means "no
    parent" and appears only on the root itself. *)

type span = {
  id : int;          (** unique within the trace; root is 1 *)
  parent : int;      (** parent span id; 0 only on the root span *)
  point : string;    (** owning sweep point id; [""] for run-level spans *)
  name : string;
  cat : string;      (** one of "queue", "cache-wait", "solve", "journal",
                         "point", "run", or "" *)
  t0_ns : int64;     (** start, clamped wall-clock nanoseconds *)
  dur_ns : int64;
  meta : (string * string) list;
}

type recorder

type ctx
(** A position in a trace (recorder + parent span + point), or disabled. *)

type handle
(** An open span: created by {!start}, closed by {!finish} (idempotent). *)

val create : ?capacity:int -> root:string -> unit -> recorder
(** A fresh trace named [root] (the experiment command).  Buffers up to
    [capacity] spans (default 1_000_000); later spans are dropped and
    counted in {!dropped}. *)

val root_name : recorder -> string

val trace_id : recorder -> string
(** Stable id for this trace: the sanitized root name plus the start
    timestamp, e.g. ["sweep-184f3c..."]. *)

val started_ns : recorder -> int64

val now_ns : unit -> int64
(** Clamped monotonic wall clock, nanoseconds since the epoch. *)

val root_ctx : recorder -> ctx
(** Context whose parent is the root span. *)

val disabled : ctx
(** The no-op context: every record/start/finish under it does nothing
    and reads no clock. *)

val enabled : ctx -> bool

val point : ctx -> string
(** The sweep-point id this context is scoped to ([""] if none or
    disabled). *)

val point_trace_id : ctx -> string
(** [trace_id ^ "/" ^ point] — the exemplar id for metrics ([""] when
    disabled). *)

val opened_ns : ctx -> int64
(** When this context's parent span was opened ([0L] when disabled).
    The queue-wait primitive: [record_since] measures from here. *)

val no_handle : handle

val start : ?point:string -> ?cat:string -> name:string -> ctx -> handle
(** Open a span under [ctx]'s parent.  [point] rescopes the subtree (a
    sweep names each point span); it defaults to [ctx]'s point.  The span
    is buffered at {!finish} time.  On a disabled context this returns
    {!no_handle} without reading the clock. *)

val ctx_of : handle -> ctx
(** Context for recording children of the open span. *)

val finish : ?meta:(string * string) list -> handle -> unit
(** Close the span and buffer it.  Idempotent: second and later calls are
    no-ops, so error-path cleanup can finish handles unconditionally. *)

val with_span : ?cat:string -> name:string -> ctx -> (ctx -> 'a) -> 'a
(** [with_span ~name ctx f] opens a span, runs [f child_ctx], and
    finishes the span even on exceptions. *)

val record_interval :
  ?cat:string -> ?meta:(string * string) list -> name:string ->
  t0_ns:int64 -> ctx -> unit
(** Record a leaf span from [t0_ns] to now under [ctx]'s parent. *)

val record_since :
  ?cat:string -> ?meta:(string * string) list -> name:string -> ctx -> unit
(** Record a leaf span from [opened_ns ctx] to now — e.g. the queue wait
    between a point's submission and its first execution. *)

val seal : recorder -> unit
(** Record the root span itself (id 1, parent 0), covering recorder
    creation to now.  Idempotent. *)

val spans : recorder -> span list
(** Buffered spans in recording (finish) order. *)

val count : recorder -> int

val dropped : recorder -> int
(** Spans discarded after the buffer filled. *)
