let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number v =
  if not (Float.is_finite v) then "null" else Printf.sprintf "%.12g" v
