(** The paper's latency breakdown, measured: fold a span stream from the
    DES into per-component time accounting, and hold it against the
    analytical model.

    The tolerance index is computed from {e where time goes} — processor
    busy time versus time queued in the network, the switches and the
    memory modules.  The analytical model predicts this decomposition
    ({!Lattol_core.Measures}); this module recovers the same quantities
    empirically from the {!Events} spans the simulator emits, per
    component:

    - [Compute] / [Ready_queue]: executing vs waiting for the processor;
    - [Switch_queue] / [Network_transit]: queued at vs served by a switch;
    - [Memory_queue] / [Memory_service]: the same split at a memory module;
    - [Sync_unit]: residence at an EARTH-style SU;
    - [Network_trip]: a whole one-way remote trip (encloses its switch
      spans; kept out of the share accounting to avoid double counting,
      its mean is the empirical [S_obs]). *)

type component =
  | Compute
  | Ready_queue
  | Switch_queue
  | Network_transit
  | Memory_queue
  | Memory_service
  | Sync_unit
  | Network_trip
  | Other

val component_of_span_name : string -> component
(** Maps the span names {!Lattol_sim.Mms_des} emits ("compute",
    "switch-queue", ...); unknown names fold into [Other]. *)

val component_name : component -> string

type t

val create : unit -> t

val add : t -> component -> float -> unit
(** Record one span's duration against a component. *)

val of_events : Events.t -> t
(** Fold a whole recorded stream, classifying spans by name. *)

type row = {
  component : component;
  total : float;      (** summed duration over all threads *)
  count : int;
  mean : float;
  share : float;      (** of total accounted thread time (trips excluded) *)
  per_cycle : float;  (** mean time per completed thread activation *)
}

type summary = {
  processors : int;
  span_time : float;   (** measured window length *)
  cycles : int;        (** completed thread activations (compute spans) *)
  u_p : float;         (** empirical processor utilization *)
  lambda : float;      (** activations per processor per time unit *)
  s_obs : float;       (** mean one-way network trip (queueing included) *)
  l_obs : float;       (** mean memory residence per access *)
  rows : row list;     (** components with observations, fixed order *)
}

val summarize : t -> processors:int -> span_time:float -> summary

val pp_summary : Format.formatter -> summary -> unit
(** The per-component breakdown table plus the derived measures. *)

val pp_vs_model : Format.formatter -> summary * Lattol_core.Measures.t -> unit
(** Empirical column against the analytical model's prediction for the
    quantities both sides define: U_p, lambda, S_obs, L_obs. *)

(** {1 Empirical tolerance index}

    The tolerance index needs two runs — the real machine and the ideal
    one (no remote accesses) — each delivering a utilization with a
    confidence interval.  The ratio's interval follows by first-order
    error propagation. *)

type tolerance_check = {
  u_p : float * float;        (** real system: (mean, CI half-width) *)
  u_p_ideal : float * float;  (** ideal system: (mean, CI half-width) *)
  tol : float;                (** empirical index: ratio of the means *)
  tol_half : float;           (** propagated 95% half-width *)
  analytical : float;         (** model prediction, e.g. [Tolerance.network] *)
  within_ci : bool;           (** analytical value inside the empirical CI *)
}

val check_tolerance :
  u_p:float * float -> u_p_ideal:float * float -> analytical:float ->
  tolerance_check

val pp_tolerance_check : Format.formatter -> tolerance_check -> unit
