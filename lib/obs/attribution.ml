(* Bottleneck attribution over a runtime-event stream.

   The fold consumes a flat stream of per-ring begin/end marks — GC
   pauses from the runtime, task and worker-loop spans from the pool's
   instrumentation — and splits each domain's wall time into four
   mutually exclusive buckets:

     gc       inside a runtime GC/STW pause
     compute  executing a pool task (GC excluded)
     idle     inside the worker loop but between tasks (queue starvation;
              GC excluded)
     spawn    outside the worker loop — domain spawn/join overhead and
              any time before the worker claimed its first chunk

   The buckets partition the profiling window exactly, so
   gc + compute + idle + spawn = wall for every domain by construction:
   that invariant is what makes the percentages trustworthy, and the
   unit tests replay synthetic streams to hold the fold to it.

   Everything here is pure int64-nanosecond arithmetic on already
   captured timestamps; no clock is read and nothing is printed except
   through a caller-supplied formatter. *)

type event_kind =
  | Gc_begin
  | Gc_end
  | Task_begin
  | Task_end
  | Worker_begin
  | Worker_end

type event = { ring : int; at_ns : int64; kind : event_kind }

type split = {
  ring : int;
  wall_ns : int64;
  gc_ns : int64;
  compute_ns : int64;
  idle_ns : int64;
  spawn_ns : int64;
  tasks : int;
  gc_pauses : int;
  max_gc_pause_ns : int64;
}

type verdict =
  | Gc_bound
  | Starved
  | Spawn_bound
  | Compute_bound

type report = {
  window_ns : int64;
  domains : split list;  (* by ring id *)
  verdict : verdict;
  tolerance : float;
      (** fraction of non-compute latency the executor overlapped with
          useful work on other domains: 1 = fully tolerated, 0 = fully
          exposed (the paper's tolerance index, applied to the pool) *)
}

(* ------------------------------------------------------------------ *)
(* The fold: one pass over the (time-ordered per ring) stream. *)

type ring_state = {
  mutable gc_depth : int;
  mutable gc_since : int64; (* valid when gc_depth > 0 *)
  mutable in_task : bool;
  mutable task_since : int64;
  mutable in_worker : bool;
  mutable worker_since : int64;
  mutable acc_gc : int64;
  mutable acc_task : int64; (* task time including GC inside tasks *)
  mutable acc_task_gc : int64; (* GC time inside tasks *)
  mutable acc_worker : int64; (* worker-loop time including everything *)
  mutable acc_worker_gc : int64; (* GC time inside the worker loop *)
  mutable n_tasks : int;
  mutable n_pauses : int;
  mutable max_pause : int64;
  mutable saw_task_or_worker : bool;
}

type state = { rings : (int, ring_state) Hashtbl.t }

let create () = { rings = Hashtbl.create 8 }

let ring_state t ring =
  match Hashtbl.find_opt t.rings ring with
  | Some r -> r
  | None ->
    let r =
      {
        gc_depth = 0;
        gc_since = 0L;
        in_task = false;
        task_since = 0L;
        in_worker = false;
        worker_since = 0L;
        acc_gc = 0L;
        acc_task = 0L;
        acc_task_gc = 0L;
        acc_worker = 0L;
        acc_worker_gc = 0L;
        n_tasks = 0;
        n_pauses = 0;
        max_pause = 0L;
        saw_task_or_worker = false;
      }
    in
    Hashtbl.replace t.rings ring r;
    r

let pos a = if Int64.compare a 0L > 0 then a else 0L

let feed t { ring; at_ns; kind } =
  let r = ring_state t ring in
  match kind with
  | Gc_begin ->
    if r.gc_depth = 0 then r.gc_since <- at_ns;
    r.gc_depth <- r.gc_depth + 1
  | Gc_end ->
    if r.gc_depth > 0 then begin
      r.gc_depth <- r.gc_depth - 1;
      if r.gc_depth = 0 then begin
        let d = pos (Int64.sub at_ns r.gc_since) in
        r.acc_gc <- Int64.add r.acc_gc d;
        if r.in_task then r.acc_task_gc <- Int64.add r.acc_task_gc d;
        if r.in_worker then r.acc_worker_gc <- Int64.add r.acc_worker_gc d;
        r.n_pauses <- r.n_pauses + 1;
        if Int64.compare d r.max_pause > 0 then r.max_pause <- d
      end
    end
  | Task_begin ->
    r.saw_task_or_worker <- true;
    if not r.in_task then begin
      r.in_task <- true;
      r.task_since <- at_ns
    end
  | Task_end ->
    if r.in_task then begin
      r.in_task <- false;
      r.acc_task <- Int64.add r.acc_task (pos (Int64.sub at_ns r.task_since));
      r.n_tasks <- r.n_tasks + 1
    end
  | Worker_begin ->
    r.saw_task_or_worker <- true;
    if not r.in_worker then begin
      r.in_worker <- true;
      r.worker_since <- at_ns
    end
  | Worker_end ->
    if r.in_worker then begin
      r.in_worker <- false;
      r.acc_worker <-
        Int64.add r.acc_worker (pos (Int64.sub at_ns r.worker_since))
    end

let feed_list t evs = List.iter (feed t) evs

(* Close any still-open span at the window end — a stream cut mid-task
   (lost events, early stop) must not leak time out of the partition. *)
let close_ring r ~t1 =
  if r.gc_depth > 0 then begin
    let d = pos (Int64.sub t1 r.gc_since) in
    r.acc_gc <- Int64.add r.acc_gc d;
    if r.in_task then r.acc_task_gc <- Int64.add r.acc_task_gc d;
    if r.in_worker then r.acc_worker_gc <- Int64.add r.acc_worker_gc d;
    r.n_pauses <- r.n_pauses + 1;
    if Int64.compare d r.max_pause > 0 then r.max_pause <- d;
    r.gc_depth <- 0
  end;
  if r.in_task then begin
    r.acc_task <- Int64.add r.acc_task (pos (Int64.sub t1 r.task_since));
    r.n_tasks <- r.n_tasks + 1;
    r.in_task <- false
  end;
  if r.in_worker then begin
    r.acc_worker <-
      Int64.add r.acc_worker (pos (Int64.sub t1 r.worker_since));
    r.in_worker <- false
  end

let split_of_ring ring r ~t0 ~t1 =
  let wall = pos (Int64.sub t1 t0) in
  let gc = r.acc_gc in
  let compute = pos (Int64.sub r.acc_task r.acc_task_gc) in
  (* Idle: in the worker loop, not in a task, not in GC. *)
  let idle =
    pos
      (Int64.sub r.acc_worker
         (Int64.add r.acc_task (Int64.sub r.acc_worker_gc r.acc_task_gc)))
  in
  (* Spawn bucket absorbs the remainder so the partition is exact even
     when accumulators slightly overrun the window (clamped at 0). *)
  let spawn =
    pos (Int64.sub wall (Int64.add gc (Int64.add compute idle)))
  in
  (* Re-derive wall from the buckets: if a span overran the window the
     buckets are authoritative (the invariant is the partition). *)
  let wall' = Int64.add gc (Int64.add compute (Int64.add idle spawn)) in
  {
    ring;
    wall_ns = Int64.max wall wall';
    gc_ns = gc;
    compute_ns = compute;
    idle_ns = idle;
    spawn_ns = spawn;
    tasks = r.n_tasks;
    gc_pauses = r.n_pauses;
    max_gc_pause_ns = r.max_pause;
  }

let ns_to_float = Int64.to_float

let frac part whole =
  let w = ns_to_float whole in
  if w <= 0. then 0. else ns_to_float part /. w

let gc_fraction s = frac s.gc_ns s.wall_ns
let compute_fraction s = frac s.compute_ns s.wall_ns
let idle_fraction s = frac s.idle_ns s.wall_ns
let spawn_fraction s = frac s.spawn_ns s.wall_ns

let finish ?only_instrumented t ~t0 ~t1 =
  let only = Option.value only_instrumented ~default:true in
  let domains =
    Hashtbl.fold
      (fun ring r acc ->
        close_ring r ~t1;
        if only && not r.saw_task_or_worker then acc
        else split_of_ring ring r ~t0 ~t1 :: acc)
      t.rings []
    |> List.sort (fun a b -> compare a.ring b.ring)
  in
  let sum f =
    List.fold_left (fun acc s -> Int64.add acc (f s)) 0L domains
  in
  let total_wall = sum (fun s -> s.wall_ns) in
  let gc = sum (fun s -> s.gc_ns)
  and compute = sum (fun s -> s.compute_ns)
  and idle = sum (fun s -> s.idle_ns)
  and spawn = sum (fun s -> s.spawn_ns) in
  let verdict =
    let g = frac gc total_wall
    and i = frac idle total_wall
    and sp = frac spawn total_wall in
    if g >= i && g >= sp && g > 0.1 then Gc_bound
    else if i >= sp && i > 0.1 then Starved
    else if sp > 0.1 then Spawn_bound
    else Compute_bound
  in
  (* Latency tolerance, executor edition: of the time that was not
     useful compute (gc + idle + spawn), how much was overlapped by
     compute happening concurrently on some other domain?  With W
     domains, perfect overlap would hide (W-1)/W of it; we report the
     achieved fraction: compute / total wall is the pool's utilization,
     and exposed latency is what is left. *)
  let tolerance = frac compute total_wall in
  { window_ns = pos (Int64.sub t1 t0); domains; verdict; tolerance }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let verdict_string = function
  | Gc_bound -> "gc-bound"
  | Starved -> "queue-starved"
  | Spawn_bound -> "spawn-bound"
  | Compute_bound -> "compute-bound"

let verdict_hint = function
  | Gc_bound ->
    "domains spend their time in GC pauses: shrink per-task allocation \
     or grow the minor heap (OCAMLRUNPARAM=s=...)"
  | Starved ->
    "domains wait on the work queue: too few or too-small tasks — batch \
     submissions or coarsen the chunking"
  | Spawn_bound ->
    "domain spawn/join dominates: the workload is too short for this \
     many domains — reuse the pool or lower --jobs"
  | Compute_bound ->
    "domains spend their time computing: parallel efficiency is limited \
     by the work itself, not the executor"

let ms ns = ns_to_float ns /. 1e6

let pp_split ppf s =
  Format.fprintf ppf
    "domain %d: wall %8.2fms  compute %5.1f%%  gc %5.1f%%  idle %5.1f%%  \
     spawn %5.1f%%  (%d tasks, %d pauses, max pause %.3fms)"
    s.ring (ms s.wall_ns)
    (100. *. compute_fraction s)
    (100. *. gc_fraction s)
    (100. *. idle_fraction s)
    (100. *. spawn_fraction s)
    s.tasks s.gc_pauses
    (ms s.max_gc_pause_ns)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>runtime profile: %d domain%s over %.2fms@,"
    (List.length r.domains)
    (if List.length r.domains = 1 then "" else "s")
    (ms r.window_ns);
  List.iter (fun s -> Format.fprintf ppf "%a@," pp_split s) r.domains;
  Format.fprintf ppf "executor tolerance: %.3f (compute fraction of total domain time)@,"
    r.tolerance;
  Format.fprintf ppf "verdict: %s — %s@]" (verdict_string r.verdict)
    (verdict_hint r.verdict)
