(** Solver telemetry: residual trajectories of the iterative AMVA solvers.

    The fixed-point solvers expose each sweep's residual through
    [Lattol_core.Mms.solve_network]'s [on_sweep] hook, and the
    {!Lattol_robust.Supervisor} escalation ladder retries with heavier
    damping and fallback solvers.  This recorder taps both: every attempt
    (one ladder rung, or one standalone solve) opens with its solver name,
    damping factor and iteration budget, accumulates (iteration, residual)
    samples, and closes with the outcome — so a run's convergence history
    can be plotted, diffed, or audited after the fact. *)

type sample = { iteration : int; residual : float }

type attempt = {
  index : int;       (** 1-based position in the recording *)
  label : string;    (** caller-supplied context, e.g. ["p_remote=0.4"] *)
  solver : string;
  damping : float;
  budget : int;      (** iteration budget; 0 = unknown/unbounded *)
  iterations : int;  (** sweeps used (0 until the attempt is finished) *)
  converged : bool;
  reason : string option;  (** failure reason; [None] when accepted *)
  samples : sample list;   (** chronological; capped, see {!create} *)
  dropped : int;           (** samples discarded past the cap *)
}

type t

val create : ?sample_capacity:int -> unit -> t
(** Keep at most [sample_capacity] residual samples per attempt (default
    10_000); excess samples are counted in [dropped]. *)

val start_attempt :
  t -> ?label:string -> ?budget:int -> solver:string -> damping:float ->
  unit -> unit
(** Open a new attempt; an unfinished previous attempt is closed as
    non-converged first. *)

val record : t -> iteration:int -> residual:float -> unit
(** Append a sample to the open attempt; a no-op when none is open. *)

val finish_attempt :
  ?reason:string -> t -> converged:bool -> iterations:int -> unit
(** Close the open attempt with its outcome; a no-op when none is open. *)

val num_attempts : t -> int

val sample_capacity : t -> int
(** The per-attempt sample cap this recorder was created with. *)

val absorb : t -> t list -> unit
(** [absorb t sources] appends every attempt of every source (in list
    order, chronological within each source) to [t], renumbering
    {!attempt.index} so the merged recording stays dense and 1-based.
    This is the deterministic merge point for per-worker / per-point
    trace buffers: record each unit of work into its own private
    recorder, then absorb them in a canonical order once the parallel
    section has joined. *)

val attempts : t -> attempt list
(** Chronological; an attempt still open is reported as it stands. *)

val write_jsonl : t -> out_channel -> unit
(** One line per attempt header ([{"attempt":..,"solver":..,...}]) followed
    by one line per sample ([{"attempt":..,"iteration":..,"residual":..}]). *)

val write_csv : t -> out_channel -> unit
(** Long form: [attempt,label,solver,damping,iteration,residual]. *)

val pp : Format.formatter -> t -> unit
(** One line per attempt: solver, damping, first/last residual, outcome. *)
