(** Bottleneck attribution over a runtime-event stream.

    A pure fold from per-domain begin/end marks (GC pauses, pool task
    spans, worker-loop spans) to an exact partition of each domain's
    wall time into compute / gc / idle / spawn buckets, plus a verdict
    naming the dominant scaling limiter.  All arithmetic is on int64
    nanoseconds captured elsewhere; this module never reads a clock. *)

type event_kind =
  | Gc_begin  (** runtime entered a GC/STW pause on this ring *)
  | Gc_end
  | Task_begin  (** pool started executing a task on this ring *)
  | Task_end
  | Worker_begin  (** worker loop became live on this ring *)
  | Worker_end

type event = { ring : int; at_ns : int64; kind : event_kind }

type split = {
  ring : int;
  wall_ns : int64;  (** gc + compute + idle + spawn, exactly *)
  gc_ns : int64;
  compute_ns : int64;
  idle_ns : int64;
  spawn_ns : int64;
  tasks : int;
  gc_pauses : int;
  max_gc_pause_ns : int64;
}

type verdict = Gc_bound | Starved | Spawn_bound | Compute_bound

type report = {
  window_ns : int64;
  domains : split list;  (** sorted by ring id *)
  verdict : verdict;
  tolerance : float;
      (** achieved compute fraction of total domain time: 1 = every
          domain computed the whole window (all latency tolerated),
          0 = all latency exposed *)
}

type state

val create : unit -> state

val feed : state -> event -> unit
(** Events must be time-ordered per ring; rings are independent.
    Unbalanced ends and redundant begins are ignored, never fatal. *)

val feed_list : state -> event list -> unit

val finish : ?only_instrumented:bool -> state -> t0:int64 -> t1:int64 -> report
(** Close open spans at [t1] and partition [t0,t1] per ring.
    [only_instrumented] (default true) drops rings that never saw a
    task or worker span — e.g. the sampler domain itself. *)

val gc_fraction : split -> float
val compute_fraction : split -> float
val idle_fraction : split -> float
val spawn_fraction : split -> float

val verdict_string : verdict -> string
val verdict_hint : verdict -> string
val pp_split : Format.formatter -> split -> unit
val pp_report : Format.formatter -> report -> unit
