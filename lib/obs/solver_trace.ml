type sample = { iteration : int; residual : float }

type attempt = {
  index : int;
  label : string;
  solver : string;
  damping : float;
  budget : int;
  iterations : int;
  converged : bool;
  reason : string option;
  samples : sample list;
  dropped : int;
}

(* Mutable in-progress attempt; frozen into [attempt] on finish. *)
type open_attempt = {
  o_index : int;
  o_label : string;
  o_solver : string;
  o_damping : float;
  o_budget : int;
  mutable o_samples : sample list; (* reversed *)
  mutable o_count : int;
  mutable o_dropped : int;
  mutable o_last_iteration : int;
}

type t = {
  sample_capacity : int;
  mutable finished : attempt list; (* reversed *)
  mutable current : open_attempt option;
  mutable next_index : int;
}

let create ?(sample_capacity = 10_000) () =
  if sample_capacity < 1 then
    invalid_arg "Solver_trace.create: sample_capacity >= 1";
  { sample_capacity; finished = []; current = None; next_index = 1 }

let freeze o ~converged ~reason ~iterations =
  {
    index = o.o_index;
    label = o.o_label;
    solver = o.o_solver;
    damping = o.o_damping;
    budget = o.o_budget;
    iterations;
    converged;
    reason;
    samples = List.rev o.o_samples;
    dropped = o.o_dropped;
  }

let finish_attempt ?reason t ~converged ~iterations =
  match t.current with
  | None -> ()
  | Some o ->
    t.finished <- freeze o ~converged ~reason ~iterations :: t.finished;
    t.current <- None

let start_attempt t ?(label = "") ?(budget = 0) ~solver ~damping () =
  (match t.current with
  | Some o ->
    (* Close a dangling attempt rather than silently losing it. *)
    finish_attempt ~reason:"superseded" t ~converged:false
      ~iterations:o.o_last_iteration
  | None -> ());
  t.current <-
    Some
      {
        o_index = t.next_index;
        o_label = label;
        o_solver = solver;
        o_damping = damping;
        o_budget = budget;
        o_samples = [];
        o_count = 0;
        o_dropped = 0;
        o_last_iteration = 0;
      };
  t.next_index <- t.next_index + 1

let record t ~iteration ~residual =
  match t.current with
  | None -> ()
  | Some o ->
    o.o_last_iteration <- iteration;
    if o.o_count >= t.sample_capacity then o.o_dropped <- o.o_dropped + 1
    else begin
      o.o_samples <- { iteration; residual } :: o.o_samples;
      o.o_count <- o.o_count + 1
    end

let attempts t =
  let open_ones =
    match t.current with
    | None -> []
    | Some o -> [ freeze o ~converged:false ~reason:None ~iterations:o.o_last_iteration ]
  in
  List.rev_append t.finished open_ones

let num_attempts t = List.length (attempts t)

let sample_capacity t = t.sample_capacity

(* Append the sources' attempts (in list order, chronological within each
   source) to [t], renumbering so indices stay dense and 1-based.  The
   parallel sweep records each grid point into its own private buffer and
   absorbs them in point order afterwards — the merged recording is then
   byte-identical to a sequential run's, whatever the scheduling was. *)
let absorb t sources =
  List.iter
    (fun src ->
      List.iter
        (fun a ->
          t.finished <- { a with index = t.next_index } :: t.finished;
          t.next_index <- t.next_index + 1)
        (attempts src))
    sources

(* ------------------------------------------------------------------ *)
(* Sinks *)

let write_jsonl t oc =
  List.iter
    (fun a ->
      Printf.fprintf oc
        "{\"attempt\":%d,\"label\":\"%s\",\"solver\":\"%s\",\"damping\":%s,\"budget\":%d,\"iterations\":%d,\"converged\":%b,\"reason\":%s,\"samples\":%d,\"dropped\":%d}\n"
        a.index (Jsonu.escape a.label) (Jsonu.escape a.solver)
        (Jsonu.number a.damping) a.budget a.iterations a.converged
        (match a.reason with
        | None -> "null"
        | Some r -> "\"" ^ Jsonu.escape r ^ "\"")
        (List.length a.samples) a.dropped;
      List.iter
        (fun s ->
          Printf.fprintf oc
            "{\"attempt\":%d,\"iteration\":%d,\"residual\":%s}\n" a.index
            s.iteration (Jsonu.number s.residual))
        a.samples)
    (attempts t)

let write_csv t oc =
  output_string oc "attempt,label,solver,damping,iteration,residual\n";
  List.iter
    (fun a ->
      List.iter
        (fun s ->
          Printf.fprintf oc "%d,%s,%s,%g,%d,%.12g\n" a.index a.label a.solver
            a.damping s.iteration s.residual)
        a.samples)
    (attempts t)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i a ->
      if i > 0 then Format.fprintf ppf "@,";
      let tail =
        match (a.samples, List.rev a.samples) with
        | { residual = r0; _ } :: _, { residual = rn; iteration = it; _ } :: _
          ->
          Format.asprintf "residual %.3e -> %.3e over %d sweeps" r0 rn it
        | _ -> "no samples"
      in
      Format.fprintf ppf "#%d %s damping=%g%s: %s (%s)" a.index a.solver
        a.damping
        (if a.label = "" then "" else " [" ^ a.label ^ "]")
        (if a.converged then "converged" else "failed")
        tail)
    (attempts t);
  Format.fprintf ppf "@]"
