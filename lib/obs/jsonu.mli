(** Minimal JSON emission helpers shared by the telemetry sinks.  Writing
    only — the observability layer never parses JSON — so a full parser
    dependency would be dead weight. *)

val escape : string -> string
(** JSON string-literal body for [s] (quotes not included). *)

val number : float -> string
(** JSON-legal rendering of a float: [null] for NaN/infinities (JSON has no
    non-finite numbers), shortest round-trippable decimal otherwise. *)
