(** Critical-path analysis over a causal trace.

    Groups a recorder's spans by sweep point, rebuilds each point's span
    tree, and attributes the point's wall time to bottleneck categories
    by {e exclusive} time (a span's duration minus its direct children's)
    so the per-point columns always reconcile with the measured point
    wall time: [queue + cache-wait + solve + journal + other = wall]
    exactly in integer nanoseconds, i.e. within 1e-5 ms of the printed
    (3-decimal) figures.  The verdict is the dominant category; the
    critical path follows the longest child at every level. *)

type step = { s_name : string; s_cat : string; s_ms : float }

type point_report = {
  point : string;        (** stable point id, e.g. ["fig04_grid/12"] *)
  label : string;        (** human axis label from the point span's name *)
  p_trace_id : string;   (** exemplar id: trace id + "/" + point *)
  wall_ms : float;       (** the point span's measured duration *)
  queue_ms : float;
  cache_ms : float;
  solve_ms : float;
  journal_ms : float;
  other_ms : float;      (** wall minus the four attributed categories *)
  verdict : string;      (** "queue", "cache-wait", "solve", "journal",
                             or "untracked" when nothing was attributed *)
  critical_path : step list; (** root-to-leaf chain of longest children *)
  span_count : int;
}

type t = {
  r_root : string;
  r_trace_id : string;
  r_wall_ms : float;       (** root span duration *)
  r_points : point_report list; (** in natural point-id order *)
  r_verdict : string;      (** aggregate over all points *)
  r_queue_ms : float;
  r_cache_ms : float;
  r_solve_ms : float;
  r_journal_ms : float;
  r_other_ms : float;
  r_span_count : int;
  r_dropped : int;
}

val analyze : Trace_ctx.recorder -> t
(** Build the report from the spans recorded so far.  Does {e not} seal
    the recorder, so a live probe (the exporter's [/trace.json]) can
    analyze a running trace — [r_wall_ms] then reads "elapsed so far".
    End-of-run callers {!Trace_ctx.seal} first for an exact run wall.
    Point order is deterministic — natural (digit-aware) order of point
    ids — and independent of scheduling, so the same work at any
    [--jobs] yields the same table. *)

val slowest : int -> t -> point_report list
(** Top-k points by wall time (descending; ties by point id). *)

val pp_table : Buffer.t -> t -> unit
(** The human waterfall: one row per point (wall and per-category ms,
    verdict), a TOTAL row, and the aggregate verdict line. *)

val pp_digest : Buffer.t -> k:int -> t -> unit
(** Exemplar digest for the [k] slowest points: wall, verdict, critical
    path, and the point's exemplar trace id. *)

val to_json : Buffer.t -> t -> unit
(** Machine form: [{"schema":"lattol-trace/1", ...}] with totals, per
    point categories, verdicts and critical paths. *)

val to_events : Trace_ctx.recorder -> Events.t
(** Chrome-trace projection: one track per point (run-level spans on
    track 0), timestamps in microseconds relative to the trace start.
    Write with {!Events.write_chrome}. *)
