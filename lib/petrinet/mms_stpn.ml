open Lattol_stats
open Lattol_topology
open Lattol_core

type layout = {
  net : Petri.t;
  params : Params.t;
  exec : Petri.transition array;
  ready : Petri.place array;
  route_remote : Petri.transition list;
  thread_places : Petri.place list array;
  mem_idle : Petri.place array;
  out_idle : Petri.place array;
  in_idle : Petri.place array;
  req_stage_places : Petri.place list;
  resp_stage_places : Petri.place list;
  mem_queue_places : Petri.place list;
}

type memory_distribution = Exponential_memory | Deterministic_memory

let build ?(memory = Exponential_memory) p =
  let p = Params.validate_exn p in
  if p.Params.n_t < 1 then invalid_arg "Mms_stpn.build: n_t >= 1";
  if p.Params.l_mem <= 0. || p.Params.s_switch <= 0. then
    invalid_arg "Mms_stpn.build: L and S must be positive";
  if p.Params.sync_unit > 0. then
    invalid_arg
      "Mms_stpn.build: synchronization units are not modelled in the STPN \
       (use the analytical model or the DES)";
  let topo = Params.make_topology p in
  let access = Params.make_access p in
  let n = Params.num_processors p in
  let b = Petri.Builder.create () in
  let exp_t mean = Petri.Timed (Variate.Exponential mean) in
  let memory_variate mean =
    match memory with
    | Exponential_memory -> Variate.Exponential mean
    | Deterministic_memory -> Variate.Deterministic mean
  in
  (* Per-node foundations. *)
  let ready =
    Array.init n (fun i ->
        Petri.Builder.add_place b ~initial:p.Params.n_t (Printf.sprintf "ready%d" i))
  in
  let issued =
    Array.init n (fun i -> Petri.Builder.add_place b (Printf.sprintf "issued%d" i))
  in
  let mem_idle =
    Array.init n (fun i ->
        Petri.Builder.add_place b ~initial:p.Params.mem_ports
          (Printf.sprintf "mem_idle%d" i))
  in
  let out_idle =
    Array.init n (fun i ->
        Petri.Builder.add_place b ~initial:p.Params.switch_pipeline
          (Printf.sprintf "out_idle%d" i))
  in
  let in_idle =
    Array.init n (fun i ->
        Petri.Builder.add_place b ~initial:p.Params.switch_pipeline
          (Printf.sprintf "in_idle%d" i))
  in
  let exec =
    Array.init n (fun i ->
        Petri.Builder.add_transition b
          (Printf.sprintf "exec%d" i)
          (exp_t (Params.processor_occupancy p))
          ~inputs:[ (ready.(i), 1) ]
          ~outputs:[ (issued.(i), 1) ])
  in
  let thread_places = Array.init n (fun i -> [ issued.(i); ready.(i) ]) in
  let req_stages = ref [] and resp_stages = ref [] and mem_stages = ref [] in
  let route_remote = ref [] in
  let note_thread i pl = thread_places.(i) <- pl :: thread_places.(i) in
  (* A shared single server: immediate grab (queue + idle -> in-service),
     timed serve (in-service -> continuation + idle). *)
  let server ?variate ~who ~idle ~service ~queue_place ~next i =
    let q = queue_place in
    let s = Petri.Builder.add_place b (who ^ ".s") in
    note_thread i s;
    let _grab =
      Petri.Builder.add_transition b (who ^ ".grab") (Petri.Immediate 1.)
        ~inputs:[ (q, 1); (idle, 1) ]
        ~outputs:[ (s, 1) ]
    in
    (* Infinite-server semantics: with [c] idle tokens a flow can hold up
       to [c] concurrent services, each progressing independently. *)
    let dist =
      match variate with Some v -> v | None -> Variate.Exponential service
    in
    let _serve =
      Petri.Builder.add_transition b (who ^ ".serve")
        (Petri.Timed_infinite dist)
        ~inputs:[ (s, 1) ]
        ~outputs:((idle, 1) :: next)
    in
    s
  in
  for i = 0 to n - 1 do
    for dst = 0 to n - 1 do
      let em = Access.prob access ~src:i ~dst in
      if em > 0. then begin
        if dst = i then begin
          (* Local access: issued -> memory -> ready. *)
          let mq = Petri.Builder.add_place b (Printf.sprintf "mq%d_%d" i dst) in
          note_thread i mq;
          let tr =
            Petri.Builder.add_transition b
              (Printf.sprintf "loc%d" i)
              (Petri.Immediate em)
              ~inputs:[ (issued.(i), 1) ]
              ~outputs:[ (mq, 1) ]
          in
          ignore tr;
          let ms =
            server
              ~variate:(memory_variate p.Params.l_mem)
              ~who:(Printf.sprintf "mem%d<%d" dst i)
              ~idle:mem_idle.(dst) ~service:p.Params.l_mem ~queue_place:mq
              ~next:[ (ready.(i), 1) ]
              i
          in
          mem_stages := ms :: mq :: !mem_stages
        end
        else begin
          (* Remote access: out switch, inbound hops, memory, and back. *)
          let flow = Printf.sprintf "f%d_%d" i dst in
          let oq = Petri.Builder.add_place b (flow ^ ".oq") in
          note_thread i oq;
          let tr =
            Petri.Builder.add_transition b
              (Printf.sprintf "rt%d_%d" i dst)
              (Petri.Immediate em)
              ~inputs:[ (issued.(i), 1) ]
              ~outputs:[ (oq, 1) ]
          in
          route_remote := tr :: !route_remote;
          (* Build the chain back-to-front: final continuation is ready_i. *)
          let request_route = Topology.route topo ~src:i ~dst in
          let response_route = Topology.route topo ~src:dst ~dst:i in
          (* Response inbound hops. *)
          let final = (ready.(i), 1) in
          let resp_entry, resp_places =
            List.fold_right
              (fun hop (next, places) ->
                let q =
                  Petri.Builder.add_place b
                    (Printf.sprintf "%s.rq@%d" flow hop)
                in
                note_thread i q;
                let s =
                  server
                    ~who:(Printf.sprintf "in%d<%s.r" hop flow)
                    ~idle:in_idle.(hop) ~service:p.Params.s_switch
                    ~queue_place:q ~next:[ next ] i
                in
                ((q, 1), s :: q :: places))
              response_route (final, [])
          in
          (* Response outbound switch at dst. *)
          let orq = Petri.Builder.add_place b (flow ^ ".orq") in
          note_thread i orq;
          let ors =
            server
              ~who:(Printf.sprintf "out%d<%s.r" dst flow)
              ~idle:out_idle.(dst) ~service:p.Params.s_switch ~queue_place:orq
              ~next:[ resp_entry ] i
          in
          resp_stages := ors :: orq :: resp_places @ !resp_stages;
          (* Memory at dst. *)
          let mq = Petri.Builder.add_place b (flow ^ ".mq") in
          note_thread i mq;
          let ms =
            server
              ~variate:(memory_variate p.Params.l_mem)
              ~who:(Printf.sprintf "mem%d<%s" dst flow)
              ~idle:mem_idle.(dst) ~service:p.Params.l_mem ~queue_place:mq
              ~next:[ (orq, 1) ]
              i
          in
          mem_stages := ms :: mq :: !mem_stages;
          (* Request inbound hops, ending at the memory queue. *)
          let req_entry, req_places =
            List.fold_right
              (fun hop (next, places) ->
                let q =
                  Petri.Builder.add_place b
                    (Printf.sprintf "%s.q@%d" flow hop)
                in
                note_thread i q;
                let s =
                  server
                    ~who:(Printf.sprintf "in%d<%s" hop flow)
                    ~idle:in_idle.(hop) ~service:p.Params.s_switch
                    ~queue_place:q ~next:[ next ] i
                in
                ((q, 1), s :: q :: places))
              request_route
              ((mq, 1), [])
          in
          (* Request outbound switch at the source. *)
          let os =
            server
              ~who:(Printf.sprintf "out%d<%s" i flow)
              ~idle:out_idle.(i) ~service:p.Params.s_switch ~queue_place:oq
              ~next:[ req_entry ] i
          in
          req_stages := os :: oq :: req_places @ !req_stages
        end
      end
    done
  done;
  {
    net = Petri.Builder.build b;
    params = p;
    exec;
    ready;
    route_remote = !route_remote;
    thread_places;
    mem_idle;
    out_idle;
    in_idle;
    req_stage_places = !req_stages;
    resp_stage_places = !resp_stages;
    mem_queue_places = !mem_stages;
  }

let sum_places values places =
  List.fold_left (fun acc pl -> acc +. values.(pl)) 0. places

let measures_of ~layout ~place_mean ~exec_rate ~exec_busy ~remote_rate =
  let p = layout.params in
  let n = float_of_int (Params.num_processors p) in
  let lambda = exec_rate /. n in
  let lambda_net = remote_rate /. n in
  let switch_tokens =
    sum_places place_mean layout.req_stage_places
    +. sum_places place_mean layout.resp_stage_places
  in
  let mem_tokens = sum_places place_mean layout.mem_queue_places in
  let s_obs =
    if remote_rate > 0. then switch_tokens /. (2. *. remote_rate) else nan
  in
  let l_obs = if exec_rate > 0. then mem_tokens /. exec_rate else 0. in
  let idle_mean places =
    Array.fold_left (fun acc pl -> acc +. place_mean.(pl)) 0. places
    /. float_of_int (Array.length places)
  in
  {
    Measures.u_p = exec_busy /. n;
    lambda;
    lambda_net;
    s_obs;
    l_obs;
    cycle_time = (if lambda > 0. then float_of_int p.Params.n_t /. lambda else 0.);
    util_memory = 1. -. idle_mean layout.mem_idle;
    util_sync = 0.;
    su_obs = 0.;
    util_switch_in = 1. -. idle_mean layout.in_idle;
    util_switch_out = 1. -. idle_mean layout.out_idle;
    queue_processor = 0.;
    queue_memory = mem_tokens /. n;
    queue_network = switch_tokens /. n;
    iterations = 0;
    converged = true;
  }

type result = {
  measures : Measures.t;
  stats : Simulation.stats;
  layout : layout;
}

let run ?(seed = 1) ?(warmup = 1_000.) ?(horizon = 100_000.) ?memory ?faults p
    =
  (* The token game has no native failure-repair transitions; mirror the
     DES fault plan quasi-statically by inflating the affected service
     times to their availability-weighted means. *)
  let p =
    match faults with
    | None -> p
    | Some plan -> Lattol_robust.Fault_plan.degrade_params plan p
  in
  let layout = build ?memory p in
  let stats = Simulation.simulate ~seed ~warmup ~horizon layout.net in
  let exec_rate =
    Array.fold_left (fun acc tr -> acc +. stats.Simulation.rates.(tr)) 0. layout.exec
  in
  let exec_busy =
    Array.fold_left (fun acc tr -> acc +. stats.Simulation.busy.(tr)) 0. layout.exec
  in
  let remote_rate =
    List.fold_left
      (fun acc tr -> acc +. stats.Simulation.rates.(tr))
      0. layout.route_remote
  in
  let measures =
    measures_of ~layout ~place_mean:stats.Simulation.place_mean ~exec_rate
      ~exec_busy ~remote_rate
    |> fun m ->
    {
      m with
      Measures.queue_processor =
        Array.fold_left
          (fun acc pl -> acc +. stats.Simulation.place_mean.(pl))
          0. layout.ready
        /. float_of_int (Array.length layout.ready);
      iterations = stats.Simulation.events;
    }
  in
  { measures; stats; layout }

let exact ?(max_states = 200_000) p =
  let layout = build p in
  let graph = Reachability.explore ~max_states layout.net in
  let pi = Reachability.steady_state graph in
  let place_mean =
    Array.init (Petri.num_places layout.net) (fun pl ->
        Reachability.place_mean graph ~pi pl)
  in
  let exec_rate =
    Array.fold_left
      (fun acc tr -> acc +. Reachability.throughput graph ~pi tr)
      0. layout.exec
  in
  let exec_busy =
    (* The processor works whenever its ready pool is non-empty. *)
    Array.fold_left
      (fun acc ready_place ->
        acc +. Reachability.probability_nonempty graph ~pi ready_place)
      0. layout.ready
  in
  (* Remote rate: flux through timed exec is split by immediate routing; the
     remote fraction equals p_remote by construction. *)
  let remote_rate = exec_rate *. layout.params.Params.p_remote in
  measures_of ~layout ~place_mean ~exec_rate ~exec_busy ~remote_rate
