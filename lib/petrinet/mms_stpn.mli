(** The multithreaded multiprocessor system as a stochastic timed Petri net
    (the paper's Section 8 validation model).

    Each processor is a single-server timed transition draining its ready
    pool; memory modules and switches are single servers shared by many
    flows, modelled with one idle token and immediate grab / timed serve
    transition pairs per flow stage; remote accesses walk per-(source,
    destination) chains of stage places along the dimension-order route and
    back.  Immediate transitions resolve the local/remote routing choice
    with the access-pattern probabilities.

    Two uses: token-game simulation ({!run}, cross-checking the AMVA
    model — Figure 11), and exact CTMC solution on tiny configurations
    ({!exact}) through {!Reachability}. *)

open Lattol_core

type layout = {
  net : Petri.t;
  params : Params.t;
  exec : Petri.transition array;         (** per node: the processor server *)
  ready : Petri.place array;             (** per node: the thread ready pool *)
  route_remote : Petri.transition list;  (** remote routing immediates *)
  thread_places : Petri.place list array;
      (** per node: every place a thread of that node can occupy — each
          node's list carries a P-invariant of value [n_t] *)
  mem_idle : Petri.place array;
  out_idle : Petri.place array;
  in_idle : Petri.place array;
  req_stage_places : Petri.place list;   (** request-direction switch stages *)
  resp_stage_places : Petri.place list;  (** response-direction switch stages *)
  mem_queue_places : Petri.place list;   (** memory queue + in-service, all flows *)
}

type memory_distribution =
  | Exponential_memory
  | Deterministic_memory
      (** the paper's Section 8 sensitivity check: deterministic [L] moved
          [S_obs] by less than 10% *)

val build : ?memory:memory_distribution -> Params.t -> layout
(** Construct the net.  Requires [runlength > 0], [l_mem > 0] and
    [s_switch > 0] (zero-delay subsystems have no STPN counterpart), and
    [n_t >= 1].  [memory] (default exponential) selects the memory service
    distribution. *)

type result = {
  measures : Measures.t;     (** same record as the model and the DES *)
  stats : Simulation.stats;  (** raw per-place / per-transition statistics *)
  layout : layout;
}

val run :
  ?seed:int -> ?warmup:float -> ?horizon:float ->
  ?memory:memory_distribution ->
  ?faults:Lattol_robust.Fault_plan.t -> Params.t -> result
(** Token-game simulation (default warm-up 1_000, horizon 100_000 — the
    paper's run length).  [faults] applies the quasi-static view of a
    fault plan ({!Lattol_robust.Fault_plan.degrade_params}): switch and
    memory service times are inflated to their availability-weighted
    means, so the net models the long-run average of the degraded machine
    rather than individual outages (the DES injects those exactly).  The
    returned [layout.params] carries the degraded service times. *)

val exact : ?max_states:int -> Params.t -> Measures.t
(** Exact stationary solution via the tangible reachability graph; only
    feasible for very small [k]/[n_t].  Raises {!Reachability.Unbounded}
    when the cap (default 200_000) is exceeded. *)
