module Metrics = Lattol_obs.Metrics

type endpoint = Tcp of int | Unix_path of string

type t = {
  fd : Unix.file_descr;
  address : string;
  port : int option;
  unlink : string option;
  prefix : string;
  snapshot : unit -> Metrics.snapshot;
  health : unit -> string option;
  runtime : (unit -> string) option;
  trace : (unit -> string) option;
  stopping : bool Atomic.t;
  scrape_count : int Atomic.t;
  mutable domain : unit Domain.t option;
}

let address t = t.address

let port t = t.port

let scrapes t = Atomic.get t.scrape_count

(* ------------------------------------------------------------------ *)
(* HTTP plumbing *)

let contains_head s =
  let n = String.length s in
  let rec go i =
    if i + 1 >= n then false
    else if
      s.[i] = '\n'
      && (s.[i + 1] = '\n'
         || (i + 2 < n && s.[i + 1] = '\r' && s.[i + 2] = '\n'))
    then true
    else go (i + 1)
  in
  go 0

(* Read until the blank line ending the request head (we never need a
   body), bounded in size; the socket carries a receive timeout so a
   stalled client cannot wedge the serving domain. *)
let read_head fd =
  let chunk = Bytes.create 2048 in
  let b = Buffer.create 256 in
  let rec go () =
    if Buffer.length b > 8192 then Buffer.contents b
    else
      let k = Unix.read fd chunk 0 (Bytes.length chunk) in
      if k = 0 then Buffer.contents b
      else begin
        Buffer.add_subbytes b chunk 0 k;
        let s = Buffer.contents b in
        if contains_head s then s else go ()
      end
  in
  go ()

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let k = Unix.write_substring fd s off (n - off) in
      go (off + k)
  in
  go 0

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let route t path =
  match path with
  | "/metrics" ->
    response ~status:"200 OK" ~content_type:Prom.content_type
      (Prom.render ~prefix:t.prefix (t.snapshot ()))
  | "/metrics.json" ->
    response ~status:"200 OK" ~content_type:"application/json"
      (Metrics.json_of_snapshot (t.snapshot ()))
  | "/runtime.json" -> (
    match t.runtime with
    | None ->
      response ~status:"404 Not Found"
        ~content_type:"application/json" "{\"profiling\":false}"
    | Some f -> (
      match f () with
      | body -> response ~status:"200 OK" ~content_type:"application/json" body
      | exception e ->
        response ~status:"500 Internal Server Error"
          ~content_type:"text/plain; charset=utf-8"
          ("runtime probe raised " ^ Printexc.to_string e ^ "\n")))
  | "/trace.json" -> (
    match t.trace with
    | None ->
      response ~status:"404 Not Found"
        ~content_type:"application/json" "{\"tracing\":false}"
    | Some f -> (
      match f () with
      | body -> response ~status:"200 OK" ~content_type:"application/json" body
      | exception e ->
        response ~status:"500 Internal Server Error"
          ~content_type:"text/plain; charset=utf-8"
          ("trace probe raised " ^ Printexc.to_string e ^ "\n")))
  | "/healthz" -> (
    (* The health probe must answer even if the callback misbehaves: a
       raising probe reads as degraded, never as a wedged endpoint. *)
    match t.health () with
    | None ->
      response ~status:"200 OK" ~content_type:"text/plain; charset=utf-8"
        "ok\n"
    | Some reason ->
      response ~status:"503 Service Unavailable"
        ~content_type:"text/plain; charset=utf-8"
        ("degraded: " ^ reason ^ "\n")
    | exception e ->
      response ~status:"503 Service Unavailable"
        ~content_type:"text/plain; charset=utf-8"
        ("degraded: health probe raised " ^ Printexc.to_string e ^ "\n"))
  | _ ->
    response ~status:"404 Not Found" ~content_type:"text/plain; charset=utf-8"
      "not found\n"

let handle t cfd =
  Unix.setsockopt_float cfd Unix.SO_RCVTIMEO 2.;
  Unix.setsockopt_float cfd Unix.SO_SNDTIMEO 2.;
  let head = read_head cfd in
  let line =
    match String.index_opt head '\n' with
    | Some i -> String.trim (String.sub head 0 i)
    | None -> String.trim head
  in
  let reply =
    match String.split_on_char ' ' line with
    | meth :: target :: _ ->
      if not (String.equal meth "GET") then
        response ~status:"405 Method Not Allowed"
          ~content_type:"text/plain; charset=utf-8" "method not allowed\n"
      else
        let path =
          match String.index_opt target '?' with
          | Some i -> String.sub target 0 i
          | None -> target
        in
        route t path
    | _ ->
      response ~status:"400 Bad Request"
        ~content_type:"text/plain; charset=utf-8" "bad request\n"
  in
  write_all cfd reply;
  Atomic.incr t.scrape_count

(* Top-level so the [Domain.spawn] closure below is a bare application:
   all shared state the loop touches is atomic or socket-owned. *)
let rec accept_loop t =
  if not (Atomic.get t.stopping) then begin
    (match Unix.select [ t.fd ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept t.fd with
      | cfd, _ ->
        (try handle t cfd with Unix.Unix_error _ | Sys_error _ -> ());
        (try Unix.close cfd with Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    accept_loop t
  end

(* ------------------------------------------------------------------ *)

let bind_endpoint = function
  | Tcp port -> (
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    match
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 16
    with
    | () ->
      let actual =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> port
      in
      Ok (fd, Printf.sprintf "127.0.0.1:%d" actual, Some actual, None)
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot bind 127.0.0.1:%d: %s" port
           (Unix.error_message e)))
  | Unix_path path -> (
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 16
    with
    | () -> Ok (fd, path, None, Some path)
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot bind socket %s: %s" path
           (Unix.error_message e)))

let start ?(prefix = "lattol_") ?(health = fun () -> None) ?runtime ?trace
    ~snapshot endpoint =
  match bind_endpoint endpoint with
  | Error _ as e -> e
  | Ok (fd, address, port, unlink) ->
    (* A scraper hanging up mid-response must raise EPIPE, not kill the
       run. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let t =
      {
        fd;
        address;
        port;
        unlink;
        prefix;
        snapshot;
        health;
        runtime;
        trace;
        stopping = Atomic.make false;
        scrape_count = Atomic.make 0;
        domain = None;
      }
    in
    t.domain <- Some (Domain.spawn (fun () -> accept_loop t));
    Ok t

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (match t.domain with Some d -> Domain.join d | None -> ());
    t.domain <- None;
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    match t.unlink with
    | Some path -> ( try Sys.remove path with Sys_error _ -> ())
    | None -> ()
  end
