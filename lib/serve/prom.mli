(** Prometheus text exposition (format 0.0.4) of a metrics snapshot.

    Series names are sanitized to the Prometheus charset and prefixed
    (default [lattol_]); families sharing a name are grouped under one
    [# HELP] / [# TYPE] header in first-appearance order.  Counters and
    gauges map directly, time-weighted averages render as gauges, and
    {!Lattol_stats.Histogram} series expand to the conventional
    [_bucket{le="..."}] / [_count] / [_sum] triplet (cumulative buckets,
    underflow attributed to every bucket, overflow to [+Inf] only). *)

val content_type : string
(** The [Content-Type] value scrapers expect:
    [text/plain; version=0.0.4; charset=utf-8]. *)

val render : ?prefix:string -> Lattol_obs.Metrics.snapshot -> string
(** The full exposition, newline-terminated.  [prefix] defaults to
    ["lattol_"]. *)
