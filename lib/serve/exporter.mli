(** Dependency-free HTTP/1.0 metrics exporter.

    One background [Domain] owns a listening socket — TCP on loopback or a
    Unix-domain path — and answers:

    - [GET /metrics]: Prometheus text exposition ({!Prom.render}) of the
      snapshot callback;
    - [GET /metrics.json]: the registry JSON document, byte-identical to
      what {!Lattol_obs.Metrics.write_json_snapshot} flushes to
      [--metrics-out], so a final scrape equals the written file;
    - [GET /healthz]: ["ok\n"] (200) while the health callback reports
      nothing, ["degraded: <reason>\n"] (503) once it does — e.g. after
      the solve cache has quarantined corrupt entries;
    - [GET /runtime.json]: the live runtime-profiler counters when a
      [runtime] callback was supplied (typically
      [Lattol_obs.Runtime_profile.live_json]), or
      [{"profiling":false}] (404) when profiling is off;
    - [GET /trace.json]: the live causal-trace report when a [trace]
      callback was supplied (typically {!Lattol_obs.Trace_report.to_json}
      over the run's recorder), or [{"tracing":false}] (404) when tracing
      is off.

    Every request re-samples the snapshot callback, so scrapes observe the
    live run.  Connections are serial (scrape traffic, not serving
    traffic): one request per connection, [Connection: close].  {!stop} is
    graceful — the accept loop drains its current request, the domain is
    joined, the socket closed (and unlinked for Unix paths). *)

type endpoint =
  | Tcp of int  (** bind 127.0.0.1:port; 0 picks an ephemeral port *)
  | Unix_path of string  (** bind a Unix-domain socket at this path *)

type t

val start :
  ?prefix:string ->
  ?health:(unit -> string option) ->
  ?runtime:(unit -> string) ->
  ?trace:(unit -> string) ->
  snapshot:(unit -> Lattol_obs.Metrics.snapshot) ->
  endpoint ->
  (t, string) result
(** Bind, listen and spawn the serving domain.  [snapshot] is called on
    the serving domain at every scrape: it must be domain-safe (registry
    snapshots and {!Progress.to_snapshot} are).  [health] is sampled on
    every [/healthz] probe, also on the serving domain: [None] keeps the
    probe ["ok"], [Some reason] turns it 503 degraded (a raising callback
    reads as degraded too, never as a wedged endpoint).  Default: always
    healthy.  [prefix] overrides the Prometheus name prefix (default
    [lattol_]).  [Error] carries the bind failure ([EADDRINUSE], a bad
    path...); nothing is spawned then.  Starting an exporter ignores
    [SIGPIPE] process-wide — a scraper hanging up mid-response must not
    kill the run. *)

val address : t -> string
(** Human-readable bound address: ["127.0.0.1:43017"] or the socket
    path. *)

val port : t -> int option
(** The actual TCP port (resolved when {!Tcp}[ 0] was requested); [None]
    for Unix-domain endpoints. *)

val scrapes : t -> int
(** Requests answered so far (any route). *)

val stop : t -> unit
(** Graceful shutdown; idempotent.  Blocks until the serving domain has
    joined. *)
