(** Live run-progress heartbeat.

    A [Progress.t] is the mutable side-channel a running experiment
    publishes into — points done / total, pool worker busy/idle state,
    queue depth, ad-hoc gauges (DES virtual time, event rate) and pull
    callbacks (cache hit/miss/inflight) — and the {!Exporter} reads out of.
    Every update is lock-free ([Atomic]) or under a short internal mutex,
    so instrumentation hooks may fire from any pool domain without
    affecting the computed results.

    {!to_snapshot} renders the whole state as ordinary
    {!Lattol_obs.Metrics.snapshot} series (names below, unprefixed — the
    Prometheus renderer adds [lattol_]):

    - [<phase>_points_done] (counter), [<phase>_points_total] (gauge)
    - [pool_workers], [pool_busy_domains], [pool_queue_depth] (gauges)
    - [pool_worker_busy_ns{worker=..}], [pool_worker_idle_ns{worker=..}]
      (counters; cumulative per-worker task/starvation time, advanced on
      the pool's task edges)
    - [elapsed_seconds], [eta_seconds] (gauges; ETA is linear
      extrapolation from the done/total ratio, [nan] until known)
    - one gauge or counter per {!set_gauge} / {!register_pull} series. *)

type t

val create : ?phase:string -> unit -> t
(** [phase] names the unit of work (default ["run"]): it prefixes the
    points-done/total series, e.g. [sweep_points_done]. *)

val phase : t -> string

(** {1 Work accounting} *)

val set_total : t -> int -> unit
val step : ?n:int -> t -> unit
val done_count : t -> int
val total : t -> int

(** {1 Pool state} — normally driven by {!pool_monitor}. *)

val set_workers : t -> int -> unit
val worker_busy : t -> bool -> unit
(** [worker_busy t b] increments (true) / decrements (false) the busy
    count. *)

val busy_workers : t -> int
val set_queue_depth : t -> int -> unit

val worker_times : t -> (int * float * float) list
(** [(worker, busy_seconds, idle_seconds)] per worker seen so far, sorted
    by worker id.  Busy is time inside tasks, idle is time inside the
    worker loop waiting between tasks; both advance on task edges, so a
    task in flight contributes only once it ends. *)

val pool_monitor : t -> Lattol_exec.Pool.monitor
(** The {!Lattol_exec.Pool} hook bundle that keeps this heartbeat
    current: worker count from [on_start], busy/idle transitions, queue
    depth after every claim, one {!step} per completed item. *)

(** {1 Ad-hoc series} *)

val set_gauge : t -> string -> float -> unit
(** Publish/update a named gauge (first write fixes its position in the
    snapshot order). *)

val register_pull :
  t -> ?kind:[ `Counter | `Gauge ] -> string -> (unit -> float) -> unit
(** Register a callback sampled at snapshot time (default [`Gauge]).  The
    callback runs on the scraping domain: it must be domain-safe (e.g.
    {!Lattol_exec.Cache.stats}, which locks internally). *)

(** {1 Clock} *)

val start : t -> unit
(** Stamp the wall-clock start (idempotent: first call wins). *)

val finish : t -> unit
(** Freeze the clock: [elapsed_seconds] stops moving and [eta_seconds]
    drops to 0, so every later snapshot — the final scrape and the
    [--metrics-out] flush — renders identical bytes. *)

val elapsed : t -> float

val eta : t -> float
(** Linear extrapolation of the remaining work.  Always finite and
    non-negative: with no declared total, nothing done yet, or ~0 elapsed
    time the estimate is unknown and reads as [0.] — never [inf]/[nan],
    so the [eta_seconds] gauge stays JSON-parseable. *)

val to_snapshot : t -> Lattol_obs.Metrics.snapshot
(** Point-in-time view of everything above, safe to call from any
    domain. *)
