module Metrics = Lattol_obs.Metrics
module Histogram = Lattol_stats.Histogram

let content_type = "text/plain; version=0.0.4; charset=utf-8"

let name_char ~first c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
  | '0' .. '9' when not first -> c
  | _ -> '_'

let sanitize name =
  String.init (String.length name) (fun i ->
      name_char ~first:(i = 0) name.[i])

let escape_label v =
  let b = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

(* Shortest decimal that round-trips, in the style of the JSON sink; the
   exposition format also admits the spelled-out specials. *)
let number v =
  if Float.is_nan v then "NaN"
  else if Float.equal v infinity then "+Inf"
  else if Float.equal v neg_infinity then "-Inf"
  else
    let s = Printf.sprintf "%.15g" v in
    if Float.equal (float_of_string s) v then s
    else
      let s = Printf.sprintf "%.16g" v in
      if Float.equal (float_of_string s) v then s
      else Printf.sprintf "%.17g" v

let label_block = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label v))
           labels)
    ^ "}"

let prom_type = function
  | Metrics.Counter_v _ -> "counter"
  | Metrics.Gauge_v _ | Metrics.Twa_v _ -> "gauge"
  | Metrics.Hist_v _ -> "histogram"

(* Group series into name families, preserving first-appearance order:
   Prometheus requires all samples of one metric to sit under a single
   TYPE header. *)
let families snap =
  List.fold_left
    (fun acc s ->
      let name = s.Metrics.s_name in
      match List.assoc_opt name acc with
      | Some members ->
        members := s :: !members;
        acc
      | None -> acc @ [ (name, ref [ s ]) ])
    [] snap
  |> List.map (fun (name, members) -> (name, List.rev !members))

(* OpenMetrics-style exemplar suffix on a bucket line:
   [... # {trace_id="sweep-x/12"} 3.4].  Strict 0.0.4 parsers that stop
   at the sample value ignore the suffix; OpenMetrics-aware ones link the
   bucket to the exemplified trace. *)
let exemplar_suffix (cell : Metrics.exemplar option) =
  match cell with
  | None -> ""
  | Some e ->
    Printf.sprintf " # {trace_id=\"%s\"} %s" (escape_label e.e_trace)
      (number e.e_value)

let render_histogram b fname labels h ex =
  let extra_label l =
    match labels with
    | [] -> "{" ^ l ^ "}"
    | _ ->
      let base = label_block labels in
      String.sub base 0 (String.length base - 1) ^ "," ^ l ^ "}"
  in
  (* Cumulative counts: underflow sits below every upper bound, overflow
     only below +Inf. *)
  let bins = Histogram.bins h in
  let cell i = if i < Array.length ex then ex.(i) else None in
  let acc = ref (Histogram.underflow h) in
  for i = 0 to bins - 1 do
    acc := !acc + Histogram.bin_count h i;
    let _, upper = Histogram.bin_bounds h i in
    Printf.bprintf b "%s_bucket%s %d%s\n" fname
      (extra_label (Printf.sprintf "le=\"%s\"" (number upper)))
      !acc
      (exemplar_suffix (cell i))
  done;
  Printf.bprintf b "%s_bucket%s %d%s\n" fname
    (extra_label "le=\"+Inf\"")
    (Histogram.count h)
    (exemplar_suffix (cell (bins + 1)));
  Printf.bprintf b "%s_count%s %d\n" fname (label_block labels)
    (Histogram.count h);
  Printf.bprintf b "%s_sum%s %s\n" fname (label_block labels)
    (number (Histogram.sum h))

let render ?(prefix = "lattol_") snap =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, members) ->
      let fname = prefix ^ sanitize name in
      let first = List.hd members in
      let help =
        match
          List.find_opt (fun s -> s.Metrics.s_help <> "") members
        with
        | Some s -> s.Metrics.s_help
        | None -> ""
      in
      if help <> "" then begin
        (* HELP lines escape only backslash and newline. *)
        let escaped =
          String.concat "\\n" (String.split_on_char '\n' help)
        in
        Printf.bprintf b "# HELP %s %s\n" fname escaped
      end;
      Printf.bprintf b "# TYPE %s %s\n" fname
        (prom_type first.Metrics.s_value);
      List.iter
        (fun s ->
          let labels = label_block s.Metrics.s_labels in
          match s.Metrics.s_value with
          | Metrics.Counter_v c -> Printf.bprintf b "%s%s %d\n" fname labels c
          | Metrics.Gauge_v v | Metrics.Twa_v v ->
            Printf.bprintf b "%s%s %s\n" fname labels (number v)
          | Metrics.Hist_v (h, ex) ->
            render_histogram b fname s.Metrics.s_labels h ex)
        members)
    (families snap);
  Buffer.contents b
