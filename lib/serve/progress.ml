module Metrics = Lattol_obs.Metrics
module Pool = Lattol_exec.Pool

type kind = [ `Counter | `Gauge ]

type t = {
  phase_name : string;
  total_ : int Atomic.t;
  done_ : int Atomic.t;
  workers : int Atomic.t;
  busy : int Atomic.t;
  queue_depth : int Atomic.t;
  started : float Atomic.t; (* wall-clock stamp; nan = not yet *)
  finished : float Atomic.t; (* wall-clock stamp; nan = still running *)
  lock : Mutex.t;
  (* both in first-registration order, so snapshots are stable *)
  mutable gauges : (string * float) list;
  mutable pulls : (string * kind * (unit -> float)) list;
}

let create ?(phase = "run") () =
  {
    phase_name = phase;
    total_ = Atomic.make 0;
    done_ = Atomic.make 0;
    workers = Atomic.make 0;
    busy = Atomic.make 0;
    queue_depth = Atomic.make 0;
    started = Atomic.make nan;
    finished = Atomic.make nan;
    lock = Mutex.create ();
    gauges = [];
    pulls = [];
  }

let phase t = t.phase_name

let set_total t n = Atomic.set t.total_ n

let step ?(n = 1) t = ignore (Atomic.fetch_and_add t.done_ n)

let done_count t = Atomic.get t.done_

let total t = Atomic.get t.total_

let set_workers t n = Atomic.set t.workers n

let worker_busy t b =
  ignore (Atomic.fetch_and_add t.busy (if b then 1 else -1))

let busy_workers t = Atomic.get t.busy

let set_queue_depth t n = Atomic.set t.queue_depth n

let pool_monitor t =
  {
    Pool.on_start = (fun ~jobs ~items:_ -> set_workers t jobs);
    on_worker = (fun ~worker:_ ~busy -> worker_busy t busy);
    on_claim = (fun ~remaining -> set_queue_depth t remaining);
    on_item = (fun () -> step t);
  }

let set_gauge t name v =
  Mutex.protect t.lock (fun () ->
      if List.mem_assoc name t.gauges then
        t.gauges <-
          List.map
            (fun (n, old) -> if String.equal n name then (n, v) else (n, old))
            t.gauges
      else t.gauges <- t.gauges @ [ (name, v) ])

let register_pull t ?(kind = `Gauge) name f =
  Mutex.protect t.lock (fun () -> t.pulls <- t.pulls @ [ (name, kind, f) ])

let start t =
  let now = Unix.gettimeofday () in
  ignore (Atomic.compare_and_set t.started nan now)

let finish t =
  let now = Unix.gettimeofday () in
  ignore (Atomic.compare_and_set t.finished nan now)

let elapsed t =
  let t0 = Atomic.get t.started in
  if Float.is_nan t0 then 0.
  else
    let t1 = Atomic.get t.finished in
    let t1 = if Float.is_nan t1 then Unix.gettimeofday () else t1 in
    Float.max 0. (t1 -. t0)

let eta t =
  if not (Float.is_nan (Atomic.get t.finished)) then 0.
  else
    let total = Atomic.get t.total_ and d = Atomic.get t.done_ in
    if total <= 0 || d <= 0 then nan
    else if d >= total then 0.
    else elapsed t /. float_of_int d *. float_of_int (total - d)

let to_snapshot t =
  let gauges, pulls =
    Mutex.protect t.lock (fun () -> (t.gauges, t.pulls))
  in
  let series name help v =
    { Metrics.s_name = name; s_labels = []; s_help = help; s_value = v }
  in
  let phase_series =
    [
      series (t.phase_name ^ "_points_done")
        "work items completed so far"
        (Metrics.Counter_v (Atomic.get t.done_));
      series (t.phase_name ^ "_points_total")
        "work items planned for this run"
        (Metrics.Gauge_v (float_of_int (Atomic.get t.total_)));
      series "pool_workers" "domains the work pool was configured with"
        (Metrics.Gauge_v (float_of_int (Atomic.get t.workers)));
      series "pool_busy_domains" "pool domains currently executing work"
        (Metrics.Gauge_v (float_of_int (Atomic.get t.busy)));
      series "pool_queue_depth" "work items not yet claimed by any domain"
        (Metrics.Gauge_v (float_of_int (Atomic.get t.queue_depth)));
      series "elapsed_seconds" "wall-clock time since the run started"
        (Metrics.Gauge_v (elapsed t));
      series "eta_seconds"
        "estimated wall-clock time to completion (linear extrapolation)"
        (Metrics.Gauge_v (eta t));
    ]
  in
  let gauge_series =
    List.map (fun (name, v) -> series name "" (Metrics.Gauge_v v)) gauges
  in
  let pull_series =
    List.map
      (fun (name, kind, f) ->
        let v = f () in
        match kind with
        | `Counter -> series name "" (Metrics.Counter_v (int_of_float v))
        | `Gauge -> series name "" (Metrics.Gauge_v v))
      pulls
  in
  phase_series @ gauge_series @ pull_series
