module Metrics = Lattol_obs.Metrics
module Pool = Lattol_exec.Pool

type kind = [ `Counter | `Gauge ]

(* Per-worker busy/idle clock, advanced on every task edge the pool
   reports.  [edge] is the stamp of the last transition; between a
   worker-loop entry and the first task the elapsed time is idle, inside
   a task it is busy. *)
type worker_acct = {
  mutable live : bool; (* inside the worker loop *)
  mutable in_task : bool;
  mutable edge : float;
  mutable busy_s : float;
  mutable idle_s : float;
}

type t = {
  phase_name : string;
  total_ : int Atomic.t;
  done_ : int Atomic.t;
  workers : int Atomic.t;
  busy : int Atomic.t;
  queue_depth : int Atomic.t;
  started : float Atomic.t; (* wall-clock stamp; nan = not yet *)
  finished : float Atomic.t; (* wall-clock stamp; nan = still running *)
  lock : Mutex.t;
  (* both in first-registration order, so snapshots are stable *)
  mutable gauges : (string * float) list;
  mutable pulls : (string * kind * (unit -> float)) list;
  accts : (int, worker_acct) Hashtbl.t; (* under [lock] *)
}

let create ?(phase = "run") () =
  {
    phase_name = phase;
    total_ = Atomic.make 0;
    done_ = Atomic.make 0;
    workers = Atomic.make 0;
    busy = Atomic.make 0;
    queue_depth = Atomic.make 0;
    started = Atomic.make nan;
    finished = Atomic.make nan;
    lock = Mutex.create ();
    gauges = [];
    pulls = [];
    accts = Hashtbl.create 8;
  }

let phase t = t.phase_name

let set_total t n = Atomic.set t.total_ n

let step ?(n = 1) t = ignore (Atomic.fetch_and_add t.done_ n)

let done_count t = Atomic.get t.done_

let total t = Atomic.get t.total_

let set_workers t n = Atomic.set t.workers n

let worker_busy t b =
  ignore (Atomic.fetch_and_add t.busy (if b then 1 else -1))

let busy_workers t = Atomic.get t.busy

let set_queue_depth t n = Atomic.set t.queue_depth n

let acct t w =
  match Hashtbl.find_opt t.accts w with
  | Some a -> a
  | None ->
    let a =
      { live = false; in_task = false; edge = nan; busy_s = 0.; idle_s = 0. }
    in
    Hashtbl.replace t.accts w a;
    a

let worker_loop_edge t w busy =
  let now = Unix.gettimeofday () in
  Mutex.protect t.lock (fun () ->
      let a = acct t w in
      if busy then begin
        a.live <- true;
        a.edge <- now
      end
      else begin
        if a.live && (not a.in_task) && not (Float.is_nan a.edge) then
          a.idle_s <- a.idle_s +. Float.max 0. (now -. a.edge);
        a.live <- false
      end)

let task_edge t w busy =
  let now = Unix.gettimeofday () in
  Mutex.protect t.lock (fun () ->
      let a = acct t w in
      if busy then begin
        if a.live && not (Float.is_nan a.edge) then
          a.idle_s <- a.idle_s +. Float.max 0. (now -. a.edge);
        a.in_task <- true;
        a.edge <- now
      end
      else begin
        if a.in_task && not (Float.is_nan a.edge) then
          a.busy_s <- a.busy_s +. Float.max 0. (now -. a.edge);
        a.in_task <- false;
        a.edge <- now
      end)

let worker_times t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun w a acc -> (w, a.busy_s, a.idle_s) :: acc) t.accts []
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b))

let pool_monitor t =
  {
    Pool.on_start = (fun ~jobs ~items:_ -> set_workers t jobs);
    on_worker =
      (fun ~worker ~busy ->
        worker_busy t busy;
        worker_loop_edge t worker busy);
    on_claim = (fun ~remaining -> set_queue_depth t remaining);
    on_item = (fun () -> step t);
    on_task = (fun ~worker ~busy -> task_edge t worker busy);
  }

let set_gauge t name v =
  Mutex.protect t.lock (fun () ->
      if List.mem_assoc name t.gauges then
        t.gauges <-
          List.map
            (fun (n, old) -> if String.equal n name then (n, v) else (n, old))
            t.gauges
      else t.gauges <- t.gauges @ [ (name, v) ])

let register_pull t ?(kind = `Gauge) name f =
  Mutex.protect t.lock (fun () -> t.pulls <- t.pulls @ [ (name, kind, f) ])

let start t =
  let now = Unix.gettimeofday () in
  ignore (Atomic.compare_and_set t.started nan now)

let finish t =
  let now = Unix.gettimeofday () in
  ignore (Atomic.compare_and_set t.finished nan now)

let elapsed t =
  let t0 = Atomic.get t.started in
  if Float.is_nan t0 then 0.
  else
    let t1 = Atomic.get t.finished in
    let t1 = if Float.is_nan t1 then Unix.gettimeofday () else t1 in
    Float.max 0. (t1 -. t0)

(* Never emits a non-finite value: an unknown ETA (no total declared,
   nothing done yet, ~0 elapsed) reads as 0, so /metrics.json stays free
   of inf/nan and downstream JSON parsers never choke on the gauge. *)
let eta t =
  if not (Float.is_nan (Atomic.get t.finished)) then 0.
  else
    let total = Atomic.get t.total_ and d = Atomic.get t.done_ in
    if total <= 0 || d <= 0 || d >= total then 0.
    else
      let e = elapsed t /. float_of_int d *. float_of_int (total - d) in
      if Float.is_finite e && e > 0. then e else 0.

let to_snapshot t =
  let gauges, pulls =
    Mutex.protect t.lock (fun () -> (t.gauges, t.pulls))
  in
  let series name help v =
    { Metrics.s_name = name; s_labels = []; s_help = help; s_value = v }
  in
  let phase_series =
    [
      series (t.phase_name ^ "_points_done")
        "work items completed so far"
        (Metrics.Counter_v (Atomic.get t.done_));
      series (t.phase_name ^ "_points_total")
        "work items planned for this run"
        (Metrics.Gauge_v (float_of_int (Atomic.get t.total_)));
      series "pool_workers" "domains the work pool was configured with"
        (Metrics.Gauge_v (float_of_int (Atomic.get t.workers)));
      series "pool_busy_domains" "pool domains currently executing work"
        (Metrics.Gauge_v (float_of_int (Atomic.get t.busy)));
      series "pool_queue_depth" "work items not yet claimed by any domain"
        (Metrics.Gauge_v (float_of_int (Atomic.get t.queue_depth)));
    ]
  in
  let ns s = int_of_float (s *. 1e9) in
  let worker_series =
    List.concat_map
      (fun (w, busy_s, idle_s) ->
        let labels = [ ("worker", string_of_int w) ] in
        [
          {
            Metrics.s_name = "pool_worker_busy_ns";
            s_labels = labels;
            s_help = "cumulative time this worker spent executing tasks";
            s_value = Metrics.Counter_v (ns busy_s);
          };
          {
            Metrics.s_name = "pool_worker_idle_ns";
            s_labels = labels;
            s_help = "cumulative time this worker waited for work";
            s_value = Metrics.Counter_v (ns idle_s);
          };
        ])
      (worker_times t)
  in
  let tail_series =
    [
      series "elapsed_seconds" "wall-clock time since the run started"
        (Metrics.Gauge_v (elapsed t));
      series "eta_seconds"
        "estimated wall-clock time to completion (linear extrapolation)"
        (Metrics.Gauge_v (eta t));
    ]
  in
  let gauge_series =
    List.map (fun (name, v) -> series name "" (Metrics.Gauge_v v)) gauges
  in
  let pull_series =
    List.map
      (fun (name, kind, f) ->
        let v = f () in
        match kind with
        | `Counter -> series name "" (Metrics.Counter_v (int_of_float v))
        | `Gauge -> series name "" (Metrics.Gauge_v v))
      pulls
  in
  phase_series @ worker_series @ tail_series @ gauge_series @ pull_series
