type pattern = Geometric of float | Uniform | Explicit of float array array

type t = {
  topo : Topology.t;
  pattern : pattern;
  p_remote : float;
  (* probs.(src).(dst) = em_{src,dst}; precomputed because every solver and
     simulator reads it in inner loops. *)
  probs : float array array;
}

let build_row topo pattern p_remote src =
  let p = Topology.num_nodes topo in
  let row = Array.make p 0. in
  row.(src) <- 1. -. p_remote;
  if p_remote > 0. then begin
    match pattern with
    | Explicit _ -> assert false (* handled before build_row is reached *)
    | Uniform ->
      let share = p_remote /. float_of_int (p - 1) in
      for dst = 0 to p - 1 do
        if dst <> src then row.(dst) <- share
      done
    | Geometric p_sw ->
      let counts = Topology.distance_counts topo src in
      let d_max = Array.length counts - 1 in
      (* Normalizer over the distances that actually have nodes: on small or
         open networks some nominal distances may be empty. *)
      let a = ref 0. in
      for h = 1 to d_max do
        if counts.(h) > 0 then a := !a +. (p_sw ** float_of_int h)
      done;
      for dst = 0 to p - 1 do
        if dst <> src then begin
          let h = Topology.distance topo src dst in
          let p_h = (p_sw ** float_of_int h) /. !a in
          row.(dst) <- p_remote *. p_h /. float_of_int counts.(h)
        end
      done
  end;
  row

let validate_explicit topo m =
  let p = Topology.num_nodes topo in
  if Array.length m <> p then
    Format.kasprintf invalid_arg
      "Access.create: explicit matrix has %d rows for %d nodes"
      (Array.length m) p;
  Array.iteri
    (fun src row ->
      if Array.length row <> p then
        Format.kasprintf invalid_arg
          "Access.create: explicit row %d has %d entries for %d nodes" src
          (Array.length row) p;
      let sum = ref 0. in
      Array.iter
        (fun v ->
          if v < 0. || not (Float.is_finite v) then
            Format.kasprintf invalid_arg
              "Access.create: explicit row %d has invalid entry %g" src v;
          sum := !sum +. v)
        row;
      if abs_float (!sum -. 1.) > 1e-9 then
        Format.kasprintf invalid_arg
          "Access.create: explicit row %d sums to %g, not 1" src !sum)
    m

let create topo pattern ~p_remote =
  if p_remote < 0. || p_remote > 1. then
    invalid_arg "Access.create: p_remote in [0, 1]";
  (match pattern with
  | Geometric p_sw when p_sw <= 0. || p_sw >= 1. ->
    invalid_arg "Access.create: p_sw in (0, 1)"
  | Explicit m -> validate_explicit topo m
  | Geometric _ | Uniform -> ());
  match pattern with
  | Explicit m ->
    let p = Topology.num_nodes topo in
    let probs = Array.map Array.copy m in
    let mean_remote =
      let acc = ref 0. in
      Array.iteri (fun src row -> acc := !acc +. (1. -. row.(src))) probs;
      !acc /. float_of_int p
    in
    { topo; pattern; p_remote = mean_remote; probs }
  | Geometric _ | Uniform ->
    if p_remote > 0. && Topology.num_nodes topo < 2 then
      invalid_arg "Access.create: remote accesses need at least two nodes";
    let p = Topology.num_nodes topo in
    let probs = Array.init p (build_row topo pattern p_remote) in
    { topo; pattern; p_remote; probs }

let topology t = t.topo

let pattern t = t.pattern

let p_remote t = t.p_remote

let remote_fraction t ~src = 1. -. t.probs.(src).(src)

let is_translation_invariant t =
  match t.pattern with
  | Explicit _ -> false
  | Geometric _ | Uniform -> Topology.is_vertex_transitive t.topo

let prob t ~src ~dst = t.probs.(src).(dst)

let matrix t = Array.map Array.copy t.probs

let distance_pmf t ~src =
  let pmf = Array.make (Topology.max_distance t.topo + 1) 0. in
  Array.iteri
    (fun dst p ->
      let h = Topology.distance t.topo src dst in
      pmf.(h) <- pmf.(h) +. p)
    t.probs.(src);
  pmf

let average_distance t ~src =
  let remote = remote_fraction t ~src in
  if Float.equal remote 0. then nan
  else begin
    let pmf = distance_pmf t ~src in
    let num = ref 0. in
    for h = 1 to Array.length pmf - 1 do
      num := !num +. (float_of_int h *. pmf.(h))
    done;
    !num /. remote
  end

let pp ppf t =
  let pat =
    match t.pattern with
    | Geometric p_sw -> Printf.sprintf "geometric(p_sw=%g)" p_sw
    | Uniform -> "uniform"
    | Explicit _ -> "explicit"
  in
  Fmt.pf ppf "%s p_remote=%g on %a" pat t.p_remote Topology.pp t.topo
