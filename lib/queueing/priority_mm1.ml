type class_spec = {
  arrival_rate : float;
  service_time : float;
}

type t = {
  classes : class_spec array;
  sigma : float array; (* cumulative utilization through class k *)
  w0 : float;          (* mean residual service seen by an arrival *)
}

let make classes =
  if Array.length classes = 0 then invalid_arg "Priority_mm1.make: no classes";
  Array.iteri
    (fun k c ->
      if c.arrival_rate < 0. || not (Float.is_finite c.arrival_rate) then
        invalid_arg (Printf.sprintf "Priority_mm1.make: class %d arrival rate" k);
      if c.service_time <= 0. then
        invalid_arg (Printf.sprintf "Priority_mm1.make: class %d service time" k))
    classes;
  let n = Array.length classes in
  let sigma = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun k c ->
      acc := !acc +. (c.arrival_rate *. c.service_time);
      sigma.(k) <- !acc)
    classes;
  if sigma.(n - 1) >= 1. then
    invalid_arg "Priority_mm1.make: total utilization >= 1";
  (* Mean residual work in service at a random arrival: for exponential
     service, E[lambda_k * s_k^2] = lambda_k * 2 s_k^2 over 2. *)
  let w0 =
    Array.fold_left
      (fun acc c -> acc +. (c.arrival_rate *. c.service_time *. c.service_time))
      0. classes
  in
  { classes; sigma; w0 }

let utilization t = t.sigma.(Array.length t.sigma - 1)

let waiting_time t ~cls =
  if cls < 0 || cls >= Array.length t.classes then
    invalid_arg "Priority_mm1.waiting_time: class out of range";
  let sigma_above = if cls = 0 then 0. else t.sigma.(cls - 1) in
  (* make rejects total utilization >= 1, so every sigma prefix is < 1 and
     both factors stay strictly positive. *)
  t.w0
  /. (((1. -. sigma_above) *. (1. -. t.sigma.(cls)))
      [@lattol.allow "float-div-unguarded"])

let response_time t ~cls = waiting_time t ~cls +. t.classes.(cls).service_time

let mean_queue_length t ~cls =
  t.classes.(cls).arrival_rate *. response_time t ~cls

let fcfs_waiting_time t =
  let rho = utilization t in
  (* rho < 1 by the same make-time check. *)
  t.w0 /. ((1. -. rho) [@lattol.allow "float-div-unguarded"])
