(** Approximate Mean Value Analysis (Bard-Schweitzer), the paper's Figure 3
    algorithm.

    The exact MVA recursion needs every population vector below [N]; the
    approximation replaces the queue lengths seen by an arriving class-[c]
    customer with the fixed-point estimate

    {v q_{j,m}(N - e_c)  ~=  q_{j,m}(N)            for j <> c
   q_{c,m}(N - e_c)  ~=  q_{c,m}(N) (N_c - 1) / N_c v}

    and iterates (queue lengths -> waiting times -> throughputs -> queue
    lengths) to convergence.  Cost per sweep is [O(C^2 M)] regardless of the
    populations, which is what makes the paper's 100-processor experiments
    feasible. *)

type progress = Continue | Abort
(** Verdict of a per-sweep observer: [Abort] stops the iteration after the
    current sweep with [converged = false]. *)

type options = {
  tolerance : float;
      (** stop when the largest queue-length change in a sweep is below
          this (the paper's [difference > tolerance] test) *)
  max_iterations : int;
  damping : float;
      (** new value = damping x old + (1 - damping) x update; 0 disables *)
  on_sweep : (iteration:int -> residual:float -> progress) option;
      (** called after every sweep with the sweep index (1-based) and the
          largest queue-length change; supervisors use this to watch the
          residual trajectory and abort divergent or stalled runs.  Not
          called once the iteration has converged or been stopped by the
          non-finite guard. *)
}

val default_options : options
(** tolerance 1e-8, 10_000 iterations, no damping, no observer. *)

val solve : ?options:options -> Network.t -> Solution.t
(** Fixed point of the Bard-Schweitzer iteration.  [converged] is false in
    the result if the iteration cap was reached, the observer aborted, or
    the residual became non-finite (NaN/infinite residuals terminate the
    loop immediately instead of burning the full iteration budget); the
    last iterate is still returned so callers can inspect it.

    A class with positive population whose total demand is zero (all visit
    ratios or all service times zero — possible through
    {!Network.with_population}) is reported with a warning and treated as
    inert: its throughput is 0 rather than the [inf] a division by a zero
    cycle time would produce. *)
