type t = {
  demand_total : float;
  demand_max : float;
  demand_avg : float;
  population : int;
  x_upper : float;
  x_lower : float;
  x_balanced_upper : float;
  x_balanced_lower : float;
  n_star : float;
}

let analyze network ~cls =
  for c = 0 to Network.num_classes network - 1 do
    if c <> cls && Network.population network c > 0 then
      invalid_arg "Bounds.analyze: other classes must be empty"
  done;
  let n = Network.population network cls in
  if n < 1 then invalid_arg "Bounds.analyze: class has no customers";
  let num_st = Network.num_stations network in
  let d_total = ref 0. and d_max = ref 0. and z = ref 0. and m_q = ref 0 in
  for m = 0 to num_st - 1 do
    let d = Network.demand network ~cls ~station:m in
    match Network.station_kind network m with
    | Network.Delay -> z := !z +. d
    | Network.Queueing ->
      if d > 0. then begin
        incr m_q;
        d_total := !d_total +. d;
        if d > !d_max then d_max := d
      end
    | Network.Multi_server c ->
      (* Seidmann view: queueing demand d/c, the rest behaves as think
         time for bounding purposes. *)
      if d > 0. then begin
        incr m_q;
        let cf = float_of_int c in
        let dq = d /. cf in
        d_total := !d_total +. dq;
        z := !z +. (d *. (cf -. 1.) /. cf);
        if dq > !d_max then d_max := dq
      end
  done;
  let d = !d_total and dmax = !d_max and z = !z in
  let nf = float_of_int n in
  let d_avg = if !m_q = 0 then 0. else d /. float_of_int !m_q in
  let x_upper =
    if Float.equal dmax 0. then nf /. (d +. z)
    else Float.min (nf /. (d +. z)) (1. /. dmax)
  in
  let x_lower = nf /. (d +. z +. ((nf -. 1.) *. dmax)) in
  (* Balanced job bounds (Zahorjan et al. 1982), with think time. *)
  let x_balanced_upper =
    if Float.equal d 0. then x_upper
    else Float.min x_upper (nf /. (d +. z +. ((nf -. 1.) *. d_avg)))
  in
  let x_balanced_lower =
    if Float.equal d 0. then x_lower
    else
      Float.max x_lower
        (nf /. (d +. z +. ((nf -. 1.) *. d *. dmax /. (d +. z))))
  in
  let n_star = if Float.equal dmax 0. then infinity else (d +. z) /. dmax in
  {
    demand_total = d;
    demand_max = dmax;
    demand_avg = d_avg;
    population = n;
    x_upper;
    x_lower;
    x_balanced_upper;
    x_balanced_lower;
    n_star;
  }

let pp ppf b =
  Fmt.pf ppf
    "@[N=%d D=%.4g Dmax=%.4g N*=%.3g X in [%.4g, %.4g] (balanced [%.4g, %.4g])@]"
    b.population b.demand_total b.demand_max b.n_star b.x_lower b.x_upper
    b.x_balanced_lower b.x_balanced_upper
