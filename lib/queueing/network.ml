type station_kind = Queueing | Delay | Multi_server of int

type job_class = {
  class_name : string;
  population : int;
  visits : float array;
  service : float array;
}

type t = {
  station_names : string array;
  station_kinds : station_kind array;
  classes : job_class array;
  demands : float array array; (* demands.(c).(m) *)
}

let invalid fmt = Format.kasprintf invalid_arg fmt

let make ~stations ~classes =
  let m = Array.length stations in
  if m = 0 then invalid "Network.make: no stations";
  Array.iteri
    (fun i (_, kind) ->
      match kind with
      | Multi_server c when c < 1 ->
        invalid "Network.make: station %d has %d servers" i c
      | Multi_server _ | Queueing | Delay -> ())
    stations;
  if Array.length classes = 0 then invalid "Network.make: no classes";
  Array.iteri
    (fun c cls ->
      if Array.length cls.visits <> m then
        invalid "Network.make: class %s has %d visit entries for %d stations"
          cls.class_name (Array.length cls.visits) m;
      if Array.length cls.service <> m then
        invalid "Network.make: class %s has %d service entries for %d stations"
          cls.class_name (Array.length cls.service) m;
      if cls.population < 0 then
        invalid "Network.make: class %s has negative population" cls.class_name;
      Array.iteri
        (fun s v ->
          if v < 0. || not (Float.is_finite v) then
            invalid "Network.make: class %s visit ratio %g at station %d"
              cls.class_name v s)
        cls.visits;
      Array.iteri
        (fun s v ->
          if v < 0. || not (Float.is_finite v) then
            invalid "Network.make: class %s service time %g at station %d"
              cls.class_name v s)
        cls.service;
      let demand = ref 0. in
      Array.iteri (fun s v -> demand := !demand +. (v *. cls.service.(s))) cls.visits;
      if cls.population > 0 && !demand <= 0. then
        invalid "Network.make: class %s has population but zero total demand"
          cls.class_name;
      ignore c)
    classes;
  let demands =
    Array.map
      (fun cls -> Array.mapi (fun s v -> v *. cls.service.(s)) cls.visits)
      classes
  in
  {
    station_names = Array.map fst stations;
    station_kinds = Array.map snd stations;
    classes;
    demands;
  }

let num_stations t = Array.length t.station_names

let num_classes t = Array.length t.classes

let station_name t m = t.station_names.(m)

let station_kind t m = t.station_kinds.(m)

let class_name t c = t.classes.(c).class_name

let population t c = t.classes.(c).population

(* Defensive copy by design; solvers call it once per solve, outside
   their per-state loops. *)
let[@lattol.allow "hot-alloc"] populations t =
  Array.map (fun c -> c.population) t.classes

let total_population t =
  Array.fold_left (fun acc c -> acc + c.population) 0 t.classes

let visit t ~cls ~station = t.classes.(cls).visits.(station)

let service_time t ~cls ~station = t.classes.(cls).service.(station)

let demand t ~cls ~station = t.demands.(cls).(station)

let total_demand t ~cls = Array.fold_left ( +. ) 0. t.demands.(cls)

let bottleneck t ~cls =
  let best = ref 0 in
  Array.iteri
    (fun m d -> if d > t.demands.(cls).(!best) then best := m)
    t.demands.(cls);
  !best

let with_population t pops =
  if Array.length pops <> num_classes t then
    invalid "Network.with_population: %d populations for %d classes"
      (Array.length pops) (num_classes t);
  let classes =
    Array.mapi (fun c cls -> { cls with population = pops.(c) }) t.classes
  in
  { t with classes }

let pp ppf t =
  Fmt.pf ppf "@[<v>closed network: %d stations, %d classes@," (num_stations t)
    (num_classes t);
  Array.iteri
    (fun c cls ->
      Fmt.pf ppf "  class %s: N=%d total demand %.4g@," cls.class_name
        cls.population (total_demand t ~cls:c))
    t.classes;
  Fmt.pf ppf "@]"
