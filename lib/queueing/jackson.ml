type station = {
  name : string;
  servers : int;
  service_time : float;
}

type t = {
  stations : station array;
  arrivals : float array;
  routing : float array array;
  lambda : float array; (* traffic-equation solution *)
}

let invalid fmt = Format.kasprintf invalid_arg fmt

(* Solve the dense linear system A x = b by Gaussian elimination with
   partial pivoting.  The systems here are (I - R)^T and (I - R), which are
   nonsingular exactly when every job eventually leaves the network. *)
let solve_linear a b =
  let n = Array.length b in
  let m = Array.map Array.copy a in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    (* pivot *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if abs_float m.(row).(col) > abs_float m.(!pivot).(col) then pivot := row
    done;
    if abs_float m.(!pivot).(col) < 1e-12 then
      invalid "Jackson: routing matrix is singular (jobs never leave)";
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let tb = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- tb
    end;
    for row = col + 1 to n - 1 do
      let factor = m.(row).(col) /. m.(col).(col) in
      if not (Float.equal factor 0.) then begin
        for c = col to n - 1 do
          m.(row).(c) <- m.(row).(c) -. (factor *. m.(col).(c))
        done;
        x.(row) <- x.(row) -. (factor *. x.(col))
      end
    done
  done;
  for row = n - 1 downto 0 do
    let acc = ref x.(row) in
    for c = row + 1 to n - 1 do
      acc := !acc -. (m.(row).(c) *. x.(c))
    done;
    x.(row) <- !acc /. m.(row).(row)
  done;
  x

let make ~stations ~arrivals ~routing =
  let n = Array.length stations in
  if n = 0 then invalid "Jackson.make: no stations";
  if Array.length arrivals <> n then invalid "Jackson.make: arrivals size";
  if Array.length routing <> n then invalid "Jackson.make: routing rows";
  Array.iteri
    (fun m st ->
      if st.servers < 1 then invalid "Jackson.make: station %d servers >= 1" m;
      if st.service_time <= 0. then
        invalid "Jackson.make: station %d service time > 0" m)
    stations;
  Array.iteri
    (fun m a ->
      if a < 0. || not (Float.is_finite a) then
        invalid "Jackson.make: arrival rate %g at station %d" a m)
    arrivals;
  Array.iteri
    (fun m row ->
      if Array.length row <> n then invalid "Jackson.make: routing row %d size" m;
      let sum = ref 0. in
      Array.iter
        (fun p ->
          if p < 0. || not (Float.is_finite p) then
            invalid "Jackson.make: routing probability %g at row %d" p m;
          sum := !sum +. p)
        row;
      if !sum > 1. +. 1e-9 then
        invalid "Jackson.make: routing row %d sums to %g > 1" m !sum)
    routing;
  (* Traffic equations: lambda = arrivals + lambda R, i.e.
     (I - R)^T lambda = arrivals. *)
  let a =
    Array.init n (fun i ->
        Array.init n (fun j ->
            (if i = j then 1. else 0.) -. routing.(j).(i)))
  in
  let lambda = solve_linear a arrivals in
  Array.iteri
    (fun m l ->
      if l < -1e-9 then invalid "Jackson.make: negative throughput at %d" m)
    lambda;
  { stations; arrivals; routing; lambda = Array.map (Float.max 0.) lambda }

let throughputs t = Array.copy t.lambda

let utilization t ~station =
  let st = t.stations.(station) in
  t.lambda.(station) *. st.service_time /. float_of_int st.servers

let is_stable t =
  let ok = ref true in
  for m = 0 to Array.length t.stations - 1 do
    if utilization t ~station:m >= 1. then ok := false
  done;
  !ok

let bottleneck t =
  let best = ref 0 in
  for m = 1 to Array.length t.stations - 1 do
    if utilization t ~station:m > utilization t ~station:!best then best := m
  done;
  !best

(* Erlang-C probability of waiting in an M/M/c queue at utilization rho. *)
let erlang_c ~servers ~rho =
  let c = float_of_int servers in
  let a = c *. rho in
  let term = ref 1. and sum = ref 1. in
  for k = 1 to servers - 1 do
    term := !term *. a /. float_of_int k;
    sum := !sum +. !term
  done;
  (* Callers guard rho < 1 (mean_queue_length short-circuits rho >= 1 to
     infinity) before asking for the Erlang-C tail. *)
  let tail =
    !term *. a /. float_of_int servers
    /. ((1. -. rho) [@lattol.allow "float-div-unguarded"])
  in
  tail /. (!sum +. tail)

let mean_queue_length t ~station =
  let st = t.stations.(station) in
  let rho = utilization t ~station in
  if Float.equal t.lambda.(station) 0. then 0.
  else if rho >= 1. then infinity
  else begin
    let waiting = erlang_c ~servers:st.servers ~rho *. rho /. (1. -. rho) in
    waiting +. (float_of_int st.servers *. rho)
  end

let mean_response_time t ~station =
  if Float.equal t.lambda.(station) 0. then t.stations.(station).service_time
  else mean_queue_length t ~station /. t.lambda.(station)

let mean_sojourn t ~entry =
  let n = Array.length t.stations in
  if entry < 0 || entry >= n then invalid "Jackson.mean_sojourn: bad entry";
  if Float.equal t.lambda.(entry) 0. then
    invalid "Jackson.mean_sojourn: station %d receives no traffic" entry;
  if not (is_stable t) then infinity
  else begin
    (* t_m = W_m + sum_j R_{m,j} t_j  =>  (I - R) t = W. *)
    let w = Array.init n (fun m -> mean_response_time t ~station:m) in
    let a =
      Array.init n (fun i ->
          Array.init n (fun j -> (if i = j then 1. else 0.) -. t.routing.(i).(j)))
    in
    (solve_linear a w).(entry)
  end

let capacity t =
  let worst = ref 0. in
  for m = 0 to Array.length t.stations - 1 do
    let rho = utilization t ~station:m in
    if rho > !worst then worst := rho
  done;
  if Float.equal !worst 0. then infinity else 1. /. !worst

let pp ppf t =
  Fmt.pf ppf "@[<v>open Jackson network (%d stations):@,"
    (Array.length t.stations);
  Array.iteri
    (fun m st ->
      Fmt.pf ppf "  %-12s lambda=%.4g rho=%.4f W=%.4g@," st.name t.lambda.(m)
        (utilization t ~station:m)
        (mean_response_time t ~station:m))
    t.stations;
  Fmt.pf ppf "  stable: %b, headroom: %.3gx@]" (is_stable t) (capacity t)
