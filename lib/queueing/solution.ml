type t = {
  network : Network.t;
  throughput : float array;
  residence : float array array;
  queue : float array array;
  iterations : int;
  converged : bool;
}

let cycle_time t ~cls =
  Array.fold_left ( +. ) 0. t.residence.(cls)

let waiting_time t ~cls ~station =
  let v = Network.visit t.network ~cls ~station in
  if Float.equal v 0. then 0. else t.residence.(cls).(station) /. v

let class_utilization t ~cls ~station =
  t.throughput.(cls) *. Network.demand t.network ~cls ~station

let utilization t ~station =
  let acc = ref 0. in
  for c = 0 to Network.num_classes t.network - 1 do
    acc := !acc +. class_utilization t ~cls:c ~station
  done;
  !acc

let queue_total t ~station =
  let acc = ref 0. in
  for c = 0 to Network.num_classes t.network - 1 do
    acc := !acc +. t.queue.(c).(station)
  done;
  !acc

let littles_law_residual t =
  let worst = ref 0. in
  for c = 0 to Network.num_classes t.network - 1 do
    let n = float_of_int (Network.population t.network c) in
    let via_little = t.throughput.(c) *. cycle_time t ~cls:c in
    let residual = abs_float (n -. via_little) /. Float.max 1. n in
    if residual > !worst then worst := residual
  done;
  !worst

let pp ppf t =
  let nw = t.network in
  Fmt.pf ppf "@[<v>solution (%d iterations, %s):@,"
    t.iterations
    (if t.converged then "converged" else "NOT converged");
  for c = 0 to Network.num_classes nw - 1 do
    Fmt.pf ppf "  class %-10s X=%.5g cycle=%.5g@," (Network.class_name nw c)
      t.throughput.(c) (cycle_time t ~cls:c)
  done;
  for m = 0 to Network.num_stations nw - 1 do
    Fmt.pf ppf "  station %-10s U=%.4f Q=%.4f@," (Network.station_name nw m)
      (utilization t ~station:m) (queue_total t ~station:m)
  done;
  Fmt.pf ppf "@]"
