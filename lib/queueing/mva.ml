(* Called once per solve, never per state vector: the fold closure and
   the defensive populations copy are amortized over the whole run. *)
let[@lattol.allow "hot-alloc"] num_states network =
  Array.fold_left
    (fun acc n -> acc * (n + 1))
    1
    (Network.populations network)

(* The exact-MVA recursion is the hottest solver loop in the repo
   (ROADMAP item 3): the lint's hot-alloc rule audits it — and everything
   it calls — for per-iteration allocation. *)
let[@lattol.hot] solve ?(max_states = 2_000_000) network =
  let num_cls = Network.num_classes network in
  let num_st = Network.num_stations network in
  let pops = Network.populations network in
  let nvec = num_states network in
  if nvec > max_states then
    Format.kasprintf invalid_arg
      "Mva.solve: %d population vectors exceed the %d cap; use Amva.solve"
      nvec max_states;
  (* Mixed-radix encoding of population vectors: digit c has radix
     pops.(c) + 1 and stride strides.(c).  Counting order visits n - e_c
     before n, so a single forward pass satisfies the recursion. *)
  let strides = Array.make num_cls 1 in
  for c = 1 to num_cls - 1 do
    strides.(c) <- strides.(c - 1) * (pops.(c - 1) + 1)
  done;
  (* queues.(idx) holds q_{c,m} for the population vector encoded by idx. *)
  let queues = Array.make nvec [||] in
  let throughput = Array.make num_cls 0. in
  let residence = Array.make_matrix num_cls num_st 0. in
  (* Per-vector scratch is allocated once and reused across all [nvec]
     iterations (hot-alloc diet, ROADMAP item 3).  Reuse without
     clearing is sound: every cell read below was written in the same
     iteration, or is a (c, m) slot with zero visits / zero population
     that no iteration ever writes, so it keeps its initial 0. *)
  let n = Array.make num_cls 0 in
  let res = Array.make_matrix num_cls num_st 0. in
  let lambda = Array.make num_cls 0. in
  let cycle = ref 0. in
  let backlog = ref 0. in
  for idx = 0 to nvec - 1 do
    for c = 0 to num_cls - 1 do
      n.(c) <- idx / strides.(c) mod (pops.(c) + 1)
    done;
    (* [q] escapes into the state table, so it really is one fresh array
       per population vector; grandfathered in .lattol-baseline until the
       table is flattened into a single preallocated slab. *)
    let q = Array.make (num_cls * num_st) 0. in
    for c = 0 to num_cls - 1 do
      if n.(c) > 0 then begin
        let q_minus = queues.(idx - strides.(c)) in
        (* Residence times by the arrival theorem. *)
        cycle := 0.;
        for m = 0 to num_st - 1 do
          let v = Network.visit network ~cls:c ~station:m in
          if v > 0. then begin
            let s = Network.service_time network ~cls:c ~station:m in
            (* Arrival-theorem waiting time; Multi_server stations use
               the Seidmann decomposition (queueing part with service s/c
               plus a fixed delay s (c-1)/c).  The backlog sum is inlined
               per station kind with its scale factor so the inner loop
               allocates neither a closure nor an accumulator. *)
            let w =
              match Network.station_kind network m with
              | Network.Delay -> s
              | Network.Queueing ->
                backlog := 0.;
                for j = 0 to num_cls - 1 do
                  backlog :=
                    !backlog
                    +. Network.service_time network ~cls:j ~station:m
                       *. q_minus.((j * num_st) + m)
                done;
                s +. !backlog
              | Network.Multi_server servers ->
                (* An arrival occupies a free server immediately unless all
                   [c] are busy; the queueing excess beyond [c - 1] waiting
                   customers is served at the pooled rate [c / s]. *)
                let scale = 1. /. s in
                backlog := 0.;
                for j = 0 to num_cls - 1 do
                  backlog :=
                    !backlog
                    +. Network.service_time network ~cls:j ~station:m
                       *. scale
                       *. q_minus.((j * num_st) + m)
                done;
                let cf = float_of_int servers in
                let excess = Float.max 0. (!backlog -. (cf -. 1.)) in
                s +. (s /. cf *. excess)
            in
            res.(c).(m) <- v *. w;
            cycle := !cycle +. res.(c).(m)
          end
        done;
        lambda.(c) <- float_of_int n.(c) /. !cycle;
        for m = 0 to num_st - 1 do
          q.((c * num_st) + m) <- lambda.(c) *. res.(c).(m)
        done
      end
    done;
    queues.(idx) <- q;
    if idx = nvec - 1 then begin
      Array.blit lambda 0 throughput 0 num_cls;
      for c = 0 to num_cls - 1 do
        Array.blit res.(c) 0 residence.(c) 0 num_st
      done
    end
  done;
  let final_q = queues.(nvec - 1) in
  (* Result assembly, once per solve: the per-class rows here are the
     returned solution, not per-state scratch. *)
  let[@lattol.allow "hot-alloc"] queue =
    Array.init num_cls (fun c ->
        Array.init num_st (fun m -> final_q.((c * num_st) + m)))
  in
  {
    Solution.network;
    throughput;
    residence;
    queue;
    iterations = 1;
    converged = true;
  }
