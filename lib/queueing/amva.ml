let log_src = Logs.Src.create "lattol.amva" ~doc:"Approximate MVA solver"

module Log = (val Logs.src_log log_src)

type progress = Continue | Abort

type options = {
  tolerance : float;
  max_iterations : int;
  damping : float;
  on_sweep : (iteration:int -> residual:float -> progress) option;
}

let default_options =
  { tolerance = 1e-8; max_iterations = 10_000; damping = 0.; on_sweep = None }

let solve ?(options = default_options) network =
  if options.tolerance <= 0. then invalid_arg "Amva.solve: tolerance > 0";
  if options.damping < 0. || options.damping >= 1. then
    invalid_arg "Amva.solve: damping in [0, 1)";
  let num_cls = Network.num_classes network in
  let num_st = Network.num_stations network in
  let pops = Network.populations network in
  (* A populated class whose every demand is zero has no cycle time: its
     throughput is undefined (pops / 0 = inf).  Flag it once and keep it
     inert instead of poisoning the solution with infinities. *)
  let inert =
    Array.init num_cls (fun c ->
        pops.(c) > 0 && Network.total_demand network ~cls:c <= 0.)
  in
  Array.iteri
    (fun c degenerate ->
      if degenerate then
        Log.warn (fun m ->
            m "class %s has population %d but zero total demand; throughput \
               forced to 0"
              (Network.class_name network c)
              pops.(c)))
    inert;
  let active c = pops.(c) > 0 && not inert.(c) in
  (* Step 1 of Figure 3: spread each class evenly over the stations it
     visits. *)
  let queue = Array.make_matrix num_cls num_st 0. in
  for c = 0 to num_cls - 1 do
    let visited = ref 0 in
    for m = 0 to num_st - 1 do
      if Network.visit network ~cls:c ~station:m > 0. then incr visited
    done;
    if !visited > 0 then
      for m = 0 to num_st - 1 do
        if Network.visit network ~cls:c ~station:m > 0. then
          queue.(c).(m) <- float_of_int pops.(c) /. float_of_int !visited
      done
  done;
  let residence = Array.make_matrix num_cls num_st 0. in
  let throughput = Array.make num_cls 0. in
  let iterations = ref 0 in
  let converged = ref false in
  let stopped = ref false in
  while (not !converged) && (not !stopped) && !iterations < options.max_iterations
  do
    incr iterations;
    let max_delta = ref 0. in
    (* One sweep: steps 2-4 of Figure 3 for every class. *)
    let new_queue = Array.make_matrix num_cls num_st 0. in
    for c = 0 to num_cls - 1 do
      if active c then begin
        let shrink =
          float_of_int (pops.(c) - 1) /. float_of_int pops.(c)
        in
        let cycle = ref 0. in
        for m = 0 to num_st - 1 do
          let v = Network.visit network ~cls:c ~station:m in
          if v > 0. then begin
            let s = Network.service_time network ~cls:c ~station:m in
            (* Expected backlog at arrival instants, with the arriving
               class's own queue scaled by (N_c - 1)/N_c; Multi_server
               stations use the Seidmann decomposition. *)
            let backlog scale =
              let acc = ref 0. in
              for j = 0 to num_cls - 1 do
                let q_j =
                  if j = c then shrink *. queue.(j).(m) else queue.(j).(m)
                in
                acc :=
                  !acc
                  +. (Network.service_time network ~cls:j ~station:m
                      *. scale *. q_j)
              done;
              !acc
            in
            let w =
              match Network.station_kind network m with
              | Network.Delay -> s
              | Network.Queueing -> s +. backlog 1.
              | Network.Multi_server servers ->
                (* An arrival occupies a free server immediately unless all
                   [c] are busy; the queueing excess beyond [c - 1] waiting
                   customers is served at the pooled rate [c / s]. *)
                let cf = float_of_int servers in
                let excess = Float.max 0. (backlog (1. /. s) -. (cf -. 1.)) in
                s +. (s /. cf *. excess)
            in
            residence.(c).(m) <- v *. w;
            cycle := !cycle +. residence.(c).(m)
          end
          else residence.(c).(m) <- 0.
        done;
        throughput.(c) <- float_of_int pops.(c) /. !cycle;
        for m = 0 to num_st - 1 do
          new_queue.(c).(m) <- throughput.(c) *. residence.(c).(m)
        done
      end
    done;
    for c = 0 to num_cls - 1 do
      for m = 0 to num_st - 1 do
        let updated =
          (options.damping *. queue.(c).(m))
          +. ((1. -. options.damping) *. new_queue.(c).(m))
        in
        let delta = abs_float (updated -. queue.(c).(m)) in
        (* [not (<=)] instead of [(>)] so a NaN delta lands in [max_delta]
           and trips the non-finite guard below rather than comparing as
           false and masquerading as convergence. *)
        if not (delta <= !max_delta) then max_delta := delta;
        queue.(c).(m) <- updated
      done
    done;
    if not (Float.is_finite !max_delta) then begin
      (* NaN/Inf can never shrink below the tolerance; terminate now with
         [converged = false] instead of spinning to the iteration cap. *)
      Log.warn (fun m ->
          m "non-finite residual %g at iteration %d; aborting" !max_delta
            !iterations);
      stopped := true
    end
    else if !max_delta < options.tolerance then converged := true
    else
      match options.on_sweep with
      | None -> ()
      | Some f -> (
        match f ~iteration:!iterations ~residual:!max_delta with
        | Continue -> ()
        | Abort ->
          Log.info (fun m ->
              m "observer aborted at iteration %d (residual %g)" !iterations
                !max_delta);
          stopped := true)
  done;
  if !converged then
    Log.debug (fun m ->
        m "converged in %d iterations (%d classes, %d stations)" !iterations
          num_cls num_st)
  else if not !stopped then
    Log.warn (fun m ->
        m "no convergence after %d iterations (tolerance %g)" !iterations
          options.tolerance);
  {
    Solution.network;
    throughput;
    residence;
    queue;
    iterations = !iterations;
    converged = !converged;
  }
