(* Linearizer: Bard-Schweitzer cores driven by fractional-change estimates
   F.(j).(c).(m), refreshed from actual reduced-population solves. *)

type core_result = {
  throughput : float array;
  residence : float array array;
  queue : float array array;
  iterations : int;
  converged : bool;
}

(* One Bard-Schweitzer-style fixed point for population vector [pops],
   where the queue seen by an arriving class-[c] customer is estimated as
   q_{j,m}(N - e_c) ~= (N_j - d_jc) (q_{j,m}/N_j + F.(c).(j).(m)). *)
let[@lattol.hot] core network ~pops ~f ~(options : Amva.options) =
  let num_cls = Network.num_classes network in
  let num_st = Network.num_stations network in
  let queue = Array.make_matrix num_cls num_st 0. in
  (* Loop-carried accumulators are hoisted and reset instead of being
     fresh ref cells per iteration (hot-alloc diet, ROADMAP item 3). *)
  let visited = ref 0 in
  for c = 0 to num_cls - 1 do
    visited := 0;
    for m = 0 to num_st - 1 do
      if Network.visit network ~cls:c ~station:m > 0. then incr visited
    done;
    if !visited > 0 then
      for m = 0 to num_st - 1 do
        if Network.visit network ~cls:c ~station:m > 0. then
          queue.(c).(m) <- float_of_int pops.(c) /. float_of_int !visited
      done
  done;
  let residence = Array.make_matrix num_cls num_st 0. in
  let throughput = Array.make num_cls 0. in
  let iterations = ref 0 in
  let converged = ref false in
  let stopped = ref false in
  (* Same inert-class guard as {!Amva.solve}: a populated class with zero
     total demand has no cycle time, so dividing by it would poison the
     whole solution with infinities. *)
  let active c =
    pops.(c) > 0 && Network.total_demand network ~cls:c > 0.
  in
  (* Sweep scratch, allocated once for all fixed-point iterations
     (hot-alloc diet, ROADMAP item 3).  [new_queue] rows for inactive
     classes are never written and keep their initial zeros, matching
     the fresh-matrix-per-sweep semantics this replaces; active rows are
     fully overwritten each sweep.  The queue seen by an arriving
     customer ([seen] below) is inlined into the backlog sum with the
     station kind's scale factor, so the innermost loop allocates
     neither closures nor accumulator cells. *)
  let max_delta = ref 0. in
  let new_queue = Array.make_matrix num_cls num_st 0. in
  let cycle = ref 0. in
  let backlog = ref 0. in
  let backlog_sum ~c ~m ~scale =
    backlog := 0.;
    for j = 0 to num_cls - 1 do
      let seen =
        if pops.(j) = 0 then 0.
        else begin
          let n_j = float_of_int pops.(j) in
          let reduced = if j = c then n_j -. 1. else n_j in
          Float.max 0.
            (reduced *. ((queue.(j).(m) /. n_j) +. f.(c).(j).(m)))
        end
      in
      backlog :=
        !backlog
        +. (Network.service_time network ~cls:j ~station:m *. scale *. seen)
    done;
    !backlog
  in
  while
    (not !converged) && (not !stopped)
    && !iterations < options.Amva.max_iterations
  do
    incr iterations;
    max_delta := 0.;
    for c = 0 to num_cls - 1 do
      if active c then begin
        cycle := 0.;
        for m = 0 to num_st - 1 do
          let v = Network.visit network ~cls:c ~station:m in
          if v > 0. then begin
            let s = Network.service_time network ~cls:c ~station:m in
            let w =
              match Network.station_kind network m with
              | Network.Delay -> s
              | Network.Queueing -> s +. backlog_sum ~c ~m ~scale:1.
              | Network.Multi_server servers ->
                let cf = float_of_int servers in
                let excess =
                  Float.max 0. (backlog_sum ~c ~m ~scale:(1. /. s) -. (cf -. 1.))
                in
                s +. (s /. cf *. excess)
            in
            residence.(c).(m) <- v *. w;
            cycle := !cycle +. residence.(c).(m)
          end
          else residence.(c).(m) <- 0.
        done;
        throughput.(c) <- float_of_int pops.(c) /. !cycle;
        for m = 0 to num_st - 1 do
          new_queue.(c).(m) <- throughput.(c) *. residence.(c).(m)
        done
      end
    done;
    for c = 0 to num_cls - 1 do
      for m = 0 to num_st - 1 do
        let delta = abs_float (new_queue.(c).(m) -. queue.(c).(m)) in
        (* NaN-catching accumulation; see the matching comment in Amva. *)
        if not (delta <= !max_delta) then max_delta := delta;
        queue.(c).(m) <- new_queue.(c).(m)
      done
    done;
    if not (Float.is_finite !max_delta) then stopped := true
    else if !max_delta < options.Amva.tolerance then converged := true
    else
      match options.Amva.on_sweep with
      | None -> ()
      | Some f -> (
        match f ~iteration:!iterations ~residual:!max_delta with
        | Amva.Continue -> ()
        | Amva.Abort -> stopped := true)
  done;
  { throughput; residence; queue; iterations = !iterations; converged = !converged }

let solve ?(options = Amva.default_options) ?(outer_iterations = 3) network =
  if outer_iterations < 1 then
    invalid_arg "Linearizer.solve: outer_iterations >= 1";
  let num_cls = Network.num_classes network in
  let num_st = Network.num_stations network in
  let pops = Network.populations network in
  (* f.(arriving class).(observed class).(station) *)
  let f =
    Array.init num_cls (fun _ -> Array.make_matrix num_cls num_st 0.)
  in
  let total_inner = ref 0 in
  let final = ref None in
  for outer = 1 to outer_iterations do
    let full = core network ~pops ~f ~options in
    total_inner := !total_inner + full.iterations;
    if outer = outer_iterations then final := Some full
    else begin
      (* Solve each reduced system N - e_j and refresh F. *)
      for j = 0 to num_cls - 1 do
        if pops.(j) > 0 then begin
          let reduced_pops = Array.copy pops in
          reduced_pops.(j) <- reduced_pops.(j) - 1;
          let reduced = core network ~pops:reduced_pops ~f ~options in
          total_inner := !total_inner + reduced.iterations;
          for c = 0 to num_cls - 1 do
            if reduced_pops.(c) > 0 then
              for m = 0 to num_st - 1 do
                f.(j).(c).(m) <-
                  (reduced.queue.(c).(m) /. float_of_int reduced_pops.(c))
                  -. (full.queue.(c).(m) /. float_of_int pops.(c))
              done
          done
        end
      done
    end
  done;
  match !final with
  | Some r ->
    {
      Solution.network;
      throughput = r.throughput;
      residence = r.residence;
      queue = r.queue;
      iterations = !total_inner;
      converged = r.converged;
    }
  | None -> assert false
