type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

(* Array-based binary min-heap ordered by (time, seq). *)
type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
  mutable cancelled_pending : int;
}

let dummy_event =
  { time = 0.; seq = -1; action = (fun () -> ()); cancelled = true }

let create () =
  {
    heap = Array.make 64 dummy_event;
    size = 0;
    clock = 0.;
    next_seq = 0;
    processed = 0;
    cancelled_pending = 0;
  }

let now t = t.clock

let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let heap = Array.make (2 * Array.length t.heap) dummy_event in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

(* Runs once per drained event (from the [@lattol.hot] loop in [run]),
   so the candidate index threads through plain int bindings instead of a
   ref cell that would be a per-event minor allocation. *)
let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && precedes t.heap.(l) t.heap.(i) then l else i in
  let smallest =
    if r < t.size && precedes t.heap.(r) t.heap.(smallest) then r else smallest
  in
  if smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(smallest);
    t.heap.(smallest) <- tmp;
    sift_down t smallest
  end

let push t ev =
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy_event;
  if t.size > 0 then sift_down t 0;
  top

let schedule_at t ~time action =
  if not (Float.is_finite time) then invalid_arg "Engine.schedule_at: time not finite";
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let ev = { time; seq = t.next_seq; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  push t ev

let schedule t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let schedule_cancellable t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule_cancellable: negative delay";
  let ev =
    { time = t.clock +. delay; seq = t.next_seq; action; cancelled = false }
  in
  t.next_seq <- t.next_seq + 1;
  push t ev;
  ev

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.cancelled_pending <- t.cancelled_pending + 1
  end

(* Tail-recursive directly (not via an inner closure, which would be
   allocated on every call from the hot event loop). *)
let rec step t =
  if t.size = 0 then false
  else begin
    let ev = pop t in
    if ev.cancelled then begin
      t.cancelled_pending <- t.cancelled_pending - 1;
      step t
    end
    else begin
      t.clock <- ev.time;
      t.processed <- t.processed + 1;
      ev.action ();
      true
    end
  end

(* The event loop is the DES hot path; [@lattol.hot] keeps it (and the
   heap operations it reaches) allocation-flat under lattol-lint. *)
let[@lattol.hot] run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
    (* Peek past cancelled events.  Defined outside the drain loop: a
       closure literal inside [while] would be allocated per event. *)
    let rec peek () =
      if t.size = 0 then None
      else if t.heap.(0).cancelled then begin
        let ev = pop t in
        ignore ev;
        t.cancelled_pending <- t.cancelled_pending - 1;
        peek ()
      end
      else Some t.heap.(0).time
    in
    let continue = ref true in
    while !continue do
      match peek () with
      | None -> continue := false
      | Some next_time ->
        if next_time > horizon then continue := false
        else ignore (step t)
    done;
    if t.clock < horizon then t.clock <- horizon

let events_processed t = t.processed

let pending t = t.size - t.cancelled_pending
