(** Generic single-server FCFS service station for the simulator.

    Jobs are arbitrary values; completion is signalled through the callback
    given at submission, which keeps model wiring in one place.  Statistics
    (busy time, time-averaged queue length, per-job response times) can be
    reset after warm-up so that steady-state estimates exclude the
    transient. *)

type 'a t

val create :
  ?servers:int -> ?priority_levels:int -> Engine.t ->
  rng:Lattol_stats.Prng.t -> name:string ->
  service:Lattol_stats.Variate.t -> 'a t
(** [servers] (default 1) parallel servers share the queue.
    [priority_levels] (default 1) enables non-preemptive head-of-line
    priorities: level 0 is served before level 1, and so on; within a
    level the order is FCFS. *)

val name : 'a t -> string

val submit :
  ?priority:int -> ?duration:float -> ?on_start:(unit -> unit) -> 'a t ->
  'a -> ('a -> unit) -> unit
(** Enqueue a job; the callback fires at its service completion (current
    engine time).  [priority] (default 0, clamped to the configured
    levels) selects the priority class; service order is FCFS within a
    class, non-preemptive across classes.  [duration] overrides the
    station's service distribution for this job (trace-driven workloads
    carry their own per-step times).  [on_start] fires at the instant the
    job's service begins — the telemetry layer uses it to split residence
    into queueing and service spans. *)

val queue_length : 'a t -> int
(** Jobs currently present (waiting + in service). *)

val speed : 'a t -> float
(** Current service-rate multiplier (1 when healthy). *)

val set_speed : 'a t -> float -> unit
(** Change the station's service-rate multiplier: a job dispatched while
    the speed is [s] takes [work / s] time, where [work] is the drawn (or
    per-job) service demand.  Jobs already in service are unaffected
    (non-preemptive degradation).  The fault-injection layer uses this to
    model degraded switches and memory modules; [speed] must be positive
    and finite — model a full outage by seizing the servers with
    maximum-priority jobs of the repair duration instead. *)

val busy : 'a t -> bool
(** At least one server occupied. *)

val servers : 'a t -> int

(* Statistics since the last {!reset_stats}. *)

val completed : 'a t -> int

val utilization : 'a t -> float
(** Mean fraction of servers busy over elapsed time. *)

val mean_queue_length : 'a t -> float
(** Time-averaged number of jobs present. *)

val response_times : 'a t -> Lattol_stats.Moments.t
(** Per-job response time (waiting + service) accumulator. *)

val throughput : 'a t -> float
(** Completions per unit time of elapsed (post-reset) time. *)

val reset_stats : 'a t -> unit
(** Forget accumulated statistics; jobs in flight stay. *)
