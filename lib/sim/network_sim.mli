(** Discrete-event simulation of arbitrary closed queueing networks.

    {!Mms_des} simulates the paper's machine; this module simulates any
    {!Lattol_queueing.Network.t} — the same object the MVA solvers take —
    so solver and simulator can be compared on arbitrary topologies, not
    just the MMS.  Routing is generated from the visit ratios
    ([p_{m} proportional to v_m], the same independence construction as
    {!Lattol_markov.Qn_ctmc}), which preserves the product-form stationary
    law the solvers compute.

    Stations honour their kinds: FCFS single server, [Multi_server c],
    or delay (infinite server); service times are exponential with the
    class's mean at the station (the solvers' stochastic assumptions). *)

open Lattol_queueing

type result = {
  solution : Solution.t;
      (** measured throughputs / residences / queues in the solver's own
          result type, so every {!Solution} accessor works on simulated
          data ([iterations] carries the event count, [converged] is
          true) *)
  events : int;
  sim_time : float;
}

val run :
  ?seed:int -> ?warmup:float -> ?horizon:float ->
  ?trace:Lattol_obs.Events.t -> Network.t -> result
(** Simulate the network (defaults: warm-up 1_000, horizon 100_000).
    Queue-length estimates are time-averaged after warm-up; residence
    times come from Little's law on the measured rates.  With [trace],
    every measured visit is emitted as spans on the customer's lane
    (pid = class, track = customer): a ["<station>:queue"] span when the
    customer waited, then a service (or delay-station sojourn) span named
    after the station. *)
