open Lattol_stats
open Lattol_queueing
module Ev = Lattol_obs.Events

type result = {
  solution : Solution.t;
  events : int;
  sim_time : float;
}

type state = {
  engine : Engine.t;
  rng : Prng.t;
  network : Network.t;
  stations : unit Station.t option array; (* None for delay stations *)
  (* per-class visit CDF support: visits and their totals *)
  visit_totals : float array;
  (* statistics: per (class, station) occupancy with time integrals *)
  occupancy : int array array;
  area : float array array;
  last : float array array;
  completions : int array array;
  mutable measuring : bool;
  trace : Ev.t option; (* spans: pid = class, track = customer *)
}

let note st c m =
  let now = Engine.now st.engine in
  st.area.(c).(m) <-
    st.area.(c).(m)
    +. (float_of_int st.occupancy.(c).(m) *. (now -. st.last.(c).(m)));
  st.last.(c).(m) <- now

let next_station st c =
  (* Independent routing proportional to the visit ratios. *)
  let x = Prng.float st.rng *. st.visit_totals.(c) in
  let num_st = Network.num_stations st.network in
  let rec go m acc =
    if m = num_st - 1 then m
    else begin
      let acc = acc +. Network.visit st.network ~cls:c ~station:m in
      if x < acc then m else go (m + 1) acc
    end
  in
  go 0 0.

(* Emit a span on customer [cust]'s lane of class [c]; suppressed during
   warm-up and without a tracer. *)
let span st ~c ~cust ~name ~cat ~t0 dur =
  match st.trace with
  | Some tr when st.measuring ->
    Ev.emit tr ~pid:c ~cat ~track:cust ~name ~t0 dur
  | Some _ | None -> ()

let rec visit st c cust m =
  note st c m;
  st.occupancy.(c).(m) <- st.occupancy.(c).(m) + 1;
  let mean = Network.service_time st.network ~cls:c ~station:m in
  let sname = Network.station_name st.network m in
  let finish () =
    note st c m;
    st.occupancy.(c).(m) <- st.occupancy.(c).(m) - 1;
    if st.measuring then
      st.completions.(c).(m) <- st.completions.(c).(m) + 1;
    visit st c cust (next_station st c)
  in
  match st.stations.(m) with
  | None ->
    (* Delay station: every customer progresses independently. *)
    let delay = Variate.exponential st.rng ~mean in
    let t0 = Engine.now st.engine in
    Engine.schedule st.engine ~delay (fun () ->
        span st ~c ~cust ~name:sname ~cat:"delay" ~t0 delay;
        finish ())
  | Some station ->
    let duration = Variate.exponential st.rng ~mean in
    let arrived = Engine.now st.engine in
    let started = ref arrived in
    Station.submit ~duration
      ~on_start:(fun () ->
        let now = Engine.now st.engine in
        started := now;
        if now > arrived then
          span st ~c ~cust ~name:(sname ^ ":queue") ~cat:"queue" ~t0:arrived
            (now -. arrived))
      station ()
      (fun () ->
        let now = Engine.now st.engine in
        span st ~c ~cust ~name:sname ~cat:"service" ~t0:!started
          (now -. !started);
        finish ())

let run ?(seed = 1) ?(warmup = 1_000.) ?(horizon = 100_000.) ?trace network =
  if warmup < 0. || horizon <= 0. then
    invalid_arg "Network_sim.run: warmup >= 0 and horizon > 0";
  let num_cls = Network.num_classes network in
  let num_st = Network.num_stations network in
  let engine = Engine.create () in
  let rng = Prng.create ~seed () in
  let stations =
    Array.init num_st (fun m ->
        match Network.station_kind network m with
        | Network.Delay -> None
        | Network.Queueing ->
          Some
            (Station.create engine ~rng:(Prng.split rng)
               ~name:(Network.station_name network m)
               ~service:(Variate.Exponential 1.))
        | Network.Multi_server c ->
          Some
            (Station.create ~servers:c engine ~rng:(Prng.split rng)
               ~name:(Network.station_name network m)
               ~service:(Variate.Exponential 1.)))
  in
  let visit_totals =
    Array.init num_cls (fun c ->
        let acc = ref 0. in
        for m = 0 to num_st - 1 do
          acc := !acc +. Network.visit network ~cls:c ~station:m
        done;
        !acc)
  in
  let st =
    {
      engine;
      rng;
      network;
      stations;
      visit_totals;
      occupancy = Array.make_matrix num_cls num_st 0;
      area = Array.make_matrix num_cls num_st 0.;
      last = Array.make_matrix num_cls num_st 0.;
      completions = Array.make_matrix num_cls num_st 0;
      measuring = false;
      trace;
    }
  in
  for c = 0 to num_cls - 1 do
    Option.iter
      (fun tr -> Ev.name_process tr c (Printf.sprintf "class%d" c))
      trace;
    for cust = 0 to Network.population network c - 1 do
      Option.iter
        (fun tr ->
          Ev.name_track tr ~pid:c cust (Printf.sprintf "customer%d" cust))
        trace;
      visit st c cust (next_station st c)
    done
  done;
  Engine.run ~until:warmup engine;
  (* reset the areas at the measurement start *)
  for c = 0 to num_cls - 1 do
    for m = 0 to num_st - 1 do
      st.area.(c).(m) <- 0.;
      st.last.(c).(m) <- Engine.now engine
    done
  done;
  st.measuring <- true;
  Engine.run ~until:(warmup +. horizon) engine;
  for c = 0 to num_cls - 1 do
    for m = 0 to num_st - 1 do
      note st c m
    done
  done;
  let throughput =
    Array.init num_cls (fun c ->
        if Float.equal visit_totals.(c) 0. then 0.
        else begin
          let total =
            Array.fold_left ( + ) 0 st.completions.(c)
          in
          float_of_int total /. visit_totals.(c) /. horizon
        end)
  in
  let queue =
    Array.init num_cls (fun c ->
        Array.init num_st (fun m -> st.area.(c).(m) /. horizon))
  in
  let residence =
    Array.init num_cls (fun c ->
        Array.init num_st (fun m ->
            if Float.equal throughput.(c) 0. then 0. else queue.(c).(m) /. throughput.(c)))
  in
  {
    solution =
      {
        Solution.network;
        throughput;
        residence;
        queue;
        iterations = Engine.events_processed engine;
        converged = true;
      };
    events = Engine.events_processed engine;
    sim_time = horizon;
  }
