open Lattol_stats

type 'a job = {
  payload : 'a;
  arrived : float;
  duration : float option; (* per-job override of the service distribution *)
  on_start : (unit -> unit) option; (* fires when service begins *)
  on_complete : 'a -> unit;
}

type 'a t = {
  engine : Engine.t;
  rng : Prng.t;
  name : string;
  service : Variate.t;
  servers : int;
  queues : 'a job Queue.t array; (* index = priority level, 0 first *)
  mutable in_service : int; (* occupied servers *)
  mutable speed : float; (* service-rate multiplier; durations divide by it *)
  (* statistics *)
  mutable stats_start : float;
  mutable busy_area : float; (* integral of occupied servers over time *)
  mutable busy_last_change : float;
  mutable queue_area : float;
  mutable queue_last_change : float;
  mutable completed : int;
  mutable response : Moments.t;
}

let create ?(servers = 1) ?(priority_levels = 1) engine ~rng ~name ~service =
  if servers < 1 then invalid_arg "Station.create: servers >= 1";
  if priority_levels < 1 then invalid_arg "Station.create: priority_levels >= 1";
  (match Variate.validate service with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Station.create: " ^ msg));
  {
    engine;
    rng;
    name;
    service;
    servers;
    queues = Array.init priority_levels (fun _ -> Queue.create ());
    in_service = 0;
    speed = 1.;
    stats_start = Engine.now engine;
    busy_area = 0.;
    busy_last_change = Engine.now engine;
    queue_area = 0.;
    queue_last_change = Engine.now engine;
    completed = 0;
    response = Moments.create ();
  }

let name t = t.name

let servers t = t.servers

let waiting t =
  Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues

let queue_length t = waiting t + t.in_service

let busy t = t.in_service > 0

let note_queue_change t =
  let now = Engine.now t.engine in
  t.queue_area <-
    t.queue_area +. (float_of_int (queue_length t) *. (now -. t.queue_last_change));
  t.queue_last_change <- now

let note_busy_change t =
  let now = Engine.now t.engine in
  t.busy_area <-
    t.busy_area +. (float_of_int t.in_service *. (now -. t.busy_last_change));
  t.busy_last_change <- now

let take_next t =
  let rec go level =
    if level >= Array.length t.queues then None
    else
      match Queue.take_opt t.queues.(level) with
      | Some job -> Some job
      | None -> go (level + 1)
  in
  go 0

let rec start_service t =
  if t.in_service < t.servers then
    match take_next t with
    | None -> ()
    | Some job ->
      note_busy_change t;
      t.in_service <- t.in_service + 1;
      let work =
        match job.duration with
        | Some d -> d
        | None -> Variate.draw t.service t.rng
      in
      (match job.on_start with Some f -> f () | None -> ());
      (* [work] is nominal service demand; a degraded station (speed < 1)
         stretches it.  Jobs already in service keep the speed they started
         with (non-preemptive degradation). *)
      Engine.schedule t.engine ~delay:(work /. t.speed) (fun () ->
          complete t job);
      start_service t

and complete t job =
  note_queue_change t;
  note_busy_change t;
  t.in_service <- t.in_service - 1;
  t.completed <- t.completed + 1;
  Moments.add t.response (Engine.now t.engine -. job.arrived);
  start_service t;
  job.on_complete job.payload

let submit ?(priority = 0) ?duration ?on_start t payload on_complete =
  (match duration with
  | Some d when d < 0. -> invalid_arg "Station.submit: negative duration"
  | Some _ | None -> ());
  note_queue_change t;
  let level = max 0 (min priority (Array.length t.queues - 1)) in
  Queue.add
    { payload; arrived = Engine.now t.engine; duration; on_start; on_complete }
    t.queues.(level);
  start_service t

let speed t = t.speed

let set_speed t s =
  if s <= 0. || not (Float.is_finite s) then
    invalid_arg "Station.set_speed: speed must be positive and finite";
  t.speed <- s;
  (* A speed-up may not retroactively shorten jobs in service, but waiting
     jobs should start under the new speed as servers free up; nothing to
     do — [start_service] reads [t.speed] at dispatch time. *)
  start_service t

let elapsed t = Engine.now t.engine -. t.stats_start

let completed t = t.completed

let utilization t =
  let span = elapsed t in
  if span <= 0. then 0.
  else begin
    let now = Engine.now t.engine in
    let area =
      t.busy_area +. (float_of_int t.in_service *. (now -. t.busy_last_change))
    in
    area /. span /. float_of_int t.servers
  end

let mean_queue_length t =
  let span = elapsed t in
  if span <= 0. then 0.
  else begin
    let now = Engine.now t.engine in
    let area =
      t.queue_area
      +. (float_of_int (queue_length t) *. (now -. t.queue_last_change))
    in
    area /. span
  end

let response_times t = t.response

let throughput t =
  let span = elapsed t in
  if span <= 0. then 0. else float_of_int t.completed /. span

let reset_stats t =
  let now = Engine.now t.engine in
  t.stats_start <- now;
  t.busy_area <- 0.;
  t.busy_last_change <- now;
  t.queue_area <- 0.;
  t.queue_last_change <- now;
  t.completed <- 0;
  t.response <- Moments.create ()
