open Lattol_stats
open Lattol_topology
open Lattol_core
open Lattol_robust
module Ev = Lattol_obs.Events
module Metrics = Lattol_obs.Metrics

type service_model = Exponential | Deterministic

type config = {
  seed : int;
  rng : Prng.t option;
  warmup : float;
  horizon : float;
  batches : int;
  proc_model : service_model;
  mem_model : service_model;
  switch_model : service_model;
  local_memory_priority : bool;
  faults : Fault_plan.t;
  trace : Ev.t option;
  metrics : Metrics.t option;
  on_batch : (events:int -> time:float -> unit) option;
}

let default_config =
  {
    seed = 1;
    rng = None;
    warmup = 1_000.;
    horizon = 100_000.;
    batches = 20;
    proc_model = Exponential;
    mem_model = Exponential;
    switch_model = Exponential;
    local_memory_priority = false;
    faults = Fault_plan.none;
    trace = None;
    metrics = None;
    on_batch = None;
  }

type fault_stats = {
  component : string;
  stations : int;
  failures : int;
  downtime : float;
  unavailability : float;
  mean_outage : float;
}

type result = {
  measures : Measures.t;
  lambda_ci : float * float;
  u_p_ci : float * float;
  remote_trips : int;
  events : int;
  sim_time : float;
  faults : fault_stats list;
}

let variate model mean =
  match model with
  | Exponential -> Variate.Exponential mean
  | Deterministic -> Variate.Deterministic mean

(* Per-component-class accumulator of the fault-injection layer. *)
type fault_acc = {
  label : string;
  num_stations : int;
  mutable failures : int; (* failure instants inside the measuring window *)
  mutable downtime : float; (* completed outages, clipped to the window *)
  mutable open_outages : float list; (* start times of outages in progress *)
}

type state = {
  engine : Engine.t;
  topo : Topology.t;
  probs : float array array;     (* access matrix rows *)
  procs : unit Station.t array;  (* payloads are unit; flow lives in closures *)
  mems : unit Station.t array;
  sw_in : unit Station.t array;
  sw_out : unit Station.t array;
  sync_units : unit Station.t array option;
      (* EARTH-style SUs; None on the paper's plain PE *)
  trip_times : Moments.t;        (* one-way network trips *)
  rng : Prng.t;
  mutable completions : int;     (* thread activations finished (measured) *)
  mutable remote_issued : int;
  mutable measuring : bool;
  mutable measure_start : float; (* clock value when measuring began *)
  mem_priority : bool;
  fault_targets :
    (Fault_plan.process * fault_acc * unit Station.t array) list;
  trace : Ev.t option;
  metrics : Metrics.t option;
  trip_hist : Metrics.histogram option; (* trip-time distribution series *)
}

let build (config : config) p =
  let p = Params.validate_exn p in
  let faults = Fault_plan.validate_exn config.faults in
  let engine = Engine.create () in
  let rng =
    match config.rng with
    | Some r -> r
    | None -> Prng.create ~seed:config.seed ()
  in
  let topo = Params.make_topology p in
  let n = Params.num_processors p in
  let probs =
    if p.Params.p_remote > 0. || n > 1 then Access.matrix (Params.make_access p)
    else Array.make_matrix 1 1 1.
  in
  let mk ?servers prefix service =
    Array.init n (fun node ->
        Station.create ?servers engine ~rng:(Prng.split rng)
          ~name:(Printf.sprintf "%s%d" prefix node)
          ~service)
  in
  let procs =
    mk "proc" (variate config.proc_model (Params.processor_occupancy p))
  in
  let mems =
    Array.init n (fun node ->
        Station.create ~servers:p.Params.mem_ports
          ~priority_levels:(if config.local_memory_priority then 2 else 1)
          engine ~rng:(Prng.split rng)
          ~name:(Printf.sprintf "mem%d" node)
          ~service:(variate config.mem_model p.Params.l_mem))
  in
  let sw_in =
    mk ~servers:p.Params.switch_pipeline "in"
      (variate config.switch_model p.Params.s_switch)
  in
  let sw_out =
    mk ~servers:p.Params.switch_pipeline "out"
      (variate config.switch_model p.Params.s_switch)
  in
  let fault_targets =
    let entry label pr stations =
      ( pr,
        {
          label;
          num_stations = Array.length stations;
          failures = 0;
          downtime = 0.;
          open_outages = [];
        },
        stations )
    in
    (match faults.Fault_plan.switch with
    | None -> []
    | Some pr -> [ entry "switch" pr (Array.append sw_in sw_out) ])
    @
    match faults.Fault_plan.memory with
    | None -> []
    | Some pr -> [ entry "memory" pr mems ]
  in
  {
    engine;
    topo;
    probs;
    procs;
    mems;
    sw_in;
    sw_out;
    sync_units =
      (if p.Params.sync_unit > 0. then
         Some (mk "su" (variate config.switch_model p.Params.sync_unit))
       else None);
    trip_times = Moments.create ();
    rng;
    completions = 0;
    remote_issued = 0;
    measuring = false;
    measure_start = 0.;
    mem_priority = config.local_memory_priority;
    fault_targets;
    trace = config.trace;
    metrics = config.metrics;
    trip_hist =
      Option.map
        (fun m ->
          Metrics.histogram m ~help:"one-way network trip times" ~lo:0.
            ~hi:(50. *. Float.max 1. p.Params.s_switch)
            ~bins:64 "trip_time")
        config.metrics;
  }

(* ------------------------------------------------------------------ *)
(* Fault injection: per-station alternating failure-repair renewal
   processes (exponential up and down times).  A full outage
   ([degrade = 0]) seizes every server with a repair job of the outage
   length, so traffic queues behind the breakdown; partial degradation
   ([0 < degrade < 1]) slows the station through {!Station.set_speed}.
   Both are non-preemptive: jobs already in service finish undisturbed. *)

let remove_first x l =
  let rec go acc = function
    | [] -> List.rev acc
    | y :: rest ->
      if y = x then List.rev_append acc rest else go (y :: acc) rest
  in
  go [] l

let rec station_fault_cycle st acc (pr : Fault_plan.process) rng station =
  let ttf = Variate.exponential rng ~mean:pr.Fault_plan.mtbf in
  Engine.schedule st.engine ~delay:ttf (fun () ->
      let t_fail = Engine.now st.engine in
      if st.measuring then acc.failures <- acc.failures + 1;
      acc.open_outages <- t_fail :: acc.open_outages;
      let ttr = Variate.exponential rng ~mean:pr.Fault_plan.mttr in
      if pr.Fault_plan.degrade > 0. then
        Station.set_speed station pr.Fault_plan.degrade
      else
        for _ = 1 to Station.servers station do
          Station.submit ~duration:ttr station () (fun () -> ())
        done;
      Engine.schedule st.engine ~delay:ttr (fun () ->
          if pr.Fault_plan.degrade > 0. then Station.set_speed station 1.;
          acc.open_outages <- remove_first t_fail acc.open_outages;
          if st.measuring then
            acc.downtime <-
              acc.downtime
              +. (Engine.now st.engine -. Float.max t_fail st.measure_start);
          station_fault_cycle st acc pr rng station))

let launch_faults st =
  List.iter
    (fun (pr, acc, stations) ->
      Array.iter
        (fun station ->
          station_fault_cycle st acc pr (Prng.split st.rng) station)
        stations)
    st.fault_targets

let pp_fault_stats ppf f =
  Format.fprintf ppf
    "faults[%s]: %d failures over %d stations, downtime %.1f (unavail %.4f, \
     mean outage %.1f)"
    f.component f.failures f.stations f.downtime f.unavailability f.mean_outage

(* Snapshot the per-component downtime statistics, charging outages still
   in progress up to the current clock. *)
let fault_report st ~sim_time =
  List.map
    (fun ((_ : Fault_plan.process), acc, (_ : unit Station.t array)) ->
      let now = Engine.now st.engine in
      let open_downtime =
        List.fold_left
          (fun total t0 -> total +. (now -. Float.max t0 st.measure_start))
          0. acc.open_outages
      in
      let downtime = acc.downtime +. open_downtime in
      let span = sim_time *. float_of_int acc.num_stations in
      {
        component = acc.label;
        stations = acc.num_stations;
        failures = acc.failures;
        downtime;
        unavailability = (if span > 0. then downtime /. span else 0.);
        mean_outage =
          (if acc.failures = 0 then nan
           else downtime /. float_of_int acc.failures);
      })
    st.fault_targets

(* Submit work to [station] on behalf of thread [tid] of node [pid],
   emitting a queue span (when any waiting occurred) and a service span to
   the tracer.  Spans are attributed to the issuing thread's lane, not the
   station's, so a thread's Perfetto track reads as the paper's latency
   decomposition.  Without a tracer this is exactly [Station.submit]. *)
let tsubmit ?priority ?duration st ~pid ~tid ~queue ~service ~cat station k =
  match st.trace with
  | None -> Station.submit ?priority ?duration station () k
  | Some tr ->
    let arrived = Engine.now st.engine in
    let started = ref arrived in
    Station.submit ?priority ?duration
      ~on_start:(fun () ->
        let now = Engine.now st.engine in
        started := now;
        if st.measuring && now > arrived then
          Ev.emit tr ~pid ~cat ~track:tid ~name:queue ~t0:arrived
            (now -. arrived))
      station ()
      (fun () ->
        (if st.measuring then
           let now = Engine.now st.engine in
           Ev.emit tr ~pid ~cat ~track:tid ~name:service ~t0:!started
             (now -. !started));
        k ())

(* Walk a message through the inbound switches along [route], then continue. *)
let rec traverse st ~pid ~tid route k =
  match route with
  | [] -> k ()
  | hop :: rest ->
    tsubmit st ~pid ~tid ~queue:"switch-queue" ~service:"network-transit"
      ~cat:"net" st.sw_in.(hop)
      (fun () -> traverse st ~pid ~tid rest k)

(* One finished one-way trip: feeds the [s_obs] estimator, the trip-time
   histogram and — as a span covering the whole trip — the tracer, where
   it overlays the switch spans it is made of. *)
let record_trip st ~pid ~tid t0 =
  if st.measuring then begin
    let dur = Engine.now st.engine -. t0 in
    Moments.add st.trip_times dur;
    Option.iter (fun h -> Metrics.record h dur) st.trip_hist;
    Option.iter
      (fun tr ->
        Ev.emit tr ~pid ~cat:"net" ~track:tid ~name:"network-trip" ~t0 dur)
      st.trace
  end

(* Pass through the node's synchronization unit if the machine has one. *)
let via_su st ~pid ~tid node k =
  match st.sync_units with
  | None -> k ()
  | Some sus ->
    tsubmit st ~pid ~tid ~queue:"su-queue" ~service:"su-service" ~cat:"sync"
      sus.(node) k

(* Perform one memory access from [home] to [dst] and call [k] when the
   response is back at the thread.  Remote accesses are injected at the
   source SU, handled at the destination SU before the memory, and
   completed at the source SU (no-ops without SUs). *)
let access st ~tid home dst k =
  let pid = home in
  if dst = home then
    (* local accesses use the default (highest) priority level *)
    tsubmit st ~pid ~tid ~queue:"memory-queue" ~service:"memory-service"
      ~cat:"mem" st.mems.(home) k
  else begin
    if st.measuring then st.remote_issued <- st.remote_issued + 1;
    via_su st ~pid ~tid home (fun () ->
        let t0 = Engine.now st.engine in
        tsubmit st ~pid ~tid ~queue:"switch-queue" ~service:"network-transit"
          ~cat:"net" st.sw_out.(home)
          (fun () ->
            traverse st ~pid ~tid (Topology.route st.topo ~src:home ~dst)
              (fun () ->
                record_trip st ~pid ~tid t0;
                via_su st ~pid ~tid dst (fun () ->
                    let priority = if st.mem_priority then 1 else 0 in
                    tsubmit ~priority st ~pid ~tid ~queue:"memory-queue"
                      ~service:"memory-service" ~cat:"mem" st.mems.(dst)
                      (fun () ->
                        let t1 = Engine.now st.engine in
                        tsubmit st ~pid ~tid ~queue:"switch-queue"
                          ~service:"network-transit" ~cat:"net"
                          st.sw_out.(dst)
                          (fun () ->
                            traverse st ~pid ~tid
                              (Topology.route st.topo ~src:dst ~dst:home)
                              (fun () ->
                                record_trip st ~pid ~tid t1;
                                via_su st ~pid ~tid home k)))))))
  end

let finish_step st =
  if st.measuring then st.completions <- st.completions + 1

(* Statistical thread: exponential compute drawn by the processor station,
   destination sampled from the access matrix. *)
let rec thread_cycle st home tid =
  tsubmit st ~pid:home ~tid ~queue:"ready-queue" ~service:"compute"
    ~cat:"proc" st.procs.(home)
    (fun () ->
      let dst = Variate.discrete st.rng st.probs.(home) in
      access st ~tid home dst (fun () ->
          finish_step st;
          thread_cycle st home tid))

(* Scripted thread: compute times and targets replayed cyclically from a
   trace. *)
let rec trace_cycle st home tid script pos =
  let step = script.(!pos) in
  pos := (!pos + 1) mod Array.length script;
  tsubmit ~duration:step.Trace.compute st ~pid:home ~tid ~queue:"ready-queue"
    ~service:"compute" ~cat:"proc" st.procs.(home)
    (fun () ->
      access st ~tid home step.Trace.target (fun () ->
          finish_step st;
          trace_cycle st home tid script pos))

let name_thread st home tid =
  Option.iter
    (fun tr ->
      if tid = 0 then Ev.name_process tr home (Printf.sprintf "node%d" home);
      Ev.name_track tr ~pid:home tid (Printf.sprintf "thread%d" tid))
    st.trace

let total_proc_busy st =
  Array.fold_left (fun acc s -> acc +. Station.utilization s) 0. st.procs

(* Launch threads, warm up, reset statistics: the shared preamble of the
   measurement runs.  [launch] populates the machine with threads. *)
let start ?launch config p =
  let st = build config p in
  let n = Params.num_processors p in
  (* Fault processes are seeded before the workload threads touch the
     shared PRNG so that a given seed yields the same fault trajectory
     regardless of the workload wiring. *)
  launch_faults st;
  (match launch with
  | Some f -> f st
  | None ->
    for home = 0 to n - 1 do
      for tid = 0 to p.Params.n_t - 1 do
        name_thread st home tid;
        thread_cycle st home tid
      done
    done);
  Engine.run ~until:config.warmup st.engine;
  Array.iter Station.reset_stats st.procs;
  Array.iter Station.reset_stats st.mems;
  Array.iter Station.reset_stats st.sw_in;
  Array.iter Station.reset_stats st.sw_out;
  Option.iter (Array.iter Station.reset_stats) st.sync_units;
  st.measuring <- true;
  st.measure_start <- Engine.now st.engine;
  st

(* Advance one batch of [batch_span] and record the per-batch throughput
   and utilization. *)
let run_batch st ~config ~n ~batch_span ~prev_completions ~prev_busy
    ~lambda_batches ~u_p_batches =
  let stop = Engine.now st.engine +. batch_span in
  Engine.run ~until:stop st.engine;
  (* Station.utilization is busy/elapsed since the post-warm-up reset;
     convert back to cumulative busy time to difference per batch. *)
  let elapsed = Engine.now st.engine -. config.warmup in
  let busy_now = total_proc_busy st *. elapsed in
  let d_completions = st.completions - !prev_completions in
  let d_busy = busy_now -. !prev_busy in
  prev_completions := st.completions;
  prev_busy := busy_now;
  Moments.add lambda_batches
    (float_of_int d_completions /. batch_span /. float_of_int n);
  Moments.add u_p_batches (d_busy /. batch_span /. float_of_int n);
  match config.on_batch with
  | None -> ()
  | Some f ->
    f ~events:(Engine.events_processed st.engine) ~time:(Engine.now st.engine)

let rec run ?(config = default_config) p =
  if config.warmup < 0. || config.horizon <= 0. then
    invalid_arg "Mms_des.run: warmup >= 0 and horizon > 0";
  if config.batches < 2 then invalid_arg "Mms_des.run: batches >= 2";
  let p = Params.validate_exn p in
  let st = start config p in
  let n = Params.num_processors p in
  let batch_span = config.horizon /. float_of_int config.batches in
  let lambda_batches = Moments.create () in
  let u_p_batches = Moments.create () in
  let prev_completions = ref 0 in
  let prev_busy = ref 0. in
  for _ = 1 to config.batches do
    run_batch st ~config ~n ~batch_span ~prev_completions ~prev_busy
      ~lambda_batches ~u_p_batches
  done;
  collect st p ~sim_time:config.horizon ~lambda_batches ~u_p_batches

(* Assemble the result record from a finished measurement run. *)
and collect st p ~sim_time ~lambda_batches ~u_p_batches =
  let n = Params.num_processors p in
  let lambda =
    float_of_int st.completions /. sim_time /. float_of_int n
  in
  let u_p =
    Array.fold_left (fun acc s -> acc +. Station.utilization s) 0. st.procs
    /. float_of_int n
  in
  let lambda_net =
    float_of_int st.remote_issued /. sim_time /. float_of_int n
  in
  let mem_response =
    Array.fold_left
      (fun acc s -> Moments.merge acc (Station.response_times s))
      (Moments.create ()) st.mems
  in
  let avg_util stations =
    Array.fold_left (fun acc s -> acc +. Station.utilization s) 0. stations
    /. float_of_int n
  in
  let avg_queue stations =
    Array.fold_left (fun acc s -> acc +. Station.mean_queue_length s) 0. stations
    /. float_of_int n
  in
  let measures =
    {
      Measures.u_p;
      lambda;
      lambda_net;
      s_obs =
        (if Moments.count st.trip_times = 0 then nan
         else Moments.mean st.trip_times);
      l_obs =
        (if Moments.count mem_response = 0 then 0.
         else Moments.mean mem_response);
      cycle_time = (if lambda > 0. then float_of_int p.Params.n_t /. lambda else 0.);
      util_memory = avg_util st.mems;
      util_switch_in = avg_util st.sw_in;
      util_switch_out = avg_util st.sw_out;
      util_sync =
        (match st.sync_units with Some sus -> avg_util sus | None -> 0.);
      su_obs =
        (match st.sync_units with
        | None -> 0.
        | Some sus ->
          let m =
            Array.fold_left
              (fun acc s -> Moments.merge acc (Station.response_times s))
              (Moments.create ()) sus
          in
          if Moments.count m = 0 then nan else 3. *. Moments.mean m);
      queue_processor = avg_queue st.procs;
      queue_memory = avg_queue st.mems;
      queue_network = avg_queue st.sw_in +. avg_queue st.sw_out;
      iterations = Engine.events_processed st.engine;
      converged = true;
    }
  in
  (match st.metrics with
  | None -> ()
  | Some reg ->
    let gauge ?labels ?help name v =
      Metrics.set_gauge (Metrics.gauge reg ?labels ?help name) v
    in
    let count ?help name v = Metrics.incr ~by:v (Metrics.counter reg ?help name) in
    gauge ~help:"processor utilization" "u_p" measures.Measures.u_p;
    gauge ~help:"thread activations per processor per time" "lambda"
      measures.Measures.lambda;
    gauge ~help:"remote access rate per processor" "lambda_net"
      measures.Measures.lambda_net;
    gauge ~help:"observed one-way network latency" "s_obs"
      measures.Measures.s_obs;
    gauge ~help:"observed memory residence time" "l_obs"
      measures.Measures.l_obs;
    gauge ~help:"measured horizon" "sim_time" sim_time;
    count ~help:"thread activations completed" "completions" st.completions;
    count ~help:"remote accesses issued" "remote_accesses" st.remote_issued;
    count ~help:"simulation events processed" "engine_events"
      (Engine.events_processed st.engine);
    let station_family stations =
      Array.iter
        (fun s ->
          let labels = [ ("station", Station.name s) ] in
          gauge ~labels ~help:"station utilization" "station_util"
            (Station.utilization s);
          gauge ~labels ~help:"time-averaged station queue length"
            "station_queue"
            (Station.mean_queue_length s))
        stations
    in
    station_family st.procs;
    station_family st.mems;
    station_family st.sw_in;
    station_family st.sw_out;
    Option.iter station_family st.sync_units);
  let ci m =
    match Lattol_stats.Confidence.interval m with
    | Some (mean, half) -> (mean, half)
    | None -> (nan, nan)
  in
  {
    measures;
    lambda_ci = ci lambda_batches;
    u_p_ci = ci u_p_batches;
    remote_trips = Moments.count st.trip_times;
    events = Engine.events_processed st.engine;
    sim_time;
    faults = fault_report st ~sim_time;
  }

let run_until_precision ?(config = default_config) ?(batch_span = 2_000.)
    ?(min_batches = 10) ~target_rel_error ~max_horizon p =
  if target_rel_error <= 0. then
    invalid_arg "Mms_des.run_until_precision: target_rel_error > 0";
  if batch_span <= 0. || max_horizon < batch_span *. float_of_int min_batches
  then invalid_arg "Mms_des.run_until_precision: inconsistent horizon bounds";
  let p = Params.validate_exn p in
  let st = start config p in
  let n = Params.num_processors p in
  let lambda_batches = Moments.create () in
  let u_p_batches = Moments.create () in
  let prev_completions = ref 0 in
  let prev_busy = ref 0. in
  let batches = ref 0 in
  let rel_error () =
    match Lattol_stats.Confidence.interval u_p_batches with
    | Some (mean, half) when mean > 0. -> half /. mean
    | Some _ | None -> infinity
  in
  let continue () =
    !batches < min_batches
    || (rel_error () > target_rel_error
       && float_of_int !batches *. batch_span < max_horizon)
  in
  while continue () do
    run_batch st ~config ~n ~batch_span ~prev_completions ~prev_busy
      ~lambda_batches ~u_p_batches;
    incr batches
  done;
  let sim_time = float_of_int !batches *. batch_span in
  collect st p ~sim_time ~lambda_batches ~u_p_batches

let run_trace ?(config = default_config) ~base trace =
  if config.warmup < 0. || config.horizon <= 0. then
    invalid_arg "Mms_des.run_trace: warmup >= 0 and horizon > 0";
  if config.batches < 2 then invalid_arg "Mms_des.run_trace: batches >= 2";
  let p = Params.validate_exn base in
  let n = Params.num_processors p in
  if Trace.num_nodes trace <> n then
    Format.kasprintf invalid_arg "Mms_des.run_trace: trace covers %d nodes, machine has %d"
      (Trace.num_nodes trace) n;
  for node = 0 to n - 1 do
    for th = 0 to Trace.threads_at trace ~node - 1 do
      Array.iter
        (fun (s : Trace.step) ->
          if s.Trace.target < 0 || s.Trace.target >= n then
            Format.kasprintf invalid_arg
              "Mms_des.run_trace: target %d out of range" s.Trace.target)
        (Trace.script trace ~node ~thread:th)
    done
  done;
  let launch st =
    for home = 0 to n - 1 do
      for th = 0 to Trace.threads_at trace ~node:home - 1 do
        name_thread st home th;
        trace_cycle st home th (Trace.script trace ~node:home ~thread:th)
          (ref 0)
      done
    done
  in
  let st = start ~launch config p in
  let batch_span = config.horizon /. float_of_int config.batches in
  let lambda_batches = Moments.create () in
  let u_p_batches = Moments.create () in
  let prev_completions = ref 0 in
  let prev_busy = ref 0. in
  for _ = 1 to config.batches do
    run_batch st ~config ~n ~batch_span ~prev_completions ~prev_busy
      ~lambda_batches ~u_p_batches
  done;
  collect st p ~sim_time:config.horizon ~lambda_batches ~u_p_batches

let run_replications ?(config = default_config) ~replications p =
  if replications < 2 then
    invalid_arg "Mms_des.run_replications: replications >= 2";
  let results =
    List.init replications (fun i ->
        run ~config:{ config with seed = config.seed + i } p)
  in
  let u_p = Moments.create () in
  List.iter (fun r -> Moments.add u_p r.measures.Measures.u_p) results;
  let ci =
    match Lattol_stats.Confidence.interval u_p with
    | Some (mean, half) -> (mean, half)
    | None -> (nan, nan)
  in
  (List.hd results, ci)
