(** Direct discrete-event simulation of the multithreaded multiprocessor
    system.

    An independent implementation of the machine the analytical model
    abstracts (Section 8's cross-check role): every thread, memory access
    and switch hop is simulated explicitly on the same topology, routing
    and access pattern as the model.  Stations are FCFS single servers with
    exponential service by default; the paper's sensitivity experiment
    (deterministic memory service) is available through {!service_model}.

    Agreement between this simulator, the STPN simulator and the AMVA model
    on [lambda_net] and [S_obs] reproduces the paper's Figure 11. *)

open Lattol_core

type service_model =
  | Exponential
  | Deterministic

type config = {
  seed : int;
  rng : Lattol_stats.Prng.t option;
      (** randomness source; when set it supersedes [seed].  This is how
          replication fan-out hands each run an independent stream derived
          by {!Lattol_stats.Prng.split} from one root seed — the streams
          are fixed before any run starts, so results do not depend on how
          the runs are scheduled.  Default [None] (derive from [seed]). *)
  warmup : float;        (** simulated time discarded before measuring *)
  horizon : float;       (** measured simulated time *)
  batches : int;         (** batches for confidence intervals *)
  proc_model : service_model;
  mem_model : service_model;
  switch_model : service_model;
  local_memory_priority : bool;
      (** serve accesses from the local processor before remote ones at
          each memory module (non-preemptive) — the EM-4 design choice the
          paper's Section 7 discusses for machines with fast networks *)
  faults : Lattol_robust.Fault_plan.t;
      (** fault-injection plan: independent exponential failure-repair
          processes per switch / memory module.  A full outage
          ([degrade = 0]) seizes the station's servers for the repair
          duration (non-preemptive, so a service in progress completes
          first); partial degradation slows the station by the [degrade]
          factor.  Default {!Lattol_robust.Fault_plan.none}. *)
  trace : Lattol_obs.Events.t option;
      (** span tracer: when set, every measured thread activity — compute
          bursts, queueing at each station, switch hops, memory service,
          whole one-way network trips — is emitted as a span on the
          thread's lane (pid = node, track = thread).  Warm-up activity is
          not traced.  Default [None]. *)
  metrics : Lattol_obs.Metrics.t option;
      (** metrics registry: when set, the run registers its headline
          measures as gauges, per-station utilization / queue-length series
          (labeled by station name), completion / event counters and a
          trip-time histogram.  Use a fresh registry per run — series
          names would otherwise collide.  Default [None]. *)
  on_batch : (events:int -> time:float -> unit) option;
      (** heartbeat hook, invoked after every measurement batch with the
          cumulative engine event count and the current virtual time.  It
          observes the run (live progress reporting) and must not perturb
          it: keep it cheap and side-effect-free with respect to the
          model.  Default [None]. *)
}

val default_config : config
(** seed 1, warm-up 1_000, horizon 100_000 (the paper's run length),
    20 batches, exponential everywhere, no memory priority, no faults. *)

type fault_stats = {
  component : string;       (** ["switch"] or ["memory"] *)
  stations : int;           (** stations the process was attached to *)
  failures : int;           (** failures inside the measuring window *)
  downtime : float;
      (** total nominal outage time inside the window, summed over
          stations (outages still open at the end are charged up to the
          final clock) *)
  unavailability : float;   (** downtime / (stations x measured time) *)
  mean_outage : float;      (** downtime / failures; [nan] if none *)
}

type result = {
  measures : Measures.t;      (** same record the analytical model produces *)
  lambda_ci : float * float;  (** batch-means 95% CI on [lambda] *)
  u_p_ci : float * float;     (** batch-means 95% CI on [U_p] *)
  remote_trips : int;         (** one-way network trips measured *)
  events : int;               (** simulation events processed *)
  sim_time : float;           (** measured horizon *)
  faults : fault_stats list;  (** one entry per faulty component class *)
}

val pp_fault_stats : Format.formatter -> fault_stats -> unit

val run : ?config:config -> Params.t -> result
(** Simulate the machine described by the parameters.  Deterministic for a
    fixed seed. *)

val run_trace : ?config:config -> base:Params.t -> Trace.t -> result
(** Replay a {!Trace} on the machine described by [base] (which supplies
    topology, service times and ports; its [n_t], [runlength] and access
    pattern are superseded by the scripts).  Compute times come from the
    trace verbatim; memory and switch services still follow [config]'s
    distributions. *)

val run_replications :
  ?config:config -> replications:int -> Params.t ->
  result * (float * float)
(** Independent replications: run the simulation [replications] times with
    seeds [config.seed, config.seed + 1, ...] and return the first run's
    full result together with the across-replication 95% confidence
    interval on [U_p] — the standard alternative to batch means when
    initial-transient bias is the worry. *)

val run_until_precision :
  ?config:config -> ?batch_span:float -> ?min_batches:int ->
  target_rel_error:float -> max_horizon:float -> Params.t -> result
(** Sequential-stopping variant: simulate batch by batch (default span
    2_000 time units, at least [min_batches] = 10 of them) until the 95%
    confidence half-width of [U_p] falls below [target_rel_error] of its
    mean, or the measured time reaches [max_horizon].  The [horizon] and
    [batches] fields of [config] are ignored. *)
