(* Two-sided 95% critical values of the Student-t distribution. *)
let t_table =
  [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
     2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
     2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042 |]

let t_quantile ~df =
  if df < 1 then invalid_arg "Confidence.t_quantile: df >= 1";
  if df <= Array.length t_table then t_table.(df - 1)
  else if df <= 40 then 2.042 -. (0.021 *. float_of_int (df - 30) /. 10.)
  else if df <= 60 then 2.021 -. (0.021 *. float_of_int (df - 40) /. 20.)
  else if df <= 120 then 2.000 -. (0.020 *. float_of_int (df - 60) /. 60.)
  else 1.96

let interval m =
  let n = Moments.count m in
  if n < 2 then None
  else
    let half =
      t_quantile ~df:(n - 1) *. Moments.stddev m /. sqrt (float_of_int n)
    in
    Some (Moments.mean m, half)

let autocorrelation series ~lag =
  let n = Array.length series in
  if lag < 0 then invalid_arg "Confidence.autocorrelation: lag >= 0";
  if lag >= n || n < 2 then 0.
  else begin
    (* Autocorrelation probes are short batch-mean series; the goldens pin
       today's bit-exact sums, and compensation would shift them without
       statistical gain at these n. *)
    let mean =
      (Array.fold_left ( +. ) 0. series [@lattol.allow "float-sum-naive"])
      /. float_of_int n
    in
    let var =
      (Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. series
      [@lattol.allow "float-sum-naive"])
    in
    if Float.equal var 0. then 0.
    else begin
      let acc = ref 0. in
      for t = 0 to n - lag - 1 do
        acc := !acc +. ((series.(t) -. mean) *. (series.(t + lag) -. mean))
      done;
      !acc /. var
    end
  end

let suggest_batch_size ?(threshold = 0.1) ?max_lag series =
  if threshold <= 0. || threshold >= 1. then
    invalid_arg "Confidence.suggest_batch_size: threshold in (0, 1)";
  let n = Array.length series in
  let cap = Option.value max_lag ~default:(max 1 (n / 4)) in
  let rec find lag =
    if lag > cap then cap
    else if abs_float (autocorrelation series ~lag) < threshold then lag
    else find (lag + 1)
  in
  10 * find 1

module Batch_means = struct
  type t = {
    batch_size : int;
    mutable in_batch : int;
    mutable batch_sum : float;
    batches : Moments.t;
  }

  let create ~batch_size =
    if batch_size < 1 then invalid_arg "Batch_means.create: batch_size >= 1";
    { batch_size; in_batch = 0; batch_sum = 0.; batches = Moments.create () }

  let add t x =
    t.batch_sum <- t.batch_sum +. x;
    t.in_batch <- t.in_batch + 1;
    if t.in_batch = t.batch_size then begin
      Moments.add t.batches (t.batch_sum /. float_of_int t.batch_size);
      t.in_batch <- 0;
      t.batch_sum <- 0.
    end

  let num_batches t = Moments.count t.batches

  let mean t = Moments.mean t.batches

  let interval t = interval t.batches

  let relative_error t =
    match interval t with
    | Some (m, half) when not (Float.equal m 0.) -> abs_float (half /. m)
    | _ -> infinity
end
