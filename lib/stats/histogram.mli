(** Fixed-width histograms for distribution diagnostics (latency profiles,
    hop-count spreads) in the simulators and the CLI. *)

type t

val create : ?lo:float -> hi:float -> bins:int -> unit -> t
(** [create ~lo ~hi ~bins ()]: [bins] equal-width bins over [[lo, hi)];
    observations outside the range land in underflow/overflow counters.
    [lo] defaults to [0.]. *)

val add : t -> float -> unit

val count : t -> int
(** Total observations, including under/overflow. *)

val bins : t -> int
(** Number of bins. *)

val bin_count : t -> int -> int
(** Count in bin [i] (0-based). *)

val underflow : t -> int

val overflow : t -> int

val lo : t -> float
(** Lower bound of the binned range. *)

val hi : t -> float
(** Upper bound of the binned range. *)

val sum : t -> float
(** Sum of every observation ever added, outliers included — the
    Prometheus [_sum] companion to {!count}. *)

val copy : t -> t
(** Independent snapshot; further {!add}s to either side do not affect
    the other. *)

val merge : t -> t -> t
(** Bin-wise sum of two histograms over the same geometry (same [lo],
    [hi] and bin count — raises [Invalid_argument] otherwise).  Neither
    input is modified. *)

val bin_bounds : t -> int -> float * float
(** Inclusive-exclusive bounds of bin [i]. *)

val quantile : t -> float -> float
(** [quantile t q] approximates the [q]-quantile (0 < q < 1) by linear
    interpolation within the owning (populated) bin.  Mass outside the
    range is attributed to the nearest edge: overflow to [hi], underflow
    to [lo]; a quantile landing exactly on a bin boundary returns the
    boundary value. *)

val pp : Format.formatter -> t -> unit
(** Compact textual sparkline of the bin populations. *)
