(* Hyperexp branch and discrete weight arrays are tiny (a handful of
   entries), so the naive fold_left sums below are exact to well under the
   solver tolerances, and the golden CSVs pin their current bit patterns. *)
[@@@lattol.allow "float-sum-naive"]

type t =
  | Deterministic of float
  | Exponential of float
  | Uniform of float * float
  | Erlang of int * float
  | Hyperexp of (float * float) array

let mean = function
  | Deterministic v -> v
  | Exponential m -> m
  | Uniform (a, b) -> 0.5 *. (a +. b)
  | Erlang (_, m) -> m
  | Hyperexp branches ->
    Array.fold_left (fun acc (p, m) -> acc +. (p *. m)) 0. branches

let variance = function
  | Deterministic _ -> 0.
  | Exponential m -> m *. m
  | Uniform (a, b) ->
    let w = b -. a in
    w *. w /. 12.
  | Erlang (k, m) -> m *. m /. float_of_int k
  | Hyperexp branches ->
    let m1 = Array.fold_left (fun acc (p, m) -> acc +. (p *. m)) 0. branches in
    let m2 =
      Array.fold_left (fun acc (p, m) -> acc +. (2. *. p *. m *. m)) 0. branches
    in
    m2 -. (m1 *. m1)

let scv d =
  let m = mean d in
  if Float.equal m 0. then 0. else variance d /. (m *. m)

let exponential rng ~mean = -.mean *. log (Prng.float_pos rng)

let discrete rng weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Variate.discrete: weights must sum > 0";
  let x = Prng.float rng *. total in
  let n = Array.length weights in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.

let geometric_trunc rng ~p ~max =
  if p <= 0. || p >= 1. then invalid_arg "Variate.geometric_trunc: p in (0,1)";
  if max < 1 then invalid_arg "Variate.geometric_trunc: max >= 1";
  (* Inverse transform on the truncated geometric CDF. *)
  let a = p *. (1. -. (p ** float_of_int max)) /. (1. -. p) in
  let x = Prng.float rng *. a in
  let rec go h acc =
    if h >= max then max
    else
      let acc = acc +. (p ** float_of_int h) in
      if x < acc then h else go (h + 1) acc
  in
  go 1 0.

let draw d rng =
  match d with
  | Deterministic v -> v
  | Exponential m -> exponential rng ~mean:m
  | Uniform (a, b) -> a +. (Prng.float rng *. (b -. a))
  | Erlang (k, m) ->
    let stage_mean = m /. float_of_int k in
    let rec go i acc =
      if i = 0 then acc else go (i - 1) (acc +. exponential rng ~mean:stage_mean)
    in
    go k 0.
  | Hyperexp branches ->
    let probs = Array.map fst branches in
    let i = discrete rng probs in
    exponential rng ~mean:(snd branches.(i))

let validate d =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  match d with
  | Deterministic v when v < 0. -> err "deterministic value %g < 0" v
  | Exponential m when m <= 0. -> err "exponential mean %g <= 0" m
  | Uniform (a, b) when a < 0. || b <= a -> err "uniform range [%g, %g) invalid" a b
  | Erlang (k, m) when k < 1 || m <= 0. -> err "erlang (%d, %g) invalid" k m
  | Hyperexp branches ->
    let psum = Array.fold_left (fun acc (p, _) -> acc +. p) 0. branches in
    if Array.length branches = 0 then err "hyperexp with no branches"
    else if Array.exists (fun (p, m) -> p < 0. || m <= 0.) branches then
      err "hyperexp branch with negative probability or mean"
    else if abs_float (psum -. 1.) > 1e-9 then
      err "hyperexp probabilities sum to %g, not 1" psum
    else Ok ()
  | Deterministic _ | Exponential _ | Uniform _ | Erlang _ -> Ok ()

let pp ppf = function
  | Deterministic v -> Fmt.pf ppf "det(%g)" v
  | Exponential m -> Fmt.pf ppf "exp(mean=%g)" m
  | Uniform (a, b) -> Fmt.pf ppf "unif[%g,%g)" a b
  | Erlang (k, m) -> Fmt.pf ppf "erlang(k=%d,mean=%g)" k m
  | Hyperexp bs ->
    Fmt.pf ppf "hyperexp(%a)"
      Fmt.(array ~sep:comma (pair ~sep:(any ":") float float))
      bs
