type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : float; (* sum of every observation, outliers included *)
}

let create ?(lo = 0.) ~hi ~bins () =
  if bins < 1 then invalid_arg "Histogram.create: bins >= 1";
  if hi <= lo then invalid_arg "Histogram.create: hi > lo";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0;
    underflow = 0;
    overflow = 0;
    total = 0.;
  }

let add t x =
  t.total <- t.total +. x;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    let i = if i >= Array.length t.counts then Array.length t.counts - 1 else i in
    t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.underflow + t.overflow + Array.fold_left ( + ) 0 t.counts

let bins t = Array.length t.counts

let bin_count t i = t.counts.(i)

let underflow t = t.underflow

let overflow t = t.overflow

let lo t = t.lo

let hi t = t.hi

let sum t = t.total

let copy t = { t with counts = Array.copy t.counts }

let same_geometry a b =
  Float.equal a.lo b.lo && Float.equal a.hi b.hi
  && Array.length a.counts = Array.length b.counts

let merge a b =
  if not (same_geometry a b) then
    invalid_arg "Histogram.merge: geometries differ";
  {
    a with
    counts = Array.init (Array.length a.counts) (fun i -> a.counts.(i) + b.counts.(i));
    underflow = a.underflow + b.underflow;
    overflow = a.overflow + b.overflow;
    total = a.total +. b.total;
  }

let bin_bounds t i =
  let a = t.lo +. (float_of_int i *. t.width) in
  (a, a +. t.width)

let quantile t q =
  if q <= 0. || q >= 1. then invalid_arg "Histogram.quantile: q in (0,1)";
  let n = count t in
  if n = 0 then nan
  else begin
    let target = q *. float_of_int n in
    (* Quantiles inside the underflow mass sit below every bin: attribute
       them to the bottom edge (mirroring the overflow-to-top-edge rule)
       instead of extrapolating past [lo]. *)
    if float_of_int t.underflow >= target then t.lo
    else begin
      let rec go i acc =
        if i >= Array.length t.counts then t.hi
        else
          let acc' = acc +. float_of_int t.counts.(i) in
          (* Only a populated bin can own a quantile; empty bins carry no
             mass, so a boundary quantile belongs to the next populated
             bin's lower edge. *)
          if acc' >= target && t.counts.(i) > 0 then begin
            let lo, _ = bin_bounds t i in
            let frac = (target -. acc) /. float_of_int t.counts.(i) in
            let frac = Float.max 0. (Float.min 1. frac) in
            lo +. (frac *. t.width)
          end
          else go (i + 1) acc'
      in
      go 0 (float_of_int t.underflow)
    end
  end

let pp ppf t =
  let peak = Array.fold_left max 1 t.counts in
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  let render c =
    let level = c * (Array.length glyphs - 1) / peak in
    glyphs.(level)
  in
  Fmt.pf ppf "[%g..%g) n=%d |" t.lo t.hi (count t);
  Array.iter (fun c -> Fmt.char ppf (render c)) t.counts;
  Fmt.pf ppf "| under=%d over=%d" t.underflow t.overflow
