type t = {
  n : int;
  (* outgoing.(s) maps destination -> rate *)
  outgoing : (int, float) Hashtbl.t array;
}

let create n =
  if n < 1 then invalid_arg "Ctmc.create: need at least one state";
  { n; outgoing = Array.init n (fun _ -> Hashtbl.create 4) }

let num_states t = t.n

let check_state t s name =
  if s < 0 || s >= t.n then
    Format.kasprintf invalid_arg "Ctmc: %s state %d out of range [0, %d)" name
      s t.n

let add_rate t ~src ~dst r =
  check_state t src "source";
  check_state t dst "destination";
  if src = dst then invalid_arg "Ctmc.add_rate: src = dst";
  if r < 0. || not (Float.is_finite r) then
    invalid_arg "Ctmc.add_rate: rate must be finite and >= 0";
  if r > 0. then begin
    let tbl = t.outgoing.(src) in
    let prev = Option.value (Hashtbl.find_opt tbl dst) ~default:0. in
    Hashtbl.replace tbl dst (prev +. r)
  end

let rate t ~src ~dst =
  check_state t src "source";
  check_state t dst "destination";
  Option.value (Hashtbl.find_opt t.outgoing.(src) dst) ~default:0.

let exit_rate t s =
  check_state t s "state";
  Hashtbl.fold (fun _ r acc -> acc +. r) t.outgoing.(s) 0.

let steady_state ?(tolerance = 1e-12) ?(max_iterations = 100_000) t =
  (* Incoming adjacency: for pi Q = 0 we need, per state i, the flows
     pi_j * q_{j,i}. *)
  let incoming = Array.make t.n [] in
  Array.iteri
    (fun src tbl ->
      Hashtbl.iter (fun dst r -> incoming.(dst) <- (src, r) :: incoming.(dst)) tbl)
    t.outgoing;
  let exits = Array.init t.n (fun s -> exit_rate t s) in
  Array.iteri
    (fun s e ->
      if Float.equal e 0. && incoming.(s) <> [] then
        Format.kasprintf failwith "Ctmc.steady_state: state %d is absorbing" s)
    exits;
  let pi = Array.make t.n (1. /. float_of_int t.n) in
  let iteration = ref 0 in
  let converged = ref false in
  while (not !converged) && !iteration < max_iterations do
    incr iteration;
    let delta = ref 0. in
    for i = 0 to t.n - 1 do
      if exits.(i) > 0. then begin
        let inflow =
          List.fold_left (fun acc (j, r) -> acc +. (pi.(j) *. r)) 0. incoming.(i)
        in
        let updated = inflow /. exits.(i) in
        delta := Float.max !delta (abs_float (updated -. pi.(i)));
        pi.(i) <- updated
      end
      else pi.(i) <- 0.
    done;
    let total = Array.fold_left ( +. ) 0. pi in
    if total <= 0. then failwith "Ctmc.steady_state: probability mass vanished";
    for i = 0 to t.n - 1 do
      pi.(i) <- pi.(i) /. total
    done;
    if !delta < tolerance then converged := true
  done;
  if not !converged then
    Format.kasprintf failwith
      "Ctmc.steady_state: no convergence after %d iterations" max_iterations;
  pi

let transient ?(epsilon = 1e-10) t ~initial ~time =
  if Array.length initial <> t.n then
    invalid_arg "Ctmc.transient: initial distribution size mismatch";
  if time < 0. then invalid_arg "Ctmc.transient: negative time";
  let total = Array.fold_left ( +. ) 0. initial in
  if abs_float (total -. 1.) > 1e-9 then
    invalid_arg "Ctmc.transient: initial distribution must sum to 1";
  if Float.equal time 0. then Array.copy initial
  else begin
    (* Uniformization rate: a hair above the largest exit rate. *)
    let lambda = ref 0. in
    for s = 0 to t.n - 1 do
      let e = exit_rate t s in
      if e > !lambda then lambda := e
    done;
    if Float.equal !lambda 0. then Array.copy initial
    else begin
      let lambda = !lambda *. 1.02 in
      (* One step of the uniformized DTMC: v P where
         P = I + Q / lambda. *)
      let step v =
        let out = Array.make t.n 0. in
        for s = 0 to t.n - 1 do
          if v.(s) > 0. then begin
            let stay = 1. -. (exit_rate t s /. lambda) in
            out.(s) <- out.(s) +. (v.(s) *. stay);
            Hashtbl.iter
              (fun dst r -> out.(dst) <- out.(dst) +. (v.(s) *. r /. lambda))
              t.outgoing.(s)
          end
        done;
        out
      in
      let result = Array.make t.n 0. in
      let v = ref (Array.copy initial) in
      (* Poisson(lambda t) weights computed iteratively; stop when the
         accumulated mass reaches 1 - epsilon. *)
      let lt = lambda *. time in
      let weight = ref (exp (-.lt)) in
      let accumulated = ref 0. in
      let k = ref 0 in
      (* Guard against underflow of the k = 0 term for large lt: scale by
         tracking log-weight instead when needed. *)
      let log_weight = ref (-.lt) in
      while !accumulated < 1. -. epsilon && !k < 100_000 do
        weight := exp !log_weight;
        if !weight > 0. then begin
          accumulated := !accumulated +. !weight;
          for s = 0 to t.n - 1 do
            result.(s) <- result.(s) +. (!weight *. !v.(s))
          done
        end;
        incr k;
        log_weight := !log_weight +. log (lt /. float_of_int !k);
        v := step !v
      done;
      (* Renormalize the truncated expansion. *)
      let mass = Array.fold_left ( +. ) 0. result in
      if mass > 0. then Array.map (fun x -> x /. mass) result else result
    end
  end

let expected t ~pi ~f =
  if Array.length pi <> t.n then invalid_arg "Ctmc.expected: pi size mismatch";
  let acc = ref 0. in
  for i = 0 to t.n - 1 do
    acc := !acc +. (pi.(i) *. f i)
  done;
  !acc

let flow t ~pi ~select =
  if Array.length pi <> t.n then invalid_arg "Ctmc.flow: pi size mismatch";
  let acc = ref 0. in
  Array.iteri
    (fun src tbl ->
      Hashtbl.iter
        (fun dst r -> if select ~src ~dst then acc := !acc +. (pi.(src) *. r))
        tbl)
    t.outgoing;
  !acc
