(** The paper's figure sweeps as one cacheable parallel batch.

    Each {!figure} is a named {!Sweep} grid over the paper's base machine
    (4x4 torus, geometric p_sw = 0.5 access pattern); {!write} solves them
    all through one shared {!Cache} and emits one CSV per figure.  A warm
    cache directory makes a re-run perform zero new solves. *)

open Lattol_core

type figure = {
  name : string;   (** file stem, e.g. ["fig06_tolerance"] *)
  title : string;  (** human description, written as a leading comment *)
  base : Params.t;
  axes : Sweep.axis list;
}

val all : ?base:Params.t -> unit -> figure list
(** The built-in set:
    - [fig04_grid]: [n_t] x [p_remote] grid at runlength 1 (paper Fig. 4);
    - [fig05_grid]: the same grid at runlength 2 (paper Fig. 5);
    - [fig06_tolerance]: network tolerance over [p_remote] x runlength x
      [n_t] (paper Fig. 6);
    - [saturation]: [lambda_net] vs [p_remote] at [n_t = 10], showing the
      network saturating near the paper's 0.29 flits/cycle ceiling. *)

val find : ?base:Params.t -> string -> figure option

type written = { figure : figure; path : string; rows : int }

val journal_meta : ?solver:Mms.solver -> figure list -> string
(** Digest over every figure's {!Sweep.journal_meta}, in order — the meta
    a multi-figure checkpoint journal is bound to. *)

val write :
  ?solver:Mms.solver ->
  ?cache:Cache.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?oversubscribe:bool ->
  ?causal:Lattol_obs.Trace_ctx.ctx ->
  ?monitor:Pool.monitor ->
  ?journal:Journal.t ->
  ?retry:Lattol_robust.Retry.policy ->
  ?deadline:float ->
  ?chaos:Lattol_robust.Chaos.plan ->
  dir:string ->
  figure list ->
  written list
(** Solve and write [<dir>/<name>.csv] for each figure (creating [dir]),
    all figures sharing one cache.  [monitor] observes every figure's
    sweep through one {!Pool.monitor} (items accumulate across figures).
    [journal] checkpoints every figure's rows into one file, record ids
    prefixed ["<figure name>/"]; open it with {!journal_meta} so a resumed
    run replays only matching configurations.  [retry]/[deadline]/[chaos]
    pass through to each {!Sweep.run}.  CSV layout: a ["# title"] comment,
    a header of the swept parameter names followed by
    [u_p,lambda,lambda_net,s_obs,l_obs,tol_network,tol_memory], then one
    ["%g"]-keyed, ["%.6f"]-valued row per grid point.  [rows] counts data
    rows (skipped points become ["# skipped"] comments). *)
