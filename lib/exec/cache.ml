open Lattol_core
open Lattol_topology

(* Bump when the key derivation or the value encoding changes: stale
   entries from older layouts then simply miss.  Version 2 added the
   per-entry trailing checksum line. *)
let format_version = 2

type stats = {
  memo_hits : int;
  disk_hits : int;
  misses : int;
  solves : int;
  stores : int;
  corrupt : int;
  tmp_reclaimed : int;
}

(* In-run memo entry: [Running] parks later requesters of the same key on
   the condition variable until the first one finishes, so a shared
   configuration (every p_remote sweep point has the same ideal network)
   is solved exactly once no matter how many workers ask for it. *)
type entry = Running | Done of Measures.t

type t = {
  dir : string option; (* None = in-memory only *)
  memo : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  cond : Condition.t;
  mutable memo_hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable solves : int;
  mutable stores : int;
  mutable corrupt : int;
  mutable tmp_reclaimed : int;
}

(* A process that died between [Filename.temp_file] and [Sys.rename]
   leaves its temp file behind forever.  Reclaim them on open: anything
   matching the store's temp pattern and older than the open itself is an
   orphan (an in-flight writer's temp is younger; losing a race against
   one only makes that store fail atomically and re-solve later). *)
let reclaim_orphan_tmps dir ~before =
  let dir_exists d =
    match Sys.is_directory d with
    | b -> b
    | exception Sys_error _ -> false
  in
  if not (dir_exists dir) then 0
  else
    Array.fold_left
      (fun acc sub ->
        let subdir = Filename.concat dir sub in
        if String.length sub = 2 && dir_exists subdir then
          Array.fold_left
            (fun acc name ->
              if
                String.starts_with ~prefix:"lattol" name
                && Filename.check_suffix name ".tmp"
              then begin
                let p = Filename.concat subdir name in
                match Unix.stat p with
                | st when st.Unix.st_mtime < before -> (
                  match Sys.remove p with
                  | () -> acc + 1
                  | exception Sys_error _ -> acc)
                | _ -> acc
                | exception Unix.Unix_error (_, _, _) -> acc
              end
              else acc)
            acc (Sys.readdir subdir)
        else acc)
      0 (Sys.readdir dir)

let create ?dir () =
  let tmp_reclaimed =
    match dir with
    | None -> 0
    | Some d -> reclaim_orphan_tmps d ~before:(Lattol_robust.Retry.now ())
  in
  {
    dir;
    memo = Hashtbl.create 64;
    lock = Mutex.create ();
    cond = Condition.create ();
    memo_hits = 0;
    disk_hits = 0;
    misses = 0;
    solves = 0;
    stores = 0;
    corrupt = 0;
    tmp_reclaimed;
  }

let directory t = t.dir

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      memo_hits = t.memo_hits;
      disk_hits = t.disk_hits;
      misses = t.misses;
      solves = t.solves;
      stores = t.stores;
      corrupt = t.corrupt;
      tmp_reclaimed = t.tmp_reclaimed;
    }
  in
  Mutex.unlock t.lock;
  s

let note_corrupt t =
  Mutex.lock t.lock;
  t.corrupt <- t.corrupt + 1;
  Mutex.unlock t.lock

let inflight t =
  Mutex.lock t.lock;
  let n =
    Hashtbl.fold
      (fun _ entry acc -> match entry with Running -> acc + 1 | Done _ -> acc)
      t.memo 0
  in
  Mutex.unlock t.lock;
  n

(* The historical prefix is load-bearing (golden cram output and the CI
   warm-cache grep both match on it); the robustness counters only appear
   when they are nonzero. *)
let pp_stats ppf (s : stats) =
  Format.fprintf ppf "%d hits (%d disk, %d shared), %d misses, %d solves"
    (s.disk_hits + s.memo_hits)
    s.disk_hits s.memo_hits s.misses s.solves;
  if s.corrupt > 0 then Format.fprintf ppf ", %d corrupt" s.corrupt;
  if s.tmp_reclaimed > 0 then
    Format.fprintf ppf ", %d tmp reclaimed" s.tmp_reclaimed

(* ------------------------------------------------------------------ *)
(* Canonical key *)

(* Exact hexadecimal floats: used for the on-disk value encoding, where a
   stored measure must round-trip bit-identically. *)
let hfloat b v = Printf.bprintf b "%h" v

(* Key encoding additionally canonicalizes the two bit-level float
   pathologies: -0.0 parameterizes the same solve as 0.0, and every nan
   payload/sign the same solve as every other, so they must share a cache
   key ("%h" would render "-0x0p+0" vs "0x0p+0" and "-nan" vs "nan"). *)
let kfloat b v =
  if Float.is_nan v then Buffer.add_string b "nan"
  else if Float.equal v 0. then Buffer.add_string b "0x0p+0"
  else Printf.bprintf b "%h" v

let canonical_of_params b (p : Params.t) =
  Printf.bprintf b "topology=%s;"
    (match p.Params.topology with
    | Lattol_topology.Topology.Torus -> "torus"
    | Lattol_topology.Topology.Mesh -> "mesh");
  Printf.bprintf b "k=%d;dimensions=%d;n_t=%d;" p.Params.k p.Params.dimensions
    p.Params.n_t;
  Printf.bprintf b "runlength=";
  kfloat b p.Params.runlength;
  Printf.bprintf b ";context_switch=";
  kfloat b p.Params.context_switch;
  Printf.bprintf b ";p_remote=";
  kfloat b p.Params.p_remote;
  Printf.bprintf b ";pattern=";
  (match p.Params.pattern with
  | Access.Uniform -> Printf.bprintf b "uniform"
  | Access.Geometric p_sw ->
    Printf.bprintf b "geometric:";
    kfloat b p_sw
  | Access.Explicit m ->
    Printf.bprintf b "explicit:";
    Array.iter
      (fun row ->
        Array.iter
          (fun v ->
            kfloat b v;
            Buffer.add_char b ',')
          row;
        Buffer.add_char b '/')
      m);
  Printf.bprintf b ";l_mem=";
  kfloat b p.Params.l_mem;
  Printf.bprintf b ";mem_ports=%d;s_switch=" p.Params.mem_ports;
  kfloat b p.Params.s_switch;
  Printf.bprintf b ";switch_pipeline=%d;sync_unit=" p.Params.switch_pipeline;
  kfloat b p.Params.sync_unit

let canonical p =
  let b = Buffer.create 256 in
  canonical_of_params b p;
  Buffer.contents b

let key ~solver_id p =
  let b = Buffer.create 256 in
  Printf.bprintf b "lattol/%d;solver=%s;" format_version solver_id;
  canonical_of_params b p;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* On-disk value encoding *)

let fields (m : Measures.t) =
  [
    ("u_p", m.Measures.u_p);
    ("lambda", m.Measures.lambda);
    ("lambda_net", m.Measures.lambda_net);
    ("s_obs", m.Measures.s_obs);
    ("l_obs", m.Measures.l_obs);
    ("cycle_time", m.Measures.cycle_time);
    ("util_memory", m.Measures.util_memory);
    ("util_switch_in", m.Measures.util_switch_in);
    ("util_switch_out", m.Measures.util_switch_out);
    ("util_sync", m.Measures.util_sync);
    ("su_obs", m.Measures.su_obs);
    ("queue_processor", m.Measures.queue_processor);
    ("queue_memory", m.Measures.queue_memory);
    ("queue_network", m.Measures.queue_network);
  ]

let measures_of_table tbl =
  try
    let f name = float_of_string (Hashtbl.find tbl name) in
    Some
      {
        Measures.u_p = f "u_p";
        lambda = f "lambda";
        lambda_net = f "lambda_net";
        s_obs = f "s_obs";
        l_obs = f "l_obs";
        cycle_time = f "cycle_time";
        util_memory = f "util_memory";
        util_switch_in = f "util_switch_in";
        util_switch_out = f "util_switch_out";
        util_sync = f "util_sync";
        su_obs = f "su_obs";
        queue_processor = f "queue_processor";
        queue_memory = f "queue_memory";
        queue_network = f "queue_network";
        iterations = int_of_string (Hashtbl.find tbl "iterations");
        converged = bool_of_string (Hashtbl.find tbl "converged");
      }
  with Not_found | Failure _ -> None

let table_of_pairs split s =
  let tbl = Hashtbl.create 17 in
  match
    List.iter
      (fun item ->
        if item <> "" then
          match String.index_opt item split with
          | None -> raise Exit
          | Some i ->
            Hashtbl.replace tbl (String.sub item 0 i)
              (String.sub item (i + 1) (String.length item - i - 1)))
      s
  with
  | () -> Some tbl
  | exception Exit -> None

let encode (m : Measures.t) =
  let b = Buffer.create 512 in
  Printf.bprintf b "lattol-cache %d\n" format_version;
  List.iter
    (fun (name, v) ->
      Printf.bprintf b "%s " name;
      hfloat b v;
      Buffer.add_char b '\n')
    (fields m);
  Printf.bprintf b "iterations %d\n" m.Measures.iterations;
  Printf.bprintf b "converged %b\n" m.Measures.converged;
  (* The trailing checksum line covers every preceding byte: truncation
     and bit flips alike fail verification. *)
  Printf.bprintf b "checksum %s"
    (Digest.to_hex (Digest.string (Buffer.contents b)));
  Buffer.add_char b '\n';
  Buffer.contents b

(* Split off the trailing "checksum <hex>" line; [None] if the entry does
   not end with one (truncated, or torn mid-line). *)
let checksum_split text =
  let n = String.length text in
  if n = 0 || text.[n - 1] <> '\n' then None
  else
    let start =
      match String.rindex_from_opt text (n - 2) '\n' with
      | Some i -> i + 1
      | None -> 0
    in
    let line = String.sub text start (n - 1 - start) in
    if String.starts_with ~prefix:"checksum " line then
      Some
        ( String.sub text 0 start,
          String.sub line 9 (String.length line - 9) )
    else None

type decoded = Value of Measures.t | Corrupt | Stale

(* Decode one on-disk entry.  [Stale] = an intact header from an older
   format version (a plain miss: the store overwrites it); [Corrupt] = an
   entry claiming the current format that fails verification or parsing
   (quarantined, counted, re-solved). *)
let decode_entry text =
  match String.index_opt text '\n' with
  | None -> Corrupt
  | Some i ->
    let header = String.sub text 0 i in
    if not (String.equal header (Printf.sprintf "lattol-cache %d" format_version))
    then
      if String.starts_with ~prefix:"lattol-cache " header then Stale
      else Corrupt
    else begin
      match checksum_split text with
      | None -> Corrupt
      | Some (body, hex) ->
        if not (String.equal (Digest.to_hex (Digest.string body)) hex) then
          Corrupt
        else begin
          match
            String.split_on_char '\n' (String.trim body) |> List.tl
            |> table_of_pairs ' '
          with
          | None -> Corrupt
          | Some tbl -> (
            match measures_of_table tbl with
            | Some m -> Value m
            | None -> Corrupt)
        end
    end

(* ------------------------------------------------------------------ *)
(* Single-line measures codec (the checkpoint Journal's payload format;
   same exact hex floats, so a journaled measure round-trips
   bit-identically just like a cached one). *)

let encode_measures_line (m : Measures.t) =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, v) ->
      Printf.bprintf b "%s=" name;
      hfloat b v;
      Buffer.add_char b ';')
    (fields m);
  Printf.bprintf b "iterations=%d;converged=%b" m.Measures.iterations
    m.Measures.converged;
  Buffer.contents b

let decode_measures_line s =
  match table_of_pairs '=' (String.split_on_char ';' s) with
  | None -> None
  | Some tbl -> measures_of_table tbl

let path_of_key dir k = Filename.concat (Filename.concat dir (String.sub k 0 2)) k

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go dir

(* A corrupted entry is moved aside (never deleted: the bytes are
   evidence) so the key misses and re-solves; the fresh store then
   overwrites the now-vacant slot. *)
let quarantine dir k =
  let qdir = Filename.concat dir "quarantine" in
  mkdir_p qdir;
  try Sys.rename (path_of_key dir k) (Filename.concat qdir k)
  with Sys_error _ -> ()

let disk_find t k =
  match t.dir with
  | None -> None
  | Some dir -> (
    let path = path_of_key dir k in
    match In_channel.with_open_bin path In_channel.input_all with
    | text -> (
      match decode_entry text with
      | Value m -> Some m
      | Stale -> None
      | Corrupt ->
        quarantine dir k;
        note_corrupt t;
        None)
    | exception Sys_error _ -> None)

let disk_store t k m =
  match t.dir with
  | None -> false
  | Some dir -> (
    let path = path_of_key dir k in
    mkdir_p (Filename.dirname path);
    (* Write-then-rename so concurrent writers of the same key (two runs
       sharing a cache directory) never expose a torn entry. *)
    let tmp =
      Filename.temp_file ~temp_dir:(Filename.dirname path) "lattol" ".tmp"
    in
    match
      Out_channel.with_open_bin tmp (fun oc ->
          Out_channel.output_string oc (encode m));
      Sys.rename tmp path
    with
    | () -> true
    | exception Sys_error _ ->
      (try Sys.remove tmp with Sys_error _ -> ());
      false)

(* ------------------------------------------------------------------ *)

module Tc = Lattol_obs.Trace_ctx

let find_or_compute ?(trace = Tc.disabled) t ~key:k f =
  (* Trace spans (all cat "cache-wait"): "memo-hit" an in-run hit,
     "park" the time spent parked on another requester's in-flight solve
     of the same key, "disk-read" the store probe, "store" the
     write-back.  The recorder lock is a leaf lock, so recording while
     holding [t.lock] is ordering-safe. *)
  let rec claim () =
    match Hashtbl.find_opt t.memo k with
    | Some (Done m) ->
      t.memo_hits <- t.memo_hits + 1;
      Mutex.unlock t.lock;
      if Tc.enabled trace then
        Tc.record_interval ~cat:"cache-wait" ~name:"memo-hit"
          ~t0_ns:(Tc.now_ns ()) trace;
      `Hit m
    | Some Running ->
      if Tc.enabled trace then begin
        let t0 = Tc.now_ns () in
        let rec wait () =
          Condition.wait t.cond t.lock;
          match Hashtbl.find_opt t.memo k with
          | Some Running -> wait ()
          | _ -> ()
        in
        wait ();
        Tc.record_interval ~cat:"cache-wait" ~name:"park" ~t0_ns:t0 trace;
        claim ()
      end
      else begin
        Condition.wait t.cond t.lock;
        claim ()
      end
    | None ->
      Hashtbl.replace t.memo k Running;
      Mutex.unlock t.lock;
      `Claimed
  in
  Mutex.lock t.lock;
  match claim () with
  | `Hit m -> m
  | `Claimed -> (
    let finish update m =
      Mutex.lock t.lock;
      Hashtbl.replace t.memo k (Done m);
      update ();
      Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      m
    in
    let probe_t0 = if Tc.enabled trace then Tc.now_ns () else 0L in
    match disk_find t k with
    | Some m ->
      if Tc.enabled trace then
        Tc.record_interval ~cat:"cache-wait" ~name:"disk-read"
          ~meta:[ ("outcome", "hit") ]
          ~t0_ns:probe_t0 trace;
      finish (fun () -> t.disk_hits <- t.disk_hits + 1) m
    | None -> (
      if Tc.enabled trace && t.dir <> None then
        Tc.record_interval ~cat:"cache-wait" ~name:"disk-read"
          ~meta:[ ("outcome", "miss") ]
          ~t0_ns:probe_t0 trace;
      match f () with
      | m ->
        let store_t0 = if Tc.enabled trace then Tc.now_ns () else 0L in
        let stored = disk_store t k m in
        if Tc.enabled trace && stored then
          Tc.record_interval ~cat:"cache-wait" ~name:"store" ~t0_ns:store_t0
            trace;
        finish
          (fun () ->
            t.misses <- t.misses + 1;
            t.solves <- t.solves + 1;
            if stored then t.stores <- t.stores + 1)
          m
      | exception e ->
        (* Release the claim so parked requesters retry (and fail on
           their own terms) instead of waiting forever. *)
        Mutex.lock t.lock;
        Hashtbl.remove t.memo k;
        t.misses <- t.misses + 1;
        Condition.broadcast t.cond;
        Mutex.unlock t.lock;
        raise e))

(* ------------------------------------------------------------------ *)
(* Scrub: full verification pass over the on-disk store *)

type scrub_report = {
  scanned : int;
  intact : int;
  quarantined : int;
  stale : int;
}

let empty_scrub = { scanned = 0; intact = 0; quarantined = 0; stale = 0 }

let scrub t =
  match t.dir with
  | None -> empty_scrub
  | Some dir ->
    let dir_exists d =
      match Sys.is_directory d with
      | b -> b
      | exception Sys_error _ -> false
    in
    if not (dir_exists dir) then empty_scrub
    else begin
      let subdirs = Sys.readdir dir in
      Array.sort String.compare subdirs;
      Array.fold_left
        (fun acc sub ->
          let subdir = Filename.concat dir sub in
          if String.length sub = 2 && dir_exists subdir then begin
            let names = Sys.readdir subdir in
            Array.sort String.compare names;
            Array.fold_left
              (fun acc name ->
                if Filename.check_suffix name ".tmp" then acc
                else begin
                  let acc = { acc with scanned = acc.scanned + 1 } in
                  match
                    In_channel.with_open_bin
                      (Filename.concat subdir name)
                      In_channel.input_all
                  with
                  | text -> (
                    match decode_entry text with
                    | Value _ -> { acc with intact = acc.intact + 1 }
                    | Stale ->
                      (* An older format never gets served; dropping it
                         here reclaims the space a store would otherwise
                         only reuse on the same key. *)
                      (try Sys.remove (Filename.concat subdir name)
                       with Sys_error _ -> ());
                      { acc with stale = acc.stale + 1 }
                    | Corrupt ->
                      quarantine dir name;
                      note_corrupt t;
                      { acc with quarantined = acc.quarantined + 1 })
                  | exception Sys_error _ -> acc
                end)
              acc names
          end
          else acc)
        empty_scrub subdirs
    end

let pp_scrub ppf r =
  Format.fprintf ppf "%d entries scanned, %d intact, %d quarantined, %d stale"
    r.scanned r.intact r.quarantined r.stale
