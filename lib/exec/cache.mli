(** Content-addressed result cache for analytical solves.

    A solve is identified by a canonical hash of the full {!Params.t}
    record plus the resolved solver id ({!key}); the value is the
    {!Measures.t} it produced.  Two layers back the lookup:

    - an in-run memo shared by all of a {!Pool}'s workers, which also
      deduplicates concurrent requests — a key is computed once and every
      other requester blocks until it lands;
    - an optional on-disk store (one file per key, hex floats, written
      atomically via rename), so repeated experiment runs — a re-run of
      [mms figures], say — perform zero new solves.

    Keys use exact hexadecimal floats, so a cache entry is only ever
    reused for a bit-identical configuration — except that the two
    bit-level float pathologies are canonicalized first: [-0.0] keys the
    same solve as [0.0], and every nan (any sign or payload) the same
    solve as every other, since those parameterize identical models.  The
    encoding carries a format version: entries written by an older layout
    simply miss.

    The store is {e verified}: every entry ends with a checksum line over
    its preceding bytes.  A truncated or bit-flipped entry is never
    served — it is moved to a [quarantine/] subdirectory, counted in
    {!stats}[.corrupt], and transparently re-solved.  {!scrub} runs that
    verification over the whole store eagerly.  Opening a store also
    reclaims orphaned [*.tmp] files left by writers that died between
    create and rename ({!stats}[.tmp_reclaimed]). *)

open Lattol_core

type t

val create : ?dir:string -> unit -> t
(** [create ~dir ()] backs the cache with directory [dir] (created on
    first store); without [dir] the cache is in-memory only and still
    deduplicates within the run. *)

val directory : t -> string option

val key : solver_id:string -> Params.t -> string
(** Canonical content hash (hex) of the configuration under [solver_id]
    (use {!Mms.solver_label} of the {e resolved} solver, so an explicit
    ["symmetric"] and a defaulted one share entries). *)

val find_or_compute :
  ?trace:Lattol_obs.Trace_ctx.ctx ->
  t -> key:string -> (unit -> Measures.t) -> Measures.t
(** Memo hit, else disk hit, else run the thunk, store, and wake any
    concurrent requesters of the same key.  Safe to call from multiple
    domains.  If the thunk raises, the claim is released (parked
    requesters retry) and the exception propagates.

    With an enabled [trace] context, the lookup records "cache-wait"
    spans under it: [memo-hit], [park] (time parked on another
    requester's in-flight solve of the same key), [disk-read] (with a
    hit/miss outcome) and [store].  Disabled (the default) records
    nothing and reads no clock. *)

type stats = {
  memo_hits : int;  (** served by the in-run memo (shared configurations) *)
  disk_hits : int;  (** served by the on-disk store *)
  misses : int;     (** keys that had to be computed *)
  solves : int;     (** thunk executions — 0 on a fully warm re-run *)
  stores : int;     (** entries written to disk *)
  corrupt : int;
      (** entries that failed checksum/parse verification and were
          quarantined (lookups and {!scrub} both count here) — nonzero
          turns the exporter's [/healthz] degraded *)
  tmp_reclaimed : int;
      (** orphaned temp files swept on open (writers that died between
          create and rename) *)
}

val stats : t -> stats

val inflight : t -> int
(** Keys currently being computed (claimed but not yet landed).  Like
    {!stats}, safe to poll from any domain — the live-metrics exporter
    samples it on every scrape. *)

val pp_stats : Format.formatter -> stats -> unit
(** Historical format, extended with [", N corrupt"] /
    [", N tmp reclaimed"] only when those counters are nonzero. *)

type scrub_report = {
  scanned : int;  (** entries examined (temp files excluded) *)
  intact : int;  (** verified clean *)
  quarantined : int;  (** failed verification, moved to [quarantine/] *)
  stale : int;  (** intact but older-format entries, dropped *)
}

val scrub : t -> scrub_report
(** Verify every entry of the on-disk store (no-op without a directory).
    Corrupt entries are quarantined and counted in {!stats}[.corrupt]
    exactly as a lookup would; subsequent lookups of those keys re-solve
    and re-store.  Deterministic scan order. *)

val pp_scrub : Format.formatter -> scrub_report -> unit

val canonical : Lattol_core.Params.t -> string
(** The canonical parameter encoding behind {!key} (exact hex floats,
    [-0.0]/nan canonicalized) — exposed so run journals can fingerprint
    their configuration the same way cache keys do. *)

val encode_measures_line : Measures.t -> string
(** Single-line [name=value;...] encoding of a measure in exact hex
    floats — the {!Journal} payload codec.  Round-trips bit-identically
    through {!decode_measures_line}. *)

val decode_measures_line : string -> Measures.t option
