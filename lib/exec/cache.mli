(** Content-addressed result cache for analytical solves.

    A solve is identified by a canonical hash of the full {!Params.t}
    record plus the resolved solver id ({!key}); the value is the
    {!Measures.t} it produced.  Two layers back the lookup:

    - an in-run memo shared by all of a {!Pool}'s workers, which also
      deduplicates concurrent requests — a key is computed once and every
      other requester blocks until it lands;
    - an optional on-disk store (one file per key, hex floats, written
      atomically via rename), so repeated experiment runs — a re-run of
      [mms figures], say — perform zero new solves.

    Keys use exact hexadecimal floats, so a cache entry is only ever
    reused for a bit-identical configuration — except that the two
    bit-level float pathologies are canonicalized first: [-0.0] keys the
    same solve as [0.0], and every nan (any sign or payload) the same
    solve as every other, since those parameterize identical models.  The
    encoding carries a format version: entries written by an older layout
    simply miss. *)

open Lattol_core

type t

val create : ?dir:string -> unit -> t
(** [create ~dir ()] backs the cache with directory [dir] (created on
    first store); without [dir] the cache is in-memory only and still
    deduplicates within the run. *)

val directory : t -> string option

val key : solver_id:string -> Params.t -> string
(** Canonical content hash (hex) of the configuration under [solver_id]
    (use {!Mms.solver_label} of the {e resolved} solver, so an explicit
    ["symmetric"] and a defaulted one share entries). *)

val find_or_compute : t -> key:string -> (unit -> Measures.t) -> Measures.t
(** Memo hit, else disk hit, else run the thunk, store, and wake any
    concurrent requesters of the same key.  Safe to call from multiple
    domains.  If the thunk raises, the claim is released (parked
    requesters retry) and the exception propagates. *)

type stats = {
  memo_hits : int;  (** served by the in-run memo (shared configurations) *)
  disk_hits : int;  (** served by the on-disk store *)
  misses : int;     (** keys that had to be computed *)
  solves : int;     (** thunk executions — 0 on a fully warm re-run *)
  stores : int;     (** entries written to disk *)
}

val stats : t -> stats

val inflight : t -> int
(** Keys currently being computed (claimed but not yet landed).  Like
    {!stats}, safe to poll from any domain — the live-metrics exporter
    samples it on every scrape. *)

val pp_stats : Format.formatter -> stats -> unit
