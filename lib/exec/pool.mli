(** Fixed-size [Domain]-based work pool with deterministic result ordering
    and per-task fault containment.

    [map ~jobs f items] evaluates [f] on every element of [items] using up
    to [jobs] domains (the calling domain included) and returns the results
    in input order — the scheduling of the workers never leaks into the
    output.  Work is claimed from a shared chunked queue, so skewed task
    costs still balance.

    [f] runs concurrently with itself: it must not touch shared mutable
    state unless that state synchronizes itself (the {!Cache} does).  If
    any call raises a {e fatal} exception, remaining chunks are abandoned
    and the first exception is re-raised in the caller after all domains
    have joined — exactly the historical behavior, and still the default
    for every exception when no [retry]/[deadline]/[on_poison] is given.

    With a [retry] policy, failures its [classify] deems
    {!Lattol_robust.Retry.Transient} are re-attempted with exponential
    backoff and deterministic jitter; a [deadline] (seconds, per attempt)
    arms cooperative cancellation through {!ctx}; and [on_poison], when
    present, substitutes a result for a task whose transient failures
    outlast the policy instead of sinking the run. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()]: the pool size above which more
    jobs cannot help. *)

type monitor = {
  on_start : jobs:int -> items:int -> unit;
      (** once, before any work: effective pool size and item count *)
  on_worker : worker:int -> busy:bool -> unit;
      (** worker [worker] (0 = the caller) enters ([true]) / leaves
          ([false]) the work loop *)
  on_claim : remaining:int -> unit;
      (** a chunk was claimed; [remaining] items are still unclaimed *)
  on_item : unit -> unit;  (** one item finished *)
  on_task : worker:int -> busy:bool -> unit;
      (** worker [worker] starts ([true]) / finishes ([false]) executing
          one task — the busy edge inside the loop, from which per-worker
          busy/idle time accumulates (idle = in the loop, not in a task:
          queue starvation) *)
}
(** Observation hooks for live progress reporting.  Callbacks fire
    concurrently from every pool domain: they must be domain-safe, cheap,
    and must not raise.  They observe scheduling only — results and their
    order are unaffected (the byte-identity guarantee stands). *)

type ctx = {
  attempt : int;  (** 1-based attempt number for this item *)
  should_stop : unit -> bool;
      (** cooperative cancellation: [true] once this attempt's deadline
          has expired or a sibling task failed fatally.  Long-running
          tasks should poll it and raise
          {!Lattol_robust.Retry.Deadline_exceeded} (transient, so the
          retry/poison machinery takes over) *)
}

type poisoned = {
  index : int;  (** the input item's index *)
  attempts : int;  (** attempts consumed (= the policy's max) *)
  error : string;  (** [Printexc.to_string] of the last failure *)
}
(** Record handed to [on_poison] when a task exhausts its transient
    retries: the caller chooses the substitute result (an error row, a
    sentinel) and the rest of the map proceeds. *)

val map :
  ?chunk:int -> ?monitor:monitor -> ?retry:Lattol_robust.Retry.policy ->
  ?deadline:float -> ?on_poison:(poisoned -> 'b) -> jobs:int ->
  ('a -> 'b) -> 'a array -> 'b array
(** [chunk] overrides the queue's claim granularity (default: enough for
    roughly four slices per worker).  [jobs < 1] is rejected; [jobs = 1]
    runs in the calling domain with no queue at all (the [monitor] still
    sees a one-worker pool).  [deadline] is per attempt; without
    [on_poison], exhausted transient failures propagate like fatal
    ones. *)

val map_ctx :
  ?chunk:int -> ?monitor:monitor -> ?retry:Lattol_robust.Retry.policy ->
  ?deadline:float -> ?on_poison:(poisoned -> 'b) -> jobs:int ->
  (ctx -> 'a -> 'b) -> 'a array -> 'b array
(** {!map} with the task's {!ctx} exposed, for tasks that poll
    [should_stop] or vary behavior by [attempt]. *)

val map_list :
  ?chunk:int -> ?monitor:monitor -> ?retry:Lattol_robust.Retry.policy ->
  ?deadline:float -> ?on_poison:(poisoned -> 'b) -> jobs:int ->
  ('a -> 'b) -> 'a list -> 'b list
(** List variant of {!map}. *)
