(** Fixed-size [Domain]-based work pool with deterministic result ordering.

    [map ~jobs f items] evaluates [f] on every element of [items] using up
    to [jobs] domains (the calling domain included) and returns the results
    in input order — the scheduling of the workers never leaks into the
    output.  Work is claimed from a shared chunked queue, so skewed task
    costs still balance.

    [f] runs concurrently with itself: it must not touch shared mutable
    state unless that state synchronizes itself (the {!Cache} does).  If
    any call raises, remaining chunks are abandoned and the first exception
    is re-raised in the caller after all domains have joined. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()]: the pool size above which more
    jobs cannot help. *)

val map : ?chunk:int -> jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [chunk] overrides the queue's claim granularity (default: enough for
    roughly four slices per worker).  [jobs < 1] is rejected; [jobs = 1]
    runs in the calling domain with no queue at all. *)

val map_list : ?chunk:int -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List variant of {!map}. *)
