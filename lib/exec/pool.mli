(** Fixed-size [Domain]-based work pool with deterministic result ordering,
    batched task submission, per-worker scratch state, and per-task fault
    containment.

    [map ~jobs f items] evaluates [f] on every element of [items] using up
    to [jobs] domains (the calling domain included) and returns the results
    in input order — the scheduling of the workers never leaks into the
    output.  Work is claimed from a shared batched queue with guided chunk
    sizing (large claims early, single items at the tail), so one queue
    operation is amortized over many tasks and skewed task costs still
    balance.

    The effective pool size is additionally capped at
    {!available_cores}[ ()]: spawning more domains than cores cannot speed
    up CPU-bound work and measurably slows it down (every minor GC is a
    stop-the-world synchronization across all domains, and a descheduled
    sibling turns each one into an OS scheduling round-trip).  Tasks that
    {e park} rather than compute — sleeps, I/O waits — genuinely overlap
    on any core count; pass [~oversubscribe:true] for those.

    [f] runs concurrently with itself: it must not touch shared mutable
    state unless that state synchronizes itself (the {!Cache} does).  If
    any call raises a {e fatal} exception, remaining chunks are abandoned
    and the first exception is re-raised in the caller after all domains
    have joined — exactly the historical behavior, and still the default
    for every exception when no [retry]/[deadline]/[on_poison] is given.

    With a [retry] policy, failures its [classify] deems
    {!Lattol_robust.Retry.Transient} are re-attempted with exponential
    backoff and deterministic jitter; a [deadline] (seconds, per attempt)
    arms cooperative cancellation through {!ctx}; and [on_poison], when
    present, substitutes a result for a task whose transient failures
    outlast the policy instead of sinking the run. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()]: the pool size above which more
    jobs cannot help CPU-bound work. *)

val effective_jobs : ?oversubscribe:bool -> jobs:int -> items:int -> unit -> int
(** The pool size a map would actually use:
    [min jobs items] capped at {!available_cores} unless [oversubscribe].
    Raises [Invalid_argument] when [jobs < 1]. *)

type monitor = {
  on_start : jobs:int -> items:int -> unit;
      (** once, before any work: effective pool size and item count *)
  on_worker : worker:int -> busy:bool -> unit;
      (** worker [worker] (0 = the caller) enters ([true]) / leaves
          ([false]) the work loop *)
  on_claim : remaining:int -> unit;
      (** a chunk was claimed; [remaining] items are still unclaimed *)
  on_item : unit -> unit;  (** one item finished *)
  on_task : worker:int -> busy:bool -> unit;
      (** worker [worker] starts ([true]) / finishes ([false]) executing
          one task — the busy edge inside the loop, from which per-worker
          busy/idle time accumulates (idle = in the loop, not in a task:
          queue starvation) *)
}
(** Observation hooks for live progress reporting.  Callbacks fire
    concurrently from every pool domain: they must be domain-safe, cheap,
    and must not raise.  They observe scheduling only — results and their
    order are unaffected (the byte-identity guarantee stands). *)

type ctx = {
  attempt : int;  (** 1-based attempt number for this item *)
  should_stop : unit -> bool;
      (** cooperative cancellation: [true] once this attempt's deadline
          has expired or a sibling task failed fatally.  Long-running
          tasks should poll it and raise
          {!Lattol_robust.Retry.Deadline_exceeded} (transient, so the
          retry/poison machinery takes over) *)
  trace : Lattol_obs.Trace_ctx.ctx;
      (** the submitting context for this item (from the map's [trace]
          lookup), under which the task records its own spans;
          {!Lattol_obs.Trace_ctx.disabled} when the map is untraced *)
}

type poisoned = {
  index : int;  (** the input item's index *)
  attempts : int;  (** attempts consumed (= the policy's max) *)
  error : string;  (** [Printexc.to_string] of the last failure *)
}
(** Record handed to [on_poison] when a task exhausts its transient
    retries: the caller chooses the substitute result (an error row, a
    sentinel) and the rest of the map proceeds. *)

val map :
  ?chunk:int -> ?oversubscribe:bool -> ?monitor:monitor ->
  ?retry:Lattol_robust.Retry.policy -> ?deadline:float ->
  ?on_poison:(poisoned -> 'b) -> jobs:int -> ('a -> 'b) -> 'a array ->
  'b array
(** [chunk > 0] forces a fixed claim granularity; otherwise claims are
    guided (roughly [remaining / (2 * workers)] each, down to single
    items at the tail).  [oversubscribe] lifts the {!available_cores}
    cap — only useful for tasks that park rather than compute.
    [jobs < 1] is rejected; an effective pool of 1 runs in the calling
    domain with no queue at all (the [monitor] still sees a one-worker
    pool).  [deadline] is per attempt; without [on_poison], exhausted
    transient failures propagate like fatal ones. *)

val map_ctx :
  ?chunk:int -> ?oversubscribe:bool -> ?monitor:monitor ->
  ?retry:Lattol_robust.Retry.policy -> ?deadline:float ->
  ?on_poison:(poisoned -> 'b) -> ?trace:(int -> Lattol_obs.Trace_ctx.ctx) ->
  jobs:int -> (ctx -> 'a -> 'b) -> 'a array -> 'b array
(** {!map} with the task's {!ctx} exposed, for tasks that poll
    [should_stop], vary behavior by [attempt], or record trace spans.

    [trace item_index] supplies the submitting causal context for each
    item (typically the item's open point span).  A traced map records,
    per item, a ["queue-wait"] span — submission to first execution —
    and, per claimed chunk, a ["chunk-claim"] span hung off the first
    claimed item.  Without [trace] the pool reads no clock at all, so
    the untraced path stays byte-identical {e and} cost-identical. *)

val map_local :
  ?chunk:int -> ?oversubscribe:bool -> ?monitor:monitor ->
  ?retry:Lattol_robust.Retry.policy -> ?deadline:float ->
  ?on_poison:(poisoned -> 'b) -> ?trace:(int -> Lattol_obs.Trace_ctx.ctx) ->
  jobs:int -> local:(int -> 'l) ->
  ?flush:('l -> unit) -> ('l -> ctx -> 'a -> 'b) -> 'a array ->
  'b array * 'l list
(** {!map_ctx} with per-worker scratch state.  Each worker calls
    [local w] exactly once, in its own domain, before claiming any work
    (so the state lives in that domain's minor heap); every task on that
    worker receives the same ['l].  [flush] runs at the end of every
    successfully completed claimed chunk (and once after the serial
    path) — the batching point for worker-side side effects such as
    checkpoint appends; a raising [flush] is a pool failure.  Returns
    the locals in worker order (index 0 = the calling domain), so the
    caller can merge per-worker accumulators deterministically.

    Determinism caveat: results must not depend on ['l] contents that
    vary with scheduling — locals are for scratch buffers, batching and
    statistics, not for data flow between tasks. *)

val map_list :
  ?chunk:int -> ?oversubscribe:bool -> ?monitor:monitor ->
  ?retry:Lattol_robust.Retry.policy -> ?deadline:float ->
  ?on_poison:(poisoned -> 'b) -> jobs:int -> ('a -> 'b) -> 'a list ->
  'b list
(** List variant of {!map}. *)
