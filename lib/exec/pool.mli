(** Fixed-size [Domain]-based work pool with deterministic result ordering.

    [map ~jobs f items] evaluates [f] on every element of [items] using up
    to [jobs] domains (the calling domain included) and returns the results
    in input order — the scheduling of the workers never leaks into the
    output.  Work is claimed from a shared chunked queue, so skewed task
    costs still balance.

    [f] runs concurrently with itself: it must not touch shared mutable
    state unless that state synchronizes itself (the {!Cache} does).  If
    any call raises, remaining chunks are abandoned and the first exception
    is re-raised in the caller after all domains have joined. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()]: the pool size above which more
    jobs cannot help. *)

type monitor = {
  on_start : jobs:int -> items:int -> unit;
      (** once, before any work: effective pool size and item count *)
  on_worker : worker:int -> busy:bool -> unit;
      (** worker [worker] (0 = the caller) enters ([true]) / leaves
          ([false]) the work loop *)
  on_claim : remaining:int -> unit;
      (** a chunk was claimed; [remaining] items are still unclaimed *)
  on_item : unit -> unit;  (** one item finished *)
}
(** Observation hooks for live progress reporting.  Callbacks fire
    concurrently from every pool domain: they must be domain-safe, cheap,
    and must not raise.  They observe scheduling only — results and their
    order are unaffected (the byte-identity guarantee stands). *)

val map :
  ?chunk:int -> ?monitor:monitor -> jobs:int -> ('a -> 'b) -> 'a array ->
  'b array
(** [chunk] overrides the queue's claim granularity (default: enough for
    roughly four slices per worker).  [jobs < 1] is rejected; [jobs = 1]
    runs in the calling domain with no queue at all (the [monitor] still
    sees a one-worker pool). *)

val map_list :
  ?chunk:int -> ?monitor:monitor -> jobs:int -> ('a -> 'b) -> 'a list ->
  'b list
(** List variant of {!map}. *)
