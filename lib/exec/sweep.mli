(** Deterministic (optionally parallel) parameter sweeps.

    A sweep is a cartesian grid of one or more {!axis} values applied to a
    base {!Params.t}.  Every grid point is solved exactly once per distinct
    configuration: the real solve and the two ideal-machine solves behind
    the tolerance indices all go through one shared {!Cache}, so points
    that agree on an ideal configuration (every [p_remote] point shares the
    same zero-remote ideal, for instance) reuse a single solution instead
    of re-solving it per point.

    Evaluation order is input order regardless of [jobs] — the row list is
    byte-for-byte stable under parallelism (see {!Pool}). *)

open Lattol_core
open Lattol_queueing

type param = P_remote | N_t | Runlength | K | P_sw | L_mem | S_switch

val all_params : param list

val param_name : param -> string
(** CLI / CSV spelling: ["p_remote"], ["n_t"], ["runlength"], ["k"],
    ["p_sw"], ["l_mem"], ["s_switch"]. *)

val param_of_string : string -> param option

val apply : Params.t -> param -> float -> Params.t
(** Substitute one swept value into a parameter record.  Integer
    parameters ([N_t], [K]) round to nearest; [P_sw] installs a
    {!Lattol_topology.Access.Geometric} pattern. *)

val linspace : lo:float -> hi:float -> steps:int -> float list
(** [steps >= 2] evenly spaced values, endpoints included, computed with
    the same expression the CLI always used so sweep output stays
    byte-identical. *)

type axis = { param : param; values : float list }

type solved = {
  measures : Measures.t;
  tol_network : Tolerance.report;
  tol_memory : Tolerance.report;
}

type row = {
  assigns : (param * float) list;  (** one value per axis, in axis order *)
  result : (solved, string) result;  (** [Error] = validation message *)
}

val label : (param * float) list -> string
(** ["n_t=4"] / ["p_remote=0.2,n_t=4"] — the solver-trace attempt label. *)

val points : axis list -> (param * float) list list
(** Row-major cartesian product (first axis slowest), exposed for callers
    that need the grid shape without solving it. *)

val journal_meta :
  ?solver:Mms.solver ->
  ?ideal_method:Tolerance.ideal_method ->
  base:Params.t ->
  axis list ->
  string
(** Digest fingerprinting everything that determines the grid's results:
    solver, ideal method, canonical base parameters, and every axis value
    in exact hex floats.  {!run} only replays journal records whose file
    was opened ({!Journal.resume}) under the same meta, so a journal can
    never leak rows into a differently-configured run. *)

val encode_row : row -> string
(** Journal payload for one row: ["ok <real>|<ideal_net>|<ideal_mem>"]
    (three {!Cache.encode_measures_line} encodings — the tolerance reports
    are recomputed from them on restore, bit-identically) or
    ["err <escaped message>"] for a validation/poisoned row. *)

val decode_row :
  ideal_method:Tolerance.ideal_method ->
  (param * float) list ->
  string ->
  row option
(** Inverse of {!encode_row} for the given grid point; [None] on any
    malformed payload (the point is then simply recomputed). *)

val run :
  ?solver:Mms.solver ->
  ?cache:Cache.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?oversubscribe:bool ->
  ?ideal_method:Tolerance.ideal_method ->
  ?trace:Lattol_obs.Solver_trace.t ->
  ?causal:Lattol_obs.Trace_ctx.ctx ->
  ?on_sweep:(iteration:int -> residual:float -> Amva.progress) ->
  ?monitor:Pool.monitor ->
  ?journal:Journal.t ->
  ?journal_prefix:string ->
  ?retry:Lattol_robust.Retry.policy ->
  ?deadline:float ->
  ?chaos:Lattol_robust.Chaos.plan ->
  base:Params.t ->
  axis list ->
  row list
(** Solve the grid.  [ideal_method] shapes the network-tolerance ideal
    (default {!Tolerance.Zero_remote}); the memory ideal is always
    {!Tolerance.Zero_delay}.  [chunk]/[oversubscribe] tune the pool's
    scheduling (see {!Pool.map_ctx}) without affecting results.  [trace]
    records one attempt per valid grid point (labelled with {!label}) at
    any [jobs]: each point records into a private per-point buffer and the
    buffers are {!Lattol_obs.Solver_trace.absorb}ed in point order after
    the pool joins, so the recording is byte-identical to a sequential
    run's.  Traced real solves bypass the cache memo (a hit would record
    no attempt, and hits depend on scheduling when configurations
    collide), so the recording is one attempt per valid point whatever
    the cache holds; journal-restored points skip evaluation entirely and
    record nothing.

    [causal] is the causal-tracing context (an enabled
    {!Lattol_obs.Trace_ctx} context, typically the recorder's root): each
    still-missing point opens a ["point"] span at submission — so its
    wall time includes queue wait — under which the pool records
    queue/claim spans, every solve (real and both ideals) records a
    ["solve"] span with residual-decade phase children, the cache records
    its wait spans, and the journal append its ["journal"] span.  The
    default, {!Lattol_obs.Trace_ctx.disabled}, records nothing and reads
    no clock; either way the returned rows and every byte of downstream
    output are identical.

    [on_sweep] observes every AMVA iteration of every solve (real
    and ideal) that actually runs; cache hits invoke neither.  [monitor]
    observes pool scheduling (one {!Pool.monitor} item per grid point)
    without affecting results.

    [journal] checkpoints every completed row (append + fsync before the
    row is reported) and skips points already present when the journal was
    resumed, so a killed sweep re-run with the same journal produces
    byte-identical rows while re-solving only the missing points.
    [journal_prefix] namespaces the record ids (multi-figure journals).
    [retry]/[deadline] arm per-task fault containment (see {!Pool.map_ctx});
    when either is set, a task that exhausts its attempts becomes an
    [Error "gave up after N attempts: ..."] row instead of sinking the run.
    [chaos] injects deterministic faults for the chaos harness (default
    {!Lattol_robust.Chaos.none}).  Raises [Invalid_argument] on
    [jobs < 1], an empty axis list, or an empty axis. *)
