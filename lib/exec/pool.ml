(* Fixed-size Domain-based work pool.

   Work is distributed through a chunked queue (an atomic cursor over the
   input array, claimed [chunk] indices at a time) and every result is
   written back to its input's slot, so the output order never depends on
   the scheduling of the domains.  That determinism is the point: callers
   format results after the map, and `--jobs 8` must be byte-identical to
   `--jobs 1`.

   Fault containment is per task: a [retry] policy re-runs transient
   failures with backoff (deterministic solver errors stay fatal and
   propagate first-exception, as before), a [deadline] arms cooperative
   cancellation that long tasks poll through their [ctx], and [on_poison]
   substitutes a caller-chosen result for a task whose transient failures
   outlast the policy — so one pathological item cannot wedge a domain or
   sink the whole run. *)

module Retry = Lattol_robust.Retry

let available_cores () = Domain.recommended_domain_count ()

type monitor = {
  on_start : jobs:int -> items:int -> unit;
  on_worker : worker:int -> busy:bool -> unit;
  on_claim : remaining:int -> unit;
  on_item : unit -> unit;
  on_task : worker:int -> busy:bool -> unit;
}

(* Runtime-events instrumentation: every worker writes task/worker span
   marks and queue depth into its own domain's ring buffer.  These are
   no-ops unless a profiling session (Lattol_obs.Runtime_profile) has
   started ring collection, so the pool stays clock-free and
   byte-identical when not being profiled. *)
module Rp = Lattol_obs.Runtime_profile

type ctx = { attempt : int; should_stop : unit -> bool }

type poisoned = { index : int; attempts : int; error : string }

(* One item, through the full attempt loop.  [failure] is the pool's
   first-exception slot: a set slot makes [should_stop] true (cooperative
   cancellation of siblings) and suppresses further retries. *)
let run_one ?retry ?deadline ?on_poison ~failure f i x =
  let max_attempts =
    match retry with Some p -> p.Retry.max_attempts | None -> 1
  in
  let classify =
    match retry with
    | Some p -> p.Retry.classify
    | None -> Retry.default_classify
  in
  let rec go attempt =
    let dl = Option.map (fun timeout -> Retry.start ~timeout) deadline in
    let should_stop () =
      Atomic.get failure <> None
      || (match dl with Some d -> Retry.expired d | None -> false)
    in
    match f { attempt; should_stop } x with
    | y -> y
    | exception e -> (
      match classify e with
      | Retry.Fatal -> raise e
      | Retry.Transient ->
        if attempt < max_attempts && Atomic.get failure = None then begin
          (match retry with
          | Some p -> Retry.sleep (Retry.delay p ~attempt ~salt:i)
          | None -> ());
          go (attempt + 1)
        end
        else begin
          match on_poison with
          | Some g ->
            g { index = i; attempts = attempt; error = Printexc.to_string e }
          | None -> raise e
        end)
  in
  go 1

let map_ctx ?(chunk = 0) ?monitor ?retry ?deadline ?on_poison ~jobs f items =
  let n = Array.length items in
  if jobs < 1 then invalid_arg "Pool.map: jobs must be at least 1";
  let failure = Atomic.make None in
  let run i x = run_one ?retry ?deadline ?on_poison ~failure f i x in
  let run_traced w m i x =
    (match m with Some m -> m.on_task ~worker:w ~busy:true | None -> ());
    Rp.task_begin ();
    let fin () =
      Rp.task_end ();
      match m with Some m -> m.on_task ~worker:w ~busy:false | None -> ()
    in
    match run i x with
    | y ->
      fin ();
      y
    | exception e ->
      fin ();
      raise e
  in
  if n <= 1 || jobs = 1 then begin
    Rp.worker_begin ();
    Fun.protect ~finally:Rp.worker_end (fun () ->
        match monitor with
        | None -> Array.mapi (run_traced 0 None) items
        | Some m ->
          m.on_start ~jobs:1 ~items:n;
          m.on_worker ~worker:0 ~busy:true;
          let results =
            Array.mapi
              (fun i x ->
                m.on_claim ~remaining:(n - i - 1);
                Rp.queue_depth (n - i - 1);
                let y = run_traced 0 monitor i x in
                m.on_item ();
                y)
              items
          in
          m.on_worker ~worker:0 ~busy:false;
          results)
  end
  else begin
    let jobs = min jobs n in
    (* Small chunks keep the pool balanced when task costs are skewed (a
       sweep's saturated points iterate far longer than its idle ones);
       [jobs * 4] slices per worker is the usual compromise. *)
    let chunk = if chunk > 0 then chunk else max 1 (n / (jobs * 4)) in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (match monitor with Some m -> m.on_start ~jobs ~items:n | None -> ());
    let worker w =
      Rp.worker_begin ();
      (match monitor with
      | Some m -> m.on_worker ~worker:w ~busy:true
      | None -> ());
      let rec loop () =
        let lo = Atomic.fetch_and_add next chunk in
        if lo < n && Atomic.get failure = None then begin
          let remaining = max 0 (n - lo - chunk) in
          (match monitor with
          | Some m -> m.on_claim ~remaining
          | None -> ());
          Rp.queue_depth remaining;
          (try
             for i = lo to min n (lo + chunk) - 1 do
               results.(i) <- Some (run_traced w monitor i items.(i));
               match monitor with Some m -> m.on_item () | None -> ()
             done
           with e ->
             (* Remember the first failure; later ones lose the race. *)
             ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ();
      (match monitor with
      | Some m -> m.on_worker ~worker:w ~busy:false
      | None -> ());
      Rp.worker_end ()
    in
    let domains =
      List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    worker 0;
    List.iter Domain.join domains;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map
      (function Some v -> v | None -> failwith "Pool.map: missing result")
      results
  end

let map ?chunk ?monitor ?retry ?deadline ?on_poison ~jobs f items =
  map_ctx ?chunk ?monitor ?retry ?deadline ?on_poison ~jobs
    (fun _ctx x -> f x)
    items

let map_list ?chunk ?monitor ?retry ?deadline ?on_poison ~jobs f items =
  Array.to_list
    (map ?chunk ?monitor ?retry ?deadline ?on_poison ~jobs f
       (Array.of_list items))
