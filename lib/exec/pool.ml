(* Fixed-size Domain-based work pool.

   Work is distributed through a batched queue (an atomic cursor over the
   input array, claimed a chunk of indices at a time) and every result is
   written back to its input's slot, so the output order never depends on
   the scheduling of the domains.  That determinism is the point: callers
   format results after the map, and `--jobs 8` must be byte-identical to
   `--jobs 1`.

   Pool sizing respects the machine: requesting more domains than cores
   only adds stop-the-world GC synchronization (on a 1-core container,
   two domains time-slice the core and every minor collection waits for
   the descheduled sibling to reach a safepoint — measured at 2x SLOWER
   than serial on the replication suite).  So the effective pool size is
   capped at [available_cores ()] unless the caller opts into
   [oversubscribe] — which is the right call only for tasks that park
   (sleep, I/O) rather than burn CPU, where extra domains genuinely
   overlap latency even on one core.

   Claim sizing is guided when the caller does not force a [chunk]: each
   claim takes roughly half the remaining work divided by the worker
   count, so early claims are large (one queue operation amortized over
   many tasks) and the tail degrades to single items (skewed grids still
   balance).

   Fault containment is per task: a [retry] policy re-runs transient
   failures with backoff (deterministic solver errors stay fatal and
   propagate first-exception, as before), a [deadline] arms cooperative
   cancellation that long tasks poll through their [ctx], and [on_poison]
   substitutes a caller-chosen result for a task whose transient failures
   outlast the policy — so one pathological item cannot wedge a domain or
   sink the whole run. *)

module Retry = Lattol_robust.Retry

let available_cores () = Domain.recommended_domain_count ()

let effective_jobs ?(oversubscribe = false) ~jobs ~items () =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be at least 1";
  let jobs = min jobs (max 1 items) in
  if oversubscribe then jobs else min jobs (max 1 (available_cores ()))

type monitor = {
  on_start : jobs:int -> items:int -> unit;
  on_worker : worker:int -> busy:bool -> unit;
  on_claim : remaining:int -> unit;
  on_item : unit -> unit;
  on_task : worker:int -> busy:bool -> unit;
}

(* Runtime-events instrumentation: every worker writes task/worker span
   marks and queue depth into its own domain's ring buffer.  These are
   no-ops unless a profiling session (Lattol_obs.Runtime_profile) has
   started ring collection, so the pool stays clock-free and
   byte-identical when not being profiled. *)
module Rp = Lattol_obs.Runtime_profile

(* Causal tracing: when the caller supplies [trace] (a per-item context
   lookup), each task records its queue wait — submission to first
   execution — and each claimed chunk records one claim span.  With no
   [trace] the pool never reads a clock, keeping the untraced path
   byte-identical AND cost-identical. *)
module Tc = Lattol_obs.Trace_ctx

type ctx = {
  attempt : int;
  should_stop : unit -> bool;
  trace : Tc.ctx;
}

type poisoned = { index : int; attempts : int; error : string }

(* One item, through the full attempt loop.  [failure] is the pool's
   first-exception slot: a set slot makes [should_stop] true (cooperative
   cancellation of siblings) and suppresses further retries. *)
let run_one ?retry ?deadline ?on_poison ~failure ~trace f i x =
  let max_attempts =
    match retry with Some p -> p.Retry.max_attempts | None -> 1
  in
  let classify =
    match retry with
    | Some p -> p.Retry.classify
    | None -> Retry.default_classify
  in
  let rec go attempt =
    let dl = Option.map (fun timeout -> Retry.start ~timeout) deadline in
    let should_stop () =
      Atomic.get failure <> None
      || (match dl with Some d -> Retry.expired d | None -> false)
    in
    match f { attempt; should_stop; trace } x with
    | y -> y
    | exception e -> (
      match classify e with
      | Retry.Fatal -> raise e
      | Retry.Transient ->
        if attempt < max_attempts && Atomic.get failure = None then begin
          (match retry with
          | Some p -> Retry.sleep (Retry.delay p ~attempt ~salt:i)
          | None -> ());
          go (attempt + 1)
        end
        else begin
          match on_poison with
          | Some g ->
            g { index = i; attempts = attempt; error = Printexc.to_string e }
          | None -> raise e
        end)
  in
  go 1

(* Claim the next batch of indices: [lo, hi).  A forced chunk uses one
   fetch-and-add; guided sizing needs a CAS loop because the claim size
   depends on how much is left.

   hot-alloc is allowed here: the returned pair (and the guided-path
   loop closure) is one allocation per claimed CHUNK, amortized over
   every task in the chunk — not per task. *)
let[@lattol.allow "hot-alloc"] claim ~next ~n ~workers ~chunk =
  match chunk with
  | Some c ->
    let lo = Atomic.fetch_and_add next c in
    (lo, min n (lo + c))
  | None ->
    let rec go () =
      let lo = Atomic.get next in
      if lo >= n then (n, n)
      else begin
        let size = max 1 ((n - lo + (2 * workers) - 1) / (2 * workers)) in
        let hi = min n (lo + size) in
        if Atomic.compare_and_set next lo hi then (lo, hi) else go ()
      end
    in
    go ()

let no_flush _ = ()

let map_local ?chunk ?oversubscribe ?monitor ?retry ?deadline ?on_poison
    ?trace ~jobs ~local ?(flush = no_flush) f items =
  let n = Array.length items in
  let jobs = effective_jobs ?oversubscribe ~jobs ~items:n () in
  let chunk = match chunk with Some c when c > 0 -> Some c | _ -> None in
  let failure = Atomic.make None in
  let trace_ctx i =
    match trace with Some lookup -> lookup i | None -> Tc.disabled
  in
  let run l i x =
    let tctx = trace_ctx i in
    if Tc.enabled tctx then
      (* From the submitting context's span open (the sweep opens point
         spans before handing the batch to the pool) to this first
         execution: the time the item sat unclaimed in the queue. *)
      Tc.record_since ~cat:"queue" ~name:"queue-wait" tctx;
    run_one ?retry ?deadline ?on_poison ~failure ~trace:tctx (f l) i x
  in
  let run_traced w m l i x =
    (match m with Some m -> m.on_task ~worker:w ~busy:true | None -> ());
    Rp.task_begin ();
    let fin () =
      Rp.task_end ();
      match m with Some m -> m.on_task ~worker:w ~busy:false | None -> ()
    in
    match run l i x with
    | y ->
      fin ();
      y
    | exception e ->
      fin ();
      raise e
  in
  if n <= 1 || jobs = 1 then begin
    Rp.worker_begin ();
    Fun.protect ~finally:Rp.worker_end (fun () ->
        let l = local 0 in
        let results =
          match monitor with
          | None -> Array.mapi (fun i x -> run_traced 0 None l i x) items
          | Some m ->
            m.on_start ~jobs:1 ~items:n;
            m.on_worker ~worker:0 ~busy:true;
            let results =
              Array.mapi
                (fun i x ->
                  m.on_claim ~remaining:(n - i - 1);
                  Rp.queue_depth (n - i - 1);
                  let y = run_traced 0 monitor l i x in
                  m.on_item ();
                  y)
                items
            in
            m.on_worker ~worker:0 ~busy:false;
            results
        in
        flush l;
        (results, [ l ]))
  end
  else begin
    let results = Array.make n None in
    let locals = Array.make jobs None in
    let next = Atomic.make 0 in
    (match monitor with Some m -> m.on_start ~jobs ~items:n | None -> ());
    (* Hot: every task in every parallel map runs through this claim
       loop, so per-iteration allocation here is multiplied by the whole
       workload. *)
    let[@lattol.hot] worker w =
      Rp.worker_begin ();
      (* The local is created in the worker's own domain, so its state
         lives in that domain's minor heap. *)
      let l = local w in
      locals.(w) <- Some l;
      (match monitor with
      | Some m -> m.on_worker ~worker:w ~busy:true
      | None -> ());
      let rec loop () =
        let lo, hi =
          match trace with
          | None -> claim ~next ~n ~workers:jobs ~chunk
          | Some lookup ->
            (* Traced path only: time the claim itself and hang the span
               off the first claimed item, so queue contention shows up
               in that point's tree. *)
            let t0 = Tc.now_ns () in
            let ((lo, hi) as c) = claim ~next ~n ~workers:jobs ~chunk in
            if lo < n then
              Tc.record_interval ~cat:"queue" ~name:"chunk-claim"
                ~meta:
                  [ ("lo", string_of_int lo); ("hi", string_of_int hi) ]
                ~t0_ns:t0 (lookup lo);
            c
        in
        if lo < n && Atomic.get failure = None then begin
          let remaining = max 0 (n - hi) in
          (match monitor with
          | Some m -> m.on_claim ~remaining
          | None -> ());
          Rp.queue_depth remaining;
          (try
             for i = lo to hi - 1 do
               results.(i) <- Some (run_traced w monitor l i items.(i));
               match monitor with Some m -> m.on_item () | None -> ()
             done;
             (* One flush per claimed chunk: worker-side batching (e.g. a
                journal append) is amortized over the whole chunk. *)
             flush l
           with e ->
             (* Remember the first failure; later ones lose the race. *)
             ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ();
      (match monitor with
      | Some m -> m.on_worker ~worker:w ~busy:false
      | None -> ());
      Rp.worker_end ()
    in
    let domains =
      List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    worker 0;
    List.iter Domain.join domains;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    let results =
      Array.map
        (function Some v -> v | None -> failwith "Pool.map: missing result")
        results
    in
    let locals =
      Array.to_list
        (Array.map
           (function
             | Some l -> l
             | None -> failwith "Pool.map: missing worker local")
           locals)
    in
    (results, locals)
  end

let map_ctx ?chunk ?oversubscribe ?monitor ?retry ?deadline ?on_poison ?trace
    ~jobs f items =
  fst
    (map_local ?chunk ?oversubscribe ?monitor ?retry ?deadline ?on_poison
       ?trace ~jobs
       ~local:(fun _ -> ())
       (fun () ctx x -> f ctx x)
       items)

let map ?chunk ?oversubscribe ?monitor ?retry ?deadline ?on_poison ~jobs f
    items =
  map_ctx ?chunk ?oversubscribe ?monitor ?retry ?deadline ?on_poison ~jobs
    (fun _ctx x -> f x)
    items

let map_list ?chunk ?oversubscribe ?monitor ?retry ?deadline ?on_poison ~jobs f
    items =
  Array.to_list
    (map ?chunk ?oversubscribe ?monitor ?retry ?deadline ?on_poison ~jobs f
       (Array.of_list items))
