(* Fixed-size Domain-based work pool.

   Work is distributed through a chunked queue (an atomic cursor over the
   input array, claimed [chunk] indices at a time) and every result is
   written back to its input's slot, so the output order never depends on
   the scheduling of the domains.  That determinism is the point: callers
   format results after the map, and `--jobs 8` must be byte-identical to
   `--jobs 1`. *)

let available_cores () = Domain.recommended_domain_count ()

type monitor = {
  on_start : jobs:int -> items:int -> unit;
  on_worker : worker:int -> busy:bool -> unit;
  on_claim : remaining:int -> unit;
  on_item : unit -> unit;
}

let map ?(chunk = 0) ?monitor ~jobs f items =
  let n = Array.length items in
  if jobs < 1 then invalid_arg "Pool.map: jobs must be at least 1";
  if n <= 1 || jobs = 1 then begin
    match monitor with
    | None -> Array.map f items
    | Some m ->
      m.on_start ~jobs:1 ~items:n;
      m.on_worker ~worker:0 ~busy:true;
      let results =
        Array.mapi
          (fun i x ->
            m.on_claim ~remaining:(n - i - 1);
            let y = f x in
            m.on_item ();
            y)
          items
      in
      m.on_worker ~worker:0 ~busy:false;
      results
  end
  else begin
    let jobs = min jobs n in
    (* Small chunks keep the pool balanced when task costs are skewed (a
       sweep's saturated points iterate far longer than its idle ones);
       [jobs * 4] slices per worker is the usual compromise. *)
    let chunk = if chunk > 0 then chunk else max 1 (n / (jobs * 4)) in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    (match monitor with Some m -> m.on_start ~jobs ~items:n | None -> ());
    let worker w =
      (match monitor with
      | Some m -> m.on_worker ~worker:w ~busy:true
      | None -> ());
      let rec loop () =
        let lo = Atomic.fetch_and_add next chunk in
        if lo < n && Atomic.get failure = None then begin
          (match monitor with
          | Some m -> m.on_claim ~remaining:(max 0 (n - lo - chunk))
          | None -> ());
          (try
             for i = lo to min n (lo + chunk) - 1 do
               results.(i) <- Some (f items.(i));
               match monitor with Some m -> m.on_item () | None -> ()
             done
           with e ->
             (* Remember the first failure; later ones lose the race. *)
             ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ();
      match monitor with
      | Some m -> m.on_worker ~worker:w ~busy:false
      | None -> ()
    in
    let domains =
      List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    worker 0;
    List.iter Domain.join domains;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map
      (function Some v -> v | None -> failwith "Pool.map: missing result")
      results
  end

let map_list ?chunk ?monitor ~jobs f items =
  Array.to_list (map ?chunk ?monitor ~jobs f (Array.of_list items))
