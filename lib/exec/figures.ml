open Lattol_core

type figure = {
  name : string;
  title : string;
  base : Params.t;
  axes : Sweep.axis list;
}

(* The paper's 4x4 torus, geometric (p_sw = 0.5) access pattern. *)
let paper_base = Params.default

let axis param values = { Sweep.param; values }

let all ?(base = paper_base) () =
  let n_t = List.map float_of_int [ 1; 2; 3; 4; 5; 6; 8 ] in
  let p_remote = Sweep.linspace ~lo:0. ~hi:1. ~steps:11 in
  [
    {
      name = "fig04_grid";
      title = "U_p, S_obs, lambda_net and tolerance vs (n_t, p_remote), R = 1";
      base = { base with Params.runlength = 1. };
      axes = [ axis Sweep.N_t n_t; axis Sweep.P_remote p_remote ];
    };
    {
      name = "fig05_grid";
      title = "U_p, S_obs, lambda_net and tolerance vs (n_t, p_remote), R = 2";
      base = { base with Params.runlength = 2. };
      axes = [ axis Sweep.N_t n_t; axis Sweep.P_remote p_remote ];
    };
    {
      name = "fig06_tolerance";
      title = "network latency tolerance vs (p_remote, R, n_t)";
      base;
      axes =
        [
          axis Sweep.P_remote [ 0.2; 0.4 ];
          axis Sweep.Runlength [ 0.5; 1.; 2.; 4.; 8.; 16. ];
          axis Sweep.N_t (List.map float_of_int [ 1; 2; 4; 6; 8; 10 ]);
        ];
    };
    {
      name = "saturation";
      title = "lambda_net saturation vs p_remote, n_t = 10";
      base = { base with Params.n_t = 10 };
      axes = [ axis Sweep.P_remote (Sweep.linspace ~lo:0. ~hi:1. ~steps:21) ];
    };
  ]

let find ?base name =
  List.find_opt (fun f -> f.name = name) (all ?base ())

(* CSV: one column per swept parameter, then the measure columns the CLI's
   single-parameter sweep always printed. *)
let measure_columns =
  [ "u_p"; "lambda"; "lambda_net"; "s_obs"; "l_obs"; "tol_network"; "tol_memory" ]

let csv_of_rows figure rows =
  let b = Buffer.create 4096 in
  Printf.bprintf b "# %s\n" figure.title;
  Printf.bprintf b "%s\n"
    (String.concat ","
       (List.map (fun a -> Sweep.param_name a.Sweep.param) figure.axes
       @ measure_columns));
  let data_rows = ref 0 in
  List.iter
    (fun row ->
      match row.Sweep.result with
      | Error msg ->
        Printf.bprintf b "# skipped %s: %s\n" (Sweep.label row.Sweep.assigns)
          msg
      | Ok s ->
        incr data_rows;
        List.iter
          (fun (_, v) -> Printf.bprintf b "%g," v)
          row.Sweep.assigns;
        let m = s.Sweep.measures in
        Printf.bprintf b "%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n"
          m.Measures.u_p m.Measures.lambda m.Measures.lambda_net
          m.Measures.s_obs m.Measures.l_obs
          s.Sweep.tol_network.Tolerance.tol s.Sweep.tol_memory.Tolerance.tol)
    rows;
  (Buffer.contents b, !data_rows)

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go dir

type written = { figure : figure; path : string; rows : int }

let journal_meta ?solver figures =
  let b = Buffer.create 256 in
  Printf.bprintf b "figures/%d;" Journal.format_version;
  List.iter
    (fun f ->
      Printf.bprintf b "%s=%s;" f.name
        (Sweep.journal_meta ?solver ~base:f.base f.axes))
    figures;
  Digest.to_hex (Digest.string (Buffer.contents b))

let write ?solver ?cache ?jobs ?chunk ?oversubscribe ?causal ?monitor ?journal
    ?retry ?deadline ?chaos ~dir figures =
  mkdir_p dir;
  let cache = match cache with Some c -> c | None -> Cache.create () in
  List.map
    (fun figure ->
      let rows =
        Sweep.run ?solver ~cache ?jobs ?chunk ?oversubscribe ?causal ?monitor
          ?journal
          ~journal_prefix:(figure.name ^ "/") ?retry ?deadline ?chaos
          ~base:figure.base figure.axes
      in
      let csv, data_rows = csv_of_rows figure rows in
      let path = Filename.concat dir (figure.name ^ ".csv") in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc csv);
      { figure; path; rows = data_rows })
    figures
