open Lattol_core
open Lattol_queueing

type param = P_remote | N_t | Runlength | K | P_sw | L_mem | S_switch

let all_params = [ P_remote; N_t; Runlength; K; P_sw; L_mem; S_switch ]

let param_name = function
  | P_remote -> "p_remote"
  | N_t -> "n_t"
  | Runlength -> "runlength"
  | K -> "k"
  | P_sw -> "p_sw"
  | L_mem -> "l_mem"
  | S_switch -> "s_switch"

let param_of_string s =
  List.find_opt (fun p -> param_name p = s) all_params

let apply p param v =
  match param with
  | P_remote -> { p with Params.p_remote = v }
  | N_t -> { p with Params.n_t = int_of_float (Float.round v) }
  | Runlength -> { p with Params.runlength = v }
  | K -> { p with Params.k = int_of_float (Float.round v) }
  | P_sw -> { p with Params.pattern = Lattol_topology.Access.Geometric v }
  | L_mem -> { p with Params.l_mem = v }
  | S_switch -> { p with Params.s_switch = v }

let linspace ~lo ~hi ~steps =
  if steps < 2 then invalid_arg "Sweep.linspace: steps must be at least 2";
  List.init steps (fun i ->
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int (steps - 1)))

type axis = { param : param; values : float list }

type solved = {
  measures : Measures.t;
  tol_network : Tolerance.report;
  tol_memory : Tolerance.report;
}

type row = {
  assigns : (param * float) list;
  result : (solved, string) result;
}

let label assigns =
  String.concat ","
    (List.map
       (fun (param, v) -> Printf.sprintf "%s=%g" (param_name param) v)
       assigns)

(* Row-major cartesian product: the first axis varies slowest, exactly the
   nesting order of the equivalent hand-written loops. *)
let points axes =
  List.fold_right
    (fun axis tails ->
      List.concat_map
        (fun v -> List.map (fun tail -> (axis.param, v) :: tail) tails)
        axis.values)
    axes [ [] ]

let run ?solver ?cache ?(jobs = 1) ?(ideal_method = Tolerance.Zero_remote)
    ?trace ?on_sweep ?monitor ~base axes =
  if jobs < 1 then invalid_arg "Sweep.run: jobs must be at least 1";
  if axes = [] then invalid_arg "Sweep.run: at least one axis";
  List.iter
    (fun a -> if a.values = [] then invalid_arg "Sweep.run: empty axis")
    axes;
  (match trace with
  | Some _ when jobs > 1 ->
    (* The trace is one chronological recording; interleaving attempts
       from several domains would scramble it. *)
    invalid_arg "Sweep.run: solver tracing requires jobs = 1"
  | _ -> ());
  let cache = match cache with Some c -> c | None -> Cache.create () in
  (* [label] marks the real solve of a sweep point in the trace; ideal
     solves are untraced support work, as in the pre-engine CLI. *)
  let solve_point ?label params =
    let resolved =
      match solver with Some s -> s | None -> Mms.default_solver params
    in
    let compute () =
      match trace with
      | Some tel when label <> None && params.Params.n_t > 0 ->
        Lattol_obs.Solver_trace.start_attempt tel ?label
          ~budget:Amva.default_options.Amva.max_iterations
          ~solver:(Mms.solver_label resolved)
          ~damping:Amva.default_options.Amva.damping ();
        let hook ~iteration ~residual =
          Lattol_obs.Solver_trace.record tel ~iteration ~residual;
          match on_sweep with
          | None -> Amva.Continue
          | Some f -> f ~iteration ~residual
        in
        let solution =
          Mms.solve_network ~solver:resolved ~on_sweep:hook params
        in
        Lattol_obs.Solver_trace.finish_attempt tel
          ~converged:solution.Solution.converged
          ~iterations:solution.Solution.iterations;
        Mms.measures_of_solution params solution
      | _ -> Mms.solve ~solver:resolved ?on_sweep params
    in
    Cache.find_or_compute cache
      ~key:(Cache.key ~solver_id:(Mms.solver_label resolved) params)
      compute
  in
  let eval assigns =
    let p =
      List.fold_left (fun p (param, v) -> apply p param v) base assigns
    in
    match Params.validate p with
    | Error msg -> { assigns; result = Error msg }
    | Ok p ->
      let real = solve_point ~label:(label assigns) p in
      let ideal_net =
        solve_point
          (Tolerance.ideal_params Tolerance.Network_latency ideal_method p)
      in
      let ideal_mem =
        solve_point
          (Tolerance.ideal_params Tolerance.Memory_latency Tolerance.Zero_delay
             p)
      in
      {
        assigns;
        result =
          Ok
            {
              measures = real;
              tol_network =
                Tolerance.of_measures ~ideal_method Tolerance.Network_latency
                  ~real ~ideal:ideal_net;
              tol_memory =
                Tolerance.of_measures Tolerance.Memory_latency ~real
                  ~ideal:ideal_mem;
            };
      }
  in
  Pool.map_list ?monitor ~jobs eval (points axes)
