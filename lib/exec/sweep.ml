open Lattol_core
open Lattol_queueing

type param = P_remote | N_t | Runlength | K | P_sw | L_mem | S_switch

let all_params = [ P_remote; N_t; Runlength; K; P_sw; L_mem; S_switch ]

let param_name = function
  | P_remote -> "p_remote"
  | N_t -> "n_t"
  | Runlength -> "runlength"
  | K -> "k"
  | P_sw -> "p_sw"
  | L_mem -> "l_mem"
  | S_switch -> "s_switch"

let param_of_string s =
  List.find_opt (fun p -> param_name p = s) all_params

let apply p param v =
  match param with
  | P_remote -> { p with Params.p_remote = v }
  | N_t -> { p with Params.n_t = int_of_float (Float.round v) }
  | Runlength -> { p with Params.runlength = v }
  | K -> { p with Params.k = int_of_float (Float.round v) }
  | P_sw -> { p with Params.pattern = Lattol_topology.Access.Geometric v }
  | L_mem -> { p with Params.l_mem = v }
  | S_switch -> { p with Params.s_switch = v }

let linspace ~lo ~hi ~steps =
  if steps < 2 then invalid_arg "Sweep.linspace: steps must be at least 2";
  List.init steps (fun i ->
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int (steps - 1)))

type axis = { param : param; values : float list }

type solved = {
  measures : Measures.t;
  tol_network : Tolerance.report;
  tol_memory : Tolerance.report;
}

type row = {
  assigns : (param * float) list;
  result : (solved, string) result;
}

let label assigns =
  String.concat ","
    (List.map
       (fun (param, v) -> Printf.sprintf "%s=%g" (param_name param) v)
       assigns)

(* Row-major cartesian product: the first axis varies slowest, exactly the
   nesting order of the equivalent hand-written loops. *)
let points axes =
  List.fold_right
    (fun axis tails ->
      List.concat_map
        (fun v -> List.map (fun tail -> (axis.param, v) :: tail) tails)
        axis.values)
    axes [ [] ]

(* ------------------------------------------------------------------ *)
(* Journal codec

   A checkpointed point stores only its three raw measures (exact hex
   floats, one line) — the tolerance reports are pure functions of those
   measures, recomputed on restore by [Tolerance.of_measures], so a
   resumed row is bit-identical to a freshly solved one. *)

let reports ~ideal_method ~real ~ideal_net ~ideal_mem =
  {
    measures = real;
    tol_network =
      Tolerance.of_measures ~ideal_method Tolerance.Network_latency ~real
        ~ideal:ideal_net;
    tol_memory =
      Tolerance.of_measures Tolerance.Memory_latency ~real ~ideal:ideal_mem;
  }

let encode_row row =
  match row.result with
  | Error msg -> "err " ^ String.escaped msg
  | Ok s ->
    Printf.sprintf "ok %s|%s|%s"
      (Cache.encode_measures_line s.measures)
      (Cache.encode_measures_line s.tol_network.Tolerance.ideal)
      (Cache.encode_measures_line s.tol_memory.Tolerance.ideal)

let decode_row ~ideal_method assigns payload =
  if String.starts_with ~prefix:"ok " payload then begin
    match
      String.split_on_char '|'
        (String.sub payload 3 (String.length payload - 3))
    with
    | [ r; ni; mi ] -> (
      match
        ( Cache.decode_measures_line r,
          Cache.decode_measures_line ni,
          Cache.decode_measures_line mi )
      with
      | Some real, Some ideal_net, Some ideal_mem ->
        Some
          {
            assigns;
            result = Ok (reports ~ideal_method ~real ~ideal_net ~ideal_mem);
          }
      | _ -> None)
    | _ -> None
  end
  else if String.starts_with ~prefix:"err " payload then begin
    match Scanf.unescaped (String.sub payload 4 (String.length payload - 4)) with
    | msg -> Some { assigns; result = Error msg }
    | exception Scanf.Scan_failure _ -> None
  end
  else None

module Tc = Lattol_obs.Trace_ctx

(* Tag iteration phases on a solve span: one child span per residual
   decade crossed, so a solve's convergence trajectory is visible on the
   causal waterfall without recording every iteration.  The wrapped hook
   still returns whatever the caller's hook decides; with tracing off
   the hook is returned untouched. *)
let phase_hook tctx hook =
  if not (Tc.enabled tctx) then hook
  else begin
    let mark = ref (Tc.now_ns ()) in
    let decade = ref max_int in
    let from_it = ref 0 in
    Some
      (fun ~iteration ~residual ->
        let d =
          if Float.is_finite residual && residual > 0. then
            int_of_float (Float.ceil (Float.log10 residual))
          else max_int
        in
        if d < !decade then begin
          if !decade < max_int then
            Tc.record_interval ~cat:"solve"
              ~name:(Printf.sprintf "residual 1e%d" !decade)
              ~meta:
                [
                  ("from_iteration", string_of_int !from_it);
                  ("to_iteration", string_of_int iteration);
                ]
              ~t0_ns:!mark tctx;
          mark := Tc.now_ns ();
          decade := d;
          from_it := iteration
        end;
        match hook with
        | None -> Amva.Continue
        | Some f -> f ~iteration ~residual)
  end

let ideal_method_name = function
  | Tolerance.Zero_delay -> "zero-delay"
  | Tolerance.Zero_remote -> "zero-remote"

let journal_meta ?solver ?(ideal_method = Tolerance.Zero_remote) ~base axes =
  let b = Buffer.create 256 in
  Printf.bprintf b "sweep/%d;solver=%s;ideal=%s;base=%s;" Journal.format_version
    (match solver with Some s -> Mms.solver_label s | None -> "default")
    (ideal_method_name ideal_method)
    (Cache.canonical base);
  List.iter
    (fun a ->
      Printf.bprintf b "axis:%s=" (param_name a.param);
      List.iter (fun v -> Printf.bprintf b "%h," v) a.values;
      Buffer.add_char b ';')
    axes;
  Digest.to_hex (Digest.string (Buffer.contents b))

let run ?solver ?cache ?(jobs = 1) ?chunk ?oversubscribe
    ?(ideal_method = Tolerance.Zero_remote) ?trace ?(causal = Tc.disabled)
    ?on_sweep ?monitor ?journal ?(journal_prefix = "") ?retry ?deadline
    ?(chaos = Lattol_robust.Chaos.none) ~base axes =
  if jobs < 1 then invalid_arg "Sweep.run: jobs must be at least 1";
  if axes = [] then invalid_arg "Sweep.run: at least one axis";
  List.iter
    (fun a -> if a.values = [] then invalid_arg "Sweep.run: empty axis")
    axes;
  let cache = match cache with Some c -> c | None -> Cache.create () in
  (* [label] marks the real solve of a sweep point in the trace; ideal
     solves are untraced support work, as in the pre-engine CLI.  Each
     point records into its own private buffer ([tel]) — created by the
     task, touched by no other domain — and the buffers are absorbed into
     the caller's recorder in point order once the pool has joined, so
     the merged trace is byte-identical at any parallelism.  [hook] is
     the per-task on_sweep (the caller's, plus deadline polling). *)
  let solve_point ?label ?tel ?(tctx = Tc.disabled) ~hook params =
    let resolved =
      match solver with Some s -> s | None -> Mms.default_solver params
    in
    let hook = phase_hook tctx hook in
    let compute () =
      match tel with
      | Some tel when label <> None && params.Params.n_t > 0 ->
        Lattol_obs.Solver_trace.start_attempt tel ?label
          ~budget:Amva.default_options.Amva.max_iterations
          ~solver:(Mms.solver_label resolved)
          ~damping:Amva.default_options.Amva.damping ();
        let h ~iteration ~residual =
          Lattol_obs.Solver_trace.record tel ~iteration ~residual;
          match hook with
          | None -> Amva.Continue
          | Some f -> f ~iteration ~residual
        in
        let solution = Mms.solve_network ~solver:resolved ~on_sweep:h params in
        Lattol_obs.Solver_trace.finish_attempt tel
          ~converged:solution.Solution.converged
          ~iterations:solution.Solution.iterations;
        Mms.measures_of_solution params solution
      | _ -> Mms.solve ~solver:resolved ?on_sweep:hook params
    in
    let traced =
      match tel with
      | Some _ -> label <> None && params.Params.n_t > 0
      | None -> false
    in
    (* A traced real solve bypasses the memo: a cache hit would record no
       attempt, and whether a point hits depends on scheduling whenever
       its configuration collides with another point's (e.g. a p_remote=0
       point vs. a zero-remote ideal).  Re-solving keeps the recording a
       pure function of the grid — one attempt per valid point, every
       [jobs].  Untraced solves (ideals, untraced runs) memoize as
       always. *)
    if traced then compute ()
    else
      Cache.find_or_compute ~trace:tctx cache
        ~key:(Cache.key ~solver_id:(Mms.solver_label resolved) params)
        compute
  in
  let contained = retry <> None || deadline <> None in
  let eval ~tel (ctx : Pool.ctx) assigns =
    Lattol_robust.Chaos.inject chaos ~task:(label assigns)
      ~attempt:ctx.Pool.attempt;
    let p =
      List.fold_left (fun p (param, v) -> apply p param v) base assigns
    in
    match Params.validate p with
    | Error msg -> { assigns; result = Error msg }
    | Ok p ->
      let hook =
        match deadline with
        | None -> on_sweep
        | Some _ ->
          (* Deadline expiry must RAISE out of the solver, not return
             [Abort]: an aborted solve yields a non-converged solution
             that would otherwise land in the cache and the journal. *)
          Some
            (fun ~iteration ~residual ->
              if ctx.Pool.should_stop () then
                raise Lattol_robust.Retry.Deadline_exceeded;
              match on_sweep with
              | None -> Amva.Continue
              | Some f -> f ~iteration ~residual)
      in
      let tctx = ctx.Pool.trace in
      let real =
        Tc.with_span ~cat:"solve" ~name:"solve" tctx (fun sctx ->
            solve_point ~label:(label assigns) ?tel ~tctx:sctx ~hook p)
      in
      let ideal_net =
        Tc.with_span ~cat:"solve" ~name:"ideal-net" tctx (fun sctx ->
            solve_point ~tctx:sctx ~hook
              (Tolerance.ideal_params Tolerance.Network_latency ideal_method p))
      in
      let ideal_mem =
        Tc.with_span ~cat:"solve" ~name:"ideal-mem" tctx (fun sctx ->
            solve_point ~tctx:sctx ~hook
              (Tolerance.ideal_params Tolerance.Memory_latency
                 Tolerance.Zero_delay p))
      in
      { assigns; result = Ok (reports ~ideal_method ~real ~ideal_net ~ideal_mem) }
  in
  let pts = Array.of_list (points axes) in
  let n = Array.length pts in
  (* Ids carry the point's index (axes can repeat a value) and its label
     (readability when inspecting a journal). *)
  let point_id i = Printf.sprintf "%s%d:%s" journal_prefix i (label pts.(i)) in
  let rows = Array.make n None in
  (match journal with
  | None -> ()
  | Some j ->
    for i = 0 to n - 1 do
      match Journal.find j (point_id i) with
      | Some payload -> rows.(i) <- decode_row ~ideal_method pts.(i) payload
      | None -> ()
    done);
  let missing =
    Array.of_list
      (List.filter
         (fun i -> rows.(i) = None)
         (List.init n (fun i -> i)))
  in
  let record ?(tctx = Tc.disabled) i row =
    (match journal with
    | None -> ()
    | Some j ->
      if Tc.enabled tctx then begin
        let t0 = Tc.now_ns () in
        Journal.append j ~id:(point_id i) ~payload:(encode_row row);
        Tc.record_interval ~cat:"journal" ~name:"append" ~t0_ns:t0 tctx
      end
      else Journal.append j ~id:(point_id i) ~payload:(encode_row row));
    row
  in
  (* Poison substitution only arms alongside retry/deadline containment:
     without them, failures propagate first-exception as they always
     did.  A poisoned point becomes (and is journaled as) an error row. *)
  let on_poison =
    if not contained then None
    else
      Some
        (fun (p : Pool.poisoned) ->
          record p.Pool.index
            {
              assigns = pts.(p.Pool.index);
              result =
                Error
                  (Printf.sprintf "gave up after %d attempts: %s"
                     p.Pool.attempts p.Pool.error);
            })
  in
  (* Per-point private trace buffers, absorbed into the caller's recorder
     in point order below.  Cache hits and journal-restored points record
     nothing — the same holds sequentially, so the merged trace is
     byte-identical across [jobs]. *)
  let traces =
    match trace with
    | None -> [||]
    | Some tel ->
      Array.init n (fun _ ->
          Lattol_obs.Solver_trace.create
            ~sample_capacity:(Lattol_obs.Solver_trace.sample_capacity tel)
            ())
  in
  (* Causal point spans: one handle per still-missing point, opened at
     submission time — so a point's wall time includes its queue wait —
     and closed by the task itself right after the journal append.  The
     [finally] closes whatever an exception or poison path left open
     (finish is idempotent), so every recorded span's parent exists even
     on error paths.  Journal-restored points record nothing. *)
  let handles = Array.make n Tc.no_handle in
  if Tc.enabled causal then
    Array.iter
      (fun i ->
        handles.(i) <-
          Tc.start
            ~point:(Printf.sprintf "%s%d" journal_prefix i)
            ~cat:"point" ~name:(label pts.(i)) causal)
      missing;
  let pool_trace =
    if Tc.enabled causal then
      Some (fun slot -> Tc.ctx_of handles.(missing.(slot)))
    else None
  in
  let computed =
    Fun.protect
      ~finally:(fun () -> Array.iter (fun h -> Tc.finish h) handles)
      (fun () ->
        Pool.map_ctx ?chunk ?oversubscribe ?monitor ?retry ?deadline
          ?on_poison ?trace:pool_trace ~jobs
          (fun ctx i ->
            let tel = if trace = None then None else Some traces.(i) in
            let row = record ~tctx:ctx.Pool.trace i (eval ~tel ctx pts.(i)) in
            Tc.finish handles.(i);
            row)
          missing)
  in
  Array.iteri (fun slot i -> rows.(i) <- Some computed.(slot)) missing;
  (match trace with
  | None -> ()
  | Some tel -> Lattol_obs.Solver_trace.absorb tel (Array.to_list traces));
  List.init n (fun i ->
      match rows.(i) with
      | Some row -> row
      | None -> invalid_arg "Sweep.run: missing row")
