(** Parallel independent-replication fan-out for the simulators.

    Each replication gets its own pre-derived random stream
    ({!Lattol_stats.Prng.split} from the root seed for the DES; a
    root-drawn integer seed for the STPN), fixed before any run starts, so
    the set of results is identical for every [jobs] value.  Across-run 95%
    confidence intervals come from {!Lattol_stats.Confidence.interval} over
    the per-replication means. *)

open Lattol_core

val streams : seed:int -> int -> Lattol_stats.Prng.t list
(** [streams ~seed n]: the [n] independent streams replication fan-out
    uses, in replication order. *)

type 'a summary = {
  results : 'a list;  (** per-replication results, in replication order *)
  u_p_ci : (float * float) option;
      (** across-replication 95% CI on [U_p] as [(mean, half_width)];
          [None] with fewer than two replications *)
  lambda_ci : (float * float) option;
}

val des :
  ?jobs:int ->
  ?chunk:int ->
  ?oversubscribe:bool ->
  ?monitor:Pool.monitor ->
  ?config:Lattol_sim.Mms_des.config ->
  replications:int ->
  Params.t ->
  Lattol_sim.Mms_des.result summary
(** Discrete-event replications.  [config.rng] is overridden per
    replication with a split stream rooted at [config.seed]; [trace] and
    [metrics] sinks are rejected when [replications > 1] (they are per-run
    recorders).  [monitor] observes the fan-out pool (one item per
    replication).  Raises [Invalid_argument] on [replications < 1]. *)

val stpn :
  ?jobs:int ->
  ?chunk:int ->
  ?oversubscribe:bool ->
  ?monitor:Pool.monitor ->
  ?seed:int ->
  ?warmup:float ->
  ?horizon:float ->
  ?memory:Lattol_petri.Mms_stpn.memory_distribution ->
  ?faults:Lattol_robust.Fault_plan.t ->
  replications:int ->
  Params.t ->
  Lattol_petri.Mms_stpn.result summary
(** Stochastic-Petri-net replications, seeded from one root generator. *)

val des_measures :
  ?jobs:int ->
  ?chunk:int ->
  ?oversubscribe:bool ->
  ?monitor:Pool.monitor ->
  ?journal:Journal.t ->
  ?causal:Lattol_obs.Trace_ctx.ctx ->
  ?config:Lattol_sim.Mms_des.config ->
  replications:int ->
  Params.t ->
  Lattol_core.Measures.t summary
(** {!des} reduced to each replication's {!Measures.t} — the level the CLI
    reports at — and therefore checkpointable: with [journal], replication
    [i] is recorded under id ["rep<i>"] as it completes, and a resumed run
    replays completed replications instead of re-simulating them.  Streams
    for the full set are derived before the journal filter, so resumed and
    uninterrupted runs are byte-identical.  Checkpoints are written in
    per-chunk batches ({!Journal.append_batch}): one fsync per pool chunk,
    so [chunk] trades checkpoint granularity against disk-barrier cost.
    [trace]/[metrics] sinks are rejected at any replication count (a
    replayed run cannot reproduce them).

    [causal] threads a causal-tracing context (see {!Sweep.run}): each
    still-missing replication opens a ["point"] span named ["rep<i>"]
    covering queue wait plus a ["simulate"] solve span, and batched
    journal flushes record run-level ["journal"] spans.  Disabled by
    default; results are identical either way. *)

val stpn_measures :
  ?jobs:int ->
  ?chunk:int ->
  ?oversubscribe:bool ->
  ?monitor:Pool.monitor ->
  ?journal:Journal.t ->
  ?causal:Lattol_obs.Trace_ctx.ctx ->
  ?seed:int ->
  ?warmup:float ->
  ?horizon:float ->
  ?memory:Lattol_petri.Mms_stpn.memory_distribution ->
  ?faults:Lattol_robust.Fault_plan.t ->
  replications:int ->
  Params.t ->
  Lattol_core.Measures.t summary
(** {!stpn} at measures level, journaled like {!des_measures}. *)
