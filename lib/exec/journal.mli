(** Append-only checkpoint journal (format ["lattol-journal 1"]).

    A journal records one line per completed unit of work (a sweep
    point, a replication) so an interrupted run can {!resume}: completed
    ids are skipped and the output is byte-identical to an uninterrupted
    run.  The discipline mirrors the {!Cache}'s verified storage:

    - every record carries an MD5 checksum over its id and payload;
    - appends are serialized and [fsync]'d record-by-record, so a
      SIGKILL leaves at most one torn trailing record;
    - {!resume} verifies every line, truncates the torn/corrupt tail
      (counted in {!discarded}) and replays the survivors;
    - the header binds the file to a [meta] digest of the run
      specification — resuming against a different specification is an
      [Error], never a silently wrong merge.

    Ids and meta are single-line and space-free; payloads single-line.
    Appends are domain-safe. *)

type t

val format_version : int

val create : ?on_record:(int -> unit) -> path:string -> meta:string ->
  unit -> t
(** Start a fresh journal (truncating any existing file), creating parent
    directories as needed.  [on_record n] fires after the [n]-th
    successful append of this process — the chaos harness uses it as a
    deterministic kill switch.  Raises [Invalid_argument] on a malformed
    [meta]; I/O errors propagate as [Unix.Unix_error]. *)

val resume : ?on_record:(int -> unit) -> path:string -> meta:string ->
  unit -> (t, string) result
(** Reopen [path] for appending, replaying its verified records.  A
    missing file starts fresh; a header whose meta differs from [meta]
    (or a non-journal file) is an [Error].  A torn or corrupted tail is
    truncated away and counted in {!discarded}. *)

val find : t -> string -> string option
(** Payload recorded for this id, if any (later records win). *)

val entries : t -> (string * string) list
(** Replayed [(id, payload)] records in append order — appends made
    through this handle are not included. *)

val replayed : t -> int

val discarded : t -> int
(** Records dropped by {!resume}'s tail truncation. *)

val appended : t -> int
(** Appends made through this handle. *)

val append : t -> id:string -> payload:string -> unit
(** Write and fsync one record, then fire [on_record].  Raises
    [Invalid_argument] on a malformed id/payload. *)

val append_batch : t -> (string * string) list -> unit
(** Write a list of [(id, payload)] records under one lock acquisition
    and a {e single} [fsync], then fire [on_record] once per record.
    This is the amortization point for fine-grained work (replications):
    one disk barrier per pool chunk instead of one per task.  All
    records are validated before anything is written, so a malformed
    entry raises [Invalid_argument] without touching the file.  A crash
    mid-batch leaves at most one torn record exactly as with {!append}
    (the batch is one contiguous write; complete leading records within
    it survive {!resume}'s verification). *)

val path : t -> string

val close : t -> unit
