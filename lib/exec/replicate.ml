open Lattol_core
open Lattol_stats
module Des = Lattol_sim.Mms_des
module Stpn = Lattol_petri.Mms_stpn

(* All streams are derived from the root seed before any run starts, so a
   replication's randomness depends only on (seed, index) — never on which
   domain picks it up or in what order. *)
let streams ~seed n =
  let root = Prng.create ~seed () in
  List.init n (fun _ -> Prng.split root)

type 'a summary = {
  results : 'a list;
  u_p_ci : (float * float) option;
  lambda_ci : (float * float) option;
}

let summarize results ~u_p ~lambda =
  let ci extract =
    let m = Moments.create () in
    List.iter (fun r -> Moments.add m (extract r)) results;
    Confidence.interval m
  in
  { results; u_p_ci = ci u_p; lambda_ci = ci lambda }

(* Journaled measures-level fan-out: replication [i] checkpoints under id
   ["rep<i>"], payload {!Cache.encode_measures_line}.  Inputs (streams or
   seeds) are always derived for the FULL replication set before the
   journal filters out completed indices — a resumed run must hand
   replication [i] exactly the stream it would have had uninterrupted.

   Checkpoints are batched per pool chunk: each worker collects its
   chunk's (id, payload) records in a per-domain pending list and the
   chunk-boundary [flush] writes them with {!Journal.append_batch} — one
   lock acquisition and one fsync per chunk instead of one per
   replication.  Replay is id-keyed, so batch order never affects a
   resumed run; a crash loses at most the current unflushed chunk, which
   is simply recomputed. *)
module Tc = Lattol_obs.Trace_ctx

let journaled_map ?journal ?monitor ?chunk ?oversubscribe
    ?(causal = Tc.disabled) ~jobs run inputs =
  let arr = Array.of_list inputs in
  let n = Array.length arr in
  let rep_id i = Printf.sprintf "rep%d" i in
  let rows = Array.make n None in
  (match journal with
  | None -> ()
  | Some j ->
    for i = 0 to n - 1 do
      match Journal.find j (rep_id i) with
      | Some payload -> rows.(i) <- Cache.decode_measures_line payload
      | None -> ()
    done);
  let missing =
    Array.of_list
      (List.filter (fun i -> rows.(i) = None) (List.init n (fun i -> i)))
  in
  (* Causal point spans, mirroring Sweep.run: one per still-missing
     replication, opened at submission (wall time includes queue wait),
     closed by the task; the [finally] sweeps up error-path leftovers.
     The batched journal flush runs at chunk boundaries outside any one
     replication's context, so it records under the run-level context
     instead. *)
  let handles = Array.make n Tc.no_handle in
  if Tc.enabled causal then
    Array.iter
      (fun i ->
        handles.(i) <-
          Tc.start ~point:(rep_id i) ~cat:"point" ~name:(rep_id i) causal)
      missing;
  let pool_trace =
    if Tc.enabled causal then
      Some (fun slot -> Tc.ctx_of handles.(missing.(slot)))
    else None
  in
  let computed, _locals =
    Fun.protect
      ~finally:(fun () -> Array.iter (fun h -> Tc.finish h) handles)
      (fun () ->
        Pool.map_local ?monitor ?chunk ?oversubscribe ?trace:pool_trace ~jobs
          ~local:(fun _ -> ref [])
          ~flush:(fun pending ->
            match journal with
            | Some j when !pending <> [] ->
              let t0 = if Tc.enabled causal then Tc.now_ns () else 0L in
              Journal.append_batch j (List.rev !pending);
              if Tc.enabled causal then
                Tc.record_interval ~cat:"journal" ~name:"append-batch"
                  ~meta:
                    [ ("records", string_of_int (List.length !pending)) ]
                  ~t0_ns:t0 causal;
              pending := []
            | _ -> ())
          (fun pending ctx i ->
            let m =
              Tc.with_span ~cat:"solve" ~name:"simulate" ctx.Pool.trace
                (fun _ -> run arr.(i))
            in
            (match journal with
            | None -> ()
            | Some _ ->
              pending := (rep_id i, Cache.encode_measures_line m) :: !pending);
            Tc.finish handles.(i);
            m)
          missing)
  in
  Array.iteri (fun slot i -> rows.(i) <- Some computed.(slot)) missing;
  List.init n (fun i ->
      match rows.(i) with
      | Some m -> m
      | None -> invalid_arg "Replicate: missing replication")

let summarize_measures results =
  summarize results
    ~u_p:(fun m -> m.Measures.u_p)
    ~lambda:(fun m -> m.Measures.lambda)

let des_measures ?(jobs = 1) ?chunk ?oversubscribe ?monitor ?journal ?causal
    ?(config = Des.default_config) ~replications p =
  if replications < 1 then
    invalid_arg "Replicate.des_measures: replications must be at least 1";
  if config.Des.trace <> None || config.Des.metrics <> None then
    invalid_arg "Replicate.des_measures: trace/metrics sinks are per-run";
  summarize_measures
    (journaled_map ?journal ?monitor ?chunk ?oversubscribe ?causal ~jobs
       (fun rng ->
         (Des.run ~config:{ config with Des.rng = Some rng } p).Des.measures)
       (streams ~seed:config.Des.seed replications))

let stpn_seeds ~seed n =
  let root = Prng.create ~seed () in
  List.init n (fun _ -> Int64.to_int (Prng.bits64 root) land max_int)

let stpn_measures ?(jobs = 1) ?chunk ?oversubscribe ?monitor ?journal ?causal
    ?(seed = 1) ?warmup ?horizon ?memory ?faults ~replications p =
  if replications < 1 then
    invalid_arg "Replicate.stpn_measures: replications must be at least 1";
  summarize_measures
    (journaled_map ?journal ?monitor ?chunk ?oversubscribe ?causal ~jobs
       (fun s ->
         (Stpn.run ~seed:s ?warmup ?horizon ?memory ?faults p).Stpn.measures)
       (stpn_seeds ~seed replications))

let des ?(jobs = 1) ?chunk ?oversubscribe ?monitor
    ?(config = Des.default_config) ~replications p =
  if replications < 1 then
    invalid_arg "Replicate.des: replications must be at least 1";
  if replications > 1 && (config.Des.trace <> None || config.Des.metrics <> None)
  then
    (* Sinks are per-run recorders; replications would race on them and
       collide on series names. *)
    invalid_arg "Replicate.des: trace/metrics sinks require replications = 1";
  let results =
    Pool.map_list ?monitor ?chunk ?oversubscribe ~jobs
      (fun rng -> Des.run ~config:{ config with Des.rng = Some rng } p)
      (streams ~seed:config.Des.seed replications)
  in
  summarize results
    ~u_p:(fun r -> r.Des.measures.Measures.u_p)
    ~lambda:(fun r -> r.Des.measures.Measures.lambda)

let stpn ?(jobs = 1) ?chunk ?oversubscribe ?monitor ?(seed = 1) ?warmup
    ?horizon ?memory ?faults ~replications p =
  if replications < 1 then
    invalid_arg "Replicate.stpn: replications must be at least 1";
  let seeds = stpn_seeds ~seed replications in
  let results =
    Pool.map_list ?monitor ?chunk ?oversubscribe ~jobs
      (fun s -> Stpn.run ~seed:s ?warmup ?horizon ?memory ?faults p)
      seeds
  in
  summarize results
    ~u_p:(fun r -> r.Stpn.measures.Measures.u_p)
    ~lambda:(fun r -> r.Stpn.measures.Measures.lambda)
