open Lattol_core
open Lattol_stats
module Des = Lattol_sim.Mms_des
module Stpn = Lattol_petri.Mms_stpn

(* All streams are derived from the root seed before any run starts, so a
   replication's randomness depends only on (seed, index) — never on which
   domain picks it up or in what order. *)
let streams ~seed n =
  let root = Prng.create ~seed () in
  List.init n (fun _ -> Prng.split root)

type 'a summary = {
  results : 'a list;
  u_p_ci : (float * float) option;
  lambda_ci : (float * float) option;
}

let summarize results ~u_p ~lambda =
  let ci extract =
    let m = Moments.create () in
    List.iter (fun r -> Moments.add m (extract r)) results;
    Confidence.interval m
  in
  { results; u_p_ci = ci u_p; lambda_ci = ci lambda }

let des ?(jobs = 1) ?monitor ?(config = Des.default_config) ~replications p =
  if replications < 1 then
    invalid_arg "Replicate.des: replications must be at least 1";
  if replications > 1 && (config.Des.trace <> None || config.Des.metrics <> None)
  then
    (* Sinks are per-run recorders; replications would race on them and
       collide on series names. *)
    invalid_arg "Replicate.des: trace/metrics sinks require replications = 1";
  let results =
    Pool.map_list ?monitor ~jobs
      (fun rng -> Des.run ~config:{ config with Des.rng = Some rng } p)
      (streams ~seed:config.Des.seed replications)
  in
  summarize results
    ~u_p:(fun r -> r.Des.measures.Measures.u_p)
    ~lambda:(fun r -> r.Des.measures.Measures.lambda)

let stpn ?(jobs = 1) ?monitor ?(seed = 1) ?warmup ?horizon ?memory ?faults
    ~replications p =
  if replications < 1 then
    invalid_arg "Replicate.stpn: replications must be at least 1";
  let root = Prng.create ~seed () in
  let seeds =
    List.init replications (fun _ -> Int64.to_int (Prng.bits64 root) land max_int)
  in
  let results =
    Pool.map_list ?monitor ~jobs
      (fun s -> Stpn.run ~seed:s ?warmup ?horizon ?memory ?faults p)
      seeds
  in
  summarize results
    ~u_p:(fun r -> r.Stpn.measures.Measures.u_p)
    ~lambda:(fun r -> r.Stpn.measures.Measures.lambda)
