(* Append-only, checksummed run journal ("lattol-journal" format 1).

   One header line binds the file to a run specification:

     lattol-journal 1 <meta>

   then one record per completed unit of work:

     <md5-hex> <id> <payload>

   where the digest covers "<id> <payload>".  Appends are serialized
   under a mutex and fsync'd record-by-record, so after a SIGKILL the
   file is a valid journal plus at most one torn trailing record —
   {!resume} verifies every line, truncates the bad tail, and replays
   the survivors.  [meta] is the caller's digest of everything that
   shapes the results (parameters, axes, solver, format versions): a
   mismatch on resume is an error, never a silent wrong answer. *)

let format_version = 1

type t = {
  path : string;
  fd : Unix.file_descr;
  lock : Mutex.t;
  entries : (string * string) list;
  index : (string, string) Hashtbl.t;
  discarded : int;
  mutable appended : int;
  on_record : int -> unit;
}

let path t = t.path

let entries t = t.entries

let replayed t = List.length t.entries

let discarded t = t.discarded

let appended t = t.appended

let find t id = Hashtbl.find_opt t.index id

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go dir

let header meta = Printf.sprintf "lattol-journal %d %s\n" format_version meta

let single_line what s =
  if String.exists (fun c -> c = '\n' || c = '\r') s then
    invalid_arg (Printf.sprintf "Journal: %s must be a single line" what)

let check_meta meta =
  single_line "meta" meta;
  if String.contains meta ' ' then
    invalid_arg "Journal: meta must not contain spaces"

let check_id id =
  single_line "id" id;
  if id = "" || String.contains id ' ' then
    invalid_arg "Journal: id must be non-empty and space-free"

let digest_of ~id ~payload = Digest.to_hex (Digest.string (id ^ " " ^ payload))

let record_line ~id ~payload =
  Printf.sprintf "%s %s %s\n" (digest_of ~id ~payload) id payload

(* A complete record line (no trailing newline) back into (id, payload),
   or None if torn or corrupted. *)
let parse_record line =
  match String.index_opt line ' ' with
  | None -> None
  | Some sp1 -> (
    let digest = String.sub line 0 sp1 in
    if String.length digest <> 32 then None
    else
      match String.index_from_opt line (sp1 + 1) ' ' with
      | None -> None
      | Some sp2 ->
        let id = String.sub line (sp1 + 1) (sp2 - sp1 - 1) in
        let payload = String.sub line (sp2 + 1) (String.length line - sp2 - 1) in
        if String.equal (digest_of ~id ~payload) digest then Some (id, payload)
        else None)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let k = Unix.write_substring fd s off (n - off) in
      go (off + k)
  in
  go 0

let make ~path ~fd ~entries ~discarded on_record =
  let index = Hashtbl.create 64 in
  List.iter (fun (id, payload) -> Hashtbl.replace index id payload) entries;
  {
    path;
    fd;
    lock = Mutex.create ();
    entries;
    index;
    discarded;
    appended = 0;
    on_record;
  }

let create ?(on_record = fun _ -> ()) ~path ~meta () =
  check_meta meta;
  mkdir_p (Filename.dirname path);
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  write_all fd (header meta);
  Unix.fsync fd;
  make ~path ~fd ~entries:[] ~discarded:0 on_record

let count_lines s lo hi =
  let n = ref 0 in
  for i = lo to hi - 1 do
    if s.[i] = '\n' then incr n
  done;
  if hi > lo && s.[hi - 1] <> '\n' then incr n;
  !n

let resume ?(on_record = fun _ -> ()) ~path ~meta () =
  check_meta meta;
  if not (Sys.file_exists path) then Ok (create ~on_record ~path ~meta ())
  else begin
    let text = In_channel.with_open_bin path In_channel.input_all in
    let expected = header meta in
    let hlen = String.length expected in
    if
      String.length text < hlen
      || not (String.equal (String.sub text 0 hlen) expected)
    then
      if String.starts_with ~prefix:"lattol-journal " text then
        Error
          (Printf.sprintf
             "journal %s was written for a different run configuration \
              (start fresh without --resume, or delete it)"
             path)
      else Error (Printf.sprintf "%s is not a lattol-journal file" path)
    else begin
      let n = String.length text in
      let entries = ref [] in
      (* [good] = offset just past the last verified record; everything
         after it (a torn append, garbage) is truncated away. *)
      let good = ref hlen in
      let pos = ref hlen in
      (try
         while !pos < n do
           match String.index_from_opt text !pos '\n' with
           | None -> raise Exit (* torn final record: no newline landed *)
           | Some nl -> (
             match parse_record (String.sub text !pos (nl - !pos)) with
             | Some entry ->
               entries := entry :: !entries;
               good := nl + 1;
               pos := nl + 1
             | None -> raise Exit)
         done
       with Exit -> ());
      let discarded = count_lines text !good n in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      if discarded > 0 then begin
        Unix.ftruncate fd !good;
        Unix.fsync fd
      end;
      ignore (Unix.lseek fd !good Unix.SEEK_SET);
      Ok (make ~path ~fd ~entries:(List.rev !entries) ~discarded on_record)
    end
  end

let append t ~id ~payload =
  check_id id;
  single_line "payload" payload;
  let line = record_line ~id ~payload in
  let nth =
    Mutex.protect t.lock (fun () ->
        write_all t.fd line;
        Unix.fsync t.fd;
        Hashtbl.replace t.index id payload;
        t.appended <- t.appended + 1;
        t.appended)
  in
  (* Outside the lock: the hook may be a chaos kill switch. *)
  t.on_record nth

let append_batch t records =
  match records with
  | [] -> ()
  | _ ->
    (* Validate and render everything before taking the lock, so a
       malformed record cannot leave a half-written batch behind. *)
    let lines =
      List.map
        (fun (id, payload) ->
          check_id id;
          single_line "payload" payload;
          record_line ~id ~payload)
        records
    in
    let text = String.concat "" lines in
    let last =
      Mutex.protect t.lock (fun () ->
          write_all t.fd text;
          Unix.fsync t.fd;
          List.iter
            (fun (id, payload) -> Hashtbl.replace t.index id payload)
            records;
          t.appended <- t.appended + List.length records;
          t.appended)
    in
    (* Fire the hook once per record (the chaos kill switch counts
       records, not batches), outside the lock. *)
    let first = last - List.length records + 1 in
    List.iteri (fun i _ -> t.on_record (first + i)) records

let close t = try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
