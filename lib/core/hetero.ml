open Lattol_topology
open Lattol_queueing

type group = {
  name : string;
  count : int;
  runlength : float;
  p_remote : float;
  pattern : Access.pattern;
}

type group_measures = {
  group : group;
  lambda : float;
  occupancy : float;
  lambda_net : float;
  s_obs : float;
  l_obs : float;
  cycle_time : float;
}

type t = {
  groups : group_measures list;
  u_p : float;
  converged : bool;
}

(* The machine parameters seen by one kind: same hardware, that kind's
   workload knobs. *)
let group_params base g =
  Params.validate_exn
    {
      base with
      Params.n_t = g.count;
      runlength = g.runlength;
      p_remote = g.p_remote;
      pattern = g.pattern;
    }

let solve ?(solver = `Amva) ~base groups =
  if groups = [] then invalid_arg "Hetero.solve: no thread groups";
  List.iter
    (fun g ->
      if g.count < 0 then invalid_arg "Hetero.solve: negative thread count";
      if g.runlength <= 0. then invalid_arg "Hetero.solve: runlength > 0")
    groups;
  if List.for_all (fun g -> g.count = 0) groups then
    invalid_arg "Hetero.solve: all groups empty";
  let n = Params.num_processors base in
  (* Station layout straight from the homogeneous builder (populations are
     irrelevant to the stations). *)
  let skeleton =
    Mms.build_network (Params.validate_exn { base with Params.n_t = 0 })
  in
  let stations =
    Array.init (Network.num_stations skeleton) (fun m ->
        (Network.station_name skeleton m, Network.station_kind skeleton m))
  in
  let group_array = Array.of_list groups in
  let classes =
    Array.concat
      (List.map
         (fun g ->
           let gp = group_params base g in
           Array.init n (fun node ->
               {
                 Network.class_name = Printf.sprintf "%s@%d" g.name node;
                 population = g.count;
                 visits = Mms.class_visits gp ~cls:node;
                 service = Mms.class_service gp;
               }))
         groups)
  in
  let network = Network.make ~stations ~classes in
  let solution =
    match solver with
    | `Amva -> Amva.solve network
    | `Linearizer -> Linearizer.solve network
  in
  let per_group gi g =
    let gp = group_params base g in
    let access = Params.make_access gp in
    let lambda_sum = ref 0. in
    let remote_rate = ref 0. in
    let mem_rate = ref 0. in
    let switch_rate = ref 0. in
    let cycle_sum = ref 0. in
    for node = 0 to n - 1 do
      let cls = (gi * n) + node in
      let lam = solution.Solution.throughput.(cls) in
      lambda_sum := !lambda_sum +. lam;
      remote_rate := !remote_rate +. (lam *. Access.remote_fraction access ~src:node);
      let range lo hi =
        let acc = ref 0. in
        for m = lo to hi - 1 do
          acc := !acc +. solution.Solution.residence.(cls).(m)
        done;
        !acc
      in
      mem_rate := !mem_rate +. (lam *. range n (2 * n));
      switch_rate := !switch_rate +. (lam *. range (2 * n) (4 * n));
      cycle_sum := !cycle_sum +. Solution.cycle_time solution ~cls
    done;
    let nf = float_of_int n in
    let lambda = !lambda_sum /. nf in
    {
      group = g;
      lambda;
      occupancy = lambda *. (g.runlength +. base.Params.context_switch);
      lambda_net = !remote_rate /. nf;
      s_obs =
        (if Float.equal !remote_rate 0. then nan
         else !switch_rate /. (2. *. !remote_rate));
      l_obs = (if Float.equal !lambda_sum 0. then 0. else !mem_rate /. !lambda_sum);
      cycle_time = !cycle_sum /. nf;
    }
  in
  let measures = List.mapi per_group (Array.to_list group_array) in
  {
    groups = measures;
    u_p = List.fold_left (fun acc m -> acc +. m.occupancy) 0. measures;
    converged = solution.Solution.converged;
  }

let pp_group ppf m =
  Fmt.pf ppf
    "@[%-12s x%-2d R=%-5g lambda=%.4f occupancy=%.4f lambda_net=%.4f \
     S_obs=%.3f L_obs=%.3f@]"
    m.group.name m.group.count m.group.runlength m.lambda m.occupancy
    m.lambda_net m.s_obs m.l_obs
