open Lattol_topology

type distribution = Block | Cyclic | Block_cyclic of int

type loop = {
  elements : int;
  distribution : distribution;
  stencil : int list;
  work_per_access : float;
}

let distribution_to_string = function
  | Block -> "block"
  | Cyclic -> "cyclic"
  | Block_cyclic b -> Printf.sprintf "block-cyclic(%d)" b

let validate ~num_processors loop =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if loop.elements < num_processors then
    err "loop has %d elements for %d processors" loop.elements num_processors
  else if loop.stencil = [] then err "empty stencil"
  else if loop.work_per_access <= 0. then
    err "work per access %g must be > 0" loop.work_per_access
  else
    match loop.distribution with
    | Block_cyclic b when b < 1 -> err "block-cyclic block size %d < 1" b
    | Block | Cyclic | Block_cyclic _ -> Ok loop

let owner loop ~num_processors ~element =
  let n = loop.elements and p = num_processors in
  let e = ((element mod n) + n) mod n in
  match loop.distribution with
  | Block ->
    (* Chunks of ceil(n/p); the last processor may own a short chunk. *)
    let chunk = (n + p - 1) / p in
    min (p - 1) (e / chunk)
  | Cyclic -> e mod p
  | Block_cyclic b -> e / b mod p

let access_matrix loop topo =
  let p = Topology.num_nodes topo in
  (match validate ~num_processors:p loop with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Workload.access_matrix: " ^ msg));
  let counts = Array.make_matrix p p 0 in
  for e = 0 to loop.elements - 1 do
    let home = owner loop ~num_processors:p ~element:e in
    List.iter
      (fun offset ->
        let target = owner loop ~num_processors:p ~element:(e + offset) in
        counts.(home).(target) <- counts.(home).(target) + 1)
      loop.stencil
  done;
  Array.map
    (fun row ->
      let total = Array.fold_left ( + ) 0 row in
      if total = 0 then
        (* A node owning no iterations performs no accesses; keep the row
           stochastic with a purely local placeholder. *)
        Array.init p (fun j -> if j = 0 then 1. else 0.)
      else Array.map (fun c -> float_of_int c /. float_of_int total) row)
    counts

type characterization = {
  matrix : float array array;
  p_remote_mean : float;
  p_remote_max : float;
  d_avg : float;
  fitted_p_sw : float option;
}

let characterize loop topo =
  let matrix = access_matrix loop topo in
  let access = Access.create topo (Access.Explicit matrix) ~p_remote:0. in
  let p = Topology.num_nodes topo in
  let mean = Access.p_remote access in
  let max_remote = ref 0. in
  let pmf = Array.make (Topology.max_distance topo + 1) 0. in
  for src = 0 to p - 1 do
    let r = Access.remote_fraction access ~src in
    if r > !max_remote then max_remote := r;
    Array.iteri
      (fun h mass -> pmf.(h) <- pmf.(h) +. (mass /. float_of_int p))
      (Access.distance_pmf access ~src)
  done;
  let d_avg =
    if Float.equal mean 0. then nan
    else begin
      let acc = ref 0. in
      for h = 1 to Array.length pmf - 1 do
        acc := !acc +. (float_of_int h *. pmf.(h))
      done;
      !acc /. mean
    end
  in
  (* Geometric fit: the mass at distance h+1 over the mass at h, averaged
     over the distances that carry traffic. *)
  let fitted_p_sw =
    let ratios = ref [] in
    for h = 1 to Array.length pmf - 2 do
      if pmf.(h) > 1e-12 && pmf.(h + 1) > 1e-12 then
        ratios := (pmf.(h + 1) /. pmf.(h)) :: !ratios
    done;
    match !ratios with
    | [] -> None
    | rs ->
      let avg = List.fold_left ( +. ) 0. rs /. float_of_int (List.length rs) in
      if avg > 0. && avg < 1. then Some avg else None
  in
  { matrix; p_remote_mean = mean; p_remote_max = !max_remote; d_avg; fitted_p_sw }

let to_params ?n_t ~base loop =
  let topo = Params.make_topology base in
  let matrix = access_matrix loop topo in
  Params.validate_exn
    {
      base with
      Params.n_t = Option.value n_t ~default:base.Params.n_t;
      runlength = loop.work_per_access;
      pattern = Access.Explicit matrix;
    }

let compare_distributions ?n_t ~base ~elements ~stencil ~work_per_access
    distributions =
  let topo = Params.make_topology base in
  List.map
    (fun distribution ->
      let loop = { elements; distribution; stencil; work_per_access } in
      let ch = characterize loop topo in
      let params = to_params ?n_t ~base loop in
      let report = Tolerance.network params in
      (distribution, ch, report.Tolerance.real, report.Tolerance.tol))
    distributions

module Grid = struct
  type decomposition = Row_blocks | Row_cyclic | Blocks

  type t = {
    rows : int;
    cols : int;
    decomposition : decomposition;
    stencil : (int * int) list;
    work_per_access : float;
  }

  let decomposition_to_string = function
    | Row_blocks -> "row-blocks"
    | Row_cyclic -> "row-cyclic"
    | Blocks -> "2d-blocks"

  let validate ~base g =
    let err fmt = Format.kasprintf (fun s -> Error s) fmt in
    let p = Params.num_processors base in
    if g.rows < 1 || g.cols < 1 then err "empty grid"
    else if g.stencil = [] then err "empty stencil"
    else if g.work_per_access <= 0. then
      err "work per access %g must be > 0" g.work_per_access
    else
      match g.decomposition with
      | Row_blocks | Row_cyclic ->
        if g.rows mod p <> 0 then
          err "%d rows not divisible by %d processors" g.rows p
        else Ok g
      | Blocks ->
        let k = base.Params.k in
        if base.Params.dimensions <> 2 then
          err "2-D blocks need a 2-dimensional machine"
        else if g.rows mod k <> 0 || g.cols mod k <> 0 then
          err "grid %dx%d not divisible by %dx%d tiles" g.rows g.cols k k
        else Ok g

  let validate_exn ~base g =
    match validate ~base g with
    | Ok g -> g
    | Error msg -> invalid_arg ("Workload.Grid: " ^ msg)

  let owner g ~base ~row ~col =
    let p = Params.num_processors base in
    let row = ((row mod g.rows) + g.rows) mod g.rows in
    let col = ((col mod g.cols) + g.cols) mod g.cols in
    match g.decomposition with
    | Row_blocks -> row / (g.rows / p)
    | Row_cyclic -> row mod p
    | Blocks ->
      let k = base.Params.k in
      let bx = col / (g.cols / k) and by = row / (g.rows / k) in
      Topology.of_coords (Params.make_topology base) (bx, by)

  let access_matrix g ~base =
    let g = validate_exn ~base g in
    let p = Params.num_processors base in
    let counts = Array.make_matrix p p 0 in
    for row = 0 to g.rows - 1 do
      for col = 0 to g.cols - 1 do
        let home = owner g ~base ~row ~col in
        List.iter
          (fun (dr, dc) ->
            let target = owner g ~base ~row:(row + dr) ~col:(col + dc) in
            counts.(home).(target) <- counts.(home).(target) + 1)
          g.stencil
      done
    done;
    Array.map
      (fun row ->
        let total = Array.fold_left ( + ) 0 row in
        if total = 0 then Array.init p (fun j -> if j = 0 then 1. else 0.)
        else Array.map (fun c -> float_of_int c /. float_of_int total) row)
      counts

  let characterize_matrix matrix topo =
    let access = Access.create topo (Access.Explicit matrix) ~p_remote:0. in
    let p = Topology.num_nodes topo in
    let mean = Access.p_remote access in
    let max_remote = ref 0. in
    let pmf = Array.make (Topology.max_distance topo + 1) 0. in
    for src = 0 to p - 1 do
      let r = Access.remote_fraction access ~src in
      if r > !max_remote then max_remote := r;
      Array.iteri
        (fun h mass -> pmf.(h) <- pmf.(h) +. (mass /. float_of_int p))
        (Access.distance_pmf access ~src)
    done;
    let d_avg =
      if Float.equal mean 0. then nan
      else begin
        let acc = ref 0. in
        for h = 1 to Array.length pmf - 1 do
          acc := !acc +. (float_of_int h *. pmf.(h))
        done;
        !acc /. mean
      end
    in
    let fitted_p_sw =
      let ratios = ref [] in
      for h = 1 to Array.length pmf - 2 do
        if pmf.(h) > 1e-12 && pmf.(h + 1) > 1e-12 then
          ratios := (pmf.(h + 1) /. pmf.(h)) :: !ratios
      done;
      match !ratios with
      | [] -> None
      | rs ->
        let avg = List.fold_left ( +. ) 0. rs /. float_of_int (List.length rs) in
        if avg > 0. && avg < 1. then Some avg else None
    in
    {
      matrix;
      p_remote_mean = mean;
      p_remote_max = !max_remote;
      d_avg;
      fitted_p_sw;
    }

  let characterize g ~base =
    characterize_matrix (access_matrix g ~base) (Params.make_topology base)

  let to_params ?n_t ~base g =
    let matrix = access_matrix g ~base in
    Params.validate_exn
      {
        base with
        Params.n_t = Option.value n_t ~default:base.Params.n_t;
        runlength = g.work_per_access;
        pattern = Access.Explicit matrix;
      }

  let compare_decompositions ?n_t ~base ~rows ~cols ~stencil ~work_per_access
      decompositions =
    List.map
      (fun decomposition ->
        let g = { rows; cols; decomposition; stencil; work_per_access } in
        let ch = characterize g ~base in
        let params = to_params ?n_t ~base g in
        let report = Tolerance.network params in
        (decomposition, ch, report.Tolerance.real, report.Tolerance.tol))
      decompositions
end
