type subsystem = Network_latency | Memory_latency

type ideal_method = Zero_delay | Zero_remote

type zone = Tolerated | Partially_tolerated | Not_tolerated

type report = {
  subsystem : subsystem;
  ideal_method : ideal_method;
  tol : float;
  u_p : float;
  u_p_ideal : float;
  zone : zone;
  real : Measures.t;
  ideal : Measures.t;
}

let zone_of_index tol =
  if tol >= 0.8 then Tolerated
  else if tol >= 0.5 then Partially_tolerated
  else Not_tolerated

let ideal_params subsystem meth p =
  match (subsystem, meth) with
  | Network_latency, Zero_delay -> { p with Params.s_switch = 0. }
  | Network_latency, Zero_remote ->
    (* Every access becomes local.  Explicit matrices encode the remote
       fraction themselves, so the pattern must be replaced too (with
       p_remote = 0 the pattern choice is immaterial). *)
    { p with Params.p_remote = 0.; pattern = Lattol_topology.Access.Uniform }
  | Memory_latency, Zero_delay -> { p with Params.l_mem = 0. }
  | Memory_latency, Zero_remote ->
    invalid_arg
      "Tolerance.ideal_params: p_remote = 0 does not idealize the memory \
       subsystem; use Zero_delay"

let default_method = function
  | Network_latency -> Zero_remote
  | Memory_latency -> Zero_delay

let of_measures ?ideal_method subsystem ~real ~ideal =
  let meth =
    match ideal_method with Some m -> m | None -> default_method subsystem
  in
  let u_p = real.Measures.u_p and u_p_ideal = ideal.Measures.u_p in
  let tol = if Float.equal u_p_ideal 0. then 1. else u_p /. u_p_ideal in
  { subsystem; ideal_method = meth; tol; u_p; u_p_ideal; zone = zone_of_index tol; real; ideal }

let index ?solver ?ideal_method ?real subsystem p =
  let meth =
    match ideal_method with Some m -> m | None -> default_method subsystem
  in
  let real = match real with Some m -> m | None -> Mms.solve ?solver p in
  let ideal = Mms.solve ?solver (ideal_params subsystem meth p) in
  of_measures ~ideal_method:meth subsystem ~real ~ideal

let network ?solver ?ideal_method ?real p =
  index ?solver ?ideal_method ?real Network_latency p

let memory ?solver ?real p = index ?solver ?real Memory_latency p

let threads_needed ?solver ?ideal_method ?(target = 0.8) ?(max_threads = 16)
    subsystem p =
  if target <= 0. then invalid_arg "Tolerance.threads_needed: target > 0";
  if max_threads < 1 then
    invalid_arg "Tolerance.threads_needed: max_threads >= 1";
  let rec search n_t =
    if n_t > max_threads then None
    else begin
      let r = index ?solver ?ideal_method subsystem { p with Params.n_t } in
      if r.tol >= target then Some n_t else search (n_t + 1)
    end
  in
  search 1

let zone_to_string = function
  | Tolerated -> "tolerated"
  | Partially_tolerated -> "partially tolerated"
  | Not_tolerated -> "not tolerated"

let subsystem_to_string = function
  | Network_latency -> "network"
  | Memory_latency -> "memory"

let pp_report ppf r =
  Fmt.pf ppf "@[tol_%s = %.4f (U_p %.4f vs ideal %.4f; %s; ideal via %s)@]"
    (subsystem_to_string r.subsystem)
    r.tol r.u_p r.u_p_ideal
    (zone_to_string r.zone)
    (match r.ideal_method with
    | Zero_delay -> "zero delay"
    | Zero_remote -> "p_remote = 0")
