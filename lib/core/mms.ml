open Lattol_topology
open Lattol_queueing

let log_src = Logs.Src.create "lattol.mms" ~doc:"MMS model solver"

module Log = (val Logs.src_log log_src)

type solver = Symmetric_amva | General_amva | Linearizer_amva | Exact_mva

let has_sync_unit p = p.Params.sync_unit > 0.

let stations_per_node p = if has_sync_unit p then 5 else 4

let num_stations p = stations_per_node p * Params.num_processors p

let processor_station p ~node =
  assert (node >= 0 && node < Params.num_processors p);
  node

let memory_station p ~node = Params.num_processors p + node

let inbound_station p ~node = (2 * Params.num_processors p) + node

let outbound_station p ~node = (3 * Params.num_processors p) + node

let sync_station p ~node =
  if not (has_sync_unit p) then
    invalid_arg "Mms.sync_station: this machine has no synchronization unit";
  (4 * Params.num_processors p) + node

let class_visits p ~cls =
  let topo = Params.make_topology p in
  let access = Params.make_access p in
  let n = Params.num_processors p in
  if cls < 0 || cls >= n then invalid_arg "Mms.class_visits: class out of range";
  let v = Array.make (num_stations p) 0. in
  v.(processor_station p ~node:cls) <- 1.;
  for dst = 0 to n - 1 do
    let em = Access.prob access ~src:cls ~dst in
    if em > 0. then begin
      v.(memory_station p ~node:dst) <- em;
      if dst <> cls then begin
        (* With an SU the remote access is injected at the source SU,
           handled at the destination SU, and completed at the source SU. *)
        if has_sync_unit p then begin
          v.(sync_station p ~node:cls) <- v.(sync_station p ~node:cls) +. (2. *. em);
          v.(sync_station p ~node:dst) <- v.(sync_station p ~node:dst) +. em
        end;
        (* Request enters the IN at the source's outbound switch ... *)
        v.(outbound_station p ~node:cls) <-
          v.(outbound_station p ~node:cls) +. em;
        (* ... and the response leaves the remote memory through the
           destination's outbound switch. *)
        v.(outbound_station p ~node:dst) <-
          v.(outbound_station p ~node:dst) +. em;
        (* Inbound switches along both directions of the round trip. *)
        let charge src dst =
          List.iter
            (fun hop ->
              v.(inbound_station p ~node:hop) <-
                v.(inbound_station p ~node:hop) +. em)
            (Topology.route topo ~src ~dst)
        in
        charge cls dst;
        charge dst cls
      end
    end
  done;
  v

let class_service p =
  let n = Params.num_processors p in
  let s = Array.make (num_stations p) 0. in
  for node = 0 to n - 1 do
    s.(processor_station p ~node) <- Params.processor_occupancy p;
    s.(memory_station p ~node) <- p.Params.l_mem;
    s.(inbound_station p ~node) <- p.Params.s_switch;
    s.(outbound_station p ~node) <- p.Params.s_switch;
    if has_sync_unit p then s.(sync_station p ~node) <- p.Params.sync_unit
  done;
  s

let memory_kind p =
  if p.Params.mem_ports > 1 then Network.Multi_server p.Params.mem_ports
  else Network.Queueing

let switch_kind p =
  if p.Params.switch_pipeline > 1 then
    Network.Multi_server p.Params.switch_pipeline
  else Network.Queueing

let station_spec p =
  let n = Params.num_processors p in
  Array.init (num_stations p) (fun m ->
      let node = m mod n in
      match m / n with
      | 0 -> (Printf.sprintf "proc%d" node, Network.Queueing)
      | 1 -> (Printf.sprintf "mem%d" node, memory_kind p)
      | 2 -> (Printf.sprintf "in%d" node, switch_kind p)
      | 3 -> (Printf.sprintf "out%d" node, switch_kind p)
      | _ -> (Printf.sprintf "su%d" node, Network.Queueing))

let build_network p =
  let n = Params.num_processors p in
  let service = class_service p in
  let classes =
    Array.init n (fun cls ->
        {
          Network.class_name = Printf.sprintf "pe%d" cls;
          population = p.Params.n_t;
          visits = class_visits p ~cls;
          service = Array.copy service;
        })
  in
  Network.make ~stations:(station_spec p) ~classes

(* Torus translation: the station of the same type whose node is
   [node - cls] in torus coordinates.  SPMD symmetry means class [cls]
   sees station [m] exactly as class 0 sees [translate p topo m cls]. *)
let translate p topo m cls =
  let n = Params.num_processors p in
  let kind = m / n and node = m mod n in
  (kind * n) + Topology.subtract topo node ~by:cls

let solve_symmetric ?(tolerance = 1e-10) ?(max_iterations = 100_000)
    ?(damping = 0.) ?on_sweep p =
  if damping < 0. || damping >= 1. then
    invalid_arg "Mms.solve_symmetric: damping in [0, 1)";
  let n = Params.num_processors p in
  let nst = num_stations p in
  let visits = class_visits p ~cls:0 in
  let service = class_service p in
  let pop = float_of_int p.Params.n_t in
  let q = Array.make nst 0. in
  let visited = ref 0 in
  Array.iter (fun v -> if v > 0. then incr visited) visits;
  Array.iteri
    (fun m v -> if v > 0. then q.(m) <- pop /. float_of_int !visited)
    visits;
  let w = Array.make nst 0. in
  let residence0 = Array.make nst 0. in
  let lambda = ref 0. in
  let iterations = ref 0 in
  let converged = ref false in
  let stopped = ref false in
  (* Per-type totals: by vertex transitivity the all-class queue at every
     station of a type equals the sum of class-0 queues over that type. *)
  let num_types = stations_per_node p in
  let type_total = Array.make num_types 0. in
  while (not !converged) && (not !stopped) && !iterations < max_iterations do
    incr iterations;
    Array.fill type_total 0 num_types 0.;
    Array.iteri (fun m qm -> type_total.(m / n) <- type_total.(m / n) +. qm) q;
    let cycle = ref 0. in
    for m = 0 to nst - 1 do
      if visits.(m) > 0. then begin
        let seen = type_total.(m / n) -. (q.(m) /. pop) in
        (* Memory and switch stations may be multiported/pipelined; use the
           same conditional-wait form as the multi-class AMVA solver. *)
        let ports =
          match m / n with
          | 1 -> p.Params.mem_ports
          | 2 | 3 -> p.Params.switch_pipeline
          | _ -> 1
        in
        if ports = 1 then w.(m) <- service.(m) *. (1. +. seen)
        else begin
          let cf = float_of_int ports in
          let excess = Float.max 0. (seen -. (cf -. 1.)) in
          w.(m) <- service.(m) +. (service.(m) /. cf *. excess)
        end;
        residence0.(m) <- visits.(m) *. w.(m);
        cycle := !cycle +. residence0.(m)
      end
    done;
    if !cycle <= 0. then begin
      (* All service demands are zero: no fixed point exists (pop / 0). *)
      Log.warn (fun m ->
          m "zero cycle demand at iteration %d; throughput forced to 0"
            !iterations);
      lambda := 0.;
      stopped := true
    end
    else begin
      lambda := pop /. !cycle;
      let max_delta = ref 0. in
      for m = 0 to nst - 1 do
        if visits.(m) > 0. then begin
          let updated =
            (damping *. q.(m)) +. ((1. -. damping) *. (!lambda *. residence0.(m)))
          in
          let delta = abs_float (updated -. q.(m)) in
          (* NaN-catching accumulation; see the matching comment in Amva. *)
          if not (delta <= !max_delta) then max_delta := delta;
          q.(m) <- updated
        end
      done;
      if not (Float.is_finite !max_delta) then begin
        Log.warn (fun m ->
            m "non-finite residual %g at iteration %d; aborting" !max_delta
              !iterations);
        stopped := true
      end
      else if !max_delta < tolerance then converged := true
      else
        match on_sweep with
        | None -> ()
        | Some f -> (
          match f ~iteration:!iterations ~residual:!max_delta with
          | Amva.Continue -> ()
          | Amva.Abort -> stopped := true)
    end
  done;
  if !converged then
    Log.debug (fun m ->
        m "symmetric fixed point in %d iterations (P = %d)" !iterations n)
  else if not !stopped then
    Log.warn (fun m ->
        m "symmetric solver hit the %d-iteration cap" max_iterations);
  (* Expand the symmetric fixed point into a full multi-class solution. *)
  let topo = Params.make_topology p in
  let network = build_network p in
  let throughput = Array.make n !lambda in
  let residence =
    Array.init n (fun cls ->
        Array.init nst (fun m -> residence0.(translate p topo m cls)))
  in
  let queue =
    Array.init n (fun cls ->
        Array.init nst (fun m -> q.(translate p topo m cls)))
  in
  {
    Solution.network;
    throughput;
    residence;
    queue;
    iterations = !iterations;
    converged = !converged;
  }

let symmetric_applicable p =
  Access.is_translation_invariant (Params.make_access p)

let solver_label = function
  | Symmetric_amva -> "symmetric"
  | General_amva -> "amva"
  | Linearizer_amva -> "linearizer"
  | Exact_mva -> "exact"

let default_solver p =
  if symmetric_applicable p then Symmetric_amva else General_amva

let solve_network ?solver ?tolerance ?max_iterations ?damping ?on_sweep p =
  let solver =
    match solver with
    | Some s -> s
    | None -> if symmetric_applicable p then Symmetric_amva else General_amva
  in
  (* Periodic sweep summaries at debug verbosity (-v -v on the CLI),
     composed with whatever observer the caller installed. *)
  let on_sweep =
    Some
      (fun ~iteration ~residual ->
        if iteration mod 200 = 0 then
          Log.debug (fun m ->
              m "%s sweep %d: residual %.3g" (solver_label solver) iteration
                residual);
        match on_sweep with
        | None -> Amva.Continue
        | Some f -> f ~iteration ~residual)
  in
  let amva_options =
    {
      Amva.tolerance =
        Option.value tolerance ~default:Amva.default_options.Amva.tolerance;
      max_iterations =
        Option.value max_iterations
          ~default:Amva.default_options.Amva.max_iterations;
      damping = Option.value damping ~default:Amva.default_options.Amva.damping;
      on_sweep;
    }
  in
  let solution =
    match solver with
    | Symmetric_amva ->
      if not (symmetric_applicable p) then
        invalid_arg
          "Mms.solve_network: symmetric solver needs a torus with a \
           translation-invariant access pattern";
      solve_symmetric ?tolerance ?max_iterations ?damping ?on_sweep p
    | General_amva -> Amva.solve ~options:amva_options (build_network p)
    | Linearizer_amva ->
      Linearizer.solve ~options:amva_options (build_network p)
    | Exact_mva -> Mva.solve (build_network p)
  in
  Log.debug (fun m ->
      m "%s solver %s in %d sweeps" (solver_label solver)
        (if solution.Solution.converged then "converged"
         else "did not converge")
        solution.Solution.iterations);
  solution

let measures_of_solution p solution =
  let n = Params.num_processors p in
  let access = Params.make_access p in
  (* Per-class, per-range residence sums (memory = stations [n, 2n),
     switches = [2n, 4n)). *)
  let sum_range cls lo hi =
    let acc = ref 0. in
    for m = lo to hi - 1 do
      acc := !acc +. solution.Solution.residence.(cls).(m)
    done;
    !acc
  in
  (* With a translation-invariant pattern every class is identical and
     class 0 is exactly representative; otherwise average over classes,
     weighting per-access quantities by class rates. *)
  let classes =
    if Access.is_translation_invariant access then [ 0 ]
    else List.init n Fun.id
  in
  let count = float_of_int (List.length classes) in
  let lambda_sum = ref 0. in
  let remote_rate_sum = ref 0. in
  let mem_time_rate = ref 0. in
  let switch_time_rate = ref 0. in
  let su_time_rate = ref 0. in
  let cycle_sum = ref 0. in
  List.iter
    (fun cls ->
      let lam = solution.Solution.throughput.(cls) in
      lambda_sum := !lambda_sum +. lam;
      remote_rate_sum :=
        !remote_rate_sum +. (lam *. Access.remote_fraction access ~src:cls);
      mem_time_rate := !mem_time_rate +. (lam *. sum_range cls n (2 * n));
      switch_time_rate :=
        !switch_time_rate +. (lam *. sum_range cls (2 * n) (4 * n));
      if has_sync_unit p then
        su_time_rate := !su_time_rate +. (lam *. sum_range cls (4 * n) (5 * n));
      cycle_sum := !cycle_sum +. Solution.cycle_time solution ~cls)
    classes;
  let lambda = !lambda_sum /. count in
  let lambda_net = !remote_rate_sum /. count in
  let s_obs =
    if Float.equal !remote_rate_sum 0. then nan
    else !switch_time_rate /. (2. *. !remote_rate_sum)
  in
  let l_obs = if Float.equal !lambda_sum 0. then 0. else !mem_time_rate /. !lambda_sum in
  let avg_station_stat f offset =
    if List.compare_length_with classes 1 = 0 then f (offset 0)
    else begin
      let acc = ref 0. in
      for node = 0 to n - 1 do
        acc := !acc +. f (offset node)
      done;
      !acc /. float_of_int n
    end
  in
  let queue_network = ref 0. in
  List.iter
    (fun cls ->
      for m = 2 * n to (4 * n) - 1 do
        queue_network := !queue_network +. solution.Solution.queue.(cls).(m)
      done)
    classes;
  {
    Measures.u_p = lambda *. Params.processor_occupancy p;
    lambda;
    lambda_net;
    s_obs;
    l_obs;
    cycle_time = !cycle_sum /. count;
    util_memory =
      avg_station_stat
        (fun st -> Solution.utilization solution ~station:st)
        (fun node -> memory_station p ~node);
    util_switch_in =
      avg_station_stat
        (fun st -> Solution.utilization solution ~station:st)
        (fun node -> inbound_station p ~node);
    util_switch_out =
      avg_station_stat
        (fun st -> Solution.utilization solution ~station:st)
        (fun node -> outbound_station p ~node);
    util_sync =
      (if has_sync_unit p then
         avg_station_stat
           (fun st -> Solution.utilization solution ~station:st)
           (fun node -> sync_station p ~node)
       else 0.);
    su_obs =
      (if not (has_sync_unit p) then 0.
       else if Float.equal !remote_rate_sum 0. then nan
       else !su_time_rate /. !remote_rate_sum);
    queue_processor =
      (let acc = ref 0. in
       List.iter
         (fun cls ->
           acc :=
             !acc +. solution.Solution.queue.(cls).(processor_station p ~node:cls))
         classes;
       !acc /. count);
    queue_memory =
      avg_station_stat
        (fun st -> Solution.queue_total solution ~station:st)
        (fun node -> memory_station p ~node);
    queue_network = !queue_network /. count;
    iterations = solution.Solution.iterations;
    converged = solution.Solution.converged;
  }

let zero_measures =
  {
    Measures.u_p = 0.;
    lambda = 0.;
    lambda_net = 0.;
    s_obs = nan;
    l_obs = 0.;
    cycle_time = 0.;
    util_memory = 0.;
    util_switch_in = 0.;
    util_switch_out = 0.;
    util_sync = 0.;
    su_obs = 0.;
    queue_processor = 0.;
    queue_memory = 0.;
    queue_network = 0.;
    iterations = 0;
    converged = true;
  }

let solve ?solver ?tolerance ?max_iterations ?damping ?on_sweep p =
  let p = Params.validate_exn p in
  if p.Params.n_t = 0 then zero_measures
  else
    measures_of_solution p
      (solve_network ?solver ?tolerance ?max_iterations ?damping ?on_sweep p)
