type point = {
  n_t : int;
  runlength : float;
  work : float;
  measures : Measures.t;
  tol_network : float;
  tol_memory : float;
}

let evaluate ?solver ?ideal_method base ~n_t ~runlength =
  if n_t < 1 then invalid_arg "Partitioning.evaluate: n_t >= 1";
  if runlength <= 0. then invalid_arg "Partitioning.evaluate: runlength > 0";
  let p = { base with Params.n_t; runlength } in
  let net = Tolerance.network ?solver ?ideal_method p in
  let mem = Tolerance.memory ?solver p in
  {
    n_t;
    runlength;
    work = float_of_int n_t *. runlength;
    measures = net.Tolerance.real;
    tol_network = net.Tolerance.tol;
    tol_memory = mem.Tolerance.tol;
  }

let sweep ?solver ?ideal_method base ~work ~n_ts =
  if work <= 0. then invalid_arg "Partitioning.sweep: work > 0";
  List.map
    (fun n_t ->
      evaluate ?solver ?ideal_method base ~n_t
        ~runlength:(work /. float_of_int n_t))
    n_ts

let best = function
  | [] -> invalid_arg "Partitioning.best: empty sweep"
  | first :: rest ->
    List.fold_left
      (fun acc p ->
        if
          p.measures.Measures.u_p > acc.measures.Measures.u_p
          || (Float.equal p.measures.Measures.u_p acc.measures.Measures.u_p
              && p.n_t < acc.n_t)
        then p
        else acc)
      first rest

let pp_point ppf p =
  Fmt.pf ppf
    "@[n_t=%2d R=%6.3g (work %g): U_p=%.4f tol_net=%.4f tol_mem=%.4f \
     S_obs=%.2f L_obs=%.2f@]"
    p.n_t p.runlength p.work p.measures.Measures.u_p p.tol_network
    p.tol_memory p.measures.Measures.s_obs p.measures.Measures.l_obs
