open Lattol_topology

type t = {
  topology : Topology.kind;
  k : int;
  dimensions : int;
  n_t : int;
  runlength : float;
  context_switch : float;
  p_remote : float;
  pattern : Access.pattern;
  l_mem : float;
  mem_ports : int;
  s_switch : float;
  switch_pipeline : int;
  sync_unit : float;
}

let default =
  {
    topology = Topology.Torus;
    k = 4;
    dimensions = 2;
    n_t = 8;
    runlength = 1.;
    context_switch = 0.;
    p_remote = 0.2;
    pattern = Access.Geometric 0.5;
    l_mem = 1.;
    mem_ports = 1;
    s_switch = 1.;
    switch_pipeline = 1;
    sync_unit = 0.;
  }

let validate t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if t.k < 1 then err "k = %d must be >= 1" t.k
  else if t.dimensions < 1 then err "dimensions = %d must be >= 1" t.dimensions
  else if t.n_t < 0 then err "n_t = %d must be >= 0" t.n_t
  else if t.runlength <= 0. then err "runlength %g must be > 0" t.runlength
  else if t.context_switch < 0. then
    err "context switch time %g must be >= 0" t.context_switch
  else if t.p_remote < 0. || t.p_remote > 1. then
    err "p_remote %g must lie in [0, 1]" t.p_remote
  else if t.l_mem < 0. then err "memory latency %g must be >= 0" t.l_mem
  else if t.mem_ports < 1 then err "mem_ports %d must be >= 1" t.mem_ports
  else if t.s_switch < 0. then err "switch delay %g must be >= 0" t.s_switch
  else if t.switch_pipeline < 1 then
    err "switch pipeline depth %d must be >= 1" t.switch_pipeline
  else if t.sync_unit < 0. then err "SU service %g must be >= 0" t.sync_unit
  else if t.p_remote > 0. && t.k = 1 then
    err "p_remote > 0 requires more than one node (k >= 2)"
  else
    match t.pattern with
    | Access.Geometric p_sw when p_sw <= 0. || p_sw >= 1. ->
      err "p_sw %g must lie in (0, 1)" p_sw
    | Access.Geometric _ | Access.Uniform -> Ok t
    | Access.Explicit _ -> (
      (* The matrix defines the remote fraction; normalize the record so
         downstream consumers can keep reading [p_remote]. *)
      let topo =
        Topology.create_nd t.topology
          ~dims:(List.init t.dimensions (fun _ -> t.k))
      in
      match Access.create topo t.pattern ~p_remote:t.p_remote with
      | access -> Ok { t with p_remote = Access.p_remote access }
      | exception Invalid_argument msg -> Error msg)

let validate_exn t =
  match validate t with Ok t -> t | Error msg -> invalid_arg ("Params: " ^ msg)

let num_processors t =
  let acc = ref 1 in
  for _ = 1 to t.dimensions do
    acc := !acc * t.k
  done;
  !acc

let processor_occupancy t = t.runlength +. t.context_switch

let make_topology t =
  Topology.create_nd t.topology ~dims:(List.init t.dimensions (fun _ -> t.k))

let make_access t = Access.create (make_topology t) t.pattern ~p_remote:t.p_remote

let d_avg t =
  if Float.equal t.p_remote 0. then nan
  else Access.average_distance (make_access t) ~src:0

let pp ppf t =
  let pattern =
    match t.pattern with
    | Access.Geometric p_sw -> Printf.sprintf "geometric(p_sw=%g)" p_sw
    | Access.Uniform -> "uniform"
    | Access.Explicit _ -> "explicit"
  in
  let shape =
    String.concat "x" (List.init t.dimensions (fun _ -> string_of_int t.k))
  in
  Fmt.pf ppf
    "@[MMS %s %s: n_t=%d R=%g C=%g p_remote=%g %s L=%g%s S=%g@]"
    (match t.topology with Topology.Torus -> "torus" | Topology.Mesh -> "mesh")
    shape t.n_t t.runlength t.context_switch t.p_remote pattern t.l_mem
    (if t.mem_ports > 1 then Printf.sprintf " (x%d ports)" t.mem_ports else "")
    t.s_switch;
  if t.switch_pipeline > 1 then Fmt.pf ppf " (pipe %d)" t.switch_pipeline;
  if t.sync_unit > 0. then Fmt.pf ppf " SU=%g" t.sync_unit
