open Lattol_topology

type derivative = {
  param : string;
  value : float;
  gradient : float;
  elasticity : float;
}

let u_p ?solver p = (Mms.solve ?solver (Params.validate_exn p)).Measures.u_p

(* Central difference over [lo, hi] around the operating value. *)
let derivative_of ?solver ~param ~value ~lo ~hi ~apply p =
  if hi <= lo then None
  else begin
    let u_hi = u_p ?solver (apply hi) and u_lo = u_p ?solver (apply lo) in
    let gradient = (u_hi -. u_lo) /. (hi -. lo) in
    let u0 = u_p ?solver p in
    let elasticity = if Float.equal u0 0. || Float.equal value 0. then 0. else gradient *. value /. u0 in
    Some { param; value; gradient; elasticity }
  end

let analyze ?solver ?(rel_step = 0.05) p =
  let p = Params.validate_exn p in
  if rel_step <= 0. || rel_step >= 0.5 then
    invalid_arg "Sensitivity.analyze: rel_step in (0, 0.5)";
  let continuous param value ?(min_v = 0.) ?(max_v = infinity) apply =
    let span = Float.max (abs_float value *. rel_step) 1e-3 in
    let lo = Float.max min_v (value -. span) in
    let hi = Float.min max_v (value +. span) in
    derivative_of ?solver ~param ~value ~lo ~hi ~apply p
  in
  let results =
    [
      continuous "runlength" p.Params.runlength ~min_v:1e-6 (fun v ->
          { p with Params.runlength = v });
      continuous "p_remote" p.Params.p_remote ~max_v:1. (fun v ->
          { p with Params.p_remote = v });
      continuous "l_mem" p.Params.l_mem (fun v -> { p with Params.l_mem = v });
      continuous "s_switch" p.Params.s_switch (fun v ->
          { p with Params.s_switch = v });
      (match p.Params.pattern with
      | Access.Geometric p_sw ->
        continuous "p_sw" p_sw ~min_v:1e-3 ~max_v:0.999 (fun v ->
            { p with Params.pattern = Access.Geometric v })
      | Access.Uniform | Access.Explicit _ -> None);
      (* Threads are discrete: difference over one thread each way. *)
      (if p.Params.n_t >= 2 then
         derivative_of ?solver ~param:"n_t"
           ~value:(float_of_int p.Params.n_t)
           ~lo:(float_of_int (p.Params.n_t - 1))
           ~hi:(float_of_int (p.Params.n_t + 1))
           ~apply:(fun v -> { p with Params.n_t = int_of_float v })
           p
       else None);
    ]
  in
  List.filter_map Fun.id results

let ranked ?solver ?rel_step p =
  List.sort
    (fun a b -> Float.compare (abs_float b.elasticity) (abs_float a.elasticity))
    (analyze ?solver ?rel_step p)

let pp_derivative ppf d =
  Fmt.pf ppf "@[%-10s = %-8g dU_p/dx = %+.4f  elasticity = %+.4f@]" d.param
    d.value d.gradient d.elasticity
