type t = {
  d_avg : float;
  lambda_net_saturation : float;
  p_remote_critical : float;
  p_remote_saturation : float;
  memory_demand : float;
  memory_bound_u_p : float;
}

let clamp01 x = Float.max 0. (Float.min 1. x)

(* d_avg is defined by the access pattern even when the experiment sweeps
   p_remote; evaluate it at a nonzero remote fraction. *)
let pattern_d_avg p =
  let p = { p with Params.p_remote = 1. } in
  if Params.num_processors p < 2 then nan else Params.d_avg p

let analyze p =
  let p = Params.validate_exn p in
  let d_avg = pattern_d_avg p in
  let s = p.Params.s_switch in
  let l = p.Params.l_mem in
  let r = Params.processor_occupancy p in
  let depth = float_of_int p.Params.switch_pipeline in
  let lambda_sat =
    if Float.equal s 0. || Float.is_nan d_avg || Float.equal d_avg 0. then infinity
    else depth /. (2. *. d_avg *. s)
  in
  let net_response_rate =
    if Float.equal s 0. || Float.is_nan d_avg then infinity
    else depth /. (2. *. (d_avg +. 1.) *. s)
  in
  let p_critical =
    if net_response_rate = infinity then 1.
    else if Float.equal l 0. then 1.
    else clamp01 (1. +. (l /. (2. *. (d_avg +. 1.) *. s)) -. (l /. r))
  in
  {
    d_avg;
    lambda_net_saturation = lambda_sat;
    p_remote_critical = p_critical;
    p_remote_saturation = clamp01 (r *. lambda_sat);
    memory_demand = l /. r;
    memory_bound_u_p = (if Float.equal l 0. then 1. else Float.min 1. (r /. l));
  }

type open_view = {
  lambda : float;
  stable : bool;
  util_memory : float;
  util_switch_in : float;
  util_switch_out : float;
  l_obs_open : float;
  s_obs_open : float;
}

let open_view p ~lambda =
  let p = Params.validate_exn p in
  if lambda < 0. then invalid_arg "Bottleneck.open_view: lambda >= 0";
  let d_avg =
    let d = pattern_d_avg p in
    if Float.is_nan d then 0. else d
  in
  let pr = p.Params.p_remote in
  (* Per-station aggregate arrival rates from the visit-ratio identities:
     every memory module serves rate lambda; an outbound switch carries the
     request and response legs (2 p_remote); an inbound switch the 2 d_avg
     transit visits. *)
  let station name servers service_time =
    { Lattol_queueing.Jackson.name; servers; service_time }
  in
  let zero3 = [| [| 0.; 0.; 0. |]; [| 0.; 0.; 0. |]; [| 0.; 0.; 0. |] |] in
  (* Degenerate zero-service stations (ideal subsystems) are excluded from
     the Jackson model and reported as zero-latency. *)
  let has_mem = p.Params.l_mem > 0. and has_sw = p.Params.s_switch > 0. in
  let mem_service = if has_mem then p.Params.l_mem else 1. in
  let sw_service = if has_sw then p.Params.s_switch else 1. in
  let net =
    Lattol_queueing.Jackson.make
      ~stations:
        [|
          station "memory" p.Params.mem_ports mem_service;
          station "inbound" p.Params.switch_pipeline sw_service;
          station "outbound" p.Params.switch_pipeline sw_service;
        |]
      ~arrivals:
        [|
          (if has_mem then lambda else 0.);
          (if has_sw then 2. *. d_avg *. pr *. lambda else 0.);
          (if has_sw then 2. *. pr *. lambda else 0.);
        |]
      ~routing:zero3
  in
  let module J = Lattol_queueing.Jackson in
  let util st = J.utilization net ~station:st in
  let resp st = J.mean_response_time net ~station:st in
  let stable = J.is_stable net in
  let l_obs_open = if has_mem then resp 0 else 0. in
  let s_obs_open =
    if not has_sw then 0.
    else if stable then resp 2 +. (d_avg *. resp 1)
    else infinity
  in
  {
    lambda;
    stable;
    util_memory = (if has_mem then util 0 else 0.);
    util_switch_in = (if has_sw then util 1 else 0.);
    util_switch_out = (if has_sw then util 2 else 0.);
    l_obs_open;
    s_obs_open;
  }

let pp_open_view ppf v =
  Fmt.pf ppf
    "@[lambda=%.4f %s util(mem=%.3f in=%.3f out=%.3f) L_open=%.3f S_open=%.3f@]"
    v.lambda
    (if v.stable then "stable" else "UNSTABLE")
    v.util_memory v.util_switch_in v.util_switch_out v.l_obs_open v.s_obs_open

let lambda_net_saturation p = (analyze p).lambda_net_saturation

let p_remote_critical p = (analyze p).p_remote_critical

let pp ppf t =
  Fmt.pf ppf
    "@[d_avg=%.3f lambda_net_sat=%.4f p_remote*: critical=%.3f saturation=%.3f \
     mem demand=%.3f U_p cap=%.3f@]"
    t.d_avg t.lambda_net_saturation t.p_remote_critical t.p_remote_saturation
    t.memory_demand t.memory_bound_u_p
