open Lattol_topology

type kernel =
  | Nearest_neighbour
  | Transpose
  | Reduction
  | Butterfly of int
  | Ring_shift
  | All_to_all

let kernel_to_string = function
  | Nearest_neighbour -> "nearest-neighbour"
  | Transpose -> "transpose"
  | Reduction -> "reduction"
  | Butterfly s -> Printf.sprintf "butterfly(stage %d)" s
  | Ring_shift -> "ring-shift"
  | All_to_all -> "all-to-all"

(* The remote targets (with weights) of one node under a kernel. *)
let remote_targets kernel topo src =
  let p = Topology.num_nodes topo in
  match kernel with
  | Nearest_neighbour ->
    let ns = Topology.neighbours topo src in
    if ns = [] then invalid_arg "Kernels: no neighbours on this topology";
    List.map (fun n -> (n, 1.)) ns
  | Transpose ->
    if Topology.num_dimensions topo <> 2 then
      invalid_arg "Kernels: transpose needs a 2-dimensional machine";
    let x, y = Topology.coords topo src in
    if x = y then [] (* diagonal nodes stay local *)
    else begin
      let partner = Topology.of_coords topo (y, x) in
      [ (partner, 1.) ]
    end
  | Reduction -> if src = 0 then [] else [ (src / 2, 1.) ]
  | Ring_shift -> [ ((src + 1) mod p, 1.) ]
  | Butterfly stage ->
    if stage < 0 then invalid_arg "Kernels: butterfly stage >= 0";
    let partner = src lxor (1 lsl stage) in
    if partner >= p then [] else [ (partner, 1.) ]
  | All_to_all ->
    if p < 2 then invalid_arg "Kernels: all-to-all needs >= 2 nodes";
    List.filter_map
      (fun dst -> if dst = src then None else Some (dst, 1.))
      (List.init p Fun.id)

let matrix kernel topo ~compute =
  if compute < 0. || compute > 1. then
    invalid_arg "Kernels.matrix: compute fraction in [0, 1]";
  let p = Topology.num_nodes topo in
  Array.init p (fun src ->
      let row = Array.make p 0. in
      let targets = remote_targets kernel topo src in
      let total_weight = List.fold_left (fun acc (_, w) -> acc +. w) 0. targets in
      if targets = [] || Float.equal total_weight 0. then begin
        (* This node does not communicate in this kernel: purely local. *)
        row.(src) <- 1.;
        row
      end
      else begin
        row.(src) <- compute;
        List.iter
          (fun (dst, w) ->
            row.(dst) <- row.(dst) +. ((1. -. compute) *. w /. total_weight))
          targets;
        row
      end)

let to_params ?n_t ~base kernel ~compute ~runlength =
  let topo = Params.make_topology base in
  Params.validate_exn
    {
      base with
      Params.n_t = Option.value n_t ~default:base.Params.n_t;
      runlength;
      pattern = Access.Explicit (matrix kernel topo ~compute);
    }

let all ~num_nodes =
  let rec stages s acc =
    if 1 lsl s >= num_nodes then List.rev acc
    else stages (s + 1) (Butterfly s :: acc)
  in
  [ Nearest_neighbour; Transpose; Reduction; Ring_shift; All_to_all ]
  @ stages 0 []

let compare_kernels ?n_t ~base ~compute ~runlength kernels =
  List.map
    (fun kernel ->
      let p = to_params ?n_t ~base kernel ~compute ~runlength in
      let report = Tolerance.network p in
      (kernel, report.Tolerance.real, report.Tolerance.tol))
    kernels
