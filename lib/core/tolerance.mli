(** The tolerance index — the paper's contribution (Section 4).

    [tol_subsystem = U_p(real) / U_p(ideal subsystem)], where the ideal
    subsystem offers zero delay.  A latency is {e tolerated} when removing
    it entirely would not improve processor utilization.

    The paper describes two ways to obtain the ideal system and we support
    both:
    - {!Zero_delay}: set the subsystem's service time to zero ([S = 0] for
      the network, [L = 0] for memory).  Section 7's comparisons against an
      "ideal (very fast) network" use this, and it is the method under
      which locality can push [tol_network] {e above} 1 (finite switch
      delays pace remote traffic and relieve memory contention).
    - {!Zero_remote}: set [p_remote = 0] so no access touches the network.
      This is the method the paper prefers for measurements on real
      machines, and the one its Figures 4-6 tolerance numbers follow; it
      only applies to the network subsystem. *)

type subsystem =
  | Network_latency
  | Memory_latency

type ideal_method =
  | Zero_delay
  | Zero_remote

type zone =
  | Tolerated            (** [tol >= 0.8] *)
  | Partially_tolerated  (** [0.5 <= tol < 0.8] *)
  | Not_tolerated        (** [tol < 0.5] *)

type report = {
  subsystem : subsystem;
  ideal_method : ideal_method;
  tol : float;            (** the tolerance index *)
  u_p : float;            (** utilization of the real system *)
  u_p_ideal : float;      (** utilization of the ideal system *)
  zone : zone;
  real : Measures.t;
  ideal : Measures.t;
}

val zone_of_index : float -> zone
(** Zone classification with the paper's 0.8 / 0.5 boundaries. *)

val ideal_params : subsystem -> ideal_method -> Params.t -> Params.t
(** Parameters of the corresponding ideal system.  Raises
    [Invalid_argument] for [Memory_latency, Zero_remote] (removing remote
    accesses does not idealize the memory). *)

val of_measures :
  ?ideal_method:ideal_method -> subsystem -> real:Measures.t ->
  ideal:Measures.t -> report
(** Form the index from measures that are already in hand — the real and
    ideal systems' solutions, however they were obtained (a shared solve, a
    cache hit, a simulation).  No solver runs.  [ideal_method] is recorded
    in the report only; it defaults as in {!index}. *)

val index :
  ?solver:Mms.solver -> ?ideal_method:ideal_method -> ?real:Measures.t ->
  subsystem -> Params.t -> report
(** Solve both systems and form the index.  [ideal_method] defaults to
    [Zero_remote] for the network (the paper's preference) and
    [Zero_delay] for memory.  [real], when given, supplies the real
    system's measures so only the ideal system is solved — callers that
    already solved [p] (a sweep point, say) avoid the redundant solve. *)

val network :
  ?solver:Mms.solver -> ?ideal_method:ideal_method -> ?real:Measures.t ->
  Params.t -> report
(** [index Network_latency]. *)

val memory : ?solver:Mms.solver -> ?real:Measures.t -> Params.t -> report
(** [index Memory_latency]. *)

val threads_needed :
  ?solver:Mms.solver -> ?ideal_method:ideal_method -> ?target:float ->
  ?max_threads:int -> subsystem -> Params.t -> int option
(** Smallest [n_t <= max_threads] (default 16) whose tolerance index
    reaches [target] (default 0.8, the paper's "tolerated" boundary);
    [None] if no thread count up to the cap suffices.  The paper's
    observation that "the n_t to tolerate the network latency does not
    change with the size of the system" is this function swept over [k]. *)

val pp_report : Format.formatter -> report -> unit

val zone_to_string : zone -> string
