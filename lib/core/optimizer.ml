type upgrade = {
  description : string;
  cost : float;
  apply : Params.t -> Params.t;
}

let standard_upgrades () =
  [
    {
      description = "memory port";
      cost = 2.;
      apply = (fun p -> { p with Params.mem_ports = p.Params.mem_ports + 1 });
    };
    {
      description = "switch pipeline stage";
      cost = 3.;
      apply =
        (fun p ->
          { p with Params.switch_pipeline = p.Params.switch_pipeline + 1 });
    };
    {
      description = "faster switches (S/2)";
      cost = 4.;
      apply = (fun p -> { p with Params.s_switch = p.Params.s_switch /. 2. });
    };
    {
      description = "faster memory (L/2)";
      cost = 4.;
      apply = (fun p -> { p with Params.l_mem = p.Params.l_mem /. 2. });
    };
    {
      description = "EARTH sync unit";
      cost = 2.;
      apply =
        (fun p ->
          if p.Params.sync_unit > 0. then p
          else { p with Params.sync_unit = p.Params.s_switch /. 2. });
    };
  ]

type configuration = {
  params : Params.t;
  applied : string list;
  total_cost : float;
  u_p : float;
  tol_network : float;
  tol_memory : float;
}

let max_repeat = 3

let search ?solver ?(max_configurations = 2000) ~base ~budget upgrades =
  if budget < 0. then invalid_arg "Optimizer.search: budget >= 0";
  List.iter
    (fun u ->
      if u.cost <= 0. then
        invalid_arg "Optimizer.search: upgrade costs must be positive")
    upgrades;
  let base = Params.validate_exn base in
  (* Enumerate multisets of upgrades within the budget, depth-first over
     the catalogue with a per-upgrade repetition cap. *)
  let configurations = ref [] in
  let count = ref 0 in
  let rec enumerate remaining chosen spent params =
    incr count;
    if !count > max_configurations then
      Format.kasprintf invalid_arg
        "Optimizer.search: more than %d configurations; tighten the budget"
        max_configurations;
    configurations := (params, List.rev chosen, spent) :: !configurations;
    match remaining with
    | [] -> ()
    | u :: rest ->
      (* skip this upgrade entirely *)
      enumerate rest chosen spent params;
      (* or take it 1..max_repeat times *)
      let rec take k spent params chosen =
        if k > max_repeat then ()
        else begin
          let spent = spent +. u.cost in
          if spent <= budget then begin
            let params = u.apply params in
            match Params.validate params with
            | Error _ -> ()
            | Ok params ->
              let chosen = u.description :: chosen in
              enumerate rest chosen spent params;
              take (k + 1) spent params chosen
          end
        end
      in
      take 1 spent params chosen
  in
  enumerate upgrades [] 0. base;
  (* Deduplicate identical parameter records (different orders of the same
     multiset produce one entry each already; applying "SU" twice is a
     no-op, so filter duplicates). *)
  let seen = Hashtbl.create 64 in
  let unique =
    List.filter
      (fun (params, _, _) ->
        if Hashtbl.mem seen params then false
        else begin
          Hashtbl.replace seen params ();
          true
        end)
      !configurations
  in
  let solved =
    List.map
      (fun (params, applied, total_cost) ->
        let net = Tolerance.network ?solver params in
        let mem = Tolerance.memory ?solver params in
        {
          params;
          applied;
          total_cost;
          u_p = net.Tolerance.real.Measures.u_p;
          tol_network = net.Tolerance.tol;
          tol_memory = mem.Tolerance.tol;
        })
      unique
  in
  List.sort
    (fun a b ->
      match Float.compare b.u_p a.u_p with
      | 0 -> compare a.total_cost b.total_cost
      | c -> c)
    solved

let best ?solver ~base ~budget upgrades =
  match search ?solver ~base ~budget upgrades with
  | best :: _ -> best
  | [] -> assert false (* the base configuration is always present *)

let pp_configuration ppf c =
  Fmt.pf ppf "@[U_p=%.4f cost=%g tol(net %.3f, mem %.3f): %s@]" c.u_p
    c.total_cost c.tol_network c.tol_memory
    (if c.applied = [] then "(baseline)" else String.concat " + " c.applied)
