(** The closed queueing network model of the multithreaded multiprocessor
    system (Figure 2 of the paper) and its solvers.

    Each processing element contributes four stations — processor, memory
    module, inbound switch, outbound switch — and each processor's [n_t]
    threads form one customer class.  A thread cycles as: execute at its
    processor (service [R + C]), issue a memory access that visits either
    the local memory or, via outbound switch / intermediate inbound switches
    / destination memory / return path, a remote one, then becomes ready
    again.

    Visit ratios per cycle of a class-[i] thread (paper's notation):
    - memory [j]: [em_{i,j}] = the access-pattern probability;
    - outbound switch [j]: [p_remote] at [j = i] (requests entering the IN)
      and [em_{i,j}] elsewhere (responses leaving memory [j]);
    - inbound switch [j]: the probability mass of request routes [i -> d]
      and response routes [d -> i] that pass through node [j] (dimension-
      order routing; a route includes its destination, not its source).

    A round trip at distance [h] therefore uses [2(h+1)] switch services,
    matching the paper's bottleneck analysis. *)

open Lattol_queueing

type solver =
  | Symmetric_amva
      (** Bard-Schweitzer fixed point specialised to the vertex-transitive
          (SPMD-on-torus) case: O(P) per sweep instead of O(P^3).  Only
          valid on a torus; the default there. *)
  | General_amva  (** the paper's Figure 3 algorithm on the full network *)
  | Linearizer_amva
      (** the Linearizer refinement on the full network: roughly [P + 1]
          times costlier than [General_amva], several times more accurate *)
  | Exact_mva
      (** exact MVA on the full network — exponential in [P * n_t], for
          validation on tiny configurations only *)

val stations_per_node : Params.t -> int
(** 4 (processor, memory, inbound switch, outbound switch), or 5 when the
    machine has a synchronization unit. *)

(* Station indices within the flat station array. *)

val processor_station : Params.t -> node:int -> int
val memory_station : Params.t -> node:int -> int
val inbound_station : Params.t -> node:int -> int
val outbound_station : Params.t -> node:int -> int
val sync_station : Params.t -> node:int -> int
(** Raises [Invalid_argument] when the machine has no SU. *)

val class_visits : Params.t -> cls:int -> float array
(** Per-cycle visit ratios of class [cls] over the [4 P] stations. *)

val class_service : Params.t -> float array
(** Per-visit mean service times over the [4 P] stations (class-
    independent). *)

val build_network : Params.t -> Network.t
(** Full multi-class network ([P] classes, [4 P] stations). *)

val symmetric_applicable : Params.t -> bool
(** Whether {!Symmetric_amva} is valid for these parameters: the access
    pattern must be translation-invariant (SPMD on a torus). *)

val default_solver : Params.t -> solver
(** The solver {!solve} and {!solve_network} pick when none is given:
    {!Symmetric_amva} where applicable, {!General_amva} otherwise. *)

val solver_label : solver -> string
(** Stable identifier ("symmetric", "amva", "linearizer", "exact") — the
    name used by the supervisor's diagnosis and the result cache keys. *)

val solve_network :
  ?solver:solver -> ?tolerance:float -> ?max_iterations:int ->
  ?damping:float ->
  ?on_sweep:(iteration:int -> residual:float -> Lattol_queueing.Amva.progress) ->
  Params.t -> Solution.t
(** Solve with the chosen solver (default [Symmetric_amva] on a torus with
    a translation-invariant pattern, [General_amva] otherwise).  The
    symmetric solver returns a full [Solution.t] with every class filled
    in by translation.  [tolerance] (default 1e-8 general / 1e-10
    symmetric) and [max_iterations] (default 10_000 / 100_000) control the
    fixed-point iteration; hitting the cap is reported through the
    solution's [converged] flag, never an exception.  [damping] (default 0)
    under-relaxes the queue-length updates of the iterative solvers, and
    [on_sweep] observes every sweep's residual (see {!Amva.options}) — the
    hooks the {!Lattol_robust.Supervisor} escalation ladder is built on.
    Non-finite residuals terminate any solver immediately with
    [converged = false]. *)

val solve :
  ?solver:solver -> ?tolerance:float -> ?max_iterations:int ->
  ?damping:float ->
  ?on_sweep:(iteration:int -> residual:float -> Lattol_queueing.Amva.progress) ->
  Params.t -> Measures.t
(** End-to-end: validate parameters, build, solve, extract the paper's
    measures for (the representative) class 0.  [on_sweep] observes every
    fixed-point sweep exactly as in {!solve_network}. *)

val measures_of_solution : Params.t -> Solution.t -> Measures.t
(** Extract {!Measures.t} from a solution of {!build_network}'s layout. *)
