(** Fault plans: failure-repair processes for machine components.

    The paper's model assumes a fault-free machine; a production analysis
    also has to answer "what does latency tolerance look like on a torus
    with a flaky switch plane or a degraded memory bank?".  A fault plan
    describes, per component class, an alternating renewal process:

    - up times are exponential with mean [mtbf];
    - outages are exponential with mean [mttr];
    - during an outage the component serves at [degrade] times its normal
      rate ([0] = completely down, [0.5] = half speed, ...).

    The DES ({!Lattol_sim.Mms_des}) injects these processes exactly, one
    independent process per station.  The STPN and the analytical model use
    the quasi-static approximation {!degrade_params}: a component that is
    up a fraction [A = mtbf / (mtbf + mttr)] of the time and serves at rate
    [degrade] otherwise has long-run average speed [A + (1 - A) degrade],
    i.e. an effective mean service time inflated by {!slowdown}. *)

type process = {
  mtbf : float;    (** mean time between failures (up time), > 0 *)
  mttr : float;    (** mean time to repair (outage length), > 0 *)
  degrade : float;
      (** service-rate multiplier while down, in [[0, 1]]: 0 is a full
          outage, values in (0, 1) model degraded service *)
}

type t = {
  switch : process option;  (** applied to every inbound and outbound switch *)
  memory : process option;  (** applied to every memory module *)
}

val none : t
(** No faults: both components [None]. *)

val active : t -> bool
(** At least one component has a fault process. *)

val process : mtbf:float -> mttr:float -> degrade:float -> process

val validate : t -> (t, string) result
(** Checks [mtbf > 0], [mttr > 0] and [degrade] in [[0, 1]] for every
    present process. *)

val validate_exn : t -> t

val availability : process -> float
(** [mtbf / (mtbf + mttr)], the long-run up fraction. *)

val slowdown : process -> float
(** [1 / (A + (1 - A) degrade)]: the factor by which the component's
    effective mean service time grows under the quasi-static view.
    [infinity] when the component is down forever at [degrade = 0]. *)

val degrade_params : t -> Lattol_core.Params.t -> Lattol_core.Params.t
(** Quasi-static degraded machine: scales [s_switch] and [l_mem] by the
    respective {!slowdown} factors, so the analytical solvers and the STPN
    see the average-rate equivalent of the fault plan. *)

val pp_process : Format.formatter -> process -> unit
val pp : Format.formatter -> t -> unit
