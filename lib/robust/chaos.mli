(** Deterministic fault injection for chaos testing.

    A {!plan} decides, as a pure function of its seed and a task's name,
    which tasks fail and for how many attempts — so an injected failure
    set is reproducible run-to-run and independent of scheduling.  The
    file corruptors simulate the two storage failure modes the
    self-healing cache must survive (bit flips and truncation), and
    {!kill_self} is the unclean death the checkpoint journal must
    survive. *)

exception Injected_fault of string
(** Raised by {!inject}; classified as transient by
    {!Retry.default_classify}, so a bounded retry absorbs it. *)

type plan = {
  fail_rate : float;  (** fraction of tasks affected, in [0, 1] *)
  fail_attempts : int;
      (** an affected task fails this many leading attempts, then
          succeeds — so [retries > fail_attempts] always recovers *)
  delay : float;  (** injected latency (seconds) before every attempt *)
  seed : int;  (** choice of the affected-task subset *)
}

val none : plan
(** No injection: [inject] is a no-op. *)

val plan :
  ?fail_rate:float -> ?fail_attempts:int -> ?delay:float -> ?seed:int ->
  unit -> plan
(** Validating constructor (defaults: rate 0, 1 attempt, no delay, seed
    0).  Raises [Invalid_argument] on a rate outside [0, 1] or negative
    attempts/delay. *)

val active : plan -> bool

val affected : plan -> task:string -> bool
(** Whether this plan ever injects a failure into [task] — deterministic
    in [(seed, task)]. *)

val inject : plan -> task:string -> attempt:int -> unit
(** Sleep [delay], then raise {!Injected_fault} when [task] is affected
    and [attempt <= fail_attempts] (attempts are 1-based). *)

val flip_byte : path:string -> offset:int -> unit
(** XOR one byte of a file with 0xFF in place (simulated bit rot).
    Raises [Invalid_argument] on an empty file or offset out of range. *)

val truncate_file : path:string -> keep:int -> unit
(** Truncate a file to its first [keep] bytes (simulated torn write). *)

val kill_self : unit -> 'a
(** [kill -9] the current process: death with no atexit, no flushing, no
    cleanup — exactly what the journal's fsync discipline must absorb. *)
