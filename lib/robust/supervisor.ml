open Lattol_core
open Lattol_queueing

(* -v diagnostics go through the structured JSONL logger so every line
   carries the causal-trace id of the point being supervised; the
   freeform Logs reporter is no longer used here. *)
module Slog = Lattol_obs.Log
module Tc = Lattol_obs.Trace_ctx

let log_src = "lattol.supervisor"

type abort_reason =
  | Non_finite
  | Stalled
  | Iteration_cap
  | Time_budget
  | Solver_error of string

type attempt = {
  solver : Mms.solver;
  damping : float;
  iteration_budget : int;
  iterations : int;
  residual : float;
  converged : bool;
  reason : abort_reason option;
}

type violation = {
  check : string;
  bound : float;
  actual : float;
}

type diagnosis = {
  attempts : attempt list;
  fallbacks : int;
  violations : violation list;
  elapsed : float;
}

type outcome = Converged | Converged_after_fallback | Failed

let outcome = function
  | Ok (_, d) -> if d.fallbacks = 0 then Converged else Converged_after_fallback
  | Error _ -> Failed

let exit_code = function
  | Converged -> 0
  | Converged_after_fallback -> 3
  | Failed -> 4

let solver_name = function
  | Mms.Symmetric_amva -> "symmetric"
  | Mms.General_amva -> "amva"
  | Mms.Linearizer_amva -> "linearizer"
  | Mms.Exact_mva -> "exact"

let reason_string = function
  | Non_finite -> "non-finite residual"
  | Stalled -> "stalled"
  | Iteration_cap -> "iteration cap"
  | Time_budget -> "time budget"
  | Solver_error msg -> "solver error: " ^ msg

(* ------------------------------------------------------------------ *)
(* Bound cross-check *)

let cross_check ~slack p solution measures =
  let nw = solution.Solution.network in
  let num_cls = Network.num_classes nw in
  let num_st = Network.num_stations nw in
  let violations = ref [] in
  let flag check bound actual =
    if
      Float.is_finite bound
      && (not (Float.is_finite actual)
         || actual > (bound *. (1. +. slack)) +. 1e-9)
    then violations := { check; bound; actual } :: !violations
  in
  (* Per-class asymptotic bounds hold for any feasible multi-class
     solution: a station serves class [c] at most a fraction 1 of the time
     per server, and the cycle time can never undercut the total demand. *)
  for c = 0 to num_cls - 1 do
    if Network.population nw c > 0 then begin
      let d_max = ref 0. in
      for m = 0 to num_st - 1 do
        let d = Network.demand nw ~cls:c ~station:m in
        let effective =
          match Network.station_kind nw m with
          | Network.Delay -> 0.
          | Network.Queueing -> d
          | Network.Multi_server servers -> d /. float_of_int servers
        in
        if effective > !d_max then d_max := effective
      done;
      let x = solution.Solution.throughput.(c) in
      if !d_max > 0. then
        flag
          (Printf.sprintf "throughput(%s) vs 1/D_max" (Network.class_name nw c))
          (1. /. !d_max) x;
      let d_total = Network.total_demand nw ~cls:c in
      if d_total > 0. then
        flag
          (Printf.sprintf "throughput(%s) vs N/D" (Network.class_name nw c))
          (float_of_int (Network.population nw c) /. d_total)
          x
    end
  done;
  (* The paper's closed forms (Eqs. 4 and 5 territory). *)
  let b = Bottleneck.analyze p in
  flag "lambda_net vs Eq.4 saturation" b.Bottleneck.lambda_net_saturation
    measures.Measures.lambda_net;
  if p.Params.l_mem > 0. then
    flag "U_p vs memory bound"
      (Float.min 1.
         (float_of_int p.Params.mem_ports
         *. Params.processor_occupancy p /. p.Params.l_mem))
      measures.Measures.u_p;
  flag "U_p vs 1" 1. measures.Measures.u_p;
  (* Internal consistency of the fixed point itself. *)
  flag "Little's-law residual" 1e-3 (Solution.littles_law_residual solution);
  List.rev !violations

(* ------------------------------------------------------------------ *)
(* The escalation ladder *)

let default_dampings = [ 0.; 0.5; 0.9 ]

let solution_finite solution =
  Array.for_all Float.is_finite solution.Solution.throughput
  && Array.for_all
       (fun row -> Array.for_all Float.is_finite row)
       solution.Solution.queue

let solve ?solvers ?(dampings = default_dampings) ?(tolerance = 1e-8)
    ?(base_iterations = 2_000) ?time_budget ?(stall_window = 1_000)
    ?(slack = 0.02) ?telemetry ?(causal = Tc.disabled) p =
  let tel f = Option.iter f telemetry in
  let trace =
    if Tc.enabled causal then Some (Tc.point_trace_id causal) else None
  in
  let p = Params.validate_exn p in
  if dampings = [] then invalid_arg "Supervisor.solve: dampings is empty";
  List.iter
    (fun d ->
      if d < 0. || d >= 1. || Float.is_nan d then
        invalid_arg "Supervisor.solve: dampings in [0, 1)")
    dampings;
  if base_iterations < 1 then
    invalid_arg "Supervisor.solve: base_iterations >= 1";
  if stall_window < 1 then invalid_arg "Supervisor.solve: stall_window >= 1";
  (match time_budget with
  | Some b when b <= 0. -> invalid_arg "Supervisor.solve: time_budget > 0"
  | Some _ | None -> ());
  let solvers =
    match solvers with
    | Some s when s <> [] -> s
    | Some _ -> invalid_arg "Supervisor.solve: solvers is empty"
    | None ->
      if Mms.symmetric_applicable p then
        [ Mms.Symmetric_amva; Mms.General_amva; Mms.Linearizer_amva ]
      else [ Mms.General_amva; Mms.Linearizer_amva ]
  in
  let t0 = Sys.time () in
  let elapsed () = Sys.time () -. t0 in
  let out_of_time () =
    match time_budget with None -> false | Some b -> elapsed () > b
  in
  if p.Params.n_t = 0 then
    (* No threads: the model is trivially the all-idle machine. *)
    Ok
      ( Mms.solve p,
        { attempts = []; fallbacks = 0; violations = []; elapsed = elapsed () }
      )
  else begin
    let rungs =
      List.concat_map
        (fun solver -> List.map (fun damping -> (solver, damping)) dampings)
        solvers
    in
    let attempts = ref [] in
    let record a = attempts := a :: !attempts in
    let finish_error () =
      Error
        {
          attempts = List.rev !attempts;
          fallbacks = List.length !attempts;
          violations = [];
          elapsed = elapsed ();
        }
    in
    let rec climb index = function
      | [] -> finish_error ()
      | (solver, damping) :: rest ->
        if out_of_time () then begin
          Slog.warnf ?trace ~src:log_src
            "time budget exhausted before rung %d; giving up" (index + 1);
          finish_error ()
        end
        else begin
          let budget = base_iterations * (1 lsl Int.min index 20) in
          Slog.debugf ?trace
            ~fields:
              [
                ("solver", solver_name solver);
                ("damping", string_of_float damping);
                ("budget", string_of_int budget);
              ]
            ~src:log_src "rung %d/%d start" (index + 1)
            (index + 1 + List.length rest);
          (* One causal span per escalation rung, open across the whole
             solve attempt; its outcome lands in the span meta. *)
          let rung_span =
            Tc.start ~cat:"solve"
              ~name:(Printf.sprintf "rung %d" (index + 1))
              causal
          in
          let finish_rung outcome =
            Tc.finish
              ~meta:
                [
                  ("solver", solver_name solver);
                  ("damping", Printf.sprintf "%g" damping);
                  ("budget", string_of_int budget);
                  ("outcome", outcome);
                ]
              rung_span
          in
          tel (fun t ->
              Lattol_obs.Solver_trace.start_attempt t
                ~label:(Printf.sprintf "rung %d" (index + 1))
                ~budget
                ~solver:(solver_name solver) ~damping ());
          let last_residual = ref nan in
          let last_iteration = ref 0 in
          let best_residual = ref infinity in
          let best_iteration = ref 0 in
          let abort = ref None in
          let on_sweep ~iteration ~residual =
            tel (fun t -> Lattol_obs.Solver_trace.record t ~iteration ~residual);
            last_residual := residual;
            (* Linearizer restarts sweep numbering for each inner core;
               reset the stall tracker when the counter rewinds. *)
            if iteration < !last_iteration then begin
              best_residual := infinity;
              best_iteration := iteration
            end;
            last_iteration := iteration;
            if residual < !best_residual *. 0.999 then begin
              best_residual := residual;
              best_iteration := iteration
            end;
            if out_of_time () then begin
              abort := Some Time_budget;
              Amva.Abort
            end
            else if iteration - !best_iteration >= stall_window then begin
              abort := Some Stalled;
              Amva.Abort
            end
            else Amva.Continue
          in
          let outcome =
            match
              Mms.solve_network ~solver ~tolerance ~max_iterations:budget
                ~damping ~on_sweep p
            with
            | solution -> Ok solution
            | exception Invalid_argument msg -> Error (Solver_error msg)
            | exception Failure msg -> Error (Solver_error msg)
          in
          match outcome with
          | Error reason ->
            finish_rung ("raised: " ^ reason_string reason);
            Slog.infof ?trace ~src:log_src "rung %d (%s, damping %g) raised: %s"
              (index + 1) (solver_name solver) damping (reason_string reason);
            tel (fun t ->
                Lattol_obs.Solver_trace.finish_attempt
                  ~reason:(reason_string reason) t ~converged:false
                  ~iterations:0);
            record
              {
                solver;
                damping;
                iteration_budget = budget;
                iterations = 0;
                residual = nan;
                converged = false;
                reason = Some reason;
              };
            climb (index + 1) rest
          | Ok solution ->
            let accepted = solution.Solution.converged && solution_finite solution in
            if accepted then begin
              finish_rung "accepted";
              Slog.debugf ?trace
                ~fields:
                  [ ("iterations", string_of_int solution.Solution.iterations) ]
                ~src:log_src "rung %d accepted: %s converged" (index + 1)
                (solver_name solver);
              tel (fun t ->
                  Lattol_obs.Solver_trace.finish_attempt t ~converged:true
                    ~iterations:solution.Solution.iterations);
              record
                {
                  solver;
                  damping;
                  iteration_budget = budget;
                  iterations = solution.Solution.iterations;
                  residual = !last_residual;
                  converged = true;
                  reason = None;
                };
              let measures = Mms.measures_of_solution p solution in
              let violations = cross_check ~slack p solution measures in
              List.iter
                (fun v ->
                  Slog.warnf ?trace ~src:log_src "bound violation: %s (%g > %g)"
                    v.check v.actual v.bound)
                violations;
              Ok
                ( measures,
                  {
                    attempts = List.rev !attempts;
                    fallbacks = List.length !attempts - 1;
                    violations;
                    elapsed = elapsed ();
                  } )
            end
            else begin
              let reason =
                match !abort with
                | Some r -> r
                | None ->
                  if
                    (not (Float.is_finite !last_residual))
                       && !last_iteration > 0
                    || not (solution_finite solution)
                  then Non_finite
                  else Iteration_cap
              in
              finish_rung ("failed: " ^ reason_string reason);
              Slog.infof ?trace ~src:log_src
                "rung %d (%s, damping %g, budget %d) failed: %s" (index + 1)
                (solver_name solver) damping budget (reason_string reason);
              tel (fun t ->
                  Lattol_obs.Solver_trace.finish_attempt
                    ~reason:(reason_string reason) t ~converged:false
                    ~iterations:solution.Solution.iterations);
              record
                {
                  solver;
                  damping;
                  iteration_budget = budget;
                  iterations = solution.Solution.iterations;
                  residual = !last_residual;
                  converged = false;
                  reason = Some reason;
                };
              climb (index + 1) rest
            end
        end
    in
    climb 0 rungs
  end

(* ------------------------------------------------------------------ *)
(* Pretty printing *)

let pp_attempt ppf a =
  if a.converged then
    Format.fprintf ppf "%s damping=%g budget=%d: converged in %d sweeps"
      (solver_name a.solver) a.damping a.iteration_budget a.iterations
  else
    Format.fprintf ppf "%s damping=%g budget=%d: failed (%s) after %d sweeps"
      (solver_name a.solver) a.damping a.iteration_budget
      (match a.reason with Some r -> reason_string r | None -> "unknown")
      a.iterations

let pp_violation ppf v =
  Format.fprintf ppf "%s: %.6g exceeds bound %.6g" v.check v.actual v.bound

let pp_diagnosis ppf d =
  Format.fprintf ppf "@[<v>supervisor: %d attempt%s, %d fallback%s"
    (List.length d.attempts)
    (if List.length d.attempts = 1 then "" else "s")
    d.fallbacks
    (if d.fallbacks = 1 then "" else "s");
  List.iteri
    (fun i a -> Format.fprintf ppf "@,  #%d %a" (i + 1) pp_attempt a)
    d.attempts;
  let accepted =
    match List.rev d.attempts with
    | a :: _ -> a.converged && a.reason = None
    | [] -> false
  in
  (match d.violations with
  | [] when not accepted ->
    (* No solution survived the ladder, so nothing was cross-checked;
       don't print a reassuring "ok" over a failure. *)
    Format.fprintf ppf "@,bound cross-check: skipped (no accepted solution)"
  | [] -> Format.fprintf ppf "@,bound cross-check: ok"
  | vs ->
    Format.fprintf ppf "@,bound cross-check: %d violation%s" (List.length vs)
      (if List.length vs = 1 then "" else "s");
    List.iter (fun v -> Format.fprintf ppf "@,  ! %a" pp_violation v) vs);
  Format.fprintf ppf "@]"
