(** Resilient solver supervision for the MMS analytical model.

    [Mms.solve_network] reports non-convergence through a flag and happily
    returns NaN-laced iterates; left unchecked, those poison every measure
    and tolerance index computed downstream.  The supervisor wraps the
    solver with an {e escalation ladder}: it watches the fixed-point
    residual of every sweep (through {!Lattol_core.Mms.solve_network}'s
    [on_sweep] hook), aborts attempts that diverge (non-finite residual) or
    stall (no residual improvement over a window), and retries with
    progressively heavier artillery — more damping (0, 0.5, 0.9 by
    default), then the next solver in the chain
    [Symmetric_amva -> General_amva -> Linearizer_amva] — doubling the
    iteration budget at every rung, under an optional overall CPU-time
    budget.

    The accepted solution is cross-checked against solver-free closed
    forms: per-class asymptotic bounds ([X_c <= 1 / D_max,c] and
    [X_c <= N_c / D_c]), the paper's Eq. 4 network ceiling and memory
    bound ({!Lattol_core.Bottleneck}), and the Little's-law residual.
    Violations are flagged in the diagnosis, not turned into failures —
    approximate MVA may legitimately sit a few percent past a bound. *)

open Lattol_core

type abort_reason =
  | Non_finite  (** NaN or infinite residual *)
  | Stalled  (** no residual improvement over [stall_window] sweeps *)
  | Iteration_cap  (** the rung's iteration budget ran out *)
  | Time_budget  (** the overall CPU-time budget ran out *)
  | Solver_error of string  (** the solver raised (message recorded) *)

type attempt = {
  solver : Mms.solver;
  damping : float;
  iteration_budget : int;  (** this rung's [max_iterations] *)
  iterations : int;  (** sweeps actually used *)
  residual : float;
      (** last residual observed before the attempt ended ([nan] if the
          solver converged before the first observation) *)
  converged : bool;
  reason : abort_reason option;  (** [None] iff the attempt was accepted *)
}

type violation = {
  check : string;  (** which closed form was violated *)
  bound : float;
  actual : float;
}

type diagnosis = {
  attempts : attempt list;  (** chronological, accepted attempt last *)
  fallbacks : int;  (** failed attempts before the accepted one *)
  violations : violation list;  (** bound cross-check on the accepted run *)
  elapsed : float;  (** CPU seconds spent across all attempts *)
}

type outcome = Converged | Converged_after_fallback | Failed

val solve :
  ?solvers:Mms.solver list ->
  ?dampings:float list ->
  ?tolerance:float ->
  ?base_iterations:int ->
  ?time_budget:float ->
  ?stall_window:int ->
  ?slack:float ->
  ?telemetry:Lattol_obs.Solver_trace.t ->
  ?causal:Lattol_obs.Trace_ctx.ctx ->
  Params.t ->
  (Measures.t * diagnosis, diagnosis) result
(** Climb the ladder until a solver converges to a finite solution.

    - [solvers] (default [Symmetric_amva; General_amva; Linearizer_amva]
      when the symmetric solver applies, the last two otherwise) is the
      fallback chain; each solver is tried with every damping factor.
    - [dampings] (default [[0.; 0.5; 0.9]]) escalates under-relaxation.
    - [tolerance] (default 1e-8) is the fixed-point tolerance.
    - [base_iterations] (default 2_000) is the first rung's iteration
      budget; every later rung doubles it.
    - [time_budget] (optional, CPU seconds) bounds the whole ladder;
      attempts in flight are aborted and remaining rungs skipped once it
      is exhausted.
    - [stall_window] (default 1_000): abort an attempt whose best residual
      has not improved for this many sweeps.
    - [slack] (default 0.02) is the relative headroom allowed before a
      bound cross-check counts as a violation.
    - [telemetry] (optional) records every rung as a
      {!Lattol_obs.Solver_trace} attempt, with the per-sweep residual
      trajectory sampled through the same [on_sweep] hook the ladder
      watches.
    - [causal] (default {!Lattol_obs.Trace_ctx.disabled}) records one
      ["solve"]-category span per escalation rung (["rung N"], with
      solver/damping/budget/outcome meta) under the given causal-tracing
      context, and stamps the context's trace id onto every structured
      [-v] diagnostic line ({!Lattol_obs.Log}).

    [Ok (measures, diagnosis)] carries the first accepted solution;
    [Error diagnosis] means every rung failed (the measures of the last
    iterate are deliberately withheld — they are untrustworthy).  Raises
    [Invalid_argument] only for malformed parameters or option values. *)

val outcome : ('a * diagnosis, diagnosis) result -> outcome

val exit_code : outcome -> int
(** Process exit code for CLI use: 0 = converged, 3 = converged after
    fallback, 4 = failed. *)

val solver_name : Mms.solver -> string

val pp_attempt : Format.formatter -> attempt -> unit
val pp_violation : Format.formatter -> violation -> unit

val pp_diagnosis : Format.formatter -> diagnosis -> unit
(** Multi-line report of the ladder and the bound cross-check.  Elapsed
    time is deliberately omitted so output stays reproducible. *)
