(* Deterministic fault injection for the chaos harness.

   Everything here is reproducible: whether a task is affected depends
   only on (seed, task name), never on scheduling or time, so a chaos run
   that fails can be re-run and fail identically.  The file corruptors
   exist so tests (and `mms chaos`) can damage cache entries and journals
   exactly the way real crashes and bit rot do. *)

exception Injected_fault of string

type plan = {
  fail_rate : float;
  fail_attempts : int;
  delay : float;
  seed : int;
}

let none = { fail_rate = 0.; fail_attempts = 1; delay = 0.; seed = 0 }

let plan ?(fail_rate = 0.) ?(fail_attempts = 1) ?(delay = 0.) ?(seed = 0) () =
  if fail_rate < 0. || fail_rate > 1. then
    invalid_arg "Chaos.plan: fail_rate must lie in [0, 1]";
  if fail_attempts < 0 then
    invalid_arg "Chaos.plan: fail_attempts must be non-negative";
  if delay < 0. then invalid_arg "Chaos.plan: delay must be non-negative";
  { fail_rate; fail_attempts; delay; seed }

let active p = p.fail_rate > 0. || p.delay > 0.

(* Deterministic per-task coin: [Hashtbl.hash] over (seed, task) is a
   fixed function of its input, so the affected set is a pure function of
   the plan — no ambient PRNG, no ordering dependence. *)
let affected p ~task =
  p.fail_rate > 0.
  && (p.fail_rate >= 1.
     ||
     let h = Hashtbl.hash (p.seed, task) land 0xFFFF in
     float_of_int h /. 65536. < p.fail_rate)

let inject p ~task ~attempt =
  if p.delay > 0. then Unix.sleepf p.delay;
  if affected p ~task && attempt <= p.fail_attempts then
    raise
      (Injected_fault
         (Printf.sprintf "chaos: injected fault in %s (attempt %d)" task
            attempt))

(* ------------------------------------------------------------------ *)
(* File corruptors: the two failure modes verified storage must survive. *)

let flip_byte ~path ~offset =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size = 0 then invalid_arg "Chaos.flip_byte: empty file";
      if offset < 0 || offset >= size then
        invalid_arg "Chaos.flip_byte: offset out of range";
      let buf = Bytes.create 1 in
      ignore (Unix.lseek fd offset Unix.SEEK_SET);
      if Unix.read fd buf 0 1 <> 1 then
        invalid_arg "Chaos.flip_byte: short read";
      Bytes.set buf 0 (Char.chr (Char.code (Bytes.get buf 0) lxor 0xFF));
      ignore (Unix.lseek fd offset Unix.SEEK_SET);
      if Unix.write fd buf 0 1 <> 1 then
        invalid_arg "Chaos.flip_byte: short write")

let truncate_file ~path ~keep =
  if keep < 0 then invalid_arg "Chaos.truncate_file: keep must be non-negative";
  Unix.truncate path keep

let kill_self () =
  Unix.kill (Unix.getpid ()) Sys.sigkill;
  (* SIGKILL cannot be caught; control never reaches this point. *)
  assert false
