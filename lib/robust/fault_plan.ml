type process = {
  mtbf : float;
  mttr : float;
  degrade : float;
}

type t = {
  switch : process option;
  memory : process option;
}

let none = { switch = None; memory = None }

let active t = t.switch <> None || t.memory <> None

let process ~mtbf ~mttr ~degrade = { mtbf; mttr; degrade }

let validate_process label pr =
  if pr.mtbf <= 0. || not (Float.is_finite pr.mtbf) then
    Error (Printf.sprintf "%s fault: mtbf %g must be positive" label pr.mtbf)
  else if pr.mttr <= 0. || not (Float.is_finite pr.mttr) then
    Error (Printf.sprintf "%s fault: mttr %g must be positive" label pr.mttr)
  else if pr.degrade < 0. || pr.degrade > 1. || Float.is_nan pr.degrade then
    Error
      (Printf.sprintf "%s fault: degrade %g must lie in [0, 1]" label
         pr.degrade)
  else Ok ()

let validate t =
  let check label = function
    | None -> Ok ()
    | Some pr -> validate_process label pr
  in
  match check "switch" t.switch with
  | Error _ as e -> e
  | Ok () -> (
    match check "memory" t.memory with Error _ as e -> e | Ok () -> Ok t)

let validate_exn t =
  match validate t with Ok t -> t | Error msg -> invalid_arg msg

let availability pr = pr.mtbf /. (pr.mtbf +. pr.mttr)

let slowdown pr =
  let a = availability pr in
  let mean_speed = a +. ((1. -. a) *. pr.degrade) in
  if mean_speed <= 0. then infinity else 1. /. mean_speed

let degrade_params t p =
  let t = validate_exn t in
  let scale pr s = match pr with None -> s | Some pr -> s *. slowdown pr in
  {
    p with
    Lattol_core.Params.s_switch = scale t.switch p.Lattol_core.Params.s_switch;
    l_mem = scale t.memory p.Lattol_core.Params.l_mem;
  }

let pp_process ppf pr =
  Format.fprintf ppf "mtbf=%g mttr=%g degrade=%g (avail %.4f, slowdown %.4f)"
    pr.mtbf pr.mttr pr.degrade (availability pr) (slowdown pr)

let pp ppf t =
  if not (active t) then Format.fprintf ppf "no faults"
  else begin
    let first = ref true in
    let field label = function
      | None -> ()
      | Some pr ->
        if not !first then Format.fprintf ppf "; ";
        first := false;
        Format.fprintf ppf "%s: %a" label pp_process pr
    in
    field "switch" t.switch;
    field "memory" t.memory
  end
