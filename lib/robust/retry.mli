(** Bounded retry policies and per-task deadlines.

    The home of the execution engine's wall-clock machinery: [lib/exec]
    is scoped deterministic (the [det-wallclock] lint rule), so backoff
    timers and deadline checks live here, alongside the supervisor's
    time budgets.  Clocks decide only {e when} work runs — never what it
    computes.

    A {!policy} separates {e transient} failures (injected chaos, expired
    deadlines, flaky I/O — worth retrying) from {e fatal} ones
    (deterministic solver errors — retrying only repeats them); {!Pool}
    consumes it for task-level fault containment. *)

type classification = Transient | Fatal

exception Deadline_exceeded
(** Raised (cooperatively) by a task whose {!deadline} has expired;
    transient under {!default_classify}. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first *)
  base_delay : float;  (** backoff before attempt 2, seconds *)
  max_delay : float;  (** cap on the exponential rung *)
  jitter : float;
      (** extra fraction of the rung added deterministically per
          (salt, attempt) — desynchronizes concurrent retriers *)
  classify : exn -> classification;
}

val default_classify : exn -> classification
(** {!Chaos.Injected_fault}, {!Deadline_exceeded}, [Sys_error] and
    [Unix_error] are transient; everything else fatal. *)

val policy :
  ?max_attempts:int -> ?base_delay:float -> ?max_delay:float ->
  ?jitter:float -> ?classify:(exn -> classification) -> unit -> policy
(** Validating constructor; defaults: 3 attempts, 50 ms doubling to a 1 s
    cap, jitter 0.5, {!default_classify}. *)

val default : policy

val delay : policy -> attempt:int -> salt:int -> float
(** Backoff (seconds) after failed [attempt] (1-based):
    [min max_delay (base_delay * 2^(attempt-1))] plus deterministic
    jitter keyed by [(salt, attempt)]. *)

val sleep : float -> unit

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]) — exported so deterministic
    layers can timestamp {e bookkeeping} (e.g. cache-janitor age checks)
    without reading clocks themselves. *)

type deadline

val start : timeout:float -> deadline
(** A deadline [timeout] seconds from now. *)

val expired : deadline -> bool

val check : deadline -> unit
(** Raise {!Deadline_exceeded} if [expired]. *)
