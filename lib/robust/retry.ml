(* Bounded retry with exponential backoff, and per-task deadlines.

   This module owns the wall-clock reads the execution engine needs:
   lib/exec is scoped deterministic (see the det-wallclock lint rule), so
   its retry timers and deadline checks live here with the supervisor's
   other time machinery.  Results never depend on these clocks — they
   only decide when to try again and when to give up. *)

type classification = Transient | Fatal

exception Deadline_exceeded

type policy = {
  max_attempts : int;
  base_delay : float;
  max_delay : float;
  jitter : float;
  classify : exn -> classification;
}

(* Transient: the environment misbehaved (injected chaos, an expired
   deadline, a flaky filesystem call) — the same computation may well
   succeed on a fresh attempt.  Everything else is treated as a
   deterministic error that retrying can only repeat. *)
let default_classify = function
  | Chaos.Injected_fault _ | Deadline_exceeded -> Transient
  | Sys_error _ | Unix.Unix_error (_, _, _) -> Transient
  | _ -> Fatal

let policy ?(max_attempts = 3) ?(base_delay = 0.05) ?(max_delay = 1.)
    ?(jitter = 0.5) ?(classify = default_classify) () =
  if max_attempts < 1 then
    invalid_arg "Retry.policy: max_attempts must be at least 1";
  if base_delay < 0. then
    invalid_arg "Retry.policy: base_delay must be non-negative";
  if max_delay < base_delay then
    invalid_arg "Retry.policy: max_delay must be at least base_delay";
  if jitter < 0. then invalid_arg "Retry.policy: jitter must be non-negative";
  { max_attempts; base_delay; max_delay; jitter; classify }

let default = policy ()

(* Deterministic jitter: a hash of (salt, attempt) desynchronizes workers
   retrying the same backoff rung without drawing from an ambient PRNG
   (which replay and the solve cache could never see). *)
let frac h = float_of_int (h land 0xFFFF) /. 65536.

let delay p ~attempt ~salt =
  let rung =
    Float.min p.max_delay
      (p.base_delay *. Float.pow 2. (float_of_int (attempt - 1)))
  in
  rung *. (1. +. (p.jitter *. frac (Hashtbl.hash (salt, attempt, "retry"))))

let sleep seconds = if seconds > 0. then Unix.sleepf seconds

let now = Unix.gettimeofday

type deadline = { expires : float }

let start ~timeout = { expires = now () +. timeout }

let expired d = now () > d.expires

let check d = if expired d then raise Deadline_exceeded
