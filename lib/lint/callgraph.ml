open Parsetree

type pos = { line : int; col : int; offset : int }

let pos_of (loc : Location.t) =
  let p = loc.loc_start in
  { line = p.pos_lnum; col = p.pos_cnum - p.pos_bol; offset = p.pos_cnum }

type event =
  | Mutate of { target : string; under_lock : bool }
  | Read of { target : string; under_lock : bool }
  | Prng_draw of { op : string; target : string option }
  | Alloc of { what : string; in_loop : bool }
  | Partial of { callee : string; given : int }

type fn = {
  id : string;
  unit_name : string;
  file : string;
  pos : pos;
  arity : int;
  keyword_args : bool;
  hot : bool;
  par_root : bool;
  calls : (string * pos) list;
  events : (event * pos) list;
}

type t = {
  unit_name : string;
  file : string;
  fns : fn list;
}

(* ------------------------------------------------------------------ *)
(* Path resolution: syntactic value paths, normalized so that the same
   function is named identically from inside its unit, from a sibling
   unit (M.f), and from another library (Lattol_x.M.f or through a
   [module Alias = ...]).  Resolution is a heuristic over-approximation:
   an unresolvable path simply produces no edge. *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply _ -> []

let is_library_wrapper s =
  String.length s > 7 && String.sub s 0 7 = "Lattol_"

let normalize aliases segs =
  let segs =
    match segs with
    | ("Stdlib" | "Pervasives") :: (_ :: _ as rest) -> rest
    | l -> l
  in
  let segs =
    match segs with
    | a :: rest -> (
      match List.assoc_opt a aliases with
      | Some prefix -> prefix @ rest
      | None -> segs)
    | [] -> []
  in
  match segs with
  | w :: (_ :: _ as rest) when is_library_wrapper w -> rest
  | l -> l

let path_of aliases e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match normalize aliases (flatten txt) with
    | [] -> None
    | segs -> Some (String.concat "." segs))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Classification tables *)

let spawn_point = function
  | [ "Domain"; "spawn" ] -> true
  | [ "Pool"; ("map" | "map_ctx" | "map_local" | "map_list" | "run") ] -> true
  | _ -> false

(* (path, role list): which positional argument (0-based, Nolabel only)
   is mutated / read by a call to this function. *)
let mutating_calls =
  [
    ([ ":=" ], [ 0 ]);
    ([ "incr" ], [ 0 ]);
    ([ "decr" ], [ 0 ]);
    ([ "Hashtbl"; "replace" ], [ 0 ]);
    ([ "Hashtbl"; "add" ], [ 0 ]);
    ([ "Hashtbl"; "remove" ], [ 0 ]);
    ([ "Hashtbl"; "reset" ], [ 0 ]);
    ([ "Hashtbl"; "clear" ], [ 0 ]);
    ([ "Hashtbl"; "filter_map_inplace" ], [ 0 ]);
    ([ "Buffer"; "add_string" ], [ 0 ]);
    ([ "Buffer"; "add_char" ], [ 0 ]);
    ([ "Buffer"; "add_substring" ], [ 0 ]);
    ([ "Buffer"; "add_buffer" ], [ 0 ]);
    ([ "Buffer"; "clear" ], [ 0 ]);
    ([ "Buffer"; "reset" ], [ 0 ]);
    ([ "Buffer"; "truncate" ], [ 0 ]);
    ([ "Queue"; "add" ], [ 0 ]);
    ([ "Queue"; "push" ], [ 0 ]);
    ([ "Queue"; "pop" ], [ 0 ]);
    ([ "Queue"; "take" ], [ 0 ]);
    ([ "Queue"; "clear" ], [ 0 ]);
    ([ "Queue"; "transfer" ], [ 0; 1 ]);
    ([ "Stack"; "push" ], [ 1 ]);
    ([ "Stack"; "pop" ], [ 0 ]);
    ([ "Stack"; "clear" ], [ 0 ]);
    ([ "Array"; "set" ], [ 0 ]);
    ([ "Array"; "unsafe_set" ], [ 0 ]);
    ([ "Array"; "fill" ], [ 0 ]);
    ([ "Array"; "blit" ], [ 2 ]);
    ([ "Bytes"; "set" ], [ 0 ]);
  ]

let reading_calls =
  [
    ([ "!" ], [ 0 ]);
    ([ "Hashtbl"; "find" ], [ 0 ]);
    ([ "Hashtbl"; "find_opt" ], [ 0 ]);
    ([ "Hashtbl"; "find_all" ], [ 0 ]);
    ([ "Hashtbl"; "mem" ], [ 0 ]);
    ([ "Hashtbl"; "length" ], [ 0 ]);
    ([ "Hashtbl"; "fold" ], [ 1 ]);
    ([ "Hashtbl"; "iter" ], [ 1 ]);
    ([ "Hashtbl"; "copy" ], [ 0 ]);
    ([ "Queue"; "length" ], [ 0 ]);
    ([ "Queue"; "peek" ], [ 0 ]);
    ([ "Queue"; "top" ], [ 0 ]);
    ([ "Queue"; "is_empty" ], [ 0 ]);
    ([ "Queue"; "iter" ], [ 1 ]);
    ([ "Queue"; "fold" ], [ 2 ]);
    ([ "Buffer"; "contents" ], [ 0 ]);
    ([ "Buffer"; "length" ], [ 0 ]);
    ([ "Buffer"; "nth" ], [ 0 ]);
    ([ "Buffer"; "sub" ], [ 0 ]);
    ([ "Stack"; "top" ], [ 0 ]);
    ([ "Stack"; "length" ], [ 0 ]);
    ([ "Stack"; "is_empty" ], [ 0 ]);
    ([ "Array"; "get" ], [ 0 ]);
    ([ "Array"; "unsafe_get" ], [ 0 ]);
    ([ "Array"; "length" ], [ 0 ]);
    ([ "Array"; "to_list" ], [ 0 ]);
    ([ "Array"; "copy" ], [ 0 ]);
    ([ "Array"; "iter" ], [ 1 ]);
    ([ "Array"; "fold_left" ], [ 2 ]);
  ]

let prng_draws = [ "float"; "float_pos"; "int"; "bool"; "bits64" ]

(* Applications that allocate their result on every call. *)
let allocating_calls =
  [
    ([ "ref" ], "ref cell");
    ([ "Array"; "make" ], "array");
    ([ "Array"; "init" ], "array");
    ([ "Array"; "make_matrix" ], "array matrix");
    ([ "Array"; "append" ], "array");
    ([ "Array"; "copy" ], "array");
    ([ "Array"; "sub" ], "array");
    ([ "Array"; "of_list" ], "array");
    ([ "Array"; "to_list" ], "list");
    ([ "Bytes"; "create" ], "bytes buffer");
    ([ "Bytes"; "make" ], "bytes buffer");
    ([ "List"; "init" ], "list");
    ([ "List"; "map" ], "list");
    ([ "List"; "mapi" ], "list");
    ([ "List"; "append" ], "list");
    ([ "List"; "rev" ], "list");
    ([ "List"; "concat" ], "list");
    ([ "List"; "filter" ], "list");
    ([ "List"; "filter_map" ], "list");
    ([ "Hashtbl"; "create" ], "hash table");
    ([ "Buffer"; "create" ], "buffer");
    ([ "^" ], "string");
    ([ "String"; "concat" ], "string");
    ([ "Printf"; "sprintf" ], "string");
    ([ "Format"; "asprintf" ], "string");
  ]

(* Higher-order iterators: a [fun] literal passed to one of these runs
   once per element, so its body is loop context. *)
let iterator_hof = function
  | [ ("List" | "Array" | "Seq" | "Float" | "Queue"); f ]
  | [ "Float"; "Array"; f ]
  | [ f ] when
      List.mem f
        [ "iter"; "iteri"; "map"; "mapi"; "fold_left"; "fold_right";
          "init"; "for_all"; "exists"; "filter"; "filter_map";
          "concat_map"; "fold" ] ->
    true
  | [ "Hashtbl"; ("iter" | "fold" | "filter_map_inplace") ] -> true
  | _ -> false

let has_attr name attrs =
  List.exists (fun (a : attribute) -> a.attr_name.txt = name) attrs

(* ------------------------------------------------------------------ *)
(* Per-function collection *)

type state = {
  unit_name : string;
  file : string;
  aliases : (string * string list) list;
  out : fn list ref;  (* completed nodes, reverse order *)
}

type coll = {
  mutable calls : (string * pos) list;
  mutable events : (event * pos) list;
  mutable lock_depth : int;
  mutable loop_depth : int;
  mutable par_count : int;
  mutable cons_depth : int;  (* inside a :: spine: record one event per list *)
}

let new_coll () =
  { calls = []; events = []; lock_depth = 0; loop_depth = 0;
    par_count = 0; cons_depth = 0 }

let finish st coll ~id ~pos ~arity ~keyword_args ~hot ~par_root =
  st.out :=
    {
      id;
      unit_name = st.unit_name;
      file = st.file;
      pos;
      arity;
      keyword_args;
      hot;
      par_root;
      calls = List.rev coll.calls;
      events = List.rev coll.events;
    }
    :: !(st.out)

let nolabel_args args =
  List.filter_map
    (fun (l, a) -> match l with Asttypes.Nolabel -> Some a | _ -> None)
    args

let rec walk st coll e =
  let loc = pos_of e.pexp_loc in
  let alloc what =
    coll.events <-
      (Alloc { what; in_loop = coll.loop_depth > 0 }, loc) :: coll.events
  in
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match normalize st.aliases (flatten txt) with
    | [] -> ()
    | segs ->
      let head = List.hd segs in
      (* operators and module-path heads are never call edges to skip *)
      if head <> "" && (head.[0] = '_' || (head.[0] >= 'a' && head.[0] <= 'z')
                        || (head.[0] >= 'A' && head.[0] <= 'Z')) then
        coll.calls <- (String.concat "." segs, loc) :: coll.calls)
  | Pexp_apply (fn, args) -> walk_apply st coll e fn args
  | Pexp_fun _ | Pexp_function _ ->
    (* one closure per curried group: [fun a b -> e] is a single
       allocation, so the nested parameters are peeled without
       re-recording *)
    alloc "closure";
    walk_fn_parts st coll e
  | Pexp_for (pat, lo, hi, _, body) ->
    walk_pat st coll pat;
    walk st coll lo;
    walk st coll hi;
    coll.loop_depth <- coll.loop_depth + 1;
    walk st coll body;
    coll.loop_depth <- coll.loop_depth - 1
  | Pexp_while (cond, body) ->
    walk st coll cond;
    coll.loop_depth <- coll.loop_depth + 1;
    walk st coll body;
    coll.loop_depth <- coll.loop_depth - 1
  | Pexp_tuple es ->
    alloc "tuple";
    List.iter (walk st coll) es
  | Pexp_record (fields, base) ->
    alloc "record";
    Option.iter (walk st coll) base;
    List.iter (fun (_, v) -> walk st coll v) fields
  | Pexp_array es ->
    alloc "array literal";
    List.iter (walk st coll) es
  | Pexp_lazy body ->
    alloc "lazy block";
    walk st coll body
  | Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some arg) ->
    if coll.cons_depth = 0 then alloc "list";
    coll.cons_depth <- coll.cons_depth + 1;
    (* the tail (second tuple component) continues the spine; the head is
       a fresh context *)
    (match arg.pexp_desc with
    | Pexp_tuple [ hd; tl ] ->
      let d = coll.cons_depth in
      coll.cons_depth <- 0;
      walk st coll hd;
      coll.cons_depth <- d;
      walk st coll tl
    | _ -> walk st coll arg);
    coll.cons_depth <- coll.cons_depth - 1
  | Pexp_setfield (target, _, v) ->
    (match path_of st.aliases target with
    | Some t ->
      coll.events <-
        (Mutate { target = t; under_lock = coll.lock_depth > 0 }, loc)
        :: coll.events
    | None -> ());
    walk st coll target;
    walk st coll v
  | Pexp_field (target, _) ->
    (match path_of st.aliases target with
    | Some t ->
      coll.events <-
        (Read { target = t; under_lock = coll.lock_depth > 0 }, loc)
        :: coll.events
    | None -> ());
    walk st coll target
  | Pexp_let (_, vbs, body) ->
    List.iter (walk_binding st coll) vbs;
    walk st coll body
  | Pexp_match (scrut, cases) ->
    walk st coll scrut;
    List.iter (walk_case st coll) cases
  | Pexp_try (body, cases) ->
    walk st coll body;
    List.iter (walk_case st coll) cases
  | Pexp_ifthenelse (c, a, b) ->
    walk st coll c;
    walk st coll a;
    Option.iter (walk st coll) b
  | Pexp_sequence (a, b) ->
    walk st coll a;
    walk st coll b
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_newtype (_, e)
  | Pexp_open (_, e) | Pexp_letexception (_, e) ->
    walk st coll e
  | Pexp_letmodule (_, _, body) -> walk st coll body
  | Pexp_variant (_, arg) -> Option.iter (walk st coll) arg
  | Pexp_construct (_, arg) -> Option.iter (walk st coll) arg
  | Pexp_assert e | Pexp_send (e, _) -> walk st coll e
  | _ -> ()

and walk_pat _st _coll _p = ()

and walk_case st coll c =
  Option.iter (walk st coll) c.pc_guard;
  walk st coll c.pc_rhs

and walk_binding st coll vb =
  (* A nested [let[@lattol.hot] f ...] becomes its own node so a hot
     inner loop can be annotated without hoisting it to toplevel. *)
  if has_attr "lattol.hot" vb.pvb_attributes then begin
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt = name; _ } ->
      let id = st.unit_name ^ "." ^ name in
      collect_fn st ~id ~hot:true ~pos:(pos_of vb.pvb_loc) vb.pvb_expr;
      coll.calls <- (id, pos_of vb.pvb_loc) :: coll.calls
    | _ -> walk st coll vb.pvb_expr
  end
  else walk st coll vb.pvb_expr

and walk_apply st coll e fn args =
  let loc = pos_of e.pexp_loc in
  let fpath = Option.map (String.split_on_char '.')
      (path_of st.aliases fn) in
  match fpath with
  | Some p when spawn_point p ->
    (* Parallel root: everything in the argument list runs (or is
       captured) on pool/spawned domains.  Collect it as a synthetic
       root node hanging off the enclosing function. *)
    coll.par_count <- coll.par_count + 1;
    let sub = new_coll () in
    List.iter (fun (_, a) -> walk st sub a) args;
    let id = par_id st loc in
    finish st sub ~id ~pos:loc ~arity:0 ~keyword_args:false ~hot:false
      ~par_root:true;
    coll.calls <- (id, loc) :: coll.calls
  | Some [ "Mutex"; "protect" ] ->
    coll.lock_depth <- coll.lock_depth + 1;
    List.iter (fun (_, a) -> walk st coll a) args;
    coll.lock_depth <- coll.lock_depth - 1
  | Some p ->
    let pos_args = nolabel_args args in
    let target i =
      match List.nth_opt pos_args i with
      | Some a -> path_of st.aliases a
      | None -> None
    in
    (match List.assoc_opt p mutating_calls with
    | Some idxs ->
      List.iter
        (fun i ->
          match target i with
          | Some t ->
            coll.events <-
              (Mutate { target = t; under_lock = coll.lock_depth > 0 }, loc)
              :: coll.events
          | None -> ())
        idxs
    | None -> ());
    (match List.assoc_opt p reading_calls with
    | Some idxs ->
      List.iter
        (fun i ->
          match target i with
          | Some t ->
            coll.events <-
              (Read { target = t; under_lock = coll.lock_depth > 0 }, loc)
              :: coll.events
          | None -> ())
        idxs
    | None -> ());
    (match p with
    | [ "Prng"; op ] when List.mem op prng_draws ->
      coll.events <- (Prng_draw { op; target = target 0 }, loc) :: coll.events
    | _ -> ());
    (match List.assoc_opt p allocating_calls with
    | Some what ->
      coll.events <-
        (Alloc { what; in_loop = coll.loop_depth > 0 }, loc) :: coll.events
    | None -> ());
    (* Partial application is only worth reporting where it repeats *)
    (if coll.loop_depth > 0
     && List.for_all (fun (l, _) -> l = Asttypes.Nolabel) args
     && List.length p <= 2
    then
       coll.events <-
         (Partial { callee = String.concat "." p;
                    given = List.length pos_args }, loc)
         :: coll.events);
    walk st coll fn;
    let hof = iterator_hof p in
    List.iter
      (fun (_, a) ->
        match a.pexp_desc with
        | (Pexp_fun _ | Pexp_function _) when hof ->
          (* closure literal handed to an iterator: the literal itself
             allocates once, at the apply's own loop depth, while its
             body runs once per element and is walked as loop context *)
          coll.events <-
            (Alloc { what = "closure"; in_loop = coll.loop_depth > 0 },
             pos_of a.pexp_loc)
            :: coll.events;
          coll.loop_depth <- coll.loop_depth + 1;
          walk_fn_parts st coll a;
          coll.loop_depth <- coll.loop_depth - 1
        | _ -> walk st coll a)
      args
  | None ->
    walk st coll fn;
    List.iter (fun (_, a) -> walk st coll a) args

(* Walk the parameters and body of a curried [fun]/[function] group
   without recording further closure allocations for the directly nested
   parameter lambdas: the group compiles to one closure. *)
and walk_fn_parts st coll e =
  match e.pexp_desc with
  | Pexp_fun (_, default, pat, body) ->
    Option.iter (walk st coll) default;
    walk_pat st coll pat;
    walk_fn_parts st coll body
  | Pexp_function cases -> List.iter (walk_case st coll) cases
  | _ -> walk st coll e

and par_id st loc =
  Printf.sprintf "%s.!par.%d.%d" st.unit_name loc.line loc.col

(* Collect one named function (toplevel or hot-nested binding). *)
and collect_fn st ~id ~hot ~pos expr =
  let rec peel arity keyword e =
    match e.pexp_desc with
    | Pexp_fun (lbl, default, _, body) ->
      let keyword =
        keyword
        || (match lbl with
           | Asttypes.Labelled _ | Asttypes.Optional _ -> true
           | Asttypes.Nolabel -> false)
        || default <> None
      in
      peel (arity + 1) keyword body
    | Pexp_newtype (_, body) | Pexp_constraint (body, _) ->
      peel arity keyword body
    | Pexp_function _ -> (arity + 1, keyword, e)
    | _ -> (arity, keyword, e)
  in
  let arity, keyword_args, body = peel 0 false expr in
  let coll = new_coll () in
  (* walk the function body; for Pexp_function the cases are the body *)
  (match body.pexp_desc with
  | Pexp_function cases -> List.iter (walk_case st coll) cases
  | _ -> walk st coll body);
  finish st coll ~id ~pos ~arity ~keyword_args ~hot ~par_root:false

(* ------------------------------------------------------------------ *)
(* Structure traversal *)

let binding_name vb =
  let rec of_pat p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> Some (Option.value ~default:"" (of_pat p))
    | _ -> None
  in
  match of_pat vb.pvb_pat with Some "" | None -> None | s -> s

let rec scan_structure st prefix items =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let hot = has_attr "lattol.hot" vb.pvb_attributes in
            match binding_name vb with
            | Some name ->
              let id = st.unit_name ^ "." ^ prefix ^ name in
              collect_fn st ~id ~hot ~pos:(pos_of vb.pvb_loc) vb.pvb_expr
            | None ->
              (* pattern or unit binding: module-init code; spawn points
                 inside it still become roots *)
              let coll = new_coll () in
              walk st coll vb.pvb_expr;
              if coll.calls <> [] || coll.events <> [] then
                finish st coll
                  ~id:(st.unit_name ^ "." ^ prefix ^ "!init."
                       ^ string_of_int (pos_of vb.pvb_loc).line)
                  ~pos:(pos_of vb.pvb_loc) ~arity:0 ~keyword_args:false
                  ~hot ~par_root:false)
          vbs
      | Pstr_module mb -> (
        let mname =
          match mb.pmb_name.txt with Some n -> n | None -> "_"
        in
        match mb.pmb_expr.pmod_desc with
        | Pmod_structure items ->
          scan_structure st (prefix ^ mname ^ ".") items
        | _ -> ())
      | Pstr_eval (e, _) ->
        let coll = new_coll () in
        walk st coll e;
        if coll.calls <> [] || coll.events <> [] then
          finish st coll
            ~id:(st.unit_name ^ "." ^ prefix ^ "!init."
                 ^ string_of_int (pos_of item.pstr_loc).line)
            ~pos:(pos_of item.pstr_loc) ~arity:0 ~keyword_args:false
            ~hot:false ~par_root:false
      | _ -> ())
    items

let module_aliases items =
  List.filter_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_module mb -> (
        match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
        | Some name, Pmod_ident { txt; _ } -> (
          match normalize [] (flatten txt) with
          | [] -> None
          | segs -> Some (name, segs))
        | _ -> None)
      | _ -> None)
    items

let unit_name_of_file file =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename file))

let summarize ~file str =
  let unit_name = unit_name_of_file file in
  let st = { unit_name; file; aliases = module_aliases str; out = ref [] } in
  scan_structure st "" str;
  { unit_name; file; fns = List.rev !(st.out) }
