open Parsetree

type meta = {
  id : string;
  family : string;
  summary : string;
  hint : string;
}

let metas =
  [
    {
      id = "det-random";
      family = "determinism";
      summary = "ambient Random use outside lib/stats/prng.ml";
      hint =
        "draw from a Lattol_stats.Prng stream threaded from the experiment \
         seed; the ambient Random is invisible to replay and to the solve \
         cache";
    };
    {
      id = "det-wallclock";
      family = "determinism";
      summary =
        "wall-clock read in deterministic model/experiment code (lib/ \
         outside the telemetry and supervision layers)";
      hint =
        "solver results, cache keys and golden CSVs must not depend on time; \
         read clocks only in the layers scoped for it (lib/obs, lib/serve, \
         lib/robust) or in executables";
    };
    {
      id = "det-stdout";
      family = "determinism";
      summary = "direct stdout write in library code (lib/serve excepted)";
      hint =
        "emit through a Format.formatter or a Report/Metrics sink chosen by \
         the caller; library stdout interleaves nondeterministically under \
         --jobs";
    };
    {
      id = "float-polycompare";
      family = "float-safety";
      summary = "polymorphic =/<>/compare/Hashtbl.hash on a float-bearing value";
      hint =
        "use Float.equal / Float.compare (or a keyed comparison): polymorphic \
         compare diverges on nan and boxes every float, and Hashtbl.hash \
         folds nan/-0. unpredictably into cache keys";
    };
    {
      id = "float-div-unguarded";
      family = "float-safety";
      summary =
        "float division by a difference with no dominating nonzero guard";
      hint =
        "guard the branch so the divisor is provably nonzero, or annotate \
         with [@lattol.allow \"float-div-unguarded\"] stating the invariant \
         that keeps it away from zero";
    };
    {
      id = "float-sum-naive";
      family = "float-safety";
      summary = "naive float accumulation via fold_left in lib/stats";
      hint =
        "use Lattol_stats.Moments (Welford) or Kahan compensation for long \
         sums; annotate when the operand count is small and bounded";
    };
    {
      id = "dom-unsync-mutation";
      family = "domain-safety";
      summary =
        "shared-state mutation inside a Domain.spawn closure without \
         Mutex.protect/Atomic";
      hint =
        "wrap the mutation in Mutex.protect, use Atomic, or annotate with \
         [@lattol.allow \"dom-unsync-mutation\"] naming the lock that is \
         held";
    };
    {
      id = "hyg-obj-magic";
      family = "domain-safety";
      summary = "Obj.magic defeats the type system";
      hint = "restructure with a GADT, a variant, or a first-class module";
    };
    {
      id = "hyg-catchall";
      family = "domain-safety";
      summary = "catch-all exception handler";
      hint =
        "match the specific exceptions: a catch-all absorbs the supervisor's \
         escalation exceptions (and Stack_overflow) and turns faults into \
         silent wrong answers";
    };
    {
      id = "hyg-mli-missing";
      family = "domain-safety";
      summary = "library module without an interface file";
      hint =
        "add a sibling .mli so the module's contract is explicit, or list \
         the file under an 'mli-exempt' directive in .lattol-lint stating \
         why it is a bare executable";
    };
    {
      id = "dom-shared-mutation";
      family = "domain-safety";
      summary =
        "module-level mutable state mutated from the parallel region \
         (transitively from a Pool/Domain.spawn closure) without \
         synchronization";
      hint =
        "wrap the access in Mutex.protect or Atomic, carry the state \
         per-worker via Pool.map_local, or have workers return values and \
         merge on the caller";
    };
    {
      id = "dom-unprotected-read-write";
      family = "domain-safety";
      summary =
        "module-level mutable state read in the parallel region while \
         also mutated elsewhere (torn-read race)";
      hint =
        "take the same lock on both sides (Mutex.protect), publish through \
         Atomic, or snapshot the state into an immutable value before the \
         fan-out";
    };
    {
      id = "det-prng-unsplit";
      family = "determinism";
      summary =
        "shared toplevel Prng stream advanced from the parallel region";
      hint =
        "derive one stream per task with Prng.split before the fan-out \
         (see Replicate.streams): draw order on a shared stream depends on \
         scheduling, so results stop being replayable from the seed";
    };
    {
      id = "hot-alloc";
      family = "hot-path";
      summary =
        "per-iteration heap allocation in a [@lattol.hot] region \
         (closure/tuple/record/list/array or partial application)";
      hint =
        "hoist the allocation out of the loop, reuse preallocated \
         Float.Array/Bigarray scratch, and apply functions fully: flat \
         inner loops are what unlock multicore scaling (ROADMAP item 3)";
    };
    {
      id = "obs-bare-printf";
      family = "observability";
      summary =
        "bare stderr print in library code (lib/obs/log.ml excepted)";
      hint =
        "emit through Lattol_obs.Log: freeform eprintf lines carry no \
         level, no source and no trace id, so they cannot be joined \
         against the causal trace; only the structured logger itself \
         writes stderr directly";
    };
  ]

let rule_ids = List.map (fun m -> m.id) metas

let meta_of_id id = List.find_opt (fun m -> m.id = id) metas

(* ------------------------------------------------------------------ *)
(* Path scoping *)

let segs path = String.split_on_char '/' (Lint_config.normalize path)

let rec is_prefix sub l =
  match (sub, l) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys -> String.equal x y && is_prefix xs ys

let rec has_subseq sub l =
  is_prefix sub l || match l with [] -> false | _ :: tl -> has_subseq sub tl

let in_dir path sub = has_subseq sub (segs path)

(* ------------------------------------------------------------------ *)
(* Longident and syntactic helpers *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply _ -> []

let last_seg lid =
  match List.rev (flatten lid) with [] -> "" | x :: _ -> x

let fn_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (flatten txt)
  | _ -> None

(* All identifier / record-field last segments occurring in [e]; used to
   match divisors against enclosing guard conditions. *)
let idents_of e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } ->
            if last_seg txt <> "" then acc := last_seg txt :: !acc
          | Pexp_field (_, { txt; _ }) ->
            if last_seg txt <> "" then acc := last_seg txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !acc

(* ------------------------------------------------------------------ *)
(* Float-bearing heuristic (parsetree only, so syntactic by design) *)

let float_ops =
  [ "+."; "-."; "*."; "/."; "**"; "~-."; "abs_float"; "sqrt"; "exp"; "log";
    "log10"; "float_of_int"; "mod_float"; "ldexp" ]

let float_record_modules = [ "Params"; "Solution"; "Measures" ]
let float_record_idents = [ "params"; "solution"; "measures" ]

(* Float fields of the repo's known float-record types (Params.t,
   Measures.t, Solution-adjacent option records). *)
let float_fields =
  [ "runlength"; "context_switch"; "p_remote"; "l_mem"; "s_switch";
    "sync_unit"; "u_p"; "lambda"; "lambda_net"; "s_obs"; "l_obs";
    "cycle_time"; "util_memory"; "util_switch_in"; "util_switch_out";
    "util_sync"; "su_obs"; "queue_processor"; "queue_memory";
    "queue_network"; "tolerance"; "damping" ]

let rec core_type_is_floaty t =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> (
    match flatten txt with
    | [ "float" ] | [ "Float"; "t" ] -> true
    | [ m; "t" ] -> List.mem m float_record_modules
    | _ -> false)
  | Ptyp_tuple ts -> List.exists core_type_is_floaty ts
  | _ -> false

let rec float_bearing e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply (fn, _) -> (
    match fn_path fn with
    | Some [ op ] when List.mem op float_ops -> true
    | Some [ "Float"; _ ] -> true
    | Some [ ("Stdlib" | "Pervasives"); op ] when List.mem op float_ops -> true
    | _ -> false)
  | Pexp_field (_, { txt; _ }) -> List.mem (last_seg txt) float_fields
  | Pexp_ident { txt; _ } -> (
    match flatten txt with
    | [ m; _ ] when List.mem m float_record_modules -> true
    | l -> (
      match List.rev l with
      | x :: _ -> List.mem (String.lowercase_ascii x) float_record_idents
      | [] -> false))
  | Pexp_record (fields, base) ->
    Option.fold ~none:false ~some:float_bearing base
    || List.exists
         (fun (({ Location.txt; _ } : Longident.t Location.loc), v) ->
           List.mem (last_seg txt) float_fields || float_bearing v)
         fields
  | Pexp_constraint (e, t) -> float_bearing e || core_type_is_floaty t
  | Pexp_tuple es -> List.exists float_bearing es
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Per-expression checks *)

type ctx = {
  path : string;
  enabled : string -> bool;
  report : rule:string -> loc:Location.t -> message:string -> unit;
  (* scope gates, precomputed once per file *)
  allow_random : bool;      (* true in lib/stats/prng.ml *)
  wallclock_scope : bool;   (* lib/ minus the layers allowed to read clocks *)
  lib_scope : bool;         (* any path with a lib/ segment *)
  serve_scope : bool;       (* lib/serve: the live exporter layer *)
  stderr_scope : bool;      (* lib/ minus the structured logger itself *)
  div_scope : bool;         (* lib/queueing, lib/core *)
  stats_scope : bool;       (* lib/stats *)
  (* traversal state *)
  mutable guards : string list list;
  mutable spawn_depth : int;
  mutable protect_depth : int;
}

let make_ctx ~path ~enabled ~report =
  (* Wall-clock allowance is scoped, not enumerated per consumer: every
     lib/ module is in det-wallclock scope except the layers whose job is
     observing real time — telemetry sinks (lib/obs), the live exporter
     and its progress heartbeat (lib/serve), and the supervisor's
     wall-time budgets (lib/robust). *)
  let clock_allowed =
    in_dir path [ "lib"; "obs" ]
    || in_dir path [ "lib"; "serve" ]
    || in_dir path [ "lib"; "robust" ]
    || in_dir path [ "lib"; "lint" ]
  in
  {
    path;
    enabled;
    report;
    allow_random = in_dir path [ "lib"; "stats"; "prng.ml" ];
    wallclock_scope = List.mem "lib" (segs path) && not clock_allowed;
    lib_scope = List.mem "lib" (segs path);
    serve_scope = in_dir path [ "lib"; "serve" ];
    stderr_scope =
      List.mem "lib" (segs path)
      && not (in_dir path [ "lib"; "obs"; "log.ml" ]);
    div_scope = in_dir path [ "lib"; "queueing" ] || in_dir path [ "lib"; "core" ];
    stats_scope = in_dir path [ "lib"; "stats" ];
    guards = [];
    spawn_depth = 0;
    protect_depth = 0;
  }

let fire ctx rule loc fmt =
  Printf.ksprintf
    (fun message -> if ctx.enabled rule then ctx.report ~rule ~loc ~message)
    fmt

let wallclock_idents =
  [ [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ]; [ "Sys"; "time" ] ]

let stdout_printers =
  [ [ "print_string" ]; [ "print_endline" ]; [ "print_newline" ];
    [ "print_char" ]; [ "print_int" ]; [ "print_float" ]; [ "print_bytes" ];
    [ "Printf"; "printf" ]; [ "Format"; "printf" ];
    [ "Format"; "print_string" ]; [ "Format"; "print_newline" ];
    [ "Format"; "open_box" ]; [ "stdout" ] ]

let stderr_printers =
  [ [ "prerr_string" ]; [ "prerr_endline" ]; [ "prerr_newline" ];
    [ "prerr_char" ]; [ "prerr_int" ]; [ "prerr_float" ]; [ "prerr_bytes" ];
    [ "Printf"; "eprintf" ]; [ "Format"; "eprintf" ]; [ "stderr" ] ]

let poly_compare_op = function
  | [ ("=" | "<>" | "compare") ] | [ ("Stdlib" | "Pervasives"); ("=" | "<>" | "compare") ]
    -> true
  | _ -> false

let mutators =
  [ [ ":=" ]; [ "incr" ]; [ "decr" ]; [ "Array"; "set" ]; [ "Array"; "fill" ];
    [ "Array"; "blit" ]; [ "Bytes"; "set" ]; [ "Hashtbl"; "replace" ];
    [ "Hashtbl"; "add" ]; [ "Hashtbl"; "remove" ]; [ "Hashtbl"; "reset" ];
    [ "Hashtbl"; "clear" ]; [ "Buffer"; "add_string" ];
    [ "Buffer"; "add_char" ]; [ "Buffer"; "add_substring" ];
    [ "Buffer"; "add_buffer" ]; [ "Buffer"; "clear" ]; [ "Buffer"; "reset" ];
    [ "Queue"; "add" ]; [ "Queue"; "push" ]; [ "Queue"; "pop" ];
    [ "Queue"; "take" ]; [ "Queue"; "clear" ]; [ "Queue"; "transfer" ];
    [ "Stack"; "push" ]; [ "Stack"; "pop" ]; [ "Stack"; "clear" ] ]

(* Divisors of the shape [a -. b] (or a product with such a factor) are
   the classic 1-rho blowups; everything else is left to the type
   checker and to review. *)
let rec dangerous_divisor e =
  match e.pexp_desc with
  | Pexp_apply (fn, [ (_, a); (_, b) ]) -> (
    match fn_path fn with
    | Some [ "-." ] -> true
    | Some [ "*." ] -> dangerous_divisor a || dangerous_divisor b
    | _ -> false)
  | Pexp_constraint (e, _) -> dangerous_divisor e
  | _ -> false

let divisor_guarded ctx den =
  let den_ids = idents_of den in
  den_ids = []
  || List.exists
       (fun guard_ids -> List.exists (fun i -> List.mem i guard_ids) den_ids)
       ctx.guards

let rec catch_all_pat p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_or (a, b) -> catch_all_pat a || catch_all_pat b
  | Ppat_alias (p, _) -> catch_all_pat p
  | _ -> false

let check_handler_cases ctx ~in_try cases =
  List.iter
    (fun c ->
      match c.pc_guard with
      | Some _ -> ()
      | None -> (
        if in_try then begin
          if catch_all_pat c.pc_lhs then
            fire ctx "hyg-catchall" c.pc_lhs.ppat_loc
              "try ... with _ -> swallows every exception"
        end
        else
          match c.pc_lhs.ppat_desc with
          | Ppat_exception p when catch_all_pat p ->
            fire ctx "hyg-catchall" p.ppat_loc
              "match ... with exception _ -> swallows every exception"
          | _ -> ()))
    cases

let is_fold_over_floats fn args =
  (match fn_path fn with
  | Some [ ("List" | "Array"); "fold_left" ] | Some [ "fold_left" ] -> true
  | _ -> false)
  && List.exists
       (fun (_, a) ->
         match a.pexp_desc with
         | Pexp_constant (Pconst_float _) -> true
         | Pexp_ident { txt = Longident.Lident "+."; _ } -> true
         | _ -> false)
       args

let check_expr ctx e =
  let loc = e.pexp_loc in
  (match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match flatten txt with
    | "Random" :: _ when not ctx.allow_random ->
      fire ctx "det-random" loc
        "Random.%s draws from the ambient global PRNG" (last_seg txt)
    | p when ctx.wallclock_scope && List.mem p wallclock_idents ->
      fire ctx "det-wallclock" loc "%s reads the wall clock"
        (String.concat "." p)
    | p when ctx.lib_scope && not ctx.serve_scope && List.mem p stdout_printers
      ->
      (* lib/serve is exempt: a serving layer reports operational state
         (bound address, shutdown) on process streams by design, and none
         of it lands in golden outputs. *)
      fire ctx "det-stdout" loc "%s writes directly to stdout"
        (String.concat "." p)
    | p when ctx.stderr_scope && List.mem p stderr_printers ->
      (* lib/obs/log.ml is the one exemption: the structured logger is
         the module whose job is writing the stderr stream everyone else
         must route through. *)
      fire ctx "obs-bare-printf" loc
        "%s writes to stderr outside the structured logger"
        (String.concat "." p)
    | [ "Obj"; "magic" ] ->
      fire ctx "hyg-obj-magic" loc "Obj.magic is never domain- or type-safe"
    | _ -> ())
  | Pexp_setfield (_, { txt; _ }, _) ->
    if ctx.spawn_depth > 0 && ctx.protect_depth = 0 then
      fire ctx "dom-unsync-mutation" loc
        "record field %s is mutated inside a Domain.spawn closure"
        (last_seg txt)
  | Pexp_try (_, cases) -> check_handler_cases ctx ~in_try:true cases
  | Pexp_match (_, cases) -> check_handler_cases ctx ~in_try:false cases
  | _ -> ());
  match e.pexp_desc with
  | Pexp_apply (fn, args) -> (
    let nolabel_args =
      List.filter_map
        (fun (l, a) -> match l with Asttypes.Nolabel -> Some a | _ -> None)
        args
    in
    (match fn_path fn with
    | Some p when poly_compare_op p ->
      if List.exists float_bearing nolabel_args then
        fire ctx "float-polycompare" loc
          "polymorphic %s applied to a float-bearing expression"
          (String.concat "." p)
    | Some [ "Hashtbl"; "hash" ] ->
      if List.exists float_bearing nolabel_args then
        fire ctx "float-polycompare" loc
          "Hashtbl.hash applied to a float-bearing expression"
    | Some p when ctx.spawn_depth > 0 && ctx.protect_depth = 0 && List.mem p mutators ->
      fire ctx "dom-unsync-mutation" loc
        "%s mutates shared state inside a Domain.spawn closure"
        (String.concat "." p)
    | _ -> ());
    if ctx.stats_scope && is_fold_over_floats fn args then
      fire ctx "float-sum-naive" loc
        "fold_left accumulates floats without compensation";
    match (fn_path fn, nolabel_args) with
    | Some [ "/." ], [ _num; den ] ->
      if
        ctx.div_scope && dangerous_divisor den
        && not (divisor_guarded ctx den)
      then
        fire ctx "float-div-unguarded" den.pexp_loc
          "divisor is a float difference with no dominating guard"
    | _ -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Traversal *)

let iterator ctx =
  let default = Ast_iterator.default_iterator in
  let case it c =
    it.Ast_iterator.pat it c.pc_lhs;
    match c.pc_guard with
    | None -> it.Ast_iterator.expr it c.pc_rhs
    | Some g ->
      it.Ast_iterator.expr it g;
      ctx.guards <- idents_of g :: ctx.guards;
      it.Ast_iterator.expr it c.pc_rhs;
      ctx.guards <- List.tl ctx.guards
  in
  let expr it e =
    check_expr ctx e;
    match e.pexp_desc with
    | Pexp_ifthenelse (c, yes, no) ->
      it.Ast_iterator.expr it c;
      ctx.guards <- idents_of c :: ctx.guards;
      it.Ast_iterator.expr it yes;
      Option.iter (it.Ast_iterator.expr it) no;
      ctx.guards <- List.tl ctx.guards
    | Pexp_while (c, body) ->
      it.Ast_iterator.expr it c;
      ctx.guards <- idents_of c :: ctx.guards;
      it.Ast_iterator.expr it body;
      ctx.guards <- List.tl ctx.guards
    | Pexp_match (scrut, cases) ->
      it.Ast_iterator.expr it scrut;
      ctx.guards <- idents_of scrut :: ctx.guards;
      List.iter (it.Ast_iterator.case it) cases;
      ctx.guards <- List.tl ctx.guards
    | Pexp_apply (fn, args) ->
      let bump =
        match fn_path fn with
        | Some [ "Domain"; "spawn" ] -> `Spawn
        | Some [ "Mutex"; "protect" ] | Some ("Atomic" :: _) -> `Protect
        | _ -> `None
      in
      it.Ast_iterator.expr it fn;
      (match bump with
      | `Spawn -> ctx.spawn_depth <- ctx.spawn_depth + 1
      | `Protect -> ctx.protect_depth <- ctx.protect_depth + 1
      | `None -> ());
      List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args;
      (match bump with
      | `Spawn -> ctx.spawn_depth <- ctx.spawn_depth - 1
      | `Protect -> ctx.protect_depth <- ctx.protect_depth - 1
      | `None -> ())
    | _ -> default.expr it e
  in
  { default with expr; case }

let check_structure ~path ~enabled ~report str =
  let ctx = make_ctx ~path ~enabled ~report in
  let it = iterator ctx in
  it.structure it str

(* ------------------------------------------------------------------ *)
(* Suppression: [@lattol.allow "rule-id ..."] ranges *)

type allow = {
  rules : string list;  (** [] means every rule *)
  lo : int;
  hi : int;
}

let allow_payload (a : attribute) =
  if a.attr_name.txt <> "lattol.allow" then None
  else
    let strings =
      match a.attr_payload with
      | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] ->
        let rec go e =
          match e.pexp_desc with
          | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
          | Pexp_tuple es -> List.concat_map go es
          | _ -> []
        in
        go e
      | _ -> []
    in
    let split s =
      String.split_on_char ',' s
      |> List.concat_map (String.split_on_char ' ')
      |> List.map String.trim
      |> List.filter (( <> ) "")
    in
    Some (List.concat_map split strings)

let allows_in attrs (loc : Location.t) =
  List.filter_map
    (fun a ->
      match allow_payload a with
      | None -> None
      | Some rules ->
        Some
          {
            rules;
            lo = loc.loc_start.Lexing.pos_cnum;
            hi = loc.loc_end.Lexing.pos_cnum;
          })
    attrs

let whole_file rules = { rules; lo = 0; hi = max_int }

let collect_allows str =
  let acc = ref [] in
  let add l = acc := l @ !acc in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun it e ->
          add (allows_in e.pexp_attributes e.pexp_loc);
          default.expr it e);
      pat =
        (fun it p ->
          add (allows_in p.ppat_attributes p.ppat_loc);
          default.pat it p);
      value_binding =
        (fun it vb ->
          add (allows_in vb.pvb_attributes vb.pvb_loc);
          default.value_binding it vb);
      module_binding =
        (fun it mb ->
          add (allows_in mb.pmb_attributes mb.pmb_loc);
          default.module_binding it mb);
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_attribute a -> (
            match allow_payload a with
            | Some rules -> add [ whole_file rules ]
            | None -> ())
          | Pstr_eval (_, attrs) -> add (allows_in attrs si.pstr_loc)
          | _ -> ());
          default.structure_item it si);
    }
  in
  it.structure it str;
  !acc

let suppressed allows (f : Finding.t) =
  List.exists
    (fun a ->
      f.Finding.offset >= a.lo && f.Finding.offset <= a.hi
      && (a.rules = [] || List.mem f.Finding.rule a.rules))
    allows
