type t = {
  file : string;
  line : int;
  col : int;
  offset : int;
  rule : string;
  message : string;
  hint : string;
}

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let pp_text ppf t =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" t.file t.line t.col t.rule t.message;
  if t.hint <> "" then Format.fprintf ppf "@\n    hint: %s" t.hint

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pp_json ppf t =
  Format.fprintf ppf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s","hint":"%s"}|}
    (json_escape t.file) t.line t.col (json_escape t.rule)
    (json_escape t.message) (json_escape t.hint)
