(** Phase 2: the whole-program half of the analysis.

    [build] merges the per-unit {!Callgraph} summaries and the
    {!Mutstate} inventory into one program; the {e parallel region} is
    everything reachable from a spawn-point closure
    ({!Callgraph.fn.par_root}), the {e hot region} everything reachable
    from a [[@lattol.hot]] annotation.  [analyze] evaluates the
    whole-program rules over those regions:

    - [dom-shared-mutation] — unprotected module-level mutable state
      mutated from the parallel region;
    - [dom-unprotected-read-write] — unprotected module-level mutable
      state read in the parallel region while mutated anywhere;
    - [det-prng-unsplit] — a shared toplevel [Prng] stream advanced from
      the parallel region (split streams per task instead);
    - [hot-alloc] — per-iteration allocation (closure, tuple, record,
      list, array, partial application) in the hot region. *)

type program

val build : Callgraph.t list -> Mutstate.global list -> program

val closure : edges:(string * string list) list -> roots:string list -> string list
(** Pure reachability over an explicit adjacency list; returns the
    sorted set of nodes reachable from [roots] (roots included).
    Exposed for the determinism/monotonicity property tests. *)

val parallel_roots : program -> string list
val hot_roots : program -> string list

val parallel_region : program -> Set.Make(String).t
val hot_region : program -> Set.Make(String).t

type reporter =
  rule:string ->
  file:string ->
  pos:Callgraph.pos ->
  message:string ->
  unit

val analyze : program -> enabled:(string -> bool) -> report:reporter -> unit
