(** Phase 1 of the whole-program analysis: per-compilation-unit function
    summaries over the {!Parsetree}, keyed by resolved value paths.

    Every toplevel (and nested-module) value binding becomes a node
    ["Unit.path"].  References are resolved syntactically: [Stdlib.] and
    library-wrapper prefixes ([Lattol_*]) are stripped, and unit-level
    [module Alias = ...] aliases are applied, so [Des.run],
    [Lattol_sim.Mms_des.run] and (from inside the unit) [run] all name
    the node ["Mms_des.run"].  Resolution is an over-approximation: a
    path that names nothing simply produces no edge.

    Closures handed to a spawn point — [Domain.spawn] or the
    [Pool.map]/[map_ctx]/[map_local]/[map_list]/[run] family — are
    collected as synthetic {e parallel-root} nodes ([par_root = true])
    hanging off the enclosing function; phase 2 starts its reachability
    sweep there.  Function bodies also record the domain-safety and
    allocation {!event}s that the phase-2 rules consume. *)

type pos = { line : int; col : int; offset : int }

val pos_of : Location.t -> pos

type event =
  | Mutate of { target : string; under_lock : bool }
      (** mutation of the value at resolved path [target]
          ([x := ], [Hashtbl.replace x], [x.f <- ], ...); [under_lock]
          when syntactically inside [Mutex.protect] *)
  | Read of { target : string; under_lock : bool }
      (** read of the value at [target] ([!x], [Hashtbl.find x], field
          access, ...) *)
  | Prng_draw of { op : string; target : string option }
      (** [Prng.op target]: a draw that advances the stream *)
  | Alloc of { what : string; in_loop : bool }
      (** heap allocation ([what] names the shape); [in_loop] when inside
          a [for]/[while] body or a closure handed to an iterator *)
  | Partial of { callee : string; given : int }
      (** application of [callee] with [given] positional arguments,
          recorded inside loops; phase 2 compares against the callee's
          arity *)

type fn = {
  id : string;            (** ["Unit.path"], or ["Unit.!par.L.C"] roots *)
  unit_name : string;
  file : string;
  pos : pos;
  arity : int;            (** leading [fun] parameters; 0 = not a function *)
  keyword_args : bool;    (** has labelled/optional params (arity unreliable) *)
  hot : bool;             (** carries [[@lattol.hot]] *)
  par_root : bool;        (** synthetic spawn-point closure *)
  calls : (string * pos) list;   (** resolved reference paths, in order *)
  events : (event * pos) list;
}

type t = {
  unit_name : string;
  file : string;
  fns : fn list;
}

val unit_name_of_file : string -> string
(** Capitalized basename without extension. *)

val summarize : file:string -> Parsetree.structure -> t
(** Deterministic: depends only on [file] and the structure. *)
