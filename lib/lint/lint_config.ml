type t = {
  disabled : string list;
  excludes : string list;
  mli_exempt : string list;
}

let empty = { disabled = []; excludes = []; mli_exempt = [] }

let normalize path =
  (* Windows-proof and prefix-proof: '/'-separated, no leading "./". *)
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let excluded t path =
  let wrapped = "/" ^ normalize path ^ "/" in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn > 0 && go 0
  in
  List.exists
    (fun e ->
      let e = normalize e in
      let e = if String.length e > 0 && e.[String.length e - 1] = '/' then
          String.sub e 0 (String.length e - 1) else e in
      e <> "" && contains wrapped ("/" ^ e ^ "/"))
    t.excludes

let enabled t rule = not (List.mem rule t.disabled)

let mli_exempt t path =
  (* Exemptions are exact normalized paths, or a trailing-suffix match so
     the same policy file works when the tree is linted from a sandbox
     prefix (dune cram, --root). *)
  let path = normalize path in
  List.exists
    (fun e ->
      let e = normalize e in
      e = path
      || (String.length path > String.length e
          && String.sub path (String.length path - String.length e - 1)
               (String.length e + 1)
             = "/" ^ e))
    t.mli_exempt

let strip s = String.trim s

let load ~file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text ->
    let rec go acc lineno = function
      | [] -> Ok acc
      | line :: rest -> (
        let line = strip line in
        if line = "" || line.[0] = '#' then go acc (lineno + 1) rest
        else
          match String.index_opt line ' ' with
          | None -> Error (Printf.sprintf "%s:%d: malformed directive %S" file lineno line)
          | Some i -> (
            let directive = String.sub line 0 i in
            let arg = strip (String.sub line i (String.length line - i)) in
            match directive with
            | "disable" -> go { acc with disabled = arg :: acc.disabled } (lineno + 1) rest
            | "enable" ->
              go { acc with disabled = List.filter (( <> ) arg) acc.disabled }
                (lineno + 1) rest
            | "exclude" -> go { acc with excludes = arg :: acc.excludes } (lineno + 1) rest
            | "mli-exempt" ->
              go { acc with mli_exempt = arg :: acc.mli_exempt } (lineno + 1) rest
            | d -> Error (Printf.sprintf "%s:%d: unknown directive %S" file lineno d)))
    in
    go empty 1 (String.split_on_char '\n' text)

let with_rules_spec ~known ~spec t =
  let tokens =
    List.filter (( <> ) "") (List.map strip (String.split_on_char ',' spec))
  in
  let classify tok =
    if String.length tok > 1 && tok.[0] = '+' then
      `Plus (String.sub tok 1 (String.length tok - 1))
    else if String.length tok > 1 && tok.[0] = '-' then
      `Minus (String.sub tok 1 (String.length tok - 1))
    else `Bare tok
  in
  let classified = List.map classify tokens in
  let name = function `Plus n | `Minus n | `Bare n -> n in
  match List.find_opt (fun c -> not (List.mem (name c) known)) classified with
  | Some c -> Error (Printf.sprintf "unknown rule id %S in --rules" (name c))
  | None ->
    let bare = List.filter_map (function `Bare n -> Some n | _ -> None) classified in
    let plus = List.filter_map (function `Plus n -> Some n | _ -> None) classified in
    let minus = List.filter_map (function `Minus n -> Some n | _ -> None) classified in
    let disabled =
      if bare <> [] then
        (* Selection mode: only the named rules run. *)
        List.filter (fun r -> not (List.mem r bare || List.mem r plus)) known
        @ minus
      else List.filter (fun r -> not (List.mem r plus)) t.disabled @ minus
    in
    Ok { t with disabled }
