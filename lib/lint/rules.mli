(** The rule pack: parsetree checks over one compilation unit.

    Every rule is syntactic — the linter works on the {!Parsetree}, before
    typing — so the float-bearing and guard tests are documented
    heuristics, tuned to this repository's idioms, with
    [[@lattol.allow "rule-id"]] as the escape hatch where an invariant
    holds for reasons the syntax cannot show. *)

type meta = {
  id : string;       (** e.g. ["float-polycompare"] *)
  family : string;   (** ["determinism"], ["float-safety"], ["domain-safety"] *)
  summary : string;
  hint : string;
}

val metas : meta list
(** Every shipped rule, including the driver-level ["hyg-mli-missing"]. *)

val rule_ids : string list

val meta_of_id : string -> meta option

val check_structure :
  path:string ->
  enabled:(string -> bool) ->
  report:(rule:string -> loc:Location.t -> message:string -> unit) ->
  Parsetree.structure ->
  unit
(** Run every AST rule over one implementation.  [path] (the
    '/'-normalized path the file was found under) selects which scoped
    rules apply; [report] receives each violation before suppression
    filtering. *)

(** {1 Suppression} *)

type allow = {
  rules : string list;  (** [] means every rule *)
  lo : int;             (** byte-offset range of the carrying node *)
  hi : int;
}

val collect_allows : Parsetree.structure -> allow list
(** All [[@lattol.allow "rule-id"]] / [[@@@lattol.allow "rule-id"]]
    attributes, each with the byte range of the expression, pattern,
    binding or module it annotates (the whole file for floating
    attributes).  Several ids may be given in one string, separated by
    spaces or commas. *)

val suppressed : allow list -> Finding.t -> bool

val in_dir : string -> string list -> bool
(** [in_dir path segs] — do [segs] occur as consecutive segments of
    [path]?  Exposed for the driver's own path scoping. *)
