(* Phase 2: assemble the per-unit summaries into one program, compute the
   parallel and hot regions by reachability over the call graph, and
   evaluate the whole-program rules. *)

module Smap = Map.Make (String)
module Sset = Set.Make (String)

type program = {
  fns : Callgraph.fn Smap.t;          (* id -> node (duplicates merged) *)
  globals : Mutstate.global Smap.t;   (* id -> global *)
}

let build summaries globals =
  let fns =
    List.fold_left
      (fun m (s : Callgraph.t) ->
        List.fold_left
          (fun m (f : Callgraph.fn) ->
            match Smap.find_opt f.id m with
            | None -> Smap.add f.id f m
            | Some prev ->
              (* duplicate unit names (or shadowed bindings): merge the
                 edges and events so reachability stays an
                 over-approximation *)
              Smap.add f.id
                {
                  prev with
                  calls = prev.calls @ f.calls;
                  events = prev.events @ f.events;
                  hot = prev.hot || f.hot;
                  par_root = prev.par_root || f.par_root;
                }
                m)
          m s.Callgraph.fns)
      Smap.empty summaries
  in
  let globals =
    List.fold_left
      (fun m (g : Mutstate.global) -> Smap.add g.Mutstate.id g m)
      Smap.empty globals
  in
  { fns; globals }

(* Resolve a reference [path] made from inside [unit_name]: a definition
   in the referencing unit shadows a unit of the same name. *)
let resolve_in tbl ~unit_name path =
  let own = unit_name ^ "." ^ path in
  if Smap.mem own tbl then Some own
  else if Smap.mem path tbl then Some path
  else None

let resolve_fn p ~unit_name path = resolve_in p.fns ~unit_name path
let resolve_global p ~unit_name path = resolve_in p.globals ~unit_name path

(* ------------------------------------------------------------------ *)
(* Reachability.  Pure worklist closure over an explicit edge list —
   exposed for the property tests (determinism, monotonicity). *)

let closure ~edges ~roots =
  let adj =
    List.fold_left
      (fun m (src, dsts) ->
        let prev = Option.value ~default:[] (Smap.find_opt src m) in
        Smap.add src (prev @ dsts) m)
      Smap.empty edges
  in
  let rec go seen = function
    | [] -> seen
    | n :: rest ->
      if Sset.mem n seen then go seen rest
      else
        let seen = Sset.add n seen in
        let next = Option.value ~default:[] (Smap.find_opt n adj) in
        go seen (next @ rest)
  in
  Sset.elements (go Sset.empty roots)

let edges_of p =
  Smap.fold
    (fun id (f : Callgraph.fn) acc ->
      let dsts =
        List.filter_map
          (fun (path, _) -> resolve_fn p ~unit_name:f.unit_name path)
          f.calls
      in
      (id, List.sort_uniq String.compare dsts) :: acc)
    p.fns []
  |> List.rev

let region p ~roots = Sset.of_list (closure ~edges:(edges_of p) ~roots)

let parallel_roots p =
  Smap.fold
    (fun id (f : Callgraph.fn) acc -> if f.par_root then id :: acc else acc)
    p.fns []
  |> List.rev

let hot_roots p =
  Smap.fold
    (fun id (f : Callgraph.fn) acc -> if f.hot then id :: acc else acc)
    p.fns []
  |> List.rev

let parallel_region p = region p ~roots:(parallel_roots p)
let hot_region p = region p ~roots:(hot_roots p)

(* ------------------------------------------------------------------ *)
(* Rule evaluation *)

type reporter =
  rule:string ->
  file:string ->
  pos:Callgraph.pos ->
  message:string ->
  unit

let in_region region (f : Callgraph.fn) = Sset.mem f.id region

(* Pretty name for a region member in messages: strip synthetic suffixes. *)
let root_name id =
  match String.index_opt id '!' with
  | Some i when i > 0 && id.[i - 1] = '.' -> String.sub id 0 (i - 1)
  | Some i -> String.sub id 0 i
  | None -> id

let shared_kinds_hazard (g : Mutstate.global) =
  (not g.protected) && g.kind <> Mutstate.Prng

(* Globals mutated anywhere in the program (by any function, parallel or
   not), used by the read-write rule: a region read races with a main-
   domain write just as much as with a region write. *)
let mutated_anywhere p =
  Smap.fold
    (fun _ (f : Callgraph.fn) acc ->
      List.fold_left
        (fun acc (ev, _) ->
          match ev with
          | Callgraph.Mutate { target; _ } -> (
            match resolve_global p ~unit_name:f.unit_name target with
            | Some id -> Sset.add id acc
            | None -> acc)
          | _ -> acc)
        acc f.events)
    p.fns Sset.empty

let analyze p ~enabled ~(report : reporter) =
  let par = parallel_region p in
  let hot = hot_region p in
  let writers = mutated_anywhere p in
  let fire rule (f : Callgraph.fn) pos fmt =
    Printf.ksprintf
      (fun message ->
        if enabled rule then
          report ~rule ~file:f.Callgraph.file ~pos ~message)
      fmt
  in
  Smap.iter
    (fun _ (f : Callgraph.fn) ->
      let fn_in_par = in_region par f in
      let fn_in_hot = in_region hot f in
      List.iter
        (fun (ev, pos) ->
          match ev with
          | Callgraph.Mutate { target; under_lock } when fn_in_par -> (
            match resolve_global p ~unit_name:f.unit_name target with
            | Some gid ->
              let g = Smap.find gid p.globals in
              if shared_kinds_hazard g && not under_lock then
                fire "dom-shared-mutation" f pos
                  "toplevel %s %s is mutated from the parallel region \
                   (via %s) without Atomic/Mutex.protect"
                  (Mutstate.kind_name g.kind) g.id (root_name f.id)
            | None -> ())
          | Callgraph.Read { target; under_lock } when fn_in_par -> (
            match resolve_global p ~unit_name:f.unit_name target with
            | Some gid ->
              let g = Smap.find gid p.globals in
              if
                shared_kinds_hazard g && (not under_lock)
                && Sset.mem gid writers
              then
                fire "dom-unprotected-read-write" f pos
                  "toplevel %s %s is read in the parallel region (via %s) \
                   while also being mutated elsewhere"
                  (Mutstate.kind_name g.kind) g.id (root_name f.id)
            | None -> ())
          | Callgraph.Prng_draw { op; target } when fn_in_par -> (
            match target with
            | None -> ()
            | Some t -> (
              match resolve_global p ~unit_name:f.unit_name t with
              | Some gid ->
                let g = Smap.find gid p.globals in
                if g.kind = Mutstate.Prng then
                  fire "det-prng-unsplit" f pos
                    "Prng.%s draws from the shared toplevel stream %s \
                     inside the parallel region" op g.id
              | None -> ()))
          | Callgraph.Alloc { what; in_loop } when fn_in_hot && f.arity > 0 ->
            (* On the annotated root itself only loop-body allocations
               are per-iteration; in a transitive callee every
               allocation repeats with the calling loop.  Zero-arity
               bindings are constants evaluated once at module init, so
               reaching one through the call graph is not a hot
               allocation. *)
            if in_loop || not f.hot then
              fire "hot-alloc" f pos
                "%s allocated %s in the hot region (%s)" what
                (if in_loop then "per iteration" else "per call")
                (root_name f.id)
          | Callgraph.Partial { callee; given } when fn_in_hot -> (
            match resolve_fn p ~unit_name:f.unit_name callee with
            | Some cid ->
              let c = Smap.find cid p.fns in
              if
                c.Callgraph.arity > given && given > 0
                && not c.Callgraph.keyword_args
              then
                fire "hot-alloc" f pos
                  "partial application of %s (%d of %d arguments) \
                   allocates a closure per iteration" cid given
                  c.Callgraph.arity
            | None -> ())
          | _ -> ())
        f.events)
    p.fns
