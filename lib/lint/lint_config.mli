(** Per-run rule policy: which rules are enabled and which paths are
    skipped.  Sourced from a [.lattol-lint] file (one directive per line:
    [disable <rule-id>], [enable <rule-id>], [exclude <path>],
    [mli-exempt <path>], [#] comments) and refined by the [--rules]
    command-line spec. *)

type t = {
  disabled : string list;    (** rule ids that do not run *)
  excludes : string list;    (** path fragments whose files are skipped *)
  mli_exempt : string list;
      (** files deliberately without an interface: [hyg-mli-missing] skips
          them by policy instead of by accident *)
}

val empty : t

val load : file:string -> (t, string) result

val with_rules_spec : known:string list -> spec:string -> t -> (t, string) result
(** [--rules] spec: comma-separated tokens.  A bare [id] selects only the
    named rules; [+id] / [-id] enable / disable relative to the current
    policy.  Unknown ids are an error. *)

val enabled : t -> string -> bool

val excluded : t -> string -> bool
(** Does any [exclude] fragment match the ('/'-normalized) path as a
    whole-segment subpath? *)

val mli_exempt : t -> string -> bool
(** Is the path (or its trailing suffix, so sandbox prefixes don't defeat
    the policy) listed under an [mli-exempt] directive? *)

val normalize : string -> string
