(** A single rule violation, with enough position information both to
    render a [file:line:col] diagnostic and to match suppression ranges
    (byte offsets within the file). *)

type t = {
  file : string;  (** path as given to the driver, '/'-separated *)
  line : int;     (** 1-based *)
  col : int;      (** 0-based, as the compiler reports *)
  offset : int;   (** byte offset of the violation start, for suppression *)
  rule : string;  (** rule id, e.g. ["det-random"] *)
  message : string;
  hint : string;
}

val compare : t -> t -> int
(** Order by file, line, col, rule — the report order. *)

val pp_text : Format.formatter -> t -> unit
(** Two-line human rendering: [file:line:col: [rule] message] followed by
    an indented hint. *)

val json_escape : string -> string
(** Escape a string for inclusion in a JSON string literal. *)

val pp_json : Format.formatter -> t -> unit
(** One JSON object, no trailing newline. *)
