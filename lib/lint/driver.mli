(** The standalone analysis driver, now two-phase.

    Phase 1 walks the source roots, parses every [.ml]/[.mli] with
    compiler-libs exactly once, and runs the per-file rule pack
    ({!Rules.check_structure}) plus the interface-file gate.  Phase 2
    feeds every parsed unit into the whole-program analysis — the
    {!Callgraph} summaries and the {!Mutstate} inventory are merged and
    {!Reach.analyze} evaluates the cross-module rules
    ([dom-shared-mutation], [dom-unprotected-read-write],
    [det-prng-unsplit], [hot-alloc]) over the parallel and hot regions.
    [[@lattol.allow]] ranges suppress findings from either phase, and an
    optional {!baseline} accept-list demotes grandfathered findings
    while flagging stale entries. *)

type stats = {
  files : int;       (** source files parsed *)
  findings : int;    (** violations after suppression and baseline *)
  suppressed : int;  (** violations silenced by [[@lattol.allow]] *)
  baselined : int;   (** violations accepted by the baseline file *)
  by_rule : (string * int) list;  (** per-rule finding counts, sorted *)
}

type result = {
  findings : Finding.t list;  (** sorted by file, line, col, rule *)
  stats : stats;
}

val walk : Lint_config.t -> string list -> string list
(** Expand roots (files or directories) into the sorted list of source
    files, honoring the config's excludes and skipping [_build] and
    dot-directories.  Raises [Sys_error] on a nonexistent root. *)

(** {1 Baseline accept-list} *)

type baseline

val load_baseline : file:string -> (baseline, string) Stdlib.result
(** One entry per line — [rule path] — with ['#'] comments.  An entry
    silences every finding of that rule in that (normalized) file and is
    counted under {!stats.baselined}; an entry that silences nothing
    yields a ["baseline-stale"] finding (unless its rule is disabled),
    so a fixed finding must be deleted from the committed file. *)

val run :
  config:Lint_config.t -> ?baseline:baseline -> roots:string list -> unit ->
  result

val print_text : ?stats:bool -> Format.formatter -> result -> unit

val print_json : Format.formatter -> result -> unit

val print_sarif : Format.formatter -> result -> unit
(** SARIF 2.1.0 for code-scanning upload: the full rule pack under
    [tool.driver.rules], one [result] per finding, deterministic byte
    output. *)
