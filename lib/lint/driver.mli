(** The standalone analysis driver: walk source roots, parse every
    [.ml]/[.mli] with compiler-libs, run the rule pack, filter
    suppressions, and render the report. *)

type stats = {
  files : int;       (** source files parsed *)
  findings : int;    (** violations after suppression filtering *)
  suppressed : int;  (** violations silenced by [[@lattol.allow]] *)
  by_rule : (string * int) list;  (** per-rule finding counts, sorted *)
}

type result = {
  findings : Finding.t list;  (** sorted by file, line, col, rule *)
  stats : stats;
}

val walk : Lint_config.t -> string list -> string list
(** Expand roots (files or directories) into the sorted list of source
    files, honoring the config's excludes and skipping [_build] and
    dot-directories.  Raises [Sys_error] on a nonexistent root. *)

val lint_file : Lint_config.t -> string -> Finding.t list * int
(** Lint one file; returns surviving findings and the number suppressed.
    An unparseable file yields a single ["parse-error"] finding. *)

val run : config:Lint_config.t -> roots:string list -> result

val print_text : ?stats:bool -> Format.formatter -> result -> unit

val print_json : Format.formatter -> result -> unit
