type stats = {
  files : int;
  findings : int;
  suppressed : int;
  by_rule : (string * int) list;
}

type result = {
  findings : Finding.t list;
  stats : stats;
}

(* ------------------------------------------------------------------ *)
(* File discovery *)

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let skip_dir name =
  name = "_build" || (String.length name > 0 && name.[0] = '.')

let walk config roots =
  let rec go acc p =
    if Lint_config.excluded config p then acc
    else if Sys.is_directory p then
      Array.fold_left
        (fun acc entry ->
          if skip_dir entry then acc else go acc (Filename.concat p entry))
        acc
        (let entries = Sys.readdir p in
         Array.sort String.compare entries;
         entries)
    else if is_source p then p :: acc
    else acc
  in
  List.sort_uniq String.compare (List.fold_left go [] roots)

(* ------------------------------------------------------------------ *)
(* Parsing *)

let squash_ws s =
  let b = Buffer.create (String.length s) in
  let last_blank = ref false in
  String.iter
    (fun c ->
      if c = '\n' || c = '\t' || c = ' ' then begin
        if not !last_blank then Buffer.add_char b ' ';
        last_blank := true
      end
      else begin
        Buffer.add_char b c;
        last_blank := false
      end)
    (String.trim s);
  Buffer.contents b

let parse_error_finding ~file exn =
  let message =
    match Location.error_of_exn exn with
    | Some (`Ok report) -> squash_ws (Format.asprintf "%a" Location.print_report report)
    | _ -> squash_ws (Printexc.to_string exn)
  in
  {
    Finding.file;
    line = 1;
    col = 0;
    offset = 0;
    rule = "parse-error";
    message;
    hint = "the file must parse for the rule pack to run";
  }

(* ------------------------------------------------------------------ *)
(* Per-file linting *)

let hint_of rule =
  match Rules.meta_of_id rule with Some m -> m.Rules.hint | None -> ""

let lint_file config file =
  let path = Lint_config.normalize file in
  let enabled r = Lint_config.enabled config r in
  if Filename.check_suffix file ".mli" then
    (* Interfaces carry no expressions; parsing them still catches rot. *)
    match Pparse.parse_interface ~tool_name:"lattol-lint" file with
    | _ -> ([], 0)
    | exception exn -> ([ parse_error_finding ~file:path exn ], 0)
  else
    match Pparse.parse_implementation ~tool_name:"lattol-lint" file with
    | exception exn -> ([ parse_error_finding ~file:path exn ], 0)
    | str ->
      let allows = Rules.collect_allows str in
      let raw = ref [] in
      let report ~rule ~loc ~message =
        let pos = loc.Location.loc_start in
        raw :=
          {
            Finding.file = path;
            line = pos.Lexing.pos_lnum;
            col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
            offset = pos.Lexing.pos_cnum;
            rule;
            message;
            hint = hint_of rule;
          }
          :: !raw
      in
      Rules.check_structure ~path ~enabled ~report str;
      if
        enabled "hyg-mli-missing"
        && List.mem "lib" (String.split_on_char '/' path)
        && not (Sys.file_exists (file ^ "i"))
      then
        raw :=
          {
            Finding.file = path;
            line = 1;
            col = 0;
            offset = 0;
            rule = "hyg-mli-missing";
            message = "module has no interface file";
            hint = hint_of "hyg-mli-missing";
          }
          :: !raw;
      let kept, dropped =
        List.partition (fun f -> not (Rules.suppressed allows f)) !raw
      in
      (kept, List.length dropped)

let run ~config ~roots =
  let files = walk config roots in
  let findings, suppressed =
    List.fold_left
      (fun (fs, n) file ->
        let kept, dropped = lint_file config file in
        (kept @ fs, n + dropped))
      ([], 0) files
  in
  let findings = List.sort Finding.compare findings in
  let by_rule =
    List.sort_uniq compare (List.map (fun f -> f.Finding.rule) findings)
    |> List.map (fun r ->
           ( r,
             List.length
               (List.filter (fun f -> f.Finding.rule = r) findings) ))
  in
  {
    findings;
    stats =
      {
        files = List.length files;
        findings = List.length findings;
        suppressed;
        by_rule;
      };
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let print_text ?(stats = false) ppf r =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp_text f) r.findings;
  if stats then begin
    Format.fprintf ppf "files scanned: %d@." r.stats.files;
    Format.fprintf ppf "findings: %d (suppressed: %d)@." r.stats.findings
      r.stats.suppressed;
    List.iter
      (fun (rule, n) -> Format.fprintf ppf "  %s: %d@." rule n)
      r.stats.by_rule
  end

let print_json ppf r =
  Format.fprintf ppf {|{"tool":"lattol-lint","format_version":1,"findings":[|};
  List.iteri
    (fun i f ->
      if i > 0 then Format.pp_print_char ppf ',';
      Finding.pp_json ppf f)
    r.findings;
  Format.fprintf ppf {|],"stats":{"files":%d,"findings":%d,"suppressed":%d,|}
    r.stats.files r.stats.findings r.stats.suppressed;
  Format.fprintf ppf {|"by_rule":{|};
  List.iteri
    (fun i (rule, n) ->
      if i > 0 then Format.pp_print_char ppf ',';
      Format.fprintf ppf {|"%s":%d|} (Finding.json_escape rule) n)
    r.stats.by_rule;
  Format.fprintf ppf "}}}@."
