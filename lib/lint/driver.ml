type stats = {
  files : int;
  findings : int;
  suppressed : int;
  baselined : int;
  by_rule : (string * int) list;
}

type result = {
  findings : Finding.t list;
  stats : stats;
}

(* ------------------------------------------------------------------ *)
(* File discovery *)

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let skip_dir name =
  name = "_build" || (String.length name > 0 && name.[0] = '.')

let walk config roots =
  let rec go acc p =
    if Lint_config.excluded config p then acc
    else if Sys.is_directory p then
      Array.fold_left
        (fun acc entry ->
          if skip_dir entry then acc else go acc (Filename.concat p entry))
        acc
        (let entries = Sys.readdir p in
         Array.sort String.compare entries;
         entries)
    else if is_source p then p :: acc
    else acc
  in
  List.sort_uniq String.compare (List.fold_left go [] roots)

(* ------------------------------------------------------------------ *)
(* Parsing *)

let squash_ws s =
  let b = Buffer.create (String.length s) in
  let last_blank = ref false in
  String.iter
    (fun c ->
      if c = '\n' || c = '\t' || c = ' ' then begin
        if not !last_blank then Buffer.add_char b ' ';
        last_blank := true
      end
      else begin
        Buffer.add_char b c;
        last_blank := false
      end)
    (String.trim s);
  Buffer.contents b

let parse_error_finding ~file exn =
  let message =
    match Location.error_of_exn exn with
    | Some (`Ok report) -> squash_ws (Format.asprintf "%a" Location.print_report report)
    | _ -> squash_ws (Printexc.to_string exn)
  in
  {
    Finding.file;
    line = 1;
    col = 0;
    offset = 0;
    rule = "parse-error";
    message;
    hint = "the file must parse for the rule pack to run";
  }

let hint_of rule =
  match Rules.meta_of_id rule with Some m -> m.Rules.hint | None -> ""

(* ------------------------------------------------------------------ *)
(* Baseline: a committed accept-list of grandfathered findings.  One
   entry per line, [rule path], '#' comments.  An entry silences every
   finding of that rule in that file; an entry that silences nothing is
   itself an error ("baseline-stale"), so a fixed finding cannot linger
   in the accept-list unnoticed. *)

type baseline_entry = {
  b_rule : string;
  b_path : string;
  b_line : int;
}

type baseline = {
  b_file : string;
  entries : baseline_entry list;
}

let load_baseline ~file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text ->
    let rec go acc lineno = function
      | [] -> Ok { b_file = Lint_config.normalize file; entries = List.rev acc }
      | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc (lineno + 1) rest
        else
          match String.index_opt line ' ' with
          | None ->
            Error
              (Printf.sprintf "%s:%d: malformed baseline entry %S (want: rule path)"
                 file lineno line)
          | Some i ->
            let b_rule = String.sub line 0 i in
            let b_path =
              Lint_config.normalize
                (String.trim (String.sub line i (String.length line - i)))
            in
            go ({ b_rule; b_path; b_line = lineno } :: acc) (lineno + 1) rest)
    in
    go [] 1 (String.split_on_char '\n' text)

(* ------------------------------------------------------------------ *)
(* The hyg-mli-missing gate.

   Interface files are the contract of reusable modules: everything under
   lib/, plus the support-tool modules under tools/ and test/ (where dune's
   [test_*.ml] runner convention marks the alcotest executables).  A module
   that is deliberately a bare executable is exempted explicitly through an
   'mli-exempt' policy directive — by decision, not because a directory
   happened to fall outside the gate. *)

let mli_scope path =
  let base = Filename.basename path in
  let is_test_runner =
    String.length base >= 5 && String.sub base 0 5 = "test_"
  in
  Rules.in_dir path [ "lib" ]
  || Rules.in_dir path [ "tools" ]
  || (Rules.in_dir path [ "test" ] && not is_test_runner)

(* ------------------------------------------------------------------ *)
(* The two-phase run *)

type parsed_unit = {
  u_file : string;  (* as walked, for sibling-file checks *)
  u_path : string;  (* normalized, used in findings *)
  u_str : Parsetree.structure;
  u_allows : Rules.allow list;
}

let run ~config ?baseline ~roots () =
  let files = walk config roots in
  let enabled r = Lint_config.enabled config r in
  let naked = ref [] in  (* findings with no suppression context *)
  let units = ref [] in
  List.iter
    (fun file ->
      let path = Lint_config.normalize file in
      if Filename.check_suffix file ".mli" then begin
        (* Interfaces carry no expressions; parsing them still catches rot. *)
        match Pparse.parse_interface ~tool_name:"lattol-lint" file with
        | _ -> ()
        | exception exn -> naked := parse_error_finding ~file:path exn :: !naked
      end
      else
        match Pparse.parse_implementation ~tool_name:"lattol-lint" file with
        | exception exn -> naked := parse_error_finding ~file:path exn :: !naked
        | str ->
          units :=
            { u_file = file; u_path = path; u_str = str;
              u_allows = Rules.collect_allows str }
            :: !units)
    files;
  let units = List.rev !units in
  (* raw findings per normalized path, phase 1 and phase 2 combined *)
  let raw : (string, Finding.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let add (f : Finding.t) =
    let cell =
      match Hashtbl.find_opt raw f.Finding.file with
      | Some c -> c
      | None ->
        let c = ref [] in
        Hashtbl.add raw f.Finding.file c;
        c
    in
    cell := f :: !cell
  in
  (* Phase 1: per-file syntactic rules *)
  List.iter
    (fun u ->
      let report ~rule ~loc ~message =
        let pos = loc.Location.loc_start in
        add
          {
            Finding.file = u.u_path;
            line = pos.Lexing.pos_lnum;
            col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
            offset = pos.Lexing.pos_cnum;
            rule;
            message;
            hint = hint_of rule;
          }
      in
      Rules.check_structure ~path:u.u_path ~enabled ~report u.u_str;
      if
        enabled "hyg-mli-missing" && mli_scope u.u_path
        && (not (Lint_config.mli_exempt config u.u_path))
        && not (Sys.file_exists (u.u_file ^ "i"))
      then
        add
          {
            Finding.file = u.u_path;
            line = 1;
            col = 0;
            offset = 0;
            rule = "hyg-mli-missing";
            message = "module has no interface file";
            hint = hint_of "hyg-mli-missing";
          })
    units;
  (* Phase 2: whole-program analysis over every parsed unit at once *)
  let summaries =
    List.map (fun u -> Callgraph.summarize ~file:u.u_path u.u_str) units
  in
  let globals =
    List.concat_map (fun u -> Mutstate.scan ~file:u.u_path u.u_str) units
  in
  let program = Reach.build summaries globals in
  Reach.analyze program ~enabled
    ~report:(fun ~rule ~file ~pos ~message ->
      add
        {
          Finding.file;
          line = pos.Callgraph.line;
          col = pos.Callgraph.col;
          offset = pos.Callgraph.offset;
          rule;
          message;
          hint = hint_of rule;
        });
  (* Suppression: [@lattol.allow] ranges of the carrying file apply to
     phase-1 and phase-2 findings alike. *)
  let findings, suppressed =
    List.fold_left
      (fun (fs, n) u ->
        match Hashtbl.find_opt raw u.u_path with
        | None -> (fs, n)
        | Some cell ->
          let kept, dropped =
            List.partition
              (fun f -> not (Rules.suppressed u.u_allows f))
              !cell
          in
          (kept @ fs, n + List.length dropped))
      (!naked, 0) units
  in
  (* Baseline: demote accepted findings, surface stale entries. *)
  let findings, baselined =
    match baseline with
    | None -> (findings, 0)
    | Some b ->
      let hit = Array.make (List.length b.entries) false in
      let kept =
        List.filter
          (fun (f : Finding.t) ->
            let matched = ref false in
            List.iteri
              (fun i e ->
                if e.b_rule = f.Finding.rule && e.b_path = f.Finding.file
                then begin
                  hit.(i) <- true;
                  matched := true
                end)
              b.entries;
            not !matched)
          findings
      in
      let stale =
        List.concat
          (List.mapi
             (fun i e ->
               if hit.(i) || not (enabled e.b_rule) then []
               else
                 [
                   {
                     Finding.file = b.b_file;
                     line = e.b_line;
                     col = 0;
                     offset = 0;
                     rule = "baseline-stale";
                     message =
                       Printf.sprintf
                         "baseline entry '%s %s' matched no finding"
                         e.b_rule e.b_path;
                     hint =
                       "the grandfathered finding is gone: delete this \
                        line so the fix is locked in";
                   };
                 ])
             b.entries)
      in
      (stale @ kept, List.length findings - List.length kept)
  in
  let findings = List.sort Finding.compare findings in
  let by_rule =
    List.sort_uniq compare (List.map (fun f -> f.Finding.rule) findings)
    |> List.map (fun r ->
           ( r,
             List.length
               (List.filter (fun f -> f.Finding.rule = r) findings) ))
  in
  {
    findings;
    stats =
      {
        files = List.length files;
        findings = List.length findings;
        suppressed;
        baselined;
        by_rule;
      };
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let print_text ?(stats = false) ppf r =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp_text f) r.findings;
  if stats then begin
    Format.fprintf ppf "files scanned: %d@." r.stats.files;
    Format.fprintf ppf "findings: %d (suppressed: %d)@." r.stats.findings
      r.stats.suppressed;
    if r.stats.baselined > 0 then
      Format.fprintf ppf "baselined: %d@." r.stats.baselined;
    List.iter
      (fun (rule, n) -> Format.fprintf ppf "  %s: %d@." rule n)
      r.stats.by_rule
  end

let print_json ppf r =
  Format.fprintf ppf {|{"tool":"lattol-lint","format_version":1,"findings":[|};
  List.iteri
    (fun i f ->
      if i > 0 then Format.pp_print_char ppf ',';
      Finding.pp_json ppf f)
    r.findings;
  Format.fprintf ppf {|],"stats":{"files":%d,"findings":%d,"suppressed":%d,|}
    r.stats.files r.stats.findings r.stats.suppressed;
  if r.stats.baselined > 0 then
    Format.fprintf ppf {|"baselined":%d,|} r.stats.baselined;
  Format.fprintf ppf {|"by_rule":{|};
  List.iteri
    (fun i (rule, n) ->
      if i > 0 then Format.pp_print_char ppf ',';
      Format.fprintf ppf {|"%s":%d|} (Finding.json_escape rule) n)
    r.stats.by_rule;
  Format.fprintf ppf "}}}@."

(* SARIF 2.1.0, the minimum GitHub code scanning accepts: one run, the
   full rule pack under tool.driver, one result per finding.  Output is
   deterministic (findings are sorted, the pack order is fixed). *)
let print_sarif ppf r =
  let e = Finding.json_escape in
  Format.fprintf ppf
    {|{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"lattol-lint","informationUri":"https://github.com/lattol/lattol","rules":[|};
  List.iteri
    (fun i m ->
      if i > 0 then Format.pp_print_char ppf ',';
      Format.fprintf ppf
        {|{"id":"%s","shortDescription":{"text":"%s"},"help":{"text":"%s"},"properties":{"family":"%s"}}|}
        (e m.Rules.id) (e m.Rules.summary) (e m.Rules.hint) (e m.Rules.family))
    Rules.metas;
  Format.fprintf ppf {|]}},"results":[|};
  List.iteri
    (fun i (f : Finding.t) ->
      if i > 0 then Format.pp_print_char ppf ',';
      let text =
        if f.hint = "" then f.message else f.message ^ "; hint: " ^ f.hint
      in
      Format.fprintf ppf
        {|{"ruleId":"%s","level":"error","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d,"startColumn":%d}}}]}|}
        (e f.rule) (e text) (e f.file) f.line (f.col + 1))
    r.findings;
  Format.fprintf ppf {|]}]}|};
  Format.pp_print_newline ppf ()
