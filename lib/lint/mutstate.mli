(** Phase 1 inventory of module-level mutable state.

    A {e global} is a toplevel (or nested-module toplevel) binding whose
    right-hand side is a known mutable constructor: [ref], [Hashtbl.create],
    [Buffer]/[Queue]/[Stack.create], an array maker or literal, a record
    literal with a field the unit declares [mutable], a [Prng] stream, an
    [Atomic.make], a [Domain.DLS.new_key], or a [Mutex.create].

    [protected] classifies the def-site discipline: [Atomic] and [DLS]
    values synchronize themselves (and a [Mutex] is the lock, not the
    hazard); everything else is only safe when every parallel-region
    access is wrapped in [Mutex.protect] — a use-site property that
    phase 2 checks per {!Callgraph.event}. *)

type kind =
  | Ref
  | Table
  | Buffer
  | Queue
  | Stack
  | Array_
  | Mutable_record
  | Prng
  | Atomic
  | Dls
  | Lock

val kind_name : kind -> string
val kind_protected : kind -> bool

type global = {
  id : string;           (** ["Unit.path"], same key space as {!Callgraph} *)
  unit_name : string;
  name : string;
  kind : kind;
  protected : bool;
  file : string;
  pos : Callgraph.pos;
}

val scan : file:string -> Parsetree.structure -> global list
(** Deterministic; order follows the source. *)
