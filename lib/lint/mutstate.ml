open Parsetree

type kind =
  | Ref
  | Table
  | Buffer
  | Queue
  | Stack
  | Array_
  | Mutable_record
  | Prng
  | Atomic
  | Dls
  | Lock

let kind_name = function
  | Ref -> "ref"
  | Table -> "Hashtbl"
  | Buffer -> "Buffer"
  | Queue -> "Queue"
  | Stack -> "Stack"
  | Array_ -> "array"
  | Mutable_record -> "mutable record"
  | Prng -> "Prng stream"
  | Atomic -> "Atomic"
  | Dls -> "Domain.DLS key"
  | Lock -> "Mutex"

(* Atomic and DLS carry their own synchronization; a Mutex is the lock,
   not the hazard. *)
let kind_protected = function
  | Atomic | Dls | Lock -> true
  | Ref | Table | Buffer | Queue | Stack | Array_ | Mutable_record | Prng ->
    false

type global = {
  id : string;
  unit_name : string;
  name : string;
  kind : kind;
  protected : bool;
  file : string;
  pos : Callgraph.pos;
}

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply _ -> []

let strip_wrapper = function
  | ("Stdlib" | "Pervasives") :: (_ :: _ as rest) -> rest
  | w :: (_ :: _ as rest)
    when String.length w > 7 && String.sub w 0 7 = "Lattol_" ->
    rest
  | l -> l

let maker_kind = function
  | [ "ref" ] -> Some Ref
  | [ "Hashtbl"; "create" ] -> Some Table
  | [ "Buffer"; "create" ] -> Some Buffer
  | [ "Queue"; "create" ] -> Some Queue
  | [ "Stack"; "create" ] -> Some Stack
  | [ "Array"; ("make" | "init" | "make_matrix" | "copy" | "of_list"
               | "create_float" | "append") ]
  | [ "Bytes"; ("create" | "make") ] ->
    Some Array_
  | [ "Prng"; ("create" | "split" | "copy") ] -> Some Prng
  | [ "Atomic"; "make" ] -> Some Atomic
  | [ "Domain"; "DLS"; "new_key" ] | [ "DLS"; "new_key" ] -> Some Dls
  | [ "Mutex"; "create" ] -> Some Lock
  | _ -> None

(* [let x = <maker> ...] possibly under type constraints; a [fun] on the
   right means [x] is a function, not state. *)
let rec classify_rhs mutable_fields e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) ->
    classify_rhs mutable_fields e
  | Pexp_apply (fn, _) -> (
    match fn.pexp_desc with
    | Pexp_ident { txt; _ } -> maker_kind (strip_wrapper (flatten txt))
    | _ -> None)
  | Pexp_array _ -> Some Array_
  | Pexp_record (fields, _) ->
    if
      List.exists
        (fun (({ Location.txt; _ } : Longident.t Location.loc), _) ->
          match List.rev (flatten txt) with
          | f :: _ -> List.mem f mutable_fields
          | [] -> false)
        fields
    then Some Mutable_record
    else None
  | _ -> None

let declared_mutable_fields items =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_type (_, decls) ->
        List.concat_map
          (fun d ->
            match d.ptype_kind with
            | Ptype_record labels ->
              List.filter_map
                (fun l ->
                  match l.pld_mutable with
                  | Asttypes.Mutable -> Some l.pld_name.txt
                  | Asttypes.Immutable -> None)
                labels
            | _ -> [])
          decls
      | _ -> [])
    items

let binding_name vb =
  let rec of_pat p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> of_pat p
    | _ -> None
  in
  of_pat vb.pvb_pat

let scan ~file str =
  let unit_name = Callgraph.unit_name_of_file file in
  let acc = ref [] in
  let rec go prefix items =
    let mutable_fields = declared_mutable_fields items in
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match binding_name vb with
              | None -> ()
              | Some name -> (
                match classify_rhs mutable_fields vb.pvb_expr with
                | None -> ()
                | Some kind ->
                  acc :=
                    {
                      id = unit_name ^ "." ^ prefix ^ name;
                      unit_name;
                      name = prefix ^ name;
                      kind;
                      protected = kind_protected kind;
                      file;
                      pos = Callgraph.pos_of vb.pvb_loc;
                    }
                    :: !acc))
            vbs
        | Pstr_module mb -> (
          match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
          | Some mname, Pmod_structure items ->
            go (prefix ^ mname ^ ".") items
          | _ -> ())
        | _ -> ())
      items
  in
  go "" str;
  List.rev !acc
