(* Numeric diff for golden-figure CSVs.

   Usage: numdiff [--rtol R] [--atol A] GOLDEN ACTUAL

   Lines must match one-to-one.  Fields are compared as floats when both
   sides parse (|a - b| <= atol + rtol * |golden|, with NaN equal to NaN),
   and as exact strings otherwise (headers, comments).  Prints every
   mismatch and exits 1 on any. *)

let () =
  let rtol = ref 1e-6 and atol = ref 1e-9 in
  let files = ref [] in
  let rec parse = function
    | "--rtol" :: v :: rest ->
      rtol := float_of_string v;
      parse rest
    | "--atol" :: v :: rest ->
      atol := float_of_string v;
      parse rest
    | f :: rest ->
      files := f :: !files;
      parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let golden, actual =
    match List.rev !files with
    | [ g; a ] -> (g, a)
    | _ ->
      prerr_endline "usage: numdiff [--rtol R] [--atol A] GOLDEN ACTUAL";
      exit 2
  in
  let read f = String.split_on_char '\n' (String.trim (In_channel.with_open_bin f In_channel.input_all)) in
  let gl = read golden and al = read actual in
  let errors = ref 0 in
  let complain fmt =
    incr errors;
    Printf.eprintf fmt
  in
  if List.length gl <> List.length al then
    complain "line count differs: %d (golden) vs %d (actual)\n"
      (List.length gl) (List.length al)
  else
    List.iteri
      (fun i (g, a) ->
        if g <> a then begin
          let gf = String.split_on_char ',' g
          and af = String.split_on_char ',' a in
          if List.length gf <> List.length af then
            complain "line %d: field count differs\n  golden: %s\n  actual: %s\n"
              (i + 1) g a
          else
            List.iteri
              (fun j (gv, av) ->
                match (float_of_string_opt gv, float_of_string_opt av) with
                | Some x, Some y ->
                  let equal =
                    (Float.is_nan x && Float.is_nan y)
                    || abs_float (x -. y) <= !atol +. (!rtol *. abs_float x)
                  in
                  if not equal then
                    complain "line %d field %d: %s vs %s\n" (i + 1) (j + 1) gv
                      av
                | _ ->
                  if gv <> av then
                    complain "line %d field %d: %S vs %S\n" (i + 1) (j + 1) gv
                      av)
              (List.combine gf af)
        end)
      (List.combine gl al);
  exit (if !errors = 0 then 0 else 1)
