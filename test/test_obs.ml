(* Telemetry layer: metrics registry, span tracer, solver telemetry and the
   latency-breakdown profiler, including the DES cross-checks. *)

open Lattol_obs
open Lattol_core
open Lattol_sim

let check_float = Alcotest.(check (float 1e-9))

let close ~eps name expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %g, got %g" name expected actual

let read_file file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_temp_file f =
  let file = Filename.temp_file "lattol_obs" ".out" in
  Fun.protect ~finally:(fun () -> Sys.remove file) (fun () -> f file)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_instruments () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "events" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  let g = Metrics.gauge reg "u_p" in
  Metrics.set_gauge g 0.25;
  Metrics.set_gauge g 0.75;
  check_float "gauge keeps last" 0.75 (Metrics.gauge_value g);
  let h = Metrics.histogram reg ~hi:10. ~bins:10 "lat" in
  List.iter (Metrics.record h) [ 0.5; 1.5; 2.5 ];
  Alcotest.(check int) "histogram count" 3
    (Lattol_stats.Histogram.count (Metrics.histogram_data h));
  Alcotest.(check int) "size" 3 (Metrics.size reg)

let test_metrics_twa () =
  let reg = Metrics.create () in
  let w = Metrics.time_weighted reg "queue" in
  Alcotest.(check bool) "nan before data" true
    (Float.is_nan (Metrics.twa_value w));
  Metrics.observe_twa w ~now:0. 2.;
  Metrics.observe_twa w ~now:10. 4.;
  check_float "constant so far" 2. (Metrics.twa_value w);
  Metrics.observe_twa w ~now:20. 0.;
  check_float "time-weighted" 3. (Metrics.twa_value w);
  Alcotest.(check bool) "time going backwards rejected" true
    (try
       Metrics.observe_twa w ~now:5. 1.;
       false
     with Invalid_argument _ -> true)

let test_metrics_duplicate_rejected () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg ~labels:[ ("station", "mem0") ] "util");
  (* same name, different labels: a distinct series, accepted *)
  ignore (Metrics.counter reg ~labels:[ ("station", "mem1") ] "util");
  Alcotest.(check bool) "exact duplicate rejected" true
    (try
       ignore (Metrics.counter reg ~labels:[ ("station", "mem0") ] "util");
       false
     with Invalid_argument _ -> true)

let test_metrics_sinks () =
  let reg = Metrics.create () in
  Metrics.set_gauge (Metrics.gauge reg "u_p") 0.5;
  Metrics.incr ~by:7 (Metrics.counter reg ~labels:[ ("node", "3") ] "hits");
  let h = Metrics.histogram reg ~hi:4. ~bins:4 "lat" in
  List.iter (Metrics.record h) [ 0.5; 1.5; 2.5; 9. ];
  with_temp_file (fun file ->
      let oc = open_out file in
      Metrics.write_json reg oc;
      close_out oc;
      let json = read_file file in
      Alcotest.(check bool) "json document" true
        (String.length json > 0 && json.[0] = '{');
      List.iter
        (fun needle ->
          Alcotest.(check bool) needle true (contains ~needle json))
        [
          "\"name\":\"u_p\"";
          "\"value\":0.5";
          "\"labels\":{\"node\":\"3\"}";
          "\"value\":7";
          "\"type\":\"histogram\"";
          "\"overflow\":1";
        ]);
  with_temp_file (fun file ->
      let oc = open_out file in
      Metrics.write_csv reg oc;
      close_out oc;
      let csv = read_file file in
      List.iter
        (fun needle ->
          Alcotest.(check bool) needle true (contains ~needle csv))
        [
          "name,labels,type,field,value";
          "u_p,,gauge,value,0.5";
          "hits,node=3,counter,value,7";
          "lat,,histogram,count,4";
        ])

(* ------------------------------------------------------------------ *)
(* Metrics snapshots and merging *)

let test_snapshot_point_in_time () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "events" in
  let h = Metrics.histogram reg ~hi:10. ~bins:5 "lat" in
  Metrics.incr ~by:3 c;
  Metrics.record h 1.;
  let snap = Metrics.snapshot reg in
  (* The snapshot is plain data: later updates must not leak into it. *)
  Metrics.incr ~by:100 c;
  Metrics.record h 2.;
  (match snap with
  | [ { Metrics.s_value = Metrics.Counter_v v; _ };
      { Metrics.s_value = Metrics.Hist_v (hd, _); _ } ] ->
    Alcotest.(check int) "counter frozen" 3 v;
    Alcotest.(check int) "histogram frozen" 1 (Lattol_stats.Histogram.count hd)
  | _ -> Alcotest.fail "unexpected snapshot shape");
  Alcotest.(check string) "snapshot renders like the sink"
    (with_temp_file (fun file ->
         let oc = open_out file in
         Metrics.write_json reg oc;
         close_out oc;
         read_file file))
    (Metrics.json_of_snapshot (Metrics.snapshot reg))

let find_series name snap =
  List.find (fun s -> String.equal s.Metrics.s_name name) snap

let test_merge_kinds () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr ~by:2 (Metrics.counter a "events");
  Metrics.incr ~by:5 (Metrics.counter b "events");
  Metrics.set_gauge (Metrics.gauge a "u_p") 1.;
  Metrics.set_gauge (Metrics.gauge b "u_p") 2.;
  Metrics.set_gauge (Metrics.gauge a "stale") 3.;
  Metrics.set_gauge (Metrics.gauge b "stale") Float.nan;
  Metrics.set_gauge (Metrics.gauge b "only_b") 7.;
  let wa = Metrics.time_weighted a "queue" in
  Metrics.observe_twa wa ~now:0. 2.;
  Metrics.observe_twa wa ~now:10. 2.;
  let wb = Metrics.time_weighted b "queue" in
  Metrics.observe_twa wb ~now:0. 4.;
  Metrics.observe_twa wb ~now:30. 4.;
  let ha = Metrics.histogram a ~hi:10. ~bins:5 "lat" in
  List.iter (Metrics.record ha) [ 1.; 3. ];
  let hb = Metrics.histogram b ~hi:10. ~bins:5 "lat" in
  List.iter (Metrics.record hb) [ 3.; 99. ];
  let snap = Metrics.snapshot (Metrics.merge a b) in
  (match (find_series "events" snap).Metrics.s_value with
  | Metrics.Counter_v v -> Alcotest.(check int) "counters sum" 7 v
  | _ -> Alcotest.fail "events not a counter");
  (match (find_series "u_p" snap).Metrics.s_value with
  | Metrics.Gauge_v v -> check_float "gauge last write wins" 2. v
  | _ -> Alcotest.fail "u_p not a gauge");
  (match (find_series "stale" snap).Metrics.s_value with
  | Metrics.Gauge_v v -> check_float "nan does not clobber" 3. v
  | _ -> Alcotest.fail "stale not a gauge");
  (match (find_series "only_b" snap).Metrics.s_value with
  | Metrics.Gauge_v v -> check_float "one-sided series kept" 7. v
  | _ -> Alcotest.fail "only_b not a gauge");
  (match (find_series "queue" snap).Metrics.s_value with
  | Metrics.Twa_v v ->
    (* span-weighted: (2*10 + 4*30) / (10 + 30) *)
    check_float "twa span-weighted" 3.5 v
  | _ -> Alcotest.fail "queue not a twa");
  (match (find_series "lat" snap).Metrics.s_value with
  | Metrics.Hist_v (hd, _) ->
    Alcotest.(check int) "histograms add bin-wise, outliers included" 4
      (Lattol_stats.Histogram.count hd)
  | _ -> Alcotest.fail "lat not a histogram");
  (* a shared name with different kinds is a hard error *)
  let ka = Metrics.create () and kb = Metrics.create () in
  ignore (Metrics.counter ka "x");
  ignore (Metrics.gauge kb "x");
  Alcotest.(check bool) "kind mismatch rejected" true
    (try
       ignore (Metrics.merge ka kb);
       false
     with Invalid_argument _ -> true)

(* Property tests: merge on the commutative kinds (counters, histograms)
   is order-insensitive, and merge on everything is associative.  A
   registry is generated from a per-name spec over a small pool so that
   collisions between the two sides actually happen. *)

type mspec =
  | No_series
  | Spec_counter of int
  | Spec_gauge of float
  | Spec_hist of float list

(* Every pool name has one fixed kind — merge treats a shared name with
   two kinds as a hard error, so only presence and payload vary. *)
let merge_name_pool =
  [|
    ("alpha", `C); ("beta", `H); ("gamma", `C); ("delta", `H);
    ("eps", `G); ("zeta", `G);
  |]

let reg_of_spec spec =
  let reg = Metrics.create () in
  Array.iteri
    (fun i s ->
      let name, _ = merge_name_pool.(i) in
      match s with
      | No_series -> ()
      | Spec_counter n -> Metrics.incr ~by:n (Metrics.counter reg name)
      | Spec_gauge v -> Metrics.set_gauge (Metrics.gauge reg name) v
      | Spec_hist samples ->
        let h = Metrics.histogram reg ~hi:10. ~bins:5 name in
        List.iter (Metrics.record h) samples)
    spec;
  reg

let mspec_gen ~gauges i =
  let open QCheck.Gen in
  let _, kind = merge_name_pool.(i) in
  let payload =
    match kind with
    | `C -> map (fun n -> Spec_counter n) (int_range 0 100)
    | `H ->
      map
        (fun l -> Spec_hist l)
        (list_size (int_range 0 6) (float_range (-5.) 15.))
    | `G ->
      if gauges then map (fun v -> Spec_gauge v) (float_range (-100.) 100.)
      else return No_series
  in
  frequency [ (1, return No_series); (3, payload) ]

let spec_print spec =
  String.concat ";"
    (Array.to_list
       (Array.mapi
          (fun i s ->
            fst merge_name_pool.(i)
            ^ "="
            ^
            match s with
            | No_series -> "_"
            | Spec_counter n -> Printf.sprintf "c%d" n
            | Spec_gauge v -> Printf.sprintf "g%h" v
            | Spec_hist l ->
              "h[" ^ String.concat "," (List.map (Printf.sprintf "%h") l) ^ "]")
          spec))

let spec_arb ~gauges =
  let open QCheck.Gen in
  let gen =
    map Array.of_list
      (flatten_l
         (List.init (Array.length merge_name_pool) (mspec_gen ~gauges)))
  in
  QCheck.make ~print:spec_print gen

(* Order-insensitive fingerprint of the commutative series: each series
   rendered alone through the JSON sink, then sorted. *)
let sorted_fingerprint reg =
  List.sort String.compare
    (List.map
       (fun s -> Metrics.json_of_snapshot [ s ])
       (Metrics.snapshot reg))

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge of counters+histograms is commutative"
    ~count:100
    QCheck.(pair (spec_arb ~gauges:false) (spec_arb ~gauges:false))
    (fun (sa, sb) ->
      let a = reg_of_spec sa and b = reg_of_spec sb in
      List.equal String.equal
        (sorted_fingerprint (Metrics.merge a b))
        (sorted_fingerprint (Metrics.merge b a)))

let prop_merge_associative =
  QCheck.Test.make ~name:"merge is associative (gauges included)" ~count:100
    QCheck.(
      triple (spec_arb ~gauges:true) (spec_arb ~gauges:true)
        (spec_arb ~gauges:true))
    (fun (sa, sb, sc) ->
      let a = reg_of_spec sa
      and b = reg_of_spec sb
      and c = reg_of_spec sc in
      String.equal
        (Metrics.json_of_snapshot
           (Metrics.snapshot (Metrics.merge (Metrics.merge a b) c)))
        (Metrics.json_of_snapshot
           (Metrics.snapshot (Metrics.merge a (Metrics.merge b c)))))

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

(* ------------------------------------------------------------------ *)
(* Events *)

let test_events_capacity () =
  let t = Events.create ~capacity:2 () in
  for i = 0 to 4 do
    Events.emit t ~track:0 ~name:"compute" ~t0:(float_of_int i) 1.
  done;
  Alcotest.(check int) "buffered" 2 (Events.count t);
  Alcotest.(check int) "dropped" 3 (Events.dropped t);
  let seen = ref 0 in
  Events.iter t (fun s ->
      incr seen;
      Alcotest.(check string) "name" "compute" s.Events.name);
  Alcotest.(check int) "iter covers buffer" 2 !seen

let test_events_chrome_format () =
  let t = Events.create () in
  Events.name_process t 0 "node0";
  Events.name_track t ~pid:0 1 "thread1";
  Events.emit t ~pid:0 ~cat:"proc" ~track:1 ~name:"compute" ~t0:2.5 1.5;
  with_temp_file (fun file ->
      let oc = open_out file in
      Events.write_chrome t oc;
      close_out oc;
      let json = read_file file in
      Alcotest.(check bool) "header" true
        (String.length json > 16 && String.sub json 0 16 = "{\"traceEvents\":[");
      Alcotest.(check bool) "footer" true
        (contains ~needle:"],\"displayTimeUnit\":\"ms\"}" json);
      List.iter
        (fun needle ->
          Alcotest.(check bool) needle true (contains ~needle json))
        [
          "\"ph\":\"M\"";
          "\"name\":\"process_name\"";
          "\"ph\":\"X\"";
          "\"ts\":2.5";
          "\"dur\":1.5";
        ])

(* ------------------------------------------------------------------ *)
(* Causal trace contexts *)

let test_trace_ctx_tree () =
  let r = Trace_ctx.create ~root:"unit test!" () in
  Alcotest.(check string) "root name" "unit test!" (Trace_ctx.root_name r);
  Alcotest.(check bool) "trace id sanitized" true
    (String.length (Trace_ctx.trace_id r) > 9
    && String.sub (Trace_ctx.trace_id r) 0 9 = "unit-test");
  let root = Trace_ctx.root_ctx r in
  Alcotest.(check bool) "enabled" true (Trace_ctx.enabled root);
  let h = Trace_ctx.start ~point:"grid/3" ~cat:"point" ~name:"n_t=3" root in
  let pctx = Trace_ctx.ctx_of h in
  Alcotest.(check string) "point rescoped" "grid/3" (Trace_ctx.point pctx);
  Alcotest.(check string) "exemplar id" (Trace_ctx.trace_id r ^ "/grid/3")
    (Trace_ctx.point_trace_id pctx);
  Trace_ctx.with_span ~cat:"solve" ~name:"solve" pctx (fun sctx ->
      Trace_ctx.record_since ~cat:"solve" ~name:"residual" sctx);
  Trace_ctx.record_since ~cat:"queue" ~name:"queue-wait" pctx;
  Trace_ctx.finish ~meta:[ ("k", "v") ] h;
  Trace_ctx.finish h (* idempotent: must not double-buffer *);
  Trace_ctx.seal r;
  Trace_ctx.seal r;
  let spans = Trace_ctx.spans r in
  Alcotest.(check int) "span count" 5 (List.length spans);
  Alcotest.(check int) "count agrees" 5 (Trace_ctx.count r);
  Alcotest.(check int) "nothing dropped" 0 (Trace_ctx.dropped r);
  let by_name n =
    List.find (fun (s : Trace_ctx.span) -> s.name = n) spans
  in
  let root_s = by_name "unit test!"
  and point_s = by_name "n_t=3"
  and solve_s = by_name "solve"
  and leaf_s = by_name "residual" in
  Alcotest.(check int) "root id" 1 root_s.id;
  Alcotest.(check int) "root parentless" 0 root_s.parent;
  Alcotest.(check int) "point under root" root_s.id point_s.parent;
  Alcotest.(check int) "solve under point" point_s.id solve_s.parent;
  Alcotest.(check int) "leaf under solve" solve_s.id leaf_s.parent;
  Alcotest.(check string) "point inherited" "grid/3" leaf_s.point;
  Alcotest.(check string) "run-level span has no point" "" root_s.point;
  Alcotest.(check (list (pair string string))) "meta kept" [ ("k", "v") ]
    point_s.meta;
  List.iter
    (fun (s : Trace_ctx.span) ->
      Alcotest.(check bool) (s.name ^ " duration non-negative") true
        (Int64.compare s.dur_ns 0L >= 0))
    spans;
  (* children nest within the parent's interval *)
  let within (c : Trace_ctx.span) (p : Trace_ctx.span) =
    Int64.compare c.t0_ns p.t0_ns >= 0
    && Int64.compare (Int64.add c.t0_ns c.dur_ns)
         (Int64.add p.t0_ns p.dur_ns)
       <= 0
  in
  Alcotest.(check bool) "solve within point" true (within solve_s point_s);
  Alcotest.(check bool) "point within root" true (within point_s root_s)

let test_trace_ctx_disabled () =
  Alcotest.(check bool) "disabled" false (Trace_ctx.enabled Trace_ctx.disabled);
  Alcotest.(check string) "no exemplar id" ""
    (Trace_ctx.point_trace_id Trace_ctx.disabled);
  Alcotest.(check bool) "opened_ns zero (no clock read)" true
    (Int64.equal 0L (Trace_ctx.opened_ns Trace_ctx.disabled));
  let h = Trace_ctx.start ~cat:"solve" ~name:"x" Trace_ctx.disabled in
  Trace_ctx.finish h;
  Trace_ctx.record_since ~name:"y" Trace_ctx.disabled;
  Trace_ctx.with_span ~name:"z" Trace_ctx.disabled (fun c ->
      Alcotest.(check bool) "child stays disabled" false (Trace_ctx.enabled c))

let test_trace_ctx_capacity () =
  let r = Trace_ctx.create ~capacity:3 ~root:"tiny" () in
  let ctx = Trace_ctx.root_ctx r in
  for i = 1 to 5 do
    Trace_ctx.record_since ~name:(string_of_int i) ctx
  done;
  Alcotest.(check int) "buffer clamped" 3 (Trace_ctx.count r);
  Alcotest.(check int) "overflow counted" 2 (Trace_ctx.dropped r)

(* ------------------------------------------------------------------ *)
(* Critical-path report *)

let test_trace_report_reconciles () =
  let r = Trace_ctx.create ~root:"report" () in
  let root = Trace_ctx.root_ctx r in
  (* Spans mirror the sweep's shape: queue-wait measured from the point
     span's open, solve nested inside it.  Real (small) sleeps make the
     verdicts deterministic; reconciliation is exact by construction. *)
  let mk_point ~point ~label ~queue_s ~solve_s =
    let h = Trace_ctx.start ~point ~cat:"point" ~name:label root in
    let pctx = Trace_ctx.ctx_of h in
    Unix.sleepf queue_s;
    Trace_ctx.record_since ~cat:"queue" ~name:"queue-wait" pctx;
    Trace_ctx.with_span ~cat:"solve" ~name:"solve" pctx (fun _ ->
        Unix.sleepf solve_s);
    Trace_ctx.finish h
  in
  (* natural order must put grid/9 before grid/10 *)
  mk_point ~point:"grid/10" ~label:"n_t=10" ~queue_s:0.001 ~solve_s:0.012;
  mk_point ~point:"grid/9" ~label:"n_t=9" ~queue_s:0.012 ~solve_s:0.001;
  Trace_ctx.seal r;
  let rep = Trace_report.analyze r in
  Alcotest.(check (list string)) "natural point order" [ "grid/9"; "grid/10" ]
    (List.map (fun p -> p.Trace_report.point) rep.Trace_report.r_points);
  List.iter
    (fun (p : Trace_report.point_report) ->
      close ~eps:1e-4 (p.point ^ " reconciles") p.wall_ms
        (p.queue_ms +. p.cache_ms +. p.solve_ms +. p.journal_ms +. p.other_ms))
    rep.Trace_report.r_points;
  (match rep.Trace_report.r_points with
  | [ nine; ten ] ->
    Alcotest.(check string) "queue-bound point" "queue" nine.verdict;
    Alcotest.(check string) "solve-bound point" "solve" ten.verdict;
    Alcotest.(check string) "exemplar ids carried"
      (Trace_ctx.trace_id r ^ "/grid/9")
      nine.Trace_report.p_trace_id;
    Alcotest.(check bool) "critical path starts at the point span" true
      (match ten.Trace_report.critical_path with
      | top :: _ -> top.Trace_report.s_name = "n_t=10"
      | [] -> false)
  | ps -> Alcotest.failf "expected 2 points, got %d" (List.length ps));
  (* slowest: wall is dominated by the 40ms solve *)
  (match Trace_report.slowest 1 rep with
  | [ p ] -> Alcotest.(check string) "slowest" "grid/10" p.Trace_report.point
  | _ -> Alcotest.fail "slowest 1 should yield one point");
  let b = Buffer.create 512 in
  Trace_report.to_json b rep;
  let json = Buffer.contents b in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~needle json))
    [
      "\"schema\":\"lattol-trace/1\"";
      "\"verdict\"";
      "\"critical_path\"";
      "\"cache_wait_ms\"";
    ]

let test_trace_report_live_probe () =
  (* analyze must not seal: a live probe mid-run sees elapsed-so-far and
     the recorder keeps accepting spans afterwards. *)
  let r = Trace_ctx.create ~root:"live" () in
  let ctx = Trace_ctx.root_ctx r in
  Trace_ctx.record_since ~cat:"solve" ~name:"early" ctx;
  let rep = Trace_report.analyze r in
  Alcotest.(check bool) "elapsed-so-far wall" true
    (rep.Trace_report.r_wall_ms >= 0.);
  Trace_ctx.record_since ~cat:"solve" ~name:"late" ctx;
  Alcotest.(check int) "recorder still open" 2 (Trace_ctx.count r)

(* ------------------------------------------------------------------ *)
(* Histogram exemplars *)

let test_histogram_exemplars () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~hi:10. ~bins:10 "lat" in
  Metrics.record ~exemplar:"t/1" h 2.5;
  Metrics.record ~exemplar:"t/2" h 2.6 (* same bucket: last write wins *);
  Metrics.record ~exemplar:"t/over" h 99. (* overflow cell *);
  Metrics.record h 7.5 (* no exemplar: cell stays empty *);
  match Metrics.snapshot reg with
  | [ { Metrics.s_value = Metrics.Hist_v (_, cells); _ } ] ->
    Alcotest.(check int) "bins + under/overflow cells" 12 (Array.length cells);
    (match cells.(2) with
    | Some e ->
      Alcotest.(check string) "last write wins" "t/2" e.Metrics.e_trace;
      close ~eps:1e-9 "exemplar value" 2.6 e.Metrics.e_value
    | None -> Alcotest.fail "bucket 2 should carry an exemplar");
    (match cells.(11) with
    | Some e -> Alcotest.(check string) "overflow exemplar" "t/over" e.Metrics.e_trace
    | None -> Alcotest.fail "overflow cell should carry an exemplar");
    Alcotest.(check bool) "unexemplared bucket empty" true (cells.(7) = None)
  | _ -> Alcotest.fail "expected one histogram series"

(* ------------------------------------------------------------------ *)
(* Structured logging *)

let test_log_jsonl () =
  with_temp_file (fun file ->
      let oc = open_out file in
      Log.set_channel oc;
      Log.set_level (Some Log.Info);
      Fun.protect
        ~finally:(fun () ->
          Log.set_level None;
          Log.set_channel stderr;
          close_out oc)
        (fun () ->
          Alcotest.(check bool) "info enabled" true (Log.enabled Log.Info);
          Alcotest.(check bool) "debug gated" false (Log.enabled Log.Debug);
          Log.infof ~trace:"t/3" ~fields:[ ("solver", "amva") ]
            ~src:"lattol.test" "rung %d" 2;
          Log.debugf ~src:"lattol.test" "suppressed %s" "line";
          Log.errorf ~src:"lattol.test" "with \"quotes\"");
      let lines =
        String.split_on_char '\n' (read_file file)
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "debug suppressed" 2 (List.length lines);
      let first = List.nth lines 0 in
      List.iter
        (fun needle ->
          Alcotest.(check bool) needle true (contains ~needle first))
        [
          "\"level\":\"info\"";
          "\"src\":\"lattol.test\"";
          "\"trace\":\"t/3\"";
          "\"msg\":\"rung 2\"";
          "\"solver\":\"amva\"";
        ];
      Alcotest.(check bool) "quotes escaped" true
        (contains ~needle:"with \\\"quotes\\\"" (List.nth lines 1)));
  Alcotest.(check bool) "level restored" true (Log.level () = None)

(* ------------------------------------------------------------------ *)
(* Solver trace *)

let test_solver_trace_supervised_converged () =
  let tel = Solver_trace.create () in
  (match Lattol_robust.Supervisor.solve ~telemetry:tel Params.default with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "default config should converge");
  match Solver_trace.attempts tel with
  | [ a ] ->
    Alcotest.(check string) "solver" "symmetric" a.Solver_trace.solver;
    Alcotest.(check bool) "converged" true a.Solver_trace.converged;
    Alcotest.(check bool) "residuals recorded" true
      (a.Solver_trace.samples <> []);
    Alcotest.(check bool) "iterations recorded" true
      (a.Solver_trace.iterations > 0);
    (* residual trajectory eventually decreases *)
    let residuals =
      List.map (fun s -> s.Solver_trace.residual) a.Solver_trace.samples
    in
    Alcotest.(check bool) "trajectory shrinks" true
      (List.nth residuals (List.length residuals - 1) < List.hd residuals)
  | l -> Alcotest.failf "expected 1 attempt, got %d" (List.length l)

let test_solver_trace_escalation () =
  let tel = Solver_trace.create () in
  (* A 2-sweep budget cannot converge: the single rung fails and the
     ladder exhausts. *)
  (match
     Lattol_robust.Supervisor.solve ~solvers:[ Mms.General_amva ]
       ~dampings:[ 0. ] ~base_iterations:2 ~telemetry:tel Params.default
   with
  | Ok _ -> Alcotest.fail "2-sweep budget should fail"
  | Error _ -> ());
  match Solver_trace.attempts tel with
  | [ a ] ->
    Alcotest.(check bool) "not converged" false a.Solver_trace.converged;
    Alcotest.(check (option string)) "reason" (Some "iteration cap")
      a.Solver_trace.reason;
    Alcotest.(check int) "budget" 2 a.Solver_trace.budget
  | l -> Alcotest.failf "expected 1 attempt, got %d" (List.length l)

let test_solver_trace_direct_api () =
  let tel = Solver_trace.create ~sample_capacity:2 () in
  Solver_trace.start_attempt tel ~solver:"amva" ~damping:0.5 ();
  Solver_trace.record tel ~iteration:1 ~residual:1.0;
  Solver_trace.record tel ~iteration:2 ~residual:0.5;
  Solver_trace.record tel ~iteration:3 ~residual:0.25;
  (* a second start closes the dangling first attempt *)
  Solver_trace.start_attempt tel ~solver:"linearizer" ~damping:0.9 ();
  Solver_trace.finish_attempt tel ~converged:true ~iterations:4;
  (match Solver_trace.attempts tel with
  | [ a; b ] ->
    Alcotest.(check (option string)) "superseded" (Some "superseded")
      a.Solver_trace.reason;
    Alcotest.(check int) "cap kept 2 samples" 2
      (List.length a.Solver_trace.samples);
    Alcotest.(check int) "1 dropped" 1 a.Solver_trace.dropped;
    Alcotest.(check bool) "second converged" true b.Solver_trace.converged
  | l -> Alcotest.failf "expected 2 attempts, got %d" (List.length l));
  with_temp_file (fun file ->
      let oc = open_out file in
      Solver_trace.write_csv tel oc;
      close_out oc;
      let csv = read_file file in
      Alcotest.(check bool) "csv has samples" true
        (contains ~needle:"1,,amva,0.5,1,1" csv))

(* ------------------------------------------------------------------ *)
(* Latency profile *)

let test_profile_summary_math () =
  let t = Events.create () in
  let e name t0 dur = Events.emit t ~track:0 ~name ~t0 dur in
  e "compute" 0. 4.;
  e "memory-queue" 4. 1.;
  e "memory-service" 5. 2.;
  e "compute" 7. 4.;
  e "switch-queue" 11. 1.;
  e "network-transit" 12. 2.;
  e "network-trip" 11. 3.;
  let summary =
    Latency_profile.summarize
      (Latency_profile.of_events t)
      ~processors:1 ~span_time:20.
  in
  Alcotest.(check int) "cycles" 2 summary.Latency_profile.cycles;
  check_float "u_p" 0.4 summary.Latency_profile.u_p;
  check_float "lambda" 0.1 summary.Latency_profile.lambda;
  check_float "s_obs" 3. summary.Latency_profile.s_obs;
  check_float "l_obs" 3. summary.Latency_profile.l_obs;
  (* shares: denominator excludes the trip span (it re-counts switches) *)
  let row c =
    List.find
      (fun r -> r.Latency_profile.component = c)
      summary.Latency_profile.rows
  in
  check_float "compute share" (8. /. 14.)
    (row Latency_profile.Compute).Latency_profile.share;
  check_float "transit share" (2. /. 14.)
    (row Latency_profile.Network_transit).Latency_profile.share;
  Alcotest.(check bool) "trip not a row" true
    (not
       (List.exists
          (fun r -> r.Latency_profile.component = Latency_profile.Network_trip)
          summary.Latency_profile.rows))

let test_profile_tolerance_check () =
  let check =
    Latency_profile.check_tolerance ~u_p:(0.8, 0.05) ~u_p_ideal:(1.0, 0.05)
      ~analytical:0.85
  in
  check_float "tol" 0.8 check.Latency_profile.tol;
  close ~eps:1e-3 "error propagation" 0.064 check.Latency_profile.tol_half;
  Alcotest.(check bool) "within" true check.Latency_profile.within_ci;
  let check =
    Latency_profile.check_tolerance ~u_p:(0.8, 0.05) ~u_p_ideal:(1.0, 0.05)
      ~analytical:0.9
  in
  Alcotest.(check bool) "outside" false check.Latency_profile.within_ci

let test_profile_from_des_matches_measures () =
  let p = { Params.default with Params.k = 2; n_t = 2 } in
  let trace = Events.create () in
  let horizon = 10_000. in
  let cfg =
    { Mms_des.default_config with Mms_des.horizon; trace = Some trace }
  in
  let r = Mms_des.run ~config:cfg p in
  Alcotest.(check int) "no spans dropped" 0 (Events.dropped trace);
  let summary =
    Latency_profile.summarize
      (Latency_profile.of_events trace)
      ~processors:(Params.num_processors p)
      ~span_time:horizon
  in
  let m = r.Mms_des.measures in
  (* The span-derived breakdown reproduces the simulator's own estimates:
     S_obs exactly (same samples), U_p and lambda up to window-edge
     effects. *)
  close ~eps:1e-9 "s_obs identical" m.Measures.s_obs
    summary.Latency_profile.s_obs;
  close ~eps:0.05 "u_p" m.Measures.u_p summary.Latency_profile.u_p;
  close ~eps:0.05 "lambda" m.Measures.lambda summary.Latency_profile.lambda;
  close ~eps:0.2 "l_obs" m.Measures.l_obs summary.Latency_profile.l_obs

let test_des_metrics_registry () =
  let p = { Params.default with Params.k = 2; n_t = 2 } in
  let reg = Metrics.create () in
  let cfg =
    {
      Mms_des.default_config with
      Mms_des.horizon = 2_000.;
      metrics = Some reg;
    }
  in
  ignore (Mms_des.run ~config:cfg p);
  (* headline gauges + counters + trip histogram + per-station families
     (4 nodes x 4 station kinds x 2 series) *)
  Alcotest.(check bool) "registry populated" true (Metrics.size reg > 30);
  with_temp_file (fun file ->
      let oc = open_out file in
      Metrics.write_json reg oc;
      close_out oc;
      let json = read_file file in
      List.iter
        (fun needle ->
          Alcotest.(check bool) needle true (contains ~needle json))
        [
          "\"name\":\"u_p\"";
          "\"name\":\"trip_time\"";
          "\"station\":\"mem0\"";
          "\"name\":\"station_queue\"";
        ])

let test_network_sim_trace () =
  let nw =
    Lattol_queueing.Network.make
      ~stations:
        [|
          ("cpu", Lattol_queueing.Network.Queueing);
          ("think", Lattol_queueing.Network.Delay);
        |]
      ~classes:
        [|
          {
            Lattol_queueing.Network.class_name = "jobs";
            population = 3;
            visits = [| 1.; 1. |];
            service = [| 0.5; 2. |];
          };
        |]
  in
  let trace = Events.create () in
  ignore (Network_sim.run ~warmup:50. ~horizon:500. ~trace nw);
  Alcotest.(check bool) "spans recorded" true (Events.count trace > 0);
  let names = Hashtbl.create 8 in
  Events.iter trace (fun s -> Hashtbl.replace names s.Events.name ());
  Alcotest.(check bool) "cpu service spans" true (Hashtbl.mem names "cpu");
  Alcotest.(check bool) "delay spans" true (Hashtbl.mem names "think")


(* ------------------------------------------------------------------ *)
(* Attribution: the profiler's bucket fold over synthetic streams *)

let ev ring at_ns kind = { Attribution.ring; at_ns; kind }

let split_sum (s : Attribution.split) =
  Int64.add s.Attribution.gc_ns
    (Int64.add s.Attribution.compute_ns
       (Int64.add s.Attribution.idle_ns s.Attribution.spawn_ns))

let check_ns name expected (actual : int64) =
  Alcotest.(check int64) name expected actual

let test_attr_partition () =
  (* One ring, window [0,1000]: worker [100,900], task [200,600], one GC
     pause inside the task [300,400] and one between tasks [700,750].
     Every bucket is hand-computable and the four must sum to wall. *)
  let st = Attribution.create () in
  Attribution.feed_list st
    [
      ev 0 100L Attribution.Worker_begin;
      ev 0 200L Attribution.Task_begin;
      ev 0 300L Attribution.Gc_begin;
      ev 0 400L Attribution.Gc_end;
      ev 0 600L Attribution.Task_end;
      ev 0 700L Attribution.Gc_begin;
      ev 0 750L Attribution.Gc_end;
      ev 0 900L Attribution.Worker_end;
    ];
  let r = Attribution.finish st ~t0:0L ~t1:1000L in
  match r.Attribution.domains with
  | [ s ] ->
    check_ns "wall" 1000L s.Attribution.wall_ns;
    check_ns "gc" 150L s.Attribution.gc_ns;
    check_ns "compute (task minus gc-in-task)" 300L s.Attribution.compute_ns;
    check_ns "idle (worker minus task minus gc-between)" 350L
      s.Attribution.idle_ns;
    check_ns "spawn (remainder outside the worker loop)" 200L
      s.Attribution.spawn_ns;
    check_ns "partition is exact" s.Attribution.wall_ns (split_sum s);
    Alcotest.(check int) "tasks" 1 s.Attribution.tasks;
    Alcotest.(check int) "pauses" 2 s.Attribution.gc_pauses;
    check_ns "max pause" 100L s.Attribution.max_gc_pause_ns
  | ds -> Alcotest.failf "expected 1 domain, got %d" (List.length ds)

let test_attr_open_spans () =
  (* A stream cut mid-everything: worker, task and GC all still open at
     the window end must be closed at t1, leaking no time. *)
  let st = Attribution.create () in
  Attribution.feed_list st
    [
      ev 0 100L Attribution.Worker_begin;
      ev 0 200L Attribution.Task_begin;
      ev 0 900L Attribution.Gc_begin;
    ];
  let r = Attribution.finish st ~t0:0L ~t1:1000L in
  match r.Attribution.domains with
  | [ s ] ->
    check_ns "gc closed at window end" 100L s.Attribution.gc_ns;
    check_ns "compute" 700L s.Attribution.compute_ns;
    check_ns "idle" 100L s.Attribution.idle_ns;
    check_ns "spawn" 100L s.Attribution.spawn_ns;
    check_ns "partition survives the cut" s.Attribution.wall_ns (split_sum s);
    Alcotest.(check int) "open task counted" 1 s.Attribution.tasks;
    Alcotest.(check int) "open pause counted" 1 s.Attribution.gc_pauses
  | ds -> Alcotest.failf "expected 1 domain, got %d" (List.length ds)

let test_attr_nested_gc () =
  (* Nested runtime phases (major slice containing a minor) must count
     as one outermost pause, never double-count the overlap. *)
  let st = Attribution.create () in
  Attribution.feed_list st
    [
      ev 0 0L Attribution.Worker_begin;
      ev 0 100L Attribution.Gc_begin;
      ev 0 150L Attribution.Gc_begin;
      ev 0 200L Attribution.Gc_end;
      ev 0 300L Attribution.Gc_end;
      ev 0 1000L Attribution.Worker_end;
    ];
  let r = Attribution.finish st ~t0:0L ~t1:1000L in
  match r.Attribution.domains with
  | [ s ] ->
    check_ns "nested gc counted once" 200L s.Attribution.gc_ns;
    Alcotest.(check int) "one outermost pause" 1 s.Attribution.gc_pauses;
    check_ns "partition" s.Attribution.wall_ns (split_sum s)
  | ds -> Alcotest.failf "expected 1 domain, got %d" (List.length ds)

let test_attr_sampler_dropped () =
  (* A ring that only ever GCs (the sampler/exporter domains) is noise:
     the default report drops it, ~only_instrumented:false keeps it. *)
  let stream =
    [
      ev 0 100L Attribution.Worker_begin;
      ev 0 900L Attribution.Worker_end;
      ev 7 200L Attribution.Gc_begin;
      ev 7 300L Attribution.Gc_end;
    ]
  in
  let st = Attribution.create () in
  Attribution.feed_list st stream;
  let r = Attribution.finish st ~t0:0L ~t1:1000L in
  Alcotest.(check (list int))
    "sampler ring dropped" [ 0 ]
    (List.map (fun s -> s.Attribution.ring) r.Attribution.domains);
  let st = Attribution.create () in
  Attribution.feed_list st stream;
  let r =
    Attribution.finish ~only_instrumented:false st ~t0:0L ~t1:1000L
  in
  Alcotest.(check (list int))
    "kept when asked" [ 0; 7 ]
    (List.map (fun s -> s.Attribution.ring) r.Attribution.domains)

let test_attr_verdict () =
  (* GC-dominated stream names GC; a queue-starved one names the queue.
     Tolerance is the compute share of total domain time. *)
  let gc_heavy =
    [
      ev 0 0L Attribution.Worker_begin;
      ev 0 0L Attribution.Task_begin;
      ev 0 100L Attribution.Gc_begin;
      ev 0 700L Attribution.Gc_end;
      ev 0 1000L Attribution.Task_end;
      ev 0 1000L Attribution.Worker_end;
    ]
  in
  let st = Attribution.create () in
  Attribution.feed_list st gc_heavy;
  let r = Attribution.finish st ~t0:0L ~t1:1000L in
  Alcotest.(check string)
    "gc verdict" "gc-bound"
    (Attribution.verdict_string r.Attribution.verdict);
  check_float "tolerance = compute share" 0.4 r.Attribution.tolerance;
  let starved =
    [
      ev 0 0L Attribution.Worker_begin;
      ev 0 0L Attribution.Task_begin;
      ev 0 200L Attribution.Task_end;
      ev 0 1000L Attribution.Worker_end;
    ]
  in
  let st = Attribution.create () in
  Attribution.feed_list st starved;
  let r = Attribution.finish st ~t0:0L ~t1:1000L in
  Alcotest.(check string)
    "starved verdict" "queue-starved"
    (Attribution.verdict_string r.Attribution.verdict)

(* Any stream at all — balanced or not, interleaved or not — must keep
   the partition exact on every ring: gc + compute + idle + spawn =
   wall.  This is the invariant the percentage table rests on. *)
let attr_event_gen =
  let open QCheck.Gen in
  let kind =
    oneofl
      [
        Attribution.Gc_begin;
        Attribution.Gc_end;
        Attribution.Task_begin;
        Attribution.Task_end;
        Attribution.Worker_begin;
        Attribution.Worker_end;
      ]
  in
  list_size (int_range 0 60)
    (map2
       (fun ring k -> (ring, k))
       (int_range 0 2) kind)

let attr_stream_of spec =
  (* Timestamps strictly increasing so the per-ring ordering contract
     holds regardless of ring interleaving. *)
  List.mapi
    (fun i (ring, kind) ->
      { Attribution.ring; at_ns = Int64.of_int ((i + 1) * 10); kind })
    spec

let prop_attr_partition_exact =
  QCheck.Test.make ~name:"attribution partitions wall exactly" ~count:500
    (QCheck.make attr_event_gen)
    (fun spec ->
      let st = Attribution.create () in
      Attribution.feed_list st (attr_stream_of spec);
      let r =
        Attribution.finish ~only_instrumented:false st ~t0:0L ~t1:2000L
      in
      List.for_all
        (fun s -> Int64.equal (split_sum s) s.Attribution.wall_ns)
        r.Attribution.domains)

let () =
  Alcotest.run "lattol_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "instruments" `Quick test_metrics_instruments;
          Alcotest.test_case "time-weighted average" `Quick test_metrics_twa;
          Alcotest.test_case "duplicate rejected" `Quick
            test_metrics_duplicate_rejected;
          Alcotest.test_case "sinks" `Quick test_metrics_sinks;
        ] );
      ( "metrics-merge",
        [
          Alcotest.test_case "snapshot is point-in-time" `Quick
            test_snapshot_point_in_time;
          Alcotest.test_case "merge by kind" `Quick test_merge_kinds;
        ]
        @ qcheck [ prop_merge_commutative; prop_merge_associative ] );
      ( "events",
        [
          Alcotest.test_case "capacity" `Quick test_events_capacity;
          Alcotest.test_case "chrome format" `Quick test_events_chrome_format;
        ] );
      ( "trace-ctx",
        [
          Alcotest.test_case "span tree" `Quick test_trace_ctx_tree;
          Alcotest.test_case "disabled is inert" `Quick
            test_trace_ctx_disabled;
          Alcotest.test_case "capacity drop" `Quick test_trace_ctx_capacity;
        ] );
      ( "trace-report",
        [
          Alcotest.test_case "attribution reconciles" `Quick
            test_trace_report_reconciles;
          Alcotest.test_case "live probe does not seal" `Quick
            test_trace_report_live_probe;
        ] );
      ( "exemplars",
        [ Alcotest.test_case "bucket exemplars" `Quick test_histogram_exemplars ] );
      ( "log",
        [ Alcotest.test_case "structured jsonl" `Quick test_log_jsonl ] );
      ( "solver-trace",
        [
          Alcotest.test_case "supervised converged" `Quick
            test_solver_trace_supervised_converged;
          Alcotest.test_case "escalation recorded" `Quick
            test_solver_trace_escalation;
          Alcotest.test_case "direct api" `Quick test_solver_trace_direct_api;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "exact partition" `Quick test_attr_partition;
          Alcotest.test_case "open spans closed at window end" `Quick
            test_attr_open_spans;
          Alcotest.test_case "nested gc" `Quick test_attr_nested_gc;
          Alcotest.test_case "sampler ring dropped" `Quick
            test_attr_sampler_dropped;
          Alcotest.test_case "verdict and tolerance" `Quick test_attr_verdict;
        ]
        @ qcheck [ prop_attr_partition_exact ] );
      ( "latency-profile",
        [
          Alcotest.test_case "summary math" `Quick test_profile_summary_math;
          Alcotest.test_case "tolerance check" `Quick
            test_profile_tolerance_check;
          Alcotest.test_case "matches DES measures" `Slow
            test_profile_from_des_matches_measures;
          Alcotest.test_case "DES metrics registry" `Quick
            test_des_metrics_registry;
          Alcotest.test_case "network-sim trace" `Quick test_network_sim_trace;
        ] );
    ]
