(* Live metrics exporter: Prometheus rendering, the progress heartbeat,
   and the HTTP endpoint hammered from several domains while the
   instruments keep moving. *)

module Metrics = Lattol_obs.Metrics
module Histogram = Lattol_stats.Histogram
module Progress = Lattol_serve.Progress
module Prom = Lattol_serve.Prom
module Exporter = Lattol_serve.Exporter

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.equal (String.sub haystack i nl) needle || go (i + 1))
  in
  go 0

let check_contains what needle haystack =
  if not (contains ~needle haystack) then
    Alcotest.failf "%s: %S not found in:\n%s" what needle haystack

(* ------------------------------------------------------------------ *)
(* Prometheus text rendering *)

let test_prom_render () =
  let reg = Metrics.create () in
  Metrics.incr ~by:7
    (Metrics.counter reg
       ~labels:[ ("station", "mem\"3\"") ]
       ~help:"events\nprocessed" "events");
  Metrics.set_gauge (Metrics.gauge reg "u_p") 0.625;
  let h = Metrics.histogram reg ~hi:4. ~bins:2 "lat" in
  List.iter (Metrics.record h) [ 1.; 3.; 9.; -1. ];
  let text = Prom.render (Metrics.snapshot reg) in
  check_contains "help escapes newline"
    "# HELP lattol_events events\\nprocessed" text;
  check_contains "counter type" "# TYPE lattol_events counter" text;
  check_contains "label escaping"
    "lattol_events{station=\"mem\\\"3\\\"\"} 7" text;
  check_contains "gauge sample" "lattol_u_p 0.625" text;
  check_contains "histogram type" "# TYPE lattol_lat histogram" text;
  (* cumulative buckets: underflow below every bound, overflow in +Inf *)
  check_contains "first bucket" "lattol_lat_bucket{le=\"2\"} 2" text;
  check_contains "second bucket" "lattol_lat_bucket{le=\"4\"} 3" text;
  check_contains "inf bucket" "lattol_lat_bucket{le=\"+Inf\"} 4" text;
  check_contains "count" "lattol_lat_count 4" text;
  check_contains "sum" "lattol_lat_sum 12" text

let test_prom_families_grouped () =
  (* Samples of one family render under a single TYPE header even when
     interleaved with other series in registration order. *)
  let reg = Metrics.create () in
  Metrics.set_gauge (Metrics.gauge reg ~labels:[ ("s", "a") ] "util") 0.25;
  Metrics.incr (Metrics.counter reg "other");
  Metrics.set_gauge (Metrics.gauge reg ~labels:[ ("s", "b") ] "util") 0.5;
  let text = Prom.render (Metrics.snapshot reg) in
  let occurrences needle =
    let n = String.length needle in
    let rec go i acc =
      if i + n > String.length text then acc
      else if String.equal (String.sub text i n) needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one TYPE line for util" 1
    (occurrences "# TYPE lattol_util gauge");
  check_contains "first sample" "lattol_util{s=\"a\"} 0.25" text;
  check_contains "second sample" "lattol_util{s=\"b\"} 0.5" text

(* ------------------------------------------------------------------ *)
(* Progress heartbeat *)

let test_progress_snapshot () =
  let p = Progress.create ~phase:"sweep" () in
  Progress.set_total p 10;
  Progress.step p ~n:3;
  Progress.set_workers p 4;
  Progress.worker_busy p true;
  Progress.worker_busy p true;
  Progress.worker_busy p false;
  Progress.set_gauge p "des_virtual_time" 125.;
  Progress.register_pull p ~kind:`Counter "pulled" (fun () -> 42.);
  let find name snap =
    List.find (fun s -> String.equal s.Metrics.s_name name) snap
  in
  let snap = Progress.to_snapshot p in
  (match (find "sweep_points_done" snap).Metrics.s_value with
  | Metrics.Counter_v v -> Alcotest.(check int) "done" 3 v
  | _ -> Alcotest.fail "points_done not a counter");
  (match (find "pool_busy_domains" snap).Metrics.s_value with
  | Metrics.Gauge_v v -> Alcotest.(check (float 0.) ) "busy" 1. v
  | _ -> Alcotest.fail "busy not a gauge");
  (match (find "des_virtual_time" snap).Metrics.s_value with
  | Metrics.Gauge_v v -> Alcotest.(check (float 0.)) "gauge" 125. v
  | _ -> Alcotest.fail "named gauge missing");
  (match (find "pulled" snap).Metrics.s_value with
  | Metrics.Counter_v v -> Alcotest.(check int) "pull" 42 v
  | _ -> Alcotest.fail "pull not a counter");
  (* finish freezes the clock: two later snapshots render identically *)
  Progress.start p;
  Progress.finish p;
  let a = Metrics.json_of_snapshot (Progress.to_snapshot p) in
  let b = Metrics.json_of_snapshot (Progress.to_snapshot p) in
  Alcotest.(check string) "frozen after finish" a b

let test_progress_eta_guard () =
  (* The degenerate shapes — no total declared, nothing done, ~0 elapsed,
     done = total — must all read ETA 0, and the snapshot JSON must stay
     free of inf/nan.  A fresh heartbeat's snapshot is fully
     deterministic, so it is pinned byte-for-byte: any new series or a
     non-finite value shows up as a diff here before it reaches
     /metrics.json. *)
  let fresh = Progress.create ~phase:"sweep" () in
  Alcotest.(check (float 0.)) "no total, not started" 0. (Progress.eta fresh);
  Alcotest.(check string) "fresh snapshot JSON pinned"
    ("{\"metrics\":[\n\
      {\"name\":\"sweep_points_done\",\"type\":\"counter\",\"labels\":{},\"help\":\"work \
      items completed so far\",\"value\":0},\n\
      {\"name\":\"sweep_points_total\",\"type\":\"gauge\",\"labels\":{},\"help\":\"work \
      items planned for this run\",\"value\":0},\n\
      {\"name\":\"pool_workers\",\"type\":\"gauge\",\"labels\":{},\"help\":\"domains \
      the work pool was configured with\",\"value\":0},\n\
      {\"name\":\"pool_busy_domains\",\"type\":\"gauge\",\"labels\":{},\"help\":\"pool \
      domains currently executing work\",\"value\":0},\n\
      {\"name\":\"pool_queue_depth\",\"type\":\"gauge\",\"labels\":{},\"help\":\"work \
      items not yet claimed by any domain\",\"value\":0},\n\
      {\"name\":\"elapsed_seconds\",\"type\":\"gauge\",\"labels\":{},\"help\":\"wall-clock \
      time since the run started\",\"value\":0},\n\
      {\"name\":\"eta_seconds\",\"type\":\"gauge\",\"labels\":{},\"help\":\"estimated \
      wall-clock time to completion (linear extrapolation)\",\"value\":0}\n\
      ]}\n")
    (Metrics.json_of_snapshot (Progress.to_snapshot fresh));
  (* started with zero total: progress with no denominator *)
  let zero_total = Progress.create ~phase:"sweep" () in
  Progress.start zero_total;
  Progress.step zero_total ~n:3;
  Alcotest.(check (float 0.)) "total 0 reads 0" 0. (Progress.eta zero_total);
  (* total declared, nothing done yet, elapsed ~0 *)
  let nothing_done = Progress.create ~phase:"sweep" () in
  Progress.set_total nothing_done 100;
  Progress.start nothing_done;
  Alcotest.(check (float 0.)) "0 done reads 0" 0. (Progress.eta nothing_done);
  (* everything done: no forward extrapolation from a finished run *)
  let all_done = Progress.create ~phase:"sweep" () in
  Progress.set_total all_done 5;
  Progress.start all_done;
  Progress.step all_done ~n:5;
  Alcotest.(check (float 0.)) "done = total reads 0" 0.
    (Progress.eta all_done);
  List.iter
    (fun p ->
      let json = Metrics.json_of_snapshot (Progress.to_snapshot p) in
      List.iter
        (fun needle ->
          if contains ~needle json then
            Alcotest.failf "snapshot leaked %S:\n%s" needle json)
        [ "inf"; "nan"; "Infinity"; "NaN" ])
    [ fresh; zero_total; nothing_done; all_done ]

(* ------------------------------------------------------------------ *)
(* HTTP plumbing over a Unix-domain socket (sandbox-friendly) *)

let scrape path target =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      let req = "GET " ^ target ^ " HTTP/1.0\r\n\r\n" in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let b = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let k = Unix.read fd chunk 0 (Bytes.length chunk) in
        if k > 0 then begin
          Buffer.add_subbytes b chunk 0 k;
          drain ()
        end
      in
      drain ();
      Buffer.contents b)

let split_response resp =
  let rec find i =
    if i + 4 > String.length resp then None
    else if String.equal (String.sub resp i 4) "\r\n\r\n" then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
    ( String.sub resp 0 i,
      String.sub resp (i + 4) (String.length resp - i - 4) )
  | None -> (resp, "")

let body_of resp = snd (split_response resp)

let status_of resp =
  match String.index_opt resp '\r' with
  | Some i -> String.sub resp 0 i
  | None -> resp

(* The counter sample line for [lattol_<name> <value>]. *)
let sample_value name body =
  let prefix = "lattol_" ^ name ^ " " in
  let lines = String.split_on_char '\n' body in
  List.find_map
    (fun line ->
      if
        String.length line > String.length prefix
        && String.equal (String.sub line 0 (String.length prefix)) prefix
      then
        int_of_string_opt
          (String.sub line (String.length prefix)
             (String.length line - String.length prefix))
      else None)
    lines

let socket_path () =
  let file = Filename.temp_file "lattol_serve" ".sock" in
  Sys.remove file;
  file

let test_endpoints () =
  let reg = Metrics.create () in
  Metrics.incr ~by:9 (Metrics.counter reg "events");
  let path = socket_path () in
  match Exporter.start ~snapshot:(fun () -> Metrics.snapshot reg)
          (Exporter.Unix_path path)
  with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
    Fun.protect
      ~finally:(fun () -> Exporter.stop t)
      (fun () ->
        Alcotest.(check string) "address" path (Exporter.address t);
        let m = scrape path "/metrics" in
        Alcotest.(check string) "200" "HTTP/1.0 200 OK" (status_of m);
        check_contains "prom body" "lattol_events 9" (body_of m);
        let j = scrape path "/metrics.json" in
        Alcotest.(check string) "json equals sink bytes"
          (Metrics.json_of_snapshot (Metrics.snapshot reg))
          (body_of j);
        let h = scrape path "/healthz" in
        Alcotest.(check string) "healthz" "ok\n" (body_of h);
        let nf = scrape path "/nope" in
        Alcotest.(check string) "404" "HTTP/1.0 404 Not Found" (status_of nf);
        Alcotest.(check bool) "scrapes counted" true (Exporter.scrapes t >= 4));
    (* stop unlinks the socket and is idempotent *)
    Exporter.stop t;
    Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path)

let test_health_probe () =
  (* /healthz consults the health probe on every scrape: ok while the
     probe reports nothing, 503 with the reason once it does (the CLI
     wires the cache's corruption counter in here), and a raising probe
     reads as degraded rather than wedging the endpoint. *)
  let state = ref None in
  let health () =
    match !state with Some "raise" -> failwith "probe blew up" | s -> s
  in
  let path = socket_path () in
  match
    Exporter.start ~health ~snapshot:(fun () -> []) (Exporter.Unix_path path)
  with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
    Fun.protect
      ~finally:(fun () -> Exporter.stop t)
      (fun () ->
        let h = scrape path "/healthz" in
        Alcotest.(check string) "healthy status" "HTTP/1.0 200 OK"
          (status_of h);
        Alcotest.(check string) "healthy body" "ok\n" (body_of h);
        state := Some "2 corrupt cache entries quarantined";
        let d = scrape path "/healthz" in
        Alcotest.(check string) "degraded status"
          "HTTP/1.0 503 Service Unavailable" (status_of d);
        Alcotest.(check string) "degraded body carries the reason"
          "degraded: 2 corrupt cache entries quarantined\n" (body_of d);
        state := Some "raise";
        let r = scrape path "/healthz" in
        Alcotest.(check string) "raising probe reads degraded"
          "HTTP/1.0 503 Service Unavailable" (status_of r);
        check_contains "names the exception" "probe blew up" (body_of r);
        (* recovery is symmetric: the probe clearing restores ok *)
        state := None;
        Alcotest.(check string) "recovers" "ok\n"
          (body_of (scrape path "/healthz")))

(* Scraper body, top-level so the Domain.spawn closures below stay bare
   applications: returns (parse_failures, readings-in-order). *)
let scraper_worker path k =
  let rec go i failures acc =
    if i = k then (failures, List.rev acc)
    else
      let resp = scrape path "/metrics" in
      if not (String.equal (status_of resp) "HTTP/1.0 200 OK") then
        go (i + 1) (failures + 1) acc
      else
        match sample_value "hammer_total" (body_of resp) with
        | Some v -> go (i + 1) failures (v :: acc)
        | None -> go (i + 1) (failures + 1) acc
  in
  go 0 0 []

let rec monotone = function
  | a :: (b :: _ as rest) -> a <= b && monotone rest
  | _ -> true

let test_scrapes_under_load () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "hammer_total" in
  let progress = Progress.create ~phase:"stress" () in
  Progress.set_total progress 50_000;
  Progress.start progress;
  let snapshot () =
    Progress.to_snapshot progress @ Metrics.snapshot reg
  in
  let path = socket_path () in
  match Exporter.start ~snapshot (Exporter.Unix_path path) with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
    let scrapers =
      List.init 3 (fun _ -> Domain.spawn (fun () -> scraper_worker path 15))
    in
    (* Mutate the registry and the heartbeat while the scrapers hammer. *)
    for _ = 1 to 50_000 do
      Metrics.incr c;
      Progress.step progress
    done;
    let results = List.map Domain.join scrapers in
    (* Final consistency: with the instruments quiesced and the run
       finished, a scrape returns exactly the bytes the --metrics-out
       sink would write. *)
    Progress.finish progress;
    let final = scrape path "/metrics.json" in
    Exporter.stop t;
    Alcotest.(check string) "final scrape equals sink bytes"
      (Metrics.json_of_snapshot (snapshot ()))
      (body_of final);
    List.iteri
      (fun i (failures, readings) ->
        Alcotest.(check int)
          (Printf.sprintf "scraper %d: every scrape parsed" i)
          0 failures;
        Alcotest.(check bool)
          (Printf.sprintf "scraper %d: counter monotone" i)
          true (monotone readings))
      results


let test_worker_times () =
  (* Busy/idle accounting advances on the pool's task edges: time
     between worker-loop entry and the first task is idle, time inside a
     task is busy, and both surface as per-worker counter series. *)
  let p = Progress.create ~phase:"acct" () in
  let m = Progress.pool_monitor p in
  m.Lattol_exec.Pool.on_worker ~worker:0 ~busy:true;
  m.Lattol_exec.Pool.on_worker ~worker:1 ~busy:true;
  Unix.sleepf 0.02;
  (* worker 0 runs one task; worker 1 never claims anything *)
  m.Lattol_exec.Pool.on_task ~worker:0 ~busy:true;
  Unix.sleepf 0.02;
  m.Lattol_exec.Pool.on_task ~worker:0 ~busy:false;
  m.Lattol_exec.Pool.on_worker ~worker:0 ~busy:false;
  m.Lattol_exec.Pool.on_worker ~worker:1 ~busy:false;
  (match Progress.worker_times p with
  | [ (0, busy0, idle0); (1, busy1, idle1) ] ->
    Alcotest.(check bool) "w0 accumulated busy time" true (busy0 > 0.);
    Alcotest.(check bool) "w0 accumulated pre-task idle" true (idle0 > 0.);
    Alcotest.(check (float 1e-9)) "w1 never busy" 0. busy1;
    Alcotest.(check bool) "w1 idled the whole loop" true (idle1 > 0.)
  | l -> Alcotest.failf "expected workers [0;1], got %d entries"
           (List.length l));
  let snap = Progress.to_snapshot p in
  let labelled name w =
    List.exists
      (fun (sr : Metrics.series) ->
        String.equal sr.Metrics.s_name name
        && List.mem ("worker", string_of_int w) sr.Metrics.s_labels)
      snap
  in
  Alcotest.(check bool) "busy series for w0" true
    (labelled "pool_worker_busy_ns" 0);
  Alcotest.(check bool) "idle series for w1" true
    (labelled "pool_worker_idle_ns" 1)

let test_runtime_route () =
  (* /runtime.json: 404 {"profiling":false} without a probe, the live
     body with one, 500 naming the exception when the probe raises. *)
  let path = socket_path () in
  (match Exporter.start ~snapshot:(fun () -> []) (Exporter.Unix_path path) with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
    Fun.protect
      ~finally:(fun () -> Exporter.stop t)
      (fun () ->
        let r = scrape path "/runtime.json" in
        Alcotest.(check string) "404 when profiling is off"
          "HTTP/1.0 404 Not Found" (status_of r);
        Alcotest.(check string) "body says so" "{\"profiling\":false}"
          (body_of r)));
  let state = ref "{\"profiling\":true,\"gc_pauses\":7}" in
  let runtime () =
    if String.equal !state "raise" then failwith "probe blew up" else !state
  in
  let path = socket_path () in
  match
    Exporter.start ~runtime ~snapshot:(fun () -> []) (Exporter.Unix_path path)
  with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
    Fun.protect
      ~finally:(fun () -> Exporter.stop t)
      (fun () ->
        let r = scrape path "/runtime.json" in
        Alcotest.(check string) "200 with a probe" "HTTP/1.0 200 OK"
          (status_of r);
        Alcotest.(check string) "live body" !state (body_of r);
        state := "raise";
        let r = scrape path "/runtime.json" in
        Alcotest.(check string) "raising probe is a 500"
          "HTTP/1.0 500 Internal Server Error" (status_of r);
        check_contains "names the exception" "probe blew up" (body_of r))

let test_trace_route () =
  (* /trace.json mirrors /runtime.json: 404 {"tracing":false} without a
     probe, the live critical-path report with one — re-analyzed per
     scrape, so a mid-run probe sees spans recorded since the last one. *)
  let path = socket_path () in
  (match Exporter.start ~snapshot:(fun () -> []) (Exporter.Unix_path path) with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
    Fun.protect
      ~finally:(fun () -> Exporter.stop t)
      (fun () ->
        let r = scrape path "/trace.json" in
        Alcotest.(check string) "404 when tracing is off"
          "HTTP/1.0 404 Not Found" (status_of r);
        Alcotest.(check string) "body says so" "{\"tracing\":false}"
          (body_of r)));
  let module Tc = Lattol_obs.Trace_ctx in
  let module Trace_report = Lattol_obs.Trace_report in
  let recorder = Tc.create ~root:"serve test" () in
  let trace () =
    let b = Buffer.create 1024 in
    Trace_report.to_json b (Trace_report.analyze recorder);
    Buffer.contents b
  in
  let path = socket_path () in
  match
    Exporter.start ~trace ~snapshot:(fun () -> []) (Exporter.Unix_path path)
  with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
    Fun.protect
      ~finally:(fun () -> Exporter.stop t)
      (fun () ->
        let r = scrape path "/trace.json" in
        Alcotest.(check string) "200 with a probe" "HTTP/1.0 200 OK"
          (status_of r);
        check_contains "schema" "\"schema\":\"lattol-trace/1\"" (body_of r);
        check_contains "trace id" (Tc.trace_id recorder) (body_of r);
        (* the live probe must not seal: spans recorded after a scrape
           show up in the next one *)
        let h =
          Tc.start ~point:"p/0" ~cat:"point" ~name:"live point"
            (Tc.root_ctx recorder)
        in
        Tc.finish h;
        check_contains "later spans visible" "\"point\":\"p/0\""
          (body_of (scrape path "/trace.json")))

let () =
  Alcotest.run "lattol_serve"
    [
      ( "prom",
        [
          Alcotest.test_case "render" `Quick test_prom_render;
          Alcotest.test_case "families grouped" `Quick
            test_prom_families_grouped;
        ] );
      ( "progress",
        [
          Alcotest.test_case "snapshot" `Quick test_progress_snapshot;
          Alcotest.test_case "worker busy/idle accounting" `Quick
            test_worker_times;
          Alcotest.test_case "eta degenerate shapes" `Quick
            test_progress_eta_guard;
        ] );
      ( "exporter",
        [
          Alcotest.test_case "endpoints" `Quick test_endpoints;
          Alcotest.test_case "health probe" `Quick test_health_probe;
          Alcotest.test_case "scrapes under load" `Quick
            test_scrapes_under_load;
          Alcotest.test_case "runtime route" `Quick test_runtime_route;
          Alcotest.test_case "trace route" `Quick test_trace_route;
        ] );
    ]
