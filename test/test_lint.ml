(* The lint's whole-program half, tested as a library: the call-graph
   summarizer must be a pure function of the source text, and the
   reachability closure that defines the parallel/hot regions must be
   deterministic and monotone — an over-approximating analysis may only
   grow when the graph grows.  The rule-level behaviour (what fires
   where) lives in the cram suite over test/lint/fixtures. *)

module Callgraph = Lattol_lint.Callgraph
module Mutstate = Lattol_lint.Mutstate
module Reach = Lattol_lint.Reach
module Sset = Set.Make (String)

let parse src = Parse.implementation (Lexing.from_string src)

let summarize ~file src = Callgraph.summarize ~file (parse src)

(* ------------------------------------------------------------------ *)
(* Summarizer determinism *)

let tally_src =
  "let total = ref 0\n\
   let stream = Prng.create 42\n\
   let hits = Atomic.make 0\n"

let worker_src =
  "let bump x = Tally.total := !Tally.total + x\n\
   let work xs = Pool.map ~jobs:4 (fun x -> bump x; x) xs\n"

let hot_src =
  "let scale k x = k *. x\n\
   let[@lattol.hot] solve n =\n\
  \  let acc = ref 0. in\n\
  \  for i = 1 to n do\n\
  \    let f = scale 2. in\n\
  \    acc := !acc +. f (float_of_int i)\n\
  \  done;\n\
  \  !acc\n"

let test_summary_deterministic () =
  List.iter
    (fun (file, src) ->
      let a = summarize ~file src and b = summarize ~file src in
      Alcotest.(check bool)
        (file ^ " summarized twice is identical")
        true (a = b))
    [ ("tally.ml", tally_src); ("worker.ml", worker_src);
      ("hot.ml", hot_src) ]

let test_summary_shape () =
  let s = summarize ~file:"worker.ml" worker_src in
  let ids = List.map (fun (f : Callgraph.fn) -> f.id) s.Callgraph.fns in
  Alcotest.(check bool) "bump is a node" true (List.mem "Worker.bump" ids);
  let par =
    List.filter (fun (f : Callgraph.fn) -> f.par_root) s.Callgraph.fns
  in
  Alcotest.(check int) "one parallel root (the Pool.map closure)" 1
    (List.length par);
  let root = List.hd par in
  Alcotest.(check bool) "the root calls bump" true
    (List.exists (fun (c, _) -> c = "bump") root.Callgraph.calls)

let test_mutstate_inventory () =
  let gs = Mutstate.scan ~file:"tally.ml" (parse tally_src) in
  let find name =
    List.find (fun (g : Mutstate.global) -> g.Mutstate.id = name) gs
  in
  Alcotest.(check int) "three globals" 3 (List.length gs);
  Alcotest.(check bool) "ref is unprotected" false
    (find "Tally.total").Mutstate.protected;
  Alcotest.(check bool) "Atomic is protected" true
    (find "Tally.hits").Mutstate.protected

(* ------------------------------------------------------------------ *)
(* End-to-end phase 2 over in-memory units *)

let analyze_rules sources =
  let summaries = List.map (fun (f, s) -> summarize ~file:f s) sources in
  let globals =
    List.concat_map (fun (f, s) -> Mutstate.scan ~file:f (parse s)) sources
  in
  let p = Reach.build summaries globals in
  let fired = ref [] in
  Reach.analyze p
    ~enabled:(fun _ -> true)
    ~report:(fun ~rule ~file:_ ~pos:_ ~message:_ -> fired := rule :: !fired);
  List.sort_uniq String.compare !fired

let test_phase2_fires () =
  let rules =
    analyze_rules [ ("tally.ml", tally_src); ("worker.ml", worker_src) ]
  in
  Alcotest.(check (list string))
    "unprotected cross-module mutation is caught through the call graph"
    [ "dom-shared-mutation"; "dom-unprotected-read-write" ]
    rules

let test_phase2_silent_when_protected () =
  let protected_src =
    "let work xs =\n\
    \  Pool.map ~jobs:4\n\
    \    (fun x ->\n\
    \      Mutex.protect Tally.lock (fun () -> Tally.total := x);\n\
    \      Atomic.incr Tally.hits;\n\
    \      x)\n\
    \    xs\n"
  in
  let tally =
    "let total = ref 0\nlet lock = Mutex.create ()\nlet hits = Atomic.make 0\n"
  in
  Alcotest.(check (list string))
    "locked mutation and Atomic state stay silent" []
    (analyze_rules [ ("tally.ml", tally); ("safe.ml", protected_src) ])

let test_hot_alloc_fires () =
  let rules = analyze_rules [ ("hot.ml", hot_src) ] in
  Alcotest.(check (list string))
    "per-iteration boxing in the hot region" [ "hot-alloc" ] rules

(* ------------------------------------------------------------------ *)
(* Reachability closure: determinism and monotonicity *)

let node_gen = QCheck.Gen.map (Printf.sprintf "n%d") (QCheck.Gen.int_bound 9)

let graph_gen =
  QCheck.Gen.(small_list (pair node_gen (small_list node_gen)))

let roots_gen = QCheck.Gen.small_list node_gen

let print_graph (edges, roots) =
  let b = Buffer.create 64 in
  List.iter
    (fun (s, ds) ->
      Buffer.add_string b
        (Printf.sprintf "%s->[%s] " s (String.concat ";" ds)))
    edges;
  Buffer.add_string b ("roots=[" ^ String.concat ";" roots ^ "]");
  Buffer.contents b

let graph_arb =
  QCheck.make ~print:print_graph QCheck.Gen.(pair graph_gen roots_gen)

let qcheck_closure_deterministic =
  QCheck.Test.make ~name:"closure is invariant under edge/root order"
    ~count:500 graph_arb (fun (edges, roots) ->
      Reach.closure ~edges ~roots
      = Reach.closure ~edges:(List.rev edges) ~roots:(List.rev roots))

let qcheck_closure_contains_roots =
  QCheck.Test.make ~name:"closure contains its roots" ~count:500 graph_arb
    (fun (edges, roots) ->
      let c = Sset.of_list (Reach.closure ~edges ~roots) in
      List.for_all (fun r -> Sset.mem r c) roots)

let extra_edge_gen = QCheck.Gen.pair node_gen (QCheck.Gen.small_list node_gen)

let graph_extra_arb =
  QCheck.make
    ~print:(fun ((edges, roots), (s, ds)) ->
      print_graph (edges, roots)
      ^ Printf.sprintf " +%s->[%s]" s (String.concat ";" ds))
    QCheck.Gen.(pair (pair graph_gen roots_gen) extra_edge_gen)

let qcheck_closure_monotone =
  QCheck.Test.make
    ~name:"adding an edge never shrinks the closure (monotone)" ~count:500
    graph_extra_arb (fun ((edges, roots), extra) ->
      let before = Sset.of_list (Reach.closure ~edges ~roots) in
      let after =
        Sset.of_list (Reach.closure ~edges:(extra :: edges) ~roots)
      in
      Sset.subset before after)

let () =
  Alcotest.run "lint"
    [
      ( "callgraph",
        [
          Alcotest.test_case "summaries are deterministic" `Quick
            test_summary_deterministic;
          Alcotest.test_case "summary shape" `Quick test_summary_shape;
          Alcotest.test_case "mutable-state inventory" `Quick
            test_mutstate_inventory;
        ] );
      ( "phase2",
        [
          Alcotest.test_case "cross-module race fires" `Quick
            test_phase2_fires;
          Alcotest.test_case "protected access is silent" `Quick
            test_phase2_silent_when_protected;
          Alcotest.test_case "hot-alloc fires" `Quick test_hot_alloc_fires;
        ] );
      ( "reachability",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_closure_deterministic;
            qcheck_closure_contains_roots;
            qcheck_closure_monotone;
          ] );
    ]
