(* Cross-model conformance: on a lattice of small configurations, every
   model of the MMS machine must tell the same story.

   The ladder of ground truth, strongest first:

   - brute-force CTMC of the queueing network (exact steady state);
   - exact MVA (exact for this product-form network, so it must agree
     with the CTMC to solver precision);
   - Linearizer and Bard-Schweitzer AMVA (approximations with known
     accuracy bands — a few percent for Linearizer, somewhat wider for
     Bard-Schweitzer);
   - the discrete-event simulator (stochastic; checked against the
     Linearizer prediction within its own confidence interval, widened
     to keep the suite deterministic at a fixed seed).

   The lattice sticks to dimensions = 1, k = 2 (a 2-node ring): the CTMC
   state space explodes combinatorially in stations x population, and
   this is the largest machine for which every rung stays tractable. *)

open Lattol_core
module Qn_ctmc = Lattol_markov.Qn_ctmc

let base =
  {
    Params.default with
    Params.k = 2;
    dimensions = 1;
    n_t = 2;
    pattern = Lattol_topology.Access.Uniform;
  }

(* n_t x p_remote x runlength lattice, 12 configurations. *)
let lattice =
  List.concat_map
    (fun n_t ->
      List.concat_map
        (fun p_remote ->
          List.map
            (fun runlength ->
              { base with Params.n_t; p_remote; runlength })
            [ 1.; 2. ])
        [ 0.2; 0.5 ])
    [ 1; 2; 3 ]

let config_name p =
  Printf.sprintf "n_t=%d p=%g R=%g" p.Params.n_t p.Params.p_remote
    p.Params.runlength

let rel_err ~truth v =
  if Float.equal truth 0. then abs_float v else abs_float (v -. truth) /. truth

let ctmc_measures p =
  Mms.measures_of_solution p (Qn_ctmc.solve (Mms.build_network p))

let test_exact_mva_matches_ctmc () =
  List.iter
    (fun p ->
      let mva = Mms.solve ~solver:Mms.Exact_mva p in
      let ctmc = ctmc_measures p in
      let name = config_name p in
      (* Both are exact; disagreement beyond numerical precision means one
         of the two machines is mis-built. *)
      Alcotest.(check (float 1e-6))
        (name ^ " u_p") ctmc.Measures.u_p mva.Measures.u_p;
      Alcotest.(check (float 1e-6))
        (name ^ " lambda") ctmc.Measures.lambda mva.Measures.lambda;
      Alcotest.(check (float 1e-6))
        (name ^ " lambda_net") ctmc.Measures.lambda_net
        mva.Measures.lambda_net)
    lattice

let check_band ~band solver label =
  List.iter
    (fun p ->
      let truth = Mms.solve ~solver:Mms.Exact_mva p in
      let approx = Mms.solve ~solver p in
      let e = rel_err ~truth:truth.Measures.u_p approx.Measures.u_p in
      if e > band then
        Alcotest.failf "%s: %s U_p off by %.2f%% (band %.0f%%)"
          (config_name p) label (100. *. e) (100. *. band))
    lattice

let test_linearizer_within_band () =
  (* Linearizer is the repository's best approximation: 5% on this
     lattice (observed worst case is well under that). *)
  check_band ~band:0.05 Mms.Linearizer_amva "linearizer"

let test_bard_schweitzer_within_band () =
  (* Bard-Schweitzer trades accuracy for speed; 10% documented band. *)
  check_band ~band:0.10 Mms.General_amva "amva"

let test_des_agrees_with_linearizer () =
  (* Two lattice corners, fixed seed.  The DES estimate must land inside
     its own batch-means CI around the Linearizer prediction, widened to
     3 half-widths (plus an absolute floor of 0.02 for the approximation
     error Linearizer itself carries). *)
  List.iter
    (fun p ->
      let predicted = (Mms.solve ~solver:Mms.Linearizer_amva p).Measures.u_p in
      let r =
        Lattol_sim.Mms_des.run
          ~config:
            {
              Lattol_sim.Mms_des.default_config with
              Lattol_sim.Mms_des.horizon = 20_000.;
            }
          p
      in
      let observed = r.Lattol_sim.Mms_des.measures.Measures.u_p in
      let _, half = r.Lattol_sim.Mms_des.u_p_ci in
      let slack = Float.max (3. *. half) 0.02 in
      if abs_float (observed -. predicted) > slack then
        Alcotest.failf "%s: DES U_p %.4f vs linearizer %.4f (slack %.4f)"
          (config_name p) observed predicted slack)
    [
      { base with Params.n_t = 2; p_remote = 0.2 };
      { base with Params.n_t = 3; p_remote = 0.5; runlength = 2. };
    ]

let test_stpn_agrees_with_linearizer () =
  (* Same idea for the Petri-net engine, one corner.  The STPN has no
     batch-means CI in its result, so the band is absolute. *)
  let p = { base with Params.n_t = 2; p_remote = 0.2 } in
  let predicted = (Mms.solve ~solver:Mms.Linearizer_amva p).Measures.u_p in
  let r = Lattol_petri.Mms_stpn.run ~horizon:20_000. p in
  let observed = r.Lattol_petri.Mms_stpn.measures.Measures.u_p in
  if abs_float (observed -. predicted) > 0.03 then
    Alcotest.failf "STPN U_p %.4f vs linearizer %.4f" observed predicted

let () =
  Alcotest.run "conformance"
    [
      ( "analytic",
        [
          Alcotest.test_case "exact MVA = CTMC" `Slow test_exact_mva_matches_ctmc;
          Alcotest.test_case "linearizer within 5%" `Quick
            test_linearizer_within_band;
          Alcotest.test_case "bard-schweitzer within 10%" `Quick
            test_bard_schweitzer_within_band;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "DES within CI of linearizer" `Slow
            test_des_agrees_with_linearizer;
          Alcotest.test_case "STPN near linearizer" `Slow
            test_stpn_agrees_with_linearizer;
        ] );
    ]
