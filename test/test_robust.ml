(* Tests for the resilient-solver supervisor, the fault-injection layer,
   and the solver hardening that underpins them: the zero-demand guard,
   NaN termination and the per-sweep observer hook. *)

open Lattol_core
open Lattol_queueing
open Lattol_robust

let close ?(eps = 1e-9) = Alcotest.(check (float eps))
let default = Params.default

(* ------------------------------------------------------------------ *)
(* Solver hardening (satellites: zero-demand guard, NaN termination) *)

(* [Network.make] rejects a populated zero-demand class, but
   [with_population] can populate one after the fact.  The solver must
   keep it inert instead of dividing pops by a zero cycle time. *)
let test_zero_demand_class_inert () =
  let nw =
    Network.make
      ~stations:[| ("cpu", Network.Queueing); ("disk", Network.Queueing) |]
      ~classes:
        [|
          {
            Network.class_name = "real";
            population = 2;
            visits = [| 1.; 0.5 |];
            service = [| 1.; 2. |];
          };
          {
            Network.class_name = "ghost";
            population = 0;
            visits = [| 0.; 0. |];
            service = [| 0.; 0. |];
          };
        |]
  in
  let nw = Network.with_population nw [| 2; 3 |] in
  let s = Amva.solve nw in
  Alcotest.(check bool) "converged" true s.Solution.converged;
  close "ghost throughput forced to 0" 0. s.Solution.throughput.(1);
  Alcotest.(check bool)
    "real throughput finite" true
    (Float.is_finite s.Solution.throughput.(0));
  Alcotest.(check bool)
    "real throughput positive" true (s.Solution.throughput.(0) > 0.);
  let lin = Linearizer.solve nw in
  close "linearizer ghost throughput 0" 0. lin.Solution.throughput.(1);
  Alcotest.(check bool)
    "linearizer real finite" true
    (Float.is_finite lin.Solution.throughput.(0))

(* NaN damping slips past the range check (NaN comparisons are false) and
   poisons every queue update on the first sweep.  The solver must stop
   immediately with [converged = false] rather than declare victory
   (NaN deltas compare false against any threshold) or spin to the cap. *)
let test_nan_residual_terminates () =
  let nw = Mms.build_network default in
  let options =
    { Amva.default_options with Amva.damping = Float.nan }
  in
  let s = Amva.solve ~options nw in
  Alcotest.(check bool) "not converged" false s.Solution.converged;
  Alcotest.(check bool)
    "stopped on first sweeps, not the cap" true
    (s.Solution.iterations < 5)

let test_on_sweep_abort () =
  let nw = Mms.build_network default in
  let options =
    {
      Amva.default_options with
      Amva.on_sweep =
        Some
          (fun ~iteration ~residual:_ ->
            if iteration >= 3 then Amva.Abort else Amva.Continue);
    }
  in
  let s = Amva.solve ~options nw in
  Alcotest.(check bool) "not converged" false s.Solution.converged;
  Alcotest.(check int) "aborted exactly at sweep 3" 3 s.Solution.iterations

(* ------------------------------------------------------------------ *)
(* Non-convergence propagation *)

let test_nonconvergence_propagates () =
  let sol = Mms.solve_network ~max_iterations:2 default in
  Alcotest.(check bool) "solution flag" false sol.Solution.converged;
  let m = Mms.measures_of_solution default sol in
  Alcotest.(check bool) "measures flag" false m.Measures.converged;
  let sol_gen =
    Mms.solve_network ~solver:Mms.General_amva ~max_iterations:2 default
  in
  Alcotest.(check bool) "general solver flag" false sol_gen.Solution.converged

(* ------------------------------------------------------------------ *)
(* Supervisor *)

let ill_conditioned = { default with Params.p_remote = 0.9; n_t = 10 }

let test_supervisor_clean_first_try () =
  match Supervisor.solve default with
  | Error _ -> Alcotest.fail "default params must converge"
  | Ok (m, d) ->
    Alcotest.(check bool) "converged" true m.Measures.converged;
    Alcotest.(check int) "no fallbacks" 0 d.Supervisor.fallbacks;
    Alcotest.(check int) "one attempt" 1 (List.length d.Supervisor.attempts);
    Alcotest.(check int)
      "no bound violations" 0
      (List.length d.Supervisor.violations);
    Alcotest.(check int) "exit code 0" 0
      (Supervisor.exit_code (Supervisor.outcome (Ok (m, d))));
    (* the supervised answer matches the unsupervised solver *)
    let direct = Mms.solve default in
    close ~eps:1e-9 "same u_p as direct solve" direct.Measures.u_p
      m.Measures.u_p

let test_supervisor_ladder_recovers () =
  (* base budget of 8 sweeps forces the early rungs to fail by iteration
     cap; the doubling ladder must still land on a converged rung. *)
  match Supervisor.solve ~base_iterations:8 ill_conditioned with
  | Error _ -> Alcotest.fail "ladder must recover"
  | Ok (m, d) ->
    Alcotest.(check bool) "converged" true m.Measures.converged;
    Alcotest.(check bool) "u_p finite" true (Float.is_finite m.Measures.u_p);
    Alcotest.(check bool) "fallbacks happened" true (d.Supervisor.fallbacks > 0);
    Alcotest.(check int)
      "attempt log complete"
      (d.Supervisor.fallbacks + 1)
      (List.length d.Supervisor.attempts);
    (* every failed attempt records a reason; the accepted one records none *)
    let rec check_reasons = function
      | [] -> Alcotest.fail "empty attempt log"
      | [ last ] ->
        Alcotest.(check bool) "accepted attempt converged" true
          last.Supervisor.converged;
        Alcotest.(check bool) "accepted attempt has no reason" true
          (last.Supervisor.reason = None)
      | a :: rest ->
        Alcotest.(check bool) "failed attempt has a reason" true
          (a.Supervisor.reason <> None);
        check_reasons rest
    in
    check_reasons d.Supervisor.attempts;
    Alcotest.(check int) "exit code 3" 3
      (Supervisor.exit_code (Supervisor.outcome (Ok (m, d))))

let test_supervisor_all_rungs_fail () =
  match
    Supervisor.solve ~solvers:[ Mms.Symmetric_amva ] ~dampings:[ 0. ]
      ~base_iterations:1 ill_conditioned
  with
  | Ok _ -> Alcotest.fail "one 1-sweep rung cannot converge"
  | Error d ->
    Alcotest.(check int) "single attempt" 1 (List.length d.Supervisor.attempts);
    Alcotest.(check int) "exit code 4" 4
      (Supervisor.exit_code (Supervisor.outcome (Error d)))

let test_supervisor_agrees_with_direct_solve () =
  (* The recovered ill-conditioned solution must agree with an unsupervised
     solve given a generous budget: the ladder changes how we get there,
     never the fixed point itself. *)
  let direct = Mms.solve ill_conditioned in
  match Supervisor.solve ~base_iterations:8 ill_conditioned with
  | Error _ -> Alcotest.fail "ladder must recover"
  | Ok (m, _) ->
    close ~eps:1e-6 "u_p agrees" direct.Measures.u_p m.Measures.u_p;
    close ~eps:1e-6 "lambda agrees" direct.Measures.lambda m.Measures.lambda

let test_supervisor_rung_spans () =
  (* With a causal context, every rung lands one "solve"-cat span whose
     meta names solver/damping/budget and the outcome; the accepted rung
     is the last.  An untraced solve must record nothing. *)
  let module Tc = Lattol_obs.Trace_ctx in
  let r = Tc.create ~root:"rungs" () in
  (match
     Supervisor.solve ~base_iterations:8 ~causal:(Tc.root_ctx r)
       ill_conditioned
   with
  | Error _ -> Alcotest.fail "ladder must recover"
  | Ok (_, d) ->
    let rungs =
      List.filter
        (fun (s : Tc.span) ->
          String.equal s.cat "solve"
          && String.length s.name >= 4
          && String.equal (String.sub s.name 0 4) "rung")
        (Tc.spans r)
    in
    Alcotest.(check int) "one span per attempt"
      (List.length d.Supervisor.attempts)
      (List.length rungs);
    List.iter
      (fun (s : Tc.span) ->
        List.iter
          (fun k ->
            if not (List.mem_assoc k s.meta) then
              Alcotest.failf "rung span %s missing %s" s.name k)
          [ "solver"; "damping"; "budget"; "outcome" ])
      rungs;
    match List.rev rungs with
    | last :: earlier ->
      Alcotest.(check string) "last rung accepted" "accepted"
        (List.assoc "outcome" last.meta);
      List.iter
        (fun (s : Tc.span) ->
          Alcotest.(check bool)
            (s.name ^ " earlier rung did not accept")
            false
            (String.equal (List.assoc "outcome" s.meta) "accepted"))
        earlier
    | [] -> Alcotest.fail "no rung spans recorded");
  let quiet = Tc.create ~root:"quiet" () in
  (match Supervisor.solve default with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "default params must converge");
  Alcotest.(check int) "untraced solve records nothing" 0 (Tc.count quiet)

(* ------------------------------------------------------------------ *)
(* Fault plans *)

let test_fault_plan_validation () =
  let ok plan =
    Alcotest.(check bool) "valid" true (Result.is_ok (Fault_plan.validate plan))
  in
  let bad plan =
    Alcotest.(check bool) "invalid" true
      (Result.is_error (Fault_plan.validate plan))
  in
  ok Fault_plan.none;
  ok
    {
      Fault_plan.switch =
        Some (Fault_plan.process ~mtbf:100. ~mttr:10. ~degrade:0.);
      memory = None;
    };
  bad
    {
      Fault_plan.switch =
        Some { Fault_plan.mtbf = 0.; mttr = 10.; degrade = 0. };
      memory = None;
    };
  bad
    {
      Fault_plan.switch = None;
      memory = Some { Fault_plan.mtbf = 100.; mttr = -1.; degrade = 0. };
    };
  bad
    {
      Fault_plan.switch = None;
      memory = Some { Fault_plan.mtbf = 100.; mttr = 10.; degrade = 1.5 };
    };
  Alcotest.(check bool) "none inactive" false (Fault_plan.active Fault_plan.none)

let test_fault_plan_quasi_static () =
  let p = Fault_plan.process ~mtbf:900. ~mttr:100. ~degrade:0. in
  close "availability" 0.9 (Fault_plan.availability p);
  close ~eps:1e-9 "full-outage slowdown" (1. /. 0.9) (Fault_plan.slowdown p);
  let half = { p with Fault_plan.degrade = 0.5 } in
  close ~eps:1e-9 "half-speed slowdown" (1. /. 0.95) (Fault_plan.slowdown half);
  let plan = { Fault_plan.switch = Some p; memory = Some half } in
  let degraded = Fault_plan.degrade_params plan default in
  close ~eps:1e-9 "switch time inflated"
    (default.Params.s_switch /. 0.9)
    degraded.Params.s_switch;
  close ~eps:1e-9 "memory time inflated"
    (default.Params.l_mem /. 0.95)
    degraded.Params.l_mem;
  (* no plan leaves the parameters untouched *)
  let same = Fault_plan.degrade_params Fault_plan.none default in
  close "s_switch unchanged" default.Params.s_switch same.Params.s_switch;
  close "l_mem unchanged" default.Params.l_mem same.Params.l_mem

(* ------------------------------------------------------------------ *)
(* DES fault injection *)

open Lattol_sim

let small = { default with Params.k = 2; n_t = 2 }

let des_config ?(faults = Fault_plan.none) () =
  { Mms_des.default_config with Mms_des.horizon = 5_000.; faults }

let switch_outages =
  {
    Fault_plan.switch = Some (Fault_plan.process ~mtbf:500. ~mttr:50. ~degrade:0.);
    memory = None;
  }

let test_des_fault_injection () =
  let base = Mms_des.run ~config:(des_config ()) small in
  Alcotest.(check int) "no fault stats without a plan" 0
    (List.length base.Mms_des.faults);
  let faulty = Mms_des.run ~config:(des_config ~faults:switch_outages ()) small in
  Alcotest.(check int) "one faulty component class" 1
    (List.length faulty.Mms_des.faults);
  let fs = List.hd faulty.Mms_des.faults in
  Alcotest.(check string) "component" "switch" fs.Mms_des.component;
  Alcotest.(check bool) "failures observed" true (fs.Mms_des.failures > 0);
  Alcotest.(check bool) "downtime accrued" true (fs.Mms_des.downtime > 0.);
  (* unavailability should sit near the analytical 50 / 550 ~ 0.0909 *)
  Alcotest.(check bool)
    "unavailability plausible" true
    (fs.Mms_des.unavailability > 0.02 && fs.Mms_des.unavailability < 0.3);
  Alcotest.(check bool)
    "mean outage finite" true (Float.is_finite fs.Mms_des.mean_outage);
  Alcotest.(check bool)
    "faulty measures finite" true
    (Float.is_finite faulty.Mms_des.measures.Measures.u_p);
  Alcotest.(check bool)
    "outages cost utilization" true
    (faulty.Mms_des.measures.Measures.u_p < base.Mms_des.measures.Measures.u_p)

let test_des_fault_determinism () =
  let run () = Mms_des.run ~config:(des_config ~faults:switch_outages ()) small in
  let a = run () and b = run () in
  close "u_p reproducible" a.Mms_des.measures.Measures.u_p
    b.Mms_des.measures.Measures.u_p;
  let fa = List.hd a.Mms_des.faults and fb = List.hd b.Mms_des.faults in
  Alcotest.(check int) "failures reproducible" fa.Mms_des.failures
    fb.Mms_des.failures;
  close "downtime reproducible" fa.Mms_des.downtime fb.Mms_des.downtime

let test_des_degraded_service () =
  let plan =
    {
      Fault_plan.switch = None;
      memory = Some (Fault_plan.process ~mtbf:300. ~mttr:100. ~degrade:0.5);
    }
  in
  let r = Mms_des.run ~config:(des_config ~faults:plan ()) small in
  let fs = List.hd r.Mms_des.faults in
  Alcotest.(check string) "component" "memory" fs.Mms_des.component;
  Alcotest.(check bool) "failures observed" true (fs.Mms_des.failures > 0);
  Alcotest.(check bool)
    "measures finite under degradation" true
    (Float.is_finite r.Mms_des.measures.Measures.u_p);
  Alcotest.(check bool) "simulation still productive" true
    (r.Mms_des.measures.Measures.lambda > 0.)

(* ------------------------------------------------------------------ *)
(* Chaos injection plans *)

let rejects f =
  match f () with
  | _ -> Alcotest.fail "invalid plan accepted"
  | exception Invalid_argument _ -> ()

let test_chaos_plan_validation () =
  rejects (fun () -> Chaos.plan ~fail_rate:1.5 ());
  rejects (fun () -> Chaos.plan ~fail_rate:(-0.1) ());
  rejects (fun () -> Chaos.plan ~fail_attempts:(-1) ());
  rejects (fun () -> Chaos.plan ~delay:(-1.) ());
  Alcotest.(check bool) "none is inert" false (Chaos.active Chaos.none);
  Alcotest.(check bool) "a failure rate activates" true
    (Chaos.active (Chaos.plan ~fail_rate:0.5 ()));
  Alcotest.(check bool) "a delay alone activates" true
    (Chaos.active (Chaos.plan ~delay:0.001 ()))

let test_chaos_affected_deterministic () =
  let tasks = List.init 200 (fun i -> Printf.sprintf "p_remote=%d" i) in
  let hits plan = List.map (fun t -> Chaos.affected plan ~task:t) tasks in
  let p = Chaos.plan ~fail_rate:0.5 ~seed:7 () in
  Alcotest.(check (list bool))
    "pure in (seed, task): same plan, same set" (hits p) (hits p);
  let count l = List.length (List.filter Fun.id l) in
  let n = count (hits p) in
  Alcotest.(check bool) "rate 0.5 hits some" true (n > 0);
  Alcotest.(check bool) "rate 0.5 spares some" true (n < 200);
  Alcotest.(check bool) "a different seed picks a different set" true
    (hits p <> hits (Chaos.plan ~fail_rate:0.5 ~seed:8 ()));
  Alcotest.(check int) "rate 1 hits everything" 200
    (count (hits (Chaos.plan ~fail_rate:1. ())));
  Alcotest.(check int) "rate 0 hits nothing" 0 (count (hits Chaos.none))

let test_chaos_inject_recovers () =
  (* An affected task fails attempts 1..fail_attempts, then succeeds —
     the contract that makes [retries > fail_attempts] always recover. *)
  let p = Chaos.plan ~fail_rate:1. ~fail_attempts:2 () in
  let faulted attempt =
    match Chaos.inject p ~task:"t" ~attempt with
    | () -> false
    | exception Chaos.Injected_fault _ -> true
  in
  Alcotest.(check bool) "attempt 1 faults" true (faulted 1);
  Alcotest.(check bool) "attempt 2 faults" true (faulted 2);
  Alcotest.(check bool) "attempt 3 clears" false (faulted 3);
  (* An unaffected task is never touched, whatever the attempt. *)
  let spared = Chaos.plan ~fail_rate:0. ~fail_attempts:9 () in
  Alcotest.(check bool) "inert plan injects nothing" false
    (match Chaos.inject spared ~task:"t" ~attempt:1 with
    | () -> false
    | exception Chaos.Injected_fault _ -> true)

(* ------------------------------------------------------------------ *)
(* Retry policies *)

let test_retry_policy_validation () =
  rejects (fun () -> Retry.policy ~max_attempts:0 ());
  rejects (fun () -> Retry.policy ~base_delay:(-0.1) ());
  rejects (fun () -> Retry.policy ~base_delay:0.5 ~max_delay:0.1 ());
  rejects (fun () -> Retry.policy ~jitter:(-1.) ())

let test_retry_delay_deterministic_and_bounded () =
  let p = Retry.policy ~base_delay:0.05 ~max_delay:0.4 ~jitter:0.5 () in
  let distinct = ref false in
  for attempt = 1 to 8 do
    let rung =
      Float.min 0.4 (0.05 *. Float.pow 2. (float_of_int (attempt - 1)))
    in
    for salt = 0 to 15 do
      let d = Retry.delay p ~attempt ~salt in
      Alcotest.(check (float 0.))
        "deterministic in (salt, attempt)" d
        (Retry.delay p ~attempt ~salt);
      Alcotest.(check bool) "at least the rung" true (d >= rung);
      Alcotest.(check bool) "at most rung * (1 + jitter)" true
        (d <= rung *. 1.5);
      if salt > 0 && d <> Retry.delay p ~attempt ~salt:0 then distinct := true
    done
  done;
  Alcotest.(check bool) "jitter desynchronizes salts" true !distinct;
  (* jitter 0 collapses to the bare exponential rung, capped. *)
  let bare = Retry.policy ~base_delay:0.05 ~max_delay:0.4 ~jitter:0. () in
  Alcotest.(check (float 1e-12)) "first rung" 0.05
    (Retry.delay bare ~attempt:1 ~salt:3);
  Alcotest.(check (float 1e-12)) "doubling" 0.1
    (Retry.delay bare ~attempt:2 ~salt:3);
  Alcotest.(check (float 1e-12)) "capped" 0.4
    (Retry.delay bare ~attempt:8 ~salt:3)

let test_retry_classify_defaults () =
  let t e = Retry.default_classify e = Retry.Transient in
  Alcotest.(check bool) "injected fault transient" true
    (t (Chaos.Injected_fault "x"));
  Alcotest.(check bool) "deadline transient" true (t Retry.Deadline_exceeded);
  Alcotest.(check bool) "flaky I/O transient" true (t (Sys_error "eio"));
  Alcotest.(check bool) "unix error transient" true
    (t (Unix.Unix_error (Unix.EIO, "read", "")));
  Alcotest.(check bool) "Failure fatal" false (t (Failure "deterministic"));
  Alcotest.(check bool) "Invalid_argument fatal" false
    (t (Invalid_argument "bad"))

let test_retry_deadline_expires () =
  let d = Retry.start ~timeout:0.005 in
  Alcotest.(check bool) "fresh deadline unexpired" false (Retry.expired d);
  Retry.check d;
  Retry.sleep 0.02;
  Alcotest.(check bool) "expired after its timeout" true (Retry.expired d);
  match Retry.check d with
  | () -> Alcotest.fail "check passed an expired deadline"
  | exception Retry.Deadline_exceeded -> ()

(* ------------------------------------------------------------------ *)
(* STPN quasi-static mirror *)

let test_stpn_quasi_static_faults () =
  let plan =
    {
      Fault_plan.switch = None;
      memory = Some (Fault_plan.process ~mtbf:900. ~mttr:100. ~degrade:0.);
    }
  in
  let r = Lattol_petri.Mms_stpn.run ~horizon:2_000. ~faults:plan small in
  close ~eps:1e-9 "layout carries degraded L"
    (small.Params.l_mem /. 0.9)
    r.Lattol_petri.Mms_stpn.layout.Lattol_petri.Mms_stpn.params.Params.l_mem;
  Alcotest.(check bool)
    "measures finite" true
    (Float.is_finite r.Lattol_petri.Mms_stpn.measures.Measures.u_p)

(* ------------------------------------------------------------------ *)

let () =
  (* keep solver warnings (expected in several tests) off the test output *)
  Logs.set_level (Some Logs.Error);
  Alcotest.run "robust"
    [
      ( "hardening",
        [
          Alcotest.test_case "zero-demand class stays inert" `Quick
            test_zero_demand_class_inert;
          Alcotest.test_case "NaN residual terminates" `Quick
            test_nan_residual_terminates;
          Alcotest.test_case "on_sweep abort" `Quick test_on_sweep_abort;
          Alcotest.test_case "non-convergence propagates" `Quick
            test_nonconvergence_propagates;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "clean first try" `Quick
            test_supervisor_clean_first_try;
          Alcotest.test_case "ladder recovers" `Quick
            test_supervisor_ladder_recovers;
          Alcotest.test_case "all rungs fail" `Quick
            test_supervisor_all_rungs_fail;
          Alcotest.test_case "agrees with direct solve" `Quick
            test_supervisor_agrees_with_direct_solve;
          Alcotest.test_case "rung spans" `Quick test_supervisor_rung_spans;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "plan validation" `Quick test_chaos_plan_validation;
          Alcotest.test_case "affected set deterministic" `Quick
            test_chaos_affected_deterministic;
          Alcotest.test_case "inject recovers past fail_attempts" `Quick
            test_chaos_inject_recovers;
        ] );
      ( "retry",
        [
          Alcotest.test_case "policy validation" `Quick
            test_retry_policy_validation;
          Alcotest.test_case "delay deterministic and bounded" `Quick
            test_retry_delay_deterministic_and_bounded;
          Alcotest.test_case "default classification" `Quick
            test_retry_classify_defaults;
          Alcotest.test_case "deadline expires" `Quick
            test_retry_deadline_expires;
        ] );
      ( "faults",
        [
          Alcotest.test_case "plan validation" `Quick test_fault_plan_validation;
          Alcotest.test_case "quasi-static math" `Quick
            test_fault_plan_quasi_static;
          Alcotest.test_case "DES injection" `Quick test_des_fault_injection;
          Alcotest.test_case "DES determinism" `Quick test_des_fault_determinism;
          Alcotest.test_case "DES degraded service" `Quick
            test_des_degraded_service;
          Alcotest.test_case "STPN quasi-static" `Quick
            test_stpn_quasi_static_faults;
        ] );
    ]
