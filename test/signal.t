An interrupted run must still leave a parseable trace.  The CLI routes
SIGINT through exit, and every pending sink flushes from at_exit — so a
Ctrl-C'd simulation leaves a truncated but well-formed Chrome trace
(header, whatever events were buffered, footer), not a torn file.

Start a run whose horizon guarantees it cannot finish, give it a moment
to buffer spans, then interrupt it:

  $ ../bin/mms_cli.exe simulate -k 2 -d 1 --horizon 100000000 --trace-out interrupted.json >/dev/null 2>&1 &
  $ pid=$!
  $ sleep 1; kill -INT $pid; wait $pid
  [130]

The flushed file is a complete Chrome trace document:

  $ head -c 16 interrupted.json
  {"traceEvents":[
  $ tail -c 25 interrupted.json
  ,"displayTimeUnit":"ms"}

And it actually captured events before the interrupt:

  $ grep -c '"ph":"X"' interrupted.json > /dev/null && echo has-spans
  has-spans
