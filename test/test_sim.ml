(* Tests for the discrete-event simulation substrate: the event engine,
   the generic FCFS station, and the end-to-end MMS simulator held against
   the analytical model. *)

open Lattol_stats
open Lattol_sim
open Lattol_core

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:3. (fun () -> log := 3 :: !log);
  Engine.schedule e ~delay:1. (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:2. (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3 ] (List.rev !log);
  close "clock at last event" 3. (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1. (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "schedule order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~delay:1. (fun () -> incr fired);
  Engine.schedule e ~delay:5. (fun () -> incr fired);
  Engine.run ~until:2. e;
  Alcotest.(check int) "only first" 1 !fired;
  close "clock clamped" 2. (Engine.now e);
  Engine.run ~until:10. e;
  Alcotest.(check int) "second fires later" 2 !fired

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule_cancellable e ~delay:1. (fun () -> fired := true) in
  Engine.cancel e h;
  Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired;
  Alcotest.(check int) "nothing pending" 0 (Engine.pending e)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let times = ref [] in
  Engine.schedule e ~delay:1. (fun () ->
      times := Engine.now e :: !times;
      Engine.schedule e ~delay:1.5 (fun () -> times := Engine.now e :: !times));
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "chained times" [ 1.; 2.5 ] (List.rev !times)

let test_engine_invalid () =
  let e = Engine.create () in
  Alcotest.(check bool) "negative delay" true
    (try
       Engine.schedule e ~delay:(-1.) (fun () -> ());
       false
     with Invalid_argument _ -> true);
  Engine.schedule e ~delay:5. (fun () -> ());
  Engine.run e;
  Alcotest.(check bool) "past time" true
    (try
       Engine.schedule_at e ~time:1. (fun () -> ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Station *)

let test_station_fcfs_deterministic () =
  let e = Engine.create () in
  let rng = Prng.create () in
  let st = Station.create e ~rng ~name:"s" ~service:(Variate.Deterministic 2.) in
  let done_order = ref [] in
  Station.submit st 1 (fun j -> done_order := (j, Engine.now e) :: !done_order);
  Station.submit st 2 (fun j -> done_order := (j, Engine.now e) :: !done_order);
  Alcotest.(check int) "two present" 2 (Station.queue_length st);
  Engine.run e;
  Alcotest.(check (list (pair int (float 1e-9)))) "completion order"
    [ (1, 2.); (2, 4.) ]
    (List.rev !done_order);
  Alcotest.(check int) "completed" 2 (Station.completed st);
  close "utilization" 1. (Station.utilization st);
  close ~eps:1e-9 "mean queue" 1.5 (Station.mean_queue_length st)

let test_station_response_times () =
  let e = Engine.create () in
  let rng = Prng.create () in
  let st = Station.create e ~rng ~name:"s" ~service:(Variate.Deterministic 1.) in
  Station.submit st () (fun () -> ());
  Station.submit st () (fun () -> ());
  Engine.run e;
  let m = Station.response_times st in
  Alcotest.(check int) "count" 2 (Moments.count m);
  close "mean response (1 + 2)/2" 1.5 (Moments.mean m)

let test_station_reset_stats () =
  let e = Engine.create () in
  let rng = Prng.create () in
  let st = Station.create e ~rng ~name:"s" ~service:(Variate.Deterministic 1.) in
  Station.submit st () (fun () -> ());
  Engine.run e;
  Station.reset_stats st;
  Alcotest.(check int) "zeroed" 0 (Station.completed st);
  Alcotest.(check int) "response cleared" 0 (Moments.count (Station.response_times st))

let test_station_closed_loop_vs_mva () =
  (* Machine repairman in DES form: N jobs cycling think (delay simulated
     by scheduling) -> repair station.  Compare to exact MVA. *)
  let n = 4 and think = 5. and repair = 1. in
  let e = Engine.create () in
  let rng = Prng.create ~seed:123 () in
  let st = Station.create e ~rng ~name:"repair" ~service:(Variate.Exponential repair) in
  let completions = ref 0 in
  let rec cycle () =
    let z = Variate.exponential rng ~mean:think in
    Engine.schedule e ~delay:z (fun () ->
        Station.submit st () (fun () ->
            incr completions;
            cycle ()))
  in
  for _ = 1 to n do
    cycle ()
  done;
  let horizon = 200_000. in
  Engine.run ~until:horizon e;
  let x_sim = float_of_int !completions /. horizon in
  let nw =
    Lattol_queueing.Network.make
      ~stations:
        [| ("think", Lattol_queueing.Network.Delay);
           ("repair", Lattol_queueing.Network.Queueing) |]
      ~classes:
        [|
          {
            Lattol_queueing.Network.class_name = "jobs";
            population = n;
            visits = [| 1.; 1. |];
            service = [| think; repair |];
          };
        |]
  in
  let x_exact = (Lattol_queueing.Mva.solve nw).Lattol_queueing.Solution.throughput.(0) in
  if abs_float (x_sim -. x_exact) /. x_exact > 0.03 then
    Alcotest.failf "repairman sim %g vs exact %g" x_sim x_exact

(* ------------------------------------------------------------------ *)
(* Multi-server and priority stations *)

let test_station_two_servers_parallel () =
  let e = Engine.create () in
  let rng = Prng.create () in
  let st =
    Station.create ~servers:2 e ~rng ~name:"s" ~service:(Variate.Deterministic 2.)
  in
  let finished = ref [] in
  for j = 1 to 3 do
    Station.submit st j (fun j -> finished := (j, Engine.now e) :: !finished)
  done;
  Engine.run e;
  (* two run in parallel (finish at t=2), the third waits (t=4) *)
  Alcotest.(check (list (pair int (float 1e-9)))) "parallel then queued"
    [ (1, 2.); (2, 2.); (3, 4.) ]
    (List.rev !finished);
  Alcotest.(check int) "servers accessor" 2 (Station.servers st)

let test_station_two_servers_vs_mm2_theory () =
  (* Closed M/M/2//N against the exact multi-server convolution. *)
  let n = 6 and think = 3. and repair = 2. in
  let e = Engine.create () in
  let rng = Prng.create ~seed:77 () in
  let st =
    Station.create ~servers:2 e ~rng ~name:"pool"
      ~service:(Variate.Exponential repair)
  in
  let completions = ref 0 in
  let rec cycle () =
    Engine.schedule e ~delay:(Variate.exponential rng ~mean:think) (fun () ->
        Station.submit st () (fun () ->
            incr completions;
            cycle ()))
  in
  for _ = 1 to n do
    cycle ()
  done;
  let horizon = 200_000. in
  Engine.run ~until:horizon e;
  let x_sim = float_of_int !completions /. horizon in
  let nw =
    Lattol_queueing.Network.make
      ~stations:
        [| ("think", Lattol_queueing.Network.Delay);
           ("pool", Lattol_queueing.Network.Multi_server 2) |]
      ~classes:
        [|
          {
            Lattol_queueing.Network.class_name = "jobs";
            population = n;
            visits = [| 1.; 1. |];
            service = [| think; repair |];
          };
        |]
  in
  let x_exact =
    (Lattol_queueing.Convolution.solve nw).Lattol_queueing.Solution.throughput.(0)
  in
  if abs_float (x_sim -. x_exact) /. x_exact > 0.03 then
    Alcotest.failf "M/M/2 closed: sim %g vs exact %g" x_sim x_exact

let test_station_priority_order () =
  let e = Engine.create () in
  let rng = Prng.create () in
  let st =
    Station.create ~priority_levels:2 e ~rng ~name:"s"
      ~service:(Variate.Deterministic 1.)
  in
  let order = ref [] in
  let note j = order := j :: !order in
  (* Fill the server, then enqueue low before high: high must overtake. *)
  Station.submit st 0 note;
  Station.submit ~priority:1 st 1 note;
  Station.submit ~priority:1 st 2 note;
  Station.submit ~priority:0 st 3 note;
  Engine.run e;
  Alcotest.(check (list int)) "high priority overtakes" [ 0; 3; 1; 2 ]
    (List.rev !order)

let test_station_priority_clamped () =
  let e = Engine.create () in
  let rng = Prng.create () in
  let st = Station.create e ~rng ~name:"s" ~service:(Variate.Deterministic 1.) in
  let got = ref 0 in
  (* out-of-range priorities are clamped, not rejected *)
  Station.submit ~priority:42 st () (fun () -> incr got);
  Station.submit ~priority:(-3) st () (fun () -> incr got);
  Engine.run e;
  Alcotest.(check int) "both served" 2 !got

let test_des_local_priority_runs () =
  let p = { Params.default with Params.k = 2; n_t = 2 } in
  let cfg =
    {
      Mms_des.default_config with
      Mms_des.horizon = 5_000.;
      local_memory_priority = true;
    }
  in
  let r = Mms_des.run ~config:cfg p in
  Alcotest.(check bool) "valid U_p" true
    (r.Mms_des.measures.Measures.u_p > 0.
    && r.Mms_des.measures.Measures.u_p <= 1.)

(* ------------------------------------------------------------------ *)
(* Mms_des *)

let test_des_reproducible () =
  let cfg = { Mms_des.default_config with Mms_des.horizon = 5_000. } in
  let p = { Params.default with Params.k = 2; n_t = 2 } in
  let a = Mms_des.run ~config:cfg p and b = Mms_des.run ~config:cfg p in
  close "same U_p for same seed" a.Mms_des.measures.Measures.u_p
    b.Mms_des.measures.Measures.u_p;
  let c = Mms_des.run ~config:{ cfg with Mms_des.seed = 99 } p in
  Alcotest.(check bool) "different seed differs" true
    (abs_float (a.Mms_des.measures.Measures.u_p -. c.Mms_des.measures.Measures.u_p)
    > 1e-12)

let test_des_vs_exact_mva_tiny () =
  (* On a tiny MMS the exact MVA solution is the stationary truth. *)
  let p = { Params.default with Params.k = 2; n_t = 2; p_remote = 0.5 } in
  let exact = Mms.solve ~solver:Mms.Exact_mva p in
  let sim =
    Mms_des.run ~config:{ Mms_des.default_config with Mms_des.horizon = 100_000. } p
  in
  let m = sim.Mms_des.measures in
  let rel a b = abs_float (a -. b) /. b in
  if rel m.Measures.u_p exact.Measures.u_p > 0.03 then
    Alcotest.failf "U_p sim %g vs exact %g" m.Measures.u_p exact.Measures.u_p;
  if rel m.Measures.lambda_net exact.Measures.lambda_net > 0.03 then
    Alcotest.failf "lambda_net sim %g vs exact %g" m.Measures.lambda_net
      exact.Measures.lambda_net;
  if rel m.Measures.l_obs exact.Measures.l_obs > 0.05 then
    Alcotest.failf "L_obs sim %g vs exact %g" m.Measures.l_obs exact.Measures.l_obs

let test_des_vs_amva_default () =
  (* Paper Section 8: the model tracks simulation within a few percent
     (2% on lambda_net, 5% on S_obs). *)
  let p = Params.default in
  let model = Mms.solve p in
  let sim =
    Mms_des.run ~config:{ Mms_des.default_config with Mms_des.horizon = 50_000. } p
  in
  let m = sim.Mms_des.measures in
  let rel a b = abs_float (a -. b) /. b in
  if rel m.Measures.lambda_net model.Measures.lambda_net > 0.05 then
    Alcotest.failf "lambda_net sim %g vs model %g" m.Measures.lambda_net
      model.Measures.lambda_net;
  if rel m.Measures.s_obs model.Measures.s_obs > 0.10 then
    Alcotest.failf "S_obs sim %g vs model %g" m.Measures.s_obs model.Measures.s_obs

let test_des_confidence_intervals () =
  let p = { Params.default with Params.k = 2; n_t = 4 } in
  let sim =
    Mms_des.run ~config:{ Mms_des.default_config with Mms_des.horizon = 20_000. } p
  in
  let mean, half = sim.Mms_des.u_p_ci in
  Alcotest.(check bool) "CI centred near estimate" true
    (abs_float (mean -. sim.Mms_des.measures.Measures.u_p) < 0.05);
  Alcotest.(check bool) "half-width sane" true (half > 0. && half < 0.1)

let test_des_deterministic_service_variant () =
  (* The paper's sensitivity check: deterministic memory service should
     not change lambda_net by more than ~10%. *)
  let p = { Params.default with Params.k = 2; n_t = 4; p_remote = 0.5 } in
  let cfg = { Mms_des.default_config with Mms_des.horizon = 30_000. } in
  let exp_run = Mms_des.run ~config:cfg p in
  let det_run =
    Mms_des.run ~config:{ cfg with Mms_des.mem_model = Mms_des.Deterministic } p
  in
  let a = exp_run.Mms_des.measures.Measures.lambda_net in
  let b = det_run.Mms_des.measures.Measures.lambda_net in
  if abs_float (a -. b) /. a > 0.12 then
    Alcotest.failf "deterministic memory moved lambda_net too much: %g vs %g" a b

let test_des_validation () =
  Alcotest.(check bool) "bad horizon" true
    (try
       ignore
         (Mms_des.run
            ~config:{ Mms_des.default_config with Mms_des.horizon = 0. }
            Params.default);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad batches" true
    (try
       ignore
         (Mms_des.run
            ~config:{ Mms_des.default_config with Mms_des.batches = 1 }
            Params.default);
       false
     with Invalid_argument _ -> true)

let test_station_priority_vs_cobham () =
  (* Open two-class priority M/M/1 driven by Poisson arrivals; waiting
     times must match Cobham's formulas. *)
  let lam0 = 0.3 and lam1 = 0.4 and service = 1. in
  let e = Engine.create () in
  let rng = Prng.create ~seed:1234 () in
  let st =
    Station.create ~priority_levels:2 e ~rng ~name:"s"
      ~service:(Variate.Exponential service)
  in
  let wait = [| Moments.create (); Moments.create () |] in
  let rec feed cls lam =
    Engine.schedule e ~delay:(Variate.exponential rng ~mean:(1. /. lam))
      (fun () ->
        let arrived = Engine.now e in
        Station.submit ~priority:cls st () (fun () ->
            Moments.add wait.(cls) (Engine.now e -. arrived));
        feed cls lam)
  in
  feed 0 lam0;
  feed 1 lam1;
  Engine.run ~until:400_000. e;
  let theory =
    Lattol_queueing.Priority_mm1.make
      [|
        { Lattol_queueing.Priority_mm1.arrival_rate = lam0; service_time = service };
        { Lattol_queueing.Priority_mm1.arrival_rate = lam1; service_time = service };
      |]
  in
  for cls = 0 to 1 do
    let measured = Moments.mean wait.(cls) in
    let expected =
      Lattol_queueing.Priority_mm1.response_time theory ~cls
    in
    if abs_float (measured -. expected) /. expected > 0.05 then
      Alcotest.failf "class %d response %g vs Cobham %g" cls measured expected
  done

let test_des_replications () =
  let p = { Params.default with Params.k = 2; n_t = 2 } in
  let cfg = { Mms_des.default_config with Mms_des.horizon = 5_000. } in
  let first, (mean, half) = Mms_des.run_replications ~config:cfg ~replications:5 p in
  Alcotest.(check bool) "mean near first run" true
    (abs_float (mean -. first.Mms_des.measures.Measures.u_p) < 0.05);
  Alcotest.(check bool) "half-width sane" true (half > 0. && half < 0.1);
  Alcotest.(check bool) "too few replications rejected" true
    (try
       ignore (Mms_des.run_replications ~config:cfg ~replications:1 p);
       false
     with Invalid_argument _ -> true)

let test_des_adaptive_precision () =
  let p = { Params.default with Params.k = 2; n_t = 2 } in
  let r =
    Mms_des.run_until_precision ~target_rel_error:0.02 ~max_horizon:400_000. p
  in
  let mean, half = r.Mms_des.u_p_ci in
  Alcotest.(check bool) "target met or capped" true
    (half /. mean <= 0.02 || r.Mms_des.sim_time >= 399_999.);
  Alcotest.(check bool) "ran at least the minimum" true
    (r.Mms_des.sim_time >= 20_000.);
  Alcotest.(check bool) "bad target rejected" true
    (try
       ignore
         (Mms_des.run_until_precision ~target_rel_error:0. ~max_horizon:1e6 p);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Generic network simulator *)

let test_network_sim_vs_exact_mva () =
  let nw =
    Lattol_queueing.Network.make
      ~stations:
        [| ("cpu", Lattol_queueing.Network.Queueing);
           ("disk1", Lattol_queueing.Network.Queueing);
           ("disk2", Lattol_queueing.Network.Queueing) |]
      ~classes:
        [|
          {
            Lattol_queueing.Network.class_name = "jobs";
            population = 8;
            visits = [| 1.; 0.6; 0.4 |];
            service = [| 0.2; 0.5; 0.8 |];
          };
        |]
  in
  let sim =
    (Network_sim.run ~horizon:200_000. nw).Network_sim.solution
  in
  let exact = Lattol_queueing.Mva.solve nw in
  let rel a b = abs_float (a -. b) /. b in
  if
    rel sim.Lattol_queueing.Solution.throughput.(0)
      exact.Lattol_queueing.Solution.throughput.(0)
    > 0.02
  then
    Alcotest.failf "network sim X %g vs exact %g"
      sim.Lattol_queueing.Solution.throughput.(0)
      exact.Lattol_queueing.Solution.throughput.(0);
  for m = 0 to 2 do
    if
      abs_float
        (sim.Lattol_queueing.Solution.queue.(0).(m)
        -. exact.Lattol_queueing.Solution.queue.(0).(m))
      > 0.15
    then
      Alcotest.failf "queue at %d: sim %g vs exact %g" m
        sim.Lattol_queueing.Solution.queue.(0).(m)
        exact.Lattol_queueing.Solution.queue.(0).(m)
  done

let test_network_sim_exposes_multiserver_approximation () =
  (* The simulator should agree with the *exact* convolution value for a
     multiserver station, not with the MVA conditional-wait estimate. *)
  let nw =
    Lattol_queueing.Network.make
      ~stations:
        [| ("think", Lattol_queueing.Network.Delay);
           ("pool", Lattol_queueing.Network.Multi_server 2) |]
      ~classes:
        [|
          {
            Lattol_queueing.Network.class_name = "j";
            population = 5;
            visits = [| 1.; 1. |];
            service = [| 2.; 1.5 |];
          };
        |]
  in
  let sim =
    (Network_sim.run ~horizon:300_000. nw).Network_sim.solution
  in
  let conv = Lattol_queueing.Convolution.solve nw in
  let rel a b = abs_float (a -. b) /. b in
  if
    rel sim.Lattol_queueing.Solution.throughput.(0)
      conv.Lattol_queueing.Solution.throughput.(0)
    > 0.01
  then
    Alcotest.failf "multiserver sim %g vs convolution %g"
      sim.Lattol_queueing.Solution.throughput.(0)
      conv.Lattol_queueing.Solution.throughput.(0)

let test_network_sim_multiclass () =
  let nw =
    Lattol_queueing.Network.make
      ~stations:
        [| ("cpu", Lattol_queueing.Network.Queueing);
           ("disk", Lattol_queueing.Network.Queueing) |]
      ~classes:
        [|
          {
            Lattol_queueing.Network.class_name = "a";
            population = 3;
            visits = [| 1.; 2. |];
            service = [| 0.5; 0.4 |];
          };
          {
            Lattol_queueing.Network.class_name = "b";
            population = 2;
            visits = [| 1.; 1. |];
            service = [| 0.5; 0.4 |];
          };
        |]
  in
  let sim = (Network_sim.run ~horizon:200_000. nw).Network_sim.solution in
  let exact = Lattol_queueing.Mva.solve nw in
  for c = 0 to 1 do
    let rel =
      abs_float
        (sim.Lattol_queueing.Solution.throughput.(c)
        -. exact.Lattol_queueing.Solution.throughput.(c))
      /. exact.Lattol_queueing.Solution.throughput.(c)
    in
    if rel > 0.03 then Alcotest.failf "class %d off by %g" c rel
  done

let test_network_sim_population_conserved () =
  let nw =
    Lattol_queueing.Network.make
      ~stations:
        [| ("a", Lattol_queueing.Network.Queueing);
           ("z", Lattol_queueing.Network.Delay) |]
      ~classes:
        [|
          {
            Lattol_queueing.Network.class_name = "c";
            population = 6;
            visits = [| 1.; 1. |];
            service = [| 0.3; 1. |];
          };
        |]
  in
  let sim = (Network_sim.run ~horizon:50_000. nw).Network_sim.solution in
  let total =
    Lattol_queueing.Solution.queue_total sim ~station:0
    +. Lattol_queueing.Solution.queue_total sim ~station:1
  in
  close ~eps:0.02 "customers conserved" 6. total

(* ------------------------------------------------------------------ *)
(* Traces *)

let cyclic_loop =
  { Workload.elements = 1024; distribution = Workload.Cyclic;
    stencil = [ -1; 0; 1 ]; work_per_access = 2. }

let test_trace_matches_workload_matrix () =
  (* The per-node access fractions of the generated scripts equal the
     analytical access matrix exactly. *)
  let base = { Params.default with Params.n_t = 4 } in
  let trace = Trace.of_loop ~base cyclic_loop in
  let m = Workload.access_matrix cyclic_loop (Params.make_topology base) in
  for node = 0 to 15 do
    let fr = Trace.access_fractions trace ~node in
    Array.iteri
      (fun j v ->
        if abs_float (v -. m.(node).(j)) > 1e-12 then
          Alcotest.failf "node %d target %d: %g vs %g" node j v m.(node).(j))
      fr
  done

let test_grid_trace_matches_workload_matrix () =
  (* Same invariant for the 2-D grid generator: scripted access fractions
     reproduce Workload.Grid's analytical matrix, per node. *)
  let base = { Params.default with Params.n_t = 2 } in
  let grid =
    { Workload.Grid.rows = 16; cols = 16; decomposition = Workload.Grid.Blocks;
      stencil = [ (-1, 0); (0, 0); (1, 0); (0, -1); (0, 1) ];
      work_per_access = 2. }
  in
  let trace = Trace.of_grid ~base grid in
  let m = Workload.Grid.access_matrix grid ~base in
  for node = 0 to 15 do
    let fr = Trace.access_fractions trace ~node in
    Array.iteri
      (fun j v ->
        if abs_float (v -. m.(node).(j)) > 1e-12 then
          Alcotest.failf "node %d target %d: %g vs %g" node j v m.(node).(j))
      fr
  done

let test_trace_structure () =
  let base = { Params.default with Params.n_t = 4 } in
  let trace = Trace.of_loop ~base cyclic_loop in
  Alcotest.(check int) "16 nodes" 16 (Trace.num_nodes trace);
  Alcotest.(check int) "4 threads" 4 (Trace.threads_at trace ~node:0);
  (* 1024 iterations x 3 accesses spread over 16 nodes *)
  Alcotest.(check int) "total steps" (1024 * 3) (Trace.total_steps trace)

let test_trace_validation () =
  Alcotest.(check bool) "empty script rejected" true
    (try
       ignore (Trace.make ~steps:[| [| [||] |] |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative compute rejected" true
    (try
       ignore
         (Trace.make
            ~steps:[| [| [| { Trace.compute = -1.; target = 0 } |] |] |]);
       false
     with Invalid_argument _ -> true)

let test_trace_replay_close_to_model () =
  (* Trace replay on the stencil loop should land near the analytical
     model (deterministic compute narrows queues, so allow a band). *)
  let base = { Params.default with Params.n_t = 4 } in
  let p = Workload.to_params ~base cyclic_loop in
  let model = Mms.solve p in
  let trace = Trace.of_loop ~base cyclic_loop in
  let cfg = { Mms_des.default_config with Mms_des.horizon = 20_000. } in
  let r = Mms_des.run_trace ~config:cfg ~base:p trace in
  let u = r.Mms_des.measures.Measures.u_p in
  if u < model.Measures.u_p *. 0.9 || u > model.Measures.u_p *. 1.3 then
    Alcotest.failf "trace U_p %g vs model %g out of band" u model.Measures.u_p;
  (* the deterministic schedule should not do worse than the model *)
  Alcotest.(check bool) "regularity helps" true (u >= model.Measures.u_p -. 0.02)

let test_trace_replay_wrong_machine () =
  let base = { Params.default with Params.n_t = 4 } in
  let trace = Trace.of_loop ~base cyclic_loop in
  Alcotest.(check bool) "node-count mismatch rejected" true
    (try
       ignore
         (Mms_des.run_trace ~base:{ base with Params.k = 2 } trace);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_engine_processes_all =
  QCheck.Test.make ~name:"engine processes every scheduled event" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 50) (float_range 0. 100.))
    (fun delays ->
      let e = Engine.create () in
      let count = ref 0 in
      List.iter (fun d -> Engine.schedule e ~delay:d (fun () -> incr count)) delays;
      Engine.run e;
      !count = List.length delays && Engine.events_processed e = List.length delays)

let prop_engine_clock_monotone =
  QCheck.Test.make ~name:"engine clock is monotone" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 40) (float_range 0. 10.))
    (fun delays ->
      let e = Engine.create () in
      let ok = ref true in
      let last = ref 0. in
      List.iter
        (fun d ->
          Engine.schedule e ~delay:d (fun () ->
              if Engine.now e < !last then ok := false;
              last := Engine.now e))
        delays;
      Engine.run e;
      !ok)

let prop_station_conserves_jobs =
  QCheck.Test.make ~name:"station completes exactly what was submitted"
    ~count:50
    QCheck.(pair (int_range 1 30) (float_range 0.1 3.))
    (fun (n, mean) ->
      let e = Engine.create () in
      let rng = Prng.create ~seed:n () in
      let st = Station.create e ~rng ~name:"s" ~service:(Variate.Exponential mean) in
      let got = ref 0 in
      for _ = 1 to n do
        Station.submit st () (fun () -> incr got)
      done;
      Engine.run e;
      !got = n && Station.queue_length st = 0)

let prop_engine_cancellation_stress =
  QCheck.Test.make ~name:"cancelled events never fire, others always do"
    ~count:60
    QCheck.(
      list_of_size Gen.(int_range 1 60) (pair (float_range 0. 50.) bool))
    (fun events ->
      let e = Engine.create () in
      let fired = ref 0 and expected = ref 0 in
      let handles =
        List.map
          (fun (delay, cancel) ->
            let h = Engine.schedule_cancellable e ~delay (fun () -> incr fired) in
            (h, cancel))
          events
      in
      List.iter
        (fun (h, cancel) ->
          if cancel then Engine.cancel e h else incr expected)
        handles;
      Engine.run e;
      !fired = !expected)

let prop_station_work_conservation =
  QCheck.Test.make
    ~name:"multi-server station keeps busy while work is waiting" ~count:30
    QCheck.(pair (int_range 1 4) (int_range 1 20))
    (fun (servers, jobs) ->
      (* With deterministic service and simultaneous arrivals, total busy
         time is exactly jobs * service / servers when jobs >= servers
         (work conservation), measured via utilization * makespan. *)
      let e = Engine.create () in
      let rng = Prng.create () in
      let st =
        Station.create ~servers e ~rng ~name:"s"
          ~service:(Variate.Deterministic 1.)
      in
      for _ = 1 to jobs do
        Station.submit st () (fun () -> ())
      done;
      Engine.run e;
      let makespan = Engine.now e in
      let busy = Station.utilization st *. makespan *. float_of_int servers in
      abs_float (busy -. float_of_int jobs) < 1e-9)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "lattol_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_time_order;
          Alcotest.test_case "FIFO ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "invalid arguments" `Quick test_engine_invalid;
        ] );
      ( "station",
        [
          Alcotest.test_case "FCFS deterministic" `Quick test_station_fcfs_deterministic;
          Alcotest.test_case "response times" `Quick test_station_response_times;
          Alcotest.test_case "reset stats" `Quick test_station_reset_stats;
          Alcotest.test_case "closed loop vs MVA" `Slow test_station_closed_loop_vs_mva;
        ] );
      ( "multi-server+priority",
        [
          Alcotest.test_case "two servers parallel" `Quick
            test_station_two_servers_parallel;
          Alcotest.test_case "M/M/2//N vs theory" `Slow
            test_station_two_servers_vs_mm2_theory;
          Alcotest.test_case "priority order" `Quick test_station_priority_order;
          Alcotest.test_case "priority clamped" `Quick test_station_priority_clamped;
          Alcotest.test_case "DES local priority" `Quick test_des_local_priority_runs;
          Alcotest.test_case "priority station vs Cobham" `Slow
            test_station_priority_vs_cobham;
        ] );
      ( "mms-des",
        [
          Alcotest.test_case "reproducible" `Quick test_des_reproducible;
          Alcotest.test_case "vs exact MVA (tiny)" `Slow test_des_vs_exact_mva_tiny;
          Alcotest.test_case "vs AMVA (default)" `Slow test_des_vs_amva_default;
          Alcotest.test_case "confidence intervals" `Quick test_des_confidence_intervals;
          Alcotest.test_case "deterministic service" `Slow
            test_des_deterministic_service_variant;
          Alcotest.test_case "validation" `Quick test_des_validation;
          Alcotest.test_case "adaptive precision" `Slow test_des_adaptive_precision;
          Alcotest.test_case "replications" `Slow test_des_replications;
        ] );
      ( "network-sim",
        [
          Alcotest.test_case "vs exact MVA" `Slow test_network_sim_vs_exact_mva;
          Alcotest.test_case "exposes multiserver approximation" `Slow
            test_network_sim_exposes_multiserver_approximation;
          Alcotest.test_case "multiclass" `Slow test_network_sim_multiclass;
          Alcotest.test_case "population conserved" `Quick
            test_network_sim_population_conserved;
        ] );
      ( "trace",
        [
          Alcotest.test_case "fractions match matrix" `Quick
            test_trace_matches_workload_matrix;
          Alcotest.test_case "grid fractions match matrix" `Quick
            test_grid_trace_matches_workload_matrix;
          Alcotest.test_case "structure" `Quick test_trace_structure;
          Alcotest.test_case "validation" `Quick test_trace_validation;
          Alcotest.test_case "replay near model" `Slow
            test_trace_replay_close_to_model;
          Alcotest.test_case "machine mismatch" `Quick test_trace_replay_wrong_machine;
        ] );
      ( "properties",
        qcheck
          [
            prop_engine_processes_all;
            prop_engine_clock_monotone;
            prop_station_conserves_jobs;
            prop_engine_cancellation_stress;
            prop_station_work_conservation;
          ] );
    ]
