Chaos harness: the crash-safe execution layer under injected faults.
Three failure families are exercised end-to-end — unclean process death
mid-journal-write (kill -9), storage corruption (bit flips, truncation,
orphaned temp files), and flaky tasks (injected transient faults, with
and without retry budget).  The invariant throughout: a recovered run's
output is byte-identical to an undisturbed one.

A reference sweep, no crash-safety machinery at all:

  $ ../bin/mms_cli.exe sweep --param p_remote --from 0 --to 1 --steps 5 --jobs 2 > clean.csv

-------------------------------------------------------------------
Kill -9 mid-run, then resume.

The journal fsyncs record-by-record; --chaos-kill-after 2 SIGKILLs the
process right after the second record lands — no atexit, no flushing:

  $ ../bin/mms_cli.exe sweep --param p_remote --from 0 --to 1 --steps 5 --journal j.ltj --chaos-kill-after 2 > part.csv 2>/dev/null &
  $ wait $!
  Killed
  [137]

The file holds the header plus exactly the two fsync'd records:

  $ grep -c . j.ltj
  3

Resuming replays them, recomputes only the missing points — at a
different parallelism — and the rows are byte-identical:

  $ ../bin/mms_cli.exe sweep --param p_remote --from 0 --to 1 --steps 5 --journal j.ltj --resume --jobs 2 > resumed.csv
  journal: replayed 2 records (0 discarded)
  $ cmp clean.csv resumed.csv

A torn trailing record (the write the power cut interrupted) is
verified, discarded and truncated away on the next resume:

  $ printf 'deadbeefdeadbeefdeadbeefdeadbeef 4:torn ok u_p=0x1p-1' >> j.ltj
  $ ../bin/mms_cli.exe sweep --param p_remote --from 0 --to 1 --steps 5 --journal j.ltj --resume > torn.csv
  journal: replayed 5 records (1 discarded)
  $ cmp clean.csv torn.csv

A journal written by a different run specification refuses to resume —
never a silently wrong merge:

  $ ../bin/mms_cli.exe sweep --param p_remote --from 0 --to 1 --steps 7 --journal j.ltj --resume
  mms_cli: journal j.ltj was written for a different run configuration (start fresh without --resume, or delete it)
  [124]

And --resume without a journal to resume from is caught up front:

  $ ../bin/mms_cli.exe sweep --param p_remote --from 0 --to 1 --resume
  mms_cli: --resume requires --journal
  [124]

-------------------------------------------------------------------
Storage corruption: the self-healing cache.

Warm a disk cache:

  $ ../bin/mms_cli.exe sweep --param p_remote --from 0 --to 1 --steps 5 --cache c > cached.csv
  $ cmp clean.csv cached.csv

Flip one byte in the middle of an entry (simulated bit rot).  The scrub
detects it by checksum, quarantines it, and exits 1 so a cron'd scrub
can alert:

  $ entry=$(find c -type f | sort | head -n 1)
  $ ../bin/mms_cli.exe chaos flip --file "$entry" --offset 40
  $ ../bin/mms_cli.exe cache scrub --dir c
  11 entries scanned, 10 intact, 1 quarantined, 0 stale
  [1]

The quarantined entry is gone from the store (parked under
quarantine/, never served), and a warm re-run transparently re-solves
it — byte-identical output, exactly one new solve:

  $ find c -path '*quarantine*' -type f | wc -l
  1
  $ ../bin/mms_cli.exe sweep --param p_remote --from 0 --to 1 --steps 5 --cache c > healed.csv
  $ cmp clean.csv healed.csv

Truncation (a torn write) is the same story:

  $ entry=$(find c -type f ! -path '*quarantine*' | sort | head -n 1)
  $ ../bin/mms_cli.exe chaos truncate --file "$entry" --keep 10
  $ ../bin/mms_cli.exe cache scrub --dir c
  11 entries scanned, 10 intact, 1 quarantined, 0 stale
  [1]
  $ ../bin/mms_cli.exe sweep --param p_remote --from 0 --to 1 --steps 5 --cache c > healed2.csv
  $ cmp clean.csv healed2.csv

A clean store scrubs clean:

  $ ../bin/mms_cli.exe cache scrub --dir c
  11 entries scanned, 11 intact, 0 quarantined, 0 stale

-------------------------------------------------------------------
Flaky tasks: bounded retry and poisoning.

Every point fails its first two attempts with an injected transient
fault; three attempts absorb that completely — the output is identical
to the undisturbed run:

  $ ../bin/mms_cli.exe sweep --param p_remote --from 0 --to 1 --steps 5 --retries 3 --chaos-fail-rate 1 --chaos-fail-attempts 2 --jobs 2 > recovered.csv
  $ cmp clean.csv recovered.csv

Without a retry budget, the same transient fault is fatal on first
strike — the historical first-exception behavior is the default:

  $ ../bin/mms_cli.exe sweep --param p_remote --from 0 --to 1 --steps 5 --chaos-fail-rate 1 > /dev/null 2> crash.err
  [125]
  $ grep -c Injected_fault crash.err
  1

When failures outlast the budget, the poisoned points become error rows
instead of sinking the run — and are journaled as such:

  $ ../bin/mms_cli.exe sweep --param p_remote --from 0 --to 1 --steps 5 --retries 2 --chaos-fail-rate 1 --chaos-fail-attempts 9 --journal poison.ltj > poisoned.csv
  $ grep -c '# skipped' poisoned.csv
  5
  $ grep -c 'gave up after 2 attempts' poisoned.csv
  5

-------------------------------------------------------------------
Figures: the multi-sweep batch, killed and resumed.

  $ ../bin/mms_cli.exe figures --out fig --only saturation
  wrote fig/saturation.csv (21 rows)
  cache: 20 hits (0 disk, 20 shared), 43 misses, 43 solves

  $ ../bin/mms_cli.exe figures --out fig2 --only saturation --chaos-kill-after 10 >/dev/null 2>&1 &
  $ wait $!
  Killed
  [137]
  $ ../bin/mms_cli.exe figures --out fig2 --only saturation --resume
  journal: replayed 10 records (0 discarded)
  wrote fig2/saturation.csv (21 rows)
  cache: 11 hits (1 disk, 10 shared), 22 misses, 22 solves
  $ cmp fig/saturation.csv fig2/saturation.csv

Orphaned temp files (a writer that died between create and rename) are
reclaimed when the store opens, and counted:

  $ mkdir -p fig/cache/zz
  $ printf junk > fig/cache/zz/lattol-orphan.tmp
  $ touch -t 202001010000 fig/cache/zz/lattol-orphan.tmp
  $ ../bin/mms_cli.exe figures --out fig --only saturation
  wrote fig/saturation.csv (21 rows)
  cache: 63 hits (43 disk, 20 shared), 0 misses, 0 solves, 1 tmp reclaimed
  $ find fig/cache -name '*.tmp' | wc -l
  0
