(* Tests for the experiment engine: deterministic Domain pool,
   content-addressed solve cache, shared-solution sweeps, and the
   parallel-equals-sequential / warm-equals-cold byte-identity
   properties. *)

open Lattol_core
module Pool = Lattol_exec.Pool
module Cache = Lattol_exec.Cache
module Sweep = Lattol_exec.Sweep
module Figures = Lattol_exec.Figures
module Replicate = Lattol_exec.Replicate
module Journal = Lattol_exec.Journal
module Retry = Lattol_robust.Retry
module Chaos = Lattol_robust.Chaos

let tmp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_ordering () =
  let items = Array.init 100 (fun i -> i) in
  List.iter
    (fun jobs ->
      List.iter
        (fun chunk ->
          let out = Pool.map ?chunk ~jobs (fun i -> i * i) items in
          Array.iteri
            (fun i v ->
              if v <> i * i then
                Alcotest.failf "jobs=%d slot %d holds %d" jobs i v)
            out)
        [ None; Some 1; Some 7; Some 1000 ])
    [ 1; 2; 4; 8 ]

let test_pool_exception () =
  let items = Array.init 64 (fun i -> i) in
  List.iter
    (fun jobs ->
      match
        Pool.map ~jobs (fun i -> if i = 33 then failwith "boom" else i) items
      with
      | _ -> Alcotest.fail "exception swallowed"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg)
    [ 1; 4 ]


let test_pool_task_edges () =
  (* The on_task hook fires one balanced busy/idle edge pair per item,
     nested inside that worker's on_worker span — the contract the
     Progress busy/idle accounting and the runtime profiler's queue
     attribution both build on. *)
  let n = 64 in
  let items = Array.init n (fun i -> i) in
  let mu = Mutex.create () in
  let begins = ref 0
  and ends = ref 0
  and min_remaining = ref max_int
  and depth = Hashtbl.create 8
  and bad_nesting = ref 0 in
  let monitor =
    {
      Pool.on_start = (fun ~jobs:_ ~items:_ -> ());
      on_worker =
        (fun ~worker ~busy ->
          Mutex.protect mu (fun () ->
              if busy then Hashtbl.replace depth worker 0
              else if Hashtbl.find_opt depth worker <> Some 0 then
                incr bad_nesting));
      on_claim =
        (fun ~remaining ->
          Mutex.protect mu (fun () ->
              if remaining < !min_remaining then min_remaining := remaining));
      on_item = (fun () -> ());
      on_task =
        (fun ~worker ~busy ->
          Mutex.protect mu (fun () ->
              let d = Option.value ~default:0 (Hashtbl.find_opt depth worker) in
              if busy then begin
                incr begins;
                if d <> 0 then incr bad_nesting;
                Hashtbl.replace depth worker (d + 1)
              end
              else begin
                incr ends;
                if d <> 1 then incr bad_nesting;
                Hashtbl.replace depth worker (d - 1)
              end));
    }
  in
  List.iter
    (fun jobs ->
      begins := 0;
      ends := 0;
      min_remaining := max_int;
      Hashtbl.reset depth;
      bad_nesting := 0;
      let out = Pool.map ~jobs ~monitor (fun i -> i * i) items in
      Alcotest.(check (array int))
        "results untouched by the hooks"
        (Array.init n (fun i -> i * i))
        out;
      Alcotest.(check int) "one begin per item" n !begins;
      Alcotest.(check int) "one end per item" n !ends;
      Alcotest.(check int) "edges properly nested" 0 !bad_nesting;
      Alcotest.(check int) "queue drained to empty" 0 !min_remaining)
    [ 1; 4 ]

let test_pool_rejects_bad_jobs () =
  Alcotest.check_raises "jobs=0"
    (Invalid_argument "Pool.map: jobs must be at least 1") (fun () ->
      ignore (Pool.map ~jobs:0 (fun i -> i) [| 1 |]))

let test_pool_empty_and_excess_jobs () =
  Alcotest.(check (list int)) "empty" [] (Pool.map_list ~jobs:4 (fun i -> i) []);
  Alcotest.(check (list int))
    "more jobs than items" [ 2; 4 ]
    (Pool.map_list ~jobs:16 (fun i -> 2 * i) [ 1; 2 ])

(* Fast backoff so the retry tests don't sleep their way through CI. *)
let quick_policy ?(max_attempts = 3) () =
  Retry.policy ~max_attempts ~base_delay:0.001 ~max_delay:0.002 ()

let test_pool_retry_recovers () =
  (* A fault injected on the first two attempts of every item is fully
     absorbed by a three-attempt budget; attempts are sequential per item
     even though items run in parallel. *)
  let attempts = Array.make 8 0 in
  let out =
    Pool.map_ctx ~jobs:4 ~retry:(quick_policy ())
      (fun ctx i ->
        attempts.(i) <- attempts.(i) + 1;
        if ctx.Pool.attempt <> attempts.(i) then
          Alcotest.failf "item %d: ctx says attempt %d, saw %d" i
            ctx.Pool.attempt attempts.(i);
        if ctx.Pool.attempt <= 2 then raise (Chaos.Injected_fault "flaky");
        i * 10)
      (Array.init 8 (fun i -> i))
  in
  Array.iteri
    (fun i v ->
      if v <> i * 10 then Alcotest.failf "slot %d holds %d" i v;
      Alcotest.(check int) "three attempts" 3 attempts.(i))
    out

let test_pool_fatal_not_retried () =
  (* A deterministic failure must stay first-exception fatal even under a
     retry policy: retrying it could only repeat it. *)
  let calls = Atomic.make 0 in
  match
    Pool.map_ctx ~jobs:2 ~retry:(quick_policy ())
      (fun _ i ->
        if i = 3 then begin
          Atomic.incr calls;
          failwith "deterministic"
        end
        else i)
      (Array.init 8 (fun i -> i))
  with
  | _ -> Alcotest.fail "fatal exception swallowed"
  | exception Failure msg ->
    Alcotest.(check string) "message" "deterministic" msg;
    Alcotest.(check int) "never retried" 1 (Atomic.get calls)

let test_pool_poison_substitutes () =
  let mu = Mutex.create () in
  let poisoned = ref [] in
  let out =
    Pool.map_ctx ~jobs:4
      ~retry:(quick_policy ~max_attempts:2 ())
      ~on_poison:(fun p ->
        Mutex.protect mu (fun () -> poisoned := p :: !poisoned);
        -1)
      (fun _ i ->
        if i mod 2 = 0 then raise (Chaos.Injected_fault "always") else i)
      (Array.init 6 (fun i -> i))
  in
  Alcotest.(check (array int))
    "poisoned slots hold the substitute" [| -1; 1; -1; 3; -1; 5 |] out;
  let recs = List.sort compare !poisoned in
  Alcotest.(check (list int))
    "poisoned indices" [ 0; 2; 4 ]
    (List.map (fun p -> p.Pool.index) recs);
  List.iter
    (fun p ->
      Alcotest.(check int) "budget consumed" 2 p.Pool.attempts;
      Alcotest.(check bool) "error names the fault" true
        (let re = "Injected_fault" in
         let n = String.length re and m = String.length p.Pool.error in
         let rec scan i =
           i + n <= m && (String.sub p.Pool.error i n = re || scan (i + 1))
         in
         scan 0))
    recs

let test_pool_deadline_cancels () =
  (* should_stop turns true once the per-attempt deadline expires; the
     task raises Deadline_exceeded (transient) and, with the retry budget
     also exhausted, lands in on_poison. *)
  let out =
    Pool.map_ctx ~jobs:2 ~deadline:0.01
      ~retry:(quick_policy ~max_attempts:2 ())
      ~on_poison:(fun p -> -p.Pool.index)
      (fun ctx i ->
        if i = 1 then begin
          let started = Retry.now () in
          while
            (not (ctx.Pool.should_stop ())) && Retry.now () -. started < 5.
          do
            Domain.cpu_relax ()
          done;
          if ctx.Pool.should_stop () then raise Retry.Deadline_exceeded
          else failwith "deadline never armed"
        end
        else i * 10)
      (Array.init 3 (fun i -> i))
  in
  Alcotest.(check (array int)) "slow task poisoned, rest unharmed"
    [| 0; -1; 20 |] out

let test_pool_effective_jobs () =
  let cores = Pool.available_cores () in
  Alcotest.(check int) "capped at the core count" (min 8 cores)
    (Pool.effective_jobs ~jobs:8 ~items:100 ());
  Alcotest.(check int) "oversubscribe lifts the core cap" 8
    (Pool.effective_jobs ~oversubscribe:true ~jobs:8 ~items:100 ());
  Alcotest.(check int) "never more workers than items" 3
    (Pool.effective_jobs ~oversubscribe:true ~jobs:8 ~items:3 ());
  Alcotest.(check int) "empty input still sizes to one" 1
    (Pool.effective_jobs ~oversubscribe:true ~jobs:4 ~items:0 ());
  Alcotest.(check int) "jobs=1 is always 1" 1
    (Pool.effective_jobs ~jobs:1 ~items:100 ());
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Pool.map: jobs must be at least 1") (fun () ->
      ignore (Pool.effective_jobs ~jobs:0 ~items:1 ()))

(* A monitor that records only the pool size reported by on_start. *)
let size_monitor seen =
  {
    Pool.on_start = (fun ~jobs ~items:_ -> seen := jobs);
    on_worker = (fun ~worker:_ ~busy:_ -> ());
    on_claim = (fun ~remaining:_ -> ());
    on_item = (fun () -> ());
    on_task = (fun ~worker:_ ~busy:_ -> ());
  }

let test_pool_reports_effective_size () =
  (* on_start must see the pool that actually runs — after the core
     clamp, the item clamp and any oversubscription are applied. *)
  let observe ?oversubscribe jobs items =
    let seen = ref (-1) in
    ignore
      (Pool.map ?oversubscribe ~monitor:(size_monitor seen) ~jobs Fun.id
         (Array.init items Fun.id));
    !seen
  in
  Alcotest.(check int) "clamped pool observed"
    (Pool.effective_jobs ~jobs:8 ~items:32 ())
    (observe 8 32);
  Alcotest.(check int) "oversubscribed pool observed" 8
    (observe ~oversubscribe:true 8 32);
  Alcotest.(check int) "serial path reports one worker" 1 (observe 1 32)

let test_pool_map_local_per_worker_state () =
  List.iter
    (fun jobs ->
      let n = 48 in
      let results, locals =
        Pool.map_local ~oversubscribe:true ~jobs
          ~local:(fun w -> (w, ref 0))
          (fun (_, count) _ctx i ->
            incr count;
            i * 3)
          (Array.init n Fun.id)
      in
      Alcotest.(check (array int))
        "results in input order"
        (Array.init n (fun i -> i * 3))
        results;
      let workers = Pool.effective_jobs ~oversubscribe:true ~jobs ~items:n () in
      Alcotest.(check int) "one local per worker" workers (List.length locals);
      List.iteri
        (fun i (w, _) -> Alcotest.(check int) "locals in worker order" i w)
        locals;
      Alcotest.(check int) "every item counted exactly once" n
        (List.fold_left (fun acc (_, c) -> acc + !c) 0 locals))
    [ 1; 2; 4; 8 ]

let test_pool_flush_batches () =
  (* Serial path: one flush, after everything.  Parallel path with a
     forced chunk: flush fires once per claimed chunk, each batch is a
     contiguous run of at most [chunk] items, and the batches partition
     the input. *)
  let n = 30 and chunk = 7 in
  let collect jobs =
    let mu = Mutex.create () in
    let batches = ref [] in
    let _, _ =
      Pool.map_local ~oversubscribe:true ~jobs ~chunk
        ~local:(fun _ -> ref [])
        ~flush:(fun pending ->
          let b = List.rev !pending in
          pending := [];
          Mutex.protect mu (fun () -> batches := b :: !batches))
        (fun pending _ctx i ->
          pending := i :: !pending;
          i)
        (Array.init n Fun.id)
    in
    List.rev !batches
  in
  Alcotest.(check (list (list int)))
    "serial path flushes once, at the end"
    [ List.init n Fun.id ] (collect 1);
  let batches = collect 4 in
  Alcotest.(check int) "one flush per claimed chunk"
    ((n + chunk - 1) / chunk)
    (List.length batches);
  List.iter
    (fun b ->
      Alcotest.(check bool) "batch within the chunk bound" true
        (List.length b <= chunk && b <> []);
      (* contiguity: each batch is exactly the claimed range *)
      match b with
      | first :: _ ->
        Alcotest.(check (list int)) "batch is one contiguous claim"
          (List.init (List.length b) (fun i -> first + i))
          b
      | [] -> ())
    batches;
  Alcotest.(check (list int)) "batches partition the input"
    (List.init n Fun.id)
    (List.sort compare (List.concat batches))

let test_pool_flush_failure_propagates () =
  List.iter
    (fun jobs ->
      match
        Pool.map_local ~oversubscribe:true ~jobs
          ~local:(fun _ -> ())
          ~flush:(fun () -> failwith "flush-boom")
          (fun () _ctx i -> i)
          (Array.init 8 Fun.id)
      with
      | _ -> Alcotest.fail "flush failure swallowed"
      | exception Failure msg ->
        Alcotest.(check string) "flush exception reaches the caller"
          "flush-boom" msg)
    [ 1; 2 ]

let wall f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let test_pool_dispatch_scaling_floor () =
  (* The speedup-floor gate, tier-1-safe: synthetic tasks of known
     duration that PARK (sleep) rather than compute.  Parked latency
     overlaps on any core count — the paper's latency-tolerance premise
     applied to the pool itself — so two workers must beat serial by a
     conservative floor even on a single-core runner.  Eight 15 ms naps:
     serial ~120 ms, two workers ~60 ms; the 1.4x floor leaves over 40%
     headroom for scheduling noise. *)
  let tasks = Array.init 8 Fun.id in
  let nap = 0.015 in
  let run jobs =
    ignore
      (Pool.map ~jobs ~oversubscribe:true ~chunk:1
         (fun _ -> Unix.sleepf nap)
         tasks)
  in
  run 2 (* warm the domain-spawn path before timing *);
  let t1 = wall (fun () -> run 1) in
  let t2 = wall (fun () -> run 2) in
  let s = t1 /. Float.max t2 1e-9 in
  if s < 1.4 then
    Alcotest.failf "2-worker dispatch speedup %.2fx below the 1.4x floor" s

let test_pool_cpu_scaling_floor () =
  (* CPU-bound counterpart — only meaningful with two real cores.  On a
     single-core runner compute cannot parallelize and the pool rightly
     refuses to pretend (test_pool_reports_effective_size covers the
     clamp), so skip rather than assert the impossible. *)
  if Pool.available_cores () < 2 then Alcotest.skip ()
  else begin
    let work _ =
      let acc = ref 0. in
      for i = 1 to 2_000_000 do
        acc := !acc +. (1. /. float_of_int i)
      done;
      !acc
    in
    let tasks = Array.init 8 Fun.id in
    let run jobs = ignore (Pool.map ~jobs ~chunk:1 work tasks) in
    run 2;
    let t1 = wall (fun () -> run 1) in
    let t2 = wall (fun () -> run 2) in
    let s = t1 /. Float.max t2 1e-9 in
    if s < 1.3 then
      Alcotest.failf "2-core CPU speedup %.2fx below the 1.3x floor" s
  end

(* ------------------------------------------------------------------ *)
(* Journal *)

let test_journal_roundtrip () =
  let dir = tmp_dir "lattol_journal" in
  let path = Filename.concat dir "j.ltj" in
  let meta = Digest.to_hex (Digest.string "spec") in
  let j = Journal.create ~path ~meta () in
  Journal.append j ~id:"a" ~payload:"one";
  Journal.append j ~id:"b" ~payload:"two words";
  Alcotest.(check int) "appends counted" 2 (Journal.appended j);
  Journal.close j;
  match Journal.resume ~path ~meta () with
  | Error e -> Alcotest.failf "resume failed: %s" e
  | Ok j2 ->
    Alcotest.(check int) "replayed" 2 (Journal.replayed j2);
    Alcotest.(check int) "discarded" 0 (Journal.discarded j2);
    Alcotest.(check (list (pair string string)))
      "entries in append order"
      [ ("a", "one"); ("b", "two words") ]
      (Journal.entries j2);
    Alcotest.(check (option string))
      "find" (Some "two words") (Journal.find j2 "b");
    Alcotest.(check (option string)) "absent id" None (Journal.find j2 "c");
    Journal.close j2

let test_journal_torn_tail_truncated () =
  let dir = tmp_dir "lattol_journal" in
  let path = Filename.concat dir "j.ltj" in
  let meta = Digest.to_hex (Digest.string "spec") in
  let j = Journal.create ~path ~meta () in
  List.iter (fun i -> Journal.append j ~id:(string_of_int i) ~payload:"ok")
    [ 1; 2; 3 ];
  Journal.close j;
  (* The write a crash interrupted: a record with a bogus checksum and no
     terminating newline. *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "deadbeefdeadbeefdeadbeefdeadbeef 4 torn";
  close_out oc;
  (match Journal.resume ~path ~meta () with
  | Error e -> Alcotest.failf "resume failed: %s" e
  | Ok j2 ->
    Alcotest.(check int) "survivors replayed" 3 (Journal.replayed j2);
    Alcotest.(check int) "torn record discarded" 1 (Journal.discarded j2);
    Journal.close j2);
  (* The truncation is physical: a second resume sees a clean file. *)
  match Journal.resume ~path ~meta () with
  | Error e -> Alcotest.failf "re-resume failed: %s" e
  | Ok j3 ->
    Alcotest.(check int) "still three records" 3 (Journal.replayed j3);
    Alcotest.(check int) "nothing left to discard" 0 (Journal.discarded j3);
    Journal.close j3

let test_journal_meta_mismatch () =
  let dir = tmp_dir "lattol_journal" in
  let path = Filename.concat dir "j.ltj" in
  let j = Journal.create ~path ~meta:"aaaa" () in
  Journal.append j ~id:"x" ~payload:"p";
  Journal.close j;
  (match Journal.resume ~path ~meta:"bbbb" () with
  | Ok _ -> Alcotest.fail "resumed against a different run specification"
  | Error _ -> ());
  (* A non-journal file is an error, not a silent fresh start... *)
  let bogus = Filename.concat dir "not_a_journal" in
  Out_channel.with_open_bin bogus (fun oc ->
      Out_channel.output_string oc "p_remote,u_p\n0.1,0.9\n");
  (match Journal.resume ~path:bogus ~meta:"aaaa" () with
  | Ok _ -> Alcotest.fail "resumed a non-journal file"
  | Error _ -> ());
  (* ...but a missing file is a fresh start (first run with --resume in a
     wrapper script must work). *)
  match Journal.resume ~path:(Filename.concat dir "absent.ltj") ~meta:"aaaa" ()
  with
  | Error e -> Alcotest.failf "missing file refused: %s" e
  | Ok j2 ->
    Alcotest.(check int) "nothing replayed" 0 (Journal.replayed j2);
    Journal.close j2

let test_journal_duplicate_id_last_wins () =
  let dir = tmp_dir "lattol_journal" in
  let path = Filename.concat dir "j.ltj" in
  let j = Journal.create ~path ~meta:"cafe" () in
  Journal.append j ~id:"x" ~payload:"first";
  Journal.append j ~id:"x" ~payload:"second";
  Journal.close j;
  match Journal.resume ~path ~meta:"cafe" () with
  | Error e -> Alcotest.failf "resume failed: %s" e
  | Ok j2 ->
    Alcotest.(check (option string))
      "later record wins" (Some "second") (Journal.find j2 "x");
    Journal.close j2

let test_journal_append_batch () =
  let dir = tmp_dir "lattol_journal" in
  let path = Filename.concat dir "j.ltj" in
  let fired = ref [] in
  let j =
    Journal.create ~on_record:(fun n -> fired := n :: !fired) ~path
      ~meta:"cafe" ()
  in
  Journal.append j ~id:"a" ~payload:"one";
  Journal.append_batch j [ ("b", "two"); ("c", "three words") ];
  Journal.append_batch j [];
  Alcotest.(check int) "appends counted per record" 3 (Journal.appended j);
  Alcotest.(check (list int))
    "hook fired once per record, in order" [ 1; 2; 3 ]
    (List.rev !fired);
  Alcotest.(check (option string))
    "batched record resident in the live index" (Some "three words")
    (Journal.find j "c");
  Journal.close j;
  match Journal.resume ~path ~meta:"cafe" () with
  | Error e -> Alcotest.failf "resume failed: %s" e
  | Ok j2 ->
    Alcotest.(check (list (pair string string)))
      "batch records replay in batch order"
      [ ("a", "one"); ("b", "two"); ("c", "three words") ]
      (Journal.entries j2);
    Journal.close j2

let test_journal_append_batch_validates_first () =
  (* A malformed entry anywhere in the batch must leave the file
     untouched — validation is all-or-nothing, before the single write. *)
  let dir = tmp_dir "lattol_journal" in
  let path = Filename.concat dir "j.ltj" in
  let j = Journal.create ~path ~meta:"cafe" () in
  (match Journal.append_batch j [ ("ok", "fine"); ("bad id", "p") ] with
  | () -> Alcotest.fail "malformed id accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "nothing appended" 0 (Journal.appended j);
  Journal.close j;
  match Journal.resume ~path ~meta:"cafe" () with
  | Error e -> Alcotest.failf "resume failed: %s" e
  | Ok j2 ->
    Alcotest.(check int) "file untouched by the rejected batch" 0
      (Journal.replayed j2);
    Journal.close j2

(* ------------------------------------------------------------------ *)
(* Cache *)

let solver_id p = Mms.solver_label (Mms.default_solver p)

let test_cache_key_discriminates () =
  let p = Params.default in
  let k0 = Cache.key ~solver_id:(solver_id p) p in
  Alcotest.(check string) "stable" k0 (Cache.key ~solver_id:(solver_id p) p);
  let variants =
    [
      { p with Params.p_remote = 0.25 };
      { p with Params.n_t = 7 };
      { p with Params.runlength = 2. };
      { p with Params.pattern = Lattol_topology.Access.Uniform };
      { p with Params.topology = Lattol_topology.Topology.Mesh };
    ]
  in
  List.iter
    (fun q ->
      if Cache.key ~solver_id:(solver_id p) q = k0 then
        Alcotest.fail "distinct params share a key")
    variants;
  if Cache.key ~solver_id:"exact" p = k0 then
    Alcotest.fail "solver id not part of the key"

let test_cache_key_canonicalizes_floats () =
  (* Key derivation canonicalizes the two bit-level float pathologies:
     -0.0 parameterizes the same solve as 0.0, and every nan (any sign or
     payload) the same solve as every other. *)
  let p = Params.default in
  let key q = Cache.key ~solver_id:(solver_id p) q in
  let neg_zero = { p with Params.context_switch = -0.0 } in
  Alcotest.(check string)
    "-0.0 keys like 0.0" (key p) (key neg_zero);
  let nan1 = { p with Params.l_mem = Float.nan } in
  let nan2 = { p with Params.l_mem = -.Float.nan } in
  let nan3 = { p with Params.l_mem = 0. /. 0. } in
  Alcotest.(check string) "negated nan shares a key" (key nan1) (key nan2);
  Alcotest.(check string) "computed nan shares a key" (key nan1) (key nan3);
  (* Canonicalization must not merge genuinely distinct values. *)
  if key { p with Params.context_switch = 0.5 } = key p then
    Alcotest.fail "distinct context_switch values share a key";
  if key nan1 = key p then Alcotest.fail "nan l_mem keyed like the default"

let test_cache_memo_and_disk () =
  let dir = tmp_dir "lattol_cache" in
  let p = Params.default in
  let key = Cache.key ~solver_id:(solver_id p) p in
  let solves = ref 0 in
  let compute () =
    incr solves;
    Mms.solve p
  in
  let c1 = Cache.create ~dir () in
  let a = Cache.find_or_compute c1 ~key compute in
  let b = Cache.find_or_compute c1 ~key compute in
  Alcotest.(check int) "solved once" 1 !solves;
  Alcotest.(check bool) "memo returns the same measures" true (a = b);
  let s1 = Cache.stats c1 in
  Alcotest.(check int) "memo hit counted" 1 s1.Cache.memo_hits;
  Alcotest.(check int) "store counted" 1 s1.Cache.stores;
  (* A fresh cache over the same directory must serve the entry from disk
     with bit-identical measures and no new solve. *)
  let c2 = Cache.create ~dir () in
  let c = Cache.find_or_compute c2 ~key compute in
  Alcotest.(check int) "warm run solves nothing" 1 !solves;
  Alcotest.(check bool) "disk roundtrip is bit-exact" true (a = c);
  let s2 = Cache.stats c2 in
  Alcotest.(check int) "disk hit counted" 1 s2.Cache.disk_hits;
  Alcotest.(check int) "no miss" 0 s2.Cache.misses

let test_cache_corrupt_entry_recomputes () =
  let dir = tmp_dir "lattol_cache" in
  let p = Params.default in
  let key = Cache.key ~solver_id:(solver_id p) p in
  let c1 = Cache.create ~dir () in
  let a = Cache.find_or_compute c1 ~key (fun () -> Mms.solve p) in
  (* Truncate the stored entry; the next run must fall back to solving. *)
  let rec find_file d =
    let entries = Sys.readdir d in
    let sub = ref None in
    Array.iter
      (fun e ->
        let path = Filename.concat d e in
        if Sys.is_directory path then sub := Some (find_file path)
        else sub := Some path)
      entries;
    Option.get !sub
  in
  let path = find_file dir in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "garbage");
  let c2 = Cache.create ~dir () in
  let solves = ref 0 in
  let b =
    Cache.find_or_compute c2 ~key (fun () ->
        incr solves;
        Mms.solve p)
  in
  Alcotest.(check int) "recomputed" 1 !solves;
  Alcotest.(check bool) "same value" true (a = b)

let test_cache_concurrent_dedup () =
  (* Many workers asking for the same key must trigger exactly one
     compute; everyone else parks on the memo and wakes with the value. *)
  let c = Cache.create () in
  let p = Params.default in
  let key = Cache.key ~solver_id:(solver_id p) p in
  let solves = Atomic.make 0 in
  let results =
    Pool.map ~jobs:8 ~chunk:1
      (fun _ ->
        Cache.find_or_compute c ~key (fun () ->
            Atomic.incr solves;
            Mms.solve p))
      (Array.init 32 (fun i -> i))
  in
  Alcotest.(check int) "one solve" 1 (Atomic.get solves);
  Array.iter
    (fun m ->
      if m <> results.(0) then Alcotest.fail "requesters saw different values")
    results

let entry_path dir key =
  Filename.concat (Filename.concat dir (String.sub key 0 2)) key

let test_cache_scrub_quarantines_and_heals () =
  let dir = tmp_dir "lattol_scrub" in
  let p1 = Params.default in
  let p2 = { p1 with Params.p_remote = 0.25 } in
  let k1 = Cache.key ~solver_id:(solver_id p1) p1 in
  let k2 = Cache.key ~solver_id:(solver_id p2) p2 in
  let c1 = Cache.create ~dir () in
  let a = Cache.find_or_compute c1 ~key:k1 (fun () -> Mms.solve p1) in
  let _ = Cache.find_or_compute c1 ~key:k2 (fun () -> Mms.solve p2) in
  (* Bit rot in one entry: scrub must quarantine exactly that one. *)
  Chaos.flip_byte ~path:(entry_path dir k1) ~offset:40;
  let c2 = Cache.create ~dir () in
  let r = Cache.scrub c2 in
  Alcotest.(check int) "scanned" 2 r.Cache.scanned;
  Alcotest.(check int) "intact" 1 r.Cache.intact;
  Alcotest.(check int) "quarantined" 1 r.Cache.quarantined;
  Alcotest.(check int) "stale" 0 r.Cache.stale;
  Alcotest.(check int) "corrupt counter feeds /healthz" 1
    (Cache.stats c2).Cache.corrupt;
  Alcotest.(check bool) "parked under quarantine/" true
    (Sys.file_exists
       (Filename.concat (Filename.concat dir "quarantine") k1));
  (* The quarantined key transparently re-solves to the same value... *)
  let solves = ref 0 in
  let b =
    Cache.find_or_compute c2 ~key:k1 (fun () ->
        incr solves;
        Mms.solve p1)
  in
  Alcotest.(check int) "re-solved once" 1 !solves;
  Alcotest.(check bool) "healed value bit-identical" true (a = b);
  (* ...and the re-store heals the disk: a fresh scrub runs clean. *)
  let r2 = Cache.scrub (Cache.create ~dir ()) in
  Alcotest.(check int) "store healed" 2 r2.Cache.intact;
  Alcotest.(check int) "nothing left to quarantine" 0 r2.Cache.quarantined

let test_cache_scrub_drops_stale () =
  let dir = tmp_dir "lattol_scrub" in
  let p = Params.default in
  let key = Cache.key ~solver_id:(solver_id p) p in
  let c = Cache.create ~dir () in
  let _ = Cache.find_or_compute c ~key (fun () -> Mms.solve p) in
  (* An intact entry from an older format version: dropped silently (a
     plain miss), never quarantined and never counted corrupt. *)
  let old_key = "zz" ^ String.sub key 2 (String.length key - 2) in
  let old_path = entry_path dir old_key in
  Sys.mkdir (Filename.dirname old_path) 0o755;
  Out_channel.with_open_bin old_path (fun oc ->
      Out_channel.output_string oc "lattol-cache 1\nu_p 0x1p-1\n");
  let c2 = Cache.create ~dir () in
  let r = Cache.scrub c2 in
  Alcotest.(check int) "scanned" 2 r.Cache.scanned;
  Alcotest.(check int) "intact" 1 r.Cache.intact;
  Alcotest.(check int) "stale dropped" 1 r.Cache.stale;
  Alcotest.(check int) "not quarantined" 0 r.Cache.quarantined;
  Alcotest.(check int) "not corrupt" 0 (Cache.stats c2).Cache.corrupt;
  Alcotest.(check bool) "stale file removed" false (Sys.file_exists old_path)

let test_cache_reclaims_orphan_tmps () =
  let dir = tmp_dir "lattol_tmp" in
  let sub = Filename.concat dir "ab" in
  Sys.mkdir sub 0o755;
  let write p = Out_channel.with_open_bin p (fun oc ->
      Out_channel.output_string oc "junk") in
  (* An orphan from a writer that died long ago: reclaimed on open. *)
  let orphan = Filename.concat sub "lattol-dead.tmp" in
  write orphan;
  Unix.utimes orphan 1. 1.;
  (* A temp another live writer is mid-rename on: younger than the open,
     left alone.  (Future mtime stands in for "concurrent".) *)
  let live = Filename.concat sub "lattol-live.tmp" in
  write live;
  let future = Lattol_robust.Retry.now () +. 3600. in
  Unix.utimes live future future;
  (* A foreign temp file: not ours to delete, whatever its age. *)
  let foreign = Filename.concat sub "other.tmp" in
  write foreign;
  Unix.utimes foreign 1. 1.;
  let c = Cache.create ~dir () in
  Alcotest.(check int) "one orphan reclaimed" 1
    (Cache.stats c).Cache.tmp_reclaimed;
  Alcotest.(check bool) "orphan gone" false (Sys.file_exists orphan);
  Alcotest.(check bool) "live temp untouched" true (Sys.file_exists live);
  Alcotest.(check bool) "foreign temp untouched" true (Sys.file_exists foreign)

let test_measures_codec_roundtrip () =
  let m = Mms.solve Params.default in
  let line = Cache.encode_measures_line m in
  Alcotest.(check bool) "single line" false (String.contains line '\n');
  (match Cache.decode_measures_line line with
  | None -> Alcotest.fail "decode of a fresh encoding failed"
  | Some m' ->
    Alcotest.(check string) "round-trips bit-identically" line
      (Cache.encode_measures_line m'));
  Alcotest.(check bool) "garbage rejected" true
    (Cache.decode_measures_line "garbage" = None);
  Alcotest.(check bool) "empty rejected" true
    (Cache.decode_measures_line "" = None)

(* ------------------------------------------------------------------ *)
(* Sweep: shared solutions instead of redundant solves *)

let count_solves f =
  (* Every AMVA solve announces itself with an iteration-1 sweep; counting
     those counts solver invocations without touching solver internals. *)
  let n = Atomic.make 0 in
  let on_sweep ~iteration ~residual:_ =
    if iteration = 1 then Atomic.incr n;
    Lattol_queueing.Amva.Continue
  in
  let r = f on_sweep in
  (r, Atomic.get n)

let test_sweep_no_redundant_solves () =
  let steps = 5 in
  let axes =
    [ { Sweep.param = Sweep.P_remote; values = Sweep.linspace ~lo:0.1 ~hi:0.9 ~steps } ]
  in
  let cache = Cache.create () in
  let rows, solves =
    count_solves (fun on_sweep ->
        Sweep.run ~cache ~on_sweep ~base:Params.default axes)
  in
  Alcotest.(check int) "rows" steps (List.length rows);
  (* One real solve per point, one zero-delay memory ideal per point, and a
     single zero-remote network ideal shared by the whole sweep (which
     converges before its first progress callback, so the observer sees
     one fewer than the cache).  The pre-engine CLI performed 5 solves per
     point (real, then real+ideal for each of the two tolerance indices):
     25 here. *)
  Alcotest.(check int) "solver invocations" (2 * steps) solves;
  let s = Cache.stats cache in
  Alcotest.(check int) "cache agrees" ((2 * steps) + 1) s.Cache.solves;
  Alcotest.(check int) "shared ideal hits" (steps - 1) s.Cache.memo_hits

let test_sweep_counts_observer_once_per_iteration () =
  (* The user hook must see every iteration of the solves that do run, and
     none from cache hits: a second identical run reports zero. *)
  let axes =
    [ { Sweep.param = Sweep.N_t; values = [ 2.; 4. ] } ]
  in
  let cache = Cache.create () in
  let _, first =
    count_solves (fun on_sweep ->
        Sweep.run ~cache ~on_sweep ~base:Params.default axes)
  in
  Alcotest.(check bool) "first run solves" true (first > 0);
  let _, second =
    count_solves (fun on_sweep ->
        Sweep.run ~cache ~on_sweep ~base:Params.default axes)
  in
  Alcotest.(check int) "warm run never invokes the solver" 0 second

(* ------------------------------------------------------------------ *)
(* Byte-identity properties *)

(* Render rows exactly (%h keeps every bit), so string equality is
   result-bitwise equality and NaNs compare equal. *)
let render rows =
  let b = Buffer.create 1024 in
  List.iter
    (fun row ->
      Printf.bprintf b "%s -> " (Sweep.label row.Sweep.assigns);
      (match row.Sweep.result with
      | Error msg -> Printf.bprintf b "skipped: %s" msg
      | Ok s ->
        let m = s.Sweep.measures in
        Printf.bprintf b "%h %h %h %h %h %h %h" m.Measures.u_p
          m.Measures.lambda m.Measures.lambda_net m.Measures.s_obs
          m.Measures.l_obs s.Sweep.tol_network.Tolerance.tol
          s.Sweep.tol_memory.Tolerance.tol);
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

let test_sweep_resume_equivalence () =
  (* Full run journaled, then the journal cut back to its first two
     records (what a crash after the second fsync leaves).  The resumed
     run must replay those two, re-solve only the other three, and emit
     byte-identical rows — at a different parallelism for good measure. *)
  let dir = tmp_dir "lattol_resume" in
  let path = Filename.concat dir "sweep.ltj" in
  let steps = 5 in
  let axes =
    [ { Sweep.param = Sweep.P_remote;
        values = Sweep.linspace ~lo:0.1 ~hi:0.9 ~steps } ]
  in
  let meta = Sweep.journal_meta ~base:Params.default axes in
  let j = Journal.create ~path ~meta () in
  let full = Sweep.run ~journal:j ~base:Params.default axes in
  Journal.close j;
  let lines =
    In_channel.with_open_bin path In_channel.input_all
    |> String.split_on_char '\n'
  in
  Alcotest.(check int) "header + one record per point" (steps + 1)
    (List.length (List.filter (fun l -> l <> "") lines));
  let keep = List.filteri (fun i _ -> i < 3) lines in
  Out_channel.with_open_bin path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) keep);
  match Journal.resume ~path ~meta () with
  | Error e -> Alcotest.failf "resume failed: %s" e
  | Ok j2 ->
    Alcotest.(check int) "two checkpoints replayed" 2 (Journal.replayed j2);
    let resumed, solves =
      count_solves (fun on_sweep ->
          Sweep.run ~journal:j2 ~jobs:2 ~on_sweep ~base:Params.default axes)
    in
    Alcotest.(check int) "only the missing points re-solved"
      (2 * (steps - 2)) solves;
    Alcotest.(check int) "missing points re-journaled" (steps - 2)
      (Journal.appended j2);
    Journal.close j2;
    Alcotest.(check string) "rows byte-identical to the uninterrupted run"
      (render full) (render resumed)

let test_sweep_trace_parallel_identical () =
  (* The lifted jobs=1 restriction: each point records into a private
     buffer, absorbed in point order after the pool joins, so the merged
     trace is a pure function of the grid — byte-identical at any jobs,
     chunking or oversubscription. *)
  let axes =
    [
      {
        Sweep.param = Sweep.P_remote;
        values = Sweep.linspace ~lo:0.1 ~hi:0.7 ~steps:4;
      };
    ]
  in
  let record ?chunk ?oversubscribe jobs =
    let tel = Lattol_obs.Solver_trace.create () in
    ignore
      (Sweep.run ?chunk ?oversubscribe ~jobs ~trace:tel ~base:Params.default
         axes);
    let file = Filename.temp_file "lattol_trace" ".csv" in
    Out_channel.with_open_bin file (fun oc ->
        Lattol_obs.Solver_trace.write_csv tel oc);
    let text = In_channel.with_open_bin file In_channel.input_all in
    Sys.remove file;
    text
  in
  let sequential = record 1 in
  Alcotest.(check bool) "trace has one attempt per point" true
    (List.length (String.split_on_char '\n' sequential) > 4);
  List.iter
    (fun (jobs, chunk) ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d trace byte-identical" jobs)
        sequential
        (record ?chunk ~oversubscribe:true jobs))
    [ (2, None); (4, Some 1); (8, Some 3) ]

let axes_gen =
  let open QCheck.Gen in
  let axis =
    oneof
      [
        map
          (fun (lo, hi) ->
            {
              Sweep.param = Sweep.P_remote;
              values = Sweep.linspace ~lo ~hi ~steps:3;
            })
          (pair (float_range 0.05 0.5) (float_range 0.5 0.95));
        map
          (fun ns ->
            { Sweep.param = Sweep.N_t; values = List.map float_of_int ns })
          (list_size (int_range 1 3) (int_range 1 6));
        map
          (fun rs -> { Sweep.param = Sweep.Runlength; values = rs })
          (list_size (int_range 1 3) (float_range 0.5 4.));
      ]
  in
  list_size (int_range 1 2) axis

let axes_print axes =
  String.concat "; "
    (List.map
       (fun a ->
         Printf.sprintf "%s=[%s]" (Sweep.param_name a.Sweep.param)
           (String.concat "," (List.map (Printf.sprintf "%h") a.Sweep.values)))
       axes)

let prop_parallel_equals_sequential =
  QCheck.Test.make ~name:"parallel sweep output is byte-identical" ~count:15
    (QCheck.make ~print:axes_print axes_gen)
    (fun axes ->
      let run jobs = render (Sweep.run ~jobs ~base:Params.default axes) in
      let sequential = run 1 in
      List.for_all (fun jobs -> run jobs = sequential) [ 2; 4; 8 ])

let prop_warm_cache_equals_cold =
  QCheck.Test.make ~name:"warm cache re-run is byte-identical" ~count:10
    (QCheck.make ~print:axes_print axes_gen)
    (fun axes ->
      let dir = tmp_dir "lattol_qc" in
      let cold =
        render
          (Sweep.run ~cache:(Cache.create ~dir ()) ~jobs:2
             ~base:Params.default axes)
      in
      let warm_cache = Cache.create ~dir () in
      let warm =
        render (Sweep.run ~cache:warm_cache ~jobs:4 ~base:Params.default axes)
      in
      warm = cold && (Cache.stats warm_cache).Cache.solves = 0)

(* A pre-solved measure lets the stress property hammer the cache without
   paying for a solver run per qcheck iteration: the point under test is
   the memo protocol, not the solver. *)
let stress_measures = Mms.solve Params.default

let prop_cache_stress_single_key =
  QCheck.Test.make
    ~name:"many domains hammering one key: one solve, consistent counters"
    ~count:25
    QCheck.(pair (int_range 2 8) (int_range 1 32))
    (fun (jobs, requests) ->
      let c = Cache.create () in
      let p = Params.default in
      let key = Cache.key ~solver_id:(solver_id p) p in
      let solves = Atomic.make 0 in
      let total = jobs * requests in
      let results =
        Pool.map ~jobs ~chunk:1
          (fun _ ->
            Cache.find_or_compute c ~key (fun () ->
                Atomic.incr solves;
                (* Widen the claim window so later requesters really park
                   on the condition variable instead of racing past it. *)
                let acc = ref 0. in
                for i = 1 to 50_000 do
                  acc := !acc +. (1. /. float_of_int i)
                done;
                ignore !acc;
                stress_measures))
          (Array.init total (fun i -> i))
      in
      let s = Cache.stats c in
      Atomic.get solves = 1
      && s.Cache.solves = 1
      && s.Cache.misses = 1
      && s.Cache.disk_hits = 0
      && s.Cache.stores = 0
      && s.Cache.memo_hits = total - 1
      && Array.for_all (fun m -> m = results.(0)) results)

(* Randomized scheduling shape — the batched-submission axes: worker
   count, claim granularity (0 stands for guided chunking) and
   oversubscription.  Every byte-identity property below quantifies over
   these alongside its own input space. *)
let sched_gen =
  QCheck.Gen.(triple (int_range 2 8) (oneofl [ 0; 1; 2; 3; 7; 64 ]) bool)

let sched_print (jobs, chunk, over) =
  Printf.sprintf "jobs=%d chunk=%s oversubscribe=%b" jobs
    (if chunk = 0 then "guided" else string_of_int chunk)
    over

let chunk_opt c = if c = 0 then None else Some c

let prop_batched_sweep_identical =
  QCheck.Test.make
    ~name:"sweep byte-identical under randomized batching" ~count:12
    (QCheck.make
       ~print:(fun (axes, sched) -> axes_print axes ^ " / " ^ sched_print sched)
       QCheck.Gen.(pair axes_gen sched_gen))
    (fun (axes, (jobs, chunk, over)) ->
      let sequential = render (Sweep.run ~jobs:1 ~base:Params.default axes) in
      render
        (Sweep.run ?chunk:(chunk_opt chunk) ~oversubscribe:over ~jobs
           ~base:Params.default axes)
      = sequential)

let prop_batched_replicate_identical =
  QCheck.Test.make
    ~name:"replication fan-out byte-identical under randomized batching"
    ~count:8
    (QCheck.make ~print:sched_print sched_gen)
    (fun (jobs, chunk, over) ->
      let p = { Params.default with Params.k = 2; n_t = 2 } in
      let config =
        {
          Lattol_sim.Mms_des.default_config with
          Lattol_sim.Mms_des.horizon = 300.;
        }
      in
      let run ?chunk ?oversubscribe jobs =
        List.map
          (fun r -> r.Lattol_sim.Mms_des.measures)
          (Replicate.des ?chunk ?oversubscribe ~jobs ~config ~replications:5 p)
            .Replicate.results
      in
      run ?chunk:(chunk_opt chunk) ~oversubscribe:over jobs = run 1)

let prop_batched_figures_identical =
  QCheck.Test.make
    ~name:"figures CSV byte-identical under randomized batching" ~count:6
    (QCheck.make
       ~print:(fun (axes, sched) -> axes_print axes ^ " / " ^ sched_print sched)
       QCheck.Gen.(pair axes_gen sched_gen))
    (fun (axes, (jobs, chunk, over)) ->
      let figure =
        {
          Figures.name = "qc";
          title = "qc";
          base = Params.default;
          axes;
        }
      in
      let write ?chunk ?oversubscribe jobs =
        let dir = tmp_dir "lattol_qcfig" in
        let w = Figures.write ?chunk ?oversubscribe ~jobs ~dir [ figure ] in
        In_channel.with_open_bin (List.hd w).Figures.path In_channel.input_all
      in
      write ?chunk:(chunk_opt chunk) ~oversubscribe:over jobs = write 1)

(* Causal traces stay well-formed under any scheduling shape: every
   span's parent was recorded, children nest inside their parent's
   interval, and the per-point trees are disjoint (a span's parent never
   belongs to a different point). *)
let prop_trace_trees_wellformed =
  let module Tc = Lattol_obs.Trace_ctx in
  QCheck.Test.make
    ~name:"causal span trees well-formed under randomized batching" ~count:8
    (QCheck.make
       ~print:(fun (axes, sched) -> axes_print axes ^ " / " ^ sched_print sched)
       QCheck.Gen.(pair axes_gen sched_gen))
    (fun (axes, (jobs, chunk, over)) ->
      let r = Tc.create ~root:"qc" () in
      ignore
        (Sweep.run ?chunk:(chunk_opt chunk) ~oversubscribe:over ~jobs
           ~causal:(Tc.root_ctx r) ~base:Params.default axes);
      Tc.seal r;
      let spans = Tc.spans r in
      let tbl = Hashtbl.create 128 in
      List.iter (fun (s : Tc.span) -> Hashtbl.replace tbl s.id s) spans;
      let ok (s : Tc.span) =
        if s.id = 1 then s.parent = 0
        else
          match Hashtbl.find_opt tbl s.parent with
          | None -> false (* orphan: parent never recorded *)
          | Some p ->
            (* nesting within the parent's interval *)
            Int64.compare s.t0_ns p.t0_ns >= 0
            && Int64.compare
                 (Int64.add s.t0_ns s.dur_ns)
                 (Int64.add p.t0_ns p.dur_ns)
               <= 0
            (* point trees disjoint: a child never crosses into another
               point's subtree *)
            && (p.point = "" || String.equal p.point s.point)
      in
      Tc.dropped r = 0
      && List.length spans = Tc.count r
      && List.for_all ok spans)

(* ------------------------------------------------------------------ *)
(* Figures and replication fan-out *)

let test_figures_deterministic_and_cached () =
  let base = { Params.default with Params.k = 2 } in
  let figure =
    match Figures.find ~base "saturation" with
    | Some f -> f
    | None -> Alcotest.fail "saturation figure missing"
  in
  let out1 = tmp_dir "lattol_figs" and out2 = tmp_dir "lattol_figs" in
  let read (w : Figures.written) =
    In_channel.with_open_bin w.Figures.path In_channel.input_all
  in
  let cache_dir = Filename.concat out1 "cache" in
  let w1 =
    Figures.write ~cache:(Cache.create ~dir:cache_dir ()) ~jobs:1 ~dir:out1
      [ figure ]
  in
  let warm = Cache.create ~dir:cache_dir () in
  let w2 = Figures.write ~cache:warm ~jobs:4 ~dir:out2 [ figure ] in
  Alcotest.(check string)
    "warm parallel run writes identical CSV"
    (read (List.hd w1))
    (read (List.hd w2));
  Alcotest.(check int) "warm run solves nothing" 0
    (Cache.stats warm).Cache.solves;
  Alcotest.(check int) "row count" 21 (List.hd w1).Figures.rows

let test_replicate_des_deterministic () =
  let p = { Params.default with Params.k = 2; n_t = 2 } in
  let config =
    { Lattol_sim.Mms_des.default_config with Lattol_sim.Mms_des.horizon = 500. }
  in
  let run jobs =
    let s = Replicate.des ~jobs ~config ~replications:4 p in
    List.map
      (fun r -> r.Lattol_sim.Mms_des.measures.Measures.u_p)
      s.Replicate.results
  in
  let sequential = run 1 in
  Alcotest.(check int) "four results" 4 (List.length sequential);
  List.iter
    (fun jobs ->
      Alcotest.(check (list (float 0.))) "independent of jobs" sequential
        (run jobs))
    [ 2; 8 ];
  (* Distinct streams: replications must not clone each other. *)
  let distinct = List.sort_uniq compare sequential in
  Alcotest.(check int) "streams differ" 4 (List.length distinct)

let test_replicate_des_ci () =
  let p = { Params.default with Params.k = 2; n_t = 2 } in
  let config =
    { Lattol_sim.Mms_des.default_config with Lattol_sim.Mms_des.horizon = 500. }
  in
  let s = Replicate.des ~jobs:2 ~config ~replications:5 p in
  match s.Replicate.u_p_ci with
  | None -> Alcotest.fail "no CI with 5 replications"
  | Some (mean, half) ->
    Alcotest.(check bool) "mean in (0,1]" true (mean > 0. && mean <= 1.);
    Alcotest.(check bool) "half-width positive" true (half > 0.)

let test_replicate_rejects_sinks () =
  let p = { Params.default with Params.k = 2; n_t = 2 } in
  let config =
    {
      Lattol_sim.Mms_des.default_config with
      Lattol_sim.Mms_des.metrics = Some (Lattol_obs.Metrics.create ());
    }
  in
  Alcotest.check_raises "metrics sink rejected"
    (Invalid_argument
       "Replicate.des: trace/metrics sinks require replications = 1")
    (fun () -> ignore (Replicate.des ~config ~replications:2 p))

let test_replicate_journal_batched () =
  (* Batched checkpointing (one fsync per pool chunk) must change neither
     the results nor the journal's contents: one record per replication,
     whatever the chunking, and a resumed run replays instead of
     re-simulating. *)
  let p = { Params.default with Params.k = 2; n_t = 2 } in
  let config =
    { Lattol_sim.Mms_des.default_config with Lattol_sim.Mms_des.horizon = 400. }
  in
  let reps = 6 in
  let run ?journal ?chunk ?oversubscribe jobs =
    (Replicate.des_measures ?journal ?chunk ?oversubscribe ~jobs ~config
       ~replications:reps p)
      .Replicate.results
  in
  let baseline = run 1 in
  let dir = tmp_dir "lattol_repjournal" in
  let path = Filename.concat dir "rep.ltj" in
  let j = Journal.create ~path ~meta:"reps" () in
  let batched = run ~journal:j ~chunk:2 ~oversubscribe:true 4 in
  Alcotest.(check int) "one append per replication" reps (Journal.appended j);
  Journal.close j;
  Alcotest.(check bool) "results identical under batched checkpointing" true
    (batched = baseline);
  match Journal.resume ~path ~meta:"reps" () with
  | Error e -> Alcotest.failf "resume failed: %s" e
  | Ok j2 ->
    Alcotest.(check int) "one record per replication" reps
      (Journal.replayed j2);
    Alcotest.(check (list string))
      "every replication checkpointed"
      (List.sort compare (List.init reps (Printf.sprintf "rep%d")))
      (List.sort compare (List.map fst (Journal.entries j2)));
    let replayed = run ~journal:j2 ~chunk:3 2 in
    Alcotest.(check int) "resumed run re-simulates nothing" 0
      (Journal.appended j2);
    Journal.close j2;
    Alcotest.(check bool) "replayed results bit-identical" true
      (replayed = baseline)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "lattol_exec"
    [
      ( "pool",
        [
          Alcotest.test_case "deterministic ordering" `Quick test_pool_ordering;
          Alcotest.test_case "exception propagates" `Quick test_pool_exception;
          Alcotest.test_case "rejects jobs < 1" `Quick test_pool_rejects_bad_jobs;
          Alcotest.test_case "edge sizes" `Quick test_pool_empty_and_excess_jobs;
          Alcotest.test_case "task edges via monitor" `Quick
            test_pool_task_edges;
          Alcotest.test_case "retry recovers transient faults" `Quick
            test_pool_retry_recovers;
          Alcotest.test_case "fatal failures never retried" `Quick
            test_pool_fatal_not_retried;
          Alcotest.test_case "poison substitutes a result" `Quick
            test_pool_poison_substitutes;
          Alcotest.test_case "deadline cancels cooperatively" `Quick
            test_pool_deadline_cancels;
          Alcotest.test_case "effective pool size" `Quick
            test_pool_effective_jobs;
          Alcotest.test_case "monitor sees the clamped pool" `Quick
            test_pool_reports_effective_size;
          Alcotest.test_case "per-worker locals merge in worker order" `Quick
            test_pool_map_local_per_worker_state;
          Alcotest.test_case "flush batches per claimed chunk" `Quick
            test_pool_flush_batches;
          Alcotest.test_case "flush failure propagates" `Quick
            test_pool_flush_failure_propagates;
          Alcotest.test_case "dispatch speedup floor (parked tasks)" `Quick
            test_pool_dispatch_scaling_floor;
          Alcotest.test_case "CPU speedup floor (2+ cores)" `Quick
            test_pool_cpu_scaling_floor;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail truncated" `Quick
            test_journal_torn_tail_truncated;
          Alcotest.test_case "meta mismatch refused" `Quick
            test_journal_meta_mismatch;
          Alcotest.test_case "duplicate id: last wins" `Quick
            test_journal_duplicate_id_last_wins;
          Alcotest.test_case "append_batch: one barrier, per-record replay"
            `Quick test_journal_append_batch;
          Alcotest.test_case "append_batch validates before writing" `Quick
            test_journal_append_batch_validates_first;
        ] );
      ( "cache",
        [
          Alcotest.test_case "key discriminates" `Quick
            test_cache_key_discriminates;
          Alcotest.test_case "key canonicalizes -0.0 and nan" `Quick
            test_cache_key_canonicalizes_floats;
          Alcotest.test_case "memo and disk" `Quick test_cache_memo_and_disk;
          Alcotest.test_case "corrupt entry recomputes" `Quick
            test_cache_corrupt_entry_recomputes;
          Alcotest.test_case "concurrent dedup" `Quick
            test_cache_concurrent_dedup;
          Alcotest.test_case "scrub quarantines and heals" `Quick
            test_cache_scrub_quarantines_and_heals;
          Alcotest.test_case "scrub drops stale formats" `Quick
            test_cache_scrub_drops_stale;
          Alcotest.test_case "orphan temps reclaimed on open" `Quick
            test_cache_reclaims_orphan_tmps;
          Alcotest.test_case "measures line codec" `Quick
            test_measures_codec_roundtrip;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "no redundant solves" `Quick
            test_sweep_no_redundant_solves;
          Alcotest.test_case "warm run solver-silent" `Quick
            test_sweep_counts_observer_once_per_iteration;
          Alcotest.test_case "resume is byte-identical" `Quick
            test_sweep_resume_equivalence;
          Alcotest.test_case "parallel trace is byte-identical" `Quick
            test_sweep_trace_parallel_identical;
        ] );
      ( "figures",
        [
          Alcotest.test_case "deterministic and cached" `Quick
            test_figures_deterministic_and_cached;
        ] );
      ( "replicate",
        [
          Alcotest.test_case "deterministic fan-out" `Quick
            test_replicate_des_deterministic;
          Alcotest.test_case "confidence interval" `Quick test_replicate_des_ci;
          Alcotest.test_case "rejects sinks" `Quick test_replicate_rejects_sinks;
          Alcotest.test_case "journal batches per chunk" `Quick
            test_replicate_journal_batched;
        ] );
      ( "properties",
        qcheck
          [
            prop_parallel_equals_sequential;
            prop_warm_cache_equals_cold;
            prop_cache_stress_single_key;
            prop_batched_sweep_identical;
            prop_batched_replicate_identical;
            prop_batched_figures_identical;
            prop_trace_trees_wellformed;
          ] );
    ]
