Golden-figure regression: the paper's figure sweeps must keep producing
the recorded numbers.  The comparison is numeric (rtol 1e-4, atol 1e-6),
not textual, so benign float-formatting drift does not fail the suite —
a real change in solver behavior does.

  $ ../bin/mms_cli.exe figures --out out --only fig06_tolerance --only saturation --no-cache
  wrote out/fig06_tolerance.csv (72 rows)
  wrote out/saturation.csv (21 rows)
  cache: 61 hits (0 disk, 61 shared), 218 misses, 218 solves

The tolerance-index figure (tolerance vs n_t across p_remote and
runlength, paper Fig. 6):

  $ ./numdiff.exe --rtol 1e-4 --atol 1e-6 golden/fig06_tolerance.csv out/fig06_tolerance.csv

The network-saturation figure (lambda_net vs p_remote at n_t = 10; the
offered load is capped by the switch ceiling, so lambda_net levels off
near 0.26 flits/cycle for p_sw = 0.5 while U_p keeps falling):

  $ ./numdiff.exe --rtol 1e-4 --atol 1e-6 golden/saturation.csv out/saturation.csv

A deliberately perturbed copy must fail the comparison:

  $ sed 's/^0.2,0.5,1,0.168736/0.2,0.5,1,0.169736/' golden/fig06_tolerance.csv > perturbed.csv
  $ ./numdiff.exe --rtol 1e-4 --atol 1e-6 perturbed.csv out/fig06_tolerance.csv 2>&1
  line 3 field 4: 0.169736 vs 0.168736
  [1]

And the grid mode is byte-identical under parallelism, warm or cold:

  $ ../bin/mms_cli.exe figures --out out2 --jobs 4 --cache cachedir --only fig06_tolerance --only saturation > /dev/null
  $ cmp out/fig06_tolerance.csv out2/fig06_tolerance.csv
  $ cmp out/saturation.csv out2/saturation.csv
  $ ../bin/mms_cli.exe figures --out out3 --jobs 2 --cache cachedir --only fig06_tolerance --only saturation
  wrote out3/fig06_tolerance.csv (72 rows)
  wrote out3/saturation.csv (21 rows)
  cache: 279 hits (218 disk, 61 shared), 0 misses, 0 solves
  $ cmp out/fig06_tolerance.csv out3/fig06_tolerance.csv
