(* Every worker advances the same toplevel stream: the draw order, and
   with it the whole experiment, now depends on domain scheduling. *)

let sample xs =
  Pool.map ~jobs:4 (fun _ -> Prng.float Tally.stream) xs
