(* Deterministic parallel draws: each task owns a stream split off the
   master before any drawing happens, so no shared stream is advanced
   inside the region. *)

let sample xs =
  Pool.map ~jobs:4
    (fun i ->
      let local = Prng.split Tally.stream ~index:i in
      Prng.float local)
    xs
