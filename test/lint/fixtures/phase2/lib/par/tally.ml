(* Module-level state inventory for the phase-2 corpus: the unprotected
   bindings are the hazards the dom-* rules must spot when reached from
   a parallel region; the Atomic/Mutex/DLS ones must stay silent. *)

let total = ref 0

let cache : (int, int) Hashtbl.t = Hashtbl.create 16

let stream = Prng.create 42

let hits = Atomic.make 0

let lock = Mutex.create ()

let scratch = Domain.DLS.new_key (fun () -> Buffer.create 64)
