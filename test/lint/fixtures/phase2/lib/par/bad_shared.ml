(* Mutating and reading unprotected module-level state from a parallel
   region — directly in the task closure and transitively through the
   call graph. *)

let bump x = Tally.total := !Tally.total + x

let work xs =
  Pool.map ~jobs:4
    (fun x ->
      bump x;
      Hashtbl.replace Tally.cache x x;
      x)
    xs
