(* The same shapes, protected: Atomic state, mutation under
   Mutex.protect, and per-domain scratch through Domain.DLS. *)

let work xs =
  Pool.map ~jobs:4
    (fun x ->
      Atomic.incr Tally.hits;
      Mutex.protect Tally.lock (fun () -> Tally.total := !Tally.total + x);
      Buffer.add_char (Domain.DLS.get Tally.scratch) 'x';
      x)
    xs
