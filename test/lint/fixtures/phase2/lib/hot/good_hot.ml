(* The allocation-flat version: scratch hoisted ahead of the loop (a
   root's own out-of-loop allocations are amortized set-up, not
   per-iteration cost) and every call fully applied. *)

let scale k x = k *. x

let[@lattol.hot] solve n =
  let acc = ref 0. in
  for i = 1 to n do
    acc := !acc +. scale 2. (float_of_int i)
  done;
  !acc
