(* Per-iteration boxing in a [@lattol.hot] region: allocation in the
   annotated loop itself, allocation in a transitive callee, and a
   partial application that closes over its first argument each pass. *)

let scale k x = k *. x

let weight w x = (w, x)

let[@lattol.hot] solve n =
  let acc = ref 0. in
  for i = 1 to n do
    let boxed = ref (float_of_int i) in
    let f = scale 2. in
    acc := !acc +. f !boxed +. snd (weight 1. 0.)
  done;
  !acc
