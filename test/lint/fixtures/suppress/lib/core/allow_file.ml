(* Fixture: a floating [@@@lattol.allow] suppresses the named rule for
   the whole file. *)
[@@@lattol.allow "det-stdout"]

let hello () = print_endline "hi"
