(* Fixture: an expression-level [@lattol.allow] suppresses exactly the
   named rule over exactly that expression. *)
let quiet f = (try f () with _ -> 0) [@lattol.allow "hyg-catchall"]
