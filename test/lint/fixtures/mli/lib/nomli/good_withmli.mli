val answer : int
