(* Fixture: hyg-mli-missing must fire on a library module with no
   interface file. *)
let answer = 42
