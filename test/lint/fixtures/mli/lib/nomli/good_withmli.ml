(* Fixture: hyg-mli-missing must NOT fire; the sibling .mli exists. *)
let answer = 42
