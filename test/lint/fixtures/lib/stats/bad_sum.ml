(* Fixture: float-sum-naive must fire on uncompensated float folds in
   lib/stats. *)
let total xs = Array.fold_left ( +. ) 0. xs
