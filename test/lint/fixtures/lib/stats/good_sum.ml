(* Fixture: float-sum-naive must NOT fire on integer folds. *)
let total xs = Array.fold_left ( + ) 0 xs
