(* Fixture: det-random must NOT fire here; lib/stats/prng.ml is the one
   sanctioned home of the underlying generator. *)
let float_pos st = 1.0 -. Random.State.float st 1.0
