(* Fixture: float-div-unguarded must NOT fire when an enclosing branch
   dominates the divisor. *)
let waiting w0 rho = if rho < 1. then w0 /. (1. -. rho) else infinity
