(* Fixture: float-div-unguarded must fire on the classic 1-rho blowup. *)
let waiting w0 rho = w0 /. (1. -. rho)
