(* Fixture: neither det-wallclock nor det-stdout fires in lib/serve —
   the exporter layer reads real time for its heartbeat and reports
   operational state on process streams by design. *)
let heartbeat () = Unix.gettimeofday ()

let announce addr = print_endline ("serving metrics on " ^ addr)
