val heartbeat : unit -> float

val announce : string -> unit
