(* Fixture: dom-unsync-mutation must fire on a bare shared mutation
   inside a Domain.spawn closure. *)
let hits = ref 0

let tally () =
  let worker = Domain.spawn (fun () -> hits := !hits + 1) in
  Domain.join worker
