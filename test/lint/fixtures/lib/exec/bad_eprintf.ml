let warn msg = Printf.eprintf "warning: %s\n" msg

let note msg = prerr_endline ("note: " ^ msg)
