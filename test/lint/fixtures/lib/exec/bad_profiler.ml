(* Fixture: the same sampler pattern outside the scoped path must still
   fire — det-wallclock on the clock read and dom-unsync-mutation on the
   unprotected Hashtbl fold inside the sampler domain.  Profiling lives
   in lib/obs; a copy drifting into lib/exec loses both exemptions. *)
let pauses : (int, int) Hashtbl.t = Hashtbl.create 8

let sample () =
  let t0 = Unix.gettimeofday () in
  let sampler = Domain.spawn (fun () -> Hashtbl.replace pauses 0 1) in
  Domain.join sampler;
  t0
