(* Fixture: dom-unsync-mutation must NOT fire when the mutation runs
   under Mutex.protect. *)
let hits = ref 0

let lock = Mutex.create ()

let tally () =
  let worker =
    Domain.spawn (fun () -> Mutex.protect lock (fun () -> hits := !hits + 1))
  in
  Domain.join worker
