(* Fixture: det-random must fire on ambient Random use in library code. *)
let jitter () = Random.float 1.0
