(* lib/robust owns the execution engine's wall-clock machinery (retry
   backoff, deadlines, supervisor time budgets): det-wallclock must stay
   silent here.  This fixture pins that scoping — if the exemption list
   regresses, the clean run below starts failing. *)
let now () = Unix.gettimeofday ()

let deadline_expired ~started ~timeout = Unix.time () -. started > timeout
