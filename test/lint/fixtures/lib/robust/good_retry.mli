val now : unit -> float

val deadline_expired : started:float -> timeout:float -> bool
