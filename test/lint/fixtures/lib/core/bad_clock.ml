(* Fixture: det-wallclock must fire on a clock read in solver scope. *)
let now () = Unix.gettimeofday ()
