(* Fixture: det-stdout must fire on direct stdout writes in library code. *)
let report n = Printf.printf "n=%d\n" n
