(* Fixture: hyg-obj-magic must fire wherever Obj.magic appears. *)
let coerce x = Obj.magic x
