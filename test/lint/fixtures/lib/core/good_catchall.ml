(* Fixture: hyg-catchall must NOT fire on handlers that name the
   exceptions they absorb (or on plain wildcard match cases). *)
let quiet f = try f () with Not_found -> 0

let classify n = match n with 0 -> `Zero | _ -> `Other
