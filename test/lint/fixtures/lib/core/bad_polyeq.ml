(* Fixture: float-polycompare must fire on polymorphic comparison of
   float-bearing expressions. *)
let is_zero u = u = 0.

type row = { u_p : float }

let rank a b = compare a.u_p b.u_p
