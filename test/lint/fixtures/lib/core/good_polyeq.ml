(* Fixture: float-polycompare must NOT fire on Float.equal/Float.compare
   or on integer comparisons. *)
let is_zero u = Float.equal u 0.

let rank a b = Float.compare a b

let same_count a b = a = b + 0
