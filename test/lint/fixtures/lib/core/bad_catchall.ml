(* Fixture: hyg-catchall must fire on catch-all handlers in both the
   try and the match-exception forms. *)
let quiet f = try f () with _ -> 0

let first f = match f () with x :: _ -> Some x | [] -> None | exception _ -> None
