(* Fixture: det-wallclock must NOT fire; telemetry sinks may read clocks. *)
let stamp () = Unix.gettimeofday ()
