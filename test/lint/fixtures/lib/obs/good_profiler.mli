val sample : unit -> float
