val emit : string -> unit
