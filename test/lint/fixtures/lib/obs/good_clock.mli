val stamp : unit -> float
