(* The structured logger itself: the one lib/ module allowed to write
   stderr directly (everything else routes through it). *)
let emit line =
  output_string stderr line;
  output_char stderr '\n';
  flush stderr
