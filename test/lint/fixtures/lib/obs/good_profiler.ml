(* Fixture: the runtime-profiler sampler pattern must be admitted in
   lib/obs — a clock read (det-wallclock scope exemption) and a sampler
   domain folding events into shared state under Mutex.protect
   (dom-unsync-mutation exemption). *)
let pauses : (int, int) Hashtbl.t = Hashtbl.create 8

let mu = Mutex.create ()

let sample () =
  let t0 = Unix.gettimeofday () in
  let sampler =
    Domain.spawn (fun () ->
        Mutex.protect mu (fun () -> Hashtbl.replace pauses 0 1))
  in
  Domain.join sampler;
  t0
