(* Fixture: det-wallclock must fire anywhere in lib/ outside the
   telemetry layers — simulators run on virtual time. *)
let stamp () = Unix.time ()
