(* Fixture: det-stdout must NOT fire; executables own their stdout. *)
let main () = print_endline "hello"
