The lattol-lint rule pack, exercised over a fixture corpus: every rule
is driven in both the fire and the no-fire direction, with suppression
and both output formats on top.  Each run selects a single rule with
--rules so fixtures for other rules stay silent, and --no-config keeps
the repo's own .lattol-lint policy out of the sandbox.

The rule pack itself:

  $ ../../bin/lattol_lint.exe --list-rules
  det-random             determinism   ambient Random use outside lib/stats/prng.ml
  det-wallclock          determinism   wall-clock read in deterministic model/experiment code (lib/ outside the telemetry and supervision layers)
  det-stdout             determinism   direct stdout write in library code (lib/serve excepted)
  float-polycompare      float-safety  polymorphic =/<>/compare/Hashtbl.hash on a float-bearing value
  float-div-unguarded    float-safety  float division by a difference with no dominating nonzero guard
  float-sum-naive        float-safety  naive float accumulation via fold_left in lib/stats
  dom-unsync-mutation    domain-safety shared-state mutation inside a Domain.spawn closure without Mutex.protect/Atomic
  hyg-obj-magic          domain-safety Obj.magic defeats the type system
  hyg-catchall           domain-safety catch-all exception handler
  hyg-mli-missing        domain-safety library module without an interface file

det-random fires on ambient Random use, but not in lib/stats/prng.ml,
the sanctioned home of the generator:

  $ ../../bin/lattol_lint.exe --no-config --rules det-random fixtures/lib
  fixtures/lib/exec/bad_random.ml:2:16: [det-random] Random.float draws from the ambient global PRNG
      hint: draw from a Lattol_stats.Prng stream threaded from the experiment seed; the ambient Random is invisible to replay and to the solve cache
  [1]

det-wallclock fires on clock reads anywhere in lib/ outside the layers
scoped to read real time — the telemetry sinks (lib/obs, including the
runtime profiler's sampler), the live exporter and its progress
heartbeat (lib/serve), and the supervisor's wall-time budgets
(lib/robust).  bad_profiler.ml is the profiler's own sampler pattern
transplanted outside the scoped path — the exemption travels with the
directory, not with the code shape:

  $ ../../bin/lattol_lint.exe --no-config --rules det-wallclock fixtures/lib
  fixtures/lib/core/bad_clock.ml:2:13: [det-wallclock] Unix.gettimeofday reads the wall clock
      hint: solver results, cache keys and golden CSVs must not depend on time; read clocks only in the layers scoped for it (lib/obs, lib/serve, lib/robust) or in executables
  fixtures/lib/exec/bad_profiler.ml:8:11: [det-wallclock] Unix.gettimeofday reads the wall clock
      hint: solver results, cache keys and golden CSVs must not depend on time; read clocks only in the layers scoped for it (lib/obs, lib/serve, lib/robust) or in executables
  fixtures/lib/sim/bad_clock.ml:3:15: [det-wallclock] Unix.time reads the wall clock
      hint: solver results, cache keys and golden CSVs must not depend on time; read clocks only in the layers scoped for it (lib/obs, lib/serve, lib/robust) or in executables
  [1]

det-stdout fires on direct stdout writes in library code, but not in
executables and not in lib/serve (a serving layer reports operational
state on process streams by design):

  $ ../../bin/lattol_lint.exe --no-config --rules det-stdout fixtures/lib/core/bad_print.ml fixtures/lib/serve fixtures/bin
  fixtures/lib/core/bad_print.ml:2:15: [det-stdout] Printf.printf writes directly to stdout
      hint: emit through a Format.formatter or a Report/Metrics sink chosen by the caller; library stdout interleaves nondeterministically under --jobs
  [1]

float-polycompare fires on polymorphic =/compare over float-bearing
expressions, but not on Float.equal/Float.compare or integer compares:

  $ ../../bin/lattol_lint.exe --no-config --rules float-polycompare fixtures/lib/core/bad_polyeq.ml fixtures/lib/core/good_polyeq.ml
  fixtures/lib/core/bad_polyeq.ml:3:16: [float-polycompare] polymorphic = applied to a float-bearing expression
      hint: use Float.equal / Float.compare (or a keyed comparison): polymorphic compare diverges on nan and boxes every float, and Hashtbl.hash folds nan/-0. unpredictably into cache keys
  fixtures/lib/core/bad_polyeq.ml:7:15: [float-polycompare] polymorphic compare applied to a float-bearing expression
      hint: use Float.equal / Float.compare (or a keyed comparison): polymorphic compare diverges on nan and boxes every float, and Hashtbl.hash folds nan/-0. unpredictably into cache keys
  [1]

float-div-unguarded fires on division by an unguarded difference, but
not when an enclosing branch dominates the divisor:

  $ ../../bin/lattol_lint.exe --no-config --rules float-div-unguarded fixtures/lib/queueing
  fixtures/lib/queueing/bad_div.ml:2:27: [float-div-unguarded] divisor is a float difference with no dominating guard
      hint: guard the branch so the divisor is provably nonzero, or annotate with [@lattol.allow "float-div-unguarded"] stating the invariant that keeps it away from zero
  [1]

float-sum-naive fires on uncompensated float folds in lib/stats, but
not on integer folds:

  $ ../../bin/lattol_lint.exe --no-config --rules float-sum-naive fixtures/lib/stats
  fixtures/lib/stats/bad_sum.ml:3:15: [float-sum-naive] fold_left accumulates floats without compensation
      hint: use Lattol_stats.Moments (Welford) or Kahan compensation for long sums; annotate when the operand count is small and bounded
  [1]

dom-unsync-mutation fires on bare shared mutation inside Domain.spawn,
but not under Mutex.protect — the out-of-scope profiler copy fires here
too, on its unprotected Hashtbl fold:

  $ ../../bin/lattol_lint.exe --no-config --rules dom-unsync-mutation fixtures/lib/exec
  fixtures/lib/exec/bad_profiler.ml:9:40: [dom-unsync-mutation] Hashtbl.replace mutates shared state inside a Domain.spawn closure
      hint: wrap the mutation in Mutex.protect, use Atomic, or annotate with [@lattol.allow "dom-unsync-mutation"] naming the lock that is held
  fixtures/lib/exec/bad_spawn.ml:6:39: [dom-unsync-mutation] := mutates shared state inside a Domain.spawn closure
      hint: wrap the mutation in Mutex.protect, use Atomic, or annotate with [@lattol.allow "dom-unsync-mutation"] naming the lock that is held
  [1]

hyg-obj-magic fires wherever Obj.magic appears:

  $ ../../bin/lattol_lint.exe --no-config --rules hyg-obj-magic fixtures/lib/core/bad_magic.ml
  fixtures/lib/core/bad_magic.ml:2:15: [hyg-obj-magic] Obj.magic is never domain- or type-safe
      hint: restructure with a GADT, a variant, or a first-class module
  [1]

hyg-catchall fires on both catch-all handler forms, but not on named
exceptions or plain wildcard match cases:

  $ ../../bin/lattol_lint.exe --no-config --rules hyg-catchall fixtures/lib/core/bad_catchall.ml fixtures/lib/core/good_catchall.ml
  fixtures/lib/core/bad_catchall.ml:3:28: [hyg-catchall] try ... with _ -> swallows every exception
      hint: match the specific exceptions: a catch-all absorbs the supervisor's escalation exceptions (and Stack_overflow) and turns faults into silent wrong answers
  fixtures/lib/core/bad_catchall.ml:5:72: [hyg-catchall] match ... with exception _ -> swallows every exception
      hint: match the specific exceptions: a catch-all absorbs the supervisor's escalation exceptions (and Stack_overflow) and turns faults into silent wrong answers
  [1]

hyg-mli-missing fires on a library module with no interface file, but
not when the sibling .mli exists:

  $ ../../bin/lattol_lint.exe --no-config --rules hyg-mli-missing fixtures/mli
  fixtures/mli/lib/nomli/bad_nomli.ml:1:0: [hyg-mli-missing] module has no interface file
      hint: add a sibling .mli so the module's contract is explicit
  [1]

An expression-level [@lattol.allow "rule"] suppresses exactly that
finding; --stats still accounts for it:

  $ ../../bin/lattol_lint.exe --no-config --rules hyg-catchall --stats fixtures/suppress/lib/core/allow_expr.ml
  files scanned: 1
  findings: 0 (suppressed: 1)

A floating [@@@lattol.allow "rule"] suppresses the rule file-wide:

  $ ../../bin/lattol_lint.exe --no-config --rules det-stdout --stats fixtures/suppress/lib/core/allow_file.ml
  files scanned: 1
  findings: 0 (suppressed: 1)

JSON output carries the same findings machine-readably:

  $ ../../bin/lattol_lint.exe --no-config --rules float-div-unguarded --format json fixtures/lib/queueing
  {"tool":"lattol-lint","format_version":1,"findings":[{"file":"fixtures/lib/queueing/bad_div.ml","line":2,"col":27,"rule":"float-div-unguarded","message":"divisor is a float difference with no dominating guard","hint":"guard the branch so the divisor is provably nonzero, or annotate with [@lattol.allow \"float-div-unguarded\"] stating the invariant that keeps it away from zero"}],"stats":{"files":2,"findings":1,"suppressed":0,"by_rule":{"float-div-unguarded":1}}}
  [1]

A clean subtree exits 0 with no output — fixtures/lib/robust is in the
list because clock reads there (retry backoff, deadlines) are exempt
from det-wallclock by scope, and fixtures/lib/obs because the runtime
profiler's sampler (good_profiler.ml: clock read + Mutex.protect'd fold
in a spawned domain) is admitted there; this run pins both exemptions:

  $ ../../bin/lattol_lint.exe --no-config fixtures/lib/obs fixtures/lib/serve fixtures/lib/robust fixtures/bin
