The lattol-lint rule pack, exercised over a fixture corpus: every rule
is driven in both the fire and the no-fire direction, with suppression
and both output formats on top.  Each run selects a single rule with
--rules so fixtures for other rules stay silent, and --no-config keeps
the repo's own .lattol-lint policy out of the sandbox.

The rule pack itself:

  $ ../../bin/lattol_lint.exe --list-rules
  det-random                 determinism   ambient Random use outside lib/stats/prng.ml
  det-wallclock              determinism   wall-clock read in deterministic model/experiment code (lib/ outside the telemetry and supervision layers)
  det-stdout                 determinism   direct stdout write in library code (lib/serve excepted)
  float-polycompare          float-safety  polymorphic =/<>/compare/Hashtbl.hash on a float-bearing value
  float-div-unguarded        float-safety  float division by a difference with no dominating nonzero guard
  float-sum-naive            float-safety  naive float accumulation via fold_left in lib/stats
  dom-unsync-mutation        domain-safety shared-state mutation inside a Domain.spawn closure without Mutex.protect/Atomic
  hyg-obj-magic              domain-safety Obj.magic defeats the type system
  hyg-catchall               domain-safety catch-all exception handler
  hyg-mli-missing            domain-safety library module without an interface file
  dom-shared-mutation        domain-safety module-level mutable state mutated from the parallel region (transitively from a Pool/Domain.spawn closure) without synchronization
  dom-unprotected-read-write domain-safety module-level mutable state read in the parallel region while also mutated elsewhere (torn-read race)
  det-prng-unsplit           determinism   shared toplevel Prng stream advanced from the parallel region
  hot-alloc                  hot-path      per-iteration heap allocation in a [@lattol.hot] region (closure/tuple/record/list/array or partial application)
  obs-bare-printf            observability bare stderr print in library code (lib/obs/log.ml excepted)

det-random fires on ambient Random use, but not in lib/stats/prng.ml,
the sanctioned home of the generator:

  $ ../../bin/lattol_lint.exe --no-config --rules det-random fixtures/lib
  fixtures/lib/exec/bad_random.ml:2:16: [det-random] Random.float draws from the ambient global PRNG
      hint: draw from a Lattol_stats.Prng stream threaded from the experiment seed; the ambient Random is invisible to replay and to the solve cache
  [1]

det-wallclock fires on clock reads anywhere in lib/ outside the layers
scoped to read real time — the telemetry sinks (lib/obs, including the
runtime profiler's sampler), the live exporter and its progress
heartbeat (lib/serve), and the supervisor's wall-time budgets
(lib/robust).  bad_profiler.ml is the profiler's own sampler pattern
transplanted outside the scoped path — the exemption travels with the
directory, not with the code shape:

  $ ../../bin/lattol_lint.exe --no-config --rules det-wallclock fixtures/lib
  fixtures/lib/core/bad_clock.ml:2:13: [det-wallclock] Unix.gettimeofday reads the wall clock
      hint: solver results, cache keys and golden CSVs must not depend on time; read clocks only in the layers scoped for it (lib/obs, lib/serve, lib/robust) or in executables
  fixtures/lib/exec/bad_profiler.ml:8:11: [det-wallclock] Unix.gettimeofday reads the wall clock
      hint: solver results, cache keys and golden CSVs must not depend on time; read clocks only in the layers scoped for it (lib/obs, lib/serve, lib/robust) or in executables
  fixtures/lib/sim/bad_clock.ml:3:15: [det-wallclock] Unix.time reads the wall clock
      hint: solver results, cache keys and golden CSVs must not depend on time; read clocks only in the layers scoped for it (lib/obs, lib/serve, lib/robust) or in executables
  [1]

det-stdout fires on direct stdout writes in library code, but not in
executables and not in lib/serve (a serving layer reports operational
state on process streams by design):

  $ ../../bin/lattol_lint.exe --no-config --rules det-stdout fixtures/lib/core/bad_print.ml fixtures/lib/serve fixtures/bin
  fixtures/lib/core/bad_print.ml:2:15: [det-stdout] Printf.printf writes directly to stdout
      hint: emit through a Format.formatter or a Report/Metrics sink chosen by the caller; library stdout interleaves nondeterministically under --jobs
  [1]

obs-bare-printf fires on bare stderr prints in library code, but not in
executables and not in lib/obs/log.ml, the structured logger everyone
else must route diagnostics through:

  $ ../../bin/lattol_lint.exe --no-config --rules obs-bare-printf fixtures/lib/exec/bad_eprintf.ml fixtures/lib/obs/log.ml fixtures/bin
  fixtures/lib/exec/bad_eprintf.ml:1:15: [obs-bare-printf] Printf.eprintf writes to stderr outside the structured logger
      hint: emit through Lattol_obs.Log: freeform eprintf lines carry no level, no source and no trace id, so they cannot be joined against the causal trace; only the structured logger itself writes stderr directly
  fixtures/lib/exec/bad_eprintf.ml:3:15: [obs-bare-printf] prerr_endline writes to stderr outside the structured logger
      hint: emit through Lattol_obs.Log: freeform eprintf lines carry no level, no source and no trace id, so they cannot be joined against the causal trace; only the structured logger itself writes stderr directly
  [1]

float-polycompare fires on polymorphic =/compare over float-bearing
expressions, but not on Float.equal/Float.compare or integer compares:

  $ ../../bin/lattol_lint.exe --no-config --rules float-polycompare fixtures/lib/core/bad_polyeq.ml fixtures/lib/core/good_polyeq.ml
  fixtures/lib/core/bad_polyeq.ml:3:16: [float-polycompare] polymorphic = applied to a float-bearing expression
      hint: use Float.equal / Float.compare (or a keyed comparison): polymorphic compare diverges on nan and boxes every float, and Hashtbl.hash folds nan/-0. unpredictably into cache keys
  fixtures/lib/core/bad_polyeq.ml:7:15: [float-polycompare] polymorphic compare applied to a float-bearing expression
      hint: use Float.equal / Float.compare (or a keyed comparison): polymorphic compare diverges on nan and boxes every float, and Hashtbl.hash folds nan/-0. unpredictably into cache keys
  [1]

float-div-unguarded fires on division by an unguarded difference, but
not when an enclosing branch dominates the divisor:

  $ ../../bin/lattol_lint.exe --no-config --rules float-div-unguarded fixtures/lib/queueing
  fixtures/lib/queueing/bad_div.ml:2:27: [float-div-unguarded] divisor is a float difference with no dominating guard
      hint: guard the branch so the divisor is provably nonzero, or annotate with [@lattol.allow "float-div-unguarded"] stating the invariant that keeps it away from zero
  [1]

float-sum-naive fires on uncompensated float folds in lib/stats, but
not on integer folds:

  $ ../../bin/lattol_lint.exe --no-config --rules float-sum-naive fixtures/lib/stats
  fixtures/lib/stats/bad_sum.ml:3:15: [float-sum-naive] fold_left accumulates floats without compensation
      hint: use Lattol_stats.Moments (Welford) or Kahan compensation for long sums; annotate when the operand count is small and bounded
  [1]

dom-unsync-mutation fires on bare shared mutation inside Domain.spawn,
but not under Mutex.protect — the out-of-scope profiler copy fires here
too, on its unprotected Hashtbl fold:

  $ ../../bin/lattol_lint.exe --no-config --rules dom-unsync-mutation fixtures/lib/exec
  fixtures/lib/exec/bad_profiler.ml:9:40: [dom-unsync-mutation] Hashtbl.replace mutates shared state inside a Domain.spawn closure
      hint: wrap the mutation in Mutex.protect, use Atomic, or annotate with [@lattol.allow "dom-unsync-mutation"] naming the lock that is held
  fixtures/lib/exec/bad_spawn.ml:6:39: [dom-unsync-mutation] := mutates shared state inside a Domain.spawn closure
      hint: wrap the mutation in Mutex.protect, use Atomic, or annotate with [@lattol.allow "dom-unsync-mutation"] naming the lock that is held
  [1]

hyg-obj-magic fires wherever Obj.magic appears:

  $ ../../bin/lattol_lint.exe --no-config --rules hyg-obj-magic fixtures/lib/core/bad_magic.ml
  fixtures/lib/core/bad_magic.ml:2:15: [hyg-obj-magic] Obj.magic is never domain- or type-safe
      hint: restructure with a GADT, a variant, or a first-class module
  [1]

hyg-catchall fires on both catch-all handler forms, but not on named
exceptions or plain wildcard match cases:

  $ ../../bin/lattol_lint.exe --no-config --rules hyg-catchall fixtures/lib/core/bad_catchall.ml fixtures/lib/core/good_catchall.ml
  fixtures/lib/core/bad_catchall.ml:3:28: [hyg-catchall] try ... with _ -> swallows every exception
      hint: match the specific exceptions: a catch-all absorbs the supervisor's escalation exceptions (and Stack_overflow) and turns faults into silent wrong answers
  fixtures/lib/core/bad_catchall.ml:5:72: [hyg-catchall] match ... with exception _ -> swallows every exception
      hint: match the specific exceptions: a catch-all absorbs the supervisor's escalation exceptions (and Stack_overflow) and turns faults into silent wrong answers
  [1]

hyg-mli-missing fires on a library module with no interface file, but
not when the sibling .mli exists:

  $ ../../bin/lattol_lint.exe --no-config --rules hyg-mli-missing fixtures/mli
  fixtures/mli/lib/nomli/bad_nomli.ml:1:0: [hyg-mli-missing] module has no interface file
      hint: add a sibling .mli so the module's contract is explicit, or list the file under an 'mli-exempt' directive in .lattol-lint stating why it is a bare executable
  [1]

An expression-level [@lattol.allow "rule"] suppresses exactly that
finding; --stats still accounts for it:

  $ ../../bin/lattol_lint.exe --no-config --rules hyg-catchall --stats fixtures/suppress/lib/core/allow_expr.ml
  files scanned: 1
  findings: 0 (suppressed: 1)

A floating [@@@lattol.allow "rule"] suppresses the rule file-wide:

  $ ../../bin/lattol_lint.exe --no-config --rules det-stdout --stats fixtures/suppress/lib/core/allow_file.ml
  files scanned: 1
  findings: 0 (suppressed: 1)

JSON output carries the same findings machine-readably:

  $ ../../bin/lattol_lint.exe --no-config --rules float-div-unguarded --format json fixtures/lib/queueing
  {"tool":"lattol-lint","format_version":1,"findings":[{"file":"fixtures/lib/queueing/bad_div.ml","line":2,"col":27,"rule":"float-div-unguarded","message":"divisor is a float difference with no dominating guard","hint":"guard the branch so the divisor is provably nonzero, or annotate with [@lattol.allow \"float-div-unguarded\"] stating the invariant that keeps it away from zero"}],"stats":{"files":2,"findings":1,"suppressed":0,"by_rule":{"float-div-unguarded":1}}}
  [1]

A clean subtree exits 0 with no output — fixtures/lib/robust is in the
list because clock reads there (retry backoff, deadlines) are exempt
from det-wallclock by scope, and fixtures/lib/obs because the runtime
profiler's sampler (good_profiler.ml: clock read + Mutex.protect'd fold
in a spawned domain) is admitted there; this run pins both exemptions:

  $ ../../bin/lattol_lint.exe --no-config fixtures/lib/obs fixtures/lib/serve fixtures/lib/robust fixtures/bin

Phase 2 sees the whole program at once: per-unit summaries are joined
into a cross-module call graph plus an inventory of module-level
mutable state, parallel roots (closures handed to Pool.* or
Domain.spawn) are marked, and the dom-*/det-prng rules judge everything
reachable from them.  The fixture project keeps its hazards in
tally.ml and reaches them from other units.

dom-shared-mutation fires on unprotected module-level mutation reached
from a parallel region — directly or through the call graph (note the
"via Bad_shared.bump" edge) — but not under Atomic, Mutex.protect, or
Domain.DLS:

  $ ../../bin/lattol_lint.exe --no-config --rules dom-shared-mutation fixtures/phase2
  fixtures/phase2/lib/par/bad_shared.ml:5:13: [dom-shared-mutation] toplevel ref Tally.total is mutated from the parallel region (via Bad_shared.bump) without Atomic/Mutex.protect
      hint: wrap the access in Mutex.protect or Atomic, carry the state per-worker via Pool.map_local, or have workers return values and merge on the caller
  fixtures/phase2/lib/par/bad_shared.ml:11:6: [dom-shared-mutation] toplevel Hashtbl Tally.cache is mutated from the parallel region (via Bad_shared) without Atomic/Mutex.protect
      hint: wrap the access in Mutex.protect or Atomic, carry the state per-worker via Pool.map_local, or have workers return values and merge on the caller
  [1]

dom-unprotected-read-write fires when the region reads state that is
mutated anywhere else in the program (a torn read races with the
writer), but not when the read is under the same lock:

  $ ../../bin/lattol_lint.exe --no-config --rules dom-unprotected-read-write fixtures/phase2
  fixtures/phase2/lib/par/bad_shared.ml:5:28: [dom-unprotected-read-write] toplevel ref Tally.total is read in the parallel region (via Bad_shared.bump) while also being mutated elsewhere
      hint: take the same lock on both sides (Mutex.protect), publish through Atomic, or snapshot the state into an immutable value before the fan-out
  [1]

det-prng-unsplit fires when workers advance one shared toplevel Prng
stream (draw order now depends on scheduling), but not when each task
draws from its own split:

  $ ../../bin/lattol_lint.exe --no-config --rules det-prng-unsplit fixtures/phase2
  fixtures/phase2/lib/par/bad_prng.ml:5:29: [det-prng-unsplit] Prng.float draws from the shared toplevel stream Tally.stream inside the parallel region
      hint: derive one stream per task with Prng.split before the fan-out (see Replicate.streams): draw order on a shared stream depends on scheduling, so results stop being replayable from the seed
  [1]

hot-alloc fires inside [@lattol.hot] regions on per-iteration boxing:
allocation in the annotated loop, allocation in a transitive callee
(weight allocates on every call, and every call is one loop pass), and
partial application; the hoisted-and-fully-applied version is silent:

  $ ../../bin/lattol_lint.exe --no-config --rules hot-alloc fixtures/phase2
  fixtures/phase2/lib/hot/bad_hot.ml:7:17: [hot-alloc] tuple allocated per call in the hot region (Bad_hot.weight)
      hint: hoist the allocation out of the loop, reuse preallocated Float.Array/Bigarray scratch, and apply functions fully: flat inner loops are what unlock multicore scaling (ROADMAP item 3)
  fixtures/phase2/lib/hot/bad_hot.ml:12:16: [hot-alloc] ref cell allocated per iteration in the hot region (Bad_hot.solve)
      hint: hoist the allocation out of the loop, reuse preallocated Float.Array/Bigarray scratch, and apply functions fully: flat inner loops are what unlock multicore scaling (ROADMAP item 3)
  fixtures/phase2/lib/hot/bad_hot.ml:13:12: [hot-alloc] partial application of Bad_hot.scale (1 of 2 arguments) allocates a closure per iteration
      hint: hoist the allocation out of the loop, reuse preallocated Float.Array/Bigarray scratch, and apply functions fully: flat inner loops are what unlock multicore scaling (ROADMAP item 3)
  [1]

A committed baseline accepts known findings by "rule path" pairs
without silencing the rule elsewhere; --stats accounts for the
demotion:

  $ cat > baseline.txt <<'DONE'
  > hot-alloc fixtures/phase2/lib/hot/bad_hot.ml
  > DONE
  $ ../../bin/lattol_lint.exe --no-config --rules hot-alloc --baseline baseline.txt --stats fixtures/phase2
  files scanned: 7
  findings: 0 (suppressed: 0)
  baselined: 3

A baseline entry whose finding no longer fires is itself an error, so
the debt list can only shrink in step with the tree:

  $ cat > stale.txt <<'DONE'
  > hot-alloc fixtures/phase2/lib/hot/good_hot.ml
  > DONE
  $ ../../bin/lattol_lint.exe --no-config --rules hot-alloc --baseline stale.txt fixtures/phase2/lib/hot/good_hot.ml
  stale.txt:1:0: [baseline-stale] baseline entry 'hot-alloc fixtures/phase2/lib/hot/good_hot.ml' matched no finding
      hint: the grandfathered finding is gone: delete this line so the fix is locked in
  [1]

SARIF output (for GitHub code scanning) carries the full rule pack and
the same findings:

  $ ../../bin/lattol_lint.exe --no-config --rules det-prng-unsplit --format sarif fixtures/phase2/lib/par/bad_prng.ml fixtures/phase2/lib/par/tally.ml
  {"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"lattol-lint","informationUri":"https://github.com/lattol/lattol","rules":[{"id":"det-random","shortDescription":{"text":"ambient Random use outside lib/stats/prng.ml"},"help":{"text":"draw from a Lattol_stats.Prng stream threaded from the experiment seed; the ambient Random is invisible to replay and to the solve cache"},"properties":{"family":"determinism"}},{"id":"det-wallclock","shortDescription":{"text":"wall-clock read in deterministic model/experiment code (lib/ outside the telemetry and supervision layers)"},"help":{"text":"solver results, cache keys and golden CSVs must not depend on time; read clocks only in the layers scoped for it (lib/obs, lib/serve, lib/robust) or in executables"},"properties":{"family":"determinism"}},{"id":"det-stdout","shortDescription":{"text":"direct stdout write in library code (lib/serve excepted)"},"help":{"text":"emit through a Format.formatter or a Report/Metrics sink chosen by the caller; library stdout interleaves nondeterministically under --jobs"},"properties":{"family":"determinism"}},{"id":"float-polycompare","shortDescription":{"text":"polymorphic =/<>/compare/Hashtbl.hash on a float-bearing value"},"help":{"text":"use Float.equal / Float.compare (or a keyed comparison): polymorphic compare diverges on nan and boxes every float, and Hashtbl.hash folds nan/-0. unpredictably into cache keys"},"properties":{"family":"float-safety"}},{"id":"float-div-unguarded","shortDescription":{"text":"float division by a difference with no dominating nonzero guard"},"help":{"text":"guard the branch so the divisor is provably nonzero, or annotate with [@lattol.allow \"float-div-unguarded\"] stating the invariant that keeps it away from zero"},"properties":{"family":"float-safety"}},{"id":"float-sum-naive","shortDescription":{"text":"naive float accumulation via fold_left in lib/stats"},"help":{"text":"use Lattol_stats.Moments (Welford) or Kahan compensation for long sums; annotate when the operand count is small and bounded"},"properties":{"family":"float-safety"}},{"id":"dom-unsync-mutation","shortDescription":{"text":"shared-state mutation inside a Domain.spawn closure without Mutex.protect/Atomic"},"help":{"text":"wrap the mutation in Mutex.protect, use Atomic, or annotate with [@lattol.allow \"dom-unsync-mutation\"] naming the lock that is held"},"properties":{"family":"domain-safety"}},{"id":"hyg-obj-magic","shortDescription":{"text":"Obj.magic defeats the type system"},"help":{"text":"restructure with a GADT, a variant, or a first-class module"},"properties":{"family":"domain-safety"}},{"id":"hyg-catchall","shortDescription":{"text":"catch-all exception handler"},"help":{"text":"match the specific exceptions: a catch-all absorbs the supervisor's escalation exceptions (and Stack_overflow) and turns faults into silent wrong answers"},"properties":{"family":"domain-safety"}},{"id":"hyg-mli-missing","shortDescription":{"text":"library module without an interface file"},"help":{"text":"add a sibling .mli so the module's contract is explicit, or list the file under an 'mli-exempt' directive in .lattol-lint stating why it is a bare executable"},"properties":{"family":"domain-safety"}},{"id":"dom-shared-mutation","shortDescription":{"text":"module-level mutable state mutated from the parallel region (transitively from a Pool/Domain.spawn closure) without synchronization"},"help":{"text":"wrap the access in Mutex.protect or Atomic, carry the state per-worker via Pool.map_local, or have workers return values and merge on the caller"},"properties":{"family":"domain-safety"}},{"id":"dom-unprotected-read-write","shortDescription":{"text":"module-level mutable state read in the parallel region while also mutated elsewhere (torn-read race)"},"help":{"text":"take the same lock on both sides (Mutex.protect), publish through Atomic, or snapshot the state into an immutable value before the fan-out"},"properties":{"family":"domain-safety"}},{"id":"det-prng-unsplit","shortDescription":{"text":"shared toplevel Prng stream advanced from the parallel region"},"help":{"text":"derive one stream per task with Prng.split before the fan-out (see Replicate.streams): draw order on a shared stream depends on scheduling, so results stop being replayable from the seed"},"properties":{"family":"determinism"}},{"id":"hot-alloc","shortDescription":{"text":"per-iteration heap allocation in a [@lattol.hot] region (closure/tuple/record/list/array or partial application)"},"help":{"text":"hoist the allocation out of the loop, reuse preallocated Float.Array/Bigarray scratch, and apply functions fully: flat inner loops are what unlock multicore scaling (ROADMAP item 3)"},"properties":{"family":"hot-path"}},{"id":"obs-bare-printf","shortDescription":{"text":"bare stderr print in library code (lib/obs/log.ml excepted)"},"help":{"text":"emit through Lattol_obs.Log: freeform eprintf lines carry no level, no source and no trace id, so they cannot be joined against the causal trace; only the structured logger itself writes stderr directly"},"properties":{"family":"observability"}}]}},"results":[{"ruleId":"det-prng-unsplit","level":"error","message":{"text":"Prng.float draws from the shared toplevel stream Tally.stream inside the parallel region; hint: derive one stream per task with Prng.split before the fan-out (see Replicate.streams): draw order on a shared stream depends on scheduling, so results stop being replayable from the seed"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"fixtures/phase2/lib/par/bad_prng.ml"},"region":{"startLine":5,"startColumn":30}}}]}]}]}
  [1]
