(* Unit and property tests for the statistics substrate: PRNG, variates,
   moment accumulators, confidence intervals, histograms. *)

open Lattol_stats

let check_float = Alcotest.(check (float 1e-9))

let close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 () and b = Prng.create ~seed:42 () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same sequence" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 () and b = Prng.create ~seed:2 () in
  Alcotest.(check bool) "different sequences" true
    (Prng.bits64 a <> Prng.bits64 b)

let test_prng_float_range () =
  let rng = Prng.create ~seed:7 () in
  for _ = 1 to 10_000 do
    let u = Prng.float rng in
    if u < 0. || u >= 1. then Alcotest.failf "float out of [0,1): %g" u
  done

let test_prng_float_moments () =
  let rng = Prng.create ~seed:11 () in
  let m = Moments.create () in
  for _ = 1 to 100_000 do
    Moments.add m (Prng.float rng)
  done;
  close ~eps:5e-3 "mean ~ 1/2" 0.5 (Moments.mean m);
  close ~eps:5e-3 "var ~ 1/12" (1. /. 12.) (Moments.variance m)

let test_prng_int_uniform () =
  let rng = Prng.create ~seed:3 () in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Prng.int rng 10 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int n in
      if abs_float (freq -. 0.1) > 0.01 then
        Alcotest.failf "bucket %d frequency %g too far from 0.1" i freq)
    counts

let test_prng_int_bounds () =
  let rng = Prng.create ~seed:3 () in
  for _ = 1 to 1000 do
    let v = Prng.int rng 3 in
    if v < 0 || v >= 3 then Alcotest.failf "int out of range: %d" v
  done;
  Alcotest.check_raises "n = 0 rejected" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_split_independent () =
  let parent = Prng.create ~seed:5 () in
  let child = Prng.split parent in
  (* Parent and child should not produce identical streams. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 parent = Prng.bits64 child then incr same
  done;
  Alcotest.(check int) "streams differ" 0 !same

(* Replication fan-out derives one stream per replication by repeated
   [split] from a root seed; these three tests are the statistical
   contract that design leans on. *)

let split_streams ~seed n =
  let root = Prng.create ~seed () in
  List.init n (fun _ -> Prng.split root)

let test_prng_split_reproducible () =
  (* Streams depend only on (seed, index): re-deriving from the same root
     seed replays every stream exactly. *)
  let a = split_streams ~seed:1997 8 and b = split_streams ~seed:1997 8 in
  List.iteri
    (fun i (x, y) ->
      for _ = 1 to 1_000 do
        if Prng.bits64 x <> Prng.bits64 y then
          Alcotest.failf "stream %d diverged" i
      done)
    (List.combine a b)

let test_prng_split_nonoverlapping () =
  (* Over 10^5 draws per stream, no 64-bit output may appear in two
     different streams: a birthday collision of honest streams has
     probability ~ (5*10^5)^2 / 2^64 < 10^-8, so any hit means the
     streams share state. *)
  let streams = split_streams ~seed:5 4 in
  let draws = 100_000 in
  let seen = Hashtbl.create (5 * draws) in
  List.iteri
    (fun id rng ->
      for _ = 1 to draws do
        let v = Prng.bits64 rng in
        match Hashtbl.find_opt seen v with
        | Some other when other <> id ->
          Alcotest.failf "streams %d and %d both produced %Ld" other id v
        | _ -> Hashtbl.replace seen v id
      done)
    streams

let test_prng_split_uncorrelated () =
  (* Pearson correlation between sibling streams' uniforms: the standard
     error at n = 10^5 is ~0.003, so |r| beyond 0.02 is a real defect,
     not noise. *)
  match split_streams ~seed:23 2 with
  | [ a; b ] ->
    let n = 100_000 in
    let xs = Array.init n (fun _ -> Prng.float a) in
    let ys = Array.init n (fun _ -> Prng.float b) in
    let mean v = Array.fold_left ( +. ) 0. v /. float_of_int n in
    let mx = mean xs and my = mean ys in
    let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    let r = !sxy /. sqrt (!sxx *. !syy) in
    if abs_float r > 0.02 then
      Alcotest.failf "sibling streams correlate: r = %g" r
  | _ -> assert false

let test_prng_split_order_independent () =
  (* The foundation of the pool's byte-identity guarantee: streams derived
     up-front are fully determined at derivation time, so the order in
     which workers later CONSUME them — any interleaving, any schedule —
     cannot change what each stream produces. *)
  let draws = 256 in
  let consume order streams =
    let out = Array.make (List.length streams) [] in
    List.iter
      (fun id ->
        let rng = List.nth streams id in
        out.(id) <- Prng.bits64 rng :: out.(id))
      order;
    Array.map List.rev out
  in
  (* Each stream appears [draws] times in both orders; only the
     interleaving differs (round-robin vs. reversed blocks). *)
  let ids = [ 0; 1; 2; 3 ] in
  let round_robin =
    List.concat (List.init draws (fun _ -> ids))
  in
  let blocks =
    List.concat_map (fun id -> List.init draws (fun _ -> id)) (List.rev ids)
  in
  let a = consume round_robin (split_streams ~seed:97 4) in
  let b = consume blocks (split_streams ~seed:97 4) in
  Array.iteri
    (fun id xs ->
      if xs <> b.(id) then
        Alcotest.failf "stream %d depends on consumption order" id)
    a

let test_prng_copy () =
  let a = Prng.create ~seed:9 () in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a)
    (Prng.bits64 b)

(* ------------------------------------------------------------------ *)
(* Variate *)

let sample_moments dist seed n =
  let rng = Prng.create ~seed () in
  let m = Moments.create () in
  for _ = 1 to n do
    Moments.add m (Variate.draw dist rng)
  done;
  m

let test_variate_exponential () =
  let d = Variate.Exponential 2.5 in
  check_float "mean" 2.5 (Variate.mean d);
  check_float "variance" 6.25 (Variate.variance d);
  check_float "scv" 1. (Variate.scv d);
  let m = sample_moments d 13 200_000 in
  close ~eps:0.05 "sample mean" 2.5 (Moments.mean m);
  close ~eps:0.25 "sample variance" 6.25 (Moments.variance m)

let test_variate_deterministic () =
  let d = Variate.Deterministic 3. in
  check_float "mean" 3. (Variate.mean d);
  check_float "variance" 0. (Variate.variance d);
  let rng = Prng.create () in
  for _ = 1 to 10 do
    check_float "draw" 3. (Variate.draw d rng)
  done

let test_variate_uniform () =
  let d = Variate.Uniform (1., 3.) in
  check_float "mean" 2. (Variate.mean d);
  close "variance" (1. /. 3.) (Variate.variance d);
  let m = sample_moments d 17 100_000 in
  close ~eps:0.02 "sample mean" 2. (Moments.mean m);
  close ~eps:0.02 "sample min >= 1" 1. (Moments.min m)

let test_variate_erlang () =
  let d = Variate.Erlang (4, 2.) in
  check_float "mean" 2. (Variate.mean d);
  check_float "variance" 1. (Variate.variance d);
  check_float "scv" 0.25 (Variate.scv d);
  let m = sample_moments d 19 100_000 in
  close ~eps:0.03 "sample mean" 2. (Moments.mean m);
  close ~eps:0.05 "sample variance" 1. (Moments.variance m)

let test_variate_hyperexp () =
  let d = Variate.Hyperexp [| (0.5, 1.); (0.5, 3.) |] in
  check_float "mean" 2. (Variate.mean d);
  (* E[X^2] = 0.5*2*1 + 0.5*2*9 = 10; var = 10 - 4 = 6 *)
  check_float "variance" 6. (Variate.variance d);
  let m = sample_moments d 23 200_000 in
  close ~eps:0.05 "sample mean" 2. (Moments.mean m)

let test_variate_validate () =
  let bad d = Alcotest.(check bool) "invalid" true (Variate.validate d |> Result.is_error) in
  bad (Variate.Exponential 0.);
  bad (Variate.Exponential (-1.));
  bad (Variate.Deterministic (-0.5));
  bad (Variate.Uniform (2., 1.));
  bad (Variate.Erlang (0, 1.));
  bad (Variate.Hyperexp [| (0.5, 1.); (0.4, 1.) |]);
  bad (Variate.Hyperexp [||]);
  Alcotest.(check bool) "valid exp" true
    (Variate.validate (Variate.Exponential 1.) |> Result.is_ok)

let test_discrete_distribution () =
  let rng = Prng.create ~seed:29 () in
  let weights = [| 1.; 2.; 7. |] in
  let counts = Array.make 3 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Variate.discrete rng weights in
    counts.(i) <- counts.(i) + 1
  done;
  close ~eps:0.01 "p0" 0.1 (float_of_int counts.(0) /. float_of_int n);
  close ~eps:0.01 "p1" 0.2 (float_of_int counts.(1) /. float_of_int n);
  close ~eps:0.01 "p2" 0.7 (float_of_int counts.(2) /. float_of_int n)

let test_discrete_zero_weights () =
  let rng = Prng.create () in
  (* Indices with zero weight must never be drawn. *)
  for _ = 1 to 1000 do
    let i = Variate.discrete rng [| 0.; 1.; 0. |] in
    Alcotest.(check int) "only index 1" 1 i
  done

let test_geometric_trunc () =
  let rng = Prng.create ~seed:31 () in
  let p = 0.5 and max = 4 in
  let counts = Array.make (max + 1) 0 in
  let n = 200_000 in
  for _ = 1 to n do
    let h = Variate.geometric_trunc rng ~p ~max in
    counts.(h) <- counts.(h) + 1
  done;
  Alcotest.(check int) "never draws 0" 0 counts.(0);
  let a = 0.5 +. 0.25 +. 0.125 +. 0.0625 in
  for h = 1 to max do
    let expected = (p ** float_of_int h) /. a in
    let freq = float_of_int counts.(h) /. float_of_int n in
    if abs_float (freq -. expected) > 0.01 then
      Alcotest.failf "P(h=%d): got %g want %g" h freq expected
  done

(* ------------------------------------------------------------------ *)
(* Moments *)

let test_moments_basic () =
  let m = Moments.create () in
  List.iter (Moments.add m) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Moments.count m);
  check_float "mean" 5. (Moments.mean m);
  close "variance" (32. /. 7.) (Moments.variance m);
  check_float "min" 2. (Moments.min m);
  check_float "max" 9. (Moments.max m);
  check_float "sum" 40. (Moments.sum m)

let test_moments_empty () =
  let m = Moments.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Moments.mean m));
  Alcotest.(check bool) "variance nan" true (Float.is_nan (Moments.variance m))

let test_moments_weighted () =
  let m = Moments.create () in
  Moments.add_weighted m ~weight:3. 10.;
  Moments.add_weighted m ~weight:1. 2.;
  check_float "weighted mean" 8. (Moments.mean m);
  check_float "total weight" 4. (Moments.total_weight m)

let test_moments_merge () =
  let a = Moments.create () and b = Moments.create () and whole = Moments.create () in
  let xs = [ 1.; 2.; 3.; 4.; 5.; 6. ] in
  List.iteri
    (fun i x ->
      Moments.add whole x;
      if i < 3 then Moments.add a x else Moments.add b x)
    xs;
  let merged = Moments.merge a b in
  close "merged mean" (Moments.mean whole) (Moments.mean merged);
  close "merged variance" (Moments.variance whole) (Moments.variance merged);
  Alcotest.(check int) "merged count" 6 (Moments.count merged)

let test_moments_negative_weight () =
  let m = Moments.create () in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Moments.add_weighted: negative weight") (fun () ->
      Moments.add_weighted m ~weight:(-1.) 0.)

(* ------------------------------------------------------------------ *)
(* Confidence *)

let test_t_quantile () =
  close ~eps:1e-3 "df=1" 12.706 (Confidence.t_quantile ~df:1);
  close ~eps:1e-3 "df=10" 2.228 (Confidence.t_quantile ~df:10);
  close ~eps:1e-2 "df=30" 2.042 (Confidence.t_quantile ~df:30);
  close ~eps:1e-2 "df huge ~ z" 1.96 (Confidence.t_quantile ~df:10_000)

let test_interval_coverage () =
  (* The 95% CI over n samples of a known-mean distribution should cover the
     true mean roughly 95% of the time. *)
  let rng = Prng.create ~seed:37 () in
  let trials = 400 and n = 30 in
  let covered = ref 0 in
  for _ = 1 to trials do
    let m = Moments.create () in
    for _ = 1 to n do
      Moments.add m (Variate.exponential rng ~mean:1.)
    done;
    match Confidence.interval m with
    | Some (mean, half) when abs_float (mean -. 1.) <= half -> incr covered
    | Some _ -> ()
    | None -> Alcotest.fail "no interval with 30 samples"
  done;
  let coverage = float_of_int !covered /. float_of_int trials in
  if coverage < 0.88 || coverage > 0.99 then
    Alcotest.failf "coverage %g out of [0.88, 0.99]" coverage

let test_batch_means () =
  let b = Confidence.Batch_means.create ~batch_size:10 in
  for i = 1 to 100 do
    Confidence.Batch_means.add b (float_of_int (i mod 10))
  done;
  Alcotest.(check int) "10 batches" 10 (Confidence.Batch_means.num_batches b);
  close "grand mean" 4.5 (Confidence.Batch_means.mean b);
  (* all batch means identical -> zero-width interval *)
  (match Confidence.Batch_means.interval b with
  | Some (_, half) -> close "zero half-width" 0. half
  | None -> Alcotest.fail "interval expected");
  close "relative error 0" 0. (Confidence.Batch_means.relative_error b)

let test_autocorrelation_ar1 () =
  (* AR(1): x_t = phi x_{t-1} + eps has autocorrelation phi^k at lag k. *)
  let phi = 0.8 in
  let rng = Prng.create ~seed:47 () in
  let n = 200_000 in
  let series = Array.make n 0. in
  for t = 1 to n - 1 do
    series.(t) <-
      (phi *. series.(t - 1))
      +. (Variate.exponential rng ~mean:1. -. 1.)
  done;
  close ~eps:0.02 "lag 1" phi (Confidence.autocorrelation series ~lag:1);
  close ~eps:0.02 "lag 3" (phi ** 3.) (Confidence.autocorrelation series ~lag:3);
  close ~eps:1e-9 "lag 0 is 1" 1. (Confidence.autocorrelation series ~lag:0)

let test_batch_size_suggestion () =
  (* iid noise needs the minimum batch; AR(1) needs a longer one. *)
  let rng = Prng.create ~seed:53 () in
  let iid = Array.init 10_000 (fun _ -> Prng.float rng) in
  Alcotest.(check int) "iid -> 10" 10 (Confidence.suggest_batch_size iid);
  let phi = 0.9 in
  let ar = Array.make 50_000 0. in
  for t = 1 to Array.length ar - 1 do
    ar.(t) <- (phi *. ar.(t - 1)) +. Prng.float rng -. 0.5
  done;
  Alcotest.(check bool) "correlated -> larger" true
    (Confidence.suggest_batch_size ar >= 100);
  Alcotest.(check bool) "bad threshold" true
    (try
       ignore (Confidence.suggest_batch_size ~threshold:0. iid);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_histogram_basic () =
  let h = Histogram.create ~hi:10. ~bins:10 () in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; -1.; 12. ];
  Alcotest.(check int) "count" 6 (Histogram.count h);
  Alcotest.(check int) "bin 0" 1 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 2 (Histogram.bin_count h 1);
  Alcotest.(check int) "bin 9" 1 (Histogram.bin_count h 9);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (Histogram.overflow h)

let test_histogram_quantile () =
  let h = Histogram.create ~hi:100. ~bins:100 () in
  let rng = Prng.create ~seed:41 () in
  for _ = 1 to 100_000 do
    Histogram.add h (Prng.float rng *. 100.)
  done;
  close ~eps:1. "median ~ 50" 50. (Histogram.quantile h 0.5);
  close ~eps:1.5 "p90 ~ 90" 90. (Histogram.quantile h 0.9)

let test_histogram_quantile_edges () =
  (* All mass in overflow: every quantile saturates at the top edge. *)
  let h = Histogram.create ~hi:10. ~bins:10 () in
  List.iter (Histogram.add h) [ 11.; 12.; 13. ];
  check_float "all overflow -> hi" 10. (Histogram.quantile h 0.5);
  (* All mass in underflow: every quantile saturates at the bottom edge. *)
  let h = Histogram.create ~lo:5. ~hi:10. ~bins:5 () in
  List.iter (Histogram.add h) [ 0.; 1.; 2. ];
  check_float "all underflow -> lo" 5. (Histogram.quantile h 0.5);
  (* Underflow mass already covers the target: still the bottom edge, not
     an interpolation into the first populated bin (the historical bug
     produced a negative offset here). *)
  let h = Histogram.create ~lo:5. ~hi:10. ~bins:5 () in
  List.iter (Histogram.add h) [ 0.; 1.; 2.; 7.25 ];
  check_float "underflow owns the median" 5. (Histogram.quantile h 0.5);
  close ~eps:1e-9 "tail quantile lands in the bin" 7.96
    (Histogram.quantile h 0.99);
  (* Exact bin-boundary target: interpolation reaches precisely the edge. *)
  let h = Histogram.create ~hi:10. ~bins:10 () in
  for _ = 1 to 10 do
    Histogram.add h 0.5
  done;
  for _ = 1 to 10 do
    Histogram.add h 1.5
  done;
  check_float "boundary median" 1. (Histogram.quantile h 0.5);
  (* Empty interior bins never own a quantile: with mass only in the first
     and last bins, the median sits at the top of the first. *)
  let h = Histogram.create ~hi:10. ~bins:10 () in
  for _ = 1 to 5 do
    Histogram.add h 0.5
  done;
  for _ = 1 to 5 do
    Histogram.add h 9.5
  done;
  check_float "gap: median tops the first bin" 1. (Histogram.quantile h 0.5);
  close ~eps:1e-9 "gap: p60 lands in the last bin" 9.2
    (Histogram.quantile h 0.6);
  (* Degenerate requests: q must sit strictly inside (0, 1); an empty
     histogram has no quantiles at all. *)
  Alcotest.(check bool) "q outside (0, 1)" true
    (try
       ignore (Histogram.quantile h 0.);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "q = 1 rejected" true
    (try
       ignore (Histogram.quantile h 1.);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty histogram -> nan" true
    (Float.is_nan (Histogram.quantile (Histogram.create ~hi:1. ~bins:2 ()) 0.5))

let test_histogram_bounds () =
  let h = Histogram.create ~lo:2. ~hi:4. ~bins:4 () in
  let lo, hi = Histogram.bin_bounds h 1 in
  check_float "bin lo" 2.5 lo;
  check_float "bin hi" 3. hi

(* ------------------------------------------------------------------ *)
(* Ascii_plot *)

let test_plot_renders () =
  let chart =
    Ascii_plot.render ~width:20 ~height:5 ~x_label:"x" ~y_label:"y"
      [ { Ascii_plot.label = "line"; points = [ (0., 0.); (1., 1.); (2., 2.) ] } ]
  in
  Alcotest.(check bool) "contains glyph" true (String.contains chart '*');
  Alcotest.(check bool) "contains legend" true
    (String.length chart > 0
    &&
    let found = ref false in
    String.iteri
      (fun i _ ->
        if i + 4 <= String.length chart && String.sub chart i 4 = "line" then
          found := true)
      chart;
    !found);
  Alcotest.(check bool) "y label present" true (String.length chart > 20)

let test_plot_empty () =
  Alcotest.(check string) "no data message" "(no finite data points)"
    (Ascii_plot.render [ { Ascii_plot.label = "e"; points = [] } ]);
  Alcotest.(check string) "nan filtered" "(no finite data points)"
    (Ascii_plot.render [ { Ascii_plot.label = "n"; points = [ (nan, 1.) ] } ])

let test_plot_degenerate_range () =
  (* A single point must still render without dividing by zero. *)
  let chart =
    Ascii_plot.render ~width:10 ~height:3
      [ { Ascii_plot.label = "p"; points = [ (1., 1.) ] } ]
  in
  Alcotest.(check bool) "renders" true (String.contains chart '*')

let test_plot_multiple_glyphs () =
  let chart =
    Ascii_plot.render ~width:20 ~height:5
      [
        { Ascii_plot.label = "a"; points = [ (0., 0.) ] };
        { Ascii_plot.label = "b"; points = [ (1., 1.) ] };
      ]
  in
  Alcotest.(check bool) "both glyphs" true
    (String.contains chart '*' && String.contains chart '+')

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_moments_mean_in_range =
  QCheck.Test.make ~name:"moments mean lies within [min, max]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = Moments.create () in
      List.iter (Moments.add m) xs;
      Moments.mean m >= Moments.min m -. 1e-9
      && Moments.mean m <= Moments.max m +. 1e-9)

let prop_merge_commutes =
  QCheck.Test.make ~name:"moments merge is commutative" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 20) (float_range (-100.) 100.))
        (list_of_size Gen.(int_range 1 20) (float_range (-100.) 100.)))
    (fun (xs, ys) ->
      let build l =
        let m = Moments.create () in
        List.iter (Moments.add m) l;
        m
      in
      let ab = Moments.merge (build xs) (build ys) in
      let ba = Moments.merge (build ys) (build xs) in
      abs_float (Moments.mean ab -. Moments.mean ba) < 1e-6
      && abs_float (Moments.variance ab -. Moments.variance ba) < 1e-6)

let prop_variate_nonnegative =
  QCheck.Test.make ~name:"all variates are non-negative" ~count:200
    QCheck.(pair (int_range 1 4) (float_range 0.01 100.))
    (fun (kind, mean) ->
      let d =
        match kind with
        | 1 -> Variate.Exponential mean
        | 2 -> Variate.Deterministic mean
        | 3 -> Variate.Erlang (3, mean)
        | _ -> Variate.Uniform (0., mean)
      in
      let rng = Prng.create ~seed:(int_of_float (mean *. 1000.)) () in
      let ok = ref true in
      for _ = 1 to 50 do
        if Variate.draw d rng < 0. then ok := false
      done;
      !ok)

let prop_discrete_in_range =
  QCheck.Test.make ~name:"discrete index within bounds" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.01 10.))
    (fun ws ->
      let weights = Array.of_list ws in
      let rng = Prng.create ~seed:(List.length ws) () in
      let i = Lattol_stats.Variate.discrete rng weights in
      i >= 0 && i < Array.length weights)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "lattol_stats"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "float moments" `Quick test_prng_float_moments;
          Alcotest.test_case "int uniform" `Quick test_prng_int_uniform;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "split reproducible" `Quick
            test_prng_split_reproducible;
          Alcotest.test_case "split non-overlapping" `Slow
            test_prng_split_nonoverlapping;
          Alcotest.test_case "split uncorrelated" `Slow
            test_prng_split_uncorrelated;
          Alcotest.test_case "split order-independent" `Quick
            test_prng_split_order_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
        ] );
      ( "variate",
        [
          Alcotest.test_case "exponential" `Quick test_variate_exponential;
          Alcotest.test_case "deterministic" `Quick test_variate_deterministic;
          Alcotest.test_case "uniform" `Quick test_variate_uniform;
          Alcotest.test_case "erlang" `Quick test_variate_erlang;
          Alcotest.test_case "hyperexp" `Quick test_variate_hyperexp;
          Alcotest.test_case "validate" `Quick test_variate_validate;
          Alcotest.test_case "discrete" `Quick test_discrete_distribution;
          Alcotest.test_case "discrete zero weights" `Quick test_discrete_zero_weights;
          Alcotest.test_case "geometric truncated" `Quick test_geometric_trunc;
        ] );
      ( "moments",
        [
          Alcotest.test_case "basic" `Quick test_moments_basic;
          Alcotest.test_case "empty" `Quick test_moments_empty;
          Alcotest.test_case "weighted" `Quick test_moments_weighted;
          Alcotest.test_case "merge" `Quick test_moments_merge;
          Alcotest.test_case "negative weight" `Quick test_moments_negative_weight;
        ] );
      ( "confidence",
        [
          Alcotest.test_case "t quantile" `Quick test_t_quantile;
          Alcotest.test_case "interval coverage" `Slow test_interval_coverage;
          Alcotest.test_case "batch means" `Quick test_batch_means;
          Alcotest.test_case "autocorrelation AR(1)" `Slow
            test_autocorrelation_ar1;
          Alcotest.test_case "batch size suggestion" `Quick
            test_batch_size_suggestion;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basic" `Quick test_histogram_basic;
          Alcotest.test_case "quantile" `Quick test_histogram_quantile;
          Alcotest.test_case "quantile edges" `Quick
            test_histogram_quantile_edges;
          Alcotest.test_case "bounds" `Quick test_histogram_bounds;
        ] );
      ( "ascii-plot",
        [
          Alcotest.test_case "renders" `Quick test_plot_renders;
          Alcotest.test_case "empty" `Quick test_plot_empty;
          Alcotest.test_case "degenerate range" `Quick test_plot_degenerate_range;
          Alcotest.test_case "multiple glyphs" `Quick test_plot_multiple_glyphs;
        ] );
      ( "properties",
        qcheck
          [
            prop_moments_mean_in_range;
            prop_merge_commutes;
            prop_variate_nonnegative;
            prop_discrete_in_range;
          ] );
    ]
