The command-line interface, exercised end to end on deterministic
(analytical) commands.  Keep the configurations tiny so output stays stable.

Closed-form bottleneck analysis reproduces the paper's anchors:

  $ ../bin/mms_cli.exe bottleneck
  MMS torus 4x4: n_t=8 R=1 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1
  d_avg=1.733 lambda_net_sat=0.2885 p_remote*: critical=0.183 saturation=0.288 mem demand=1.000 U_p cap=1.000

Solving a small machine:

  $ ../bin/mms_cli.exe solve -k 2 --threads 2 --p-remote 0.5
  MMS torus 2x2: n_t=2 R=1 C=0 p_remote=0.5 geometric(p_sw=0.5) L=1 S=1
  
  U_p        = 0.3283
  lambda     = 0.3283
  lambda_net = 0.1642
  S_obs      = 3.517
  L_obs      = 1.378
  cycle      = 6.091
  util: mem 0.328, sw_in 0.438, sw_out 0.328, su 0.000
  queue: proc 0.393, mem 0.452, net 1.155

Tolerance indices and zones:

  $ ../bin/mms_cli.exe tolerance -k 2 --threads 2 --p-remote 0.5 | tail -n 2
  tol_network = 0.4925 (U_p 0.3283 vs ideal 0.6667; not tolerated; ideal via p_remote = 0)
  tol_memory = 0.8430 (U_p 0.3283 vs ideal 0.3895; tolerated; ideal via zero delay)

Sweeps emit CSV:

  $ ../bin/mms_cli.exe sweep --param n_t --from 1 --to 3 --steps 3 -k 2 | head -n 2
  # MMS torus 2x2: n_t=8 R=1 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1
  param,value,u_p,lambda,lambda_net,s_obs,l_obs,tol_network,tol_memory

Invalid parameters are rejected with a clear message:

  $ ../bin/mms_cli.exe solve --p-remote 1.5 2>&1 | head -n 1
  mms_cli: p_remote 1.5 must lie in [0, 1]

Unknown solvers too:

  $ ../bin/mms_cli.exe solve --solver magic 2>&1 | head -n 2 | tr -s ' '
  mms_cli: option '--solver': unknown solver "magic"
  Usage: mms_cli solve [OPTION]…

The kernel suite:

  $ ../bin/mms_cli.exe kernels -k 2 --threads 2 -R 2 | head -n 5
  MMS torus 2x2: n_t=2 R=2 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1, kernel compute fraction 0.6
  
    kernel                      U_p lambda_net    S_obs  tol_net
    nearest-neighbour        0.6366     0.1273    2.522   0.7531
    transpose                0.7095     0.0574    3.624   0.8393

Reports carry a verdict:

  $ ../bin/mms_cli.exe report -k 2 --threads 2 | grep verdict
  verdict     memory-bound

Supervised solve on a healthy configuration: one attempt, clean cross-check,
exit code 0:

  $ ../bin/mms_cli.exe solve -k 2 --threads 2 --supervise; echo "exit: $?"
  MMS torus 2x2: n_t=2 R=1 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1
  
  supervisor: 1 attempt, 0 fallbacks
    #1 symmetric damping=0 budget=2000: converged in 14 sweeps
  bound cross-check: ok
  
  U_p        = 0.4978
  lambda     = 0.4978
  lambda_net = 0.0996
  S_obs      = 2.927
  L_obs      = 1.516
  cycle      = 4.018
  util: mem 0.498, sw_in 0.265, sw_out 0.199, su 0.000
  queue: proc 0.663, mem 0.754, net 0.583
  exit: 0

An ill-conditioned configuration under a tiny iteration budget climbs the
escalation ladder and converges after fallbacks (exit code 3):

  $ ../bin/mms_cli.exe solve --threads 10 --p-remote 0.9 --supervise --budget-iterations 8 2>/dev/null; echo "exit: $?"
  MMS torus 4x4: n_t=10 R=1 C=0 p_remote=0.9 geometric(p_sw=0.5) L=1 S=1
  
  supervisor: 4 attempts, 3 fallbacks
    #1 symmetric damping=0 budget=8: failed (iteration cap) after 8 sweeps
    #2 symmetric damping=0.5 budget=16: failed (iteration cap) after 16 sweeps
    #3 symmetric damping=0.9 budget=32: failed (iteration cap) after 32 sweeps
    #4 amva damping=0 budget=64: converged in 33 sweeps
  bound cross-check: ok
  
  U_p        = 0.2890
  lambda     = 0.2890
  lambda_net = 0.2601
  S_obs      = 17.691
  L_obs      = 1.402
  cycle      = 34.597
  util: mem 0.289, sw_in 0.902, sw_out 0.520, su 0.000
  queue: proc 0.391, mem 0.405, net 9.204
  exit: 3

Fault plans must be well formed:

  $ ../bin/mms_cli.exe simulate --fault-mtbf 500 --fault-mttr 50 --fault-degrade 1.5 2>&1 | head -n 1
  mms_cli: switch fault: degrade 1.5 must lie in [0, 1]

Fault injection in the DES reports per-component downtime statistics:

  $ ../bin/mms_cli.exe simulate -k 2 --threads 2 --horizon 5000 --fault-mtbf 500 --fault-mttr 50; echo "exit: $?"
  MMS torus 2x2: n_t=2 R=1 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1
  fault plan: switch: mtbf=500 mttr=50 degrade=0 (avail 0.9091, slowdown 1.1000); memory: mtbf=500 mttr=50 degrade=0 (avail 0.9091, slowdown 1.1000)
  
  U_p        = 0.2190
  lambda     = 0.2229
  lambda_net = 0.0445
  S_obs      = 11.455
  L_obs      = 3.696
  cycle      = 8.973
  util: mem 0.325, sw_in 0.210, sw_out 0.183, su 0.000
  queue: proc 0.266, mem 0.812, net 1.213
  U_p 95% CI: 0.2190 +- 0.0411 (17045 events, 1771 remote trips)
  faults[switch]: 70 failures over 8 stations, downtime 3792.3 (unavail 0.0948, mean outage 54.2)
  faults[memory]: 33 failures over 4 stations, downtime 2005.9 (unavail 0.1003, mean outage 60.8)
  exit: 0

The STPN engine applies the same plan quasi-statically:

  $ ../bin/mms_cli.exe simulate -k 2 --threads 2 --engine stpn --horizon 2000 --fault-mtbf 900 --fault-mttr 100 --fault-target memory | head -n 3
  MMS torus 2x2: n_t=2 R=1 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1
  fault plan: memory: mtbf=900 mttr=100 degrade=0 (avail 0.9000, slowdown 1.1111)
  
