The command-line interface, exercised end to end on deterministic
(analytical) commands.  Keep the configurations tiny so output stays stable.

Closed-form bottleneck analysis reproduces the paper's anchors:

  $ ../bin/mms_cli.exe bottleneck
  MMS torus 4x4: n_t=8 R=1 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1
  d_avg=1.733 lambda_net_sat=0.2885 p_remote*: critical=0.183 saturation=0.288 mem demand=1.000 U_p cap=1.000

Solving a small machine:

  $ ../bin/mms_cli.exe solve -k 2 --threads 2 --p-remote 0.5
  MMS torus 2x2: n_t=2 R=1 C=0 p_remote=0.5 geometric(p_sw=0.5) L=1 S=1
  
  U_p        = 0.3283
  lambda     = 0.3283
  lambda_net = 0.1642
  S_obs      = 3.517
  L_obs      = 1.378
  cycle      = 6.091
  util: mem 0.328, sw_in 0.438, sw_out 0.328, su 0.000
  queue: proc 0.393, mem 0.452, net 1.155

Tolerance indices and zones:

  $ ../bin/mms_cli.exe tolerance -k 2 --threads 2 --p-remote 0.5 | tail -n 2
  tol_network = 0.4925 (U_p 0.3283 vs ideal 0.6667; not tolerated; ideal via p_remote = 0)
  tol_memory = 0.8430 (U_p 0.3283 vs ideal 0.3895; tolerated; ideal via zero delay)

Sweeps emit CSV:

  $ ../bin/mms_cli.exe sweep --param n_t --from 1 --to 3 --steps 3 -k 2 | head -n 2
  # MMS torus 2x2: n_t=8 R=1 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1
  param,value,u_p,lambda,lambda_net,s_obs,l_obs,tol_network,tol_memory

Repeating --param/--from/--to/--steps sweeps a grid (first axis slowest),
and --jobs runs the sweep on several domains with byte-identical output:

  $ ../bin/mms_cli.exe sweep --param n_t --from 1 --to 2 --steps 2 --param p_remote --from 0.2 --to 0.4 --steps 2 -k 2
  # MMS torus 2x2: n_t=8 R=1 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1
  n_t,p_remote,u_p,lambda,lambda_net,s_obs,l_obs,tol_network,tol_memory
  1,0.2,0.314841,0.314841,0.062968,2.608814,1.132679,0.629682,0.664436
  1,0.4,0.229072,0.229072,0.091629,2.758453,1.158674,0.458144,0.764967
  2,0.2,0.497778,0.497778,0.099556,2.927026,1.515684,0.746667,0.709251
  2,0.4,0.374094,0.374094,0.149638,3.363292,1.425530,0.561141,0.807334

  $ ../bin/mms_cli.exe sweep --param n_t --from 1 --to 3 --steps 3 -k 2 --jobs 2 | tail -n 2
  n_t,2,0.497778,0.497778,0.099556,2.927026,1.515684,0.746667,0.709251
  n_t,3,0.612947,0.612947,0.122589,3.173810,1.933872,0.817263,0.747068

--chunk tunes how many grid points a worker claims per queue operation
without affecting the bytes (the default is guided sizing); zero is
rejected:

  $ ../bin/mms_cli.exe sweep --param n_t --from 1 --to 3 --steps 3 -k 2 --jobs 2 --chunk 1 | tail -n 2
  n_t,2,0.497778,0.497778,0.099556,2.927026,1.515684,0.746667,0.709251
  n_t,3,0.612947,0.612947,0.122589,3.173810,1.933872,0.817263,0.747068
  $ ../bin/mms_cli.exe sweep --param n_t --from 1 --to 3 --steps 3 -k 2 --jobs 2 --chunk 0 2>&1 | head -n 1
  mms_cli: --chunk must be at least 1

The simulator fans replications out over independent random streams split
from the root seed; the report is identical for every --jobs value:

  $ ../bin/mms_cli.exe simulate -k 2 --threads 2 --horizon 2000 --replications 3 --jobs 2
  MMS torus 2x2: n_t=2 R=1 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1
  
  replications: 3 (des)
  rep 1: U_p=0.516639 lambda=0.517125
  rep 2: U_p=0.511162 lambda=0.496125
  rep 3: U_p=0.518289 lambda=0.514125
  U_p 95% CI: 0.5154 +- 0.0093 across replications
  lambda 95% CI: 0.5091 +- 0.0282 across replications


Invalid parameters are rejected with a clear message:

  $ ../bin/mms_cli.exe solve --p-remote 1.5 2>&1 | head -n 1
  mms_cli: p_remote 1.5 must lie in [0, 1]

Unknown solvers too:

  $ ../bin/mms_cli.exe solve --solver magic 2>&1 | head -n 2 | tr -s ' '
  mms_cli: option '--solver': unknown solver "magic"
  Usage: mms_cli solve [OPTION]…

The kernel suite:

  $ ../bin/mms_cli.exe kernels -k 2 --threads 2 -R 2 | head -n 5
  MMS torus 2x2: n_t=2 R=2 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1, kernel compute fraction 0.6
  
    kernel                      U_p lambda_net    S_obs  tol_net
    nearest-neighbour        0.6366     0.1273    2.522   0.7531
    transpose                0.7095     0.0574    3.624   0.8393

Reports carry a verdict:

  $ ../bin/mms_cli.exe report -k 2 --threads 2 | grep verdict
  verdict     memory-bound

Supervised solve on a healthy configuration: one attempt, clean cross-check,
exit code 0:

  $ ../bin/mms_cli.exe solve -k 2 --threads 2 --supervise; echo "exit: $?"
  MMS torus 2x2: n_t=2 R=1 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1
  
  supervisor: 1 attempt, 0 fallbacks
    #1 symmetric damping=0 budget=2000: converged in 14 sweeps
  bound cross-check: ok
  
  U_p        = 0.4978
  lambda     = 0.4978
  lambda_net = 0.0996
  S_obs      = 2.927
  L_obs      = 1.516
  cycle      = 4.018
  util: mem 0.498, sw_in 0.265, sw_out 0.199, su 0.000
  queue: proc 0.663, mem 0.754, net 0.583
  exit: 0

An ill-conditioned configuration under a tiny iteration budget climbs the
escalation ladder and converges after fallbacks (exit code 3):

  $ ../bin/mms_cli.exe solve --threads 10 --p-remote 0.9 --supervise --budget-iterations 8 2>/dev/null; echo "exit: $?"
  MMS torus 4x4: n_t=10 R=1 C=0 p_remote=0.9 geometric(p_sw=0.5) L=1 S=1
  
  supervisor: 4 attempts, 3 fallbacks
    #1 symmetric damping=0 budget=8: failed (iteration cap) after 8 sweeps
    #2 symmetric damping=0.5 budget=16: failed (iteration cap) after 16 sweeps
    #3 symmetric damping=0.9 budget=32: failed (iteration cap) after 32 sweeps
    #4 amva damping=0 budget=64: converged in 33 sweeps
  bound cross-check: ok
  
  U_p        = 0.2890
  lambda     = 0.2890
  lambda_net = 0.2601
  S_obs      = 17.691
  L_obs      = 1.402
  cycle      = 34.597
  util: mem 0.289, sw_in 0.902, sw_out 0.520, su 0.000
  queue: proc 0.391, mem 0.405, net 9.204
  exit: 3

The same configuration under a CPU budget too small for even the first
rung exhausts the whole ladder: no trustworthy solution, exit code 4:

  $ ../bin/mms_cli.exe solve --threads 10 --p-remote 0.9 --supervise --budget-iterations 8 --budget-time 0.000001 2>/dev/null; echo "exit: $?"
  MMS torus 4x4: n_t=10 R=1 C=0 p_remote=0.9 geometric(p_sw=0.5) L=1 S=1
  
  supervisor: 0 attempts, 0 fallbacks
  bound cross-check: skipped (no accepted solution)
  supervisor: no trustworthy solution
  exit: 4


The supervisor's exit codes compose with the fault-injection flags as a
vet-then-simulate pipeline.  Exit 3 (converged after fallback) still
vouches for the configuration, so a gate accepting 0 and 3 lets the
fault study proceed — and the study's own exit code reflects only the
fault-stats reporting (0): degraded analysis and degraded hardware are
independent verdicts:

  $ ../bin/mms_cli.exe solve --threads 10 --p-remote 0.9 --supervise --budget-iterations 8 >/dev/null 2>&1; vet=$?
  $ echo "vet: $vet"
  vet: 3
  $ [ "$vet" -le 3 ] && ../bin/mms_cli.exe simulate --threads 10 --p-remote 0.9 --horizon 2000 --fault-mtbf 800 --fault-mttr 80 --fault-degrade 0.5 --fault-target switch 2>&1 | tail -n 2; echo "exit: $?"
  U_p 95% CI: 0.2507 +- 0.0116 (87552 events, 14592 remote trips)
  faults[switch]: 78 failures over 32 stations, downtime 7120.7 (unavail 0.1113, mean outage 91.3)
  exit: 0

Exit code 4 is an abort: the same gate stops the pipeline before any
fault simulation runs on a configuration no solver vouches for:

  $ ../bin/mms_cli.exe solve --threads 10 --p-remote 0.9 --supervise --budget-iterations 8 --budget-time 0.000001 >/dev/null 2>&1; vet=$?
  $ echo "vet: $vet"
  vet: 4
  $ [ "$vet" -le 3 ] && ../bin/mms_cli.exe simulate --threads 10 --p-remote 0.9 --fault-mtbf 800 --fault-mttr 80; echo "exit: $?"
  exit: 1

Fault plans must be well formed:

  $ ../bin/mms_cli.exe simulate --fault-mtbf 500 --fault-mttr 50 --fault-degrade 1.5 2>&1 | head -n 1
  mms_cli: switch fault: degrade 1.5 must lie in [0, 1]

Fault injection in the DES reports per-component downtime statistics:

  $ ../bin/mms_cli.exe simulate -k 2 --threads 2 --horizon 5000 --fault-mtbf 500 --fault-mttr 50; echo "exit: $?"
  MMS torus 2x2: n_t=2 R=1 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1
  fault plan: switch: mtbf=500 mttr=50 degrade=0 (avail 0.9091, slowdown 1.1000); memory: mtbf=500 mttr=50 degrade=0 (avail 0.9091, slowdown 1.1000)
  
  U_p        = 0.2190
  lambda     = 0.2229
  lambda_net = 0.0445
  S_obs      = 11.455
  L_obs      = 3.696
  cycle      = 8.973
  util: mem 0.325, sw_in 0.210, sw_out 0.183, su 0.000
  queue: proc 0.266, mem 0.812, net 1.213
  U_p 95% CI: 0.2190 +- 0.0411 (17045 events, 1771 remote trips)
  faults[switch]: 70 failures over 8 stations, downtime 3792.3 (unavail 0.0948, mean outage 54.2)
  faults[memory]: 33 failures over 4 stations, downtime 2005.9 (unavail 0.1003, mean outage 60.8)
  exit: 0

The STPN engine applies the same plan quasi-statically:

  $ ../bin/mms_cli.exe simulate -k 2 --threads 2 --engine stpn --horizon 2000 --fault-mtbf 900 --fault-mttr 100 --fault-target memory | head -n 3
  MMS torus 2x2: n_t=2 R=1 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1
  fault plan: memory: mtbf=900 mttr=100 degrade=0 (avail 0.9000, slowdown 1.1111)
  

Solving with telemetry sinks: the registry lands in CSV (extension-driven),
the solver's residual trajectory in JSONL:

  $ ../bin/mms_cli.exe solve -k 2 --threads 2 --metrics-out metrics.csv --trace-out solver.jsonl > /dev/null
  $ head -n 3 metrics.csv
  name,labels,type,field,value
  u_p,,gauge,value,0.497777988955
  lambda,,gauge,value,0.497777988955
  $ head -n 2 solver.jsonl
  {"attempt":1,"label":"","solver":"symmetric","damping":0,"budget":10000,"iterations":18,"converged":true,"reason":null,"samples":17,"dropped":0}
  {"attempt":1,"iteration":1,"residual":0.453748782863}

Sweeps accept the same sinks; the solver trace is labeled per sweep point
and the metrics CSV/JSON carries one labeled series family per measure:

  $ ../bin/mms_cli.exe sweep --param n_t --from 1 --to 3 --steps 3 -k 2 --metrics-out sweep_metrics.json --trace-out sweep_trace.csv
  # MMS torus 2x2: n_t=8 R=1 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1
  param,value,u_p,lambda,lambda_net,s_obs,l_obs,tol_network,tol_memory
  n_t,1,0.314841,0.314841,0.062968,2.608814,1.132679,0.629682,0.664436
  n_t,2,0.497778,0.497778,0.099556,2.927026,1.515684,0.746667,0.709251
  n_t,3,0.612947,0.612947,0.122589,3.173810,1.933872,0.817263,0.747068
  $ head -n 2 sweep_trace.csv
  attempt,label,solver,damping,iteration,residual
  1,n_t=1,symmetric,0,1,0.218979806233
  $ grep -c '"name":"u_p"' sweep_metrics.json
  3

The DES emits a Chrome trace (one complete event per span, loadable in
Perfetto) and a metrics registry:

  $ ../bin/mms_cli.exe simulate -k 2 --threads 2 --horizon 2000 --metrics-out sim_metrics.json --trace-out t.json | tail -n 2
  trace: 17098 spans -> t.json
  metrics: 42 series -> sim_metrics.json
  $ head -c 16 t.json; echo
  {"traceEvents":[
  $ tail -n 1 t.json
  ],"displayTimeUnit":"ms"}
  $ grep -c '"ph":"X"' t.json
  17098
  $ grep '"process_name"' t.json | head -n 1
  {"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"node0"}},
  $ grep -c '"name":"station_util"' sim_metrics.json
  16

Telemetry flags require the DES engine:

  $ ../bin/mms_cli.exe simulate --engine stpn --trace-out t2.json 2>&1 | head -n 1
  mms_cli: --metrics-out/--trace-out require --engine des

The profile command folds the span stream into the paper's latency
breakdown, holds it against the analytical model, and cross-checks the
empirical tolerance index (real vs ideal run) against the prediction:

  $ ../bin/mms_cli.exe profile --horizon 2000 --warmup 500; echo "exit: $?"
  MMS torus 4x4: n_t=8 R=1 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1
  
  latency profile: P=16, window 2000, 27060 activations
    component               total     count      mean    share  per-cycle
    compute               26904.7     27060     0.994    10.5%      0.994
    ready-queue           62127.3     21856     2.843    24.3%      2.296
    switch-queue          29396.4     14247     2.063    11.5%      1.086
    network-transit       29421.7     29359     1.002    11.5%      1.087
    memory-queue          80984.2     22452     3.607    31.6%      2.993
    memory-service        27218.9     27060     1.006    10.6%      1.006
    U_p = 0.8408, lambda = 0.8456, S_obs = 5.464, L_obs = 3.999
  
  measured vs analytical model:
              empirical      model
    U_p          0.8408     0.8436
    lambda       0.8456     0.8436
    S_obs        5.4644     5.5456
    L_obs        3.9986     3.8900
  
  empirical network tolerance: 0.9499 +- 0.0166
    U_p real  = 0.8411 +- 0.0111
    U_p ideal = 0.8855 +- 0.0101
  analytical tolerance = 0.9491 -> within CI: yes
  exit: 0

The bench command writes schema-versioned perf-trajectory documents; the
numbers are machine-local, so only the envelope is locked here:

  $ ../bin/mms_cli.exe bench --quick --suite solvers
  wrote ./BENCH_solvers.json (30 metrics)
  $ head -4 BENCH_solvers.json
  {
    "schema": "lattol-bench/1",
    "suite": "solvers",
    "quick": true,

bench_compare gates a run against a baseline: a document is always
within tolerance of itself,

  $ ../tools/bench_compare.exe BENCH_solvers.json BENCH_solvers.json
  suite solvers: 30 metrics within 50%, 0 beyond, 0 missing, 0 added

a vanished metric fails the gate while an added one is only reported,

  $ sed 's,solvers/exact_2x2/time,solvers/exact_2x2/time_x,' BENCH_solvers.json > perturbed.json
  $ ../tools/bench_compare.exe BENCH_solvers.json perturbed.json
  suite solvers: 29 metrics within 50%, 0 beyond, 1 missing, 1 added
    MISSING solvers/exact_2x2/time (was in the baseline)
    new metric solvers/exact_2x2/time_x (not gated)
  [1]

and comparing documents from different suites is a usage error:

  $ ../bin/mms_cli.exe bench --quick --suite exec --out-dir . > /dev/null
  $ ../tools/bench_compare.exe BENCH_solvers.json BENCH_exec.json
  bench_compare: suite mismatch: "solvers" vs "exec"
  [2]

Floors gate one-sided: a metric may drift up freely but must not fall
below its minimum (a parallel speedup halving is a regression the
symmetric drift check cannot see).  Fixture documents keep the values
deterministic here; CI hard-gates the live exec suite's pool-dispatch
speedup with exactly this flag:

  $ cat > floor_base.json <<'EOF'
  > {
  >   "schema": "lattol-bench/1",
  >   "suite": "demo",
  >   "quick": true,
  >   "metrics": [
  >     {"name": "demo/speedup_j2", "unit": "x", "value": 1.8},
  >     {"name": "demo/hit_rate", "unit": "ratio", "value": 1}
  >   ]
  > }
  > EOF
  $ sed 's/1\.8/0.9/' floor_base.json > floor_slow.json

A held floor is silent; a broken one names the shortfall and fails:

  $ ../tools/bench_compare.exe --floor demo/speedup_j2=1.5 floor_base.json floor_base.json
  suite demo: 2 metrics within 50%, 0 beyond, 0 missing, 0 added
  $ ../tools/bench_compare.exe --floor demo/speedup_j2=1.5 floor_base.json floor_slow.json
  suite demo: 2 metrics within 50%, 0 beyond, 0 missing, 0 added
    FLOOR demo/speedup_j2: 0.9 < 1.5
  [1]

--warn-floors downgrades broken floors to warnings (the fence is visible
in the log but does not gate yet):

  $ ../tools/bench_compare.exe --warn-floors --floor demo/speedup_j2=1.5 floor_base.json floor_slow.json
  suite demo: 2 metrics within 50%, 0 beyond, 0 missing, 0 added
    WARN demo/speedup_j2: 0.9 < 1.5

A floor naming a metric absent from the current document is a failure —
a vanished speedup metric must not slip past its fence:

  $ ../tools/bench_compare.exe --floor demo/gone=1 floor_base.json floor_slow.json
  suite demo: 2 metrics within 50%, 0 beyond, 0 missing, 0 added
    FLOOR demo/gone: metric absent from floor_slow.json
  [1]

and malformed floor specs are usage errors:

  $ ../tools/bench_compare.exe --floor demo/speedup_j2 floor_base.json floor_base.json 2>&1 | head -1
  bad --floor "demo/speedup_j2" (expected NAME=MIN)
  $ ../tools/bench_compare.exe --floor demo/speedup_j2=fast floor_base.json floor_base.json 2>&1 | head -1
  bad --floor value "fast"

Ceilings are the mirror gate for metrics where drifting UP is the
regression — allocation counts.  The solvers suite now carries
per-subject minor/major/promoted word deltas, and CI fences the
simulators' allocation warn-only until the ROADMAP item 3 diet lands:

  $ ../tools/bench_compare.exe --ceiling demo/hit_rate=1.0 floor_base.json floor_base.json
  suite demo: 2 metrics within 50%, 0 beyond, 0 missing, 0 added
  $ ../tools/bench_compare.exe --ceiling demo/speedup_j2=1.5 floor_base.json floor_base.json
  suite demo: 2 metrics within 50%, 0 beyond, 0 missing, 0 added
    CEILING demo/speedup_j2: 1.8 > 1.5
  [1]
  $ ../tools/bench_compare.exe --warn-ceilings --ceiling demo/speedup_j2=1.5 floor_base.json floor_base.json
  suite demo: 2 metrics within 50%, 0 beyond, 0 missing, 0 added
    WARN demo/speedup_j2: 1.8 > 1.5
  $ ../tools/bench_compare.exe --ceiling demo/gone=1 floor_base.json floor_base.json
  suite demo: 2 metrics within 50%, 0 beyond, 0 missing, 0 added
    CEILING demo/gone: metric absent from floor_base.json
  [1]
  $ ../tools/bench_compare.exe --ceiling demo/speedup_j2=fast floor_base.json floor_base.json 2>&1 | head -1
  bad --ceiling value "fast"

--warn-drift inverts the gate for wall-clock suites on noisy runners:
symmetric drift (and vanished metrics) report as warnings and never
fail — the exit code reflects only the hard floors and ceilings.  A
wild swing in an absolute time:

  $ sed 's/1\.8/5.0/' floor_base.json > drifted.json
  $ ../tools/bench_compare.exe floor_base.json drifted.json
  suite demo: 1 metrics within 50%, 1 beyond, 0 missing, 0 added
    DRIFT demo/speedup_j2: 1.8 -> 5 (178% > 50%) [regressed]
  [1]

stops failing under --warn-drift,

  $ ../tools/bench_compare.exe --warn-drift floor_base.json drifted.json
  suite demo: 1 metrics within 50%, 1 beyond, 0 missing, 0 added
    WARN demo/speedup_j2: 1.8 -> 5 (178% > 50%) [regressed]

as does a renamed (vanished) metric,

  $ sed 's,demo/speedup_j2,demo/speedup_2x,' floor_base.json > renamed.json
  $ ../tools/bench_compare.exe --warn-drift floor_base.json renamed.json
  suite demo: 1 metrics within 50%, 0 beyond, 1 missing, 1 added
    WARN missing demo/speedup_j2 (was in the baseline)
    new metric demo/speedup_2x (not gated)

but a floor stays hard — this combination (drift advisory, speedup
floor binding) is the exec gate CI runs on every push:

  $ ../tools/bench_compare.exe --warn-drift --floor demo/speedup_j2=1.5 floor_base.json drifted.json
  suite demo: 1 metrics within 50%, 1 beyond, 0 missing, 0 added
    WARN demo/speedup_j2: 1.8 -> 5 (178% > 50%) [regressed]
  $ ../tools/bench_compare.exe --warn-drift --floor demo/speedup_j2=1.5 floor_base.json floor_slow.json
  suite demo: 2 metrics within 50%, 0 beyond, 0 missing, 0 added
    FLOOR demo/speedup_j2: 0.9 < 1.5
  [1]

--json replaces the human report with one machine-readable document —
every metric's status plus the exit code the process returns, so a CI
dashboard can ingest the gate's full picture without scraping text.
Exit semantics are unchanged:

  $ ../tools/bench_compare.exe --json --floor demo/speedup_j2=1.5 --ceiling demo/hit_rate=1.0 floor_base.json floor_slow.json
  {
    "schema": "lattol-bench-compare/1",
    "suite": "demo",
    "max_rel": 0.5,
    "exit": 1,
    "entries": [
      {"name": "demo/speedup_j2", "status": "ok", "base": 1.8, "current": 0.9, "rel": 0.5},
      {"name": "demo/hit_rate", "status": "ok", "base": 1, "current": 1, "rel": 0},
      {"name": "demo/speedup_j2", "status": "floor", "bound": 1.5, "current": 0.9, "ok": false},
      {"name": "demo/hit_rate", "status": "ceiling", "bound": 1, "current": 1, "ok": true}
    ]
  }
  [1]
  $ ../tools/bench_compare.exe --json --warn-drift floor_base.json renamed.json
  {
    "schema": "lattol-bench-compare/1",
    "suite": "demo",
    "max_rel": 0.5,
    "exit": 0,
    "entries": [
      {"name": "demo/hit_rate", "status": "ok", "base": 1, "current": 1, "rel": 0},
      {"name": "demo/speedup_j2", "status": "missing"},
      {"name": "demo/speedup_2x", "status": "added", "current": 1.8}
    ]
  }

The runtime profiler: `mms prof` runs a workload under a Runtime_events
consumer on a sampler domain and prints a bottleneck-attribution table —
per-domain wall time split into compute / GC / queue-idle / spawn with a
verdict naming the dominant scaling limiter.  The numbers are
machine-local, so the cram locks the output shape and the partition
invariant (the four buckets must cover each domain's wall time):

  $ ../bin/mms_cli.exe prof --jobs 2 --replications 4 --horizon 1500 --trace-out prof_trace.json --metrics-out prof_metrics.json > prof.out; echo "exit: $?"
  exit: 0
  $ grep -c '^profiling replicate (des): 4 replications, jobs 2$' prof.out
  1
  $ grep -Ec '^runtime profile: [0-9]+ domains? over [0-9.]+ms$' prof.out
  1
  $ grep -E '^domain [0-9]+: wall' prof.out | awk '{s=$6+$8+$10+$12; print (s>99 && s<101) ? "partition covers the wall" : "broken: "$0}' | sort -u
  partition covers the wall
  $ grep -Ec '^executor tolerance: [01]\.[0-9]{3} \(compute fraction of total domain time\)$' prof.out
  1
  $ grep -Ec '^verdict: (gc-bound|queue-starved|spawn-bound|compute-bound) ' prof.out
  1
  $ grep -Ec '^trace: [0-9]+ spans -> prof_trace.json$' prof.out
  1
  $ grep -Ec '^metrics: [0-9]+ series -> prof_metrics.json$' prof.out
  1

The merged Chrome trace interleaves the runtime's GC spans with the
pool's task and worker spans on per-domain tracks of one synthetic
"ocaml-runtime" process, and the metrics document carries the runtime_*
families the exporter also serves:

  $ grep -c '"ocaml-runtime"' prof_trace.json
  1
  $ for c in gc task worker; do grep -q "\"cat\":\"$c\"" prof_trace.json && echo "$c spans present"; done
  gc spans present
  task spans present
  worker spans present
  $ for f in runtime_domain_wall_ns runtime_domain_gc_fraction runtime_gc_pause_ms runtime_minor_allocated_words_total runtime_tolerance runtime_verdict; do grep -q $f prof_metrics.json && echo "$f present"; done
  runtime_domain_wall_ns present
  runtime_domain_gc_fraction present
  runtime_gc_pause_ms present
  runtime_minor_allocated_words_total present
  runtime_tolerance present
  runtime_verdict present

--profile-runtime piggybacks the same profiler onto a regular command;
the attribution table lands on stderr so golden stdout (the CSV) stays
byte-identical to an unprofiled run:

  $ ../bin/mms_cli.exe sweep --param n_t --from 1 --to 3 --steps 3 -k 2 --jobs 2 --profile-runtime > profiled.csv 2> profiled.err
  $ ../bin/mms_cli.exe sweep --param n_t --from 1 --to 3 --steps 3 -k 2 --jobs 2 > plain.csv
  $ diff profiled.csv plain.csv
  $ grep -Ec '^verdict: (gc-bound|queue-starved|spawn-bound|compute-bound) ' profiled.err
  1

Causal tracing: --causal-trace attaches a trace recorder to a sweep and
writes a critical-path report — per-point span trees, wall time split
into queue / cache-wait / solve / journal, a bottleneck verdict per
point — while the CSV on stdout stays byte-identical to an untraced run:

  $ ../bin/mms_cli.exe sweep --param n_t --from 1 --to 3 --steps 3 -k 2 --jobs 2 --causal-trace sweep_causal.json > traced.csv
  $ diff traced.csv plain.csv
  $ grep -c '"schema":"lattol-trace/1"' sweep_causal.json
  1
  $ grep -Ec '"verdict":"(queue|cache-wait|solve|journal|untracked)"' sweep_causal.json
  1

`mms trace` runs a whole figure grid under the recorder and renders the
waterfall as a table: one row per grid point, a TOTAL row, and a
--slowest digest linking the worst points back to their exemplar trace
ids.  Timings are machine-local, so the cram locks the shape:

  $ ../bin/mms_cli.exe trace --figure saturation --jobs 2 --slowest 2 --json trace.json --chrome trace_chrome.json > trace.out; echo "exit: $?"
  exit: 0
  $ grep -Ec '^point +label +wall ms' trace.out
  1
  $ grep -c '^saturation/' trace.out
  21
  $ grep -Ec '^TOTAL ' trace.out
  1
  $ grep -Ec '^trace trace-saturation-[0-9a-f]+: 21 points, [0-9]+ spans, run wall [0-9.]+ ms, verdict (queue|cache-wait|solve|journal|untracked)$' trace.out
  1
  $ grep -c '^slowest points:$' trace.out
  1
  $ grep -Ec '^    trace: trace-saturation-[0-9a-f]+/saturation/[0-9]+$' trace.out
  2
  $ grep -c '"schema":"lattol-trace/1"' trace.json
  1
  $ head -c 16 trace_chrome.json
  {"traceEvents":[

Every row's categories must reconcile with its measured wall time (the
attribution is exact in integer nanoseconds; the printed figures carry
3 decimals, so the fence is 1e-2 ms of rounding slack):

  $ grep '^saturation/' trace.out | awk '{d=$3-($4+$5+$6+$7+$8); if (d<0) d=-d; if (d>0.01) {print "broken: "$0; bad=1}} END {print (bad ? "mismatch" : "per-point totals reconcile")}'
  per-point totals reconcile

and an unknown figure name is rejected with the available set:

  $ ../bin/mms_cli.exe trace --figure nope 2>&1 | head -n 1
  mms_cli: unknown figure nope (available: fig04_grid, fig05_grid, fig06_tolerance, saturation)
