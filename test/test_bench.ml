(* Gate arithmetic for the perf-trajectory harness (Bench_json): the
   floor/ceiling bounds CI hard-gates on, and the relative-drift
   comparison around them.  These are edge-case tests — the happy path is
   cram-covered through tools/bench_compare in cli.t. *)

open Lattol_bench

let doc metrics =
  {
    Bench_json.suite = "t";
    quick = true;
    metrics =
      List.map
        (fun (name, value) -> { Bench_json.name; units = "x"; value })
        metrics;
  }

let result =
  let pp fmt = function
    | Bench_json.Holds -> Format.fprintf fmt "Holds"
    | Bench_json.Broken v -> Format.fprintf fmt "Broken %h" v
    | Bench_json.Absent -> Format.fprintf fmt "Absent"
  in
  let eq a b =
    match (a, b) with
    | Bench_json.Holds, Bench_json.Holds | Bench_json.Absent, Bench_json.Absent
      ->
      true
    (* bitwise, so Broken nan = Broken nan *)
    | Bench_json.Broken x, Bench_json.Broken y ->
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
    | _ -> false
  in
  Alcotest.testable pp eq

let third (_, _, r) = r

let check_floor d bound = third (Bench_json.check_floor d bound)
let check_ceiling d bound = third (Bench_json.check_ceiling d bound)

let test_floor_edges () =
  let d = doc [ ("s", 1.7); ("z", 0.); ("n", nan) ] in
  Alcotest.check result "above the floor holds" Bench_json.Holds
    (check_floor d ("s", 1.5));
  Alcotest.check result "exactly at the floor holds" Bench_json.Holds
    (check_floor d ("s", 1.7));
  Alcotest.check result "below the floor breaks" (Bench_json.Broken 1.7)
    (check_floor d ("s", 1.8));
  Alcotest.check result "zero against a positive floor breaks"
    (Bench_json.Broken 0.) (check_floor d ("z", 0.1));
  Alcotest.check result "zero floor met by zero" Bench_json.Holds
    (check_floor d ("z", 0.));
  (* A benchmark that failed to produce an estimate must never pass a
     one-sided gate. *)
  Alcotest.check result "NaN never satisfies a floor" (Bench_json.Broken nan)
    (check_floor d ("n", 0.));
  Alcotest.check result "missing metric is Absent, not a pass"
    Bench_json.Absent
    (check_floor d ("ghost", 1.))

let test_ceiling_edges () =
  let d = doc [ ("t", 120.); ("n", nan) ] in
  Alcotest.check result "below the ceiling holds" Bench_json.Holds
    (check_ceiling d ("t", 150.));
  Alcotest.check result "exactly at the ceiling holds" Bench_json.Holds
    (check_ceiling d ("t", 120.));
  Alcotest.check result "above the ceiling breaks" (Bench_json.Broken 120.)
    (check_ceiling d ("t", 100.));
  Alcotest.check result "NaN never satisfies a ceiling" (Bench_json.Broken nan)
    (check_ceiling d ("n", 1e9));
  Alcotest.check result "missing metric is Absent" Bench_json.Absent
    (check_ceiling d ("ghost", 1.))

let names ds = List.map (fun d -> d.Bench_json.metric) ds

let test_compare_drift_edges () =
  let base = doc [ ("a", 100.); ("zero", 0.); ("gone", 1.) ] in
  let current = doc [ ("a", 109.); ("zero", 0.); ("new", 5.) ] in
  let c = Bench_json.compare_docs ~max_rel:0.10 ~base ~current in
  Alcotest.(check (list string)) "9% on a 10% gate is within"
    [ "a"; "zero" ] (List.sort compare (names c.Bench_json.within));
  Alcotest.(check (list string)) "no regressions" [] (names c.Bench_json.regressions);
  Alcotest.(check (list string)) "disappearance is reported" [ "gone" ]
    c.Bench_json.missing;
  Alcotest.(check (list string)) "additions are informational" [ "new" ]
    c.Bench_json.added;
  (* Zero baseline: any movement is infinite relative drift — it must
     regress, not divide by zero into a pass. *)
  let c2 =
    Bench_json.compare_docs ~max_rel:0.5
      ~base:(doc [ ("zero", 0.) ])
      ~current:(doc [ ("zero", 0.001) ])
  in
  Alcotest.(check (list string)) "movement off a zero baseline regresses"
    [ "zero" ] (names c2.Bench_json.regressions);
  (* A value decaying into NaN is infinite drift; NaN on both sides is a
     benchmark that never produced estimates — stable, not a regression
     (the one-sided bounds are what refuse NaN). *)
  let c3 =
    Bench_json.compare_docs ~max_rel:0.5
      ~base:(doc [ ("n", 1.); ("m", nan) ])
      ~current:(doc [ ("n", nan); ("m", nan) ])
  in
  Alcotest.(check (list string)) "decay into NaN regresses" [ "n" ]
    (names c3.Bench_json.regressions);
  Alcotest.(check (list string)) "NaN on both sides is stable" [ "m" ]
    (names c3.Bench_json.within)

let () =
  Alcotest.run "lattol_bench"
    [
      ( "bounds",
        [
          Alcotest.test_case "floor edges" `Quick test_floor_edges;
          Alcotest.test_case "ceiling edges" `Quick test_ceiling_edges;
        ] );
      ( "compare",
        [
          Alcotest.test_case "drift edges" `Quick test_compare_drift_edges;
        ] );
    ]
