(* lattol-lint: static-analysis driver enforcing the repo's determinism,
   float-safety, domain-safety, and hot-path invariants.  Phase 1 runs the
   per-file rule pack; phase 2 runs the whole-program analysis (call
   graph, mutable-state inventory, parallel/hot-region reachability) over
   every parsed unit in one invocation.  Exit 0 when clean, 1 on
   findings, 2 on usage or configuration errors. *)

open Lattol_lint

let usage =
  "lattol_lint [options] [paths...]\n\
   Walk OCaml sources (default roots: lib bin bench test tools examples)\n\
   and report rule violations.  Options:"

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("lattol-lint: " ^ s); exit 2) fmt

let list_rules () =
  List.iter
    (fun m ->
      Printf.printf "%-26s %-13s %s\n" m.Rules.id m.Rules.family m.Rules.summary)
    Rules.metas;
  exit 0

let () =
  let format = ref `Text in
  let rules_spec = ref "" in
  let config_file = ref None in
  let no_config = ref false in
  let stats = ref false in
  let root = ref "" in
  let baseline_file = ref "" in
  let paths = ref [] in
  let spec =
    [
      ( "--format",
        Arg.Symbol
          ([ "text"; "json"; "sarif" ],
           fun s ->
             format :=
               match s with
               | "json" -> `Json
               | "sarif" -> `Sarif
               | _ -> `Text),
        " output format (default text)" );
      ( "--rules",
        Arg.Set_string rules_spec,
        "SPEC comma-separated selection: 'id' selects only named rules, \
         '+id'/'-id' enable/disable" );
      ( "--config",
        Arg.String (fun s -> config_file := Some s),
        "FILE read policy from FILE (default: ./.lattol-lint when present)" );
      ("--no-config", Arg.Set no_config, " ignore any .lattol-lint file");
      ( "--baseline",
        Arg.Set_string baseline_file,
        "FILE accept-list of grandfathered findings ('rule path' per \
         line); stale entries are themselves findings" );
      ("--stats", Arg.Set stats, " print file and per-rule counts");
      ("--root", Arg.Set_string root, "DIR change to DIR before walking");
      ("--list-rules", Arg.Unit list_rules, " print the rule pack and exit");
    ]
  in
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  if !root <> "" then begin
    match Sys.chdir !root with
    | () -> ()
    | exception Sys_error msg -> die "--root: %s" msg
  end;
  let config =
    if !no_config then Lint_config.empty
    else
      match !config_file with
      | Some f -> (
        match Lint_config.load ~file:f with
        | Ok c -> c
        | Error msg -> die "config: %s" msg)
      | None ->
        if Sys.file_exists ".lattol-lint" then
          match Lint_config.load ~file:".lattol-lint" with
          | Ok c -> c
          | Error msg -> die "config: %s" msg
        else Lint_config.empty
  in
  let config =
    if !rules_spec = "" then config
    else
      match
        Lint_config.with_rules_spec ~known:Rules.rule_ids ~spec:!rules_spec
          config
      with
      | Ok c -> c
      | Error msg -> die "%s" msg
  in
  let baseline =
    if !baseline_file = "" then None
    else
      match Driver.load_baseline ~file:!baseline_file with
      | Ok b -> Some b
      | Error msg -> die "baseline: %s" msg
  in
  let roots =
    match List.rev !paths with
    | [] ->
      List.filter Sys.file_exists
        [ "lib"; "bin"; "bench"; "test"; "tools"; "examples" ]
    | ps -> ps
  in
  if roots = [] then die "no source roots found (run from the repo root?)";
  let result =
    match Driver.run ~config ?baseline ~roots () with
    | r -> r
    | exception Sys_error msg -> die "%s" msg
  in
  (match !format with
  | `Text -> Driver.print_text ~stats:!stats Format.std_formatter result
  | `Json -> Driver.print_json Format.std_formatter result
  | `Sarif -> Driver.print_sarif Format.std_formatter result);
  exit (if result.Driver.findings = [] then 0 else 1)
