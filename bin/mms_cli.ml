(* Command-line front end for the latency-tolerance toolkit.

   Subcommands:
     solve       evaluate the analytical model on one configuration
     tolerance   tolerance indices (network and memory)
     bottleneck  closed-form analysis (Eqs. 4 and 5)
     sweep       sweep one or more parameters (optionally in parallel), CSV to stdout
     figures     reproduce the paper's figure sweeps as cached CSV batches
     simulate    run the DES or STPN simulator (with parallel replications)
     partition   thread-partitioning table for a work budget
     sensitivity rank parameters by their effect on U_p
     report      everything above in one analysis

   Examples:
     mms_cli solve -k 4 --threads 8 --p-remote 0.2
     mms_cli sweep --param p_remote --from 0 --to 1 --steps 21
     mms_cli simulate --engine stpn --horizon 20000 --p-remote 0.5
     mms_cli sensitivity -k 6 --threads 8
*)

open Cmdliner
open Lattol_core

(* Verbosity: -v enables solver diagnostics on stderr — both the legacy
   Logs reporter (core solvers) and the structured JSONL logger
   (supervisor and friends), whose lines carry causal-trace ids. *)
let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning));
  Lattol_obs.Log.set_level
    (Some (if verbose then Lattol_obs.Log.Debug else Lattol_obs.Log.Warn))

let verbose_term =
  let arg =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print solver diagnostics.")
  in
  Term.(const setup_logs $ arg)

(* ------------------------------------------------------------------ *)
(* Shared parameter terms *)

let k_arg =
  Arg.(value & opt int 4 & info [ "k" ] ~docv:"K" ~doc:"Nodes per torus dimension.")

let dimensions_arg =
  Arg.(
    value & opt int 2
    & info [ "d"; "dimensions" ] ~docv:"D"
        ~doc:"Network dimensionality: 1 = ring, 2 = torus, 3 = cube, ...")

let threads_arg =
  Arg.(
    value
    & opt int 8
    & info [ "t"; "threads" ] ~docv:"N" ~doc:"Threads per processor (n_t).")

let runlength_arg =
  Arg.(
    value
    & opt float 1.
    & info [ "R"; "runlength" ] ~docv:"R" ~doc:"Mean thread runlength.")

let context_switch_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "C"; "context-switch" ] ~docv:"C" ~doc:"Context switch time.")

let p_remote_arg =
  Arg.(
    value
    & opt float 0.2
    & info [ "p"; "p-remote" ] ~docv:"P" ~doc:"Remote access probability.")

let p_sw_arg =
  Arg.(
    value
    & opt float 0.5
    & info [ "p-sw" ] ~docv:"PSW"
        ~doc:"Geometric locality parameter (ignored with $(b,--uniform)).")

let uniform_arg =
  Arg.(
    value & flag
    & info [ "uniform" ] ~doc:"Uniform remote access pattern instead of geometric.")

let l_mem_arg =
  Arg.(value & opt float 1. & info [ "L"; "mem" ] ~docv:"L" ~doc:"Memory service time.")

let mem_ports_arg =
  Arg.(
    value & opt int 1
    & info [ "mem-ports" ] ~docv:"C"
        ~doc:"Concurrent accesses a memory module serves (multiporting).")

let s_switch_arg =
  Arg.(
    value & opt float 1. & info [ "S"; "switch" ] ~docv:"S" ~doc:"Switch service time.")

let switch_pipeline_arg =
  Arg.(
    value & opt int 1
    & info [ "pipeline" ] ~docv:"D"
        ~doc:"Switch pipeline depth (concurrent messages per switch).")

let sync_unit_arg =
  Arg.(
    value & opt float 0.
    & info [ "su"; "sync-unit" ] ~docv:"T"
        ~doc:
          "EARTH-style synchronization unit service time per remote touch \
           (0 = no SU).")

let mesh_arg =
  Arg.(value & flag & info [ "mesh" ] ~doc:"Open mesh instead of a torus.")

let params_term =
  let open Lattol_topology in
  let make k dimensions n_t runlength context_switch p_remote p_sw uniform
      l_mem mem_ports s_switch switch_pipeline sync_unit mesh =
    let pattern = if uniform then Access.Uniform else Access.Geometric p_sw in
    let topology = if mesh then Topology.Mesh else Topology.Torus in
    match
      Params.validate
        {
          Params.topology;
          k;
          dimensions;
          n_t;
          runlength;
          context_switch;
          p_remote;
          pattern;
          l_mem;
          mem_ports;
          s_switch;
          switch_pipeline;
          sync_unit;
        }
    with
    | Ok p -> `Ok p
    | Error msg -> `Error (false, msg)
  in
  Term.(
    ret
      (const make $ k_arg $ dimensions_arg $ threads_arg $ runlength_arg
     $ context_switch_arg $ p_remote_arg $ p_sw_arg $ uniform_arg $ l_mem_arg
     $ mem_ports_arg $ s_switch_arg $ switch_pipeline_arg $ sync_unit_arg
     $ mesh_arg))

let solver_term =
  let conv_solver = function
    | "symmetric" -> Ok Mms.Symmetric_amva
    | "amva" -> Ok Mms.General_amva
    | "linearizer" -> Ok Mms.Linearizer_amva
    | "exact" -> Ok Mms.Exact_mva
    | s -> Error (`Msg (Printf.sprintf "unknown solver %S" s))
  in
  let parser s = conv_solver s in
  let printer ppf = function
    | Mms.Symmetric_amva -> Fmt.string ppf "symmetric"
    | Mms.General_amva -> Fmt.string ppf "amva"
    | Mms.Linearizer_amva -> Fmt.string ppf "linearizer"
    | Mms.Exact_mva -> Fmt.string ppf "exact"
  in
  Arg.(
    value
    & opt (some (conv (parser, printer))) None
    & info [ "solver" ] ~docv:"SOLVER"
        ~doc:
          "Solver: $(b,symmetric) (default on torus), $(b,amva), \
           $(b,linearizer), or $(b,exact).")

(* ------------------------------------------------------------------ *)
(* telemetry sinks (shared by solve, sweep, simulate, profile) *)

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's metrics registry to $(docv): long-form CSV when \
           the name ends in .csv, JSON otherwise.")

let trace_out_arg doc =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let solver_trace_doc =
  "Write solver telemetry (one attempt per solve with its residual \
   trajectory) to $(docv): CSV when the name ends in .csv, JSONL otherwise."

let span_trace_doc =
  "Write the simulation's span trace to $(docv) in Chrome trace-event JSON \
   (open in Perfetto or chrome://tracing)."

let with_out file f =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let write_metrics reg file =
  with_out file (fun oc ->
      if Filename.check_suffix file ".csv" then
        Lattol_obs.Metrics.write_csv reg oc
      else Lattol_obs.Metrics.write_json reg oc)

let write_solver_trace tel file =
  with_out file (fun oc ->
      if Filename.check_suffix file ".csv" then
        Lattol_obs.Solver_trace.write_csv tel oc
      else Lattol_obs.Solver_trace.write_jsonl tel oc)

let write_span_trace trace file =
  with_out file (fun oc -> Lattol_obs.Events.write_chrome trace oc)

module Exec = Lattol_exec

(* ------------------------------------------------------------------ *)
(* interrupted-run flushing

   A sink opened for --trace-out / --metrics-out registers a flusher here
   so a Ctrl-C'd run still leaves a valid (truncated) file behind.  The
   SIGINT handler turns the signal into [exit 130], which runs the
   [at_exit] hook; runs that complete normally unregister first and write
   their full files on the ordinary path. *)

let pending_flushes : (string, unit -> unit) Hashtbl.t = Hashtbl.create 4

let flush_on_exit file f = Hashtbl.replace pending_flushes file f

let flushed file = Hashtbl.remove pending_flushes file

let flush_pending () =
  Hashtbl.iter
    (fun _ f -> try f () with Sys_error _ | Unix.Unix_error _ -> ())
    pending_flushes;
  Hashtbl.reset pending_flushes

let () = at_exit flush_pending

let () = Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> exit 130))

(* ------------------------------------------------------------------ *)
(* live metrics exporter (--serve / --serve-socket) *)

module Serve = Lattol_serve

let serve_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "serve" ] ~docv:"PORT"
        ~doc:
          "Expose live metrics over HTTP on 127.0.0.1:$(docv) while the run \
           executes: $(b,/metrics) (Prometheus text), $(b,/metrics.json) \
           (the --metrics-out JSON document) and $(b,/healthz).  Port 0 \
           picks a free port; the bound address is printed on stderr.")

let serve_socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "serve-socket" ] ~docv:"PATH"
        ~doc:
          "Like $(b,--serve) but listening on a Unix-domain socket at \
           $(docv) (for sandboxes without loopback TCP).")

(* Run [k] with the exporter live, shutting it down afterwards.  Exit 124
   on a bind failure — nothing has been computed yet at that point. *)
let with_exporter ?health ?runtime ?trace ~serve ~serve_socket ~snapshot k =
  let endpoint =
    match (serve, serve_socket) with
    | Some _, Some _ ->
      prerr_endline "mms: --serve and --serve-socket are mutually exclusive";
      exit 124
    | Some port, None -> Some (Serve.Exporter.Tcp port)
    | None, Some path -> Some (Serve.Exporter.Unix_path path)
    | None, None -> None
  in
  match endpoint with
  | None -> k ()
  | Some endpoint -> (
    match Serve.Exporter.start ?health ?runtime ?trace ~snapshot endpoint with
    | Error msg ->
      Printf.eprintf "mms: %s\n%!" msg;
      exit 124
    | Ok exporter ->
      Printf.eprintf "serving metrics on %s\n%!"
        (Serve.Exporter.address exporter);
      Fun.protect ~finally:(fun () -> Serve.Exporter.stop exporter) k)

let write_metrics_snapshot snap file =
  with_out file (fun oc ->
      if Filename.check_suffix file ".csv" then
        Lattol_obs.Metrics.write_csv_snapshot snap oc
      else Lattol_obs.Metrics.write_json_snapshot snap oc)

(* ------------------------------------------------------------------ *)
(* causal tracing (--causal-trace / mms trace) *)

module Tc = Lattol_obs.Trace_ctx
module Trace_report = Lattol_obs.Trace_report

let causal_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "causal-trace" ] ~docv:"FILE"
        ~doc:
          "Record a causal trace of the run — per-point span trees through \
           the pool, cache, solver and journal — and write the \
           critical-path report to $(docv) as JSON.  Stdout is untouched: \
           the CSV stays byte-identical to an untraced run at any \
           $(b,--jobs).")

let causal_chrome_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "causal-chrome" ] ~docv:"FILE"
        ~doc:
          "Also write the causal trace's merged span timeline (one track \
           per grid point) to $(docv) in Chrome trace-event JSON (open in \
           Perfetto or chrome://tracing).  Implies causal tracing even \
           without $(b,--causal-trace).")

(* The /trace.json live probe: analyze the running trace on demand.
   analyze does not seal, so scrapes never freeze the root span. *)
let trace_probe recorder () =
  let b = Buffer.create 4096 in
  Trace_report.to_json b (Trace_report.analyze recorder);
  Buffer.contents b

let write_causal_report report file =
  with_out file (fun oc ->
      let b = Buffer.create 8192 in
      Trace_report.to_json b report;
      Buffer.add_char b '\n';
      output_string oc (Buffer.contents b))

let write_causal_chrome recorder file =
  with_out file (fun oc ->
      Lattol_obs.Events.write_chrome (Trace_report.to_events recorder) oc)

(* Exemplar-linked metrics: the per-point wall-time distribution, each
   bucket remembering the trace id of the last point that landed in it,
   so a fat histogram tail links straight to a concrete traced point. *)
let register_point_walls reg report =
  let h =
    Lattol_obs.Metrics.histogram reg ~hi:1000. ~bins:20
      ~help:"causal-traced point wall time (ms), buckets carry exemplars"
      "trace_point_wall_ms"
  in
  List.iter
    (fun p ->
      Lattol_obs.Metrics.record ~exemplar:p.Trace_report.p_trace_id h
        p.Trace_report.wall_ms)
    report.Trace_report.r_points

(* ------------------------------------------------------------------ *)
(* runtime profiler (mms prof / --profile-runtime) *)

module Rp = Lattol_obs.Runtime_profile

let profile_runtime_arg =
  Arg.(
    value & flag
    & info [ "profile-runtime" ]
        ~doc:
          "Run under the runtime profiler: a sampler domain consumes the \
           OCaml runtime's tracing rings (GC pauses, allocation counters, \
           pool task spans) and the per-domain bottleneck-attribution table \
           is printed to stderr when the run completes.  With \
           $(b,--serve), live $(b,runtime_*) counters join the scrape and \
           $(b,/runtime.json) answers.")

let start_runtime_profile enabled = if enabled then Some (Rp.start ()) else None

let runtime_scrape session = Option.map (fun s () -> Rp.live_json s) session

(* While profiling and serving, the live runtime counters join every
   scrape as runtime_* families. *)
let register_runtime_pulls progress session =
  Option.iter
    (fun s ->
      List.iter
        (fun (name, _) ->
          let kind =
            if Filename.check_suffix name "_total" then `Counter else `Gauge
          in
          Serve.Progress.register_pull progress ~kind name (fun () ->
              match List.assoc_opt name (Rp.live_counters s) with
              | Some v -> v
              | None -> 0.))
        (Rp.live_counters s))
    session

(* Stop the session and print the attribution table — to stderr by
   default so commands whose stdout is golden CSV stay golden. *)
let finish_runtime_profile ?(ppf = Format.err_formatter) session =
  Option.map
    (fun s ->
      let p = Rp.stop s in
      Format.fprintf ppf "%a@." Lattol_obs.Attribution.pp_report p.Rp.report;
      if p.Rp.lost_events > 0 then
        Format.fprintf ppf
          "warning: %d runtime events were overwritten before the sampler \
           read them — the attribution above undercounts@."
          p.Rp.lost_events;
      p)
    session

(* Bracket a non-pool workload (a single simulator run) in worker/task
   marks so its main-domain time reads as compute, not spawn overhead.
   No-ops when profiling is off. *)
let profiled_section f =
  Rp.worker_begin ();
  Rp.task_begin ();
  Fun.protect
    ~finally:(fun () ->
      Rp.task_end ();
      Rp.worker_end ())
    f

(* The exporter polls the solve cache on every scrape. *)
let register_cache_pulls progress cache =
  let stat f () = float_of_int (f (Exec.Cache.stats cache)) in
  Serve.Progress.register_pull progress ~kind:`Counter "cache_memo_hits"
    (stat (fun s -> s.Exec.Cache.memo_hits));
  Serve.Progress.register_pull progress ~kind:`Counter "cache_disk_hits"
    (stat (fun s -> s.Exec.Cache.disk_hits));
  Serve.Progress.register_pull progress ~kind:`Counter "cache_misses"
    (stat (fun s -> s.Exec.Cache.misses));
  Serve.Progress.register_pull progress ~kind:`Counter "cache_solves"
    (stat (fun s -> s.Exec.Cache.solves));
  Serve.Progress.register_pull progress "cache_inflight" (fun () ->
      float_of_int (Exec.Cache.inflight cache));
  Serve.Progress.register_pull progress ~kind:`Counter "cache_corrupt"
    (stat (fun s -> s.Exec.Cache.corrupt));
  Serve.Progress.register_pull progress ~kind:`Counter "cache_tmp_reclaimed"
    (stat (fun s -> s.Exec.Cache.tmp_reclaimed))

(* /healthz stops lying "ok" once the store has served us corruption:
   quarantined entries are self-healed (re-solved on demand) but the
   probe should surface that the disk is eating bytes. *)
let cache_health cache () =
  let s = Exec.Cache.stats cache in
  if s.Exec.Cache.corrupt > 0 then
    Some
      (Printf.sprintf "%d corrupt cache entries quarantined"
         s.Exec.Cache.corrupt)
  else None

(* Analytical measures as gauges, one labeled series family per field. *)
let register_measures reg ?labels (m : Measures.t) =
  let g name v =
    Lattol_obs.Metrics.set_gauge (Lattol_obs.Metrics.gauge reg ?labels name) v
  in
  g "u_p" m.Measures.u_p;
  g "lambda" m.Measures.lambda;
  g "lambda_net" m.Measures.lambda_net;
  g "s_obs" m.Measures.s_obs;
  g "l_obs" m.Measures.l_obs;
  g "cycle_time" m.Measures.cycle_time;
  g "util_memory" m.Measures.util_memory;
  g "util_switch_in" m.Measures.util_switch_in;
  g "util_switch_out" m.Measures.util_switch_out;
  g "queue_processor" m.Measures.queue_processor;
  g "queue_memory" m.Measures.queue_memory;
  g "queue_network" m.Measures.queue_network;
  g "sweeps" (float_of_int m.Measures.iterations)

(* [Mms.solve] with the sweeps routed into a solver-trace attempt. *)
let solve_with_telemetry ?solver ?telemetry ?label params =
  match telemetry with
  | Some tel when params.Params.n_t > 0 ->
    let open Lattol_queueing in
    let resolved =
      match solver with
      | Some s -> s
      | None ->
        if Mms.symmetric_applicable params then Mms.Symmetric_amva
        else Mms.General_amva
    in
    Lattol_obs.Solver_trace.start_attempt tel ?label
      ~budget:Amva.default_options.Amva.max_iterations
      ~solver:(Lattol_robust.Supervisor.solver_name resolved)
      ~damping:Amva.default_options.Amva.damping ();
    let on_sweep ~iteration ~residual =
      Lattol_obs.Solver_trace.record tel ~iteration ~residual;
      Amva.Continue
    in
    let solution = Mms.solve_network ~solver:resolved ~on_sweep params in
    Lattol_obs.Solver_trace.finish_attempt tel
      ~converged:solution.Solution.converged
      ~iterations:solution.Solution.iterations;
    Mms.measures_of_solution params solution
  | Some _ | None -> Mms.solve ?solver params

(* ------------------------------------------------------------------ *)
(* supervised solving (shared by solve and report) *)

let supervise_arg =
  Arg.(
    value & flag
    & info [ "supervise" ]
        ~doc:
          "Solve under the robustness supervisor: watch the fixed-point \
           residual, abort divergent or stalled attempts, escalate through \
           damping factors and fallback solvers, and cross-check the \
           accepted solution against closed-form bounds.  Exit code 0 = \
           converged first try, 3 = converged after fallback, 4 = failed.")

let budget_iterations_arg =
  Arg.(
    value & opt int 2_000
    & info [ "budget-iterations" ] ~docv:"N"
        ~doc:
          "First-rung iteration budget of the supervisor's escalation \
           ladder (doubled at every later rung).")

let budget_time_arg =
  Arg.(
    value & opt (some float) None
    & info [ "budget-time" ] ~docv:"SECONDS"
        ~doc:"CPU-time budget across all supervisor attempts.")

(* Run the supervisor, print its diagnosis, hand the measures to [k], and
   exit with the outcome's code (0 converged / 3 after fallback / 4 failed).
   The solver trace, when requested, is written before exiting so failed
   ladders leave their telemetry behind too. *)
let supervised_exit ?trace_out params ~base_iterations ~time_budget k =
  if base_iterations < 1 then begin
    Format.eprintf "mms_cli: --budget-iterations must be at least 1@.";
    exit 124
  end;
  (match time_budget with
  | Some b when b <= 0. ->
    Format.eprintf "mms_cli: --budget-time must be positive@.";
    exit 124
  | _ -> ());
  let telemetry =
    Option.map (fun _ -> Lattol_obs.Solver_trace.create ()) trace_out
  in
  let result =
    Lattol_robust.Supervisor.solve ?telemetry ~base_iterations ?time_budget
      params
  in
  (match (telemetry, trace_out) with
  | Some tel, Some file -> write_solver_trace tel file
  | _ -> ());
  (match result with
  | Ok (m, d) ->
    Format.printf "%a@.@." Lattol_robust.Supervisor.pp_diagnosis d;
    k m
  | Error d ->
    Format.printf "%a@." Lattol_robust.Supervisor.pp_diagnosis d;
    Format.printf "supervisor: no trustworthy solution@.");
  exit
    (Lattol_robust.Supervisor.exit_code (Lattol_robust.Supervisor.outcome result))

(* ------------------------------------------------------------------ *)
(* solve *)

let solve_cmd =
  let run () params solver supervise base_iterations time_budget metrics_out
      trace_out =
    Format.printf "%a@.@." Params.pp params;
    let finish m =
      Format.printf "%a@." Measures.pp m;
      Option.iter
        (fun file ->
          let reg = Lattol_obs.Metrics.create () in
          register_measures reg m;
          write_metrics reg file)
        metrics_out
    in
    if supervise then
      supervised_exit ?trace_out params ~base_iterations ~time_budget finish
    else begin
      let telemetry =
        Option.map (fun _ -> Lattol_obs.Solver_trace.create ()) trace_out
      in
      let m = solve_with_telemetry ?solver ?telemetry params in
      (match (telemetry, trace_out) with
      | Some tel, Some file -> write_solver_trace tel file
      | _ -> ());
      finish m
    end
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Evaluate the analytical model once")
    Term.(
      const run $ verbose_term $ params_term $ solver_term $ supervise_arg
      $ budget_iterations_arg $ budget_time_arg $ metrics_out_arg
      $ trace_out_arg solver_trace_doc)

(* ------------------------------------------------------------------ *)
(* tolerance *)

let tolerance_cmd =
  let method_arg =
    Arg.(
      value
      & opt (enum [ ("zero-delay", Tolerance.Zero_delay); ("zero-remote", Tolerance.Zero_remote) ])
          Tolerance.Zero_remote
      & info [ "method" ] ~docv:"METHOD"
          ~doc:"Ideal-network method: $(b,zero-delay) or $(b,zero-remote).")
  in
  let run () params solver meth =
    Format.printf "%a@.@." Params.pp params;
    let net = Tolerance.network ?solver ~ideal_method:meth params in
    let mem = Tolerance.memory ?solver params in
    Format.printf "%a@.%a@." Tolerance.pp_report net Tolerance.pp_report mem
  in
  Cmd.v
    (Cmd.info "tolerance" ~doc:"Tolerance indices for network and memory")
    Term.(const run $ verbose_term $ params_term $ solver_term $ method_arg)

(* ------------------------------------------------------------------ *)
(* bottleneck *)

let bottleneck_cmd =
  let run params =
    Format.printf "%a@.%a@." Params.pp params Bottleneck.pp
      (Bottleneck.analyze params)
  in
  Cmd.v
    (Cmd.info "bottleneck" ~doc:"Closed-form bottleneck analysis (Eqs. 4 and 5)")
    Term.(const run $ params_term)

(* ------------------------------------------------------------------ *)
(* sweep *)

let jobs_arg doc = Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let sweep_jobs_doc =
  "Worker domains.  Output is byte-identical for every value; $(b,--jobs 1) \
   runs in the calling domain.  The pool never spawns more domains than \
   the machine has cores (oversubscribed domains fight over the minor-GC \
   barrier and run SLOWER than serial), so $(docv) is a ceiling, not a \
   promise."

let chunk_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chunk" ] ~docv:"N"
        ~doc:
          "Tasks claimed per queue operation.  Default: adaptive (guided \
           self-scheduling — large chunks early, single tasks at the \
           tail).  $(b,--chunk 1) maximizes balance for uneven work; \
           larger chunks amortize scheduling for uniform grids.  Output \
           is byte-identical for every value.")

let check_chunk = function
  | Some c when c < 1 -> Some "--chunk must be at least 1"
  | _ -> None

let cache_arg doc = Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)

let measure_header = "u_p,lambda,lambda_net,s_obs,l_obs,tol_network,tol_memory"

(* ------------------------------------------------------------------ *)
(* crash-safety / chaos flags (shared by sweep, figures, simulate) *)

let journal_arg doc =
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let sweep_journal_doc =
  "Checkpoint journal: every completed grid point is appended (and \
   fsync'd) to $(docv) as it lands, so a killed run can $(b,--resume)."

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Replay completed work units from the checkpoint journal instead \
           of recomputing them.  The journal must have been written by the \
           same run configuration; output is byte-identical to an \
           uninterrupted run.")

let retries_arg =
  Arg.(
    value & opt int 1
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Attempts per work unit.  Transient failures (injected chaos, \
           I/O errors, expired deadlines) retry with exponential backoff; \
           a unit still failing after $(docv) attempts becomes an error \
           row instead of sinking the run.  Deterministic solver errors \
           are never retried.")

let task_deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "task-deadline" ] ~docv:"SECONDS"
        ~doc:
          "Per-attempt deadline: a work unit running longer is cancelled \
           cooperatively and handled as a transient failure.")

let chaos_fail_rate_arg =
  Arg.(
    value & opt float 0.
    & info [ "chaos-fail-rate" ] ~docv:"F"
        ~doc:
          "(chaos harness) Fraction of work units that fail their leading \
           attempts with an injected fault — deterministic in \
           $(b,--chaos-seed).")

let chaos_fail_attempts_arg =
  Arg.(
    value & opt int 1
    & info [ "chaos-fail-attempts" ] ~docv:"N"
        ~doc:
          "(chaos harness) Leading attempts an affected unit fails before \
           succeeding, so $(b,--retries) > $(docv) always recovers.")

let chaos_delay_arg =
  Arg.(
    value & opt float 0.
    & info [ "chaos-delay" ] ~docv:"SECONDS"
        ~doc:"(chaos harness) Injected latency before every attempt.")

let chaos_seed_arg =
  Arg.(
    value & opt int 0
    & info [ "chaos-seed" ] ~docv:"SEED"
        ~doc:"(chaos harness) Selects the affected-unit subset.")

let chaos_kill_after_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos-kill-after" ] ~docv:"N"
        ~doc:
          "(chaos harness) SIGKILL this process right after the $(docv)-th \
           journal record of this run is appended — an unclean mid-run \
           death for resume testing.  Requires a journal.")

type robustness = {
  journal_path : string option;
  resume : bool;
  retry : Lattol_robust.Retry.policy option;
  deadline : float option;
  chaos : Lattol_robust.Chaos.plan;
  kill_after : int option;
}

(* Fold the nine flags into one validated record.  Retry backoff is
   compressed (20 ms doubling to a 100 ms cap) — these are solver tasks,
   not network calls, and the chaos soak tests retry hundreds of them. *)
let robustness journal resume retries task_deadline rate attempts delay seed
    kill_after =
  if retries < 1 then Error "--retries must be at least 1"
  else if (match task_deadline with Some d -> d <= 0. | None -> false) then
    Error "--task-deadline must be positive"
  else if (match kill_after with Some n -> n < 1 | None -> false) then
    Error "--chaos-kill-after must be at least 1"
  else if kill_after <> None && journal = None then
    Error "--chaos-kill-after requires a journal"
  else if resume && journal = None then Error "--resume requires --journal"
  else
    match
      if rate > 0. || delay > 0. then
        Lattol_robust.Chaos.plan ~fail_rate:rate ~fail_attempts:attempts
          ~delay ~seed ()
      else Lattol_robust.Chaos.none
    with
    | chaos ->
      let retry =
        if retries = 1 then None
        else
          Some
            (Lattol_robust.Retry.policy ~max_attempts:retries
               ~base_delay:0.02 ~max_delay:0.1 ())
      in
      Ok
        {
          journal_path = journal;
          resume;
          retry;
          deadline = task_deadline;
          chaos;
          kill_after;
        }
    | exception Invalid_argument msg -> Error msg

let kill_switch kill_after =
  Option.map
    (fun n k -> if k >= n then Lattol_robust.Chaos.kill_self ())
    kill_after

(* Open (or resume) the journal; [Error] exits 124 before any work. *)
let open_journal ?on_record ~resume ~meta path =
  if resume then Exec.Journal.resume ?on_record ~path ~meta ()
  else Ok (Exec.Journal.create ?on_record ~path ~meta ())

let report_resume journal =
  match journal with
  | Some j when Exec.Journal.replayed j > 0 || Exec.Journal.discarded j > 0
    ->
    Printf.eprintf "journal: replayed %d records (%d discarded)\n%!"
      (Exec.Journal.replayed j)
      (Exec.Journal.discarded j)
  | _ -> ()

let sweep_cmd =
  let param_conv =
    Arg.enum (List.map (fun p -> (Exec.Sweep.param_name p, p)) Exec.Sweep.all_params)
  in
  let param_arg =
    Arg.(
      non_empty
      & opt_all param_conv []
      & info [ "param" ] ~docv:"PARAM"
          ~doc:
            "Parameter to sweep: $(b,p_remote), $(b,n_t), $(b,runlength), \
             $(b,k), $(b,p_sw), $(b,l_mem) or $(b,s_switch).  Repeat \
             together with $(b,--from)/$(b,--to)/$(b,--steps) to sweep a \
             multi-parameter grid (first axis varies slowest).")
  in
  let from_arg =
    Arg.(non_empty & opt_all float [] & info [ "from" ] ~docv:"LO" ~doc:"Start value.")
  in
  let to_arg =
    Arg.(non_empty & opt_all float [] & info [ "to" ] ~docv:"HI" ~doc:"End value.")
  in
  let steps_arg =
    Arg.(
      value & opt_all int []
      & info [ "steps" ] ~docv:"N" ~doc:"Number of points (default 11).")
  in
  let run params solver names froms tos stepss jobs chunk cache_dir
      metrics_out trace_out causal_out causal_chrome serve serve_socket
      journal resume retries task_deadline chaos_rate chaos_attempts
      chaos_delay chaos_seed kill_after profile_runtime =
    let n = List.length names in
    let stepss = stepss @ List.init (max 0 (n - List.length stepss)) (fun _ -> 11) in
    match
      robustness journal resume retries task_deadline chaos_rate
        chaos_attempts chaos_delay chaos_seed kill_after
    with
    | Error msg -> `Error (false, msg)
    | Ok robust ->
    if List.length froms <> n || List.length tos <> n || List.length stepss <> n
    then
      `Error
        (false, "--param, --from, --to (and --steps) must be repeated together")
    else if List.exists (fun s -> s < 2) stepss then
      `Error (false, "--steps must be at least 2")
    else if jobs < 1 then `Error (false, "--jobs must be at least 1")
    else
      match check_chunk chunk with
      | Some msg -> `Error (false, msg)
      | None ->
      begin
      let axes =
        List.map2
          (fun param (lo, (hi, steps)) ->
            { Exec.Sweep.param; values = Exec.Sweep.linspace ~lo ~hi ~steps })
          names
          (List.combine froms (List.combine tos stepss))
      in
      let meta = Exec.Sweep.journal_meta ?solver ~base:params axes in
      match
        match robust.journal_path with
        | None -> Ok None
        | Some path ->
          Result.map Option.some
            (open_journal
               ?on_record:(kill_switch robust.kill_after)
               ~resume:robust.resume ~meta path)
      with
      | Error msg -> `Error (false, msg)
      | Ok journal ->
      report_resume journal;
      let serving = serve <> None || serve_socket <> None in
      let telemetry =
        Option.map (fun _ -> Lattol_obs.Solver_trace.create ()) trace_out
      in
      let causal =
        if causal_out <> None || causal_chrome <> None then
          Some (Tc.create ~root:"sweep" ())
        else None
      in
      let registry =
        if metrics_out <> None || serving then
          Some (Lattol_obs.Metrics.create ())
        else None
      in
      let cache = Exec.Cache.create ?dir:cache_dir () in
      let progress = Serve.Progress.create ~phase:"sweep" () in
      Serve.Progress.set_total progress (List.length (Exec.Sweep.points axes));
      register_cache_pulls progress cache;
      let snapshot () =
        Serve.Progress.to_snapshot progress
        @
        match registry with
        | Some reg -> Lattol_obs.Metrics.snapshot reg
        | None -> []
      in
      let monitor =
        if serving then Some (Serve.Progress.pool_monitor progress) else None
      in
      let prof = start_runtime_profile profile_runtime in
      register_runtime_pulls progress prof;
      (match (telemetry, trace_out) with
      | Some tel, Some file ->
        flush_on_exit file (fun () -> write_solver_trace tel file)
      | _ -> ());
      (match (registry, metrics_out) with
      | Some reg, Some file ->
        flush_on_exit file (fun () -> write_metrics reg file)
      | _ -> ());
      with_exporter ~health:(cache_health cache)
        ?runtime:(runtime_scrape prof)
        ?trace:(Option.map trace_probe causal)
        ~serve ~serve_socket ~snapshot
        (fun () ->
          Serve.Progress.start progress;
          let rows =
            Exec.Sweep.run ?solver ~cache ~jobs ?chunk ?trace:telemetry
              ?causal:(Option.map Tc.root_ctx causal) ?monitor ?journal
              ?retry:robust.retry ?deadline:robust.deadline
              ~chaos:robust.chaos ~base:params axes
          in
          let single = match axes with [ _ ] -> true | _ -> false in
          if single then
            Format.printf "# %a@.param,value,%s@." Params.pp params
              measure_header
          else
            Format.printf "# %a@.%s,%s@." Params.pp params
              (String.concat ","
                 (List.map
                    (fun a -> Exec.Sweep.param_name a.Exec.Sweep.param)
                    axes))
              measure_header;
          List.iter
            (fun row ->
              let assigns = row.Exec.Sweep.assigns in
              match row.Exec.Sweep.result with
              | Error msg ->
                Format.printf "# skipped %s: %s@." (Exec.Sweep.label assigns)
                  msg
              | Ok s ->
                let m = s.Exec.Sweep.measures in
                Option.iter
                  (fun reg ->
                    register_measures reg
                      ~labels:
                        (List.map
                           (fun (p, v) ->
                             (Exec.Sweep.param_name p, Printf.sprintf "%g" v))
                           assigns)
                      m)
                  registry;
                let key =
                  if single then
                    let param, v = List.hd assigns in
                    Printf.sprintf "%s,%g" (Exec.Sweep.param_name param) v
                  else
                    String.concat ","
                      (List.map (fun (_, v) -> Printf.sprintf "%g" v) assigns)
                in
                Format.printf "%s,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f@." key
                  m.Measures.u_p m.Measures.lambda m.Measures.lambda_net
                  m.Measures.s_obs m.Measures.l_obs
                  s.Exec.Sweep.tol_network.Tolerance.tol
                  s.Exec.Sweep.tol_memory.Tolerance.tol)
            rows;
          Serve.Progress.finish progress;
          (match causal with
          | Some recorder ->
            Tc.seal recorder;
            let report = Trace_report.analyze recorder in
            Option.iter (fun reg -> register_point_walls reg report) registry;
            Option.iter (write_causal_report report) causal_out;
            Option.iter (write_causal_chrome recorder) causal_chrome
          | None -> ());
          (match (telemetry, trace_out) with
          | Some tel, Some file ->
            write_solver_trace tel file;
            flushed file
          | _ -> ());
          match (registry, metrics_out) with
          | Some reg, Some file ->
            (* When serving, the file is the final scrape: the same
               snapshot bytes /metrics.json would return right now. *)
            if serving then write_metrics_snapshot (snapshot ()) file
            else write_metrics reg file;
            flushed file
          | _ -> ());
      ignore (finish_runtime_profile prof);
      Option.iter Exec.Journal.close journal;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep one or more parameters and print CSV")
    Term.(
      ret
        (const run $ params_term $ solver_term $ param_arg $ from_arg $ to_arg
       $ steps_arg
       $ jobs_arg sweep_jobs_doc
       $ chunk_arg
       $ cache_arg
           "Content-addressed solve cache: re-runs over the same \
            configurations perform zero new solves."
       $ metrics_out_arg $ trace_out_arg solver_trace_doc $ causal_trace_arg
       $ causal_chrome_arg $ serve_arg $ serve_socket_arg
       $ journal_arg sweep_journal_doc
       $ resume_arg $ retries_arg $ task_deadline_arg $ chaos_fail_rate_arg
       $ chaos_fail_attempts_arg $ chaos_delay_arg $ chaos_seed_arg
       $ chaos_kill_after_arg $ profile_runtime_arg))

(* ------------------------------------------------------------------ *)
(* figures *)

let figures_cmd =
  let out_arg =
    Arg.(
      value & opt string "figures"
      & info [ "out"; "o" ] ~docv:"DIR" ~doc:"Output directory for the CSVs.")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Solve everything fresh; keep no disk cache.")
  in
  let only_arg =
    Arg.(
      value & opt_all string []
      & info [ "only" ] ~docv:"NAME"
          ~doc:"Produce only the named figure (repeatable).")
  in
  let run params solver out jobs chunk cache_dir no_cache only metrics_out
      serve serve_socket journal resume retries task_deadline chaos_rate
      chaos_attempts chaos_delay chaos_seed kill_after profile_runtime =
    (* The journal is always on for figures — the batch is long enough
       that crash-safety should not be opt-in. *)
    let journal_path =
      Some
        (match journal with
        | Some p -> p
        | None -> Filename.concat out "journal.ltj")
    in
    match
      robustness journal_path resume retries task_deadline chaos_rate
        chaos_attempts chaos_delay chaos_seed kill_after
    with
    | Error msg -> `Error (false, msg)
    | Ok robust ->
    if jobs < 1 then `Error (false, "--jobs must be at least 1")
    else
      match check_chunk chunk with
      | Some msg -> `Error (false, msg)
      | None ->
      begin
      let figures = Exec.Figures.all ~base:params () in
      let unknown =
        List.filter
          (fun name -> not (List.exists (fun f -> f.Exec.Figures.name = name) figures))
          only
      in
      match unknown with
      | name :: _ ->
        `Error
          ( false,
            Printf.sprintf "unknown figure %s (available: %s)" name
              (String.concat ", "
                 (List.map (fun f -> f.Exec.Figures.name) figures)) )
      | [] ->
        let figures =
          if only = [] then figures
          else
            List.filter (fun f -> List.mem f.Exec.Figures.name only) figures
        in
        let dir =
          if no_cache then None
          else
            Some
              (match cache_dir with
              | Some d -> d
              | None -> Filename.concat out "cache")
        in
        let cache = Exec.Cache.create ?dir () in
        let meta = Exec.Figures.journal_meta ?solver figures in
        match
          match robust.journal_path with
          | None -> Ok None
          | Some path ->
            Result.map Option.some
              (open_journal
                 ?on_record:(kill_switch robust.kill_after)
                 ~resume:robust.resume ~meta path)
        with
        | Error msg -> `Error (false, msg)
        | Ok journal ->
        report_resume journal;
        let serving = serve <> None || serve_socket <> None in
        let progress = Serve.Progress.create ~phase:"figures" () in
        Serve.Progress.set_total progress
          (List.fold_left
             (fun acc f ->
               acc + List.length (Exec.Sweep.points f.Exec.Figures.axes))
             0 figures);
        register_cache_pulls progress cache;
        let snapshot () = Serve.Progress.to_snapshot progress in
        let monitor =
          if serving then Some (Serve.Progress.pool_monitor progress)
          else None
        in
        let prof = start_runtime_profile profile_runtime in
        register_runtime_pulls progress prof;
        with_exporter ~health:(cache_health cache)
          ?runtime:(runtime_scrape prof) ~serve ~serve_socket ~snapshot
          (fun () ->
            Serve.Progress.start progress;
            let written =
              Exec.Figures.write ?solver ~cache ~jobs ?chunk ?monitor
                ?journal ?retry:robust.retry ?deadline:robust.deadline
                ~chaos:robust.chaos ~dir:out figures
            in
            List.iter
              (fun w ->
                Format.printf "wrote %s (%d rows)@." w.Exec.Figures.path
                  w.Exec.Figures.rows)
              written;
            Format.printf "cache: %a@." Exec.Cache.pp_stats
              (Exec.Cache.stats cache);
            Serve.Progress.finish progress;
            Option.iter
              (fun file -> write_metrics_snapshot (snapshot ()) file)
              metrics_out);
        ignore (finish_runtime_profile prof);
        Option.iter Exec.Journal.close journal;
        `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "figures"
       ~doc:
         "Reproduce the paper's figure sweeps as CSVs in one (optionally \
          parallel) cached batch")
    Term.(
      ret
        (const run $ params_term $ solver_term $ out_arg
       $ jobs_arg
           "Worker domains per figure sweep (capped at the machine's core \
            count).  The CSVs are byte-identical for every value."
       $ chunk_arg
       $ cache_arg "Cache directory (default $(docv) = OUT/cache)."
       $ no_cache_arg $ only_arg $ metrics_out_arg $ serve_arg
       $ serve_socket_arg
       $ journal_arg
           "Checkpoint journal (default OUT/journal.ltj — always on): \
            every solved grid point is appended and fsync'd, so a killed \
            batch can $(b,--resume)."
       $ resume_arg $ retries_arg $ task_deadline_arg $ chaos_fail_rate_arg
       $ chaos_fail_attempts_arg $ chaos_delay_arg $ chaos_seed_arg
       $ chaos_kill_after_arg $ profile_runtime_arg))

(* ------------------------------------------------------------------ *)
(* trace: causal-trace a figure grid and explain where the time went *)

let trace_cmd =
  let figure_arg =
    Arg.(
      value & opt string "fig04_grid"
      & info [ "figure" ] ~docv:"NAME"
          ~doc:
            "Figure grid to trace (the same names $(b,mms figures --only) \
             accepts); default is the paper's Fig. 4 grid.")
  in
  let slowest_arg =
    Arg.(
      value & opt int 3
      & info [ "slowest" ] ~docv:"K"
          ~doc:
            "Exemplar digest size: after the table, print the $(docv) \
             slowest points with their critical paths and trace ids \
             (0 disables the digest).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the critical-path report (the $(b,lattol-trace/1) \
             document /trace.json serves live) to $(docv).")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Write the merged span timeline (one track per grid point) to \
             $(docv) in Chrome trace-event JSON.")
  in
  let run () solver figure jobs chunk cache_dir slowest json_out chrome_out
      serve serve_socket =
    if jobs < 1 then `Error (false, "--jobs must be at least 1")
    else if slowest < 0 then `Error (false, "--slowest must be non-negative")
    else
      match check_chunk chunk with
      | Some msg -> `Error (false, msg)
      | None -> (
        match Exec.Figures.find figure with
        | None ->
          `Error
            ( false,
              Printf.sprintf "unknown figure %s (available: %s)" figure
                (String.concat ", "
                   (List.map
                      (fun f -> f.Exec.Figures.name)
                      (Exec.Figures.all ()))) )
        | Some fig ->
          let recorder = Tc.create ~root:("trace-" ^ fig.Exec.Figures.name) () in
          let cache = Exec.Cache.create ?dir:cache_dir () in
          let progress = Serve.Progress.create ~phase:"trace" () in
          Serve.Progress.set_total progress
            (List.length (Exec.Sweep.points fig.Exec.Figures.axes));
          register_cache_pulls progress cache;
          let snapshot () = Serve.Progress.to_snapshot progress in
          let serving = serve <> None || serve_socket <> None in
          let monitor =
            if serving then Some (Serve.Progress.pool_monitor progress)
            else None
          in
          with_exporter ~health:(cache_health cache)
            ~trace:(trace_probe recorder) ~serve ~serve_socket ~snapshot
            (fun () ->
              Serve.Progress.start progress;
              let rows =
                Exec.Sweep.run ?solver ~cache ~jobs ?chunk ?monitor
                  ~causal:(Tc.root_ctx recorder)
                  ~journal_prefix:(fig.Exec.Figures.name ^ "/")
                  ~base:fig.Exec.Figures.base fig.Exec.Figures.axes
              in
              Serve.Progress.finish progress;
              Tc.seal recorder;
              let report = Trace_report.analyze recorder in
              let b = Buffer.create 8192 in
              Trace_report.pp_table b report;
              if slowest > 0 && report.Trace_report.r_points <> [] then begin
                Buffer.add_string b "\nslowest points:\n";
                Trace_report.pp_digest b ~k:slowest report
              end;
              print_string (Buffer.contents b);
              Format.printf "cache: %a@." Exec.Cache.pp_stats
                (Exec.Cache.stats cache);
              let failed =
                List.length
                  (List.filter
                     (fun r -> Result.is_error r.Exec.Sweep.result)
                     rows)
              in
              if failed > 0 then
                Format.printf "note: %d grid points failed validation@."
                  failed;
              Option.iter (write_causal_report report) json_out;
              Option.iter (write_causal_chrome recorder) chrome_out);
          `Ok ())
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Causal-trace a figure grid: per-point span trees through the \
          pool, cache, solver and journal, rendered as a critical-path \
          waterfall with a bottleneck verdict per point")
    Term.(
      ret
        (const run $ verbose_term $ solver_term $ figure_arg
       $ jobs_arg
           "Worker domains for the traced sweep.  The trace explains where \
            the time goes at any $(docv); the solved rows are identical \
            for every value."
       $ chunk_arg
       $ cache_arg
           "Content-addressed solve cache: trace a warm re-run to see \
            cache-wait spans replace solve spans."
       $ slowest_arg $ json_arg $ chrome_arg $ serve_arg $ serve_socket_arg))

(* ------------------------------------------------------------------ *)
(* simulate *)

let simulate_cmd =
  let engine_arg =
    Arg.(
      value
      & opt (enum [ ("des", `Des); ("stpn", `Stpn) ]) `Des
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Simulator: $(b,des) (discrete-event) or $(b,stpn) (Petri net).")
  in
  let horizon_arg =
    Arg.(
      value & opt float 100_000.
      & info [ "horizon" ] ~docv:"T" ~doc:"Measured simulation time.")
  in
  let warmup_arg =
    Arg.(
      value & opt float 1_000.
      & info [ "warmup" ] ~docv:"T" ~doc:"Warm-up time discarded before measuring.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let fault_mtbf_arg =
    Arg.(
      value & opt float 0.
      & info [ "fault-mtbf" ] ~docv:"T"
          ~doc:
            "Mean time between failures of the targeted components \
             (0 disables fault injection).")
  in
  let fault_mttr_arg =
    Arg.(
      value & opt float 0.
      & info [ "fault-mttr" ] ~docv:"T"
          ~doc:"Mean time to repair an outage (required with a nonzero MTBF).")
  in
  let fault_degrade_arg =
    Arg.(
      value & opt float 0.
      & info [ "fault-degrade" ] ~docv:"F"
          ~doc:
            "Service-rate multiplier during an outage: 0 (default) is a \
             full stop, 0.5 runs the component at half speed.")
  in
  let fault_target_arg =
    Arg.(
      value
      & opt (enum [ ("switch", `Switch); ("memory", `Memory); ("both", `Both) ])
          `Both
      & info [ "fault-target" ] ~docv:"TARGET"
          ~doc:
            "Component class the fault process applies to: $(b,switch), \
             $(b,memory) or $(b,both).")
  in
  let fault_plan mtbf mttr degrade target =
    if Float.equal mtbf 0. then Ok Lattol_robust.Fault_plan.none
    else begin
      let pr = Lattol_robust.Fault_plan.process ~mtbf ~mttr ~degrade in
      let plan =
        {
          Lattol_robust.Fault_plan.switch =
            (match target with `Switch | `Both -> Some pr | `Memory -> None);
          memory =
            (match target with `Memory | `Both -> Some pr | `Switch -> None);
        }
      in
      Lattol_robust.Fault_plan.validate plan
    end
  in
  let replications_arg =
    Arg.(
      value & opt int 1
      & info [ "replications" ] ~docv:"N"
          ~doc:
            "Independent replications, each on its own random stream split \
             from $(b,--seed); reports across-replication confidence \
             intervals.  The result set is identical for every $(b,--jobs) \
             value.")
  in
  let run_replicated params engine horizon warmup seed faults replications
      jobs chunk monitor journal =
    Format.printf "%a@." Params.pp params;
    if Lattol_robust.Fault_plan.active faults then
      Format.printf "fault plan: %a@." Lattol_robust.Fault_plan.pp faults;
    Format.printf "@.";
    (* [jobs] must not appear here: the report is byte-identical for every
       degree of parallelism. *)
    Format.printf "replications: %d (%s)@." replications
      (match engine with `Des -> "des" | `Stpn -> "stpn");
    (* The report only ever reads each replication's measures, so the
       fan-out runs at measures level — the granularity the checkpoint
       journal records. *)
    let s =
      match engine with
      | `Des ->
        let config =
          {
            Lattol_sim.Mms_des.default_config with
            Lattol_sim.Mms_des.horizon;
            warmup;
            seed;
            faults;
          }
        in
        Exec.Replicate.des_measures ~jobs ?chunk ?monitor ?journal ~config
          ~replications params
      | `Stpn ->
        Exec.Replicate.stpn_measures ~jobs ?chunk ?monitor ?journal ~seed
          ~warmup ~horizon ~faults ~replications params
    in
    List.iteri
      (fun i m ->
        Format.printf "rep %d: U_p=%.6f lambda=%.6f@." (i + 1) m.Measures.u_p
          m.Measures.lambda)
      s.Exec.Replicate.results;
    let u_p_ci, lambda_ci =
      (s.Exec.Replicate.u_p_ci, s.Exec.Replicate.lambda_ci)
    in
    (match u_p_ci with
    | Some (mean, half) ->
      Format.printf "U_p 95%% CI: %.4f +- %.4f across replications@." mean half
    | None -> ());
    (match lambda_ci with
    | Some (mean, half) ->
      Format.printf "lambda 95%% CI: %.4f +- %.4f across replications@." mean
        half
    | None -> ())
  in
  (* Everything that decides a replication's result, digested the same
     way a cache key is: a journal written under different simulation
     inputs must refuse to resume. *)
  let simulate_meta params engine horizon warmup seed faults replications =
    Digest.to_hex
      (Digest.string
         (Printf.sprintf "simulate/%d;%s;engine=%s;seed=%d;horizon=%h;\
                          warmup=%h;reps=%d;faults=%s"
            Exec.Journal.format_version
            (Exec.Cache.canonical params)
            (match engine with `Des -> "des" | `Stpn -> "stpn")
            seed horizon warmup replications
            (Format.asprintf "%a" Lattol_robust.Fault_plan.pp faults)))
  in
  let run params engine horizon warmup seed mtbf mttr degrade target
      replications jobs chunk metrics_out trace_out serve serve_socket
      journal_path resume profile_runtime =
    let serving = serve <> None || serve_socket <> None in
    match fault_plan mtbf mttr degrade target with
    | Error msg -> `Error (false, msg)
    | Ok faults ->
      if engine = `Stpn && (metrics_out <> None || trace_out <> None) then
        `Error (false, "--metrics-out/--trace-out require --engine des")
      else if replications < 1 then
        `Error (false, "--replications must be at least 1")
      else if jobs < 1 then `Error (false, "--jobs must be at least 1")
      else if (match check_chunk chunk with Some _ -> true | None -> false)
      then
        `Error (false, Option.get (check_chunk chunk))
      else if replications > 1 && (metrics_out <> None || trace_out <> None)
      then
        `Error (false, "--metrics-out/--trace-out require --replications 1")
      else if journal_path <> None && replications = 1 then
        `Error (false, "--journal requires --replications > 1")
      else if resume && journal_path = None then
        `Error (false, "--resume requires --journal")
      else if serving && engine = `Stpn && replications = 1 then
        (* The STPN engine has no heartbeat hook; only the replication
           fan-out is observable live. *)
        `Error
          ( false,
            "--serve/--serve-socket with --engine stpn require \
             --replications > 1" )
      else if replications > 1 then begin
        let meta =
          simulate_meta params engine horizon warmup seed faults replications
        in
        match
          match journal_path with
          | None -> Ok None
          | Some path ->
            Result.map Option.some (open_journal ~resume ~meta path)
        with
        | Error msg -> `Error (false, msg)
        | Ok journal ->
        report_resume journal;
        let progress = Serve.Progress.create ~phase:"replications" () in
        Serve.Progress.set_total progress replications;
        let snapshot () = Serve.Progress.to_snapshot progress in
        let monitor =
          if serving then Some (Serve.Progress.pool_monitor progress)
          else None
        in
        let prof = start_runtime_profile profile_runtime in
        register_runtime_pulls progress prof;
        with_exporter ?runtime:(runtime_scrape prof) ~serve ~serve_socket
          ~snapshot (fun () ->
            Serve.Progress.start progress;
            run_replicated params engine horizon warmup seed faults
              replications jobs chunk monitor journal;
            Serve.Progress.finish progress);
        ignore (finish_runtime_profile prof);
        Option.iter Exec.Journal.close journal;
        `Ok ()
      end
      else begin
        Format.printf "%a@." Params.pp params;
        if Lattol_robust.Fault_plan.active faults then
          Format.printf "fault plan: %a@." Lattol_robust.Fault_plan.pp faults;
        Format.printf "@.";
        let prof = start_runtime_profile profile_runtime in
        (match engine with
        | `Des ->
          let trace =
            Option.map (fun _ -> Lattol_obs.Events.create ()) trace_out
          in
          let metrics =
            if metrics_out <> None || serving then
              Some (Lattol_obs.Metrics.create ())
            else None
          in
          let progress = Serve.Progress.create ~phase:"des" () in
          Serve.Progress.set_total progress
            Lattol_sim.Mms_des.default_config.Lattol_sim.Mms_des.batches;
          let snapshot () =
            Serve.Progress.to_snapshot progress
            @
            match metrics with
            | Some reg -> Lattol_obs.Metrics.snapshot reg
            | None -> []
          in
          (* Event-rate estimation straddles batches: remember the last
             batch boundary's cumulative count and wall-clock stamp. *)
          let last = ref (0, 0.) in
          let on_batch =
            if serving then
              Some
                (fun ~events ~time ->
                  Serve.Progress.step progress;
                  let e0, t0 = !last in
                  let now = Unix.gettimeofday () in
                  if t0 > 0. && now > t0 then
                    Serve.Progress.set_gauge progress "des_event_rate"
                      (float_of_int (events - e0) /. (now -. t0));
                  last := (events, now);
                  Serve.Progress.set_gauge progress "des_virtual_time" time;
                  Serve.Progress.set_gauge progress "des_events_total"
                    (float_of_int events))
            else None
          in
          (match (trace, trace_out) with
          | Some tr, Some file ->
            flush_on_exit file (fun () -> write_span_trace tr file)
          | _ -> ());
          (match (metrics, metrics_out) with
          | Some reg, Some file ->
            flush_on_exit file (fun () -> write_metrics reg file)
          | _ -> ());
          register_runtime_pulls progress prof;
          with_exporter ?runtime:(runtime_scrape prof) ~serve ~serve_socket
            ~snapshot (fun () ->
              Serve.Progress.start progress;
              let r =
                profiled_section (fun () ->
                    Lattol_sim.Mms_des.run
                      ~config:
                        {
                          Lattol_sim.Mms_des.default_config with
                          Lattol_sim.Mms_des.horizon;
                          warmup;
                          seed;
                          faults;
                          trace;
                          metrics;
                          on_batch;
                        }
                      params)
              in
              Format.printf "%a@." Measures.pp r.Lattol_sim.Mms_des.measures;
              let mean, half = r.Lattol_sim.Mms_des.u_p_ci in
              Format.printf
                "U_p 95%% CI: %.4f +- %.4f (%d events, %d remote trips)@."
                mean half r.Lattol_sim.Mms_des.events
                r.Lattol_sim.Mms_des.remote_trips;
              List.iter
                (Format.printf "%a@." Lattol_sim.Mms_des.pp_fault_stats)
                r.Lattol_sim.Mms_des.faults;
              (match (trace, trace_out) with
              | Some tr, Some file ->
                write_span_trace tr file;
                flushed file;
                Format.printf "trace: %d spans -> %s%s@."
                  (Lattol_obs.Events.count tr) file
                  (if Lattol_obs.Events.dropped tr = 0 then ""
                   else
                     Printf.sprintf " (%d dropped)"
                       (Lattol_obs.Events.dropped tr))
              | _ -> ());
              Serve.Progress.finish progress;
              match (metrics, metrics_out) with
              | Some reg, Some file ->
                if serving then begin
                  (* The file is the final scrape: identical bytes to what
                     /metrics.json returns from here on. *)
                  let snap = snapshot () in
                  write_metrics_snapshot snap file;
                  Format.printf "metrics: %d series -> %s@."
                    (List.length snap) file
                end
                else begin
                  write_metrics reg file;
                  Format.printf "metrics: %d series -> %s@."
                    (Lattol_obs.Metrics.size reg) file
                end;
                flushed file
              | _ -> ())
        | `Stpn ->
          let r =
            profiled_section (fun () ->
                Lattol_petri.Mms_stpn.run ~seed ~warmup ~horizon ~faults
                  params)
          in
          Format.printf "%a@." Measures.pp r.Lattol_petri.Mms_stpn.measures;
          if Lattol_robust.Fault_plan.active faults then
            Format.printf
              "fault plan applied quasi-statically: S=%g L=%g after degradation@."
              r.Lattol_petri.Mms_stpn.layout.Lattol_petri.Mms_stpn.params
                .Params.s_switch
              r.Lattol_petri.Mms_stpn.layout.Lattol_petri.Mms_stpn.params
                .Params.l_mem;
          Format.printf "%a, %d firings@." Lattol_petri.Petri.pp
            r.Lattol_petri.Mms_stpn.layout.Lattol_petri.Mms_stpn.net
            r.Lattol_petri.Mms_stpn.stats.Lattol_petri.Simulation.events);
        ignore (finish_runtime_profile prof);
        `Ok ()
      end
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate the machine (DES or STPN)")
    Term.(
      ret
        (const run $ params_term $ engine_arg $ horizon_arg $ warmup_arg
       $ seed_arg $ fault_mtbf_arg $ fault_mttr_arg $ fault_degrade_arg
       $ fault_target_arg $ replications_arg
       $ jobs_arg
           "Worker domains for the replication fan-out (with \
            $(b,--replications)); capped at the machine's core count."
       $ chunk_arg
       $ metrics_out_arg $ trace_out_arg span_trace_doc $ serve_arg
       $ serve_socket_arg
       $ journal_arg
           "Checkpoint journal for the replication fan-out (requires \
            $(b,--replications) > 1): each replication's measures are \
            appended as they land, so a killed run can $(b,--resume) \
            without re-simulating completed replications."
       $ resume_arg $ profile_runtime_arg))

(* ------------------------------------------------------------------ *)
(* cache maintenance *)

let cache_cmd =
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"Cache directory.")
  in
  let scrub_cmd =
    let run dir =
      let cache = Exec.Cache.create ~dir () in
      let report = Exec.Cache.scrub cache in
      Format.printf "%a@." Exec.Cache.pp_scrub report;
      let s = Exec.Cache.stats cache in
      if s.Exec.Cache.tmp_reclaimed > 0 then
        Format.printf "%d orphaned temp files reclaimed@."
          s.Exec.Cache.tmp_reclaimed;
      (* Nonzero exit when something was quarantined: a cron'd scrub can
         alert without parsing output.  The store is already healed —
         the next run simply re-solves the quarantined keys. *)
      exit (if report.Exec.Cache.quarantined > 0 then 1 else 0)
    in
    Cmd.v
      (Cmd.info "scrub"
         ~doc:
           "Verify every entry of a solve-cache store: checksum-valid \
            entries are kept, corrupt ones quarantined (they re-solve on \
            next use), stale-format ones dropped.  Exits 1 if anything \
            was quarantined.")
      Term.(const run $ dir_arg)
  in
  Cmd.group
    (Cmd.info "cache" ~doc:"Solve-cache maintenance")
    [ scrub_cmd ]

(* ------------------------------------------------------------------ *)
(* chaos (file corruptors for the chaos harness) *)

let chaos_cmd =
  let file_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "file" ] ~docv:"FILE" ~doc:"Target file.")
  in
  let flip_cmd =
    let offset_arg =
      Arg.(
        value & opt int 0
        & info [ "offset" ] ~docv:"N"
            ~doc:
              "Byte offset to corrupt; negative counts back from the end \
               of the file.")
    in
    let run file offset =
      let size =
        match (Unix.stat file).Unix.st_size with
        | s -> s
        | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "mms: %s: %s\n%!" file (Unix.error_message e);
          exit 124
      in
      let offset = if offset < 0 then size + offset else offset in
      match Lattol_robust.Chaos.flip_byte ~path:file ~offset with
      | () -> `Ok ()
      | exception Invalid_argument msg -> `Error (false, msg)
      | exception Unix.Unix_error (e, _, _) ->
        `Error (false, Printf.sprintf "%s: %s" file (Unix.error_message e))
    in
    Cmd.v
      (Cmd.info "flip"
         ~doc:"XOR one byte of $(b,--file) with 0xFF (simulated bit rot)")
      Term.(ret (const run $ file_arg $ offset_arg))
  in
  let truncate_cmd =
    let keep_arg =
      Arg.(
        value & opt int 0
        & info [ "keep" ] ~docv:"N" ~doc:"Bytes to keep from the start.")
    in
    let run file keep =
      match Lattol_robust.Chaos.truncate_file ~path:file ~keep with
      | () -> `Ok ()
      | exception Invalid_argument msg -> `Error (false, msg)
      | exception Unix.Unix_error (e, _, _) ->
        `Error (false, Printf.sprintf "%s: %s" file (Unix.error_message e))
    in
    Cmd.v
      (Cmd.info "truncate"
         ~doc:"Truncate $(b,--file) to its first $(b,--keep) bytes \
               (simulated torn write)")
      Term.(ret (const run $ file_arg $ keep_arg))
  in
  Cmd.group
    (Cmd.info "chaos"
       ~doc:
         "Deterministic fault injectors: corrupt files the way dying \
          hardware would, so the self-healing paths can be exercised from \
          tests")
    [ flip_cmd; truncate_cmd ]

(* ------------------------------------------------------------------ *)
(* bench *)

let bench_cmd =
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Shrink quotas, horizons and replication counts so the run \
             finishes in seconds: same code paths and metric names, \
             coarser numbers.  CI smoke jobs and the committed baselines \
             use this mode.")
  in
  let suite_arg =
    Arg.(
      value
      & opt (enum [ ("solvers", `Solvers); ("exec", `Exec); ("all", `All) ])
          `All
      & info [ "suite" ] ~docv:"SUITE"
          ~doc:"Which suite to run: $(b,solvers), $(b,exec) or $(b,all).")
  in
  let out_dir_arg =
    Arg.(
      value & opt string "."
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:"Directory the BENCH_*.json documents are written into.")
  in
  let run quick suite out_dir =
    if not (Sys.file_exists out_dir) then
      `Error (false, Printf.sprintf "--out-dir %s does not exist" out_dir)
    else begin
      let write doc =
        let file =
          Filename.concat out_dir
            ("BENCH_" ^ doc.Lattol_bench.Bench_json.suite ^ ".json")
        in
        Lattol_bench.Bench_json.to_file doc file;
        Format.printf "wrote %s (%d metrics)@." file
          (List.length doc.Lattol_bench.Bench_json.metrics)
      in
      (match suite with
      | `Solvers | `All ->
        write (Lattol_bench.Bench_suites.solvers ~quick ())
      | `Exec -> ());
      (match suite with
      | `Exec | `All -> write (Lattol_bench.Bench_suites.exec ~quick ())
      | `Solvers -> ());
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the perf-trajectory benchmark suites and write versioned \
          BENCH_*.json documents (diff them against a committed baseline \
          with tools/bench_compare)")
    Term.(ret (const run $ quick_arg $ suite_arg $ out_dir_arg))

(* ------------------------------------------------------------------ *)
(* profile *)

let profile_cmd =
  let horizon_arg =
    Arg.(
      value & opt float 10_000.
      & info [ "horizon" ] ~docv:"T" ~doc:"Measured simulation time.")
  in
  let warmup_arg =
    Arg.(
      value & opt float 1_000.
      & info [ "warmup" ] ~docv:"T" ~doc:"Warm-up time discarded before measuring.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let run () params solver horizon warmup seed metrics_out trace_out =
    (* The cross-check defaults to the Linearizer so the empirical-vs-model
       gap reflects simulation noise, not Bard-Schweitzer approximation
       error (~3% on U_p at the default configuration). *)
    let solver = Some (Option.value solver ~default:Mms.Linearizer_amva) in
    Format.printf "%a@.@." Params.pp params;
    let trace = Lattol_obs.Events.create () in
    let metrics =
      Option.map (fun _ -> Lattol_obs.Metrics.create ()) metrics_out
    in
    let config =
      {
        Lattol_sim.Mms_des.default_config with
        Lattol_sim.Mms_des.horizon;
        warmup;
        seed;
        trace = Some trace;
        metrics;
      }
    in
    let r = Lattol_sim.Mms_des.run ~config params in
    if Lattol_obs.Events.dropped trace > 0 then
      Format.printf
        "warning: span buffer full, %d spans dropped — shorten the horizon \
         for an exact breakdown@."
        (Lattol_obs.Events.dropped trace);
    let profile = Lattol_obs.Latency_profile.of_events trace in
    let summary =
      Lattol_obs.Latency_profile.summarize profile
        ~processors:(Params.num_processors params)
        ~span_time:horizon
    in
    Format.printf "%a@.@." Lattol_obs.Latency_profile.pp_summary summary;
    Format.printf "%a@.@." Lattol_obs.Latency_profile.pp_vs_model
      (summary, Mms.solve ?solver params);
    (if params.Params.p_remote > 0. then begin
       (* Second run on the paper's ideal (p_remote = 0) machine yields the
          empirical tolerance index; its CI decides the agreement verdict. *)
       let ideal_p =
         Tolerance.ideal_params Tolerance.Network_latency Tolerance.Zero_remote
           params
       in
       let ideal =
         Lattol_sim.Mms_des.run
           ~config:
             { config with Lattol_sim.Mms_des.trace = None; metrics = None }
           ideal_p
       in
       let check =
         Lattol_obs.Latency_profile.check_tolerance
           ~u_p:r.Lattol_sim.Mms_des.u_p_ci
           ~u_p_ideal:ideal.Lattol_sim.Mms_des.u_p_ci
           ~analytical:(Tolerance.network ?solver params).Tolerance.tol
       in
       Format.printf "%a@." Lattol_obs.Latency_profile.pp_tolerance_check check
     end
     else
       Format.printf "network tolerance: trivially 1 (p_remote = 0)@.");
    Option.iter (write_span_trace trace) trace_out;
    (match (metrics, metrics_out) with
    | Some reg, Some file -> write_metrics reg file
    | _ -> ())
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Empirical latency breakdown from the DES, cross-checked against \
          the analytical model and tolerance prediction")
    Term.(
      const run $ verbose_term $ params_term $ solver_term $ horizon_arg
      $ warmup_arg $ seed_arg $ metrics_out_arg $ trace_out_arg span_trace_doc)

(* ------------------------------------------------------------------ *)
(* prof: run a workload under the runtime profiler *)

let prof_cmd =
  let workload_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("replicate", `Replicate); ("sweep", `Sweep);
               ("figures", `Figures);
             ])
          `Replicate
      & info [ "workload" ] ~docv:"W"
          ~doc:
            "Workload to profile: $(b,replicate) (parallel simulator \
             replications — the speedup_j2 regression's shape), \
             $(b,sweep) (a p_remote solver sweep) or $(b,figures) (the \
             full figure batch, written to a temporary directory).")
  in
  let engine_arg =
    Arg.(
      value
      & opt (enum [ ("des", `Des); ("stpn", `Stpn) ]) `Des
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Simulator for $(b,--workload replicate).")
  in
  let replications_arg =
    Arg.(
      value & opt int 4
      & info [ "replications" ] ~docv:"N"
          ~doc:"Replications for $(b,--workload replicate).")
  in
  let horizon_arg =
    Arg.(
      value & opt float 5_000.
      & info [ "horizon" ] ~docv:"T"
          ~doc:"Measured simulation time per replication.")
  in
  let warmup_arg =
    Arg.(
      value & opt float 500.
      & info [ "warmup" ] ~docv:"T" ~doc:"Warm-up time per replication.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let steps_arg =
    Arg.(
      value & opt int 24
      & info [ "steps" ] ~docv:"N"
          ~doc:"Grid points for $(b,--workload sweep).")
  in
  let prof_trace_doc =
    "Write the merged runtime timeline (per-domain GC pauses interleaved \
     with pool task spans) to $(docv) in Chrome trace-event JSON."
  in
  let run () params solver workload engine replications horizon warmup seed
      steps jobs metrics_out trace_out serve serve_socket =
    if jobs < 1 then `Error (false, "--jobs must be at least 1")
    else if replications < 1 then
      `Error (false, "--replications must be at least 1")
    else if steps < 2 then `Error (false, "--steps must be at least 2")
    else begin
      let progress = Serve.Progress.create ~phase:"prof" () in
      let session = Rp.start () in
      let prof_session = Some session in
      register_runtime_pulls progress prof_session;
      let snapshot () = Serve.Progress.to_snapshot progress in
      let monitor = Some (Serve.Progress.pool_monitor progress) in
      with_exporter
        ?runtime:(runtime_scrape prof_session)
        ~serve ~serve_socket ~snapshot
        (fun () ->
          Serve.Progress.start progress;
          (match workload with
          | `Replicate ->
            Format.printf "profiling replicate (%s): %d replications, jobs %d@."
              (match engine with `Des -> "des" | `Stpn -> "stpn")
              replications jobs;
            Serve.Progress.set_total progress replications;
            (match engine with
            | `Des ->
              let config =
                {
                  Lattol_sim.Mms_des.default_config with
                  Lattol_sim.Mms_des.horizon;
                  warmup;
                  seed;
                }
              in
              ignore
                (Exec.Replicate.des_measures ~jobs ?monitor ~config
                   ~replications params)
            | `Stpn ->
              ignore
                (Exec.Replicate.stpn_measures ~jobs ?monitor ~seed ~warmup
                   ~horizon ~replications params))
          | `Sweep ->
            Format.printf "profiling sweep (p_remote x %d): jobs %d@." steps
              jobs;
            Serve.Progress.set_total progress steps;
            let axes =
              [
                {
                  Exec.Sweep.param = Exec.Sweep.P_remote;
                  values = Exec.Sweep.linspace ~lo:0. ~hi:0.9 ~steps;
                };
              ]
            in
            let cache = Exec.Cache.create () in
            ignore
              (Exec.Sweep.run ?solver ~cache ~jobs ?monitor ~base:params axes)
          | `Figures ->
            Format.printf "profiling figures: jobs %d@." jobs;
            let out = Filename.temp_dir "mms_prof" "figures" in
            let figures = Exec.Figures.all ~base:params () in
            Serve.Progress.set_total progress
              (List.fold_left
                 (fun acc f ->
                   acc + List.length (Exec.Sweep.points f.Exec.Figures.axes))
                 0 figures);
            let cache = Exec.Cache.create () in
            ignore
              (Exec.Figures.write ?solver ~cache ~jobs ?monitor ~dir:out
                 figures));
          Serve.Progress.finish progress);
      match finish_runtime_profile ~ppf:Format.std_formatter prof_session with
      | None -> `Ok ()
      | Some p ->
        (match trace_out with
        | Some file ->
          let ev = Rp.to_events p in
          write_span_trace ev file;
          Format.printf "trace: %d spans -> %s%s@." (Lattol_obs.Events.count ev)
            file
            (if p.Rp.dropped_spans = 0 then ""
             else Printf.sprintf " (%d dropped)" p.Rp.dropped_spans)
        | None -> ());
        (match metrics_out with
        | Some file ->
          let reg = Lattol_obs.Metrics.create () in
          Rp.register_metrics p reg;
          write_metrics reg file;
          Format.printf "metrics: %d series -> %s@."
            (Lattol_obs.Metrics.size reg) file
        | None -> ());
        `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "prof"
       ~doc:
         "Run a workload under the runtime profiler and print the \
          per-domain bottleneck-attribution table (compute / GC / \
          queue-idle / spawn) with a verdict naming the dominant scaling \
          limiter")
    Term.(
      ret
        (const run $ verbose_term $ params_term $ solver_term $ workload_arg
       $ engine_arg $ replications_arg $ horizon_arg $ warmup_arg $ seed_arg
       $ steps_arg
       $ jobs_arg
           "Worker domains for the profiled workload.  Compare $(b,--jobs \
            1) against $(b,--jobs 2) to see where the parallel speedup \
            goes."
       $ metrics_out_arg $ trace_out_arg prof_trace_doc $ serve_arg
       $ serve_socket_arg))

(* ------------------------------------------------------------------ *)
(* partition *)

let partition_cmd =
  let work_arg =
    Arg.(
      value & opt float 8.
      & info [ "work" ] ~docv:"W" ~doc:"Exposed computation budget n_t x R.")
  in
  let run params work =
    let n_ts =
      List.filter (fun n -> float_of_int n <= work *. 16.) [ 1; 2; 4; 8; 16; 32 ]
    in
    Format.printf "%a, work budget %g@.@." Params.pp params work;
    let points = Partitioning.sweep params ~work ~n_ts in
    List.iter (fun pt -> Format.printf "%a@." Partitioning.pp_point pt) points;
    let best = Partitioning.best points in
    Format.printf "best: n_t = %d, R = %g@." best.Partitioning.n_t
      best.Partitioning.runlength
  in
  Cmd.v
    (Cmd.info "partition" ~doc:"Thread-partitioning table for a work budget")
    Term.(const run $ params_term $ work_arg)

(* ------------------------------------------------------------------ *)
(* kernels *)

let kernels_cmd =
  let compute_arg =
    Arg.(
      value & opt float 0.6
      & info [ "compute" ] ~docv:"F"
          ~doc:"Local (compute) fraction of each kernel's accesses.")
  in
  let run () params compute =
    if compute < 0. || compute > 1. then
      `Error (false, "--compute must lie in [0, 1]")
    else begin
      Format.printf "%a, kernel compute fraction %g@.@." Params.pp params
        compute;
      Format.printf "  %-22s %8s %10s %8s %8s@." "kernel" "U_p" "lambda_net"
        "S_obs" "tol_net";
      List.iter
        (fun kernel ->
          match
            Kernels.compare_kernels ~base:params ~compute
              ~runlength:params.Params.runlength [ kernel ]
          with
          | [ (k, m, tol) ] ->
            Format.printf "  %-22s %8.4f %10.4f %8.3f %8.4f@."
              (Kernels.kernel_to_string k)
              m.Measures.u_p m.Measures.lambda_net m.Measures.s_obs tol
          | _ -> ()
          | exception Invalid_argument reason ->
            Format.printf "  %-22s (skipped: %s)@."
              (Kernels.kernel_to_string kernel)
              reason)
        (Kernels.all ~num_nodes:(Params.num_processors params));
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "kernels"
       ~doc:"Evaluate the classic SPMD communication kernels on this machine")
    Term.(ret (const run $ verbose_term $ params_term $ compute_arg))

(* ------------------------------------------------------------------ *)
(* report *)

let report_cmd =
  let run () params solver supervise base_iterations time_budget =
    if supervise then
      (* Vet the configuration through the supervisor first: if no solver
         converges, refuse to print a report built on garbage. *)
      supervised_exit params ~base_iterations ~time_budget (fun _ ->
          Format.printf "%a@." Report.pp (Report.analyze ?solver params))
    else Format.printf "%a@." Report.pp (Report.analyze ?solver params)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Full analysis: measures, tolerance, bottlenecks, sensitivities")
    Term.(
      const run $ verbose_term $ params_term $ solver_term $ supervise_arg
      $ budget_iterations_arg $ budget_time_arg)

(* ------------------------------------------------------------------ *)
(* sensitivity *)

let sensitivity_cmd =
  let run params solver =
    Format.printf "%a@.@." Params.pp params;
    List.iter
      (fun d -> Format.printf "%a@." Sensitivity.pp_derivative d)
      (Sensitivity.ranked ?solver params)
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Rank parameters by their effect on processor utilization")
    Term.(const run $ params_term $ solver_term)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc = "latency-tolerance analysis of multithreaded architectures" in
  Cmd.group
    (Cmd.info "mms_cli" ~version:"1.0.0" ~doc)
    [
      solve_cmd; tolerance_cmd; bottleneck_cmd; sweep_cmd; figures_cmd;
      trace_cmd; simulate_cmd; bench_cmd; profile_cmd; prof_cmd;
      partition_cmd; sensitivity_cmd; report_cmd; kernels_cmd; cache_cmd;
      chaos_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
