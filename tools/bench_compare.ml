(* Gate a BENCH_*.json document against a committed baseline.

     bench_compare [--max-rel R] BASELINE CURRENT

   Exit 0 when every baseline metric is present in CURRENT and within R
   (relative, default 0.5) of its baseline value; 1 on any drift beyond
   the threshold or a missing metric; 2 on usage, I/O or parse errors.
   Metrics only present in CURRENT are reported but never fail the gate,
   so suites can grow without immediately breaking CI. *)

module J = Lattol_bench.Bench_json

let usage = "usage: bench_compare [--max-rel R] BASELINE CURRENT"

let fail_usage msg =
  prerr_endline msg;
  prerr_endline usage;
  exit 2

let parse_args () =
  let max_rel = ref 0.5 in
  let files = ref [] in
  let rec go = function
    | [] -> ()
    | "--max-rel" :: v :: rest -> (
      match float_of_string_opt v with
      | Some r when r > 0. ->
        max_rel := r;
        go rest
      | Some _ | None -> fail_usage (Printf.sprintf "bad --max-rel %S" v))
    | [ "--max-rel" ] -> fail_usage "--max-rel needs a value"
    | arg :: _ when String.length arg > 0 && Char.equal arg.[0] '-' ->
      fail_usage (Printf.sprintf "unknown option %s" arg)
    | file :: rest ->
      files := file :: !files;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ base; current ] -> (!max_rel, base, current)
  | _ -> fail_usage "expected exactly two files"

let load file =
  match J.load file with
  | Ok doc -> doc
  | Error msg ->
    prerr_endline ("bench_compare: " ^ msg);
    exit 2

let percent rel = 100. *. rel

let () =
  let max_rel, base_file, current_file = parse_args () in
  let base = load base_file in
  let current = load current_file in
  if not (String.equal base.J.suite current.J.suite) then begin
    Printf.eprintf "bench_compare: suite mismatch: %S vs %S\n" base.J.suite
      current.J.suite;
    exit 2
  end;
  let c = J.compare_docs ~max_rel ~base ~current in
  Printf.printf "suite %s: %d metrics within %.0f%%, %d beyond, %d missing, %d added\n"
    base.J.suite (List.length c.J.within) (percent max_rel)
    (List.length c.J.regressions)
    (List.length c.J.missing) (List.length c.J.added);
  List.iter
    (fun (d : J.delta) ->
      Printf.printf "  DRIFT %s: %g -> %g (%.0f%% > %.0f%%) [%s]\n" d.J.metric
        d.J.base_value d.J.current_value (percent d.J.rel) (percent max_rel)
        (if Float.abs d.J.current_value > Float.abs d.J.base_value then
           "regressed"
         else "improved — refresh the baseline?"))
    c.J.regressions;
  List.iter (Printf.printf "  MISSING %s (was in the baseline)\n") c.J.missing;
  List.iter (Printf.printf "  new metric %s (not gated)\n") c.J.added;
  if c.J.regressions <> [] || c.J.missing <> [] then exit 1
