(* Gate a BENCH_*.json document against a committed baseline.

     bench_compare [--max-rel R] [--floor NAME=MIN]... [--warn-floors]
                   BASELINE CURRENT

   Exit 0 when every baseline metric is present in CURRENT, within R
   (relative, default 0.5) of its baseline value, and every --floor holds;
   1 on any drift beyond the threshold, a missing metric, or a broken
   floor; 2 on usage, I/O or parse errors.  Metrics only present in
   CURRENT are reported but never fail the gate, so suites can grow
   without immediately breaking CI.

   Floors are one-sided gates for metrics where only one direction is a
   regression — a parallel speedup drifting UP is good news the symmetric
   drift check cannot express.  `--floor exec/replicate/speedup_j2=1.1`
   fails (or, under --warn-floors, warns) when the current value of that
   metric is below 1.1; a floor naming a metric absent from CURRENT is a
   failure too (a silently vanished speedup metric must not pass). *)

module J = Lattol_bench.Bench_json

let usage =
  "usage: bench_compare [--max-rel R] [--floor NAME=MIN]... [--warn-floors] \
   BASELINE CURRENT"

let fail_usage msg =
  prerr_endline msg;
  prerr_endline usage;
  exit 2

let parse_floor spec =
  match String.index_opt spec '=' with
  | Some i when i > 0 && i < String.length spec - 1 -> (
    let name = String.sub spec 0 i in
    let v = String.sub spec (i + 1) (String.length spec - i - 1) in
    match float_of_string_opt v with
    | Some min when Float.is_finite min -> (name, min)
    | Some _ | None -> fail_usage (Printf.sprintf "bad --floor value %S" v))
  | Some _ | None ->
    fail_usage (Printf.sprintf "bad --floor %S (expected NAME=MIN)" spec)

let parse_args () =
  let max_rel = ref 0.5 in
  let floors = ref [] in
  let warn_floors = ref false in
  let files = ref [] in
  let rec go = function
    | [] -> ()
    | "--max-rel" :: v :: rest -> (
      match float_of_string_opt v with
      | Some r when r > 0. ->
        max_rel := r;
        go rest
      | Some _ | None -> fail_usage (Printf.sprintf "bad --max-rel %S" v))
    | [ "--max-rel" ] -> fail_usage "--max-rel needs a value"
    | "--floor" :: spec :: rest ->
      floors := parse_floor spec :: !floors;
      go rest
    | [ "--floor" ] -> fail_usage "--floor needs NAME=MIN"
    | "--warn-floors" :: rest ->
      warn_floors := true;
      go rest
    | arg :: _ when String.length arg > 0 && Char.equal arg.[0] '-' ->
      fail_usage (Printf.sprintf "unknown option %s" arg)
    | file :: rest ->
      files := file :: !files;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ base; current ] ->
    (!max_rel, List.rev !floors, !warn_floors, base, current)
  | _ -> fail_usage "expected exactly two files"

let load file =
  match J.load file with
  | Ok doc -> doc
  | Error msg ->
    prerr_endline ("bench_compare: " ^ msg);
    exit 2

let percent rel = 100. *. rel

(* A floor either holds, is broken (value below the minimum), or dangles
   (the metric is not in CURRENT at all). *)
type floor_result = Holds | Broken of float | Absent

let check_floor current (name, min) =
  match
    List.find_opt
      (fun (m : J.metric) -> String.equal m.J.name name)
      current.J.metrics
  with
  | None -> (name, min, Absent)
  | Some m -> (name, min, if m.J.value >= min then Holds else Broken m.J.value)

let () =
  let max_rel, floors, warn_floors, base_file, current_file = parse_args () in
  let base = load base_file in
  let current = load current_file in
  if not (String.equal base.J.suite current.J.suite) then begin
    Printf.eprintf "bench_compare: suite mismatch: %S vs %S\n" base.J.suite
      current.J.suite;
    exit 2
  end;
  let c = J.compare_docs ~max_rel ~base ~current in
  Printf.printf "suite %s: %d metrics within %.0f%%, %d beyond, %d missing, %d added\n"
    base.J.suite (List.length c.J.within) (percent max_rel)
    (List.length c.J.regressions)
    (List.length c.J.missing) (List.length c.J.added);
  List.iter
    (fun (d : J.delta) ->
      Printf.printf "  DRIFT %s: %g -> %g (%.0f%% > %.0f%%) [%s]\n" d.J.metric
        d.J.base_value d.J.current_value (percent d.J.rel) (percent max_rel)
        (if Float.abs d.J.current_value > Float.abs d.J.base_value then
           "regressed"
         else "improved — refresh the baseline?"))
    c.J.regressions;
  List.iter (Printf.printf "  MISSING %s (was in the baseline)\n") c.J.missing;
  List.iter (Printf.printf "  new metric %s (not gated)\n") c.J.added;
  let floor_results = List.map (check_floor current) floors in
  let severity = if warn_floors then "WARN" else "FLOOR" in
  let broken_floors =
    List.filter
      (fun (name, min, r) ->
        match r with
        | Holds -> false
        | Broken v ->
          Printf.printf "  %s %s: %g < %g\n" severity name v min;
          true
        | Absent ->
          Printf.printf "  %s %s: metric absent from %s\n" severity name
            current_file;
          true)
      floor_results
  in
  let floors_fail = (not warn_floors) && broken_floors <> [] in
  if c.J.regressions <> [] || c.J.missing <> [] || floors_fail then exit 1
