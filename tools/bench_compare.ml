(* Gate a BENCH_*.json document against a committed baseline.

     bench_compare [--max-rel R] [--warn-drift] [--json]
                   [--floor NAME=MIN]... [--warn-floors]
                   [--ceiling NAME=MAX]... [--warn-ceilings]
                   BASELINE CURRENT

   Exit 0 when every baseline metric is present in CURRENT, within R
   (relative, default 0.5) of its baseline value, and every --floor and
   --ceiling holds; 1 on any drift beyond the threshold, a missing
   metric, or a broken floor/ceiling; 2 on usage, I/O or parse errors.
   Metrics only present in CURRENT are reported but never fail the gate,
   so suites can grow without immediately breaking CI.

   Floors and ceilings are one-sided gates for metrics where only one
   direction is a regression — a parallel speedup drifting UP is good
   news, an allocation count drifting DOWN is, and the symmetric drift
   check cannot express either.  `--floor exec/replicate/speedup_j2=1.1`
   fails (or, under --warn-floors, warns) when the current value of that
   metric is below 1.1; `--ceiling solvers/des_4x4/minor_words=1e7`
   fails (or, under --warn-ceilings, warns) when it is above 1e7.  A
   floor or ceiling naming a metric absent from CURRENT is a failure too
   (a silently vanished speedup metric must not pass).

   --warn-drift inverts the emphasis: drift beyond R (and metrics
   missing from CURRENT) are reported as warnings but never fail — the
   exit code then reflects only the hard floors and ceilings.  This is
   the CI shape for wall-clock suites on noisy shared runners: absolute
   times drift with the machine, but a speedup floor is a property of
   the code.

   --json replaces the human report on stdout with one machine-readable
   document (schema lattol-bench-compare/1): a flat entry list carrying
   every metric's status — ok | drift | missing | added for the
   symmetric gate, floor | ceiling for the one-sided bounds (with an
   "ok" boolean and the bound) — plus the suite, threshold and the exit
   code the process is about to return.  Exit semantics are identical
   in both modes. *)

module J = Lattol_bench.Bench_json

let usage =
  "usage: bench_compare [--max-rel R] [--warn-drift] [--json] [--floor \
   NAME=MIN]... [--warn-floors] [--ceiling NAME=MAX]... [--warn-ceilings] \
   BASELINE CURRENT"

let fail_usage msg =
  prerr_endline msg;
  prerr_endline usage;
  exit 2

(* Shared by --floor and --ceiling: NAME=BOUND with a finite bound. *)
let parse_bound ~flag ~shape spec =
  match String.index_opt spec '=' with
  | Some i when i > 0 && i < String.length spec - 1 -> (
    let name = String.sub spec 0 i in
    let v = String.sub spec (i + 1) (String.length spec - i - 1) in
    match float_of_string_opt v with
    | Some bound when Float.is_finite bound -> (name, bound)
    | Some _ | None ->
      fail_usage (Printf.sprintf "bad %s value %S" flag v))
  | Some _ | None ->
    fail_usage (Printf.sprintf "bad %s %S (expected %s)" flag spec shape)

let parse_floor = parse_bound ~flag:"--floor" ~shape:"NAME=MIN"

let parse_ceiling = parse_bound ~flag:"--ceiling" ~shape:"NAME=MAX"

let parse_args () =
  let max_rel = ref 0.5 in
  let warn_drift = ref false in
  let json = ref false in
  let floors = ref [] in
  let warn_floors = ref false in
  let ceilings = ref [] in
  let warn_ceilings = ref false in
  let files = ref [] in
  let rec go = function
    | [] -> ()
    | "--max-rel" :: v :: rest -> (
      match float_of_string_opt v with
      | Some r when r > 0. ->
        max_rel := r;
        go rest
      | Some _ | None -> fail_usage (Printf.sprintf "bad --max-rel %S" v))
    | [ "--max-rel" ] -> fail_usage "--max-rel needs a value"
    | "--warn-drift" :: rest ->
      warn_drift := true;
      go rest
    | "--json" :: rest ->
      json := true;
      go rest
    | "--floor" :: spec :: rest ->
      floors := parse_floor spec :: !floors;
      go rest
    | [ "--floor" ] -> fail_usage "--floor needs NAME=MIN"
    | "--warn-floors" :: rest ->
      warn_floors := true;
      go rest
    | "--ceiling" :: spec :: rest ->
      ceilings := parse_ceiling spec :: !ceilings;
      go rest
    | [ "--ceiling" ] -> fail_usage "--ceiling needs NAME=MAX"
    | "--warn-ceilings" :: rest ->
      warn_ceilings := true;
      go rest
    | arg :: _ when String.length arg > 0 && Char.equal arg.[0] '-' ->
      fail_usage (Printf.sprintf "unknown option %s" arg)
    | file :: rest ->
      files := file :: !files;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ base; current ] ->
    ( !max_rel,
      !warn_drift,
      !json,
      List.rev !floors,
      !warn_floors,
      List.rev !ceilings,
      !warn_ceilings,
      base,
      current )
  | _ -> fail_usage "expected exactly two files"

let load file =
  match J.load file with
  | Ok doc -> doc
  | Error msg ->
    prerr_endline ("bench_compare: " ^ msg);
    exit 2

let percent rel = 100. *. rel

(* Minimal JSON emission, mirroring Bench_json.write's conventions:
   shortest round-tripping decimals, non-finite values as null. *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_number v =
  if not (Float.is_finite v) then "null"
  else
    let s = Printf.sprintf "%.15g" v in
    if Float.equal (float_of_string s) v then s
    else
      let s = Printf.sprintf "%.16g" v in
      if Float.equal (float_of_string s) v then s
      else Printf.sprintf "%.17g" v

let print_json ~suite ~max_rel ~exit_code ~current (c : J.comparison)
    ~floor_results ~ceiling_results =
  let entries = Buffer.create 1024 in
  let entry fmt =
    Printf.ksprintf
      (fun line ->
        if Buffer.length entries > 0 then Buffer.add_string entries ",\n";
        Buffer.add_string entries ("    " ^ line))
      fmt
  in
  let delta_entry status (d : J.delta) =
    entry
      "{\"name\": \"%s\", \"status\": \"%s\", \"base\": %s, \"current\": %s, \
       \"rel\": %s}"
      (json_escape d.J.metric) status (json_number d.J.base_value)
      (json_number d.J.current_value) (json_number d.J.rel)
  in
  List.iter (delta_entry "ok") c.J.within;
  List.iter (delta_entry "drift") c.J.regressions;
  List.iter
    (fun name -> entry "{\"name\": \"%s\", \"status\": \"missing\"}"
        (json_escape name))
    c.J.missing;
  List.iter
    (fun name ->
      let v =
        match J.find_metric current name with
        | Some m -> m.J.value
        | None -> nan
      in
      entry "{\"name\": \"%s\", \"status\": \"added\", \"current\": %s}"
        (json_escape name) (json_number v))
    c.J.added;
  let bound_entry status (name, bound, r) =
    match r with
    | J.Holds ->
      let v =
        match J.find_metric current name with
        | Some m -> m.J.value
        | None -> nan
      in
      entry
        "{\"name\": \"%s\", \"status\": \"%s\", \"bound\": %s, \"current\": \
         %s, \"ok\": true}"
        (json_escape name) status (json_number bound) (json_number v)
    | J.Broken v ->
      entry
        "{\"name\": \"%s\", \"status\": \"%s\", \"bound\": %s, \"current\": \
         %s, \"ok\": false}"
        (json_escape name) status (json_number bound) (json_number v)
    | J.Absent ->
      entry
        "{\"name\": \"%s\", \"status\": \"%s\", \"bound\": %s, \"current\": \
         null, \"ok\": false}"
        (json_escape name) status (json_number bound)
  in
  List.iter (bound_entry "floor") floor_results;
  List.iter (bound_entry "ceiling") ceiling_results;
  Printf.printf
    "{\n  \"schema\": \"lattol-bench-compare/1\",\n  \"suite\": \"%s\",\n  \
     \"max_rel\": %s,\n  \"exit\": %d,\n  \"entries\": [\n%s\n  ]\n}\n"
    (json_escape suite) (json_number max_rel) exit_code
    (Buffer.contents entries)

let () =
  let ( max_rel,
        warn_drift,
        json,
        floors,
        warn_floors,
        ceilings,
        warn_ceilings,
        base_file,
        current_file ) =
    parse_args ()
  in
  let base = load base_file in
  let current = load current_file in
  if not (String.equal base.J.suite current.J.suite) then begin
    Printf.eprintf "bench_compare: suite mismatch: %S vs %S\n" base.J.suite
      current.J.suite;
    exit 2
  end;
  let c = J.compare_docs ~max_rel ~base ~current in
  let floor_results = List.map (J.check_floor current) floors in
  let ceiling_results = List.map (J.check_ceiling current) ceilings in
  let broken (_, _, r) = match r with J.Holds -> false | _ -> true in
  let broken_floors = List.filter broken floor_results in
  let broken_ceilings = List.filter broken ceiling_results in
  let drift_fail =
    (not warn_drift) && (c.J.regressions <> [] || c.J.missing <> [])
  in
  let floors_fail = (not warn_floors) && broken_floors <> [] in
  let ceilings_fail = (not warn_ceilings) && broken_ceilings <> [] in
  let exit_code = if drift_fail || floors_fail || ceilings_fail then 1 else 0 in
  if json then
    print_json ~suite:base.J.suite ~max_rel ~exit_code ~current c
      ~floor_results ~ceiling_results
  else begin
    Printf.printf
      "suite %s: %d metrics within %.0f%%, %d beyond, %d missing, %d added\n"
      base.J.suite (List.length c.J.within) (percent max_rel)
      (List.length c.J.regressions)
      (List.length c.J.missing) (List.length c.J.added);
    let drift_tag = if warn_drift then "WARN" else "DRIFT" in
    List.iter
      (fun (d : J.delta) ->
        Printf.printf "  %s %s: %g -> %g (%.0f%% > %.0f%%) [%s]\n" drift_tag
          d.J.metric d.J.base_value d.J.current_value (percent d.J.rel)
          (percent max_rel)
          (if Float.abs d.J.current_value > Float.abs d.J.base_value then
             "regressed"
           else "improved — refresh the baseline?"))
      c.J.regressions;
    List.iter
      (Printf.printf "  %s %s (was in the baseline)\n"
         (if warn_drift then "WARN missing" else "MISSING"))
      c.J.missing;
    List.iter (Printf.printf "  new metric %s (not gated)\n") c.J.added;
    let report_bounds ~severity ~rel =
      List.iter (fun (name, bound, r) ->
          match r with
          | J.Holds -> ()
          | J.Broken v ->
            Printf.printf "  %s %s: %g %s %g\n" severity name v rel bound
          | J.Absent ->
            Printf.printf "  %s %s: metric absent from %s\n" severity name
              current_file)
    in
    report_bounds
      ~severity:(if warn_floors then "WARN" else "FLOOR")
      ~rel:"<" floor_results;
    report_bounds
      ~severity:(if warn_ceilings then "WARN" else "CEILING")
      ~rel:">" ceiling_results
  end;
  exit exit_code
