(* Tests for the Markov-chain substrate: the sparse CTMC solver against
   closed-form birth-death chains, and the brute-force queueing-network
   CTMC against exact MVA (the strongest ground-truth ladder in the
   repository). *)

module Ctmc = Lattol_markov.Ctmc
module Birth_death = Lattol_markov.Birth_death
module Qn_ctmc = Lattol_markov.Qn_ctmc
open Lattol_queueing

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Ctmc *)

let test_two_state_chain () =
  (* 0 -(a)-> 1, 1 -(b)-> 0: pi = (b, a) / (a+b). *)
  let c = Ctmc.create 2 in
  Ctmc.add_rate c ~src:0 ~dst:1 3.;
  Ctmc.add_rate c ~src:1 ~dst:0 1.;
  let pi = Ctmc.steady_state c in
  close ~eps:1e-9 "pi0" 0.25 pi.(0);
  close ~eps:1e-9 "pi1" 0.75 pi.(1)

let test_rate_accumulates () =
  let c = Ctmc.create 2 in
  Ctmc.add_rate c ~src:0 ~dst:1 1.;
  Ctmc.add_rate c ~src:0 ~dst:1 2.;
  close "accumulated" 3. (Ctmc.rate c ~src:0 ~dst:1);
  close "exit rate" 3. (Ctmc.exit_rate c 0)

let test_ctmc_validation () =
  let c = Ctmc.create 2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Ctmc.add_rate: src = dst")
    (fun () -> Ctmc.add_rate c ~src:1 ~dst:1 1.);
  Alcotest.(check bool) "negative rate" true
    (try
       Ctmc.add_rate c ~src:0 ~dst:1 (-1.);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "absorbing detected" true
    (try
       Ctmc.add_rate c ~src:0 ~dst:1 1.;
       (* state 1 has no exit *)
       ignore (Ctmc.steady_state c);
       false
     with Failure _ -> true)

let test_expected_and_flow () =
  let c = Ctmc.create 2 in
  Ctmc.add_rate c ~src:0 ~dst:1 1.;
  Ctmc.add_rate c ~src:1 ~dst:0 1.;
  let pi = Ctmc.steady_state c in
  close "expected id" 0.5 (Ctmc.expected c ~pi ~f:float_of_int);
  (* flux 0->1 equals flux 1->0 in steady state *)
  let f01 = Ctmc.flow c ~pi ~select:(fun ~src ~dst -> src = 0 && dst = 1) in
  let f10 = Ctmc.flow c ~pi ~select:(fun ~src ~dst -> src = 1 && dst = 0) in
  close ~eps:1e-9 "balanced flux" f01 f10

let test_transient_two_state_analytic () =
  (* pi1(t) = (a/(a+b)) (1 - e^{-(a+b)t}) starting from state 0. *)
  let a = 1.0 and b = 3.0 in
  let c = Ctmc.create 2 in
  Ctmc.add_rate c ~src:0 ~dst:1 a;
  Ctmc.add_rate c ~src:1 ~dst:0 b;
  List.iter
    (fun t ->
      let pt = Ctmc.transient c ~initial:[| 1.; 0. |] ~time:t in
      let analytic = a /. (a +. b) *. (1. -. exp (-.(a +. b) *. t)) in
      close ~eps:1e-7 (Printf.sprintf "pi1(%g)" t) analytic pt.(1))
    [ 0.; 0.1; 0.5; 2.; 10. ]

let test_transient_converges_to_steady_state () =
  let births = [| 2.; 1.5; 1. |] and deaths = [| 1.; 1.; 2. |] in
  let c = Birth_death.to_ctmc ~births ~deaths in
  let steady = Ctmc.steady_state c in
  let initial = [| 1.; 0.; 0.; 0. |] in
  let long = Ctmc.transient c ~initial ~time:200. in
  Array.iteri
    (fun i pi -> close ~eps:1e-6 (Printf.sprintf "state %d" i) pi long.(i))
    steady

let test_transient_conserves_mass () =
  let births = [| 1.; 1. |] and deaths = [| 2.; 2. |] in
  let c = Birth_death.to_ctmc ~births ~deaths in
  let pt = Ctmc.transient c ~initial:[| 0.; 1.; 0. |] ~time:3.7 in
  close ~eps:1e-9 "sums to 1" 1. (Array.fold_left ( +. ) 0. pt)

let test_transient_validation () =
  let c = Ctmc.create 2 in
  Ctmc.add_rate c ~src:0 ~dst:1 1.;
  Ctmc.add_rate c ~src:1 ~dst:0 1.;
  Alcotest.(check bool) "bad initial" true
    (try
       ignore (Ctmc.transient c ~initial:[| 0.5; 0.4 |] ~time:1.);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative time" true
    (try
       ignore (Ctmc.transient c ~initial:[| 1.; 0. |] ~time:(-1.));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Birth-death *)

let test_birth_death_mm1n () =
  (* M/M/1/3: lambda=1, mu=2 -> pi_i ~ (1/2)^i. *)
  let births = [| 1.; 1.; 1. |] and deaths = [| 2.; 2.; 2. |] in
  let pi = Birth_death.steady_state ~births ~deaths in
  let z = 1. +. 0.5 +. 0.25 +. 0.125 in
  close "pi0" (1. /. z) pi.(0);
  close "pi3" (0.125 /. z) pi.(3)

let test_birth_death_vs_ctmc_solver () =
  let births = [| 2.; 1.5; 1.; 0.5 |] and deaths = [| 1.; 1.; 2.; 3. |] in
  let closed_form = Birth_death.steady_state ~births ~deaths in
  let solved = Ctmc.steady_state (Birth_death.to_ctmc ~births ~deaths) in
  Array.iteri
    (fun i p -> close ~eps:1e-8 (Printf.sprintf "pi%d" i) p solved.(i))
    closed_form

let test_birth_death_validation () =
  Alcotest.(check bool) "length mismatch" true
    (try
       ignore (Birth_death.steady_state ~births:[| 1. |] ~deaths:[| 1.; 1. |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero rate" true
    (try
       ignore (Birth_death.steady_state ~births:[| 0. |] ~deaths:[| 1. |]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Qn_ctmc *)

let repairman ~n =
  Network.make
    ~stations:[| ("think", Network.Delay); ("repair", Network.Queueing) |]
    ~classes:
      [|
        {
          Network.class_name = "jobs";
          population = n;
          visits = [| 1.; 1. |];
          service = [| 5.; 1. |];
        };
      |]

let test_qn_ctmc_repairman_vs_mva () =
  let nw = repairman ~n:4 in
  let a = Mva.solve nw and b = Qn_ctmc.solve nw in
  close ~eps:1e-8 "throughput" a.Solution.throughput.(0) b.Solution.throughput.(0);
  close ~eps:1e-7 "queue at repair" a.Solution.queue.(0).(1) b.Solution.queue.(0).(1)

let test_qn_ctmc_repairman_vs_birth_death () =
  (* The repairman model is a birth-death chain on the number of broken
     machines: birth rate (N-i)/Z, death rate 1/R. *)
  let n = 5 and z = 5. and r = 1. in
  let births = Array.init n (fun i -> float_of_int (n - i) /. z) in
  let deaths = Array.make n (1. /. r) in
  let pi = Birth_death.steady_state ~births ~deaths in
  let mean_broken = ref 0. in
  Array.iteri (fun i p -> mean_broken := !mean_broken +. (float_of_int i *. p)) pi;
  let nw = repairman ~n in
  let s = Qn_ctmc.solve nw in
  close ~eps:1e-8 "mean broken machines" !mean_broken s.Solution.queue.(0).(1)

let test_qn_ctmc_multiclass_vs_mva () =
  let nw =
    Network.make
      ~stations:
        [|
          ("cpu", Network.Queueing); ("disk", Network.Queueing);
          ("net", Network.Queueing);
        |]
      ~classes:
        [|
          {
            Network.class_name = "a";
            population = 3;
            visits = [| 1.; 2.; 0.5 |];
            service = [| 0.5; 0.4; 1.0 |];
          };
          {
            Network.class_name = "b";
            population = 2;
            visits = [| 1.; 1.; 2.0 |];
            service = [| 0.5; 0.4; 1.0 |];
          };
        |]
  in
  let a = Mva.solve nw and b = Qn_ctmc.solve nw in
  for c = 0 to 1 do
    close ~eps:1e-7
      (Printf.sprintf "throughput class %d" c)
      a.Solution.throughput.(c) b.Solution.throughput.(c)
  done;
  for c = 0 to 1 do
    for m = 0 to 2 do
      close ~eps:1e-6
        (Printf.sprintf "queue c%d m%d" c m)
        a.Solution.queue.(c).(m) b.Solution.queue.(c).(m)
    done
  done

let test_qn_ctmc_rejects_class_dependent_fcfs () =
  let nw =
    Network.make
      ~stations:[| ("s", Network.Queueing) |]
      ~classes:
        [|
          {
            Network.class_name = "a";
            population = 1;
            visits = [| 1. |];
            service = [| 1. |];
          };
          {
            Network.class_name = "b";
            population = 1;
            visits = [| 1. |];
            service = [| 2. |];
          };
        |]
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Qn_ctmc.solve nw);
       false
     with Invalid_argument _ -> true)

let test_qn_ctmc_state_cap () =
  let nw = repairman ~n:4 in
  Alcotest.(check bool) "raises under tiny cap" true
    (try
       ignore (Qn_ctmc.solve ~max_states:2 nw);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "repairman states" 5 (Qn_ctmc.num_states nw)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_steady_state_normalized =
  QCheck.Test.make ~name:"birth-death steady state sums to 1" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 10) (pair (float_range 0.1 5.) (float_range 0.1 5.)))
    (fun rates ->
      let births = Array.of_list (List.map fst rates) in
      let deaths = Array.of_list (List.map snd rates) in
      let pi = Birth_death.steady_state ~births ~deaths in
      abs_float (Array.fold_left ( +. ) 0. pi -. 1.) < 1e-9)

let prop_ctmc_matches_closed_form =
  QCheck.Test.make ~name:"CTMC solver matches birth-death closed form"
    ~count:50
    QCheck.(list_of_size Gen.(int_range 1 8) (pair (float_range 0.1 5.) (float_range 0.1 5.)))
    (fun rates ->
      let births = Array.of_list (List.map fst rates) in
      let deaths = Array.of_list (List.map snd rates) in
      let a = Birth_death.steady_state ~births ~deaths in
      let b = Ctmc.steady_state (Birth_death.to_ctmc ~births ~deaths) in
      let ok = ref true in
      Array.iteri (fun i p -> if abs_float (p -. b.(i)) > 1e-7 then ok := false) a;
      !ok)

let prop_qn_ctmc_matches_mva =
  QCheck.Test.make ~name:"QN CTMC matches exact MVA on random networks"
    ~count:25
    QCheck.(
      pair (int_range 1 4)
        (list_of_size Gen.(int_range 2 3) (float_range 0.2 2.)))
    (fun (n, demands) ->
      let m = List.length demands in
      let nw =
        Network.make
          ~stations:
            (Array.init m (fun i -> (Printf.sprintf "s%d" i, Network.Queueing)))
          ~classes:
            [|
              {
                Network.class_name = "c";
                population = n;
                visits = Array.make m 1.;
                service = Array.of_list demands;
              };
            |]
      in
      let a = (Mva.solve nw).Solution.throughput.(0) in
      let b = (Qn_ctmc.solve nw).Solution.throughput.(0) in
      abs_float (a -. b) /. a < 1e-6)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "lattol_markov"
    [
      ( "ctmc",
        [
          Alcotest.test_case "two states" `Quick test_two_state_chain;
          Alcotest.test_case "rate accumulation" `Quick test_rate_accumulates;
          Alcotest.test_case "validation" `Quick test_ctmc_validation;
          Alcotest.test_case "expected and flow" `Quick test_expected_and_flow;
          Alcotest.test_case "transient analytic" `Quick
            test_transient_two_state_analytic;
          Alcotest.test_case "transient -> steady state" `Quick
            test_transient_converges_to_steady_state;
          Alcotest.test_case "transient mass" `Quick test_transient_conserves_mass;
          Alcotest.test_case "transient validation" `Quick test_transient_validation;
        ] );
      ( "birth-death",
        [
          Alcotest.test_case "M/M/1/3" `Quick test_birth_death_mm1n;
          Alcotest.test_case "vs CTMC solver" `Quick test_birth_death_vs_ctmc_solver;
          Alcotest.test_case "validation" `Quick test_birth_death_validation;
        ] );
      ( "qn-ctmc",
        [
          Alcotest.test_case "repairman vs MVA" `Quick test_qn_ctmc_repairman_vs_mva;
          Alcotest.test_case "repairman vs birth-death" `Quick
            test_qn_ctmc_repairman_vs_birth_death;
          Alcotest.test_case "multiclass vs MVA" `Quick test_qn_ctmc_multiclass_vs_mva;
          Alcotest.test_case "rejects class-dependent FCFS" `Quick
            test_qn_ctmc_rejects_class_dependent_fcfs;
          Alcotest.test_case "state cap" `Quick test_qn_ctmc_state_cap;
        ] );
      ( "properties",
        qcheck
          [
            prop_steady_state_normalized;
            prop_ctmc_matches_closed_form;
            prop_qn_ctmc_matches_mva;
          ] );
    ]
