  $ ../examples/quickstart.exe | grep "U_p        ="
  $ ../examples/thread_partitioning.exe | grep -c "best:"
  $ ../examples/scaling_study.exe | grep "k = 10: n_t"
  $ ../examples/stencil_loop.exe | grep -A1 "distribution" | head -n 2
  $ ../examples/mixed_workload.exe | grep "total U_p"
